(* Leaf-cell compaction and technology transport (Chapter 6).

   Compacts a small library cell *in context* — the unknowns include
   the cell-to-cell pitches, so every instance of the cell stays
   identical — first under the design rules it was drawn for and then
   into a tighter target technology.  Also shows the flat-compaction
   facilities: naive vs visibility constraints, leftmost packing vs
   slack distribution, and synthetic contact expansion.

   Run with: dune exec examples/compaction.exe *)

open Rsg_geom
open Rsg_layout
open Rsg_compact

let draw_cell () =
  let c = Cell.create "bitcell" in
  let box x y w h = Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h in
  (* deliberately loose: a register bit drawn with slack everywhere *)
  Cell.add_box c Layer.Metal (box 0 0 40 4);
  Cell.add_box c Layer.Metal (box 0 28 40 4);
  Cell.add_box c Layer.Diffusion (box 6 8 10 16);
  Cell.add_box c Layer.Poly (box 2 14 18 3);
  Cell.add_box c Layer.Diffusion (box 26 8 8 16);
  Cell.add_box c Layer.Poly (box 24 20 14 3);
  Cell.add_box c Layer.Contact (box 8 9 4 4);
  c

let () =
  let cell = draw_cell () in
  Format.printf "=== leaf-cell compaction ===@.";
  let spec = { Leaf.p_index = 1; p_dx = 44; p_dy = 0; p_weight = 100 } in
  let r = Leaf.compact Rules.default cell ~pitches:[ spec ] in
  Format.printf "  pitch:      %d -> %d lambda@."
    (List.assoc 1 r.Leaf.pitch_before)
    (List.assoc 1 r.Leaf.pitches);
  Format.printf "  cell width: %d -> %d lambda@." r.Leaf.width_before
    r.Leaf.width_after;
  Format.printf "  %d constraints, %d descent iterations@."
    r.Leaf.n_constraints r.Leaf.iterations;
  (match r.Leaf.lp_pitches with
  | Some [ (1, lp) ] -> Format.printf "  simplex cross-check: pitch %.1f@." lp
  | _ -> ());
  Format.printf "  3-instance strip legal: %b@."
    (Leaf.verify Rules.default r ~pitches:[ spec ]);

  (* --- technology transport --------------------------------------- *)
  Format.printf "@.=== transport to the tighter process ===@.";
  let r' = Leaf.compact Rules.tight cell ~pitches:[ spec ] in
  Format.printf "  pitch under tight rules: %d lambda (was %d)@."
    (List.assoc 1 r'.Leaf.pitches)
    (List.assoc 1 r.Leaf.pitches);
  Format.printf "  strip legal under tight rules: %b@."
    (Leaf.verify Rules.tight r' ~pitches:[ spec ]);

  (* --- flat compaction: constraint generation --------------------- *)
  Format.printf "@.=== naive vs visibility constraints (fig 6.5) ===@.";
  let fragments =
    Array.init 6 (fun i ->
        { Scanline.layer = Layer.Diffusion;
          box = Box.of_size ~origin:(Vec.make (4 * i) 0) ~width:4 ~height:3 })
  in
  let naive = Compactor.compact ~method_:Scanline.Naive Rules.default fragments in
  let vis = Compactor.compact Rules.default fragments in
  Format.printf "  6-fragment bus, width 24: naive -> %d, visibility -> %d@."
    naive.Compactor.width_after vis.Compactor.width_after;

  (* --- slack distribution ----------------------------------------- *)
  Format.printf "@.=== leftmost packing vs slack distribution (fig 6.8) ===@.";
  let wire =
    [| { Scanline.layer = Layer.Metal; box = Box.make ~xmin:0 ~ymin:0 ~xmax:4 ~ymax:2 };
       { Scanline.layer = Layer.Metal; box = Box.make ~xmin:10 ~ymin:0 ~xmax:13 ~ymax:2 };
       { Scanline.layer = Layer.Metal; box = Box.make ~xmin:10 ~ymin:2 ~xmax:13 ~ymax:4 };
       { Scanline.layer = Layer.Metal; box = Box.make ~xmin:10 ~ymin:4 ~xmax:13 ~ymax:6 } |]
  in
  let packed = Compactor.compact Rules.default wire in
  let eased = Compactor.compact ~distribute_slack:true Rules.default wire in
  Format.printf "  jogs: input %d, leftmost %d, slack-distributed %d@."
    (Compactor.jog_metric wire)
    (Compactor.jog_metric packed.Compactor.items)
    (Compactor.jog_metric eased.Compactor.items);

  (* --- contact expansion ------------------------------------------ *)
  Format.printf "@.=== synthetic contact expansion (fig 6.9) ===@.";
  List.iter
    (fun w ->
      let cuts =
        Expand_contact.cuts_for Rules.default
          (Box.of_size ~origin:Vec.zero ~width:w ~height:4)
      in
      Format.printf "  %2dx4 contact -> %d cuts@." w (List.length cuts))
    [ 4; 8; 12; 16 ]

(* Quickstart: the RSG in thirty lines.

   1. Draw two leaf cells and define their interfaces *by example*:
      place them together in an assembly cell and drop a numeric label
      in the overlap of their bounding boxes.
   2. Build a connectivity graph of partial instances (celltype known,
      placement unknown).
   3. Expand the graph into a placed layout and write CIF.

   Run with: dune exec examples/quickstart.exe *)

open Rsg_geom
open Rsg_layout
open Rsg_core

let () =
  (* --- leaf cells ------------------------------------------------- *)
  let tile = Cell.create "tile" in
  Cell.add_box tile Layer.Metal (Box.of_size ~origin:Vec.zero ~width:10 ~height:10);
  Cell.add_box tile Layer.Poly (Box.of_size ~origin:(Vec.make 3 0) ~width:4 ~height:10);
  let cap = Cell.create "cap" in
  Cell.add_box cap Layer.Diffusion (Box.of_size ~origin:Vec.zero ~width:10 ~height:4);

  (* --- interfaces by example -------------------------------------- *)
  (* tile|tile abutting horizontally: interface 1 *)
  let a1 = Cell.create "assembly-h" in
  ignore (Cell.add_instance a1 ~at:Vec.zero tile);
  ignore (Cell.add_instance a1 ~at:(Vec.make 10 0) tile);
  Cell.add_label a1 "1" (Vec.make 10 5);
  (* a cap above a tile, mirrored about the x axis: interface 1
     between tile and cap *)
  let a2 = Cell.create "assembly-cap" in
  ignore (Cell.add_instance a2 ~at:Vec.zero tile);
  ignore (Cell.add_instance a2 ~orient:Orient.mirror_x ~at:(Vec.make 0 14) cap);
  Cell.add_label a2 "1" (Vec.make 5 10);
  let sample, decls = Sample.of_assemblies [ a1; a2 ] in
  Format.printf "sample: %d cells, %d interfaces extracted@."
    (Db.length sample.Sample.db)
    (List.length decls);

  (* --- connectivity graph ----------------------------------------- *)
  let row = Array.init 6 (fun _ -> Graph.mk_instance tile) in
  for i = 1 to 5 do
    Graph.connect row.(i - 1) row.(i) 1
  done;
  (* a cap over the first and the last tile *)
  let cap_l = Graph.mk_instance cap and cap_r = Graph.mk_instance cap in
  Graph.connect row.(0) cap_l 1;
  Graph.connect row.(5) cap_r 1;
  Format.printf "graph: %d nodes, spanning tree: %b@."
    (List.length (Graph.reachable row.(0)))
    (Graph.is_spanning_tree row.(0));

  (* --- expand to layout ------------------------------------------- *)
  let layout = Expand.mk_cell sample.Sample.table "quickrow" row.(0) in
  let stats = Flatten.stats layout in
  (match stats.Flatten.bbox with
  | Some b ->
    Format.printf "layout: %d instances, %d boxes, bbox %a@."
      stats.Flatten.n_instances stats.Flatten.n_boxes Box.pp b
  | None -> Format.printf "layout is empty?!@.");
  let path = Filename.temp_file "quickstart" ".cif" in
  Cif.write_file path layout;
  let cif = Cif.to_string layout in
  Format.printf "CIF written to %s (%d bytes)@." path (String.length cif);
  (* read it back and confirm the geometry survived *)
  let r = Cif.read_file path in
  Format.printf "round trip identical: %b@."
    (Cif.roundtrip_equal layout (Db.find_exn r.Cif.db "quickrow"))

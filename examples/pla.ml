(* PLAs and decoders from one sample layout (section 1.2.2).

   Demonstrates the RSG-as-HPLA-superset claims: a PLA generated from
   a minimal (non-assembled) sample, verified by reading the
   personality back out of the layout; a decoder built from the same
   AND-plane cells; and the HPLA sample-redundancy comparison.

   Run with: dune exec examples/pla.exe *)

open Rsg_layout
open Rsg_pla

let () =
  (* a 7-segment-ish decode of 2 bits, with don't cares *)
  let tt =
    Truth_table.of_strings
      [ ("00-", "1000");
        ("10-", "0100");
        ("01-", "0010");
        ("111", "0001");
        ("-11", "1001") ]
  in
  Format.printf "=== PLA from a minimal sample ===@.";
  List.iter
    (fun (i, o) -> Format.printf "  %s | %s@." i o)
    (Truth_table.to_strings tt);
  let g = Gen.generate tt in
  let st = Flatten.stats g.Gen.cell in
  Format.printf "layout: %d instances, verified by extraction: %b@."
    st.Flatten.n_instances (Gen.verify g);
  Format.printf "truth table read back from the mask geometry:@.";
  List.iter
    (fun (i, o) -> Format.printf "  %s | %s@." i o)
    (Truth_table.to_strings (Gen.read_back g));
  let path = Filename.temp_file "pla" ".cif" in
  Cif.write_file path g.Gen.cell;
  Format.printf "CIF written to %s@.@." path;

  (* --- a decoder from the SAME sample ----------------------------- *)
  Format.printf "=== 3-to-8 decoder from the same cells ===@.";
  let sample, _ = Pla_cells.build () in
  let d = Gen.generate_decoder ~sample 3 in
  Format.printf "decoder verified: %b@." (Gen.verify d);
  for v = 0 to 7 do
    Format.printf "  input %d -> output bit %d@." v
      (let o = Truth_table.eval_int d.Gen.table v in
       let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
       log2 o)
  done;

  (* --- the HPLA comparison (E5) ----------------------------------- *)
  Format.printf "@.=== sample economics vs HPLA (section 1.2.2) ===@.";
  let c = Hpla.compare_samples () in
  Format.printf "  %-28s %10s %10s@." "" "HPLA 2x2x2" "RSG minimal";
  Format.printf "  %-28s %10d %10d@." "sample instances"
    c.Hpla.hpla_instances c.Hpla.rsg_instances;
  Format.printf "  %-28s %10d %10d@." "interface examples"
    c.Hpla.hpla_declarations c.Hpla.rsg_declarations;
  Format.printf "  %-28s %10d %10d@." "redundant examples"
    c.Hpla.hpla_duplicates c.Hpla.rsg_duplicates;
  Format.printf "  both samples generate identical layouts: %b@."
    (Hpla.generates_same_pla
       (Truth_table.of_strings [ ("10", "10"); ("01", "01") ]))

(* The thesis's flagship example (Chapter 5): a parameterised pipelined
   Baugh-Wooley array multiplier.

   - generates the layout twice: natively against the core API and by
     interpreting the Appendix B design file with the Appendix C
     parameter file, and checks the two agree;
   - verifies the logic model (combinational and bit-systolic) against
     integer multiplication;
   - prints the pipelining tradeoff table of Figure 5.2.

   Run with: dune exec examples/multiplier.exe -- [size] *)

open Rsg_layout
open Rsg_mult

let () =
  let size =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6
  in
  Format.printf "=== %dx%d pipelined Baugh-Wooley multiplier ===@.@." size size;

  (* --- layout: native generator ----------------------------------- *)
  let g = Layout_gen.generate ~xsize:size ~ysize:size () in
  let st = Flatten.stats g.Layout_gen.whole in
  Format.printf "native layout: %d instances (%d leaf), %d boxes@."
    st.Flatten.n_instances st.Flatten.n_leaf_instances st.Flatten.n_boxes;
  List.iter
    (fun (name, n) -> Format.printf "  %-12s %4d@." name n)
    st.Flatten.by_cell;

  (* --- layout: the Appendix B design file ------------------------- *)
  let _, interpreted = Design_file.generate ~xsize:size ~ysize:size () in
  Format.printf "@.design file reproduces native layout: %b@."
    (Cif.roundtrip_equal g.Layout_gen.whole interpreted);
  let path = Filename.temp_file "multiplier" ".cif" in
  Cif.write_file path interpreted;
  Format.printf "CIF written to %s@." path;

  (* --- logic verification ----------------------------------------- *)
  let t = Multiplier.build ~m:size ~n:size () in
  let ok = ref true in
  let lim = (1 lsl (size - 1)) - 1 in
  List.iter
    (fun (a, b) ->
      if Multiplier.multiply t a b <> a * b then ok := false)
    [ (lim, lim); (-lim - 1, -lim - 1); (lim, -lim - 1); (3, -5); (0, lim) ];
  Format.printf "@.combinational model correct on corner cases: %b@." !ok;

  (* --- pipelining sweep (fig 5.2) --------------------------------- *)
  Format.printf "@.%-14s %9s %8s %10s %10s %9s@." "pipelining" "registers"
    "latency" "input-skew" "deskew" "depth";
  List.iter
    (fun beta ->
      let t = Multiplier.build ?beta ~m:size ~n:size () in
      let s = Multiplier.stats t in
      let name =
        match beta with
        | None -> "combinational"
        | Some 1 -> "bit-systolic"
        | Some b -> Printf.sprintf "beta=%d" b
      in
      Format.printf "%-14s %9d %8d %10d %10d %9d@." name
        s.Multiplier.registers s.Multiplier.latency_cycles
        s.Multiplier.input_skew s.Multiplier.output_deskew
        s.Multiplier.max_comb_depth)
    [ None; Some 4; Some 2; Some 1 ];

  (* --- streaming through the systolic pipeline -------------------- *)
  let sys = Multiplier.build ~beta:1 ~m:size ~n:size () in
  let pairs = [ (3, 5); (-7, 9); (lim, -2); (1, 1); (-1, -1) ] in
  let out = Multiplier.multiply_stream sys pairs in
  Format.printf "@.one product per cycle after %d-cycle latency:@."
    (Multiplier.latency sys);
  List.iter2
    (fun (a, b) p -> Format.printf "  %3d * %3d = %5d %s@." a b p
        (if p = a * b then "ok" else "WRONG"))
    pairs out

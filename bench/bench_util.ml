(* Shared helpers for the experiment harness. *)

open Bechamel

(* Estimated nanoseconds per run for every element of a Bechamel test,
   via OLS over monotonic-clock samples. *)
let ns_per_run ?(quota = 0.25) (test : Test.t) : (string * float) list =
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results =
    Hashtbl.fold
      (fun name b acc ->
        let est =
          match Analyze.OLS.estimates (Analyze.one ols instance b) with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, est) :: acc)
      raw []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) results

let time_once f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

(* Median-of-3 wall-clock seconds, for operations too slow for
   Bechamel's sampling. *)
let seconds f =
  let run () = fst (time_once f) in
  let samples = List.sort compare [ run (); run (); run () ] in
  List.nth samples 1

let section id title =
  Format.printf "@.==== %s — %s ====@." id title

let note fmt = Format.printf "  paper: " ; Format.printf (fmt ^^ "@.")

let row fmt = Format.printf ("  " ^^ fmt ^^ "@.")

(* Shared helpers for the experiment harness. *)

open Bechamel

(* Estimated nanoseconds per run for every element of a Bechamel test,
   via OLS over monotonic-clock samples. *)
let ns_per_run ?(quota = 0.25) (test : Test.t) : (string * float) list =
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results =
    Hashtbl.fold
      (fun name b acc ->
        let est =
          match Analyze.OLS.estimates (Analyze.one ols instance b) with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, est) :: acc)
      raw []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) results

let time_once f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

(* Median-of-3 wall-clock seconds, for operations too slow for
   Bechamel's sampling. *)
let seconds f =
  let run () = fst (time_once f) in
  let samples = List.sort compare [ run (); run (); run () ] in
  List.nth samples 1

let section id title =
  Format.printf "@.==== %s — %s ====@." id title

let note fmt = Format.printf "  paper: " ; Format.printf (fmt ^^ "@.")

let row fmt = Format.printf ("  " ^^ fmt ^^ "@.")

(* ---- machine-readable results (--json) ---------------------------- *)

(* When the harness runs with [--json], sections record named values
   with [json_num]/[json_int]/[json_bool]/[json_str] and the driver
   writes [BENCH_E<id>.json] after each section — a flat object whose
   keys the CI trend job greps.  Disabled (the default), every
   recorder is a no-op, so instrumentation costs the human-readable
   run nothing. *)

let json_enabled = ref false

let json_fields : (string * string) list ref = ref []

let json_put key rendered =
  if !json_enabled then json_fields := (key, rendered) :: !json_fields

let json_num key v = json_put key (Printf.sprintf "%.6g" v)

let json_int key v = json_put key (string_of_int v)

let json_bool key v = json_put key (if v then "true" else "false")

let json_str key v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    v;
  json_put key (Printf.sprintf "\"%s\"" (Buffer.contents b))

(* Write BENCH_<id>.json into the current directory if the finished
   section recorded anything; always reset the collector so one
   section's fields never bleed into the next. *)
let flush_json id =
  let fields = List.rev !json_fields in
  json_fields := [];
  if !json_enabled && fields <> [] then begin
    let file = Printf.sprintf "BENCH_%s.json" id in
    let oc = open_out file in
    output_string oc "{\n";
    let n = List.length fields in
    List.iteri
      (fun i (k, v) ->
        Printf.fprintf oc "  \"%s\": %s%s\n" k v (if i < n - 1 then "," else ""))
      fields;
    output_string oc "}\n";
    close_out oc;
    Format.printf "  [json: %s]@." file
  end

(* The experiment harness: regenerates every figure- and table-shaped
   artifact of the thesis (see DESIGN.md for the index and
   EXPERIMENTS.md for paper-vs-measured).  Run with

     dune exec bench/main.exe            -- all sections
     dune exec bench/main.exe -- E6 E11  -- selected sections
*)

open Rsg_geom
open Rsg_layout
open Rsg_core
open Bench_util

(* ------------------------------------------------------------------ *)
(* E2 (Figure 2.5): coordinate mapping of the four basic rotations.    *)

let e2 () =
  section "E2" "Figure 2.5: coordinate mapping for the 4 basic rotations";
  row "%-12s %-14s %-14s" "orientation" "x image" "y image";
  let show (v : Vec.t) =
    let part c name =
      if c = 0 then ""
      else if c = 1 then name
      else if c = -1 then "-" ^ name
      else assert false
    in
    let s = part v.Vec.x "x" ^ part v.Vec.y "y" in
    if s = "" then "0" else s
  in
  List.iter
    (fun o ->
      let ix = Orient.apply o (Vec.make 1 0) in
      let iy = Orient.apply o (Vec.make 0 1) in
      (* columns of the matrix: where x and y map to *)
      row "%-12s %-14s %-14s" (Orient.name o)
        (show (Vec.make ix.Vec.x iy.Vec.x) ^ " -> x")
        (show (Vec.make ix.Vec.y iy.Vec.y) ^ " -> y"))
    Orient.rotations;
  note "North (x,y); South (-x,-y); East (y,-x); West (-y,x)"

(* ------------------------------------------------------------------ *)
(* E3 (section 2.6): compact orientation representation vs matrices.   *)

let e3 () =
  section "E3" "section 2.6: (rot, refl) representation vs 2x2 matrices";
  let orients = Array.of_list Orient.all in
  let mats = Array.map Matrix_orient.of_orient orients in
  let vecs = Array.init 64 (fun i -> Vec.make (i - 32) (31 - i)) in
  let open Bechamel in
  let test =
    Test.make_grouped ~name:"orient"
      [ Test.make ~name:"compact-compose"
          (Staged.stage (fun () ->
               let acc = ref Orient.identity in
               for i = 0 to 63 do
                 acc := Orient.compose orients.(i land 7) !acc
               done;
               !acc));
        Test.make ~name:"matrix-compose"
          (Staged.stage (fun () ->
               let acc = ref Matrix_orient.identity in
               for i = 0 to 63 do
                 acc := Matrix_orient.compose mats.(i land 7) !acc
               done;
               !acc));
        Test.make ~name:"compact-apply"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               for i = 0 to 63 do
                 acc := !acc + (Orient.apply orients.(i land 7) vecs.(i)).Vec.x
               done;
               !acc));
        Test.make ~name:"matrix-apply"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               for i = 0 to 63 do
                 acc := !acc + (Matrix_orient.apply mats.(i land 7) vecs.(i)).Vec.x
               done;
               !acc));
        Test.make ~name:"compact-invert"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               for i = 0 to 63 do
                 acc := !acc + Orient.to_index (Orient.invert orients.(i land 7))
               done;
               !acc));
        Test.make ~name:"matrix-invert"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               for i = 0 to 63 do
                 acc := !acc + (Matrix_orient.invert mats.(i land 7)).Matrix_orient.a
               done;
               !acc)) ]
  in
  row "%-32s %12s" "operation (64x per run)" "ns/run";
  List.iter (fun (name, ns) -> row "%-32s %12.1f" name ns) (ns_per_run test);
  note "matrices 'require storage and manipulation of much more information'";
  row "storage: compact = 2 words, matrix = 4 words"

(* ------------------------------------------------------------------ *)
(* E15 (Figures 2.3/2.4): interface families and inheritance.          *)

let e15 () =
  section "E15" "Figures 2.3/2.4: interface families and inheritance";
  let leaf name =
    let c = Cell.create name in
    Cell.add_box c Layer.Metal (Box.of_size ~origin:Vec.zero ~width:10 ~height:10);
    c
  in
  let a = leaf "A" and b = leaf "B" in
  let tbl = Interface_table.create () in
  (* the Figure 2.3 family: two different legal interfaces for (A, B) *)
  Interface_table.declare tbl ~from:"A" ~into:"B" ~index:1
    (Interface.make (Vec.make 12 0) Orient.west);
  Interface_table.declare tbl ~from:"A" ~into:"B" ~index:2
    (Interface.make (Vec.make 0 12) Orient.south);
  row "family of interfaces between A and B: indices %s"
    (String.concat ", "
       (List.map string_of_int (Interface_table.indices tbl ~from:"A" ~into:"B")));
  (* Figure 2.4: macrocells C and D inherit an interface from their
     subcells without any new layout *)
  let na = Graph.mk_instance a and nb = Graph.mk_instance b in
  let c_cell = Expand.mk_cell tbl "C" na in
  let d_cell = Expand.mk_cell tbl "D" nb in
  let inner = Interface_table.find_exn tbl ~from:"A" ~into:"B" ~index:1 in
  let inherited =
    Interface.inherit_interface ~inner
      ~a_in_c:(Option.get na.Graph.placement)
      ~b_in_d:(Option.get nb.Graph.placement)
  in
  Interface_table.declare tbl ~from:"C" ~into:"D" ~index:1 inherited;
  let nc = Graph.mk_instance c_cell and nd = Graph.mk_instance d_cell in
  Graph.connect nc nd 1;
  let top = Expand.mk_cell tbl "top" nc in
  let ok =
    match Cell.instances top with
    | [ _; id_ ] ->
      Transform.equal (Cell.transform_of_instance id_)
        (Interface.place ~a:Transform.identity inner)
    | _ -> false
  in
  row "inherited Icd = %a" Interface.pp inherited;
  row "macrocell placement equals subcell-level placement: %b" ok;
  note "new interfaces computed 'with no need for additional layout'"

(* ------------------------------------------------------------------ *)
(* E4 (Figures 3.2/3.3): spanning-tree sufficiency.                    *)

let e4 () =
  section "E4" "Figure 3.3: interfaces in the sample vs adjacencies in the layout";
  row "%-10s %14s %16s %18s" "array" "tree edges" "adjacent pairs"
    "sample interfaces";
  List.iter
    (fun k ->
      let tree = (k * k) - 1 in
      let adjacent = 2 * k * (k - 1) in
      row "%-10s %14d %16d %18d"
        (Printf.sprintf "%dx%d" k k)
        tree adjacent 2)
    [ 2; 4; 8; 16; 32 ];
  note "the connectivity graph need only be a spanning tree; interfaces";
  note "not on tree edges 'need not be present in the sample layout'"

(* ------------------------------------------------------------------ *)
(* E16 (Figures 3.5-3.7): same-celltype ambiguity, directed edges.     *)

let e16 () =
  section "E16" "Figures 3.5-3.7: directed edges disambiguate self-interfaces";
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"A" ~into:"A" ~index:1
    (Interface.make (Vec.make 10 3) Orient.east);
  (match
     Expand.both_readings tbl ~placed:Transform.identity ~from:"A" ~into:"A"
       ~index:1
   with
  | Some (fwd, rev) ->
    row "I'aa reading:      neighbour at %a" Transform.pp fwd;
    row "(I'aa)^-1 reading: neighbour at %a" Transform.pp rev;
    row "readings differ: %b -> undirected edges are ambiguous"
      (not (Transform.equal fwd rev))
  | None -> row "missing interface?!");
  note "'the final layout depend[ed] on how the graph was traversed' until";
  note "edges between same-celltype nodes were given a direction"

(* ------------------------------------------------------------------ *)
(* E5 (section 1.2.2): RSG minimal sample vs HPLA assembled sample.    *)

let e5 () =
  section "E5" "section 1.2.2: sample economics vs HPLA";
  let c = Rsg_pla.Hpla.compare_samples () in
  row "%-26s %12s %12s" "" "HPLA 2x2x2" "RSG minimal";
  row "%-26s %12d %12d" "sample instances" c.Rsg_pla.Hpla.hpla_instances
    c.Rsg_pla.Hpla.rsg_instances;
  row "%-26s %12d %12d" "interface examples"
    c.Rsg_pla.Hpla.hpla_declarations c.Rsg_pla.Hpla.rsg_declarations;
  row "%-26s %12d %12d" "redundant examples" c.Rsg_pla.Hpla.hpla_duplicates
    c.Rsg_pla.Hpla.rsg_duplicates;
  row "identical generated PLA from either sample: %b"
    (Rsg_pla.Hpla.generates_same_pla
       (Rsg_pla.Truth_table.of_strings [ ("10", "10"); ("01", "01") ]));
  note "HPLA's sample 'contained 2 (identical) instances of the and-sq";
  note "connect-ao interface when only one was required'"

(* ------------------------------------------------------------------ *)
(* E6 (Figures 5.1/5.2): pipelining sweep, simulation-verified.        *)

let e6 () =
  section "E6" "Figure 5.2: degree of pipelining (m = n = 8, verified by simulation)";
  row "%-14s %9s %8s %11s %8s %7s %9s" "pipelining" "registers" "latency"
    "input-skew" "deskew" "depth" "verified";
  let verify t =
    List.for_all
      (fun (a, b) -> Rsg_mult.Multiplier.multiply t a b = a * b)
      [ (127, 127); (-128, -128); (127, -128); (-1, 1); (99, -55) ]
  in
  List.iter
    (fun beta ->
      let t = Rsg_mult.Multiplier.build ?beta ~m:8 ~n:8 () in
      let s = Rsg_mult.Multiplier.stats t in
      let name =
        match beta with
        | None -> "combinational"
        | Some 1 -> "bit-systolic"
        | Some b -> Printf.sprintf "beta=%d" b
      in
      row "%-14s %9d %8d %11d %8d %7d %9b" name s.Rsg_mult.Multiplier.registers
        s.Rsg_mult.Multiplier.latency_cycles s.Rsg_mult.Multiplier.input_skew
        s.Rsg_mult.Multiplier.output_deskew
        s.Rsg_mult.Multiplier.max_comb_depth (verify t))
    [ None; Some 4; Some 2; Some 1 ];
  note "fig 5.2a: bit-systolic = 'at most one full adder combinational delay";
  note "between any two registers'; fig 5.2b: at most two"

(* ------------------------------------------------------------------ *)
(* E7 (section 4.5): generation time and the three-phase split.        *)

let e7 () =
  section "E7" "section 4.5: generation time vs multiplier size";
  row "%-8s %10s %10s %10s %10s %10s" "size" "sample(s)" "execute(s)"
    "write(s)" "total(s)" "CIF bytes";
  List.iter
    (fun size ->
      let phases, _ = Rsg_mult.Design_file.timed_generate ~xsize:size ~ysize:size in
      let open Rsg_mult.Design_file in
      let total = phases.t_read_sample +. phases.t_execute +. phases.t_write in
      row "%-8s %10.4f %10.4f %10.4f %10.4f %10d"
        (Printf.sprintf "%dx%d" size size)
        phases.t_read_sample phases.t_execute phases.t_write total
        phases.cif_bytes)
    [ 4; 8; 16; 32 ];
  note "'a 32x32 Baugh-Wooley multiplier is generated in 5 seconds on a";
  note "DEC-2060'; execution time 'divided into roughly three equal parts'"

(* ------------------------------------------------------------------ *)
(* E8 (section 4.5): hash tables for interface/environment lookup.     *)

let e8 () =
  section "E8" "section 4.5: hash-table lookup vs association lists";
  (* an interface table the size of the multiplier sample's *)
  let tbl = Interface_table.create () in
  let names = Array.init 24 (fun i -> Printf.sprintf "cell%d" i) in
  Array.iteri
    (fun i a ->
      Interface_table.declare tbl ~from:a ~into:names.((i + 1) mod 24) ~index:1
        (Interface.make (Vec.make i 0) Orient.north))
    names;
  let assoc =
    Interface_table.fold
      (fun ~from ~into ~index i acc -> ((from, into, index), i) :: acc)
      tbl []
  in
  let open Bechamel in
  let test =
    Test.make_grouped ~name:"lookup"
      [ Test.make ~name:"interface-hash"
          (Staged.stage (fun () ->
               for i = 0 to 23 do
                 ignore
                   (Interface_table.find tbl ~from:names.(i)
                      ~into:names.((i + 1) mod 24) ~index:1)
               done));
        Test.make ~name:"interface-assoc"
          (Staged.stage (fun () ->
               for i = 0 to 23 do
                 ignore
                   (List.assoc_opt (names.(i), names.((i + 1) mod 24), 1) assoc)
               done)) ]
  in
  row "%-32s %12s" "operation (24 lookups per run)" "ns/run";
  List.iter (fun (name, ns) -> row "%-32s %12.1f" name ns) (ns_per_run test);
  note "'the interface table, the cell definition table and even the";
  note "interpreter environment frames are all implemented with hash tables'"

(* ------------------------------------------------------------------ *)
(* E17 (Appendices B/C): interpreted design file vs native generator.  *)

let e17 () =
  section "E17" "Appendix B/C: the design file reproduces the native generator";
  List.iter
    (fun size ->
      let native = Rsg_mult.Layout_gen.generate ~xsize:size ~ysize:size () in
      let _, interp = Rsg_mult.Design_file.generate ~xsize:size ~ysize:size () in
      let sn = Flatten.stats native.Rsg_mult.Layout_gen.whole in
      let si = Flatten.stats interp in
      row "%dx%d: %d instances each, geometry identical: %b" size size
        sn.Flatten.n_instances
        (sn.Flatten.n_instances = si.Flatten.n_instances
        && Cif.roundtrip_equal native.Rsg_mult.Layout_gen.whole interp))
    [ 4; 8 ];
  note "fig 5.4/5.5: the design file + sample layout define the multiplier"

(* ------------------------------------------------------------------ *)
(* E1 (Figure 1.2): generality vs efficiency.                          *)

let e1 () =
  section "E1" "Figure 1.2: canonical architecture vs RSG vs specialised generator";
  row "%-8s %-22s %12s %10s %8s %14s" "size" "generator" "area" "area-ratio"
    "cyc/mul" "silicon-time";
  List.iter
    (fun size ->
      let c = Rsg_baseline.Canonical.generate ~m:size ~n:size in
      let g = Rsg_mult.Layout_gen.generate ~xsize:size ~ysize:size () in
      let s = Rsg_baseline.Specialized.generate ~xsize:size ~ysize:size in
      let rsg_area =
        match Cell.bbox g.Rsg_mult.Layout_gen.array_cell with
        | Some b -> Box.area b
        | None -> 0
      in
      let print name area cyc =
        row "%-8s %-22s %12d %9.1fx %8d %14d"
          (Printf.sprintf "%dx%d" size size)
          name area
          (float_of_int area /. float_of_int s.Rsg_baseline.Specialized.area)
          cyc (area * cyc)
      in
      print "canonical (Macpitts)" c.Rsg_baseline.Canonical.area
        c.Rsg_baseline.Canonical.cycles_per_multiply;
      print "RSG array" rsg_area 1;
      print "specialised" s.Rsg_baseline.Specialized.area 1)
    [ 8; 16 ];
  note "'Early versions of Macpitts required about 5 times the area than";
  note "would be the case for layouts generated by hand' — and pay a";
  note "further n+1 cycles per multiply in silicon-time"

(* ------------------------------------------------------------------ *)
(* E9 (Figures 6.1/6.2): pitch tradeoffs under different weights.      *)

let e9 () =
  section "E9" "Figures 6.1/6.2: pitch tradeoff under replication-weighted costs";
  let cell () =
    let c = Cell.create "tradeoff" in
    Cell.add_box c Layer.Metal (Box.make ~xmin:8 ~ymin:6 ~xmax:12 ~ymax:8);
    Cell.add_box c Layer.Metal (Box.make ~xmin:0 ~ymin:0 ~xmax:4 ~ymax:2);
    c
  in
  row "%-22s %12s %12s" "cost weights (n, m)" "pitch 1" "pitch 2";
  List.iter
    (fun (w1, w2) ->
      let specs =
        [ { Rsg_compact.Leaf.p_index = 1; p_dx = 16; p_dy = 0; p_weight = w1 };
          { Rsg_compact.Leaf.p_index = 2; p_dx = 14; p_dy = 6; p_weight = w2 } ]
      in
      let r = Rsg_compact.Leaf.compact Rsg_compact.Rules.default (cell ()) ~pitches:specs in
      match r.Rsg_compact.Leaf.lp_pitches with
      | Some ps ->
        row "%-22s %12.1f %12.1f"
          (Printf.sprintf "w1=%d w2=%d" w1 w2)
          (List.assoc 1 ps) (List.assoc 2 ps)
      | None -> row "w1=%d w2=%d: LP failed" w1 w2)
    [ (1, 1); (1, 100); (100, 1); (10, 10) ];
  note "'lambda_a can be minimized to a greater extent at the cost of";
  note "increasing lambda_b and vice versa' — weights follow replication"

(* ------------------------------------------------------------------ *)
(* E10 (section 6.1): leaf-cell vs flat compaction cost.               *)

let e10 () =
  section "E10" "section 6.1: leaf-cell vs flat compaction cost";
  let cell () =
    let c = Cell.create "bit" in
    Cell.add_box c Layer.Metal (Box.make ~xmin:0 ~ymin:0 ~xmax:40 ~ymax:4);
    Cell.add_box c Layer.Metal (Box.make ~xmin:0 ~ymin:28 ~xmax:40 ~ymax:32);
    Cell.add_box c Layer.Diffusion (Box.make ~xmin:6 ~ymin:8 ~xmax:16 ~ymax:24);
    Cell.add_box c Layer.Poly (Box.make ~xmin:2 ~ymin:14 ~xmax:20 ~ymax:17);
    Cell.add_box c Layer.Diffusion (Box.make ~xmin:26 ~ymin:8 ~xmax:34 ~ymax:24);
    c
  in
  let spec = { Rsg_compact.Leaf.p_index = 1; p_dx = 44; p_dy = 0; p_weight = 100 } in
  let leaf_time =
    seconds (fun () ->
        Rsg_compact.Leaf.compact ~use_simplex:false Rsg_compact.Rules.default
          (cell ()) ~pitches:[ spec ])
  in
  let leaf =
    Rsg_compact.Leaf.compact ~use_simplex:false Rsg_compact.Rules.default
      (cell ()) ~pitches:[ spec ]
  in
  row "%-18s %14s %12s" "problem" "constraints" "seconds";
  row "%-18s %14d %12.5f" "leaf cell (once)" leaf.Rsg_compact.Leaf.n_constraints
    leaf_time;
  let items = Rsg_compact.Scanline.items_of_cell (cell ()) in
  List.iter
    (fun n ->
      let flat =
        Array.concat
          (List.init n (fun k ->
               Array.map
                 (fun (it : Rsg_compact.Scanline.item) ->
                   { it with
                     Rsg_compact.Scanline.box =
                       Box.translate (Vec.make (44 * k) 0)
                         it.Rsg_compact.Scanline.box })
                 items))
      in
      let t =
        seconds (fun () ->
            Rsg_compact.Compactor.compact Rsg_compact.Rules.default flat)
      in
      let r = Rsg_compact.Compactor.compact Rsg_compact.Rules.default flat in
      row "%-18s %14d %12.5f"
        (Printf.sprintf "flat, %d copies" n)
        r.Rsg_compact.Compactor.n_constraints t)
    [ 4; 16; 64 ];
  note "'the compaction effort is not duplicated over the various";
  note "replication factors ... orders of magnitude improvements'"

(* ------------------------------------------------------------------ *)
(* E11 (section 6.4.2): Bellman-Ford edge ordering.                    *)

let e11 () =
  section "E11" "section 6.4.2: Bellman-Ford relaxation vs edge order";
  let build n =
    let g = Rsg_compact.Cgraph.create () in
    let v =
      Array.init n (fun i -> Rsg_compact.Cgraph.fresh_var g ~init:(10 * i) ())
    in
    Array.iter
      (fun vi -> Rsg_compact.Cgraph.add_ge g ~from:Rsg_compact.Cgraph.origin ~to_:vi ~gap:0)
      v;
    for i = 0 to n - 2 do
      Rsg_compact.Cgraph.add_ge g ~from:v.(i) ~to_:v.(i + 1) ~gap:4
    done;
    g
  in
  row "%-10s %-18s %8s %12s" "chain" "edge order" "passes" "relaxations";
  List.iter
    (fun n ->
      List.iter
        (fun (name, order) ->
          let r = Rsg_compact.Bellman.solve ~order (build n) in
          row "%-10d %-18s %8d %12d" n name r.Rsg_compact.Bellman.passes
            r.Rsg_compact.Bellman.relaxations)
        [ ("sorted", Rsg_compact.Bellman.Sorted_by_abscissa);
          ("insertion", Rsg_compact.Bellman.Insertion);
          ("reverse-sorted", Rsg_compact.Bellman.Reverse_sorted) ])
    [ 50; 200 ];
  note "'exactly one relaxation step is required instead of the |E| ...";
  note "required in the worst case' when edges are traversed sorted";
  row "";
  row "worklist vs fixed-pass sweep on compactor constraint graphs";
  row "%-12s %8s | %10s %10s %7s %5s" "layout" "edges" "fixed-scan"
    "work-scan" "saved" "same";
  List.iter
    (fun (name, mk) ->
      let items = Rsg_compact.Scanline.items_of_cell (mk ()) in
      let gen =
        Rsg_compact.Scanline.generate Rsg_compact.Rules.default
          Rsg_compact.Scanline.Visibility items
      in
      let w = Rsg_compact.Bellman.solve gen.Rsg_compact.Scanline.graph in
      let f = Rsg_compact.Bellman.solve_fixed gen.Rsg_compact.Scanline.graph in
      row "%-12s %8d | %10d %10d %6.0f%% %5b" name
        (Rsg_compact.Cgraph.n_constraints gen.Rsg_compact.Scanline.graph)
        f.Rsg_compact.Bellman.scans w.Rsg_compact.Bellman.scans
        (100.0
        *. float_of_int (f.Rsg_compact.Bellman.scans - w.Rsg_compact.Bellman.scans)
        /. float_of_int (max f.Rsg_compact.Bellman.scans 1))
        (w.Rsg_compact.Bellman.values = f.Rsg_compact.Bellman.values);
      json_int (name ^ ".edges")
        (Rsg_compact.Cgraph.n_constraints gen.Rsg_compact.Scanline.graph);
      json_int (name ^ ".fixed_scans") f.Rsg_compact.Bellman.scans;
      json_int (name ^ ".worklist_scans") w.Rsg_compact.Bellman.scans;
      json_bool (name ^ ".identical")
        (w.Rsg_compact.Bellman.values = f.Rsg_compact.Bellman.values))
    [ ("mult 8x8",
       fun () ->
         (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ())
           .Rsg_mult.Layout_gen.whole);
      ("pla 8-term",
       fun () ->
         (Rsg_pla.Gen.generate (Rsg_pla.Gen.minterm_table 3)).Rsg_pla.Gen.cell);
      ("ram 32x8",
       fun () ->
         (Rsg_ram.Ram_gen.generate ~words:32 ~bits:8 ()).Rsg_ram.Ram_gen.cell)
    ];
  note "the worklist rescans only out-edges of moved variables, so its";
  note "edge examinations drop while the least solution is identical"

(* ------------------------------------------------------------------ *)
(* E12 (Figure 6.8): jogs under leftmost packing vs slack spread.      *)

let e12 () =
  section "E12" "Figure 6.8: leftmost packing worsens jogs; slack spread repairs";
  let wire () =
    [| { Rsg_compact.Scanline.layer = Layer.Metal;
         box = Box.make ~xmin:0 ~ymin:0 ~xmax:4 ~ymax:2 };
       { Rsg_compact.Scanline.layer = Layer.Metal;
         box = Box.make ~xmin:10 ~ymin:0 ~xmax:13 ~ymax:2 };
       { Rsg_compact.Scanline.layer = Layer.Metal;
         box = Box.make ~xmin:10 ~ymin:2 ~xmax:13 ~ymax:4 };
       { Rsg_compact.Scanline.layer = Layer.Metal;
         box = Box.make ~xmin:10 ~ymin:4 ~xmax:13 ~ymax:6 } |]
  in
  let packed = Rsg_compact.Compactor.compact Rsg_compact.Rules.default (wire ()) in
  let eased =
    Rsg_compact.Compactor.compact ~distribute_slack:true
      Rsg_compact.Rules.default (wire ())
  in
  row "%-22s %8s %8s" "placement" "width" "jogs";
  row "%-22s %8d %8d" "input" 13 (Rsg_compact.Compactor.jog_metric (wire ()));
  row "%-22s %8d %8d" "leftmost (magnet)"
    packed.Rsg_compact.Compactor.width_after
    (Rsg_compact.Compactor.jog_metric packed.Rsg_compact.Compactor.items);
  row "%-22s %8d %8d" "slack (rubber band)"
    eased.Rsg_compact.Compactor.width_after
    (Rsg_compact.Compactor.jog_metric eased.Rsg_compact.Compactor.items);
  note "'although the algorithm minimizes the longest path it can actually";
  note "increase the length of other paths' — the fig 6.8 jog"

(* ------------------------------------------------------------------ *)
(* E13 (Figure 6.9): contact expansion.                                *)

let e13 () =
  section "E13" "Figure 6.9: synthetic contact layer expanded to cuts";
  row "%-14s %8s" "contact size" "cuts";
  List.iter
    (fun (w, h) ->
      let cuts =
        Rsg_compact.Expand_contact.cuts_for Rsg_compact.Rules.default
          (Box.of_size ~origin:Vec.zero ~width:w ~height:h)
      in
      row "%-14s %8d" (Printf.sprintf "%dx%d" w h) (List.length cuts))
    [ (4, 4); (8, 4); (12, 4); (8, 8); (12, 8); (16, 16) ];
  note "'the contact layer is converted into actual lithographic mask";
  note "layers which may contain one or several contact cuts'"

(* ------------------------------------------------------------------ *)
(* E14 (Figures 6.4-6.7): constraint generation quality.               *)

let e14 () =
  section "E14" "Figures 6.4-6.7: naive vs visibility constraint generation";
  row "%-12s %16s %16s %14s %14s" "fragments" "naive width"
    "visibility width" "naive cons" "vis cons";
  List.iter
    (fun n ->
      let fragments =
        Array.init n (fun i ->
            { Rsg_compact.Scanline.layer = Layer.Diffusion;
              box = Box.of_size ~origin:(Vec.make (4 * i) 0) ~width:4 ~height:3 })
      in
      let naive =
        Rsg_compact.Compactor.compact ~method_:Rsg_compact.Scanline.Naive
          Rsg_compact.Rules.default fragments
      in
      let vis = Rsg_compact.Compactor.compact Rsg_compact.Rules.default fragments in
      row "%-12d %16d %16d %14d %14d" n
        naive.Rsg_compact.Compactor.width_after
        vis.Rsg_compact.Compactor.width_after
        naive.Rsg_compact.Compactor.n_constraints
        vis.Rsg_compact.Compactor.n_constraints)
    [ 2; 4; 8; 16 ];
  note "'indiscriminately generating constraints ... would force the x size";
  note "of the final layout [to] be at least n*lambda' (fig 6.5)"

(* ------------------------------------------------------------------ *)
(* E18 (section 1.2.3): folded PLAs — the "more complex PLAs" claim.   *)

let e18 () =
  section "E18" "section 1.2.3: folded PLAs (columns shared by disjoint inputs)";
  row "%-26s %8s %8s %10s %8s" "personality" "inputs" "slots" "width"
    "verified";
  let cases =
    [ ("fully foldable (4 in)",
       Rsg_pla.Truth_table.of_strings
         [ ("10--", "10"); ("01--", "01"); ("--11", "11"); ("--01", "10") ]);
      ("interleaved (2 in)",
       Rsg_pla.Truth_table.of_strings
         [ ("1-", "1"); ("-1", "1"); ("0-", "1"); ("-0", "1") ]);
      ("unfoldable (3 in)",
       Rsg_pla.Truth_table.of_strings [ ("111", "1"); ("000", "1") ]) ]
  in
  List.iter
    (fun (name, tt) ->
      let folded = Rsg_pla.Folding.generate tt in
      let straight = Rsg_pla.Gen.generate tt in
      let width c =
        match (Flatten.stats c).Flatten.bbox with
        | Some b -> Box.width b
        | None -> 0
      in
      row "%-26s %8d %8d %5d->%-4d %8b" name tt.Rsg_pla.Truth_table.n_inputs
        (Rsg_pla.Folding.n_slots folded.Rsg_pla.Folding.fold)
        (width straight.Rsg_pla.Gen.cell)
        (width folded.Rsg_pla.Folding.cell)
        (Rsg_pla.Folding.verify folded))
    cases;
  note "the RSG 'can also generate more complex PLAs such as PLAs with";
  note "folded rows or columns', beyond HPLA's fixed architecture"

(* ------------------------------------------------------------------ *)
(* E19 (reference [18]): retiming, the transformation behind Ch. 5.    *)

let e19 () =
  section "E19" "reference [18]: Leiserson-Saxe retiming (3-tap correlator)";
  let g =
    { Rsg_mult.Retime.n = 8;
      delay = [| 0; 3; 3; 3; 3; 7; 7; 7 |];
      edges =
        [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1); (1, 5, 0); (2, 6, 0);
          (3, 7, 0); (4, 7, 0); (7, 6, 0); (6, 5, 0); (5, 0, 0) ] }
  in
  let c0 = Rsg_mult.Retime.clock_period g in
  let _c, r = Rsg_mult.Retime.min_period g in
  let g' = Rsg_mult.Retime.apply g r in
  row "%-28s %10s %12s" "" "period" "registers";
  row "%-28s %10d %12d" "unretimed correlator" c0
    (Rsg_mult.Retime.total_registers g);
  row "%-28s %10d %12d" "optimally retimed" (Rsg_mult.Retime.clock_period g')
    (Rsg_mult.Retime.total_registers g');
  row "retiming lags: %s"
    (String.concat " " (Array.to_list (Array.map string_of_int r)));
  note "'Using retiming transformations [18], the multiplier can be";
  note "pipelined to any degree' — canonical result: 24 -> 13"

(* ------------------------------------------------------------------ *)
(* E20 (introduction): the full regular-structure quartet.             *)

let e20 () =
  section "E20" "introduction: RAMs, ROMs, PLAs and multipliers, one framework";
  row "%-22s %12s %10s %10s" "structure" "instances" "area" "verified";
  let census cell verified =
    let s = Flatten.stats cell in
    let area = match s.Flatten.bbox with Some b -> Box.area b | None -> 0 in
    row "%-22s %12d %10d %10b" cell.Cell.cname s.Flatten.n_instances area
      verified
  in
  let mult = Rsg_mult.Layout_gen.generate ~xsize:4 ~ysize:4 () in
  let mult_ok =
    let t = Rsg_mult.Multiplier.build ~m:4 ~n:4 () in
    Rsg_mult.Multiplier.multiply t 7 (-8) = -56
  in
  census mult.Rsg_mult.Layout_gen.whole mult_ok;
  let pla =
    Rsg_pla.Gen.generate
      (Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ])
  in
  census pla.Rsg_pla.Gen.cell (Rsg_pla.Gen.verify pla);
  let rom = Rsg_pla.Rom.generate ~word_bits:4 [| 1; 2; 4; 8; 3; 5; 9; 15 |] in
  census rom.Rsg_pla.Rom.pla.Rsg_pla.Gen.cell (Rsg_pla.Rom.verify rom);
  let ram = Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 () in
  let ram_ok =
    Rsg_ram.Ram_gen.docking_aligned ram
    &&
    let m = Rsg_ram.Ram_gen.Model.create ram in
    Rsg_ram.Ram_gen.Model.write m ~addr:5 11;
    Rsg_ram.Ram_gen.Model.read m ~addr:5 = 11
  in
  census ram.Rsg_ram.Ram_gen.cell ram_ok;
  note "'Familiar examples of regular circuit structures are RAMs, ROMs,";
  note "PLAs, and array multipliers' — all four from the same core"

(* ------------------------------------------------------------------ *)
(* E21 (section 6.1): technology transport of the multiplier cell.     *)

let e21 () =
  section "E21" "section 6.1: leaf-cell compaction makes the RSG transportable";
  let sample, _ = Rsg_mult.Sample_lib.build () in
  let basic =
    Db.find_exn sample.Sample.db Rsg_mult.Sample_lib.basic_cell
  in
  let specs =
    [ { Rsg_compact.Leaf.p_index = 1; p_dx = Rsg_mult.Sample_lib.cell_width;
        p_dy = 0; p_weight = 100 } ]
  in
  row "%-18s %12s %12s %10s" "rules" "pitch" "strip legal" "array area";
  let array_area pitch =
    (* a 16-column, 17-row tiling at the given pitch *)
    ((15 * pitch) + 48) * (17 * 64)
  in
  row "%-18s %12d %12s %10d" "as drawn" Rsg_mult.Sample_lib.cell_width "-"
    (array_area Rsg_mult.Sample_lib.cell_width);
  List.iter
    (fun (name, rules) ->
      let r = Rsg_compact.Leaf.compact rules basic ~pitches:specs in
      let pitch = List.assoc 1 r.Rsg_compact.Leaf.pitches in
      row "%-18s %12d %12b %10d" name pitch
        (Rsg_compact.Leaf.verify rules r ~pitches:specs)
        (array_area pitch))
    [ ("same process", Rsg_compact.Rules.default);
      ("tighter process", Rsg_compact.Rules.tight) ];
  note "'The problem of making the RSG technology transportable ... could";
  note "be achieved by using a special kind of compactor' — the pitch, not";
  note "the cell extremity, is what a large array pays for (section 6.2)"

(* ------------------------------------------------------------------ *)
(* E22 (lib/obs): per-phase breakdown of generation and compaction.    *)

let e22 () =
  section "E22" "lib/obs: per-phase timing/counter breakdown of the pipeline";
  let module Obs = Rsg_obs.Obs in
  Obs.reset ();
  Obs.enable ();
  ignore (Rsg_mult.Layout_gen.generate ~xsize:16 ~ysize:16 ());
  let pla =
    Rsg_pla.Gen.generate
      (Rsg_pla.Truth_table.of_strings
         [ ("10-1", "10"); ("0-11", "01"); ("1--0", "11") ])
  in
  ignore (Rsg_pla.Gen.verify pla);
  ignore
    (Rsg_compact.Compactor.compact_cell ~distribute_slack:true
       Rsg_compact.Rules.default pla.Rsg_pla.Gen.cell);
  Obs.disable ();
  Format.printf "%a" Obs.pp ();
  note "expansion, constraint generation and the Bellman-Ford solve are";
  note "now measurable per phase — the baseline every perf PR reports against"

(* ------------------------------------------------------------------ *)
(* E23 (lib/drc): scanline DRC runtime vs layout size.                 *)

let e23 () =
  section "E23" "lib/drc: scanline design-rule check scales near-linearly";
  row "%-10s %10s %10s %10s %12s %14s" "layout" "boxes" "regions" "violations"
    "seconds" "us per box";
  List.iter
    (fun n ->
      let g = Rsg_mult.Layout_gen.generate ~xsize:n ~ysize:n () in
      let items =
        Rsg_compact.Scanline.items_of_cell g.Rsg_mult.Layout_gen.whole
      in
      let secs = seconds (fun () -> Rsg_drc.Drc.check items) in
      let r = Rsg_drc.Drc.check items in
      row "%-10s %10d %10d %10d %12.4f %14.2f"
        (Printf.sprintf "mult %dx%d" n n)
        r.Rsg_drc.Drc.r_boxes r.Rsg_drc.Drc.r_regions
        (List.length r.Rsg_drc.Drc.r_violations)
        secs
        (1e6 *. secs /. float_of_int r.Rsg_drc.Drc.r_boxes))
    [ 2; 4; 8; 16; 24 ];
  note "generated layouts check clean; the plane sweep keeps cost per box";
  note "flat as the array grows (no all-pairs comparison anywhere)"

(* ------------------------------------------------------------------ *)
(* E24: prototype flatten cache + the domain pool.                     *)

let e24 () =
  section "E24"
    "flatten cache (prototypes) and multicore DRC/extraction (lib/par)";
  let configs =
    [ ("mult 8x8",
       fun () ->
         (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ())
           .Rsg_mult.Layout_gen.whole);
      ("mult 16x16",
       fun () ->
         (Rsg_mult.Layout_gen.generate ~xsize:16 ~ysize:16 ())
           .Rsg_mult.Layout_gen.whole);
      ("mult 24x24",
       fun () ->
         (Rsg_mult.Layout_gen.generate ~xsize:24 ~ysize:24 ())
           .Rsg_mult.Layout_gen.whole);
      ("ram 64x16",
       fun () ->
         (Rsg_ram.Ram_gen.generate ~words:64 ~bits:16 ()).Rsg_ram.Ram_gen.cell)
    ]
  in
  let nd = Rsg_par.Par.default_domains () in
  row "flatten: naive walk vs one shared prototype build (cells = distinct)";
  row "%-12s %8s %6s | %9s %9s %10s %9s %8s %5s" "layout" "boxes" "cells"
    "naive-s" "build-s" "cached-s" "stats-s" "speedup" "same";
  List.iter
    (fun (name, mk) ->
      let cell = mk () in
      let naive = seconds (fun () -> ignore (Flatten.flatten cell)) in
      let build =
        seconds (fun () ->
            ignore (Flatten.protos_flat (Flatten.prototypes cell)))
      in
      let protos = Flatten.prototypes cell in
      let flat = Flatten.protos_flat protos in
      let cached = seconds (fun () -> ignore (Flatten.protos_flat protos)) in
      let statss = seconds (fun () -> ignore (Flatten.stats cell)) in
      let same = flat = Flatten.flatten cell in
      row "%-12s %8d %6d | %9.4f %9.4f %10.6f %9.4f %7.0fx %5b" name
        (Array.length flat.Flatten.flat_boxes)
        (Flatten.distinct_cells protos)
        naive build cached statss
        (naive /. max cached 1e-9)
        same;
      json_num (name ^ ".flatten_naive_s") naive;
      json_num (name ^ ".flatten_build_s") build;
      json_num (name ^ ".flatten_cached_s") cached;
      json_bool (name ^ ".flatten_identical") same)
    configs;
  row "";
  row "DRC: 1 domain vs %d domains (identical = bit-identical report)" nd;
  row "%-12s %8s | %9s %9s %8s %9s" "layout" "boxes" "1-dom-s"
    (Printf.sprintf "%d-dom-s" nd) "speedup" "identical";
  List.iter
    (fun (name, mk) ->
      let cell = mk () in
      let items =
        Rsg_compact.Scanline.items_of_flat
          (Flatten.protos_flat (Flatten.prototypes cell))
      in
      let s1 = seconds (fun () -> ignore (Rsg_drc.Drc.check ~domains:1 items)) in
      let sn =
        seconds (fun () -> ignore (Rsg_drc.Drc.check ~domains:nd items))
      in
      let identical =
        Rsg_drc.Drc.check ~domains:1 items = Rsg_drc.Drc.check ~domains:nd items
      in
      row "%-12s %8d | %9.4f %9.4f %7.2fx %9b" name (Array.length items) s1 sn
        (s1 /. max sn 1e-9) identical;
      json_num (name ^ ".drc_1dom_s") s1;
      json_num (Printf.sprintf "%s.drc_%ddom_s" name nd) sn;
      json_bool (name ^ ".drc_identical") identical)
    configs;
  row "";
  row "extraction: 1 domain vs %d domains" nd;
  row "%-12s %8s %8s | %9s %9s %8s %9s" "layout" "nets" "devices" "1-dom-s"
    (Printf.sprintf "%d-dom-s" nd) "speedup" "identical";
  List.iter
    (fun (name, mk) ->
      let cell = mk () in
      let f = Flatten.protos_flat (Flatten.prototypes cell) in
      let items = Rsg_compact.Scanline.items_of_flat f in
      let labels = Array.to_list f.Flatten.flat_labels in
      let s1 =
        seconds (fun () ->
            ignore (Rsg_extract.Extract.of_items ~domains:1 items labels))
      in
      let sn =
        seconds (fun () ->
            ignore (Rsg_extract.Extract.of_items ~domains:nd items labels))
      in
      let n1 = Rsg_extract.Extract.of_items ~domains:1 items labels in
      let nn = Rsg_extract.Extract.of_items ~domains:nd items labels in
      row "%-12s %8d %8d | %9.4f %9.4f %7.2fx %9b" name
        n1.Rsg_extract.Extract.n_nets
        (Rsg_extract.Extract.n_devices n1)
        s1 sn
        (s1 /. max sn 1e-9)
        (n1 = nn);
      json_num (name ^ ".extract_1dom_s") s1;
      json_num (Printf.sprintf "%s.extract_%ddom_s" name nd) sn)
    configs;
  note "the cached column is the amortised cost once one prototype build";
  note "serves stats + DRC + extraction + the writer; domain speedups";
  note
    "depend on the machine (this host recommends %d domain%s)"
    (Rsg_par.Par.recommended ())
    (if Rsg_par.Par.recommended () = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* E25 (lib/lint): static analysis runtime vs design and graph size.   *)

let e25 () =
  section "E25" "lib/lint: static analysis cost vs design and graph size";
  row "design front end (scoping/arity/shape over the AST, no evaluation)";
  row "%-18s %8s %8s %8s %12s" "design" "chars" "checked" "diags" "seconds";
  let lint_design name cfg text =
    let secs =
      seconds (fun () -> ignore (Rsg_lint.Design_lint.check_string cfg text))
    in
    let r = Rsg_lint.Design_lint.check_string cfg text in
    row "%-18s %8d %8d %8d %12.5f" name (String.length text)
      r.Rsg_lint.Diag.r_checked
      (List.length r.Rsg_lint.Diag.r_diags)
      secs
  in
  let mult_cfg =
    let sample, _ = Rsg_mult.Sample_lib.build () in
    Rsg_lint.Design_lint.config_of_params
      ~cells:(Db.names sample.Sample.db)
      (Rsg_lang.Param.parse (Rsg_mult.Sample_lib.param_file ~xsize:8 ~ysize:8))
  in
  lint_design "mult (builtin)" mult_cfg Rsg_mult.Design_file.text;
  let pla_cfg =
    let sample, _ = Rsg_pla.Pla_cells.build () in
    let cfg =
      Rsg_lint.Design_lint.config_of_params
        ~cells:(Db.names sample.Sample.db)
        (Rsg_lang.Param.parse
           (Rsg_pla.Pla_design_file.param_file ~ninputs:3 ~noutputs:2
              ~nterms:4 ~name:"pla"))
    in
    { cfg with
      Rsg_lint.Design_lint.globals =
        "lits" :: "outs" :: cfg.Rsg_lint.Design_lint.globals
    }
  in
  lint_design "pla (builtin)" pla_cfg Rsg_pla.Pla_design_file.text;
  (* synthetic scaling: k independent row macros, each used once *)
  List.iter
    (fun k ->
      let buf = Buffer.create (256 * k) in
      for i = 1 to k do
        Buffer.add_string buf
          (Printf.sprintf
             "(macro mrow%d (n)\n\
             \  (locals r. nxt)\n\
             \  (mk_instance nxt basiccell)\n\
             \  (assign r.1 nxt)\n\
             \  (do (i 2 (+ i 1) (> i n))\n\
             \    (mk_instance nxt basiccell)\n\
             \    (assign r.i nxt)\n\
             \    (connect r.(- i 1) r.i 1)))\n\
              (assign row%d (mrow%d 4))\n"
             i i i)
      done;
      let cfg =
        { Rsg_lint.Design_lint.globals = []; cells = [ "basiccell" ];
          env_known = true
        }
      in
      lint_design
        (Printf.sprintf "synthetic x%d" k)
        cfg (Buffer.contents buf))
    [ 1; 8; 64; 256 ];
  row "";
  row "graph front end (reachability, spanning tree, cycle consistency)";
  row "%-18s %8s %8s %8s %12s %12s" "graph" "nodes" "edges" "diags" "seconds"
    "us per edge";
  List.iter
    (fun n ->
      (* a chain under a self-inverse interface plus every third rung
         doubled back consistently: tree edges and redundant-but-
         consistent cycle edges both get exercised *)
      let cname = Printf.sprintf "bench%d" n in
      let cc = Cell.create cname in
      let tbl = Interface_table.create () in
      Interface_table.declare tbl ~from:cname ~into:cname ~index:1
        (Interface.make (Vec.make 10 0) Orient.south);
      let gen = Graph.generator () in
      let nodes = Array.init n (fun _ -> Graph.mk_instance ~gen cc) in
      for i = 1 to n - 1 do
        Graph.connect nodes.(i - 1) nodes.(i) 1
      done;
      let node_list = Array.to_list nodes in
      let secs =
        seconds (fun () -> ignore (Rsg_lint.Graph_lint.check tbl node_list))
      in
      let r = Rsg_lint.Graph_lint.check tbl node_list in
      let edges = n - 1 in
      row "%-18s %8d %8d %8d %12.5f %12.2f"
        (Printf.sprintf "chain %d" n)
        n edges
        (List.length r.Rsg_lint.Diag.r_diags)
        secs
        (1e6 *. secs /. float_of_int (max edges 1)))
    [ 100; 1_000; 10_000; 50_000 ];
  note "no paper counterpart (the thesis reports no analysis timings);";
  note "both front ends are a constant number of linear passes, so cost";
  note "per form / per edge should stay flat as the input grows"

(* ------------------------------------------------------------------ *)
(* E26 (lib/store): content-addressed layout cache, cold vs warm, and  *)
(* batch throughput across the domain pool.                            *)

let e26 () =
  section "E26" "lib/store: layout cache cold vs warm, batch throughput";
  let module Store = Rsg_store.Store in
  let module Batch = Rsg_store.Batch in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rsg-bench-e26-%d" (Unix.getpid ()))
  in
  let with_store name f =
    let st = Store.open_ (Filename.concat tmp name) in
    Fun.protect
      ~finally:(fun () ->
        ignore (Store.clear st);
        try Unix.rmdir (Store.dir st) with Unix.Unix_error _ -> ())
      (fun () -> f st)
  in
  let cif cell = Cif.to_string cell in
  row "cold (generate + flatten + save) vs warm (verified load), largest";
  row "configs; +flat also decodes the stored flat view (for DRC/stats);";
  row "same = warm CIF byte-identical and stored flat matches";
  row "%-12s %8s | %9s %9s %9s %8s %5s" "layout" "boxes" "cold-s" "warm-s"
    "+flat-s" "speedup" "same";
  with_store "cold-warm" (fun st ->
      List.iter
        (fun (name, mk) ->
          let key = Store.key ~design:name ~params:"" () in
          let save () =
            let cell = mk () in
            let flat = Flatten.protos_flat (Flatten.prototypes cell) in
            Store.save st key ~label:name ~flat cell;
            (cell, flat)
          in
          let cold = seconds (fun () -> ignore (save ())) in
          let cell, flat = save () in
          let warm =
            seconds (fun () ->
                match Store.find st key with
                | Store.Hit _ -> ()
                | Store.Miss | Store.Corrupt _ -> assert false)
          in
          let warm_flat =
            seconds (fun () ->
                match Store.find st key with
                | Store.Hit e -> ignore (Lazy.force e.Rsg_store.Codec.e_flat)
                | Store.Miss | Store.Corrupt _ -> assert false)
          in
          let same =
            match Store.find st key with
            | Store.Hit e ->
              cif e.Rsg_store.Codec.e_cell = cif cell
              && Lazy.force e.Rsg_store.Codec.e_flat = Some flat
            | Store.Miss | Store.Corrupt _ -> false
          in
          row "%-12s %8d | %9.4f %9.4f %9.4f %7.1fx %5b" name
            (Array.length flat.Flatten.flat_boxes)
            cold warm warm_flat
            (cold /. max warm 1e-9)
            same)
        [ ("mult 16x16",
           fun () ->
             (Rsg_mult.Layout_gen.generate ~xsize:16 ~ysize:16 ())
               .Rsg_mult.Layout_gen.whole);
          ("mult 24x24",
           fun () ->
             (Rsg_mult.Layout_gen.generate ~xsize:24 ~ysize:24 ())
               .Rsg_mult.Layout_gen.whole);
          ("pla 32-term",
           fun () ->
             (Rsg_pla.Gen.generate (Rsg_pla.Gen.minterm_table 5))
               .Rsg_pla.Gen.cell)
        ]);
  row "";
  let jobs =
    let job name kind gen =
      { Batch.j_name = name;
        j_kind = kind;
        j_key = Store.key ~design:("bench:" ^ kind) ~params:name ();
        j_label = name;
        j_gen = gen
      }
    in
    [ job "mult6" "multiplier" (fun () ->
          (Rsg_mult.Layout_gen.generate ~xsize:6 ~ysize:6 ())
            .Rsg_mult.Layout_gen.whole);
      job "mult8" "multiplier" (fun () ->
          (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ())
            .Rsg_mult.Layout_gen.whole);
      job "mult10" "multiplier" (fun () ->
          (Rsg_mult.Layout_gen.generate ~xsize:10 ~ysize:10 ())
            .Rsg_mult.Layout_gen.whole);
      job "pla3" "pla" (fun () ->
          (Rsg_pla.Gen.generate (Rsg_pla.Gen.minterm_table 3))
            .Rsg_pla.Gen.cell);
      job "pla4" "pla" (fun () ->
          (Rsg_pla.Gen.generate (Rsg_pla.Gen.minterm_table 4))
            .Rsg_pla.Gen.cell);
      job "rom16" "rom" (fun () ->
          (Rsg_pla.Rom.generate ~word_bits:4
             [| 1; 9; 4; 13; 2; 6; 11; 7; 0; 15; 3; 14; 5; 10; 8; 12 |])
            .Rsg_pla.Rom.pla
            .Rsg_pla.Gen.cell);
      job "dec4" "decoder" (fun () ->
          (Rsg_pla.Gen.generate_decoder 4).Rsg_pla.Gen.cell);
      job "ram32" "ram" (fun () ->
          (Rsg_ram.Ram_gen.generate ~words:32 ~bits:8 ()).Rsg_ram.Ram_gen.cell)
    ]
  in
  let nd = Rsg_par.Par.default_domains () in
  let cifs rs =
    List.map
      (fun r ->
        match r.Batch.r_cell with Some c -> cif c | None -> "")
      rs
  in
  let hits rs =
    List.length
      (List.filter (fun r -> r.Batch.r_outcome = Batch.Hit) rs)
  in
  row "batch: %d-job manifest, cold (store cleared per run) vs warm"
    (List.length jobs);
  row "%-22s %8s %6s | %9s" "run" "domains" "hits" "seconds";
  with_store "batch" (fun st ->
      let batch domains = Batch.run ~domains ~store:st jobs in
      let cold domains =
        seconds (fun () ->
            ignore (Store.clear st);
            ignore (batch domains))
      in
      let c1 = cold 1 in
      let r1 = (ignore (Store.clear st) : unit); batch 1 in
      let cif1 = cifs r1 in
      let cn = cold nd in
      let rn = (ignore (Store.clear st) : unit); batch nd in
      let cifn = cifs rn in
      ignore (Store.clear st);
      ignore (batch nd);
      let rw = batch nd in
      let warm = seconds (fun () -> ignore (batch nd)) in
      row "%-22s %8d %6d | %9.4f" "cold" 1 (hits r1) c1;
      row "%-22s %8d %6d | %9.4f (%.2fx)" "cold" nd (hits rn) cn
        (c1 /. max cn 1e-9);
      row "%-22s %8d %6d | %9.4f (%.1fx vs 1-dom cold)" "warm" nd (hits rw)
        warm
        (c1 /. max warm 1e-9);
      row "1-dom and %d-dom outputs bit-identical: %b" nd (cif1 = cifn);
      row "warm outputs bit-identical to cold:      %b" (cifs rw = cif1));
  (try Unix.rmdir tmp with Unix.Unix_error _ -> ());
  note "warm runs skip parse/expand/flatten entirely: the store hands";
  note "back the checksummed hierarchy plus its flattened geometry, so";
  note "the target is >= 10x on the largest configs; batch scaling";
  note "depends on the machine (RSG_DOMAINS overrides the default)"

(* ------------------------------------------------------------------ *)
(* E27 (lib/store + lib/drc): hierarchical incremental regeneration.   *)
(* Edit one leaf celltype of one block on a multi-block chip: the      *)
(* content-addressed prototype table from the previous run replays     *)
(* every clean DRC level, so only the dirty chain (edited leaf +       *)
(* ancestors up to the chip root) is re-flattened and re-checked.      *)

let e27 () =
  section "E27"
    "incremental regeneration: edit one leaf, replay the clean prototypes";
  let module Codec = Rsg_store.Codec in
  let module Drc = Rsg_drc.Drc in
  (* ten multiplier blocks of distinct sizes side by side: every block
     contributes its own prototype subtree, so the chip has many
     replayable levels and the dirty chain after a one-leaf edit is a
     tiny fraction of the design *)
  let sizes = [ 8; 10; 12; 14; 16; 18; 20; 22; 24; 26 ] in
  let deck_digest = Rsg_drc.Deck.digest Rsg_drc.Deck.default in
  (* the edit: duplicate an existing box of the "tr" (top register)
     leaf of the smallest block — a content change that leaves the
     union of geometry, and hence cleanliness, untouched, but dirties
     that prototype and its ancestors up to the chip root *)
  let build ~edited () =
    let chip = Cell.create "chip" in
    let x = ref 0 in
    List.iter
      (fun n ->
        let m =
          (Rsg_mult.Layout_gen.generate ~xsize:n ~ysize:n ())
            .Rsg_mult.Layout_gen.whole
        in
        (if edited && n = List.hd sizes then
           let leaf =
             List.find
               (fun (c : Cell.t) -> c.Cell.cname = "tr")
               (Flatten.protos_order (Flatten.prototypes m))
           in
           let l, b = List.hd (Cell.boxes leaf) in
           Cell.add_box leaf l b);
        ignore (Cell.add_instance chip ~at:(Vec.make !x 0) m);
        let pm = Flatten.prototypes m in
        let bb =
          match Flatten.cell_bbox pm (Flatten.protos_root pm) with
          | Some b -> b
          | None -> assert false
        in
        x := !x + (bb.Box.xmax - bb.Box.xmin) + 2000)
      sizes;
    chip
  in
  let reports_of (r : Drc.hier_report) hex =
    match
      List.find_opt (fun (l : Drc.level) -> l.Drc.l_hash = hex) r.Drc.h_levels
    with
    | Some l ->
      [ ( deck_digest,
          { Drc.cl_violations = l.Drc.l_violations;
            cl_contexts = l.Drc.l_contexts;
            cl_distinct = l.Drc.l_distinct;
            cl_boxes = l.Drc.l_boxes } ) ]
    | None -> []
  in
  (* previous run of the unedited design: its table is the cache; the
     flat is composed here, outside any timed region, the way a real
     previous run would already have paid for it *)
  let protos0 = Flatten.prototypes (build ~edited:false ()) in
  let hier0 = Drc.check_protos protos0 in
  ignore (Flatten.protos_flat protos0);
  let table =
    Codec.proto_table protos0 ~reused:(fun _ -> false)
      ~reports:(reports_of hier0)
  in
  let cached hex =
    Array.fold_left
      (fun acc (p : Codec.proto) ->
        if acc = None && Digest.to_hex p.Codec.p_hash = hex then
          List.assoc_opt deck_digest p.Codec.p_reports
        else acc)
      None table
  in
  (* the regeneration pipeline downstream of the edited hierarchy:
     hash the subtrees, flatten the prototypes (seeded from the
     previous run for the incremental path, so clean subtrees adopt
     their arrays instead of recomposing) and design-rule check (with
     clean levels replayed from the table).  Generation of the edited
     hierarchy itself is common to both paths and reported once. *)
  let gen_s, cell_edited =
    let t = Unix.gettimeofday () in
    let c = build ~edited:true () in
    (Unix.gettimeofday () -. t, c)
  in
  (* verify = subtree hashing + prototype flattening (seeded on the
     incremental path, so clean subtrees adopt their arrays instead of
     recomposing) + hierarchical DRC (clean levels replayed from the
     table); emit additionally composes the full output flat, a cost
     both paths share *)
  let verify ?seed ?cached domains () =
    let protos = Flatten.prototypes cell_edited in
    (match seed with
    | Some protos0 ->
      List.iter
        (fun (c, _hex) ->
          let f = Flatten.proto_flat protos0 c in
          Flatten.seed_proto protos
            ~hash:(Flatten.subtree_digest protos0 c)
            ~boxes:f.Flatten.flat_boxes ~labels:f.Flatten.flat_labels)
        (Flatten.subtree_hashes protos0)
    | None -> ());
    let hier = Drc.check_protos ~domains ?cached protos in
    (protos, hier)
  in
  let nd = Rsg_par.Par.default_domains () in
  row "chip of %d multiplier blocks (sizes %d..%d), one leaf celltype"
    (List.length sizes) (List.hd sizes)
    (List.fold_left max 0 sizes);
  row "of the smallest block edited; cold re-flattens and re-checks";
  row "every prototype, incremental seeds the unchanged ones from the";
  row "previous run's table and replays their DRC levels";
  row "(hierarchy generation, common to both paths: %.4fs)" gen_s;
  row "%-12s %7s %6s %8s | %8s %8s %8s %8s" "run" "domains" "levels"
    "replayed" "verify" "speedup" "total" "speedup";
  let results =
    List.concat_map
      (fun domains ->
        let cold_v = seconds (fun () -> ignore (verify domains ())) in
        let cold_t =
          seconds (fun () ->
              let p, _ = verify domains () in
              ignore (Flatten.protos_flat p))
        in
        let _, cold_hier = verify domains () in
        let cold_flat = Flatten.protos_flat (fst (verify domains ())) in
        let incr () = verify ~seed:protos0 ~cached domains () in
        let incr_v = seconds (fun () -> ignore (incr ())) in
        let incr_t =
          seconds (fun () ->
              let p, _ = incr () in
              ignore (Flatten.protos_flat p))
        in
        let incr_protos, incr_hier = incr () in
        let incr_flat = Flatten.protos_flat incr_protos in
        row "%-12s %7d %6d %8d | %8.4f %8s %8.4f %8s" "cold" domains
          (List.length cold_hier.Drc.h_levels)
          cold_hier.Drc.h_cached cold_v "" cold_t "";
        row "%-12s %7d %6d %8d | %8.4f %7.1fx %8.4f %7.1fx" "incremental"
          domains
          (List.length incr_hier.Drc.h_levels)
          incr_hier.Drc.h_cached incr_v
          (cold_v /. max incr_v 1e-9)
          incr_t
          (cold_t /. max incr_t 1e-9);
        json_num (Printf.sprintf "cold_verify_s.d%d" domains) cold_v;
        json_num (Printf.sprintf "incr_verify_s.d%d" domains) incr_v;
        json_num (Printf.sprintf "cold_total_s.d%d" domains) cold_t;
        json_num (Printf.sprintf "incr_total_s.d%d" domains) incr_t;
        json_int
          (Printf.sprintf "replayed_levels.d%d" domains)
          incr_hier.Drc.h_cached;
        [ (domains, cold_hier, cold_flat, incr_hier, incr_flat) ])
      (List.sort_uniq compare [ 1; nd ])
  in
  let identical =
    List.for_all
      (fun (_, ch, cf, ih, if_) ->
        cf.Flatten.flat_boxes = if_.Flatten.flat_boxes
        && Drc.hier_clean ch = Drc.hier_clean ih
        && List.map (fun (l : Drc.level) -> (l.Drc.l_hash, l.Drc.l_violations))
             ch.Drc.h_levels
           = List.map
               (fun (l : Drc.level) -> (l.Drc.l_hash, l.Drc.l_violations))
               ih.Drc.h_levels)
      results
  in
  let flats =
    List.map (fun (_, _, cf, _, _) -> cf.Flatten.flat_boxes) results
  in
  let cross_domain =
    match flats with [] -> true | f :: rest -> List.for_all (( = ) f) rest
  in
  row "incremental outputs/verdicts identical to cold: %b" identical;
  row "outputs identical across domain counts:         %b" cross_domain;
  json_bool "incremental_identical" identical;
  json_bool "cross_domain_identical" cross_domain;
  note "the acceptance floor is a >= 5x edit-one-leaf verify speedup:";
  note "replay covers every clean prototype, so only the dirty chain";
  note "(edited leaf + ancestors) pays for geometry windows and checks;";
  note "'total' adds composing the output flat, a cost both paths share"

(* ------------------------------------------------------------------ *)
(* E28: the resident serve daemon — request latency vs a per-request   *)
(* CLI process, throughput vs concurrency, coalescing, and graceful    *)
(* saturation (queue_full rejections, not unbounded queueing).         *)

let e28 () =
  section "E28" "lib/serve: daemon latency/throughput, coalescing, saturation";
  let module Serve = Rsg_serve.Serve in
  let module Client = Rsg_serve.Client in
  let module Load = Rsg_serve.Load in
  let module Json = Rsg_serve.Json in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rsg-bench-e28-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir tmp 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sock_of name = Filename.concat tmp (name ^ ".sock") in
  let start cfg =
    let ready = Atomic.make false in
    let th =
      Thread.create
        (fun () -> Serve.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
        ()
    in
    while not (Atomic.get ready) do
      Thread.delay 0.002
    done;
    th
  in
  let connect sock =
    match Client.connect ~attempts:10 sock with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  let shutdown sock th =
    let c = connect sock in
    ignore
      (Client.request c
         (Json.Obj [ ("id", Json.String "bye"); ("op", Json.String "shutdown") ]));
    Client.close c;
    Thread.join th
  in
  let obj fields = Json.Obj fields in
  let str s = Json.String s in
  let gen ?(cif = false) spec =
    obj
      ([ ("id", str "g"); ("op", str "generate"); ("spec", str spec) ]
      @ if cif then [ ("cif", Json.Bool true) ] else [])
  in
  let ms v = v *. 1000. in
  let replay ~sock ~concurrency ~repeat reqs =
    match Load.run ~socket:sock ~concurrency ~repeat reqs with
    | Ok r -> r
    | Error msg -> failwith ("replay failed: " ^ msg)
  in
  let err_count code (r : Load.result) =
    Option.value ~default:0 (List.assoc_opt code r.Load.l_errors)
  in

  (* -- main daemon: a worker pool over a disk store ------------------- *)
  let store_dir = Filename.concat tmp "store" in
  let sock = sock_of "main" in
  let th =
    start
      {
        (Serve.default_config ~socket_path:sock) with
        Serve.workers = 2;
        queue_depth = 16;
        store_dir = Some store_dir;
      }
  in
  let specs =
    [ "m12 multiplier size=12"; "m16 multiplier size=16"; "d6 decoder n=6";
      "ram84 ram words=8 bits=4" ]
  in
  let reqs = List.map gen specs in
  let cold = replay ~sock ~concurrency:1 ~repeat:1 reqs in
  row "four designs (mult 12/16, decoder 6, ram 8x4), %d cold generates:"
    cold.Load.l_sent;
  row "  cold p50 %.1f ms, total %.2f s (populates memory + disk store)"
    (ms (Load.percentile cold.Load.l_latencies 50.))
    cold.Load.l_seconds;
  row "";
  row "warm replay (every request a memory hit), mixed keys:";
  row "%5s | %6s %6s | %9s %9s %9s | %9s" "conc" "sent" "ok" "p50-ms"
    "p95-ms" "p99-ms" "req/s";
  List.iter
    (fun concurrency ->
      let r = replay ~sock ~concurrency ~repeat:16 reqs in
      row "%5d | %6d %6d | %9.3f %9.3f %9.3f | %9.0f" concurrency
        r.Load.l_sent r.Load.l_ok
        (ms (Load.percentile r.Load.l_latencies 50.))
        (ms (Load.percentile r.Load.l_latencies 95.))
        (ms (Load.percentile r.Load.l_latencies 99.))
        (float_of_int r.Load.l_sent /. r.Load.l_seconds))
    [ 1; 2; 4; 8 ];
  let warm = replay ~sock ~concurrency:1 ~repeat:8 reqs in
  let daemon_p50 = Load.percentile warm.Load.l_latencies 50. in

  (* -- the same warm request as a fresh CLI process ------------------- *)
  let cli = Filename.concat (Sys.getcwd ()) "_build/default/bin/rsg_cli.exe" in
  (if Sys.file_exists cli then begin
     let run () =
       let cmd =
         Printf.sprintf
           "%s multiplier --size 12 --cache %s -o /dev/null >/dev/null 2>&1"
           (Filename.quote cli) (Filename.quote store_dir)
       in
       if Sys.command cmd <> 0 then failwith "warm CLI run failed"
     in
     run ();
     (* once to warm *)
     let cli_warm = seconds run in
     row "";
     row "one warm request, daemon vs fresh CLI process on the same store:";
     row "  daemon p50 %.3f ms | CLI %.1f ms | %.0fx (process start, parse,"
       (ms daemon_p50) (ms cli_warm)
       (cli_warm /. max daemon_p50 1e-9);
     row "  store decode and render are paid once by the daemon, not per call"
   end
   else begin
     row "";
     row "warm CLI baseline skipped (%s not built)" cli
   end);

  (* -- bit identity: repeated and concurrent answers never drift ------ *)
  let cif_of r =
    match
      Option.bind (Json.member "result" r) (Json.mem_string "cif")
    with
    | Some s -> s
    | None -> failwith "no cif in response"
  in
  let c = connect sock in
  let rq v =
    match Client.request c v with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let a = cif_of (rq (gen ~cif:true "m12 multiplier size=12")) in
  let b = cif_of (rq (gen ~cif:true "m12 multiplier size=12")) in
  let direct =
    Cif.to_string
      (Rsg_mult.Layout_gen.generate ~xsize:12 ~ysize:12 ())
        .Rsg_mult.Layout_gen.whole
  in
  row "";
  row "warm answers byte-identical to each other: %b; to direct generation: %b"
    (a = b) (a = direct);
  Client.close c;
  shutdown sock th;

  (* -- coalescing and saturation on a deliberately small daemon ------- *)
  let sock = sock_of "small" in
  let th =
    start
      {
        (Serve.default_config ~socket_path:sock) with
        Serve.workers = 1;
        queue_depth = 2;
      }
  in
  let c = connect sock in
  let counter name =
    match Client.request c (obj [ ("id", str "s"); ("op", str "stats") ]) with
    | Ok r ->
      Option.value ~default:0
        (Option.bind (Json.member "result" r) (fun res ->
             Option.bind (Json.member "counters" res) (fun cs ->
                 Option.bind (Json.member name cs) Json.to_int_opt)))
    | Error msg -> failwith msg
  in
  let before = counter "serve.coalesced" in
  (* pin the one worker, then send identical generates back to back:
     all but the leader must attach to the in-flight computation *)
  (match
     Client.pipeline c
       [
         obj [ ("id", str "pin"); ("op", str "sleep"); ("ms", Json.Int 200) ];
         gen "d4 decoder n=4";
         gen "d4 decoder n=4";
         gen "d4 decoder n=4";
       ]
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  row "";
  row "coalescing (1 worker pinned, 3 identical generates pipelined):";
  row "  riders attached to the in-flight computation: %d (expected 2)"
    (counter "serve.coalesced" - before);
  Client.close c;
  (* offered load ~4x what one worker can clear: 8 threads of 25 ms
     jobs against a capacity of 40 jobs/s, all with generous deadlines
     so every rejection is admission control, not a deadline miss *)
  let sat =
    replay ~sock ~concurrency:8 ~repeat:6
      [
        obj
          [
            ("id", str "w"); ("op", str "sleep"); ("ms", Json.Int 25);
            ("deadline_ms", Json.Int 60_000);
          ];
      ]
  in
  row "";
  row "saturation, 1 worker / queue 2, 8 threads x 25 ms jobs:";
  row "  sent %d | ok %d | queue_full %d | deadline_expired %d"
    sat.Load.l_sent sat.Load.l_ok (err_count "queue_full" sat)
    (err_count "deadline_expired" sat);
  row "  p99 %.1f ms (bounded: excess load is rejected at admission,"
    (ms (Load.percentile sat.Load.l_latencies 99.));
  row "  never queued without limit)";
  shutdown sock th;
  note "a resident service answers warm requests at memory-cache cost;";
  note "per-request CLI processes pay startup + store decode every time.";
  note "admission control keeps tail latency flat under overload: the";
  note "daemon says queue_full immediately instead of queueing unboundedly"

(* ------------------------------------------------------------------ *)
(* E29 (lib/compact): whole-structure hierarchical compaction.  Each   *)
(* distinct prototype is condensed once (fanned across the domain      *)
(* pool), cached artifacts replay on the warm path, and the stitch     *)
(* re-legislates only inter-element spacing — so a fully abutted       *)
(* builtin is the identity while a loose floorplan shrinks to the      *)
(* rule-deck gap, DRC-clean and bit-identical at every domain count.   *)

let e29 () =
  section "E29"
    "hierarchical compaction: parallel condense, cached replay, stitch";
  let module H = Rsg_compact.Hcompact in
  let module Drc = Rsg_drc.Drc in
  let rules = Rsg_compact.Rules.default in
  let builtins =
    [ ("pla",
       fun () ->
         (Rsg_pla.Gen.generate
            (Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ]))
           .Rsg_pla.Gen.cell);
      ("decoder", fun () -> (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell);
      ("ram",
       fun () ->
         (Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 ()).Rsg_ram.Ram_gen.cell);
      ("multiplier",
       fun () ->
         (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ())
           .Rsg_mult.Layout_gen.whole) ]
  in
  let fingerprint cell =
    let protos = Flatten.prototypes cell in
    let f = Flatten.proto_flat protos (Flatten.protos_root protos) in
    Digest.to_hex
      (Digest.string
         (String.concat ";"
            (Array.to_list
               (Array.map
                  (fun (l, b) ->
                    Printf.sprintf "%s:%d,%d,%d,%d" (Layer.name l) b.Box.xmin
                      b.Box.ymin b.Box.xmax b.Box.ymax)
                  f.Flatten.flat_boxes))))
  in
  let violations cell =
    List.length (Drc.check_cell ~domains:1 cell).Drc.r_violations
  in
  let nd = Rsg_par.Par.default_domains () in
  let domain_counts = List.sort_uniq compare [ 1; 2; nd ] in
  let warm_of r =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (hex, p, _) -> Hashtbl.replace tbl hex p) r.H.hr_artifacts;
    Hashtbl.find_opt tbl
  in
  (* fully abutted builtins: compaction is the identity (no seam has
     slack), which is itself the correctness statement — interior
     geometry and designed abutments are never rewritten *)
  row "builtin structures (fully abutted: hier compaction is the identity)";
  row "%-12s %6s %8s %7s | %9s %9s %6s | %7s %7s %5s" "layout" "protos"
    "constrs" "k/sec" "area-in" "area-out" "drc" "cold-s" "warm-s" "same";
  List.iter
    (fun (name, mk) ->
      let cell = mk () in
      let cold_s = seconds (fun () -> ignore (H.hier ~domains:nd rules cell)) in
      let per_domain =
        List.map
          (fun d -> fingerprint (H.hier ~domains:d rules cell).H.hr_cell)
          domain_counts
      in
      let r = H.hier ~domains:nd rules cell in
      let s = r.H.hr_stats in
      let warm_s =
        seconds (fun () ->
            ignore (H.hier ~domains:nd ~cached:(warm_of r) rules cell))
      in
      let rw = H.hier ~domains:nd ~cached:(warm_of r) rules cell in
      let same =
        (match per_domain with
        | [] -> true
        | f :: rest -> List.for_all (( = ) f) rest)
        && fingerprint rw.H.hr_cell = List.hd per_domain
        && rw.H.hr_stats.H.hs_reused = rw.H.hr_stats.H.hs_protos
      in
      let constrs = s.H.hs_internal_constraints + s.H.hs_stitch_constraints in
      let drc_out = violations r.H.hr_cell in
      row "%-12s %6d %8d %7.0f | %9d %9d %6d | %7.4f %7.4f %5b" name
        s.H.hs_protos constrs
        (float_of_int constrs /. max cold_s 1e-9 /. 1e3)
        s.H.hs_area_before s.H.hs_area_after drc_out cold_s warm_s same;
      json_int (name ^ ".protos") s.H.hs_protos;
      json_int (name ^ ".constraints") constrs;
      json_int (name ^ ".area_before") s.H.hs_area_before;
      json_int (name ^ ".area_after") s.H.hs_area_after;
      json_int (name ^ ".drc_out") drc_out;
      json_num (name ^ ".cold_s") cold_s;
      json_num (name ^ ".warm_s") warm_s;
      json_int (name ^ ".warm_reused") rw.H.hr_stats.H.hs_reused;
      json_bool (name ^ ".identical") same)
    builtins;
  row "";
  (* loose floorplans: two copies of each builtin at a huge gap and a
     y misalignment; the stitch pulls them to the rule-deck spacing *)
  row "loose floorplans (2 copies, gap 2000, y off 17): stitch shrinks to";
  row "the deck gap; flat compact_xy shown for scale (it may rewrite";
  row "interiors, hier never does)";
  row "%-16s %9s %9s %7s | %9s %9s | %7s %7s %8s" "chip" "area-in" "area-out"
    "shrunk" "flat-xy" "flat-s" "cold-s" "warm-s" "reused";
  List.iter
    (fun (name, mk) ->
      let cell = mk () in
      let protos = Flatten.prototypes cell in
      let bb =
        match Flatten.cell_bbox protos cell with
        | Some b -> b
        | None -> assert false
      in
      let chip () =
        let chip = Cell.create (name ^ "-chip") in
        ignore (Cell.add_instance chip ~at:(Vec.make 0 0) cell);
        ignore
          (Cell.add_instance chip ~at:(Vec.make (Box.width bb + 2000) 17) cell);
        chip
      in
      let cold_s, r = time_once (fun () -> H.hier ~domains:nd rules (chip ())) in
      let s = r.H.hr_stats in
      let warm_s, rw =
        time_once (fun () ->
            H.hier ~domains:nd ~cached:(warm_of r) rules (chip ()))
      in
      (* the greedy flat compactor can emit a contradictory system on
         structures the hierarchical stitch handles (it re-derives
         every interior constraint from scratch); report that rather
         than crash the section *)
      let flat_s, flat =
        time_once (fun () ->
            try
              Some
                (Rsg_compact.Compactor.compact_xy rules
                   (Rsg_compact.Scanline.items_of_cell (chip ())))
            with Rsg_compact.Bellman.Infeasible _ -> None)
      in
      let flat_area =
        match flat with
        | Some f -> string_of_int f.Rsg_compact.Compactor.area_after
        | None -> "infeas."
      in
      let shrunk = s.H.hs_area_after < s.H.hs_area_before in
      let drc_out = violations r.H.hr_cell in
      row "%-16s %9d %9d %7b | %9s %9.3f | %7.3f %7.3f %4d/%-3d"
        (name ^ "-chip") s.H.hs_area_before s.H.hs_area_after shrunk flat_area
        flat_s cold_s warm_s rw.H.hr_stats.H.hs_reused
        rw.H.hr_stats.H.hs_protos;
      row "%-16s drc-out %d  warm identical %b" "" drc_out
        (fingerprint rw.H.hr_cell = fingerprint r.H.hr_cell);
      json_int (name ^ "-chip.area_before") s.H.hs_area_before;
      json_int (name ^ "-chip.area_after") s.H.hs_area_after;
      (match flat with
      | Some f ->
        json_int (name ^ "-chip.flat_xy_area") f.Rsg_compact.Compactor.area_after
      | None -> json_str (name ^ "-chip.flat_xy_area") "infeasible");
      json_int (name ^ "-chip.drc_out") drc_out;
      json_num (name ^ "-chip.cold_s") cold_s;
      json_num (name ^ "-chip.warm_s") warm_s;
      json_num (name ^ "-chip.flat_xy_s") flat_s;
      json_bool (name ^ "-chip.shrunk") shrunk)
    builtins;
  note "condensation is per distinct prototype and order-independent,";
  note "so the result is bit-identical at every domain count; the warm";
  note "path replays every cached artifact (reused = protos) and skips";
  note "constraint generation entirely"

(* E30 (lib/erc): static electrical rule checking.  One verdict per   *)
(* distinct prototype, content-addressed by subtree hash; the warm    *)
(* path replays every verdict (including the root adjudication)       *)
(* without touching any geometry, and the per-net classification fan  *)
(* is bit-identical at every domain count.                            *)

let e30 () =
  section "E30"
    "static ERC: per-prototype verdicts, cached replay, domain-pool fan";
  let module Erc = Rsg_erc.Erc in
  let mk_pla () =
    (Rsg_pla.Gen.generate
       (Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ]))
      .Rsg_pla.Gen.cell
  in
  let mk_mult () =
    (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ())
      .Rsg_mult.Layout_gen.whole
  in
  let chip_of name cell =
    (* the E29 chip shape: two copies at a wide gap, so the root flat
       is the dominant electrical context *)
    let protos = Flatten.prototypes cell in
    let bb =
      match Flatten.cell_bbox protos cell with
      | Some b -> b
      | None -> assert false
    in
    let chip = Cell.create (name ^ "-chip") in
    ignore (Cell.add_instance chip ~at:(Vec.make 0 0) cell);
    ignore
      (Cell.add_instance chip ~at:(Vec.make (Box.width bb + 2000) 17) cell);
    chip
  in
  let workloads =
    [ ("pla", mk_pla ());
      ("decoder", (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell);
      ("ram",
       (Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 ()).Rsg_ram.Ram_gen.cell);
      ("multiplier", mk_mult ());
      ("mult-chip", chip_of "mult" (mk_mult ())) ]
  in
  let warm_of (r : Erc.report) =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (l : Erc.level) ->
        Hashtbl.replace tbl l.Erc.l_hash l.Erc.l_verdict)
      r.Erc.r_levels;
    Hashtbl.find_opt tbl
  in
  let domain_counts = [ 1; 2; 4 ] in
  row "%-12s %6s %6s %5s %6s | %8s %8s %6s | %6s %5s" "layout" "levels"
    "nets" "devs" "diags" "cold-s" "warm-s" "x" "replay" "same";
  List.iter
    (fun (name, cell) ->
      let r = Erc.check_cell ~domains:4 cell in
      let levels = List.length r.Erc.r_levels in
      let diags =
        List.length (Erc.to_diags r).Rsg_lint.Diag.r_diags
      in
      let cold_s =
        seconds (fun () -> ignore (Erc.check_cell ~domains:4 cell))
      in
      let warm_s =
        seconds (fun () ->
            ignore (Erc.check_cell ~domains:4 ~cached:(warm_of r) cell))
      in
      let rw = Erc.check_cell ~domains:4 ~cached:(warm_of r) cell in
      (* cross-domain: full report JSON bit-identical; warm: the
         replayed diagnostics bit-identical to the cold adjudication *)
      let per_domain =
        List.map
          (fun d -> Erc.report_to_json (Erc.check_cell ~domains:d cell))
          domain_counts
      in
      let same =
        (match per_domain with
        | [] -> true
        | f :: rest -> List.for_all (String.equal f) rest)
        && Rsg_lint.Diag.report_to_json (Erc.to_diags rw)
           = Rsg_lint.Diag.report_to_json (Erc.to_diags r)
      in
      let speedup = cold_s /. Float.max warm_s 1e-9 in
      row "%-12s %6d %6d %5d %6d | %8.4f %8.4f %5.0fx | %3d/%-3d %5b" name
        levels r.Erc.r_nets r.Erc.r_devices diags cold_s warm_s speedup
        rw.Erc.r_cached levels same;
      json_int (name ^ ".erc_levels") levels;
      json_int (name ^ ".erc_nets") r.Erc.r_nets;
      json_int (name ^ ".erc_devices") r.Erc.r_devices;
      json_int (name ^ ".erc_diags") diags;
      json_num (name ^ ".erc_cold_s") cold_s;
      json_num (name ^ ".erc_warm_s") warm_s;
      json_num (name ^ ".erc_speedup") speedup;
      json_int (name ^ ".erc_replayed") rw.Erc.r_cached;
      json_bool (name ^ ".erc_identical") same)
    workloads;
  note "electrical judgement is global (a gate's driver may sit in a";
  note "personalisation mask deep inside a parent), so non-root levels";
  note "carry censuses and the root carries the adjudication; a warm";
  note "run replays every verdict (replay = levels) without extracting";
  note "a single box"

(* E31 (lib/search): parallel search-based placement & PLA folding.   *)
(* Cost is hierarchically compacted area; independent chains fan      *)
(* across the domain pool and merge best-of-N in chain order, so a    *)
(* fixed seed is bit-identical at every domain count; candidate       *)
(* evaluations are content-addressed and a warm re-run replays them   *)
(* without re-solving a single constraint graph.                      *)

type e31_runner =
  ?cached:(string -> int option) ->
  domains:int ->
  unit ->
  int * string * int * (string * int) list * Rsg_search.Anneal.stats

let e31 () =
  section "E31"
    "annealed placement & folding: chain fan-out, cached candidate evals";
  let module A = Rsg_search.Anneal in
  let module F = Rsg_search.Fold_opt in
  let module P = Rsg_search.Place_opt in
  let rules = Rsg_compact.Rules.default in
  (* greedy folds (0,1) first, and the induced row precedence makes
     (2,3) cyclic — one pair.  (0,2)+(3,1) folds every column. *)
  let tt_sub =
    Rsg_pla.Truth_table.of_strings [ ("1--1", "10"); ("-11-", "01") ]
  in
  let tt_simple =
    Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ]
  in
  let block () =
    (Rsg_pla.Gen.generate tt_simple).Rsg_pla.Gen.cell
  in
  let summary (r : _ A.result) =
    (r.A.r_cost, Digest.to_hex r.A.r_digest, r.A.r_initial_cost, r.A.r_evals,
     r.A.r_stats)
  in
  (* each runner rebuilds its start state, so repeated timings never
     share mutable internals or sample databases *)
  let fold_runner tt ?cached ~domains () =
    summary
      (A.run ~domains ?cached ~chains:2 ~iters:30 ~seed:3 F.problem
         (F.make ~rules tt))
  in
  let place_runner ?cached ~domains () =
    summary
      (A.run ~domains ?cached ~chains:2 ~iters:40 ~seed:7 P.problem
         (P.make ~rules (List.init 4 (fun _ -> block ()))))
  in
  let workloads : (string * [ `Pla | `Chip ] * e31_runner) list =
    [ ("pla-sub", `Pla, fold_runner tt_sub);
      ("pla-simple", `Pla, fold_runner tt_simple);
      ("pla-chip", `Chip, place_runner) ]
  in
  let never_worse = ref true in
  let strict_pla = ref false in
  let strict_chip = ref false in
  let replay_10x = ref true in
  row "%-10s %8s %8s %6s | %8s %8s %7s %5s | %5s" "workload" "greedy"
    "anneal" "impr" "cold-s" "warm-s" "x" "warm#" "same";
  List.iter
    (fun (name, kind, (run : e31_runner)) ->
      let cold_s, (cost, digest, greedy, evals, _) =
        time_once (fun () -> run ~domains:4 ())
      in
      let tbl = Hashtbl.create 64 in
      List.iter (fun (d, c) -> Hashtbl.replace tbl d c) evals;
      let cached d = Hashtbl.find_opt tbl d in
      let warm_s, (wcost, wdigest, _, _, wst) =
        time_once (fun () -> run ~cached ~domains:4 ())
      in
      (* candidates/sec at 1, 2 and 4 domains, identical best layout *)
      let per_domain =
        List.map
          (fun d ->
            let s, (c, dg, _, _, st) = time_once (fun () -> run ~domains:d ()) in
            (d, c, dg, float_of_int st.A.st_computed /. Float.max s 1e-9))
          [ 1; 2; 4 ]
      in
      let same =
        List.for_all (fun (_, c, dg, _) -> c = cost && dg = digest) per_domain
        && wcost = cost && wdigest = digest
      in
      let speedup = cold_s /. Float.max warm_s 1e-9 in
      never_worse := !never_worse && cost <= greedy && same;
      if cost < greedy then begin
        match kind with
        | `Pla -> strict_pla := true
        | `Chip -> strict_chip := true
      end;
      replay_10x :=
        !replay_10x && wst.A.st_computed = 0 && speedup >= 10.0;
      row "%-10s %8d %8d %6b | %8.3f %8.3f %6.0fx %5d | %5b" name greedy cost
        (cost < greedy) cold_s warm_s speedup wst.A.st_computed same;
      List.iter
        (fun (d, _, _, cps) -> row "%-10s   domains=%d  %7.1f candidates/sec" ""
            d cps)
        per_domain;
      json_int (name ^ ".greedy_area") greedy;
      json_int (name ^ ".anneal_area") cost;
      json_bool (name ^ ".improved") (cost < greedy);
      json_num (name ^ ".cold_s") cold_s;
      json_num (name ^ ".warm_s") warm_s;
      json_num (name ^ ".warm_speedup") speedup;
      json_int (name ^ ".warm_computed") wst.A.st_computed;
      json_int (name ^ ".warm_cached") wst.A.st_cached;
      json_bool (name ^ ".identical") same;
      List.iter
        (fun (d, _, _, cps) ->
          json_num (Printf.sprintf "%s.candidates_per_s_d%d" name d) cps)
        per_domain)
    workloads;
  json_bool "anneal_never_worse" !never_worse;
  json_bool "strictly_smaller_pla" !strict_pla;
  json_bool "strictly_smaller_chip" !strict_chip;
  json_bool "warm_replay_10x" !replay_10x;
  note "the greedy column is the zero-iteration baseline (the fixed";
  note "fold heuristic / one-row floorplan); anneal can only match or";
  note "beat it, and the warm pass replays every candidate from the";
  note "evaluation cache (warm# = evaluations actually computed).";
  note "chains are pure functions of (seed, index), so the best layout";
  note "is bit-identical at every domain count; at these toy deck";
  note "sizes a single candidate solve is allocation-bound, so the";
  note "chain fan-out is GC-contention-limited rather than linear"

let sections =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19); ("E20", e20); ("E21", e21);
    ("E22", e22); ("E23", e23); ("E24", e24); ("E25", e25); ("E26", e26);
    ("E27", e27); ("E28", e28); ("E29", e29); ("E30", e30); ("E31", e31) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json, names = List.partition (String.equal "--json") args in
  if json <> [] then Bench_util.json_enabled := true;
  let wanted = match names with [] -> List.map fst sections | ns -> ns in
  Format.printf "RSG experiment harness — see DESIGN.md for the index@.";
  List.iter
    (fun id ->
      match List.assoc_opt id sections with
      | Some f ->
        f ();
        flush_json id
      | None -> Format.printf "unknown section %s@." id)
    wanted;
  Format.printf "@.done.@."

type key = string * string * int

type t = (key, Interface.t) Hashtbl.t

exception Conflict of { from : string; into : string; index : int }

let create ?(size = 256) () = Hashtbl.create size

let add_one tbl key iface =
  match Hashtbl.find_opt tbl key with
  | None -> Hashtbl.add tbl key iface
  | Some existing ->
    if not (Interface.equal existing iface) then
      let from, into, index = key in
      raise (Conflict { from; into; index })

let declare tbl ~from ~into ~index iface =
  add_one tbl (from, into, index) iface;
  if not (String.equal from into) then
    add_one tbl (into, from, index) (Interface.invert iface)

let replace tbl ~from ~into ~index iface =
  Hashtbl.replace tbl (from, into, index) iface;
  if not (String.equal from into) then
    Hashtbl.replace tbl (into, from, index) (Interface.invert iface)

let find tbl ~from ~into ~index = Hashtbl.find_opt tbl (from, into, index)

let find_exn tbl ~from ~into ~index = Hashtbl.find tbl (from, into, index)

let mem tbl ~from ~into ~index = Hashtbl.mem tbl (from, into, index)

let indices tbl ~from ~into =
  Hashtbl.fold
    (fun (a, b, k) _ acc ->
      if String.equal a from && String.equal b into then k :: acc else acc)
    tbl []
  |> List.sort_uniq Int.compare

let length tbl = Hashtbl.length tbl

let fold f tbl init =
  Hashtbl.fold (fun (from, into, index) iface acc -> f ~from ~into ~index iface acc)
    tbl init

let next_index tbl ~from ~into =
  let used = indices tbl ~from ~into in
  let rec go i = if List.mem i used then go (i + 1) else i in
  go 1

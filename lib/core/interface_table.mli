(** The interface table (section 2.4).

    A mapping from triplets (cellname1, cellname2, interface index) to
    interfaces, implemented with a hash table as in the thesis
    ("interface lookup must be fast", section 4.5).

    The table is {e bilateral}: when [Iab] is declared, the
    corresponding [Iba] is loaded too, because during graph expansion
    it is not known in advance which of the two instances has a known
    placement (section 2.4).

    When the two cells are the same ([A = A]), the forward and inverse
    interfaces live under the same key, so a single canonical
    interface I°aa is stored — the one whose {e reference instance}
    the user graphically identified in the sample (section 3.4).
    Directed connectivity-graph edges then select I°aa or its inverse
    at expansion time. *)

type t

exception Conflict of { from : string; into : string; index : int }
(** A different interface is already declared under this key. *)

val create : ?size:int -> unit -> t

val declare :
  t -> from:string -> into:string -> index:int -> Interface.t -> unit
(** [declare tbl ~from:a ~into:b ~index iab] loads [Iab] under
    [(a, b, index)] and [invert Iab] under [(b, a, index)] (unless
    [a = b], where only the forward entry exists).  Re-declaring the
    identical interface is a no-op; declaring a {e different} interface
    for an existing key raises {!Conflict} — interface indices must be
    unambiguous. *)

val replace :
  t -> from:string -> into:string -> index:int -> Interface.t -> unit
(** Like {!declare} but overwrites any existing (possibly different)
    entry, bilaterally — the repair operation behind re-expanding a
    graph whose diagnosis ([Expand.run ~mode:`Collect]) blamed a
    declared interface. *)

val find : t -> from:string -> into:string -> index:int -> Interface.t option
(** Interface for deriving the placement of [into] from the placement
    of [from]. *)

val find_exn : t -> from:string -> into:string -> index:int -> Interface.t

val mem : t -> from:string -> into:string -> index:int -> bool

val indices : t -> from:string -> into:string -> int list
(** Sorted interface index numbers available between two cells (the
    "family of legal interfaces", Figure 2.3). *)

val length : t -> int
(** Number of stored entries (bilateral pairs count twice). *)

val fold :
  (from:string -> into:string -> index:int -> Interface.t -> 'a -> 'a) ->
  t -> 'a -> 'a

val next_index : t -> from:string -> into:string -> int
(** Smallest positive index not yet used between the two cells. *)

open Rsg_geom
open Rsg_layout

type t = { vec : Vec.t; orient : Orient.t }

let make vec orient = { vec; orient }

let equal a b = Vec.equal a.vec b.vec && Orient.equal a.orient b.orient

let pp ppf i = Format.fprintf ppf "(%a, %a)" Vec.pp i.vec Orient.pp i.orient

let of_placements ~(a : Transform.t) ~(b : Transform.t) =
  let oa_inv = Orient.invert a.Transform.orient in
  { orient = Orient.compose oa_inv b.Transform.orient;
    vec = Orient.apply oa_inv (Vec.sub b.Transform.offset a.Transform.offset) }

let of_instances ia ib =
  of_placements
    ~a:(Cell.transform_of_instance ia)
    ~b:(Cell.transform_of_instance ib)

let invert i =
  let oi = Orient.invert i.orient in
  { vec = Vec.neg (Orient.apply oi i.vec); orient = oi }

let place ~(a : Transform.t) i =
  let orient = Orient.compose a.Transform.orient i.orient in
  let offset =
    Vec.add (Orient.apply a.Transform.orient i.vec) a.Transform.offset
  in
  Transform.{ orient; offset }

let inherit_interface ~inner ~(a_in_c : Transform.t) ~(b_in_d : Transform.t) =
  let oca = a_in_c.Transform.orient
  and lca = a_in_c.Transform.offset
  and odb = b_in_d.Transform.orient
  and ldb = b_in_d.Transform.offset in
  let ocd = Orient.compose (Orient.compose oca inner.orient) (Orient.invert odb) in
  let vcd =
    Vec.add
      (Vec.sub (Orient.apply oca inner.vec) (Orient.apply ocd ldb))
      lca
  in
  { vec = vcd; orient = ocd }

open Rsg_geom
open Rsg_layout

exception Missing_interface of { from : string; into : string; index : int }

exception Inconsistent_cycle of {
  cell : string;
  expected : Transform.t;
  actual : Transform.t;
}

exception Already_placed of string

let interface_for tbl ~(placed : Graph.node) ~(edge : Graph.edge) =
  let a = placed.Graph.def.Cell.cname
  and b = edge.Graph.peer.Graph.def.Cell.cname in
  if not (String.equal a b) then
    Interface_table.find tbl ~from:a ~into:b ~index:edge.Graph.index
  else
    (* Same celltype: the table holds the canonical I°aa whose
       reference instance is the edge's source.  Walking along the
       edge direction uses it as-is; walking against it inverts. *)
    let fwd = Interface_table.find tbl ~from:a ~into:b ~index:edge.Graph.index in
    match edge.Graph.dir with
    | Graph.Emanating -> fwd
    | Graph.Terminating -> Option.map Interface.invert fwd

let place_component ?(root_placement = Transform.identity)
    ?(check_cycles = true) tbl root =
  let nodes = Graph.reachable root in
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.placement with
      | Some _ -> raise (Already_placed n.Graph.def.Cell.cname)
      | None -> ())
    nodes;
  root.Graph.placement <- Some root_placement;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    let tn =
      match n.Graph.placement with
      | Some t -> t
      | None -> assert false
    in
    List.iter
      (fun (e : Graph.edge) ->
        let iface =
          match interface_for tbl ~placed:n ~edge:e with
          | Some i -> i
          | None ->
            raise
              (Missing_interface
                 { from = n.Graph.def.Cell.cname;
                   into = e.Graph.peer.Graph.def.Cell.cname;
                   index = e.Graph.index })
        in
        let implied = Interface.place ~a:tn iface in
        match e.Graph.peer.Graph.placement with
        | None ->
          e.Graph.peer.Graph.placement <- Some implied;
          Queue.add e.Graph.peer queue
        | Some actual ->
          if check_cycles && not (Transform.equal implied actual) then
            raise
              (Inconsistent_cycle
                 { cell = e.Graph.peer.Graph.def.Cell.cname;
                   expected = implied;
                   actual }))
      (Graph.edges n)
  done;
  nodes

let mk_cell ?db ?check_cycles tbl name root =
  let nodes = place_component ?check_cycles tbl root in
  let cell = Cell.create name in
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.placement with
      | Some t ->
        Cell.add_instance_obj cell
          (Cell.instance ~orient:t.Transform.orient ~at:t.Transform.offset
             n.Graph.def)
      | None -> assert false)
    nodes;
  Option.iter (fun db -> Db.add db cell) db;
  cell

let both_readings tbl ~placed ~from ~into ~index =
  match Interface_table.find tbl ~from ~into ~index with
  | None -> None
  | Some i ->
    Some (Interface.place ~a:placed i, Interface.place ~a:placed (Interface.invert i))

open Rsg_geom
open Rsg_layout
module Obs = Rsg_obs.Obs

exception Missing_interface of { from : string; into : string; index : int }

exception Inconsistent_cycle of {
  cell : string;
  expected : Transform.t;
  actual : Transform.t;
}

exception Already_placed of string

type mode = [ `Fail_fast | `Collect ]

type defect =
  | Missing of {
      from : string;
      into : string;
      index : int;
      path : string list;
    }
  | Mismatch of {
      cell : string;
      from : string;
      index : int;
      expected : Transform.t;
      actual : Transform.t;
      path : string list;
    }

type report = {
  r_root : Graph.node;
  r_placements : (Graph.node * Transform.t) list;
  r_defects : defect list;
  r_component : int;
  r_edges_walked : int;
}

let interface_for tbl ~(placed : Graph.node) ~(edge : Graph.edge) =
  let a = placed.Graph.def.Cell.cname
  and b = edge.Graph.peer.Graph.def.Cell.cname in
  if not (String.equal a b) then
    Interface_table.find tbl ~from:a ~into:b ~index:edge.Graph.index
  else
    (* Same celltype: the table holds the canonical I°aa whose
       reference instance is the edge's source.  Walking along the
       edge direction uses it as-is; walking against it inverts. *)
    let fwd = Interface_table.find tbl ~from:a ~into:b ~index:edge.Graph.index in
    match edge.Graph.dir with
    | Graph.Emanating -> fwd
    | Graph.Terminating -> Option.map Interface.invert fwd

(* The transactional engine.  Placements are derived into a map keyed
   by node id; the graph itself is never written, so a failed or
   defective expansion leaves every [placement] field exactly as it
   was, and a later run over the same (repaired) graph starts clean. *)
let run ?(root_placement = Transform.identity) ?(check_cycles = true)
    ?(mode : mode = `Fail_fast) tbl root =
  Obs.span "expand" (fun () ->
      let component = Graph.reachable root in
      List.iter
        (fun (n : Graph.node) ->
          match n.Graph.placement with
          | Some _ -> raise (Already_placed n.Graph.def.Cell.cname)
          | None -> ())
        component;
      let derived : (int, Transform.t) Hashtbl.t = Hashtbl.create 64 in
      let parent : (int, Graph.node) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] (* placed nodes, reverse traversal order *)
      and defects = ref []
      and edges_walked = ref 0 in
      (* traversal path from the root, as celltype names *)
      let path_to n =
        let rec up acc (n : Graph.node) =
          let acc = n.Graph.def.Cell.cname :: acc in
          match Hashtbl.find_opt parent n.Graph.id with
          | Some p -> up acc p
          | None -> acc
        in
        up [] n
      in
      let exception Stop in
      let add_defect d =
        defects := d :: !defects;
        if mode = `Fail_fast then raise Stop
      in
      (* every edge is stored on both endpoints, so a defect would be
         seen twice: a missing interface is deduplicated by the failed
         (unordered) table key, a mismatch by reporting it only from
         the edge's emanating side — both endpoints of a mismatching
         edge are placed, hence both eventually walked *)
      let missing_seen : (string * string * int, unit) Hashtbl.t =
        Hashtbl.create 8
      in
      let missing_key from into index =
        if String.compare from into <= 0 then (from, into, index)
        else (into, from, index)
      in
      Hashtbl.add derived root.Graph.id root_placement;
      order := [ root ];
      let queue = Queue.create () in
      Queue.add root queue;
      (try
         while not (Queue.is_empty queue) do
           let n = Queue.pop queue in
           let tn = Hashtbl.find derived n.Graph.id in
           List.iter
             (fun (e : Graph.edge) ->
               incr edges_walked;
               match interface_for tbl ~placed:n ~edge:e with
               | None ->
                 let from = n.Graph.def.Cell.cname
                 and into = e.Graph.peer.Graph.def.Cell.cname in
                 let key = missing_key from into e.Graph.index in
                 if not (Hashtbl.mem missing_seen key) then begin
                   Hashtbl.add missing_seen key ();
                   add_defect
                     (Missing
                        { from; into; index = e.Graph.index; path = path_to n })
                 end
               | Some iface -> (
                 let implied = Interface.place ~a:tn iface in
                 match Hashtbl.find_opt derived e.Graph.peer.Graph.id with
                 | None ->
                   Hashtbl.add derived e.Graph.peer.Graph.id implied;
                   Hashtbl.add parent e.Graph.peer.Graph.id n;
                   order := e.Graph.peer :: !order;
                   Queue.add e.Graph.peer queue
                 | Some actual ->
                   if
                     check_cycles
                     && e.Graph.dir = Graph.Emanating
                     && not (Transform.equal implied actual)
                   then
                     add_defect
                       (Mismatch
                          { cell = e.Graph.peer.Graph.def.Cell.cname;
                            from = n.Graph.def.Cell.cname;
                            index = e.Graph.index;
                            expected = implied;
                            actual;
                            path = path_to e.Graph.peer })))
             (Graph.edges n)
         done
       with Stop -> ());
      Obs.count "expand.runs";
      Obs.count ~n:(List.length component) "expand.nodes";
      Obs.count ~n:!edges_walked "expand.edges";
      Obs.count ~n:(List.length !defects) "expand.defects";
      { r_root = root;
        r_placements =
          List.rev_map
            (fun (n : Graph.node) -> (n, Hashtbl.find derived n.Graph.id))
            !order;
        r_defects = List.rev !defects;
        r_component = List.length component;
        r_edges_walked = !edges_walked })

let commit report =
  (match report.r_defects with
  | [] -> ()
  | _ -> invalid_arg "Expand.commit: report has defects");
  if List.length report.r_placements < report.r_component then
    invalid_arg "Expand.commit: component not fully placed";
  List.iter
    (fun ((n : Graph.node), t) -> n.Graph.placement <- Some t)
    report.r_placements;
  List.map fst report.r_placements

let raise_first = function
  | [] -> assert false
  | Missing { from; into; index; _ } :: _ ->
    raise (Missing_interface { from; into; index })
  | Mismatch { cell; expected; actual; _ } :: _ ->
    raise (Inconsistent_cycle { cell; expected; actual })

(* The historical entry point, now a thin wrapper: run transactionally,
   surface the first defect as the classic exception, commit only on
   full success. *)
let place_component ?root_placement ?check_cycles tbl root =
  let r = run ?root_placement ?check_cycles ~mode:`Fail_fast tbl root in
  match r.r_defects with [] -> commit r | ds -> raise_first ds

let mk_cell ?db ?check_cycles tbl name root =
  let nodes = place_component ?check_cycles tbl root in
  let cell = Cell.create name in
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.placement with
      | Some t ->
        Cell.add_instance_obj cell
          (Cell.instance ~orient:t.Transform.orient ~at:t.Transform.offset
             n.Graph.def)
      | None -> assert false)
    nodes;
  Option.iter (fun db -> Db.add db cell) db;
  cell

let both_readings tbl ~placed ~from ~into ~index =
  match Interface_table.find tbl ~from ~into ~index with
  | None -> None
  | Some i ->
    Some (Interface.place ~a:placed i, Interface.place ~a:placed (Interface.invert i))

(* ---- rendering ----------------------------------------------------- *)

let pp_path ppf path =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
    Format.pp_print_string ppf path

let pp_defect ppf = function
  | Missing { from; into; index; path } ->
    Format.fprintf ppf
      "missing interface: no I(%s, %s, %d) in the table@,  reached via %a"
      from into index pp_path path
  | Mismatch { cell; from; index; expected; actual; path } ->
    Format.fprintf ppf
      "inconsistent cycle at an instance of %s:@,\
      \  closing edge from %s (interface %d) implies %a@,\
      \  but the spanning tree already placed it at %a@,\
      \  reached via %a"
      cell from index Transform.pp expected Transform.pp actual pp_path path

let pp_report ppf r =
  Format.fprintf ppf "@[<v>expansion of component rooted at %s (id %d):@,"
    r.r_root.Graph.def.Cell.cname r.r_root.Graph.id;
  Format.fprintf ppf "  %d nodes, %d edge slots walked, %d placed, %d defect%s@,"
    r.r_component r.r_edges_walked
    (List.length r.r_placements)
    (List.length r.r_defects)
    (if List.length r.r_defects = 1 then "" else "s");
  List.iteri
    (fun i d -> Format.fprintf ppf "@,[%d] @[<v>%a@]@," (i + 1) pp_defect d)
    r.r_defects;
  if r.r_defects = [] then
    Format.fprintf ppf "  graph is expandable (no defects)@,";
  Format.fprintf ppf "@]"

(** Sample layouts: defining cells and interfaces by example
    (sections 2.3, 5 and Figure 5.5).

    A sample layout is a set of cell definitions plus assembly cells in
    which pairs of instances are placed with the desired relative
    placement; a numeric label dropped in the overlap of the two
    instances' bounding boxes names the interface index.  Extraction
    turns each such label into an interface-table entry.

    For same-celltype interfaces the {e reference instance} (the one
    deskewed to north, at whose point of call the interface vector
    begins — section 3.4) is the instance appearing {e earlier} in the
    assembly cell's object order.  This plays the role of the thesis's
    "graphical discrimination" of the reference instance. *)

open Rsg_layout

type t = {
  db : Db.t;                    (** primitive cell definitions *)
  table : Interface_table.t;    (** extracted interfaces *)
}

type declaration = {
  d_from : string;
  d_into : string;
  d_index : int;
  d_duplicate : bool;  (** an identical entry was already in the table *)
}

exception Bad_label of string
(** Raised when a numeric label does not sit in the bounding-box
    overlap of exactly two instances. *)

val create : unit -> t

val load_cell : t -> Cell.t -> unit
(** Register a primitive cell definition. *)

val declare_by_example :
  t -> ?index:int -> Cell.instance -> Cell.instance -> int
(** Compute the interface between two instances placed in a common
    coordinate system (first argument is the reference instance) and
    load it.  [index] defaults to the next free index for the pair.
    Returns the index used.  Registers both cell definitions. *)

val extract : t -> Cell.t -> declaration list
(** Scan an assembly cell: register the definitions of all its
    instances and declare one interface per integer-valued label.
    Returns the declarations in label order. *)

val of_assemblies : Cell.t list -> t * declaration list
(** Build a sample from assembly cells (extracting each in turn). *)

val of_db : Db.t -> t * declaration list
(** Build a sample from a whole cell table (e.g. one read from a
    sample CIF/DEF file): instance-free cells register as leaf
    definitions; every cell containing both instances and labels is
    extracted as an assembly.  This is the file half of the
    Figure 1.1 flow. *)

(** Connectivity graphs (Chapter 3).

    Vertices are {e partial instances}: the cell type is known but the
    location and orientation are unspecified until the graph is
    expanded into a layout.  Edges carry interface index numbers.

    Per section 3.4 the data structure is {e bilateral} (each endpoint
    can reach the other, because the traversal root is not known while
    the graph is being built by macros) while the edges themselves are
    {e directed} (so that the two possible readings of a same-celltype
    interface I°aa vs (I°aa)^-1 can be told apart; direction
    information between different celltypes exists but is not used). *)

open Rsg_geom
open Rsg_layout

type node = {
  id : int;                               (** unique per generator *)
  def : Cell.t;                           (** celltype *)
  mutable placement : Transform.t option; (** filled in by expansion *)
  mutable edges : edge list;              (** reverse insertion order *)
}

and edge = {
  dir : direction;  (** as seen from the node owning the edge list *)
  index : int;      (** interface index number (edge weight) *)
  peer : node;
}

and direction = Emanating | Terminating

type generator
(** A node-id allocator.  Ids identify nodes in the hash tables of
    {!reachable} and [Expand], so two nodes of one traversal must
    never share an id: draw all nodes of a graph from one generator. *)

val generator : ?first:int -> unit -> generator
(** A fresh allocator, starting at [first] (default 1).  Use a
    dedicated generator to build graphs with dense, reproducible ids
    (tests, serialisation) independent of whatever else the process
    has built. *)

val default_generator : generator
(** The process-wide allocator used when [mk_instance] is called
    without [?gen].  Never resets, so ids stay unique across every
    graph built this way — mixing default-generator nodes from
    different build contexts in one graph is safe. *)

val mk_instance : ?gen:generator -> Cell.t -> node
(** The [mk_instance] operator (section 4.4.1): a fresh pseudo-instance
    node with empty edge list and blank calling parameters, its id
    drawn from [gen] (default {!default_generator}). *)

val connect : node -> node -> int -> unit
(** [connect a b index] — the [connect] operator (section 4.4.2): adds
    a directed edge from [a] to [b] with the given interface index,
    recorded bilaterally (an [Emanating] entry on [a], a [Terminating]
    entry on [b]).  Raises [Invalid_argument] on a self-loop
    [connect a a i], which would record both entries on one node and
    double-count in {!degree}. *)

val edges : node -> edge list
(** Edge list in insertion order. *)

val reachable : node -> node list
(** Every node in the connected component of the argument, in
    breadth-first order starting from it. *)

val component_size : node -> int * int
(** [(nodes, edges)] of the component, computed in a single
    breadth-first traversal. *)

val edge_count : node -> int
(** Number of distinct edges in the component. *)

val is_spanning_tree : node -> bool
(** True when the component has exactly [n - 1] edges — the thesis
    notes the graph need only be a spanning tree, cycles being
    redundant (section 3.1). *)

val degree : node -> int

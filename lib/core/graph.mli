(** Connectivity graphs (Chapter 3).

    Vertices are {e partial instances}: the cell type is known but the
    location and orientation are unspecified until the graph is
    expanded into a layout.  Edges carry interface index numbers.

    Per section 3.4 the data structure is {e bilateral} (each endpoint
    can reach the other, because the traversal root is not known while
    the graph is being built by macros) while the edges themselves are
    {e directed} (so that the two possible readings of a same-celltype
    interface I°aa vs (I°aa)^-1 can be told apart; direction
    information between different celltypes exists but is not used). *)

open Rsg_geom
open Rsg_layout

type node = {
  id : int;                               (** unique per process *)
  def : Cell.t;                           (** celltype *)
  mutable placement : Transform.t option; (** filled in by expansion *)
  mutable edges : edge list;              (** reverse insertion order *)
}

and edge = {
  dir : direction;  (** as seen from the node owning the edge list *)
  index : int;      (** interface index number (edge weight) *)
  peer : node;
}

and direction = Emanating | Terminating

val mk_instance : Cell.t -> node
(** The [mk_instance] operator (section 4.4.1): a fresh pseudo-instance
    node with empty edge list and blank calling parameters. *)

val connect : node -> node -> int -> unit
(** [connect a b index] — the [connect] operator (section 4.4.2): adds
    a directed edge from [a] to [b] with the given interface index,
    recorded bilaterally (an [Emanating] entry on [a], a [Terminating]
    entry on [b]). *)

val edges : node -> edge list
(** Edge list in insertion order. *)

val reachable : node -> node list
(** Every node in the connected component of the argument, in
    breadth-first order starting from it. *)

val edge_count : node -> int
(** Number of distinct edges in the component. *)

val is_spanning_tree : node -> bool
(** True when the component has exactly [n - 1] edges — the thesis
    notes the graph need only be a spanning tree, cycles being
    redundant (section 3.1). *)

val degree : node -> int

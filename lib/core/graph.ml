open Rsg_geom
open Rsg_layout

type node = {
  id : int;
  def : Cell.t;
  mutable placement : Transform.t option;
  mutable edges : edge list;
}

and edge = { dir : direction; index : int; peer : node }

and direction = Emanating | Terminating

(* Atomic so graphs may be built from parallel domains (rsg batch
   fans generator jobs across the Par pool): concurrent draws still
   hand out unique ids. *)
type generator = { next : int Atomic.t }

let generator ?(first = 1) () = { next = Atomic.make first }

(* The shared generator behind plain [mk_instance] calls.  Every graph
   built without an explicit generator draws from it, which keeps ids
   unique across all such graphs in the process. *)
let default_generator = generator ()

let fresh_id g = Atomic.fetch_and_add g.next 1

let mk_instance ?(gen = default_generator) def =
  { id = fresh_id gen; def; placement = None; edges = [] }

let connect a b index =
  if a == b then
    invalid_arg
      (Printf.sprintf "Graph.connect: self-loop on an instance of %s"
         a.def.Cell.cname);
  a.edges <- { dir = Emanating; index; peer = b } :: a.edges;
  b.edges <- { dir = Terminating; index; peer = a } :: b.edges

let edges n = List.rev n.edges

let reachable root =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let order = ref [] in
  Hashtbl.add seen root.id ();
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    order := n :: !order;
    List.iter
      (fun e ->
        if not (Hashtbl.mem seen e.peer.id) then begin
          Hashtbl.add seen e.peer.id ();
          Queue.add e.peer queue
        end)
      (edges n)
  done;
  List.rev !order

(* Nodes and distinct edges of the component in one traversal.  Each
   edge is stored twice (once per endpoint), so only Emanating entries
   are counted. *)
let component_size root =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let nodes = ref 0 and emanating = ref 0 in
  Hashtbl.add seen root.id ();
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr nodes;
    List.iter
      (fun e ->
        if e.dir = Emanating then incr emanating;
        if not (Hashtbl.mem seen e.peer.id) then begin
          Hashtbl.add seen e.peer.id ();
          Queue.add e.peer queue
        end)
      n.edges
  done;
  (!nodes, !emanating)

let edge_count root = snd (component_size root)

let is_spanning_tree root =
  let nodes, edges = component_size root in
  edges = nodes - 1

let degree n = List.length n.edges

open Rsg_geom
open Rsg_layout

type node = {
  id : int;
  def : Cell.t;
  mutable placement : Transform.t option;
  mutable edges : edge list;
}

and edge = { dir : direction; index : int; peer : node }

and direction = Emanating | Terminating

let counter = ref 0

let mk_instance def =
  incr counter;
  { id = !counter; def; placement = None; edges = [] }

let connect a b index =
  a.edges <- { dir = Emanating; index; peer = b } :: a.edges;
  b.edges <- { dir = Terminating; index; peer = a } :: b.edges

let edges n = List.rev n.edges

let reachable root =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let order = ref [] in
  Hashtbl.add seen root.id ();
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    order := n :: !order;
    List.iter
      (fun e ->
        if not (Hashtbl.mem seen e.peer.id) then begin
          Hashtbl.add seen e.peer.id ();
          Queue.add e.peer queue
        end)
      (edges n)
  done;
  List.rev !order

let edge_count root =
  (* Each edge is stored twice (once per endpoint); count emanating
     entries only. *)
  List.fold_left
    (fun acc n ->
      acc
      + List.length (List.filter (fun e -> e.dir = Emanating) n.edges))
    0 (reachable root)

let is_spanning_tree root =
  let nodes = reachable root in
  edge_count root = List.length nodes - 1

let degree n = List.length n.edges

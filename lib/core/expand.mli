(** Expanding a connectivity graph into a layout — the [mk_cell]
    operator (sections 3.1 and 4.4.3).

    A root node is selected and arbitrarily placed (origin, north);
    the graph is then traversed breadth-first and each partial
    instance's calling parameters are computed from an already-placed
    neighbour with

    {v Ob = Oa o Oab        Lb = Oa Vab + La v}

    selecting [Iab] or its inverse according to the edge direction when
    both endpoints have the same celltype (section 3.4).

    The same connectivity graph expands, for a given interface table,
    to a unique layout modulo one global isometry (section 3.4): the
    root choice merely picks the representative of the equivalence
    class. *)

open Rsg_geom
open Rsg_layout

exception Missing_interface of { from : string; into : string; index : int }

exception Inconsistent_cycle of {
  cell : string;            (** celltype of the doubly-constrained node *)
  expected : Transform.t;   (** placement implied by the extra edge *)
  actual : Transform.t;     (** placement from the tree traversal *)
}

exception Already_placed of string

val interface_for :
  Interface_table.t ->
  placed:Graph.node -> edge:Graph.edge -> Interface.t option
(** The interface that derives [edge.peer]'s placement from [placed]'s,
    honouring edge direction for same-celltype pairs. *)

val place_component :
  ?root_placement:Transform.t ->
  ?check_cycles:bool ->
  Interface_table.t -> Graph.node -> Graph.node list
(** Fill in the [placement] of every node reachable from the root
    (returned in traversal order).  [root_placement] defaults to the
    identity; [check_cycles] (default true) verifies that redundant
    (non-tree) edges agree with the tree placement and raises
    {!Inconsistent_cycle} otherwise.  Raises {!Missing_interface} when
    the table lacks a required entry and {!Already_placed} if any
    reachable node was previously expanded. *)

val mk_cell :
  ?db:Db.t ->
  ?check_cycles:bool ->
  Interface_table.t -> string -> Graph.node -> Cell.t
(** [mk_cell tbl name root] runs {!place_component} and builds a new
    cell containing one completed instance per node; registers it in
    [db] when provided. *)

val both_readings :
  Interface_table.t ->
  placed:Transform.t -> from:string -> into:string -> index:int ->
  (Transform.t * Transform.t) option
(** For a same-celltype interface, the two placements an {e undirected}
    edge would permit — [(using I°aa, using (I°aa)^-1)].  This is the
    ambiguity of Figures 3.5/3.6 that directed edges resolve; exposed
    for experiment E16.  [None] if the interface is absent. *)

(** Expanding a connectivity graph into a layout — the [mk_cell]
    operator (sections 3.1 and 4.4.3).

    A root node is selected and arbitrarily placed (origin, north);
    the graph is then traversed breadth-first and each partial
    instance's calling parameters are computed from an already-placed
    neighbour with

    {v Ob = Oa o Oab        Lb = Oa Vab + La v}

    selecting [Iab] or its inverse according to the edge direction when
    both endpoints have the same celltype (section 3.4).

    The same connectivity graph expands, for a given interface table,
    to a unique layout modulo one global isometry (section 3.4): the
    root choice merely picks the representative of the equivalence
    class.

    {2 Transactional expansion}

    Expansion is {e transactional}: {!run} derives placements into a
    private map keyed by node id and never touches the graph, so a
    failed expansion leaves every node's [placement] exactly as it was
    and the same graph can be re-expanded after the table or graph is
    repaired.  {!commit} writes a defect-free report back into the
    nodes; the classic {!place_component} / {!mk_cell} entry points are
    thin wrappers over run-then-commit and keep their historical
    exception behaviour.

    In [`Collect] mode {!run} keeps traversing past defects and
    returns {e all} missing interfaces and inconsistent-cycle
    mismatches, each with the offending edge, both transforms and the
    traversal path from the root — the structured diagnosis behind
    [rsg doctor]. *)

open Rsg_geom
open Rsg_layout

exception Missing_interface of { from : string; into : string; index : int }

exception Inconsistent_cycle of {
  cell : string;            (** celltype of the doubly-constrained node *)
  expected : Transform.t;   (** placement implied by the extra edge *)
  actual : Transform.t;     (** placement from the tree traversal *)
}

exception Already_placed of string

type mode = [ `Fail_fast | `Collect ]
(** [`Fail_fast] stops at the first defect (the wrapper entry points
    then raise it); [`Collect] records every defect and keeps
    expanding whatever remains derivable. *)

type defect =
  | Missing of {
      from : string;        (** celltype of the placed edge source *)
      into : string;        (** celltype of the unplaceable peer *)
      index : int;          (** interface index of the offending edge *)
      path : string list;   (** traversal path, root to the source *)
    }
  | Mismatch of {
      cell : string;        (** celltype of the doubly-constrained node *)
      from : string;        (** celltype sourcing the closing edge *)
      index : int;          (** interface index of the closing edge *)
      expected : Transform.t;  (** placement implied by the closing edge *)
      actual : Transform.t;    (** placement from the spanning tree *)
      path : string list;      (** traversal path, root to the node *)
    }

type report = {
  r_root : Graph.node;
  r_placements : (Graph.node * Transform.t) list;
  (** tentative placements in traversal order; in [`Collect] mode
      nodes reachable only through missing interfaces are absent *)
  r_defects : defect list;     (** in discovery order *)
  r_component : int;           (** nodes in the component *)
  r_edges_walked : int;        (** edge slots examined *)
}

val interface_for :
  Interface_table.t ->
  placed:Graph.node -> edge:Graph.edge -> Interface.t option
(** The interface that derives [edge.peer]'s placement from [placed]'s,
    honouring edge direction for same-celltype pairs. *)

val run :
  ?root_placement:Transform.t ->
  ?check_cycles:bool ->
  ?mode:mode ->
  Interface_table.t -> Graph.node -> report
(** Derive placements for the component of the root without mutating
    any node.  [root_placement] defaults to the identity;
    [check_cycles] (default true) verifies that redundant (non-tree)
    edges agree with the tree placement; [mode] defaults to
    [`Fail_fast].  Raises {!Already_placed} if any reachable node was
    previously expanded — that is a precondition, not a defect. *)

val commit : report -> Graph.node list
(** Write a defect-free, fully-placed report's placements into the
    graph and return the nodes in traversal order.  Raises
    [Invalid_argument] if the report has defects or did not place the
    whole component. *)

val place_component :
  ?root_placement:Transform.t ->
  ?check_cycles:bool ->
  Interface_table.t -> Graph.node -> Graph.node list
(** Fill in the [placement] of every node reachable from the root
    (returned in traversal order): {!run} in [`Fail_fast] mode
    followed by {!commit}.  Raises {!Missing_interface} or
    {!Inconsistent_cycle} on the first defect — with the graph left
    untouched — and {!Already_placed} if any reachable node was
    previously expanded. *)

val mk_cell :
  ?db:Db.t ->
  ?check_cycles:bool ->
  Interface_table.t -> string -> Graph.node -> Cell.t
(** [mk_cell tbl name root] runs {!place_component} and builds a new
    cell containing one completed instance per node; registers it in
    [db] when provided. *)

val both_readings :
  Interface_table.t ->
  placed:Transform.t -> from:string -> into:string -> index:int ->
  (Transform.t * Transform.t) option
(** For a same-celltype interface, the two placements an {e undirected}
    edge would permit — [(using I°aa, using (I°aa)^-1)].  This is the
    ambiguity of Figures 3.5/3.6 that directed edges resolve; exposed
    for experiment E16.  [None] if the interface is absent. *)

val pp_defect : Format.formatter -> defect -> unit

val pp_report : Format.formatter -> report -> unit
(** Human-readable diagnosis: component summary, then every defect
    with its offending edge, transforms and traversal path. *)

(** Interfaces between cells (Chapter 2).

    If instances of cells A and B are called within the same coordinate
    system, the interface between them is the ordered pair

    {v Iab = (Vab, Oab) v}

    where [Vab] is the interface vector and [Oab] the interface
    orientation: the placement B {e would} have if the calling cell
    were re-oriented so that the instance of A sat at the origin with
    orientation north (equations 2.1 and 2.2):

    {v Oab = Oa^-1 o Ob          Vab = Oa^-1 (Lb - La) v}

    Interfaces capture relative placement independently of bounding
    boxes, so cells may overlap, encode one another, or sit at any
    offset — the key "design by example" mechanism. *)

open Rsg_geom
open Rsg_layout

type t = { vec : Vec.t; orient : Orient.t }

val make : Vec.t -> Orient.t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val of_placements : a:Transform.t -> b:Transform.t -> t
(** Interface computed from the placements of an A instance and a B
    instance in a common coordinate system (eqs 2.1, 2.2). *)

val of_instances : Cell.instance -> Cell.instance -> t
(** Same, reading placements off two instances called in the same
    cell. *)

val invert : t -> t
(** [invert Iab = Iba = (-Oab^-1 Vab, Oab^-1)] (eqs 2.3, 2.4). *)

val place : a:Transform.t -> t -> Transform.t
(** [place ~a iab] is the placement of the B instance given the
    placement of the A instance (eqs 3.1, 3.2):
    [Ob = Oa o Oab], [Lb = Oa Vab + La]. *)

val inherit_interface :
  inner:t -> a_in_c:Transform.t -> b_in_d:Transform.t -> t
(** Interface inheritance (section 2.5).  Given an existing interface
    [inner = Iab] between subcells A and B, the calling parameters of A
    within macrocell C and of B within macrocell D, returns the
    interface Icd that C and D inherit (eqs 2.11, 2.12):

    {v Ocd = Oca o Oab o Odb^-1
       Vcd = Oca Vab - Ocd Ldb + Lca v} *)

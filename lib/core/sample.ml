open Rsg_geom
open Rsg_layout

type t = { db : Db.t; table : Interface_table.t }

type declaration = {
  d_from : string;
  d_into : string;
  d_index : int;
  d_duplicate : bool;
}

exception Bad_label of string

let create () = { db = Db.create (); table = Interface_table.create () }

let load_cell s cell = Db.add s.db cell

let declare_by_example s ?index ref_inst other_inst =
  let from = ref_inst.Cell.def.Cell.cname
  and into = other_inst.Cell.def.Cell.cname in
  if not (Db.mem s.db from) then Db.add s.db ref_inst.Cell.def;
  if not (Db.mem s.db into) then Db.add s.db other_inst.Cell.def;
  let index =
    match index with
    | Some i -> i
    | None -> Interface_table.next_index s.table ~from ~into
  in
  let iface = Interface.of_instances ref_inst other_inst in
  Interface_table.declare s.table ~from ~into ~index iface;
  index

let extract s assembly =
  let insts = Cell.instances assembly in
  List.iter (fun (i : Cell.instance) ->
      if not (Db.mem s.db i.Cell.def.Cell.cname) then Db.add s.db i.Cell.def)
    insts;
  let containing at =
    List.filter
      (fun (i : Cell.instance) ->
        match Cell.instance_bbox i with
        | Some b -> Box.contains b at
        | None -> false)
      insts
  in
  List.filter_map
    (fun (l : Cell.label) ->
      match int_of_string_opt l.Cell.text with
      | None -> None (* non-numeric labels are just annotations *)
      | Some index -> (
        match containing l.Cell.at with
        | [ first; second ] ->
          let from = first.Cell.def.Cell.cname
          and into = second.Cell.def.Cell.cname in
          let iface = Interface.of_instances first second in
          let dup =
            match Interface_table.find s.table ~from ~into ~index with
            | Some existing -> Interface.equal existing iface
            | None -> false
          in
          Interface_table.declare s.table ~from ~into ~index iface;
          Some { d_from = from; d_into = into; d_index = index; d_duplicate = dup }
        | others ->
          raise
            (Bad_label
               (Printf.sprintf
                  "label %s at %s covers %d instances in cell %s (need 2)"
                  l.Cell.text (Vec.to_string l.Cell.at) (List.length others)
                  assembly.Cell.cname))))
    (Cell.labels assembly)

let of_assemblies assemblies =
  let s = create () in
  let decls = List.concat_map (extract s) assemblies in
  (s, decls)

let of_db db =
  let s = create () in
  List.iter
    (fun cell -> if Cell.instances cell = [] then load_cell s cell)
    (Db.cells db);
  let decls =
    List.concat_map
      (fun cell ->
        if Cell.instances cell <> [] && Cell.labels cell <> [] then
          extract s cell
        else [])
      (Db.cells db)
  in
  (s, decls)

(** Axis-aligned integer rectangles.

    Boxes are the only geometric primitive VLSI layouts are built from
    in the RSG (section 2.1: "objects in A can be boxes of various
    layers, points, and instances").  A box is stored by its lower-left
    and upper-right corners and is kept normalised
    ([xmin <= xmax], [ymin <= ymax]). *)

type t = { xmin : int; ymin : int; xmax : int; ymax : int }

val make : xmin:int -> ymin:int -> xmax:int -> ymax:int -> t
(** Normalising constructor: swaps coordinates as needed. *)

val of_corners : Vec.t -> Vec.t -> t

val of_size : origin:Vec.t -> width:int -> height:int -> t
(** Box with lower-left corner [origin].  [width] and [height] must be
    non-negative; raises [Invalid_argument] otherwise. *)

val width : t -> int

val height : t -> int

val area : t -> int

val center2 : t -> Vec.t
(** Twice the center point (exact on the integer grid). *)

val translate : Vec.t -> t -> t

val transform : Orient.t -> t -> t
(** Apply an orientation about the origin; the result is
    re-normalised, so rectilinear boxes stay rectilinear boxes. *)

val contains : t -> Vec.t -> bool
(** Closed containment (boundary points count). *)

val overlaps : t -> t -> bool
(** True when the closed boxes share at least one point. *)

val intersect : t -> t -> t option

val union : t -> t -> t
(** Smallest box containing both. *)

val subtract : t -> t -> t list
(** [subtract a b] decomposes the closed region of [a] not properly
    covered by [b] into at most four disjoint boxes (full-height side
    strips, then top/bottom pieces clipped to the cut), in a fixed
    deterministic order.  A [b] that only touches [a]'s edge or corner
    removes no interior and returns [[a]] unchanged.  This is how the
    extractor splits a diffusion region into source/drain fragments
    around a gate. *)

val inflate : int -> t -> t
(** Grow (or shrink, for negative amounts) by the same margin on all
    four sides.  Raises [Invalid_argument] if shrinking would invert
    the box. *)

val distance : t -> t -> int
(** Chebyshev (L-infinity) separation of the closed boxes: the largest
    per-axis gap, 0 when they touch or overlap.  This is the metric of
    lambda design rules on rectilinear geometry: [distance a b <= k]
    iff [inflate k a] overlaps [b]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

type t = { x : int; y : int }

let make x y = { x; y }

let zero = { x = 0; y = 0 }

let add a b = { x = a.x + b.x; y = a.y + b.y }

let sub a b = { x = a.x - b.x; y = a.y - b.y }

let neg a = { x = -a.x; y = -a.y }

let scale k a = { x = k * a.x; y = k * a.y }

let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c else Int.compare a.y b.y

let dot a b = (a.x * b.x) + (a.y * b.y)

let norm2 a = dot a a

let manhattan a = abs a.x + abs a.y

let pp ppf a = Format.fprintf ppf "(%d,%d)" a.x a.y

let to_string a = Format.asprintf "%a" pp a

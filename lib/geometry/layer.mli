(** Mask layers.

    A fixed symbolic layer set modelled on the NMOS process the thesis
    targets (Mead-Conway style), plus the synthetic [Contact] layer of
    section 6.4.3 that expands to metal + poly + contact cuts at mask
    creation time, and mask-personalisation layers for cell encoding. *)

type t =
  | Diffusion
  | Poly
  | Metal
  | Contact_cut   (** the actual lithographic cut *)
  | Contact       (** synthetic layer, expanded per section 6.4.3 *)
  | Implant       (** depletion implant (encoding masks) *)
  | Buried
  | Overglass

val all : t list

val name : t -> string

val of_name : string -> t option

val cif_name : t -> string
(** Two/three letter CIF layer names (NM, NP, ND, NC, NI, NB, NG; the
    synthetic contact layer gets the non-standard name "XC"). *)

val of_cif_name : string -> t option

val equal : t -> t -> bool

val compare : t -> t -> int

val to_index : t -> int
(** Dense index in [0 .. List.length all - 1]. *)

val of_index_exn : int -> t
(** Inverse of {!to_index}; raises [Invalid_argument] out of range. *)

val pp : Format.formatter -> t -> unit

type t = { xmin : int; ymin : int; xmax : int; ymax : int }

let make ~xmin ~ymin ~xmax ~ymax =
  { xmin = min xmin xmax;
    ymin = min ymin ymax;
    xmax = max xmin xmax;
    ymax = max ymin ymax }

let of_corners (a : Vec.t) (b : Vec.t) =
  make ~xmin:a.x ~ymin:a.y ~xmax:b.x ~ymax:b.y

let of_size ~(origin : Vec.t) ~width ~height =
  if width < 0 || height < 0 then invalid_arg "Box.of_size";
  { xmin = origin.x; ymin = origin.y;
    xmax = origin.x + width; ymax = origin.y + height }

let width b = b.xmax - b.xmin

let height b = b.ymax - b.ymin

let area b = width b * height b

let center2 b = Vec.make (b.xmin + b.xmax) (b.ymin + b.ymax)

let translate (v : Vec.t) b =
  { xmin = b.xmin + v.x; ymin = b.ymin + v.y;
    xmax = b.xmax + v.x; ymax = b.ymax + v.y }

let transform o b =
  let p = Orient.apply o (Vec.make b.xmin b.ymin)
  and q = Orient.apply o (Vec.make b.xmax b.ymax) in
  of_corners p q

let contains b (v : Vec.t) =
  b.xmin <= v.x && v.x <= b.xmax && b.ymin <= v.y && v.y <= b.ymax

let overlaps a b =
  a.xmin <= b.xmax && b.xmin <= a.xmax && a.ymin <= b.ymax && b.ymin <= a.ymax

let intersect a b =
  if overlaps a b then
    Some { xmin = max a.xmin b.xmin; ymin = max a.ymin b.ymin;
           xmax = min a.xmax b.xmax; ymax = min a.ymax b.ymax }
  else None

let union a b =
  { xmin = min a.xmin b.xmin; ymin = min a.ymin b.ymin;
    xmax = max a.xmax b.xmax; ymax = max a.ymax b.ymax }

let inflate k b =
  let b' =
    { xmin = b.xmin - k; ymin = b.ymin - k;
      xmax = b.xmax + k; ymax = b.ymax + k }
  in
  if b'.xmin > b'.xmax || b'.ymin > b'.ymax then invalid_arg "Box.inflate"
  else b'

let distance a b =
  let dx = max 0 (max (b.xmin - a.xmax) (a.xmin - b.xmax)) in
  let dy = max 0 (max (b.ymin - a.ymax) (a.ymin - b.ymax)) in
  max dx dy

(* Guillotine decomposition: full-height side strips first, then the
   top/bottom pieces clipped to the cut's x-range, so the pieces are
   disjoint and their order depends only on the inputs. *)
let subtract a b =
  match intersect a b with
  | None -> [ a ]
  | Some c when c.xmin = c.xmax || c.ymin = c.ymax ->
    [ a ] (* edge or corner touch removes no interior *)
  | Some c ->
    if c.xmin <= a.xmin && a.xmax <= c.xmax && c.ymin <= a.ymin
       && a.ymax <= c.ymax
    then []
    else begin
      let out = ref [] in
      let add xmin ymin xmax ymax =
        if xmin < xmax && ymin < ymax then
          out := { xmin; ymin; xmax; ymax } :: !out
      in
      add a.xmin a.ymin c.xmin a.ymax;
      add c.xmax a.ymin a.xmax a.ymax;
      add c.xmin a.ymin c.xmax c.ymin;
      add c.xmin c.ymax c.xmax a.ymax;
      List.rev !out
    end

let equal a b =
  a.xmin = b.xmin && a.ymin = b.ymin && a.xmax = b.xmax && a.ymax = b.ymax

let compare a b =
  let c = Int.compare a.xmin b.xmin in
  if c <> 0 then c
  else
    let c = Int.compare a.ymin b.ymin in
    if c <> 0 then c
    else
      let c = Int.compare a.xmax b.xmax in
      if c <> 0 then c else Int.compare a.ymax b.ymax

let pp ppf b =
  Format.fprintf ppf "[%d,%d..%d,%d]" b.xmin b.ymin b.xmax b.ymax

(** Reference 2x2 integer-matrix representation of orientations.

    Section 2.6 of the thesis discusses representing orientations as
    2x2 matrices and rejects it as wasteful: matrices can express every
    linear map of the plane while only eight values are ever needed,
    and composition/inversion are comparatively costly.  This module
    implements that rejected representation faithfully so that

    - property tests can check the compact {!Orient.t} representation
      against it through the obvious isomorphism, and
    - the E3 ablation bench can measure the cost difference the thesis
      claims.

    Matrices here are restricted to orientation matrices (entries in
    {-1, 0, 1}, orthogonal), but the implementation performs full
    matrix arithmetic as a general 2x2 package would. *)

type t = { a : int; b : int; c : int; d : int }
(** Row-major: the map (x, y) -> (a x + b y, c x + d y). *)

val identity : t

val of_orient : Orient.t -> t

val to_orient : t -> Orient.t
(** Raises [Invalid_argument] if the matrix is not one of the eight
    orientation matrices. *)

val compose : t -> t -> t
(** [compose m2 m1] is the matrix product [m2 * m1] (apply [m1]
    first). *)

val invert : t -> t
(** Inverse via the adjugate; raises [Invalid_argument] when the
    determinant is not +-1 (never happens for orientation
    matrices). *)

val apply : t -> Vec.t -> Vec.t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

type t = { rot : int; refl : bool }

let make ~rot ~refl =
  let rot = ((rot mod 4) + 4) mod 4 in
  { rot; refl }

let north = { rot = 0; refl = false }

let east = { rot = 1; refl = false }

let south = { rot = 2; refl = false }

let west = { rot = 3; refl = false }

let identity = north

let mirror_y = { rot = 0; refl = true }

(* Reflecting about the x axis is the same as reflecting about the y
   axis and then rotating by a half turn. *)
let mirror_x = { rot = 2; refl = true }

let all =
  [ north; east; south; west;
    { rot = 0; refl = true }; { rot = 1; refl = true };
    { rot = 2; refl = true }; { rot = 3; refl = true } ]

let rotations = [ north; east; south; west ]

let is_reflection o = o.refl

(* Section 2.6.2: with o = R^j o M^k,
   if k2 = 0 then j = j1 + j2, k = k1
   if k2 = 1 then j = j2 - j1, k = not k1
   (the reflection of o2 conjugates the rotation of o1). *)
let compose o2 o1 =
  if o2.refl then make ~rot:(o2.rot - o1.rot) ~refl:(not o1.refl)
  else make ~rot:(o2.rot + o1.rot) ~refl:o1.refl

(* Section 2.6.1: reflections are involutions, rotations negate. *)
let invert o = if o.refl then o else make ~rot:(-o.rot) ~refl:false

(* Figure 2.5 mapping: coordinate permutations and negations only.
   East maps (x, y) -> (y, -x). *)
let apply o (v : Vec.t) =
  let x = if o.refl then -v.x else v.x in
  let y = v.y in
  match o.rot with
  | 0 -> Vec.make x y
  | 1 -> Vec.make y (-x)
  | 2 -> Vec.make (-x) (-y)
  | _ -> Vec.make (-y) x

let equal a b = a.rot = b.rot && a.refl = b.refl

let compare a b =
  let c = Int.compare a.rot b.rot in
  if c <> 0 then c else Bool.compare a.refl b.refl

let to_index o = o.rot + if o.refl then 4 else 0

let of_index i =
  if i < 0 || i > 7 then invalid_arg "Orient.of_index"
  else { rot = i land 3; refl = i >= 4 }

let rot_name = [| "north"; "east"; "south"; "west" |]

let name o =
  if o.refl then "mirror-" ^ rot_name.(o.rot) else rot_name.(o.rot)

let of_name s =
  let s = String.lowercase_ascii s in
  let refl, base =
    match String.index_opt s '-' with
    | Some i when String.sub s 0 i = "mirror" ->
      (true, String.sub s (i + 1) (String.length s - i - 1))
    | _ -> (false, s)
  in
  let rec find i =
    if i > 3 then None
    else if rot_name.(i) = base then Some { rot = i; refl }
    else find (i + 1)
  in
  find 0

let pp ppf o = Format.pp_print_string ppf (name o)

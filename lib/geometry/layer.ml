type t =
  | Diffusion
  | Poly
  | Metal
  | Contact_cut
  | Contact
  | Implant
  | Buried
  | Overglass

let all =
  [ Diffusion; Poly; Metal; Contact_cut; Contact; Implant; Buried; Overglass ]

let name = function
  | Diffusion -> "diffusion"
  | Poly -> "poly"
  | Metal -> "metal"
  | Contact_cut -> "contact-cut"
  | Contact -> "contact"
  | Implant -> "implant"
  | Buried -> "buried"
  | Overglass -> "overglass"

let of_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun l -> name l = s) all

let cif_name = function
  | Diffusion -> "ND"
  | Poly -> "NP"
  | Metal -> "NM"
  | Contact_cut -> "NC"
  | Contact -> "XC"
  | Implant -> "NI"
  | Buried -> "NB"
  | Overglass -> "NG"

let of_cif_name s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun l -> cif_name l = s) all

let equal a b = a = b

let to_index = function
  | Diffusion -> 0
  | Poly -> 1
  | Metal -> 2
  | Contact_cut -> 3
  | Contact -> 4
  | Implant -> 5
  | Buried -> 6
  | Overglass -> 7

let of_index_exn i =
  match List.nth_opt all i with
  | Some l -> l
  | None -> invalid_arg "Layer.of_index_exn"

let compare a b = Int.compare (to_index a) (to_index b)

let pp ppf l = Format.pp_print_string ppf (name l)

(** Full placement isometries: an orientation about the origin followed
    by a translation.

    Calling an instance of B in A with point of call [l] and
    orientation [o] (section 2.1) applies exactly the transform
    [{ orient = o; offset = l }] to every object of B.  Transforms
    compose like instance nesting: if A is called in B with [t1] and B
    in C with [t2], objects of A land in C under [compose t2 t1]. *)

type t = { orient : Orient.t; offset : Vec.t }

val identity : t

val make : ?orient:Orient.t -> Vec.t -> t
(** [make ~orient offset]; [orient] defaults to {!Orient.north}. *)

val of_orient : Orient.t -> t

val apply : t -> Vec.t -> Vec.t
(** [apply t v = offset + orient(v)]. *)

val apply_box : t -> Box.t -> Box.t

val compose : t -> t -> t
(** [compose t2 t1] applies [t1] first. *)

val invert : t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

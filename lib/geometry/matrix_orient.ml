type t = { a : int; b : int; c : int; d : int }

let identity = { a = 1; b = 0; c = 0; d = 1 }

let apply m (v : Vec.t) =
  Vec.make ((m.a * v.x) + (m.b * v.y)) ((m.c * v.x) + (m.d * v.y))

let of_orient o =
  (* Read the two columns off the action on the basis vectors. *)
  let cx = Orient.apply o (Vec.make 1 0) and cy = Orient.apply o (Vec.make 0 1) in
  { a = cx.Vec.x; b = cy.Vec.x; c = cx.Vec.y; d = cy.Vec.y }

let equal m n = m.a = n.a && m.b = n.b && m.c = n.c && m.d = n.d

let to_orient m =
  let rec find = function
    | [] -> invalid_arg "Matrix_orient.to_orient: not an orientation matrix"
    | o :: rest -> if equal (of_orient o) m then o else find rest
  in
  find Orient.all

let compose m2 m1 =
  { a = (m2.a * m1.a) + (m2.b * m1.c);
    b = (m2.a * m1.b) + (m2.b * m1.d);
    c = (m2.c * m1.a) + (m2.d * m1.c);
    d = (m2.c * m1.b) + (m2.d * m1.d) }

let invert m =
  let det = (m.a * m.d) - (m.b * m.c) in
  if det = 1 then { a = m.d; b = -m.b; c = -m.c; d = m.a }
  else if det = -1 then { a = -m.d; b = m.b; c = m.c; d = -m.a }
  else invalid_arg "Matrix_orient.invert: determinant not +-1"

let pp ppf m = Format.fprintf ppf "[%d %d; %d %d]" m.a m.b m.c m.d

(** Exact two-dimensional integer vectors.

    All RSG geometry lives on an integer grid (lambda units in the
    thesis).  Using exact integers rather than floats removes the
    numerical-inaccuracy concerns the thesis raises in section 2.6
    about sin/cos based orientation application. *)

type t = { x : int; y : int }

val make : int -> int -> t

val zero : t

val add : t -> t -> t

val sub : t -> t -> t

(** [neg v] is the vector pointing the opposite way. *)
val neg : t -> t

(** [scale k v] multiplies both coordinates by [k]. *)
val scale : int -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

(** Dot product. *)
val dot : t -> t -> int

(** Squared Euclidean length (exact). *)
val norm2 : t -> int

(** Manhattan length [|x| + |y|]. *)
val manhattan : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

type t = { orient : Orient.t; offset : Vec.t }

let identity = { orient = Orient.identity; offset = Vec.zero }

let make ?(orient = Orient.north) offset = { orient; offset }

let of_orient orient = { orient; offset = Vec.zero }

let apply t v = Vec.add t.offset (Orient.apply t.orient v)

let apply_box t b = Box.translate t.offset (Box.transform t.orient b)

(* (t2 o t1)(v) = off2 + o2(off1 + o1 v) = (off2 + o2 off1) + (o2 o o1) v *)
let compose t2 t1 =
  { orient = Orient.compose t2.orient t1.orient;
    offset = Vec.add t2.offset (Orient.apply t2.orient t1.offset) }

(* t(v) = off + o v  =>  t^-1(w) = o^-1 (w - off) = -o^-1 off + o^-1 w *)
let invert t =
  let oi = Orient.invert t.orient in
  { orient = oi; offset = Vec.neg (Orient.apply oi t.offset) }

let equal a b = Orient.equal a.orient b.orient && Vec.equal a.offset b.offset

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@%a@]" Orient.pp t.orient Vec.pp t.offset

(** The eight rectilinear orientations (the dihedral group D4).

    Section 2.6 of the thesis argues that arbitrary isometries
    represented as angles or 2x2 real matrices are wasteful and
    numerically fragile, and that VLSI layout needs only the eight
    orientations that map vertical/horizontal lines to
    vertical/horizontal lines: the four quarter-turn rotations and the
    four axis/diagonal reflections.  An orientation is represented as a
    pair [(rot, refl)] standing for the operator [R^rot o M^refl] where
    [M] is the reflection about the y axis (x -> -x) applied {e first},
    and [R] is the quarter-turn rotation.

    The rotation direction is fixed so that the four named rotations
    reproduce the coordinate-mapping table of Figure 2.5:

    {v
      orientation   x image   y image
      North         ( x,  y)
      East          ( y, -x)
      South         (-x, -y)
      West          (-y,  x)
    v} *)

type t = private { rot : int; refl : bool }
(** [rot] is in [0..3] quarter turns; [refl] selects a prior reflection
    about the y axis.  The representation is private so values are
    always normalised; build them with {!make} or the constants. *)

val make : rot:int -> refl:bool -> t
(** [make ~rot ~refl] normalises [rot] modulo 4 (negative values
    allowed). *)

val north : t
(** The identity transform. *)

val east : t

val south : t

val west : t

val mirror_y : t
(** Reflection about the y axis: (x, y) -> (-x, y). *)

val mirror_x : t
(** Reflection about the x axis: (x, y) -> (x, -y). *)

val identity : t
(** Alias for {!north}. *)

val all : t list
(** The eight orientations, [north] first. *)

val rotations : t list
(** The four pure rotations in Figure 2.5 order: N, E, S, W. *)

val is_reflection : t -> bool
(** True when the orientation reverses handedness (refl set). *)

val compose : t -> t -> t
(** [compose o2 o1] is the operator applying [o1] first and then [o2],
    i.e. [o2 o o1] in the thesis's notation.  Computed with the
    closed-form rules of section 2.6.2. *)

val invert : t -> t
(** Group inverse, by the rules of section 2.6.1: a reflection is its
    own inverse; a rotation inverts its angle. *)

val apply : t -> Vec.t -> Vec.t
(** Apply the orientation to a vector: reflection first (if any), then
    the quarter-turn rotations, using only coordinate permutations and
    negations (Figure 2.5). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val to_index : t -> int
(** Dense index in [0..7]: [rot + (if refl then 4 else 0)]. *)

val of_index : int -> t
(** Inverse of {!to_index}.  Raises [Invalid_argument] outside 0..7. *)

val name : t -> string
(** Compass name, e.g. ["north"], ["mirror-east"]. *)

val of_name : string -> t option
(** Parse the output of {!name} (case-insensitive). *)

val pp : Format.formatter -> t -> unit

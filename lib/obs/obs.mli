(** Lightweight observability: counters, wall-clock timers and a span
    tree, shared process-wide.

    The hot paths of the generator (graph expansion, constraint
    generation, Bellman-Ford, the PLA and multiplier builders) call
    {!span} and {!count}; when recording is disabled — the default —
    both are cheap no-ops, so instrumented code pays one branch.  When
    enabled, spans nest into a tree keyed by name (re-entering a name
    under the same parent accumulates rather than growing the tree, so
    a loop of ten thousand expansions stays one node) and counters
    accumulate process-wide totals.

    Typical use, as in [bin/rsg_cli.ml] and [bench/main.ml]:

    {[
      Obs.enable ();
      ... run the generator ...
      Obs.dump ()            (* human-readable tree to stderr *)
      (* or *) print_string (Obs.to_json ())
    ]} *)

val enable : unit -> unit
(** Start recording (and implicitly {!reset} nothing — prior data is
    kept so enable/disable can bracket phases). *)

val disable : unit -> unit

val is_enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans and counters; recording state unchanged. *)

val count : ?n:int -> string -> unit
(** Add [n] (default 1) to the named counter.  No-op when disabled.
    Unlike spans, counters are domain-safe: the table is guarded by a
    lock, so pool workers (lib/par, the serve job pool) may count
    directly instead of handing deltas back to the coordinator. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] under [name] in the span tree rooted at
    the innermost enclosing span.  Time is recorded even when [f]
    raises.  When disabled, equivalent to [f ()]. *)

val record : ?count:int -> string -> float -> unit
(** [record name seconds] adds an externally-timed span under the
    innermost enclosing span, as if [span name] had run for [seconds]
    ([count] entries, default 1).  For work timed off the main thread:
    the span tree is process-global mutable state and must only be
    touched from one domain, so parallel workers time themselves and
    the coordinator records the measurements after joining.  No-op
    when disabled. *)

val counters : unit -> (string * int) list
(** Recorded counters, sorted by name. *)

type span_node = {
  sp_name : string;
  sp_total : float;  (** accumulated wall-clock seconds *)
  sp_count : int;    (** number of times entered *)
  sp_children : span_node list;  (** in first-entry order *)
}

val spans : unit -> span_node list
(** Top-level spans, in first-entry order. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable report: the span tree with per-phase seconds,
    percentages of the enclosing span and entry counts, then the
    counter table. *)

val dump : ?oc:out_channel -> unit -> unit
(** Print {!pp} to [oc] (default [stderr]). *)

val to_json : unit -> string
(** The same data as a JSON object
    [{"spans": [...], "counters": {...}}]. *)

(* Process-wide instrumentation state.  A span is aggregated by name
   under its parent, so instrumenting a hot loop does not grow the
   tree; the mutable records are internal and frozen into span_node on
   read-out. *)

type node = {
  name : string;
  mutable total : float;
  mutable count : int;
  mutable children : node list; (* reverse first-entry order *)
}

let enabled = ref false

let mk_root () = { name = "<root>"; total = 0.; count = 0; children = [] }

let root = ref (mk_root ())

(* innermost open span; the root sentinel is always at the bottom *)
let stack = ref []

let table : (string, int) Hashtbl.t = Hashtbl.create 64

(* Counters are bumped from worker domains (the serve job pool, the
   batch runner) while the span tree stays single-domain, so the
   counter table gets its own lock.  Uncontended Mutex.lock is a
   couple of atomic operations — noise next to a Hashtbl.replace —
   and counting is a no-op while disabled anyway. *)
let table_mutex = Mutex.create ()

let locked f =
  Mutex.lock table_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_mutex) f

let enable () = enabled := true

let disable () = enabled := false

let is_enabled () = !enabled

let reset () =
  root := mk_root ();
  stack := [];
  locked (fun () -> Hashtbl.reset table)

let count ?(n = 1) name =
  if !enabled then
    locked (fun () ->
        Hashtbl.replace table name
          (n + Option.value ~default:0 (Hashtbl.find_opt table name)))

let child_named parent name =
  match List.find_opt (fun c -> String.equal c.name name) parent.children with
  | Some c -> c
  | None ->
    let c = { name; total = 0.; count = 0; children = [] } in
    parent.children <- c :: parent.children;
    c

let span name f =
  if not !enabled then f ()
  else begin
    let parent = match !stack with [] -> !root | p :: _ -> p in
    let node = child_named parent name in
    node.count <- node.count + 1;
    stack := node :: !stack;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        node.total <- node.total +. (Unix.gettimeofday () -. t0);
        match !stack with
        | top :: rest when top == node -> stack := rest
        | _ -> () (* a reset inside the span dropped the stack *))
      f
  end

let record ?(count = 1) name seconds =
  if !enabled then begin
    let parent = match !stack with [] -> !root | p :: _ -> p in
    let node = child_named parent name in
    node.count <- node.count + count;
    node.total <- node.total +. seconds
  end

let counters () =
  locked (fun () -> Hashtbl.fold (fun name n acc -> (name, n) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type span_node = {
  sp_name : string;
  sp_total : float;
  sp_count : int;
  sp_children : span_node list;
}

let rec freeze n =
  { sp_name = n.name;
    sp_total = n.total;
    sp_count = n.count;
    sp_children = List.rev_map freeze n.children }

let spans () = (freeze !root).sp_children

(* ---- rendering ----------------------------------------------------- *)

let pp ppf () =
  let tops = spans () in
  if tops <> [] then begin
    Format.fprintf ppf "-- phases ------------------------------------------@.";
    (* one shared pad buffer grown/truncated around recursion, instead
       of a fresh ever-longer indent string per level *)
    let pad = Buffer.create 32 in
    let rec walk enclosing s =
      let pct =
        if enclosing > 0. then 100. *. s.sp_total /. enclosing else 100.
      in
      Format.fprintf ppf "%s%-*s %9.4fs %5.1f%% %8dx@." (Buffer.contents pad)
        (max 1 (32 - Buffer.length pad))
        s.sp_name s.sp_total pct s.sp_count;
      let depth = Buffer.length pad in
      Buffer.add_string pad "  ";
      List.iter (walk s.sp_total) s.sp_children;
      Buffer.truncate pad depth
    in
    let whole = List.fold_left (fun a s -> a +. s.sp_total) 0. tops in
    List.iter (walk whole) tops
  end;
  let cs = counters () in
  if cs <> [] then begin
    Format.fprintf ppf "-- counters ----------------------------------------@.";
    List.iter (fun (name, n) -> Format.fprintf ppf "%-36s %12d@." name n) cs
  end;
  if tops = [] && cs = [] then Format.fprintf ppf "(no observations recorded)@."

let dump ?(oc = stderr) () =
  let ppf = Format.formatter_of_out_channel oc in
  pp ppf ();
  Format.pp_print_flush ppf ()

(* ---- JSON ---------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let b = Buffer.create 1024 in
  let rec emit_span s =
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"seconds\":%.6f,\"count\":%d,\"children\":["
         (json_escape s.sp_name) s.sp_total s.sp_count);
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        emit_span c)
      s.sp_children;
    Buffer.add_string b "]}"
  in
  Buffer.add_string b "{\"spans\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      emit_span s)
    (spans ());
  Buffer.add_string b "],\"counters\":{";
  List.iteri
    (fun i (name, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) n))
    (counters ());
  Buffer.add_string b "}}";
  Buffer.contents b

open Rsg_lang
module Obs = Rsg_obs.Obs

type config = {
  globals : string list;
  cells : string list;
  env_known : bool;
}

let default_config = { globals = []; cells = []; env_known = false }

let config_of_params ?(cells = []) (p : Param.t) =
  { globals = List.map fst p.Param.bindings; cells; env_known = true }

(* Builtins of the evaluator (Interp.builtin plus the [array] macro).
   Fixed-arity ones are checked; the rest are variadic. *)
let builtin_arity =
  [ ("//", 2); ("mod", 2); ("=", 2); (">", 2); ("<", 2); (">=", 2);
    ("<=", 2); ("not", 1); ("abs", 1); ("array", 3) ]

let variadic_builtins = [ "+"; "-"; "*"; "and"; "or"; "min"; "max"; "read" ]

(* Per-procedure frame: what Table 4.1's first tier can resolve. *)
type frame = {
  names : (string, unit) Hashtbl.t;      (* formals + locals + do vars *)
  scalar_locals : (string, unit) Hashtbl.t;
  array_locals : (string, unit) Hashtbl.t;
  used : (string, unit) Hashtbl.t;       (* locals seen in any role *)
}

type ctx = {
  cfg : config;
  file : string option;
  procs : (string, Ast.proc) Hashtbl.t;
  frames : (string, frame) Hashtbl.t;
  globals : (string, unit) Hashtbl.t;
      (* top-level assignment targets, non-frame assignment targets,
         top-level do vars, host globals, sample and literal mk_cell
         cell names — tiers two and three merged (both are "resolvable
         outside the frame") *)
  called : (string, unit) Hashtbl.t;
  diags : Diag.t list ref;
  mutable checked : int;
}

let add_diag ctx d = ctx.diags := d :: !(ctx.diags)

let diag ctx ?severity ?line code fmt =
  Format.kasprintf
    (fun message ->
      add_diag ctx
        (Diag.make ?severity ?file:ctx.file ?line code "%s" message))
    fmt

(* ------------------------------------------------------------------ *)
(* Pass A: collection.                                                 *)

(* Fold over every sub-expression, peeling At wrappers. *)
let rec iter_subexprs f (e : Ast.expr) =
  let go = iter_subexprs f in
  let go_var = function
    | Ast.Simple _ -> ()
    | Ast.Indexed (_, idx) -> List.iter go idx
  in
  f e;
  match e with
  | Ast.At (_, inner) -> iter_subexprs f inner
  | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Read -> ()
  | Ast.Var v -> go_var v
  | Ast.Call (_, args) -> List.iter go args
  | Ast.Cond clauses ->
    List.iter
      (fun (t, body) ->
        go t;
        List.iter go body)
      clauses
  | Ast.Do d ->
    go d.Ast.init;
    go d.Ast.next;
    go d.Ast.until;
    List.iter go d.Ast.body
  | Ast.Assign (v, rhs) ->
    go_var v;
    go rhs
  | Ast.Prog body -> List.iter go body
  | Ast.Print e -> go e
  | Ast.Mk_instance (v, cell) ->
    go_var v;
    go cell
  | Ast.Connect (a, b, i) ->
    go a;
    go b;
    go i
  | Ast.Subcell (env_e, v) ->
    go env_e;
    go_var v
  | Ast.Mk_cell (n, r) ->
    go n;
    go r
  | Ast.Declare_interface d ->
    go d.Ast.di_cell1;
    go d.Ast.di_cell2;
    go d.Ast.di_new_index;
    go d.Ast.di_inst1;
    go d.Ast.di_inst2;
    go d.Ast.di_old_index

let loop_vars_of exprs =
  let acc = ref [] in
  List.iter
    (iter_subexprs (function
      | Ast.Do d -> acc := d.Ast.loop_var :: !acc
      | _ -> ()))
    exprs;
  !acc

let assigned_names_of exprs =
  let acc = ref [] in
  List.iter
    (iter_subexprs (function
      | Ast.Assign (v, _) | Ast.Mk_instance (v, _) ->
        acc := Ast.var_name v :: !acc
      | _ -> ()))
    exprs;
  !acc

(* Cell names statically known to enter the cell table: [mk_cell]
   calls whose name argument is a string literal. *)
let literal_cell_names exprs =
  let acc = ref [] in
  List.iter
    (iter_subexprs (function
      | Ast.Mk_cell (name_e, _) -> (
        match Ast.strip name_e with
        | Ast.Str s -> acc := s :: !acc
        | _ -> ())
      | _ -> ()))
    exprs;
  !acc

let frame_of_proc ctx (p : Ast.proc) =
  let names = Hashtbl.create 16 in
  let scalar_locals = Hashtbl.create 8 in
  let array_locals = Hashtbl.create 8 in
  let dup name what =
    if Hashtbl.mem names name then
      diag ctx ~line:p.Ast.proc_line "L106" "%s: duplicate %s %s"
        p.Ast.proc_name what name
  in
  List.iter
    (fun f ->
      dup f "formal";
      Hashtbl.replace names f ())
    p.Ast.formals;
  List.iter
    (function
      | Ast.Scalar_local n ->
        dup n "local";
        Hashtbl.replace names n ();
        Hashtbl.replace scalar_locals n ()
      | Ast.Array_local n ->
        dup n "local";
        Hashtbl.replace names n ();
        Hashtbl.replace array_locals n ())
    p.Ast.locals;
  List.iter (fun v -> Hashtbl.replace names v ()) (loop_vars_of p.Ast.body);
  { names; scalar_locals; array_locals; used = Hashtbl.create 16 }

let collect ctx (prog : Ast.toplevel list) =
  let toplevel_exprs =
    List.filter_map
      (function Ast.Expr e -> Some e | Ast.Defproc _ -> None)
      prog
  in
  (* procedures and their frames *)
  List.iter
    (function
      | Ast.Defproc p ->
        if Hashtbl.mem ctx.procs p.Ast.proc_name then
          diag ctx ~line:p.Ast.proc_line "L106"
            "procedure %s defined more than once (the later definition wins)"
            p.Ast.proc_name;
        Hashtbl.replace ctx.procs p.Ast.proc_name p;
        Hashtbl.replace ctx.frames p.Ast.proc_name (frame_of_proc ctx p)
      | Ast.Expr _ -> ())
    prog;
  let add_global n = Hashtbl.replace ctx.globals n () in
  List.iter add_global ctx.cfg.globals;
  List.iter add_global ctx.cfg.cells;
  (* top-level assignments and do vars land in the global frame *)
  List.iter add_global (assigned_names_of toplevel_exprs);
  List.iter add_global (loop_vars_of toplevel_exprs);
  (* assignments inside a procedure to names outside its frame fall
     through to the global frame (Env.set) *)
  Hashtbl.iter
    (fun name (p : Ast.proc) ->
      let fr = Hashtbl.find ctx.frames name in
      List.iter
        (fun n -> if not (Hashtbl.mem fr.names n) then add_global n)
        (assigned_names_of p.Ast.body))
    ctx.procs;
  (* string-literal mk_cell names enter the cell table *)
  let all_bodies =
    toplevel_exprs
    @ List.concat_map
        (function Ast.Defproc p -> p.Ast.body | Ast.Expr _ -> [])
        prog
  in
  List.iter add_global (literal_cell_names all_bodies)

(* ------------------------------------------------------------------ *)
(* Pass B: checking.                                                   *)

let where fr =
  match fr with
  | Some (name, _) -> Printf.sprintf " (in %s)" name
  | None -> " (at top level)"

let resolvable ctx fr name =
  (match fr with
  | Some (_, f) -> Hashtbl.mem f.names name
  | None -> false)
  || Hashtbl.mem ctx.globals name

let mark_used fr name =
  match fr with
  | Some (_, f) -> if Hashtbl.mem f.names name then Hashtbl.replace f.used name ()
  | None -> ()

let check_unbound ctx fr line name =
  if not (resolvable ctx fr name) then
    if ctx.cfg.env_known then
      diag ctx ?line "L101" "unbound variable %s%s" name (where fr)
    else
      diag ctx ~severity:Diag.Warning ?line "L101"
        "variable %s is not defined in the design file%s — it must come from \
         a parameter file or the host"
        name (where fr)

(* L105: shape misuse detectable from the declaration — an [Array_local]
   written without an index, or a [Scalar_local] used with one. *)
let check_shape ctx fr line (v : Ast.var) ~writing =
  match fr with
  | None -> ()
  | Some (pname, f) -> (
    match v with
    | Ast.Simple n ->
      if writing && Hashtbl.mem f.array_locals n then
        diag ctx ?line "L105"
          "%s: assigning a scalar over array local %s. (declared with a \
           trailing dot)"
          pname n
    | Ast.Indexed (n, _) ->
      if Hashtbl.mem f.scalar_locals n then
        diag ctx ?line "L105"
          "%s: indexing scalar local %s (declare it %s. to make it an array)"
          pname n n)

let rec check_expr ctx fr line (e : Ast.expr) =
  ctx.checked <- ctx.checked + 1;
  match e with
  | Ast.At (l, inner) -> check_expr ctx fr (Some l) inner
  | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Read -> ()
  | Ast.Var v -> check_var_read ctx fr line v
  | Ast.Assign (v, rhs) ->
    check_target ctx fr line v;
    check_expr ctx fr line rhs
  | Ast.Prog body -> List.iter (check_expr ctx fr line) body
  | Ast.Cond clauses ->
    List.iter
      (fun (t, body) ->
        check_expr ctx fr line t;
        List.iter (check_expr ctx fr line) body)
      clauses
  | Ast.Do d ->
    mark_used fr d.Ast.loop_var;
    check_expr ctx fr line d.Ast.init;
    check_expr ctx fr line d.Ast.next;
    check_expr ctx fr line d.Ast.until;
    List.iter (check_expr ctx fr line) d.Ast.body
  | Ast.Print e -> check_expr ctx fr line e
  | Ast.Call (name, args) ->
    check_call ctx fr line name args;
    List.iter (check_expr ctx fr line) args
  | Ast.Mk_instance (v, cell) ->
    check_target ctx fr line v;
    check_expr ctx fr line cell
  | Ast.Connect (a, b, i) ->
    check_expr ctx fr line a;
    check_expr ctx fr line b;
    check_expr ctx fr line i
  | Ast.Subcell (env_e, v) -> check_subcell ctx fr line env_e v
  | Ast.Mk_cell (n, r) ->
    check_expr ctx fr line n;
    check_expr ctx fr line r
  | Ast.Declare_interface d ->
    check_expr ctx fr line d.Ast.di_cell1;
    check_expr ctx fr line d.Ast.di_cell2;
    check_expr ctx fr line d.Ast.di_new_index;
    check_expr ctx fr line d.Ast.di_inst1;
    check_expr ctx fr line d.Ast.di_inst2;
    check_expr ctx fr line d.Ast.di_old_index

and check_var_read ctx fr line (v : Ast.var) =
  let name = Ast.var_name v in
  mark_used fr name;
  check_unbound ctx fr line name;
  check_shape ctx fr line v ~writing:false;
  match v with
  | Ast.Simple _ -> ()
  | Ast.Indexed (_, idx) -> List.iter (check_expr ctx fr line) idx

and check_target ctx fr line (v : Ast.var) =
  (* assignment defines the name (in the frame or, falling through, the
     global), so the base is not an unbound reference *)
  let name = Ast.var_name v in
  mark_used fr name;
  check_shape ctx fr line v ~writing:true;
  match v with
  | Ast.Simple _ -> ()
  | Ast.Indexed (_, idx) -> List.iter (check_expr ctx fr line) idx

and check_call ctx fr line name args =
  Hashtbl.replace ctx.called name ();
  match Hashtbl.find_opt ctx.procs name with
  | Some p ->
    let expected = List.length p.Ast.formals in
    let got = List.length args in
    if got <> expected then
      diag ctx ?line "L104" "%s %s expects %d argument(s), got %d%s"
        (if p.Ast.is_macro then "macro" else "function")
        name expected got (where fr)
  | None -> (
    match List.assoc_opt name builtin_arity with
    | Some expected ->
      if List.length args <> expected then
        diag ctx ?line "L104" "builtin %s takes %d argument(s), got %d%s" name
          expected (List.length args) (where fr)
    | None ->
      if not (List.mem name variadic_builtins) then
        diag ctx ?line "L108" "unknown function or macro %s%s" name (where fr))

and check_subcell ctx fr line env_e (v : Ast.var) =
  check_expr ctx fr line env_e;
  (* index expressions evaluate in the caller's scope; the binding is
     looked up in the returned environment (section 4.2) *)
  (match v with
  | Ast.Simple _ -> ()
  | Ast.Indexed (_, idx) -> List.iter (check_expr ctx fr line) idx);
  let binding = Ast.var_name v in
  match Ast.strip env_e with
  | Ast.Call (m, _) -> (
    match Hashtbl.find_opt ctx.procs m with
    | Some p when not p.Ast.is_macro ->
      diag ctx ?line "L107"
        "subcell of a function call: %s returns a value, not an environment%s"
        m (where fr)
    | Some p -> (
      match Hashtbl.find_opt ctx.frames m with
      | Some mf ->
        if Hashtbl.mem mf.names binding then Hashtbl.replace mf.used binding ()
        else if not (Hashtbl.mem ctx.globals binding) then
          diag ctx ?line "L107"
            "macro %s defines no binding %s for subcell to retrieve%s"
            p.Ast.proc_name binding (where fr)
      | None -> ())
    | None ->
      if String.equal m "array" && not (List.mem binding [ "c"; "n" ]) then
        diag ctx ?line "L107"
          "the array builtin binds only c and n, not %s%s" binding (where fr))
  | _ -> ()

(* ------------------------------------------------------------------ *)

let check_program ?file cfg (prog : Ast.toplevel list) =
  Obs.span "lint.design" @@ fun () ->
  let ctx =
    { cfg;
      file;
      procs = Hashtbl.create 16;
      frames = Hashtbl.create 16;
      globals = Hashtbl.create 64;
      called = Hashtbl.create 32;
      diags = ref [];
      checked = 0 }
  in
  collect ctx prog;
  List.iter
    (function
      | Ast.Defproc p ->
        let fr = Some (p.Ast.proc_name, Hashtbl.find ctx.frames p.Ast.proc_name) in
        List.iter (check_expr ctx fr (Some p.Ast.proc_line)) p.Ast.body
      | Ast.Expr e -> check_expr ctx None None e)
    prog;
  (* L102: declared locals never referenced in any role *)
  Hashtbl.iter
    (fun name (p : Ast.proc) ->
      let fr = Hashtbl.find ctx.frames name in
      List.iter
        (fun decl ->
          let n =
            match decl with Ast.Scalar_local n | Ast.Array_local n -> n
          in
          if not (Hashtbl.mem fr.used n) then
            diag ctx ~line:p.Ast.proc_line "L102" "%s: local %s is never used"
              name n)
        p.Ast.locals)
    ctx.procs;
  (* L103: procedures never called from any body or top-level form *)
  Hashtbl.iter
    (fun name (p : Ast.proc) ->
      if not (Hashtbl.mem ctx.called name) then
        diag ctx ~line:p.Ast.proc_line "L103" "%s %s is never called"
          (if p.Ast.is_macro then "macro" else "function")
          name)
    ctx.procs;
  let source =
    match file with Some f -> f | None -> "<design>"
  in
  Diag.report ~source ~checked:ctx.checked !(ctx.diags)

let check_string ?file cfg src =
  match Parser.parse_program src with
  | prog -> check_program ?file cfg prog
  | exception e -> (
    match Diag.of_exn ?file e with
    | Some d ->
      Diag.report
        ~source:(match file with Some f -> f | None -> "<design>")
        ~checked:0 [ d ]
    | None -> raise e)

(** Static analysis of connectivity graphs (Chapter 3) — the
    well-formedness conditions of the expansion algorithm, checked
    without expanding and without touching any node.

    The analyzer derives tentative placements along its own
    breadth-first spanning tree (independently of [Expand], so the
    lint-vs-expand agreement property in the test suite is a real
    cross-check) and reports:

    - [L201] nodes unreachable from the root (section 3.1: only a
      connected graph describes one structure);
    - [L204] edges whose interface is not declared in the table
      (section 2.4) — exactly the edges [Expand.run ~mode:`Collect]
      reports as [Missing];
    - [L205] non-tree edges whose implied placement disagrees with the
      spanning-tree placement: interface transforms composed around the
      fundamental cycle the edge closes do not reduce to identity
      (section 3.4's uniqueness argument) — exactly [Expand]'s
      [Mismatch] defects;
    - [L202] non-tree edges that {e do} agree — redundant but harmless,
      the "cycles are redundant" remark of section 3.1;
    - [L206] duplicate parallel edges (same source, peer and index);
    - [L203] same-celltype edges whose two readings [I°aa] vs
      [(I°aa)^-1] place differently (Figures 3.5-3.7) — a note, since
      any pitched regular structure contains them; the directed edge
      resolves the ambiguity, the note records that the direction
      matters;
    - [L208] interfaces declared in the table but referenced by no
      edge in either direction (dead interfaces) — the sample drew an
      interface the connectivity never exercises, or an edge meant to
      use it names another index.  Bilateral declarations are judged
      once, on the canonical (lexicographically ordered) cell pair. *)

open Rsg_core

val check :
  ?root:Graph.node -> ?source:string ->
  Interface_table.t -> Graph.node list -> Diag.report
(** Analyze the given nodes (the universe against which
    root-unreachability is judged).  [root] defaults to the first
    node; [source] labels the report (default ["graph"]). *)

val check_component :
  ?source:string -> Interface_table.t -> Graph.node -> Diag.report
(** [check] over [Graph.reachable root] — no L201 possible. *)

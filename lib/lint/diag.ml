open Rsg_layout
open Rsg_core
open Rsg_lang

type severity = Error | Warning | Info

type span = { s_line : int; s_col : int; s_end_line : int; s_end_col : int }

type t = {
  code : string;
  severity : severity;
  file : string option;
  line : int option;
  span : span option;
  message : string;
  section : string;
}

type report = {
  r_source : string;
  r_checked : int;
  r_diags : t list;
}

(* The code table: (code, severity, title, thesis section).  Codes are
   stable — tooling and the mutation self-checks key on them. *)
let all_codes =
  [ ("L100", Error, "syntax-error", "Appendix A");
    ("L101", Error, "unbound-variable", "Table 4.1");
    ("L102", Warning, "unused-local", "section 4.2");
    ("L103", Warning, "unused-procedure", "section 4.2");
    ("L104", Error, "arity-mismatch", "section 4.2");
    ("L105", Warning, "scalar-array-misuse", "Appendix A");
    ("L106", Warning, "duplicate-binding", "section 4.2");
    ("L107", Warning, "subcell-binding", "section 4.2");
    ("L108", Error, "unknown-callee", "section 4.5");
    ("L109", Error, "duplicate-cell", "section 4.4.3");
    ("L110", Error, "instance-cycle", "section 2.1");
    ("L201", Error, "unreachable-node", "section 3.1");
    ("L202", Warning, "redundant-edge", "section 3.1");
    ("L203", Info, "undirected-ambiguity", "section 3.4");
    ("L204", Error, "undeclared-interface", "section 2.4");
    ("L205", Error, "overconstrained-cycle", "section 3.4");
    ("L206", Warning, "duplicate-edge", "section 3.1");
    ("L207", Error, "conflicting-declaration", "section 2.4");
    ("L208", Warning, "dead-interface", "section 2.4");
    ("E300", Error, "supply-short", "EXCL flow");
    ("E301", Warning, "floating-gate", "EXCL flow");
    ("E302", Warning, "undriven-net", "EXCL flow");
    ("E303", Warning, "dangling-device", "EXCL flow");
    ("E304", Warning, "fanout-limit", "EXCL flow");
    ("E305", Warning, "no-rail-path", "EXCL flow");
    ("E306", Info, "rails-absent", "EXCL flow") ]

let lookup code =
  List.find_opt (fun (c, _, _, _) -> String.equal c code) all_codes

let severity_of_code code =
  match lookup code with Some (_, s, _, _) -> s | None -> Error

let section_of_code code =
  match lookup code with Some (_, _, _, s) -> s | None -> "?"

let title_of_code code =
  match lookup code with Some (_, _, t, _) -> t | None -> "unknown"

let make ?severity ?file ?line ?span code fmt =
  Format.kasprintf
    (fun message ->
      { code;
        severity =
          (match severity with
          | Some s -> s
          | None -> severity_of_code code);
        file;
        line = (match (line, span) with
          | Some l, _ -> Some l
          | None, Some s -> Some s.s_line
          | None, None -> None);
        span;
        message;
        section = section_of_code code })
    fmt

let of_exn ?file = function
  | Sexp.Parse_error { line; message } ->
    Some (make ?file ~line "L100" "%s" message)
  | Parser.Syntax_error msg -> Some (make ?file "L100" "%s" msg)
  | Db.Duplicate_cell name ->
    Some (make ?file "L109" "duplicate cell name %s in the cell table" name)
  | Cell.Instance_cycle name ->
    Some (make ?file "L110" "instance cycle through cell %s" name)
  | Interface_table.Conflict { from; into; index } ->
    Some
      (make ?file "L207"
         "conflicting declaration for interface (%s, %s, %d)" from into index)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Source excerpts                                                    *)
(* ------------------------------------------------------------------ *)

(* Both lint (file:line diagnostics over design text) and the ERC
   report printer render cited positions through this one helper, so
   the edge cases — zero-width spans, positions past the end of the
   text, spans crossing lines — are handled (and tested) in one
   place. *)
let excerpt ~text (s : span) =
  let lines =
    (* keep trailing empty line out: "a\n" is one line *)
    String.split_on_char '\n' text
  in
  let lines =
    match List.rev lines with "" :: tl -> List.rev tl | _ -> lines
  in
  let n_lines = List.length lines in
  let buf = Buffer.create 128 in
  if n_lines = 0 || s.s_line > n_lines then
    Buffer.add_string buf
      (Printf.sprintf "%4d | <past end of input (%d line%s)>" s.s_line n_lines
         (if n_lines = 1 then "" else "s"))
  else begin
    (* normalise: clamp the end to the text, order the endpoints *)
    let e_line, e_col =
      if s.s_end_line < s.s_line
         || (s.s_end_line = s.s_line && s.s_end_col < s.s_col)
      then (s.s_line, s.s_col)
      else (min s.s_end_line n_lines, s.s_end_col)
    in
    let nth l = List.nth lines (l - 1) in
    let render l =
      let src = nth l in
      let len = String.length src in
      let from = if l = s.s_line then min s.s_col len else 0 in
      let to_ = if l = e_line then min e_col len else len in
      let from = min from to_ in
      Buffer.add_string buf (Printf.sprintf "%4d | %s\n" l src);
      Buffer.add_string buf "     | ";
      Buffer.add_string buf (String.make from ' ');
      if to_ = from then
        (* zero-width span: a single caret at the position *)
        Buffer.add_char buf '^'
      else Buffer.add_string buf (String.make (to_ - from) '^')
    in
    let last = min e_line (s.s_line + 3) in
    for l = s.s_line to last do
      if l > s.s_line then Buffer.add_char buf '\n';
      render l
    done;
    if e_line > last then
      Buffer.add_string buf
        (Printf.sprintf "\n     | ... %d more line%s" (e_line - last)
           (if e_line - last = 1 then "" else "s"))
  end;
  Buffer.contents buf

let compare_diag a b =
  let line d = match d.line with Some l -> l | None -> max_int in
  let c = Int.compare (line a) (line b) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.message b.message

let count sev diags =
  List.length (List.filter (fun d -> d.severity = sev) diags)

let report ~source ~checked diags =
  let r_diags = List.sort compare_diag diags in
  Rsg_obs.Obs.count ~n:(List.length r_diags) "lint.diags";
  Rsg_obs.Obs.count ~n:(count Error r_diags) "lint.errors";
  { r_source = source; r_checked = checked; r_diags }

let merge ~source reports =
  { r_source = source;
    r_checked = List.fold_left (fun acc r -> acc + r.r_checked) 0 reports;
    r_diags =
      List.sort compare_diag (List.concat_map (fun r -> r.r_diags) reports) }

let errors r = List.filter (fun d -> d.severity = Error) r.r_diags

let warnings r = List.filter (fun d -> d.severity = Warning) r.r_diags

let clean r = errors r = []

let codes r =
  List.sort_uniq String.compare (List.map (fun d -> d.code) r.r_diags)

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_severity ppf s = Format.pp_print_string ppf (severity_name s)

let pp ppf d =
  (match (d.file, d.line, d.span) with
  | Some f, _, Some s -> Format.fprintf ppf "%s:%d.%d: " f s.s_line s.s_col
  | Some f, Some l, None -> Format.fprintf ppf "%s:%d: " f l
  | Some f, None, None -> Format.fprintf ppf "%s: " f
  | None, _, Some s -> Format.fprintf ppf "line %d.%d: " s.s_line s.s_col
  | None, Some l, None -> Format.fprintf ppf "line %d: " l
  | None, None, None -> ());
  Format.fprintf ppf "%a %s [%s] %s (%s)" pp_severity d.severity d.code
    (title_of_code d.code) d.message d.section

let pp_report ppf r =
  Format.fprintf ppf "lint %s: %d checked, %d error(s), %d warning(s), %d note(s)"
    r.r_source r.r_checked (count Error r.r_diags) (count Warning r.r_diags)
    (count Info r.r_diags);
  List.iter (fun d -> Format.fprintf ppf "@\n  %a" pp d) r.r_diags;
  Format.fprintf ppf "@."

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"source\":\"%s\",\"checked\":%d,\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"diagnostics\":["
       (json_escape r.r_source) r.r_checked (count Error r.r_diags)
       (count Warning r.r_diags) (count Info r.r_diags));
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"code\":\"%s\",\"severity\":\"%s\",\"file\":%s,\"line\":%s,\"span\":%s,\"message\":\"%s\",\"section\":\"%s\"}"
           d.code (severity_name d.severity)
           (match d.file with
           | Some f -> Printf.sprintf "\"%s\"" (json_escape f)
           | None -> "null")
           (match d.line with Some l -> string_of_int l | None -> "null")
           (match d.span with
           | Some s ->
             Printf.sprintf "[%d,%d,%d,%d]" s.s_line s.s_col s.s_end_line
               s.s_end_col
           | None -> "null")
           (json_escape d.message) (json_escape d.section)))
    r.r_diags;
  Buffer.add_string buf "]}";
  Buffer.contents buf

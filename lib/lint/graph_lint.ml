open Rsg_geom
open Rsg_core
module Obs = Rsg_obs.Obs

(* A logical edge, normalized to its emanating side: every [connect a
   b i] produces one Emanating entry on [a] and one Terminating entry
   on [b]; [(a.id, b.id, i)] identifies it uniquely — unless the same
   connect was issued twice, which is exactly the L206 duplicate. *)
let esig (n : Graph.node) (e : Graph.edge) =
  match e.Graph.dir with
  | Graph.Emanating -> (n.Graph.id, e.Graph.peer.Graph.id, e.Graph.index)
  | Graph.Terminating -> (e.Graph.peer.Graph.id, n.Graph.id, e.Graph.index)

let cellname (n : Graph.node) = n.Graph.def.Rsg_layout.Cell.cname

let check ?root ?(source = "graph") tbl (nodes : Graph.node list) =
  Obs.span "lint.graph" @@ fun () ->
  match nodes with
  | [] -> Diag.report ~source ~checked:0 []
  | first :: _ ->
    let root = Option.value root ~default:first in
    let diags = ref [] in
    let add d = diags := d :: !diags in
    let component = Graph.reachable root in
    let in_component = Hashtbl.create 64 in
    List.iter
      (fun (n : Graph.node) -> Hashtbl.replace in_component n.Graph.id ())
      component;
    List.iter
      (fun (n : Graph.node) ->
        if not (Hashtbl.mem in_component n.Graph.id) then
          add
            (Diag.make "L201" "node #%d (%s) is unreachable from root #%d (%s)"
               n.Graph.id (cellname n) root.Graph.id (cellname root)))
      nodes;
    (* Spanning-tree placement derivation (breadth-first, like Expand
       but re-implemented so the agreement property cross-checks). *)
    let derived : (int, Transform.t) Hashtbl.t = Hashtbl.create 64 in
    let tree_sigs = Hashtbl.create 64 in
    let missing_seen = Hashtbl.create 16 in
    let missing_key (n : Graph.node) (e : Graph.edge) =
      (* unordered celltype pair + index, as Expand dedups Missing *)
      let a = cellname n and b = cellname e.Graph.peer in
      if String.compare a b <= 0 then (a, b, e.Graph.index)
      else (b, a, e.Graph.index)
    in
    let report_missing (n : Graph.node) (e : Graph.edge) =
      let key = missing_key n e in
      if not (Hashtbl.mem missing_seen key) then begin
        Hashtbl.replace missing_seen key ();
        add
          (Diag.make "L204" "no interface %d declared between %s and %s"
             e.Graph.index (cellname n) (cellname e.Graph.peer))
      end
    in
    let edges_walked = ref 0 in
    Hashtbl.replace derived root.Graph.id Transform.identity;
    let queue = Queue.create () in
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      let t = Hashtbl.find derived n.Graph.id in
      List.iter
        (fun (e : Graph.edge) ->
          incr edges_walked;
          if not (Hashtbl.mem derived e.Graph.peer.Graph.id) then
            match Expand.interface_for tbl ~placed:n ~edge:e with
            | None -> report_missing n e
            | Some iface ->
              Hashtbl.replace derived e.Graph.peer.Graph.id
                (Interface.place ~a:t iface);
              Hashtbl.replace tree_sigs (esig n e) ();
              Queue.add e.Graph.peer queue)
        (Graph.edges n)
    done;
    (* Non-tree and duplicate edges: walk each logical edge once, from
       its emanating record. *)
    let sig_seen = Hashtbl.create 64 in
    let ambiguity_seen = Hashtbl.create 16 in
    List.iter
      (fun (n : Graph.node) ->
        List.iter
          (fun (e : Graph.edge) ->
            if e.Graph.dir = Graph.Emanating then begin
              let s = esig n e in
              let copies =
                match Hashtbl.find_opt sig_seen s with
                | Some c -> c + 1
                | None -> 1
              in
              Hashtbl.replace sig_seen s copies;
              if copies > 1 then
                add
                  (Diag.make "L206"
                     "duplicate edge #%d (%s) -> #%d (%s) interface %d"
                     n.Graph.id (cellname n) e.Graph.peer.Graph.id
                     (cellname e.Graph.peer) e.Graph.index)
              else if not (Hashtbl.mem tree_sigs s) then begin
                (* a fundamental cycle: check that composing the edge's
                   interface onto the tree placement of [n] reproduces
                   the tree placement of the peer *)
                match
                  ( Hashtbl.find_opt derived n.Graph.id,
                    Hashtbl.find_opt derived e.Graph.peer.Graph.id )
                with
                | Some tn, Some tp -> (
                  match Expand.interface_for tbl ~placed:n ~edge:e with
                  | None -> report_missing n e
                  | Some iface ->
                    let implied = Interface.place ~a:tn iface in
                    if Transform.equal implied tp then
                      add
                        (Diag.make "L202"
                           "redundant edge #%d (%s) -> #%d (%s) interface %d: \
                            consistent with the spanning tree"
                           n.Graph.id (cellname n) e.Graph.peer.Graph.id
                           (cellname e.Graph.peer) e.Graph.index)
                    else
                      add
                        (Diag.make "L205"
                           "over-constrained cycle: edge #%d (%s) -> #%d (%s) \
                            interface %d implies %a but the spanning tree \
                            places the node at %a"
                           n.Graph.id (cellname n) e.Graph.peer.Graph.id
                           (cellname e.Graph.peer) e.Graph.index Transform.pp
                           implied Transform.pp tp))
                | _ ->
                  (* an endpoint could not be derived: its blocking
                     missing interface is already reported *)
                  ()
              end;
              (* Same-celltype direction sensitivity (Figs 3.5-3.7):
                 the two readings differ iff I°aa is not self-inverse. *)
              let from = cellname n and into = cellname e.Graph.peer in
              if String.equal from into then
                match
                  Interface_table.find tbl ~from ~into ~index:e.Graph.index
                with
                | Some i
                  when not (Interface.equal i (Interface.invert i))
                       && not (Hashtbl.mem ambiguity_seen (from, e.Graph.index))
                  ->
                  Hashtbl.replace ambiguity_seen (from, e.Graph.index) ();
                  add
                    (Diag.make "L203"
                       "interface %d of %s is direction-sensitive: the two \
                        readings of an undirected edge would place \
                        differently; edge direction selects one"
                       e.Graph.index from)
                | _ -> ()
            end)
          (Graph.edges n))
      component;
    (* Dead interfaces: declared in the table but referenced by no
       edge of the graph (in either direction — declarations are
       bilateral, so each unordered pair is judged once, on its
       canonical key).  A dead declaration is not wrong, but it is
       exactly the "example without a use" a reviewer should see:
       either the sample drew an interface the connectivity never
       exercises, or an edge meant to use it names another index. *)
    let referenced = Hashtbl.create 64 in
    List.iter
      (fun (n : Graph.node) ->
        List.iter
          (fun (e : Graph.edge) ->
            if e.Graph.dir = Graph.Emanating then begin
              let a = cellname n and b = cellname e.Graph.peer in
              let key =
                if String.compare a b <= 0 then (a, b, e.Graph.index)
                else (b, a, e.Graph.index)
              in
              Hashtbl.replace referenced key ()
            end)
          (Graph.edges n))
      nodes;
    let dead =
      Interface_table.fold
        (fun ~from ~into ~index _iface acc ->
          if String.compare from into <= 0
             && not (Hashtbl.mem referenced (from, into, index))
          then (from, into, index) :: acc
          else acc)
        tbl []
    in
    List.iter
      (fun (from, into, index) ->
        add
          (Diag.make "L208"
             "interface %d between %s and %s is declared but never used by \
              any edge"
             index from into))
      (List.sort compare dead);
    Obs.count ~n:!edges_walked "lint.graph.edges";
    Diag.report ~source ~checked:!edges_walked !diags

let check_component ?source tbl root = check ?source tbl (Graph.reachable root)

(** The shared diagnostic core of the static analyzer.

    The lint front ends — {!Design_lint} over the design-file AST and
    {!Graph_lint} over connectivity graphs — and the electrical rule
    checker ([lib/erc]) emit the same typed diagnostic record: a
    stable code ([L1xx] for design-file findings, [L2xx] for graph
    findings, [E3xx] for electrical findings), a severity, an optional
    source location, a message and a cross-reference to the thesis
    section (or, for ERC, the verification flow) that defines the
    violated rule.  Reports render as text and JSON
    following the [lib/drc] violation-report pattern, so tooling can
    consume either checker uniformly. *)

type severity = Error | Warning | Info

type span = { s_line : int; s_col : int; s_end_line : int; s_end_col : int }
(** A source region: 1-based lines, 0-based columns, end exclusive.
    [s_line = s_end_line && s_col = s_end_col] is a zero-width span (a
    point, e.g. an insertion position). *)

type t = {
  code : string;          (** stable diagnostic code, e.g. ["L101"] *)
  severity : severity;
  file : string option;
  line : int option;      (** 1-based source line, when known *)
  span : span option;     (** precise source region, when known *)
  message : string;
  section : string;       (** thesis section defining the rule *)
}

type report = {
  r_source : string;   (** what was analyzed: file name or description *)
  r_checked : int;     (** items examined (forms or edges) *)
  r_diags : t list;    (** sorted: by line, then code, then message *)
}

val severity_of_code : string -> severity
(** Severity from the code table; [Error] for unknown codes. *)

val section_of_code : string -> string

val title_of_code : string -> string
(** Short rule name, e.g. ["unbound-variable"] for L101. *)

val all_codes : (string * severity * string * string) list
(** The full code table as [(code, severity, title, section)], in code
    order — the contract documented in README/DESIGN. *)

val make :
  ?severity:severity -> ?file:string -> ?line:int -> ?span:span -> string ->
  ('a, Format.formatter, unit, t) format4 -> 'a
(** [make ?file ?line code fmt ...] builds a diagnostic; severity and
    section come from the code table unless [severity] overrides it
    (e.g. L101 downgrades to [Warning] when the parameter environment
    is unknown, since the name may be supplied by a parameter file).
    When [span] is given and [line] is not, the line is taken from the
    span's start. *)

val excerpt : text:string -> span -> string
(** Render the cited region of [text] with caret underlining, the way
    compilers cite source: each line prefixed with its number, the
    spanned columns underlined with [^].  Edge cases are normalised
    rather than raised: a zero-width span renders a single caret at
    the position, a span whose start lies past the end of the text
    renders a [<past end of input>] marker, columns past the end of a
    line clamp to the line, inverted spans collapse to their start,
    and multi-line spans render at most four lines with a
    [... n more lines] tail.  Used by [rsg lint]'s text output and the
    ERC report printer. *)

val of_exn : ?file:string -> exn -> t option
(** Convert the typed failures of the lint-adjacent paths into
    diagnostics: {!Rsg_lang.Sexp.Parse_error} /
    {!Rsg_lang.Parser.Syntax_error} (L100),
    {!Rsg_layout.Db.Duplicate_cell} (L109),
    {!Rsg_layout.Cell.Instance_cycle} (L110) and
    {!Rsg_core.Interface_table.Conflict} (L207).  [None] for any other
    exception. *)

val compare_diag : t -> t -> int
(** The report order: by line (unknown last), then code, then
    message. *)

val report : source:string -> checked:int -> t list -> report
(** Sort diagnostics deterministically and count them under Obs. *)

val merge : source:string -> report list -> report

val errors : report -> t list

val warnings : report -> t list

val clean : report -> bool
(** No [Error]-severity diagnostics.  Warnings and notes (e.g. L203 on
    every pitched regular structure) do not make a design unclean. *)

val codes : report -> string list
(** Distinct diagnostic codes present, sorted. *)

val pp_severity : Format.formatter -> severity -> unit

val pp : Format.formatter -> t -> unit
(** One line: [file:line: severity CODE message (section)]. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
(** Machine-readable mirror of {!pp_report}:
    [{"source":...,"checked":n,"errors":n,"warnings":n,"infos":n,
      "diagnostics":[{"code":...,"severity":...,"file":...,"line":...,
      "message":...,"section":...},...]}]. *)

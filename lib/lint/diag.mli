(** The shared diagnostic core of the static analyzer.

    Both lint front ends — {!Design_lint} over the design-file AST and
    {!Graph_lint} over connectivity graphs — emit the same typed
    diagnostic record: a stable code ([L1xx] for design-file findings,
    [L2xx] for graph findings), a severity, an optional source
    location, a message and a cross-reference to the thesis section
    that defines the violated rule.  Reports render as text and JSON
    following the [lib/drc] violation-report pattern, so tooling can
    consume either checker uniformly. *)

type severity = Error | Warning | Info

type t = {
  code : string;          (** stable diagnostic code, e.g. ["L101"] *)
  severity : severity;
  file : string option;
  line : int option;      (** 1-based source line, when known *)
  message : string;
  section : string;       (** thesis section defining the rule *)
}

type report = {
  r_source : string;   (** what was analyzed: file name or description *)
  r_checked : int;     (** items examined (forms or edges) *)
  r_diags : t list;    (** sorted: by line, then code, then message *)
}

val severity_of_code : string -> severity
(** Severity from the code table; [Error] for unknown codes. *)

val section_of_code : string -> string

val title_of_code : string -> string
(** Short rule name, e.g. ["unbound-variable"] for L101. *)

val all_codes : (string * severity * string * string) list
(** The full code table as [(code, severity, title, section)], in code
    order — the contract documented in README/DESIGN. *)

val make :
  ?severity:severity -> ?file:string -> ?line:int -> string ->
  ('a, Format.formatter, unit, t) format4 -> 'a
(** [make ?file ?line code fmt ...] builds a diagnostic; severity and
    section come from the code table unless [severity] overrides it
    (e.g. L101 downgrades to [Warning] when the parameter environment
    is unknown, since the name may be supplied by a parameter file). *)

val of_exn : ?file:string -> exn -> t option
(** Convert the typed failures of the lint-adjacent paths into
    diagnostics: {!Rsg_lang.Sexp.Parse_error} /
    {!Rsg_lang.Parser.Syntax_error} (L100),
    {!Rsg_layout.Db.Duplicate_cell} (L109),
    {!Rsg_layout.Cell.Instance_cycle} (L110) and
    {!Rsg_core.Interface_table.Conflict} (L207).  [None] for any other
    exception. *)

val report : source:string -> checked:int -> t list -> report
(** Sort diagnostics deterministically and count them under Obs. *)

val merge : source:string -> report list -> report

val errors : report -> t list

val warnings : report -> t list

val clean : report -> bool
(** No [Error]-severity diagnostics.  Warnings and notes (e.g. L203 on
    every pitched regular structure) do not make a design unclean. *)

val codes : report -> string list
(** Distinct diagnostic codes present, sorted. *)

val pp_severity : Format.formatter -> severity -> unit

val pp : Format.formatter -> t -> unit
(** One line: [file:line: severity CODE message (section)]. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
(** Machine-readable mirror of {!pp_report}:
    [{"source":...,"checked":n,"errors":n,"warnings":n,"infos":n,
      "diagnostics":[{"code":...,"severity":...,"file":...,"line":...,
      "message":...,"section":...},...]}]. *)

(** Static analysis of design files (Chapter 4) — scoping, arity and
    array-shape checks over the {!Rsg_lang.Ast}, without evaluating.

    Name resolution models Table 4.1's three tiers: the procedure
    frame (formals, locals and [do] loop variables), then the global
    environment (top-level assignments, assignments to non-frame names
    anywhere — [Env.set] falls through to the global frame — plus
    whatever the host installs: parameter-file bindings and sample
    cells, supplied via {!config}), then the cell table (sample cells
    and cells created by [mk_cell] under a string-literal name).

    Diagnostics: [L100] syntax error, [L101] unbound variable ([Error]
    when the host environment is known, [Warning] otherwise — the name
    may come from a parameter file), [L102] unused local, [L103]
    unused procedure, [L104] call arity mismatch, [L105]
    scalar-vs-array misuse of a declared local, [L106] duplicate
    procedure/formal/local, [L107] [subcell] binding that the called
    macro never defines, [L108] unknown function or macro. *)

type config = {
  globals : string list;
      (** names the host will bind before running: parameter-file
          bindings, [define_global] installs (e.g. the PLA's [lits] /
          [outs] encoding tables) *)
  cells : string list;  (** sample cell-table names *)
  env_known : bool;
      (** true when [globals]/[cells] describe the complete host
          environment, making unresolved names hard errors *)
}

val default_config : config
(** Empty environment, [env_known = false]. *)

val config_of_params : ?cells:string list -> Rsg_lang.Param.t -> config
(** Environment-known config from a parsed parameter file. *)

val check_program :
  ?file:string -> config -> Rsg_lang.Ast.toplevel list -> Diag.report

val check_string : ?file:string -> config -> string -> Diag.report
(** Parse then {!check_program}; parse failures become a single [L100]
    diagnostic instead of an exception. *)

(** The canonical-architecture compiler baseline (Figure 1.2).

    Models a Macpitts-like silicon compiler: every function is mapped
    onto one canonical architecture — a bit-sliced datapath of
    general-purpose slices (register + ALU + bus routing in every
    slice, used or not) sequenced by a control array — rather than an
    architecture matched to the function.  The layout is generated
    with the same RSG core (slices tiled by interface, control PLA
    from {!Rsg_pla.Gen}), so the area numbers are measured from real
    generated geometry, not estimated.

    For an m-by-n multiply the datapath holds three operand/result
    words and performs the {!Shift_add} sequence in n+1 control steps
    — the architecture mismatch the thesis blames for Macpitts-era
    compilers needing about five times the area of a matched
    design. *)

open Rsg_layout

type t = {
  datapath : Cell.t;
  control : Cell.t;
  slices : int;
  area : int;           (** bounding-box area of datapath + control *)
  cycles_per_multiply : int;
}

val generate : m:int -> n:int -> t
(** Compile an m-by-n multiply onto the canonical architecture. *)

val slice_width : int

val slice_height : int

open Rsg_geom
open Rsg_layout
open Rsg_core

type t = { cell : Cell.t; area : int; cell_width : int; cell_height : int }

let cell_width = 42

let cell_height = 56

let box x y w h = Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h

(* One fused cell per personality: the adder core plus the type and
   clock geometry baked in. *)
let make_variant name ~type2 ~phi2 =
  let c = Cell.create name in
  Cell.add_box c Layer.Metal (box 0 0 cell_width 3);
  Cell.add_box c Layer.Metal (box 0 (cell_height - 3) cell_width 3);
  Cell.add_box c Layer.Diffusion (box 4 6 30 20);
  Cell.add_box c Layer.Poly (box 2 12 36 3);
  Cell.add_box c Layer.Poly (box 2 20 36 3);
  Cell.add_box c Layer.Metal (box 18 3 3 (cell_height - 6));
  Cell.add_box c Layer.Diffusion (box 6 32 30 14);
  if type2 then Cell.add_box c Layer.Buried (box 6 26 8 8)
  else Cell.add_box c Layer.Implant (box 6 26 8 8);
  if phi2 then Cell.add_box c Layer.Poly (box 28 48 8 4)
  else Cell.add_box c Layer.Metal (box 28 48 8 4);
  c

let variant_name ~type2 ~phi2 =
  Printf.sprintf "mul-%s-%s"
    (if type2 then "t2" else "t1")
    (if phi2 then "p2" else "p1")

let generate ~xsize ~ysize =
  if xsize < 2 || ysize < 2 then invalid_arg "Specialized.generate";
  let sample = Sample.create () in
  let variants =
    List.concat_map
      (fun type2 ->
        List.map
          (fun phi2 ->
            ((type2, phi2), make_variant (variant_name ~type2 ~phi2) ~type2 ~phi2))
          [ false; true ])
      [ false; true ]
  in
  let cell_for type2 phi2 = List.assoc (type2, phi2) variants in
  (* Interfaces: every ordered variant pair abuts on the same pitch.
     "b to the right of a" and "a to the right of b" are different
     interfaces, so the reversed orientation gets its own index
     (3 horizontal, 4 vertical) to avoid clashing with the bilateral
     image of the forward one. *)
  let h_idx a b = if String.compare a.Cell.cname b.Cell.cname <= 0 then 1 else 3 in
  let v_idx a b = if String.compare a.Cell.cname b.Cell.cname <= 0 then 2 else 4 in
  List.iter
    (fun (_, a) ->
      List.iter
        (fun (_, b) ->
          let asm = Cell.create (Db.fresh_name sample.Sample.db "sp-asm") in
          let ia = Cell.add_instance asm ~at:Vec.zero a in
          let ib = Cell.add_instance asm ~at:(Vec.make cell_width 0) b in
          ignore (Sample.declare_by_example sample ~index:(h_idx a b) ia ib);
          let asm2 = Cell.create (Db.fresh_name sample.Sample.db "sp-asm") in
          let ia2 = Cell.add_instance asm2 ~at:Vec.zero a in
          let ib2 = Cell.add_instance asm2 ~at:(Vec.make 0 cell_height) b in
          ignore (Sample.declare_by_example sample ~index:(v_idx a b) ia2 ib2))
        variants)
    variants;
  let grid = Array.make_matrix (xsize + 1) (ysize + 2) None in
  for yloc = 1 to ysize + 1 do
    for xloc = 1 to xsize do
      let type2 =
        yloc <> ysize + 1 && (xloc = xsize) <> (yloc = ysize)
      in
      let phi2 = xloc mod 2 <> 0 in
      grid.(xloc).(yloc) <- Some (Graph.mk_instance (cell_for type2 phi2))
    done
  done;
  let at x y = Option.get grid.(x).(y) in
  let h_of u v = h_idx u.Graph.def v.Graph.def
  and v_of u v = v_idx u.Graph.def v.Graph.def in
  for yloc = 2 to ysize + 1 do
    let u = at 1 (yloc - 1) and v = at 1 yloc in
    Graph.connect u v (v_of u v)
  done;
  for yloc = 1 to ysize + 1 do
    for xloc = 2 to xsize do
      let u = at (xloc - 1) yloc and v = at xloc yloc in
      Graph.connect u v (h_of u v)
    done
  done;
  let cell =
    Expand.mk_cell ~db:sample.Sample.db sample.Sample.table "specialized-mult"
      (at 1 1)
  in
  let area = match Cell.bbox cell with Some b -> Box.area b | None -> 0 in
  { cell; area; cell_width; cell_height }

let variants ~xsize ~ysize =
  let t = generate ~xsize ~ysize in
  (Flatten.stats t.cell).Flatten.by_cell

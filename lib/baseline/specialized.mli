(** A specialised multiplier module generator (Figure 1.2's right
    column).

    Like the dedicated multiplier generators the thesis cites, it
    implements exactly one architecture (the same Baugh-Wooley array)
    with pre-personalised, hand-tightened cells: instead of a basic
    cell plus overlay masks, there is one fused cell per personality
    (type x clock), drawn on a tighter pitch.  More efficient on its
    single function; zero generality. *)

open Rsg_layout

type t = {
  cell : Cell.t;
  area : int;       (** bounding-box area *)
  cell_width : int;
  cell_height : int;
}

val cell_width : int
(** the specialised (tight) horizontal pitch *)

val cell_height : int

val generate : xsize:int -> ysize:int -> t
(** The same (xsize)-by-(ysize+1) array as {!Rsg_mult.Layout_gen},
    with fused cells on the specialised pitch. *)

val variants : xsize:int -> ysize:int -> (string * int) list
(** Fused-cell census of the generated array (type1/type2 x
    phi1/phi2), sorted. *)

(** Shift-add multiplication on a canonical datapath.

    The sequential multiply a Macpitts-style compiler maps onto its
    register/adder/shifter datapath: one partial-product add per
    multiplier bit, sequenced by a control PLA.  The control is a real
    {!Rsg_pla.Truth_table} (state counter + multiplier LSB in,
    add/shift/done + next state out), so the baseline's controller is
    generated and verified by the same machinery as everything else. *)

type trace = {
  product : int;   (** signed (m+n)-bit result *)
  cycles : int;    (** control steps consumed *)
}

val control_table : n:int -> Rsg_pla.Truth_table.t
(** The controller personality for an n-step multiply.  Inputs:
    state bits (LSB first) then the multiplier LSB; outputs:
    [add]; [shift]; [done]; next-state bits. *)

val multiply : m:int -> n:int -> int -> int -> trace
(** Run the datapath under {!control_table} until [done].  Two's
    complement, m-bit by n-bit.  Raises [Invalid_argument] out of
    range. *)

val cycles_per_multiply : n:int -> int
(** [n + 1] — n shift/add steps plus the done state. *)

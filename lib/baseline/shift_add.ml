open Rsg_pla

type trace = { product : int; cycles : int }

let state_bits n =
  let rec go w = if 1 lsl w > n then w else go (w + 1) in
  go 1

(* Controller personality.  Inputs: state bits (LSB first), then the
   multiplier LSB.  Outputs: add, sub, shift, done, next-state bits. *)
let control_table ~n =
  if n < 2 then invalid_arg "Shift_add.control_table";
  let w = state_bits n in
  let lit v bit = if v land (1 lsl bit) <> 0 then Truth_table.T else Truth_table.F in
  let term ~state ~lsb ~add ~sub ~shift ~done_ ~next =
    { Truth_table.lits =
        Array.init (w + 1) (fun i ->
            if i < w then lit state i
            else
              match lsb with
              | Some true -> Truth_table.T
              | Some false -> Truth_table.F
              | None -> Truth_table.X);
      outs =
        Array.init (w + 4) (fun i ->
            match i with
            | 0 -> add
            | 1 -> sub
            | 2 -> shift
            | 3 -> done_
            | _ -> next land (1 lsl (i - 4)) <> 0) }
  in
  let steps =
    List.concat_map
      (fun s ->
        let last = s = n - 1 in
        [ term ~state:s ~lsb:(Some true) ~add:(not last) ~sub:last
            ~shift:true ~done_:false ~next:(s + 1);
          term ~state:s ~lsb:(Some false) ~add:false ~sub:false ~shift:true
            ~done_:false ~next:(s + 1) ])
      (List.init n Fun.id)
  in
  let final =
    term ~state:n ~lsb:None ~add:false ~sub:false ~shift:false ~done_:true
      ~next:n
  in
  Truth_table.make ~n_inputs:(w + 1) ~n_outputs:(w + 4) (steps @ [ final ])

let cycles_per_multiply ~n = n + 1

let multiply ~m ~n a b =
  if not (Rsg_mult.Multiplier.in_range ~width:m a) then
    invalid_arg "Shift_add.multiply: a";
  if not (Rsg_mult.Multiplier.in_range ~width:n b) then
    invalid_arg "Shift_add.multiply: b";
  let tt = control_table ~n in
  let w = state_bits n in
  let mask = (1 lsl (m + n)) - 1 in
  let acc = ref 0 in
  let breg = ref (b land ((1 lsl n) - 1)) in
  let state = ref 0 in
  let cycles = ref 0 in
  let finished = ref false in
  while not !finished do
    incr cycles;
    if !cycles > 4 * n then failwith "Shift_add: controller ran away";
    let inputs = !state lor (if !breg land 1 = 1 then 1 lsl w else 0) in
    let outs = Truth_table.eval_int tt inputs in
    let add = outs land 1 <> 0
    and sub = outs land 2 <> 0
    and shift = outs land 4 <> 0
    and done_ = outs land 8 <> 0 in
    let next = outs lsr 4 in
    if done_ then finished := true
    else begin
      if add then acc := (!acc + (a lsl !state)) land mask;
      if sub then acc := (!acc - (a lsl !state)) land mask;
      if shift then breg := !breg lsr 1;
      state := next
    end
  done;
  let v = !acc in
  let product =
    if v land (1 lsl (m + n - 1)) <> 0 then v - (1 lsl (m + n)) else v
  in
  { product; cycles = !cycles }

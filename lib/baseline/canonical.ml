open Rsg_geom
open Rsg_layout
open Rsg_core

type t = {
  datapath : Cell.t;
  control : Cell.t;
  slices : int;
  area : int;
  cycles_per_multiply : int;
}

let slice_width = 60

let slice_height = 180

let box x y w h = Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h

(* A general-purpose datapath slice: register, ALU bit, shifter tap
   and three bus tracks — present whether the function needs them or
   not, which is exactly the canonical architecture's overhead. *)
let make_slice () =
  let c = Cell.create "dp-slice" in
  (* bus tracks *)
  Cell.add_box c Layer.Metal (box 0 0 slice_width 6);
  Cell.add_box c Layer.Metal (box 0 60 slice_width 6);
  Cell.add_box c Layer.Metal (box 0 120 slice_width 6);
  Cell.add_box c Layer.Metal (box 0 (slice_height - 6) slice_width 6);
  (* register *)
  Cell.add_box c Layer.Diffusion (box 6 10 20 40);
  Cell.add_box c Layer.Poly (box 4 24 24 4);
  Cell.add_box c Layer.Contact (box 10 14 4 4);
  (* ALU bit *)
  Cell.add_box c Layer.Diffusion (box 32 10 22 44);
  Cell.add_box c Layer.Poly (box 30 20 26 4);
  Cell.add_box c Layer.Poly (box 30 36 26 4);
  (* shifter *)
  Cell.add_box c Layer.Diffusion (box 6 70 48 40);
  Cell.add_box c Layer.Poly (box 4 84 52 4);
  (* routing column *)
  Cell.add_box c Layer.Metal (box 26 6 4 (slice_height - 12));
  Cell.add_box c Layer.Poly (box 44 126 4 44);
  c

(* Each word of the computation needs a slice column; the canonical
   datapath allocates full (m+n)-bit words for the accumulator, the
   multiplicand and the multiplier. *)
let n_slices ~m ~n = 3 * (m + n)

let generate ~m ~n =
  let sample = Sample.create () in
  let slice = make_slice () in
  (* slice-to-slice interface declared by example *)
  let asm = Cell.create "dp-asm" in
  let i1 = Cell.add_instance asm ~at:Vec.zero slice in
  let i2 = Cell.add_instance asm ~at:(Vec.make slice_width 0) slice in
  ignore (Sample.declare_by_example sample ~index:1 i1 i2);
  let k = n_slices ~m ~n in
  let nodes = Array.init k (fun _ -> Graph.mk_instance slice) in
  for i = 1 to k - 1 do
    Graph.connect nodes.(i - 1) nodes.(i) 1
  done;
  let datapath =
    Expand.mk_cell ~db:sample.Sample.db sample.Sample.table "datapath"
      nodes.(0)
  in
  (* Macpitts used "a control path implemented with a Weinberger
     array": compile the shift-add controller to NOR gates and lay it
     out as one. *)
  let control_tt = Shift_add.control_table ~n in
  let control_prog, _ = Rsg_pla.Weinberger.of_truth_table control_tt in
  let control =
    (Rsg_pla.Weinberger.generate ~name:"control" control_prog)
      .Rsg_pla.Weinberger.cell
  in
  let area_of c =
    match Cell.bbox c with Some b -> Box.area b | None -> 0
  in
  { datapath;
    control;
    slices = k;
    area = area_of datapath + area_of control;
    cycles_per_multiply = Shift_add.cycles_per_multiply ~n }

(** Manifest-line job specifications, shared by [rsg batch] and the
    serve daemon.

    A job spec is one line of the batch-manifest grammar:
    {v NAME KIND key=value ... v}
    with kinds [multiplier] ([size=N]), [pla] ([table=FILE] or
    [rows=IN:OUT,...], [fold=true]), [rom] ([data=FILE] or
    [words=W,W,...], [word-bits=N]), [decoder] ([n=N]) and [ram]
    ([words=N bits=N]); [#] starts a comment and blank lines are
    skipped.  Parsing yields a {!Rsg_store.Batch.job} — name, kind,
    content-addressed store key, human label and a generator thunk —
    so the CLI and the daemon agree byte-for-byte on what a spec means
    and on the cache key it hits.

    Everything here is [result]-valued: a daemon must turn a bad spec
    into a structured error response, never an [exit] (the CLI's
    original parser exited, which a resident service cannot).  The
    generator thunks themselves may still raise (generation bugs are
    {!Protocol.Job_failed}, not bad requests); only {e parsing} is
    total. *)

val parse_line : int -> string -> (Rsg_store.Batch.job option, string) result
(** Parse one manifest line (1-based [lineno] for error messages).
    [Ok None] for blank or comment-only lines.  File references
    ([table=], [data=]) are read eagerly so unreadable files are
    parse errors, not generation-time surprises. *)

val parse_manifest : string -> (Rsg_store.Batch.job list, string) result
(** Parse a whole manifest (any number of lines).  Rejects an empty
    job list and duplicate job names, as [rsg batch] does. *)

val target_cell : string -> (Rsg_layout.Cell.t, string) result
(** Resolve a drc/extract target: a builtin generator name ([pla],
    [ram], [multiplier], [decoder] — the same fixed examples the CLI
    offers) or a path to a CIF file whose top cell is wanted. *)

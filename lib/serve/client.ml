type t = {
  fd : Unix.file_descr;
  acc : Buffer.t;  (* bytes read past the last returned line *)
  chunk : Bytes.t;
}

let connect ?(attempts = 1) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; acc = Buffer.create 4096; chunk = Bytes.create 65536 }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if n > 1 then begin
        Unix.sleepf 0.05;
        go (n - 1)
      end
      else
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
  in
  go (max 1 attempts)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t s =
  let line = s ^ "\n" in
  let n = String.length line in
  let off = ref 0 in
  match
    while !off < n do
      off := !off + Unix.write_substring t.fd line !off (n - !off)
    done
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error ("write failed: " ^ Unix.error_message e)

let send t v = send_line t (Json.to_string v)

let recv t =
  let rec take_line () =
    let s = Buffer.contents t.acc in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear t.acc;
      Buffer.add_substring t.acc s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
    | None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> None
      | n ->
        Buffer.add_subbytes t.acc t.chunk 0 n;
        take_line ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> take_line ()
      | exception Unix.Unix_error _ -> None)
  in
  match take_line () with
  | None -> Error "connection closed by daemon"
  | Some line -> (
    match Json.parse line with
    | Ok v -> Ok v
    | Error msg -> Error ("unparseable response: " ^ msg))

let request t v = Result.bind (send t v) (fun () -> recv t)

let pipeline t reqs =
  let rec send_all = function
    | [] -> Ok ()
    | r :: rest -> Result.bind (send t r) (fun () -> send_all rest)
  in
  Result.bind (send_all reqs) (fun () ->
      let rec recv_n acc n =
        if n = 0 then Ok (List.rev acc)
        else Result.bind (recv t) (fun v -> recv_n (v :: acc) (n - 1))
      in
      recv_n [] (List.length reqs))

let response_ok v = Json.mem_bool "ok" v = Some true

(** The serve wire protocol: newline-delimited JSON over a
    Unix-domain socket.

    One request per line, one response line per request.  Requests
    carry a client-chosen [id] that the response echoes, so a client
    may pipeline: write any number of request lines before reading
    responses, and correlate by id (responses arrive in completion
    order, not submission order).

    Request object:
    {v
      {"id": "r1", "op": "generate", "spec": "m8 multiplier size=8",
       "deadline_ms": 2000, "drc": false, "cif": false, "out": "m8.cif"}
    v}
    - [op] — one of [generate], [drc], [erc], [compact], [place],
      [extract], [lint], [batch] (queued jobs); [sleep] (queued;
      load-bench plumbing); [stats], [health], [shutdown] (answered
      inline, never queued).
    - [spec] — op-dependent: a batch-manifest line for [generate]
      ([NAME KIND key=value ...], see {!Jobspec}); a builtin name or
      CIF path for [drc]/[erc]/[extract]/[place]; a builtin design ([mult]/[pla]) or
      design-file path for [lint]; a whole manifest (embedded
      newlines) for [batch]; milliseconds for [sleep].
    - [deadline_ms] — optional admission deadline: the job must
      {e start} within this many milliseconds of arrival or it is
      answered with a [deadline_expired] error instead of running
      (a non-positive value is expired on arrival).  Execution is
      never preempted: an admitted-and-started job always completes.
    - [drc] — for [generate]: also design-rule check the result
      (reported in the response, not a gate).
    - [cif] — for [generate]: include the layout as CIF text in the
      response.
    - [out] — for [generate]: write the layout to this server-side
      path.

    Success response: [{"id": ..., "ok": true, "result": {...}}].
    Error response:
    [{"id": ..., "ok": false, "error": "<code>", "message": "..."}]
    where [<code>] is one of the {!error} codes below.  A request
    whose id could not be parsed is answered with [id: null].  Every
    protocol violation — malformed JSON, oversized line, unknown op —
    produces an error {e response}; none of them terminates the
    daemon or the connection (except [too_large], which closes the
    connection after responding, since the stream may be
    arbitrarily far from the next frame boundary). *)

type error =
  | Bad_request of string  (** malformed JSON, missing field, unknown op *)
  | Too_large of { limit : int }  (** request line over the byte cap *)
  | Queue_full  (** admission queue at capacity — retry later *)
  | Deadline_expired  (** job did not start before its deadline *)
  | Job_failed of string  (** the job itself raised or reported failure *)
  | Draining  (** daemon is shutting down; no new jobs admitted *)

val error_code : error -> string
(** Stable wire code: [bad_request], [too_large], [queue_full],
    [deadline_expired], [job_failed], [draining]. *)

val error_message : error -> string

type op =
  | Generate of { spec : string; drc : bool; cif : bool; out : string option }
  | Drc of { spec : string }
  | Erc of { spec : string }
  | Compact of { spec : string }
  | Place of { spec : string; blocks : int; seed : int; iters : int;
               chains : int }
      (** annealed macro arrangement of [blocks] copies of the
          target; [iters]/[chains]/[seed] default to 32/2/1 *)
  | Extract of { spec : string }
  | Lint of { spec : string }
  | Batch of { spec : string }
  | Sleep of { ms : int }
  | Stats
  | Health
  | Shutdown

type request = {
  rq_id : Json.t;  (** echoed verbatim; [Null] when absent *)
  rq_op : op;
  rq_deadline_ms : int option;
}

val parse_request : string -> (request, Json.t * error) result
(** Parse one request line.  On error, returns the best-effort id
    (so the error response still correlates) with the error. *)

val ok_response : id:Json.t -> Json.t -> string
(** Serialise a success response line (no trailing newline). *)

val error_response : id:Json.t -> error -> string

val queueable : op -> bool
(** True for ops that go through admission (generate/drc/erc/compact/
    place/extract/lint/batch/sleep); false for the inline control
    ops. *)

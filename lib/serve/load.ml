type result = {
  l_sent : int;
  l_ok : int;
  l_errors : (string * int) list;
  l_latencies : float array;
  l_seconds : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

type thread_out = {
  mutable t_ok : int;
  mutable t_errors : (string * int) list;
  mutable t_lat : float list;
  mutable t_fail : string option;  (* transport failure, aborts the thread *)
}

let with_id v id =
  match v with
  | Json.Obj fields ->
    Json.Obj (("id", Json.String id) :: List.remove_assoc "id" fields)
  | other -> other

let bump out code =
  let n = try List.assoc code out.t_errors with Not_found -> 0 in
  out.t_errors <- (code, n + 1) :: List.remove_assoc code out.t_errors

let replay_thread ~socket ~repeat ~offset reqs out =
  match Client.connect ~attempts:20 socket with
  | Error msg -> out.t_fail <- Some msg
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let reqs = Array.of_list reqs in
        let n = Array.length reqs in
        let k = ref 0 in
        (try
           for round = 0 to repeat - 1 do
             for i = 0 to n - 1 do
               let req = reqs.((offset + (round * n) + i) mod n) in
               let id = Printf.sprintf "t%d-%d" offset !k in
               incr k;
               let t0 = Unix.gettimeofday () in
               match Client.request c (with_id req id) with
               | Error msg ->
                 out.t_fail <- Some msg;
                 raise Exit
               | Ok resp ->
                 out.t_lat <- (Unix.gettimeofday () -. t0) :: out.t_lat;
                 if Client.response_ok resp then out.t_ok <- out.t_ok + 1
                 else
                   bump out
                     (Option.value ~default:"unknown"
                        (Json.mem_string "error" resp))
             done
           done
         with Exit -> ()))

let run ~socket ~concurrency ~repeat reqs =
  let concurrency = max 1 concurrency in
  let outs =
    Array.init concurrency (fun _ ->
        { t_ok = 0; t_errors = []; t_lat = []; t_fail = None })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.mapi
      (fun i out ->
        Thread.create
          (fun () -> replay_thread ~socket ~repeat ~offset:i reqs out)
          ())
      outs
  in
  Array.iter Thread.join threads;
  let seconds = Unix.gettimeofday () -. t0 in
  match
    Array.fold_left
      (fun acc o -> match acc with Some _ -> acc | None -> o.t_fail)
      None outs
  with
  | Some msg -> Error msg
  | None ->
    let lat =
      Array.of_list (Array.fold_left (fun l o -> o.t_lat @ l) [] outs)
    in
    Array.sort compare lat;
    let errors =
      Array.fold_left
        (fun acc o ->
          List.fold_left
            (fun acc (code, n) ->
              let m = try List.assoc code acc with Not_found -> 0 in
              (code, m + n) :: List.remove_assoc code acc)
            acc o.t_errors)
        [] outs
      |> List.sort compare
    in
    Ok
      {
        l_sent = Array.length lat;
        l_ok = Array.fold_left (fun a o -> a + o.t_ok) 0 outs;
        l_errors = errors;
        l_latencies = lat;
        l_seconds = seconds;
      }

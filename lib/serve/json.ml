type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- parsing -------------------------------------------------------- *)

exception Fail of string

let max_depth = 128

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let utf8_add b cp =
    (* encode one code point; surrogate pairs were already combined *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'u' ->
           advance ();
           let cp = hex4 () in
           let cp =
             if cp >= 0xD800 && cp <= 0xDBFF then begin
               (* high surrogate: require the low half *)
               if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                 advance (); advance ();
                 let lo = hex4 () in
                 if lo < 0xDC00 || lo > 0xDFFF then fail "bad surrogate pair";
                 0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
               end
               else fail "lone high surrogate"
             end
             else if cp >= 0xDC00 && cp <= 0xDFFF then fail "lone low surrogate"
             else cp
           in
           utf8_add b cp
         | _ -> fail "bad escape"));
        loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ()
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "bad number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal (expected " ^ word ^ ")")
  in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> advance (); String (string_body ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = value (depth + 1) in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* ---- serialisation -------------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_string v =
  let b = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        (* %.17g round-trips every float; strip to the shortest via
           the stdlib's conversion, which never emits a newline *)
        Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
    | String s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          emit x)
        fields;
      Buffer.add_char b '}'
  in
  emit v;
  Buffer.contents b

(* ---- accessors ------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
    Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None

let mem_string k v = Option.bind (member k v) to_string_opt
let mem_int k v = Option.bind (member k v) to_int_opt
let mem_bool k v = Option.bind (member k v) to_bool_opt

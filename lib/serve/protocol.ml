type error =
  | Bad_request of string
  | Too_large of { limit : int }
  | Queue_full
  | Deadline_expired
  | Job_failed of string
  | Draining

let error_code = function
  | Bad_request _ -> "bad_request"
  | Too_large _ -> "too_large"
  | Queue_full -> "queue_full"
  | Deadline_expired -> "deadline_expired"
  | Job_failed _ -> "job_failed"
  | Draining -> "draining"

let error_message = function
  | Bad_request m -> m
  | Too_large { limit } ->
    Printf.sprintf "request line exceeds %d bytes" limit
  | Queue_full -> "admission queue full; retry later"
  | Deadline_expired -> "job did not start before its deadline"
  | Job_failed m -> m
  | Draining -> "daemon is draining; no new jobs admitted"

type op =
  | Generate of { spec : string; drc : bool; cif : bool; out : string option }
  | Drc of { spec : string }
  | Erc of { spec : string }
  | Compact of { spec : string }
  | Place of { spec : string; blocks : int; seed : int; iters : int;
               chains : int }
  | Extract of { spec : string }
  | Lint of { spec : string }
  | Batch of { spec : string }
  | Sleep of { ms : int }
  | Stats
  | Health
  | Shutdown

type request = { rq_id : Json.t; rq_op : op; rq_deadline_ms : int option }

let queueable = function
  | Generate _ | Drc _ | Erc _ | Compact _ | Place _ | Extract _ | Lint _
  | Batch _ | Sleep _ ->
    true
  | Stats | Health | Shutdown -> false

let spec_of v =
  match Json.mem_string "spec" v with
  | Some s when String.trim s <> "" -> Ok s
  | Some _ -> Error "empty \"spec\""
  | None -> Error "missing \"spec\" field"

let op_of v =
  match Json.mem_string "op" v with
  | None -> Error "missing \"op\" field"
  | Some "generate" ->
    Result.map
      (fun spec ->
        Generate
          {
            spec;
            drc = Option.value ~default:false (Json.mem_bool "drc" v);
            cif = Option.value ~default:false (Json.mem_bool "cif" v);
            out = Json.mem_string "out" v;
          })
      (spec_of v)
  | Some "drc" -> Result.map (fun spec -> Drc { spec }) (spec_of v)
  | Some "erc" -> Result.map (fun spec -> Erc { spec }) (spec_of v)
  | Some "compact" -> Result.map (fun spec -> Compact { spec }) (spec_of v)
  | Some "place" ->
    let field name default =
      Option.value ~default (Json.mem_int name v)
    in
    Result.bind (spec_of v) (fun spec ->
        let blocks = field "blocks" 3
        and seed = field "seed" 1
        and iters = field "iters" 32
        and chains = field "chains" 2 in
        if blocks < 1 || iters < 0 || chains < 1 then
          Error "place needs blocks >= 1, iters >= 0, chains >= 1"
        else Ok (Place { spec; blocks; seed; iters; chains }))
  | Some "extract" -> Result.map (fun spec -> Extract { spec }) (spec_of v)
  | Some "lint" -> Result.map (fun spec -> Lint { spec }) (spec_of v)
  | Some "batch" -> Result.map (fun spec -> Batch { spec }) (spec_of v)
  | Some "sleep" -> (
    match Json.mem_int "ms" v with
    | Some ms when ms >= 0 -> Ok (Sleep { ms })
    | Some _ -> Error "\"ms\" must be non-negative"
    | None -> Error "sleep needs an integer \"ms\" field")
  | Some "stats" -> Ok Stats
  | Some "health" -> Ok Health
  | Some "shutdown" -> Ok Shutdown
  | Some other -> Error (Printf.sprintf "unknown op %S" other)

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (Json.Null, Bad_request ("malformed JSON: " ^ msg))
  | Ok v -> (
    let id = Option.value ~default:Json.Null (Json.member "id" v) in
    match v with
    | Json.Obj _ -> (
      match op_of v with
      | Error msg -> Error (id, Bad_request msg)
      | Ok op ->
        let deadline =
          match Json.member "deadline_ms" v with
          | None | Some Json.Null -> None
          | Some d -> (
            match Json.to_int_opt d with
            | Some ms -> Some ms
            | None -> Some 0 (* non-integer deadline: expired on arrival *))
        in
        Ok { rq_id = id; rq_op = op; rq_deadline_ms = deadline })
    | _ -> Error (id, Bad_request "request must be a JSON object"))

let ok_response ~id result =
  Json.to_string (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ])

let error_response ~id err =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ("error", Json.String (error_code err));
         ("message", Json.String (error_message err));
       ])

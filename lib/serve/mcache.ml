module Obs = Rsg_obs.Obs

type entry = {
  me_cell : Rsg_layout.Cell.t;
  me_flat : Rsg_layout.Flatten.flat;
  me_cif : string;
  me_bytes : int;
}

type slot = { entry : entry; mutable tick : int }

type t = {
  mutex : Mutex.t;
  table : (string, slot) Hashtbl.t;
  budget : int;
  mutable bytes : int;
  mutable clock : int;
}

let create ~budget_bytes =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    budget = max 0 budget_bytes;
    bytes = 0;
    clock = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.mutex)

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some slot ->
    t.clock <- t.clock + 1;
    slot.tick <- t.clock;
    Obs.count "serve.mem_hit";
    Some slot.entry
  | None ->
    Obs.count "serve.mem_miss";
    None

(* O(n) scan for the oldest tick; n is small (tens of entries) and
   eviction only runs on insert, never on the hit path *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun k slot acc ->
        match acc with
        | Some (_, best) when best.tick <= slot.tick -> acc
        | _ -> Some (k, slot))
      t.table None
  in
  match victim with
  | None -> false
  | Some (k, slot) ->
    Hashtbl.remove t.table k;
    t.bytes <- t.bytes - slot.entry.me_bytes;
    Obs.count "serve.mem_evict";
    true

let add t key entry =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.table key with
  | Some old ->
    Hashtbl.remove t.table key;
    t.bytes <- t.bytes - old.entry.me_bytes
  | None -> ());
  (* evict down to budget; an entry larger than the whole budget is
     still admitted once the cache is empty, so the most recent result
     stays warm even under a tiny budget *)
  while t.bytes + entry.me_bytes > t.budget && evict_one t do
    ()
  done;
  t.clock <- t.clock + 1;
  Hashtbl.replace t.table key { entry; tick = t.clock };
  t.bytes <- t.bytes + entry.me_bytes

let stats t = locked t @@ fun () -> (Hashtbl.length t.table, t.bytes)

(** A small dependency-free JSON reader/writer for the serve
    protocol.

    The wire format of {!Protocol} is newline-delimited JSON, so this
    module only needs the RFC 8259 value model: objects, arrays,
    strings with escapes, integers and floats, booleans, null.
    Parsing is a single recursive-descent pass over the byte string
    and never raises — a malformed request must become a structured
    [bad_request] response, not an exception unwinding a connection
    thread.  Serialisation escapes control characters, so CIF text
    and error messages embed safely. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order preserved *)

val parse : string -> (t, string) result
(** Parse one complete JSON value (surrounding whitespace allowed).
    Trailing non-whitespace bytes, bad escapes, unterminated
    structures and deep nesting (> 128 levels) are errors, described
    well enough to echo back to a client. *)

val to_string : t -> string
(** Compact single-line serialisation (never contains a newline, as
    the framing requires).  Non-finite floats serialise as [null]. *)

(** Accessors return [None] on shape mismatch rather than raising. *)

val member : string -> t -> t option
(** Field of an [Obj] ([None] on missing field or non-object). *)

val to_string_opt : t -> string option

val to_int_opt : t -> int option
(** Accepts [Int], and any [Float] that is exactly integral. *)

val to_bool_opt : t -> bool option

val to_list_opt : t -> t list option

val mem_string : string -> t -> string option
(** [mem_string k v] is [member k v >>= to_string_opt]. *)

val mem_int : string -> t -> int option

val mem_bool : string -> t -> bool option

open Rsg_layout
module Store = Rsg_store.Store
module Batch = Rsg_store.Batch

(* The CLI's original parser reported errors by exiting; a resident
   daemon cannot, so this version threads a local exception through
   the same structure and catches it into a [result] at the edges. *)
exception Spec_error of string

let fail lineno msg = raise (Spec_error (Printf.sprintf "line %d: %s" lineno msg))

let read_file lineno path =
  match
    In_channel.with_open_bin path (fun ic ->
        really_input_string ic (In_channel.length ic |> Int64.to_int))
  with
  | s -> s
  | exception Sys_error msg -> fail lineno ("cannot read " ^ path ^ ": " ^ msg)

let split_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | [ _ ] -> fail lineno "expected NAME KIND [key=value ...]"
  | name :: kind :: kvs ->
    let assoc =
      List.map
        (fun kv ->
          match String.index_opt kv '=' with
          | Some i ->
            (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
          | None -> fail lineno ("not key=value: " ^ kv))
        kvs
    in
    Some (name, kind, assoc)

let job_of lineno name kind assoc =
  let geti key default =
    match List.assoc_opt key assoc with
    | None -> default
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> fail lineno (key ^ " is not an integer: " ^ v))
  in
  let ints_of key v =
    String.split_on_char ',' v
    |> List.map (fun s ->
           match int_of_string_opt (String.trim s) with
           | Some n -> n
           | None -> fail lineno (key ^ " has a bad integer: " ^ s))
  in
  let design, params, label, gen =
    match kind with
    | "multiplier" ->
      let size = geti "size" 8 in
      if size < 1 || size > 64 then fail lineno "size must be in 1..64";
      ( "builtin:multiplier\n" ^ Rsg_mult.Design_file.text,
        Rsg_mult.Sample_lib.param_file ~xsize:size ~ysize:size,
        Printf.sprintf "multiplier %dx%d" size size,
        fun () ->
          (Rsg_mult.Layout_gen.generate ~xsize:size ~ysize:size ())
            .Rsg_mult.Layout_gen.whole )
    | "pla" ->
      let rows_text =
        match (List.assoc_opt "table" assoc, List.assoc_opt "rows" assoc) with
        | Some path, None -> read_file lineno path
        | None, Some rows ->
          String.split_on_char ',' rows
          |> List.map (fun r ->
                 match String.split_on_char ':' r with
                 | [ i; o ] -> i ^ " " ^ o
                 | _ -> fail lineno ("bad row: " ^ r))
          |> String.concat "\n"
        | _ -> fail lineno "pla needs table=FILE or rows=IN:OUT,..."
      in
      let fold = List.assoc_opt "fold" assoc = Some "true" in
      let rows =
        rows_text |> String.split_on_char '\n'
        |> List.filter_map (fun line ->
               match String.split_on_char ' ' (String.trim line) with
               | [ i; o ] when i <> "" -> Some (i, o)
               | _ -> None)
      in
      if rows = [] then fail lineno "pla has no rows";
      ( "builtin:pla\n" ^ Rsg_pla.Pla_design_file.text,
        Printf.sprintf "fold=%b\n%s" fold rows_text,
        Printf.sprintf "pla %s" name,
        fun () ->
          let tt = Rsg_pla.Truth_table.of_strings rows in
          if fold then (Rsg_pla.Folding.generate tt).Rsg_pla.Folding.cell
          else (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell )
    | "rom" ->
      let words =
        match (List.assoc_opt "data" assoc, List.assoc_opt "words" assoc) with
        | Some path, None ->
          read_file lineno path |> String.split_on_char '\n'
          |> List.filter_map (fun l ->
                 let s = String.trim l in
                 if s = "" then None else Some s)
          |> List.map (fun s ->
                 match int_of_string_opt s with
                 | Some n -> n
                 | None -> fail lineno ("bad word: " ^ s))
        | None, Some ws -> ints_of "words" ws
        | _ -> fail lineno "rom needs data=FILE or words=W,W,..."
      in
      if words = [] then fail lineno "rom has no words";
      let word_bits = geti "word-bits" 8 in
      ( "builtin:rom",
        Printf.sprintf "word_bits=%d\n%s" word_bits
          (String.concat "\n" (List.map string_of_int words)),
        Printf.sprintf "rom %d words x %d bits" (List.length words) word_bits,
        fun () ->
          (Rsg_pla.Rom.generate ~word_bits (Array.of_list words))
            .Rsg_pla.Rom.pla.Rsg_pla.Gen.cell )
    | "decoder" ->
      let n = geti "n" 3 in
      if n < 1 || n > 12 then fail lineno "n must be in 1..12";
      ( "builtin:decoder",
        Printf.sprintf "n=%d" n,
        Printf.sprintf "decoder %d" n,
        fun () -> (Rsg_pla.Gen.generate_decoder n).Rsg_pla.Gen.cell )
    | "ram" ->
      let words = geti "words" 8 and bits = geti "bits" 4 in
      if words < 1 || bits < 1 then fail lineno "words and bits must be >= 1";
      ( "builtin:ram",
        Printf.sprintf "words=%d bits=%d" words bits,
        Printf.sprintf "ram %dx%d" words bits,
        fun () ->
          (Rsg_ram.Ram_gen.generate ~words ~bits ()).Rsg_ram.Ram_gen.cell )
    | other -> fail lineno ("unknown kind: " ^ other)
  in
  {
    Batch.j_name = name;
    j_kind = kind;
    j_key = Store.key ~design ~params ();
    j_label = label;
    j_gen = gen;
  }

let parse_line lineno line =
  (* the inner match is the scrutinee of the outer one, so [Spec_error]
     raised by [job_of] (branch body) is caught too — an exception
     pattern on the direct match would only cover [split_line] *)
  match
    match split_line lineno line with
    | None -> None
    | Some (name, kind, assoc) -> Some (job_of lineno name kind assoc)
  with
  | parsed -> Ok parsed
  | exception Spec_error msg -> Error msg

let parse_manifest text =
  let rec collect lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Error _ as e -> e
      | Ok None -> collect (lineno + 1) acc rest
      | Ok (Some job) -> collect (lineno + 1) (job :: acc) rest)
  in
  match collect 1 [] (String.split_on_char '\n' text) with
  | Error _ as e -> e
  | Ok [] -> Error "manifest has no jobs"
  | Ok jobs -> (
    let seen = Hashtbl.create 16 in
    let dup =
      List.find_opt
        (fun j ->
          if Hashtbl.mem seen j.Batch.j_name then true
          else (Hashtbl.add seen j.Batch.j_name (); false))
        jobs
    in
    match dup with
    | Some j -> Error ("duplicate job name: " ^ j.Batch.j_name)
    | None -> Ok jobs)

(* ---- drc/extract targets ------------------------------------------- *)

let top_cell_of_cif path =
  let r = Cif.read_file path in
  match r.Cif.top with
  | Some top -> (
    match Cell.instances top with [ i ] -> i.Cell.def | _ -> top)
  | None -> (
    let called = Hashtbl.create 16 in
    List.iter
      (fun c ->
        List.iter
          (fun (i : Cell.instance) ->
            Hashtbl.replace called i.Cell.def.Cell.cname ())
          (Cell.instances c))
      (Db.cells r.Cif.db);
    match
      List.filter
        (fun c -> not (Hashtbl.mem called c.Cell.cname))
        (Db.cells r.Cif.db)
    with
    | [ c ] -> c
    | _ -> raise (Spec_error "cannot determine the top cell"))

let target_cell spec =
  match
    match spec with
    | "pla" ->
      let tt =
        Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ]
      in
      (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell
    | "ram" ->
      (Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 ()).Rsg_ram.Ram_gen.cell
    | "multiplier" ->
      (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ())
        .Rsg_mult.Layout_gen.whole
    | "decoder" -> (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell
    | path when Sys.file_exists path -> top_cell_of_cif path
    | other ->
      raise
        (Spec_error
           (other ^ " is neither a file nor a builtin (pla, ram, multiplier, decoder)"))
  with
  | cell -> Ok cell
  | exception Spec_error msg -> Error msg
  | exception Sys_error msg -> Error msg
  | exception Failure msg -> Error msg

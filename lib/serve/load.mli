(** Traffic-replay load generator for the serve daemon.

    [run] opens [concurrency] connections (one thread each) and has
    every thread replay the request list [repeat] times, synchronously
    — send, await, time — starting from a thread-specific offset so
    concurrent threads hit a mix of keys rather than marching in
    lockstep.  Per-request latencies are collected and merged; the
    result carries the sorted latency array so callers can report any
    percentile, plus a per-error-code breakdown (a [queue_full]
    rejection is an answered request with bounded latency — exactly
    what the admission design promises under saturation — so it counts
    as an error {e outcome}, not a transport failure). *)

type result = {
  l_sent : int;
  l_ok : int;
  l_errors : (string * int) list;  (** error code -> count, sorted *)
  l_latencies : float array;  (** seconds, sorted ascending, one per response *)
  l_seconds : float;  (** wall clock for the whole replay *)
}

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [0..100]: nearest-rank on a
    sorted array; [0.] when empty. *)

val run :
  socket:string ->
  concurrency:int ->
  repeat:int ->
  Json.t list ->
  (result, string) Stdlib.result
(** Replay; [Error] only on connect failure.  Requests are rewritten
    with fresh unique [id]s, so callers may pass the same template
    list to every run. *)

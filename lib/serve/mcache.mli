(** Hot in-memory cache of decoded store entries, for the serve
    daemon's warm path.

    {!Rsg_store.Store.find} verifies and decodes an entry from disk on
    every hit — exactly right for a one-shot CLI, wasteful for a
    resident daemon answering the same key hundreds of times.  This
    layer keeps recently served entries {e decoded} in memory under a
    byte budget (approximated by the on-disk entry size, which the
    codec makes a faithful proxy for the decoded footprint), evicting
    least-recently-used entries when inserting would exceed it.

    Thread-safety: every operation takes the cache's own mutex, so
    connection threads and worker completions may call it freely.
    Counters [serve.mem_hit], [serve.mem_miss] and [serve.mem_evict]
    are kept in {!Rsg_obs.Obs}. *)

type t

type entry = {
  me_cell : Rsg_layout.Cell.t;
  me_flat : Rsg_layout.Flatten.flat;
  me_cif : string;  (** serialised once at insert; reused by every hit *)
  me_bytes : int;  (** budget charge (on-disk entry size) *)
}

val create : budget_bytes:int -> t
(** A cache that holds at most [budget_bytes] worth of entries (one
    oversized entry is still admitted alone, so a tiny budget degrades
    to caching the most recent entry rather than nothing). *)

val find : t -> string -> entry option
(** Lookup by store-key hex; a hit refreshes recency. *)

val add : t -> string -> entry -> unit
(** Insert (or refresh) an entry, evicting LRU entries as needed. *)

val stats : t -> int * int
(** [(entries, bytes)] currently resident. *)

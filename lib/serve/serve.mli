(** The resident generation service.

    [run] binds a Unix-domain socket and serves the {!Protocol} over
    it until asked to stop (SIGTERM/SIGINT when [handle_signals], or a
    [shutdown] request).  The layering:

    - One {e accept loop} (the calling thread) multiplexes the
      listener and an internal stop pipe through [select].
    - One {e connection thread} per client parses newline-delimited
      requests and answers control ops ([stats], [health], [shutdown])
      inline; protocol violations become structured error responses,
      never daemon or connection death.
    - Job ops go through {e admission} onto a bounded
      {!Rsg_par.Par.Pool} of worker domains: a full queue answers
      [queue_full] immediately (graceful saturation — latency is
      bounded by rejecting, not by queueing without limit), an expired
      deadline answers [deadline_expired] without running, and a
      draining daemon answers [draining].
    - [generate] requests are {e coalesced}: requests whose specs map
      to the same content-addressed store key while one is in flight
      attach to that computation instead of enqueueing their own; each
      attached request still gets its own response (its own [cif] /
      [out] / [drc] rendering of the shared result).
    - Results are served memory-first: a {!Mcache} under
      [mem_budget] bytes holds decoded recent entries, below it the
      {!Rsg_store.Store} on disk, below that cold generation (which
      populates both).

    Shutdown is a drain: stop accepting, answer queued-and-running
    jobs, wake idle connections, join everything, remove the socket
    file.  In-flight jobs always complete; only {e new} work is
    refused.

    Responses are written under a per-connection mutex, so concurrent
    job completions interleave whole lines, never bytes.  Obs counters
    ([serve.request], [serve.coalesced], [serve.queue_full],
    [serve.deadline_expired], [serve.mem_hit], ...) are maintained;
    recording is enabled by [run] so they are visible via the [stats]
    op. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains executing jobs *)
  queue_depth : int;
      (** max jobs queued beyond the running ones before admission
          answers [queue_full]; [<= 0] means unbounded *)
  mem_budget : int;  (** in-memory cache budget, bytes *)
  store_dir : string option;  (** on-disk layout store; [None] = no store *)
  job_domains : int;
      (** domain fan-out {e inside} one job (DRC, extraction, batch);
          keep at 1 — cross-job parallelism comes from [workers] *)
  max_request : int;  (** byte cap on one request line *)
  handle_signals : bool;
      (** install SIGTERM/SIGINT drain handlers (the CLI does; an
          in-process test server must not) *)
}

val default_config : socket_path:string -> config
(** 2 workers, queue depth 16, 64 MiB memory budget, no store, 1
    domain per job, 1 MiB request cap, no signal handlers. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Serve until stopped; returns after the drain completes.
    [on_ready] fires once the socket is listening — the hook an
    in-process harness uses to know it may connect.  Raises
    [Unix.Unix_error] if the socket cannot be bound. *)

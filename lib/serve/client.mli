(** Client side of the serve protocol: connect, frame, correlate.

    A connection is synchronous per call but supports pipelining
    explicitly: {!pipeline} writes every request before reading any
    response, which is what lets one client exercise coalescing and
    admission behaviour deterministically (the daemon sees the whole
    burst before the first job finishes).  Responses are returned in
    arrival order — the daemon answers in {e completion} order, so
    callers correlate by the [id] field, not by position. *)

type t

val connect : ?attempts:int -> string -> (t, string) result
(** Connect to a daemon socket.  [attempts] (default 1) > 1 retries
    with a short backoff — for harnesses that start the daemon and
    connect without a ready-handshake. *)

val close : t -> unit

val send : t -> Json.t -> (unit, string) result
(** Write one request line. *)

val send_line : t -> string -> (unit, string) result
(** Write one raw line verbatim (a newline is appended).  For harness
    use: lets scripts exercise the daemon's handling of malformed
    frames through the normal client. *)

val recv : t -> (Json.t, string) result
(** Read one response line (blocking).  [Error] on EOF or a response
    the daemon somehow framed unparseably. *)

val request : t -> Json.t -> (Json.t, string) result
(** [send] then [recv]: the simple synchronous call. *)

val pipeline : t -> Json.t list -> (Json.t list, string) result
(** Write all requests, then read exactly as many responses, in
    arrival order. *)

val response_ok : Json.t -> bool
(** Whether a response has ["ok"] [true]. *)

open Rsg_layout
module Obs = Rsg_obs.Obs
module Par = Rsg_par.Par
module Store = Rsg_store.Store
module Codec = Rsg_store.Codec
module Batch = Rsg_store.Batch
module Drc = Rsg_drc.Drc

type config = {
  socket_path : string;
  workers : int;
  queue_depth : int;
  mem_budget : int;
  store_dir : string option;
  job_domains : int;
  max_request : int;
  handle_signals : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    queue_depth = 16;
    mem_budget = 64 * 1024 * 1024;
    store_dir = None;
    job_domains = 1;
    max_request = 1 lsl 20;
    handle_signals = false;
  }

(* ---- connections ---------------------------------------------------- *)

(* The write side of a connection is shared between its reader thread
   (inline responses) and worker domains (job responses), so writes go
   through [c_wmutex] — whole response lines never interleave.  The fd
   is closed by whichever side finishes last: the reader marks
   [c_done] at EOF, responders decrement [c_outstanding], and the
   close happens when both say so — never while a worker might still
   write. *)
type conn = {
  c_fd : Unix.file_descr;
  c_wmutex : Mutex.t;
  mutable c_alive : bool;  (* write side still usable *)
  mutable c_outstanding : int;  (* dispatched jobs not yet answered *)
  mutable c_done : bool;  (* reader finished *)
  mutable c_closed : bool;
}

let mk_conn fd =
  {
    c_fd = fd;
    c_wmutex = Mutex.create ();
    c_alive = true;
    c_outstanding = 0;
    c_done = false;
    c_closed = false;
  }

let locked m f =
  Mutex.lock m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock m)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let close_if_finished_locked conn =
  if conn.c_done && conn.c_outstanding = 0 && not conn.c_closed then begin
    conn.c_closed <- true;
    conn.c_alive <- false;
    try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end

let send conn line =
  locked conn.c_wmutex @@ fun () ->
  if conn.c_alive && not conn.c_closed then
    try write_all conn.c_fd (line ^ "\n")
    with Unix.Unix_error _ ->
      (* client went away (EPIPE with SIGPIPE ignored, or reset):
         drop this and all further responses, keep the daemon up *)
      conn.c_alive <- false

(* bracket a dispatched job's response slot *)
let response_begun conn =
  locked conn.c_wmutex @@ fun () -> conn.c_outstanding <- conn.c_outstanding + 1

let response_finished conn =
  locked conn.c_wmutex @@ fun () ->
  conn.c_outstanding <- conn.c_outstanding - 1;
  close_if_finished_locked conn

let reader_finished conn =
  locked conn.c_wmutex @@ fun () ->
  conn.c_done <- true;
  close_if_finished_locked conn

(* ---- server state --------------------------------------------------- *)

type waiter = {
  w_conn : conn;
  w_id : Json.t;
  w_arrival : float;
  w_deadline_ms : int option;
  w_drc : bool;
  w_cif : bool;
  w_out : string option;
}

(* one in-flight generate computation; later identical keys attach *)
type inflight = { mutable i_waiters : waiter list }

type t = {
  cfg : config;
  pool : Par.Pool.t;
  mem : Mcache.t;
  store : Store.t option;
  mu : Mutex.t;  (* guards coalesce, conns, threads *)
  coalesce : (string, inflight) Hashtbl.t;
  mutable conns : conn list;
  mutable threads : Thread.t list;
  mutable draining : bool;
  inflight_jobs : int Atomic.t;
  requests : int Atomic.t;
  stop : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  started : float;
}

let request_stop srv =
  if not (Atomic.exchange srv.stop true) then
    try ignore (Unix.write_substring srv.stop_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let expired w now =
  match w.w_deadline_ms with
  | None -> false
  | Some ms -> (now -. w.w_arrival) *. 1000. >= float_of_int ms

let send_error w err =
  Obs.count ("serve." ^ Protocol.error_code err);
  send w.w_conn (Protocol.error_response ~id:w.w_id err)

let send_ok w result = send w.w_conn (Protocol.ok_response ~id:w.w_id result)

(* ---- job bodies (run on worker domains) ----------------------------- *)

let entry_of_cell ?disk_bytes cell flat =
  let cif = Cif.to_string cell in
  {
    Mcache.me_cell = cell;
    me_flat = flat;
    me_cif = cif;
    me_bytes = Option.value disk_bytes ~default:(String.length cif);
  }

(* memory -> store -> cold generation, populating upward *)
let generate_entry srv (job : Batch.job) =
  let key_hex = Store.key_hex job.Batch.j_key in
  match Mcache.find srv.mem key_hex with
  | Some e -> (e, "memory")
  | None ->
    let cold () =
      let cell = job.Batch.j_gen () in
      let protos = Flatten.prototypes cell in
      let flat = Flatten.protos_flat protos in
      (match srv.store with
      | Some s ->
        Store.save s job.Batch.j_key
          ~stem:(job.Batch.j_kind ^ ":" ^ job.Batch.j_name)
          ~label:job.Batch.j_label ~flat
          ~protos:(Codec.proto_table protos) cell
      | None -> ());
      (entry_of_cell cell flat, "generated")
    in
    let entry, source =
      match Option.map (fun s -> (s, Store.find s job.Batch.j_key)) srv.store with
      | Some (s, Store.Hit e) ->
        let cell = e.Codec.e_cell in
        let flat =
          match Lazy.force e.Codec.e_flat with
          | Some f -> f
          | None -> Flatten.protos_flat (Flatten.prototypes cell)
        in
        let disk_bytes =
          try (Unix.stat (Store.path_of s job.Batch.j_key)).Unix.st_size
          with Unix.Unix_error _ -> String.length e.Codec.e_label
        in
        (entry_of_cell ~disk_bytes cell flat, "store")
      | Some (_, (Store.Miss | Store.Corrupt _)) | None -> cold ()
    in
    Mcache.add srv.mem key_hex entry;
    (entry, source)

let drc_json r =
  Json.Obj
    [
      ("clean", Json.Bool (Drc.clean r));
      ("violations", Json.Int (List.length r.Drc.r_violations));
      ("boxes", Json.Int r.Drc.r_boxes);
      ("deck", Json.String r.Drc.r_deck);
    ]

(* render one waiter's view of a shared generate result *)
let render_generate srv (job : Batch.job) (entry : Mcache.entry) source w =
  let base =
    [
      ("name", Json.String job.Batch.j_name);
      ("label", Json.String job.Batch.j_label);
      ("key", Json.String (Store.key_hex job.Batch.j_key));
      ("source", Json.String source);
      ("boxes", Json.Int (Array.length entry.Mcache.me_flat.Flatten.flat_boxes));
      ("cif_sha", Json.String (Digest.to_hex (Digest.string entry.Mcache.me_cif)));
    ]
  in
  let with_drc =
    if w.w_drc then
      [ ("drc",
         drc_json
           (Drc.check_flat ~domains:srv.cfg.job_domains entry.Mcache.me_flat)) ]
    else []
  in
  let with_cif =
    if w.w_cif then [ ("cif", Json.String entry.Mcache.me_cif) ] else []
  in
  match w.w_out with
  | None -> Ok (Json.Obj (base @ with_drc @ with_cif))
  | Some path -> (
    match
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc entry.Mcache.me_cif)
    with
    | () ->
      Ok (Json.Obj (base @ with_drc @ with_cif @ [ ("out", Json.String path) ]))
    | exception Sys_error msg -> Error (Protocol.Job_failed msg))

let respond w = function
  | Ok result -> send_ok w result
  | Error err -> send_error w err

(* the generate leader: start-time deadline sweep, shared computation,
   then a per-waiter rendering of the one result *)
let run_generate srv key_hex (job : Batch.job) =
  let now = Unix.gettimeofday () in
  (* responses are blocking writes, so they happen outside srv.mu *)
  let live, dead =
    locked srv.mu @@ fun () ->
    match Hashtbl.find_opt srv.coalesce key_hex with
    | None -> ([], [])
    | Some inf ->
      let live, dead = List.partition (fun w -> not (expired w now)) inf.i_waiters in
      if live = [] then begin
        (* everyone missed the deadline: drop the slot now so a late
           identical request becomes a fresh leader, not an orphan *)
        Hashtbl.remove srv.coalesce key_hex;
        Atomic.decr srv.inflight_jobs
      end
      else inf.i_waiters <- live;
      (live, dead)
  in
  List.iter
    (fun w ->
      send_error w Protocol.Deadline_expired;
      response_finished w.w_conn)
    dead;
  if live <> [] then begin
    let outcome =
      try Ok (generate_entry srv job)
      with e -> Error (Protocol.Job_failed (Printexc.to_string e))
    in
    let waiters =
      locked srv.mu @@ fun () ->
      let ws =
        match Hashtbl.find_opt srv.coalesce key_hex with
        | Some inf -> inf.i_waiters
        | None -> []
      in
      Hashtbl.remove srv.coalesce key_hex;
      Atomic.decr srv.inflight_jobs;
      ws
    in
    Obs.count "serve.job";
    List.iter
      (fun w ->
        (match outcome with
        | Ok (entry, source) -> respond w (render_generate srv job entry source w)
        | Error err -> send_error w err);
        response_finished w.w_conn)
      waiters
  end

let dispatch_generate srv w spec =
  match Jobspec.parse_line 1 spec with
  | Error msg ->
    send_error w (Protocol.Bad_request msg);
    response_finished w.w_conn
  | Ok None ->
    send_error w (Protocol.Bad_request "empty generate spec");
    response_finished w.w_conn
  | Ok (Some job) ->
    let key_hex = Store.key_hex job.Batch.j_key in
    let verdict =
      locked srv.mu @@ fun () ->
      match Hashtbl.find_opt srv.coalesce key_hex with
      | Some inf ->
        inf.i_waiters <- w :: inf.i_waiters;
        Obs.count "serve.coalesced";
        `Attached
      | None ->
        let inf = { i_waiters = [ w ] } in
        Hashtbl.add srv.coalesce key_hex inf;
        Atomic.incr srv.inflight_jobs;
        if Par.Pool.try_submit srv.pool (fun () -> run_generate srv key_hex job)
        then `Submitted
        else begin
          (* answer everyone who attached between add and reject *)
          let ws = inf.i_waiters in
          Hashtbl.remove srv.coalesce key_hex;
          Atomic.decr srv.inflight_jobs;
          `Rejected ws
        end
    in
    (match verdict with
    | `Attached | `Submitted -> ()
    | `Rejected ws ->
      List.iter
        (fun w ->
          send_error w Protocol.Queue_full;
          response_finished w.w_conn)
        ws)

(* uncoalesced jobs: one waiter, one closure computing its response *)
let dispatch_direct srv w work =
  Atomic.incr srv.inflight_jobs;
  let task () =
    (if expired w (Unix.gettimeofday ()) then
       send_error w Protocol.Deadline_expired
     else begin
       let r =
         try work ()
         with e -> Error (Protocol.Job_failed (Printexc.to_string e))
       in
       Obs.count "serve.job";
       respond w r
     end);
    Atomic.decr srv.inflight_jobs;
    response_finished w.w_conn
  in
  if not (Par.Pool.try_submit srv.pool task) then begin
    Atomic.decr srv.inflight_jobs;
    send_error w Protocol.Queue_full;
    response_finished w.w_conn
  end

let flat_of_cell cell = Flatten.protos_flat (Flatten.prototypes cell)

let drc_work srv spec () =
  match Jobspec.target_cell spec with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok cell ->
    Ok (drc_json (Drc.check_flat ~domains:srv.cfg.job_domains (flat_of_cell cell)))

(* static electrical check of a builtin or CIF target: hierarchical
   verdicts, summarised like drc_work (clean + censuses + the
   per-code diagnostic counts, not the full diagnostic list) *)
let erc_work srv spec () =
  match Jobspec.target_cell spec with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok cell ->
    let module Erc = Rsg_erc.Erc in
    let r = Erc.check_cell ~domains:srv.cfg.job_domains cell in
    let d = Erc.to_diags r in
    Ok
      (Json.Obj
         [
           ("clean", Json.Bool (Erc.clean r));
           ("nets", Json.Int r.Erc.r_nets);
           ("devices", Json.Int r.Erc.r_devices);
           ("rails", Json.Int r.Erc.r_rails);
           ("levels", Json.Int (List.length r.Erc.r_levels));
           ("cached", Json.Int r.Erc.r_cached);
           ("diagnostics", Json.Int (List.length d.Rsg_lint.Diag.r_diags));
         ])

(* hierarchical compaction of a builtin or batch-spec target; the
   witness of an infeasible system is the job error, not a crash *)
let compact_work srv spec () =
  match Jobspec.target_cell spec with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok cell -> (
    match
      Rsg_compact.Hcompact.hier ~domains:srv.cfg.job_domains
        Rsg_compact.Rules.default cell
    with
    | r ->
      let s = r.Rsg_compact.Hcompact.hr_stats in
      Ok
        (Json.Obj
           [
             ("protos", Json.Int s.Rsg_compact.Hcompact.hs_protos);
             ("reused", Json.Int s.Rsg_compact.Hcompact.hs_reused);
             ( "internal_constraints",
               Json.Int s.Rsg_compact.Hcompact.hs_internal_constraints );
             ( "stitch_constraints",
               Json.Int s.Rsg_compact.Hcompact.hs_stitch_constraints );
             ("elements", Json.Int s.Rsg_compact.Hcompact.hs_elements);
             ("rounds", Json.Int s.Rsg_compact.Hcompact.hs_rounds);
             ("area_before", Json.Int s.Rsg_compact.Hcompact.hs_area_before);
             ("area_after", Json.Int s.Rsg_compact.Hcompact.hs_area_after);
           ])
    | exception Rsg_compact.Bellman.Infeasible cycle ->
      Error
        (Protocol.Job_failed
           (Format.asprintf "compaction infeasible: %a"
              Rsg_compact.Bellman.pp_witness cycle)))

let place_work srv spec ~blocks ~seed ~iters ~chains () =
  match Jobspec.target_cell spec with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok cell -> (
    let module Anneal = Rsg_search.Anneal in
    let module Place_opt = Rsg_search.Place_opt in
    match
      Anneal.run ~domains:srv.cfg.job_domains ~chains ~iters ~seed
        Place_opt.problem
        (Place_opt.make (List.init blocks (fun _ -> cell)))
    with
    | r ->
      Ok
        (Json.Obj
           [
             ("blocks", Json.Int blocks);
             ("initial_area", Json.Int r.Anneal.r_initial_cost);
             ("best_area", Json.Int r.Anneal.r_cost);
             ("best", Json.String (Digest.to_hex r.Anneal.r_digest));
             ("chains", Json.Int r.Anneal.r_stats.Anneal.st_chains);
             ("iters", Json.Int r.Anneal.r_stats.Anneal.st_iters);
             ("computed", Json.Int r.Anneal.r_stats.Anneal.st_computed);
             ("cached", Json.Int r.Anneal.r_stats.Anneal.st_cached);
           ])
    | exception Invalid_argument msg -> Error (Protocol.Bad_request msg))

let extract_work srv spec () =
  match Jobspec.target_cell spec with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok cell ->
    let flat = flat_of_cell cell in
    let items = Rsg_compact.Scanline.items_of_flat flat in
    let labels = Array.to_list flat.Flatten.flat_labels in
    let n =
      Rsg_extract.Extract.of_items ~domains:srv.cfg.job_domains items labels
    in
    Ok
      (Json.Obj
         [
           ("nets", Json.Int n.Rsg_extract.Extract.n_nets);
           ("devices", Json.Int (Rsg_extract.Extract.n_devices n));
         ])

(* builtin lint configs, mirroring the CLI's *)
let mult_lint_config () =
  let sample, _ = Rsg_mult.Sample_lib.build () in
  let params =
    Rsg_lang.Param.parse (Rsg_mult.Sample_lib.param_file ~xsize:8 ~ysize:8)
  in
  Rsg_lint.Design_lint.config_of_params
    ~cells:(Db.names sample.Rsg_core.Sample.db)
    params

let pla_lint_config () =
  let sample, _ = Rsg_pla.Pla_cells.build () in
  let params =
    Rsg_lang.Param.parse
      (Rsg_pla.Pla_design_file.param_file ~ninputs:3 ~noutputs:2 ~nterms:4
         ~name:"pla")
  in
  let cfg =
    Rsg_lint.Design_lint.config_of_params
      ~cells:(Db.names sample.Rsg_core.Sample.db)
      params
  in
  { cfg with
    Rsg_lint.Design_lint.globals =
      "lits" :: "outs" :: cfg.Rsg_lint.Design_lint.globals
  }

let lint_work spec () =
  let report =
    match spec with
    | "mult" ->
      Some
        (Rsg_lint.Design_lint.check_string ~file:"mult.def(builtin)"
           (mult_lint_config ()) Rsg_mult.Design_file.text)
    | "pla" ->
      Some
        (Rsg_lint.Design_lint.check_string ~file:"pla.def(builtin)"
           (pla_lint_config ()) Rsg_pla.Pla_design_file.text)
    | path when Sys.file_exists path ->
      let text =
        In_channel.with_open_bin path (fun ic ->
            really_input_string ic (In_channel.length ic |> Int64.to_int))
      in
      Some
        (Rsg_lint.Design_lint.check_string ~file:path
           Rsg_lint.Design_lint.default_config text)
    | _ -> None
  in
  match report with
  | None ->
    Error
      (Protocol.Bad_request
         (spec ^ " is neither a file nor a builtin (mult, pla)"))
  | Some r ->
    Ok
      (Json.Obj
         [
           ("clean", Json.Bool (Rsg_lint.Diag.clean r));
           ("errors", Json.Int (List.length (Rsg_lint.Diag.errors r)));
           ("warnings", Json.Int (List.length (Rsg_lint.Diag.warnings r)));
           ("checked", Json.Int r.Rsg_lint.Diag.r_checked);
         ])

let batch_work srv spec () =
  match Jobspec.parse_manifest spec with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok jobs ->
    let results =
      Batch.run ~domains:srv.cfg.job_domains ?store:srv.store jobs
    in
    let outcome_name = function
      | Batch.Hit -> "hit"
      | Batch.Generated -> "generated"
      | Batch.Regenerated _ -> "regenerated"
      | Batch.Failed _ -> "failed"
    in
    Ok
      (Json.Obj
         [
           ( "jobs",
             Json.List
               (List.map
                  (fun (r : Batch.result) ->
                    Json.Obj
                      [
                        ("name", Json.String r.Batch.r_job.Batch.j_name);
                        ("outcome", Json.String (outcome_name r.Batch.r_outcome));
                        ("boxes", Json.Int r.Batch.r_boxes);
                      ])
                  results) );
         ])

let sleep_work ms () =
  Unix.sleepf (float_of_int ms /. 1000.);
  Ok (Json.Obj [ ("slept_ms", Json.Int ms) ])

(* ---- inline control ops --------------------------------------------- *)

let stats_json srv =
  let mem_entries, mem_bytes = Mcache.stats srv.mem in
  Json.Obj
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. srv.started));
      ("pid", Json.Int (Unix.getpid ()));
      ("requests", Json.Int (Atomic.get srv.requests));
      ("inflight", Json.Int (Atomic.get srv.inflight_jobs));
      ("pending", Json.Int (Par.Pool.pending srv.pool));
      ("workers", Json.Int (Par.Pool.size srv.pool));
      ("queue_depth", Json.Int srv.cfg.queue_depth);
      ("draining", Json.Bool srv.draining);
      ( "mem",
        Json.Obj
          [
            ("entries", Json.Int mem_entries);
            ("bytes", Json.Int mem_bytes);
            ("budget", Json.Int srv.cfg.mem_budget);
          ] );
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Obs.counters ())) );
    ]

let health_json srv =
  Json.Obj
    [
      ("status", Json.String (if srv.draining then "draining" else "ok"));
      ("pid", Json.Int (Unix.getpid ()));
    ]

(* ---- request dispatch ----------------------------------------------- *)

let dispatch srv conn (req : Protocol.request) =
  let id = req.Protocol.rq_id in
  match req.Protocol.rq_op with
  | Protocol.Stats -> send conn (Protocol.ok_response ~id (stats_json srv))
  | Protocol.Health -> send conn (Protocol.ok_response ~id (health_json srv))
  | Protocol.Shutdown ->
    send conn
      (Protocol.ok_response ~id (Json.Obj [ ("stopping", Json.Bool true) ]));
    request_stop srv
  | op ->
    let w =
      {
        w_conn = conn;
        w_id = id;
        w_arrival = Unix.gettimeofday ();
        w_deadline_ms = req.Protocol.rq_deadline_ms;
        w_drc = false;
        w_cif = false;
        w_out = None;
      }
    in
    if srv.draining then send_error w Protocol.Draining
    else if expired w w.w_arrival then
      (* a non-positive deadline is expired on arrival: deterministic,
         so tests can exercise the deadline path without racing *)
      send_error w Protocol.Deadline_expired
    else begin
      response_begun conn;
      (* an exception here would leak the response slot and hang the
         client waiting on this id — answer [job_failed] instead *)
      try
        match op with
        | Protocol.Generate { spec; drc; cif; out } ->
          dispatch_generate srv
            { w with w_drc = drc; w_cif = cif; w_out = out }
            spec
        | Protocol.Drc { spec } -> dispatch_direct srv w (drc_work srv spec)
        | Protocol.Erc { spec } -> dispatch_direct srv w (erc_work srv spec)
        | Protocol.Compact { spec } ->
          dispatch_direct srv w (compact_work srv spec)
        | Protocol.Place { spec; blocks; seed; iters; chains } ->
          dispatch_direct srv w
            (place_work srv spec ~blocks ~seed ~iters ~chains)
        | Protocol.Extract { spec } ->
          dispatch_direct srv w (extract_work srv spec)
        | Protocol.Lint { spec } -> dispatch_direct srv w (lint_work spec)
        | Protocol.Batch { spec } -> dispatch_direct srv w (batch_work srv spec)
        | Protocol.Sleep { ms } -> dispatch_direct srv w (sleep_work ms)
        | Protocol.Stats | Protocol.Health | Protocol.Shutdown -> assert false
      with e ->
        send_error w (Protocol.Job_failed (Printexc.to_string e));
        response_finished conn
    end

let handle_line srv conn line =
  Atomic.incr srv.requests;
  Obs.count "serve.request";
  match Protocol.parse_request line with
  | Error (id, err) ->
    Obs.count ("serve." ^ Protocol.error_code err);
    send conn (Protocol.error_response ~id err)
  | Ok req -> dispatch srv conn req

(* ---- connection reader ---------------------------------------------- *)

(* Newline framing over a byte cap.  An over-cap line without a
   newline gets a [too_large] response and closes the connection: the
   stream may be arbitrarily far from the next frame boundary, so
   resynchronising silently would misparse whatever follows. *)
let conn_loop srv conn () =
  let cap = srv.cfg.max_request in
  let chunk = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let overflow = ref false in
  let refuse_too_large () =
    Obs.count "serve.too_large";
    send conn
      (Protocol.error_response ~id:Json.Null (Protocol.Too_large { limit = cap }));
    overflow := true
  in
  let rec drain_lines () =
    let s = Buffer.contents acc in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear acc;
      Buffer.add_substring acc s (i + 1) (String.length s - i - 1);
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      (* the cap bounds what we are willing to parse at all, so an
         over-cap line is refused even when it framed — otherwise the
         verdict would depend on how the bytes happened to arrive *)
      if String.length line > cap then refuse_too_large ()
      else begin
        if String.trim line <> "" then handle_line srv conn line;
        drain_lines ()
      end
    | None -> if String.length s > cap then refuse_too_large ()
  in
  let rec read_loop () =
    if not !overflow then
      match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        (* EOF; a final unterminated line still gets served (clients
           that shut down their write side after the last request) *)
        if Buffer.length acc > 0 then begin
          let line = String.trim (Buffer.contents acc) in
          Buffer.clear acc;
          if line <> "" then handle_line srv conn line
        end
      | n ->
        Buffer.add_subbytes acc chunk 0 n;
        drain_lines ();
        read_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_loop ()
      | exception Unix.Unix_error _ -> ()
  in
  (try read_loop () with _ -> ());
  reader_finished conn;
  locked srv.mu (fun () ->
      srv.conns <- List.filter (fun c -> c != conn) srv.conns)

(* ---- accept loop and lifecycle -------------------------------------- *)

let accept_loop srv listener =
  let rec loop () =
    if not (Atomic.get srv.stop) then begin
      match Unix.select [ listener; srv.stop_r ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
        if List.mem srv.stop_r ready then ()
        else begin
          (match Unix.accept listener with
          | fd, _ ->
            let conn = mk_conn fd in
            let th = Thread.create (conn_loop srv conn) () in
            locked srv.mu (fun () ->
                srv.conns <- conn :: srv.conns;
                srv.threads <- th :: srv.threads)
          | exception Unix.Unix_error _ -> ());
          loop ()
        end
    end
  in
  loop ()

let run ?(on_ready = fun () -> ()) cfg =
  Obs.enable ();
  (* a client closing mid-response must surface as EPIPE on write, not
     kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop_r, stop_w = Unix.pipe () in
  let srv =
    {
      cfg;
      pool =
        Par.Pool.create
          ~max_pending:(max 0 cfg.queue_depth)
          ~domains:(max 1 cfg.workers) ();
      mem = Mcache.create ~budget_bytes:cfg.mem_budget;
      store = Option.map Store.open_ cfg.store_dir;
      mu = Mutex.create ();
      coalesce = Hashtbl.create 16;
      conns = [];
      threads = [];
      draining = false;
      inflight_jobs = Atomic.make 0;
      requests = Atomic.make 0;
      stop = Atomic.make false;
      stop_r;
      stop_w;
      started = Unix.gettimeofday ();
    }
  in
  if cfg.handle_signals then begin
    let h = Sys.Signal_handle (fun _ -> request_stop srv) in
    (try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ());
    try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ()
  end;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      (try Unix.close stop_r with Unix.Unix_error _ -> ());
      try Unix.close stop_w with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen listener 64;
      on_ready ();
      accept_loop srv listener;
      (* ---- drain: new work refused, admitted work completes ---- *)
      locked srv.mu (fun () -> srv.draining <- true);
      (* wake readers idle in [read]; they see EOF and finish once
         their outstanding responses are written *)
      let conns = locked srv.mu (fun () -> srv.conns) in
      List.iter
        (fun c ->
          locked c.c_wmutex (fun () ->
              if not c.c_closed then
                try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
                with Unix.Unix_error _ -> ()))
        conns;
      (* workers finish every queued task before exiting *)
      Par.Pool.shutdown srv.pool;
      let threads = locked srv.mu (fun () -> srv.threads) in
      List.iter Thread.join threads)

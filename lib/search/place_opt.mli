(** Macro arrangement on the interface grid as an {!Anneal} problem.

    The chip-level floorplans in lib/mult place macros with a fixed
    abutment heuristic; this problem searches arrangements instead.
    Each block gets a slot on a G x G grid (G = block count; pitch =
    largest block dimension + the deck's interaction horizon, so
    arrangements never overlap) and a D4 rotation.  Moves shift a
    block to a free slot, swap two blocks, or rotate one in place.
    Cost is compacted area under {!Rsg_compact.Hcompact.hier} — the
    stitcher closes slot slack down to the deck gap, so the score
    reflects the arrangement topology, not the pitch. *)

type state

type move =
  | Shift of int * int * int  (** block, old slot, new slot *)
  | Swap of int * int
  | Rotate of int * int * int (** block, old index, new index *)

val make : ?rules:Rsg_compact.Rules.t -> Rsg_layout.Cell.t list -> state
(** Start state: all blocks in one row along x with no rotation — the
    fixed floorplan heuristic, i.e. the greedy baseline.  Raises
    [Invalid_argument] on an empty block list. *)

val problem : (state, move) Anneal.problem

val cell : state -> Rsg_layout.Cell.t
(** The arrangement realised as a fresh chip cell (uncompacted);
    depends only on the state, not on evaluation history. *)

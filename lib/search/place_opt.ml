(* Macro arrangement on the interface grid as an annealing problem.
   The state assigns each block a slot on a G x G grid (pitch = the
   largest block dimension plus the deck's interaction horizon) and a
   D4 rotation; moves shift a block to a free slot, swap two blocks,
   or rotate one in place.  Cost is the compacted area of the
   arrangement under Compact.hier — the stitcher closes the slot
   slack down to the deck gap, so the score reflects the arrangement
   topology, not the grid pitch. *)

open Rsg_geom
open Rsg_layout
module H = Rsg_compact.Hcompact
module Rules = Rsg_compact.Rules

type state = {
  blocks : Cell.t array;
  block_digests : string array;
  rules : Rules.t;
  grid : int;  (* slots per side *)
  pitch : int;
  slot : int array;      (* block -> slot index, all distinct *)
  orient_ix : int array; (* block -> index into Orient.rotations *)
  artifacts : (string, H.pabs) Hashtbl.t;
}

type move =
  | Shift of int * int * int  (* block, old slot, new slot *)
  | Swap of int * int         (* two distinct blocks *)
  | Rotate of int * int * int (* block, old ix, new ix *)

let block_bbox c =
  match Cell.bbox c with
  | Some b -> b
  | None -> Box.make ~xmin:0 ~ymin:0 ~xmax:0 ~ymax:0

let block_digest c =
  let protos = Flatten.prototypes c in
  match List.assq_opt c (Flatten.subtree_hashes protos) with
  | Some h -> h
  | None -> Digest.string (Cell.(c.cname))

let make ?(rules = Rules.default) blocks =
  let blocks = Array.of_list blocks in
  let nb = Array.length blocks in
  if nb = 0 then invalid_arg "Place_opt.make: no blocks";
  let pitch =
    Array.fold_left
      (fun acc c ->
        let b = block_bbox c in
        max acc (max (Box.width b) (Box.height b)))
      1 blocks
    + Rules.max_spacing rules
  in
  {
    blocks;
    block_digests = Array.map block_digest blocks;
    rules;
    grid = nb;
    pitch;
    (* initial arrangement: one row along x — the fixed floorplan
       heuristic the chip generators use, i.e. the greedy baseline *)
    slot = Array.init nb Fun.id;
    orient_ix = Array.make nb 0;
    artifacts = Hashtbl.create 64;
  }

let cell_of st =
  let chip = Cell.create "placed-chip" in
  Array.iteri
    (fun k c ->
      let orient = List.nth Orient.rotations st.orient_ix.(k) in
      let b = Box.transform orient (block_bbox c) in
      let s = st.slot.(k) in
      let origin =
        Vec.make (s mod st.grid * st.pitch) (s / st.grid * st.pitch)
      in
      (* anchor the oriented bounding box's lower-left on the slot
         origin so no rotation can reach a neighbouring slot *)
      let at = Vec.sub origin (Vec.make b.Box.xmin b.Box.ymin) in
      ignore (Cell.add_instance chip ~orient ~at c))
    st.blocks;
  chip

let digest st =
  let b = Buffer.create 128 in
  Array.iter (fun d -> Buffer.add_string b d) st.block_digests;
  Buffer.add_string b (string_of_int st.grid);
  Array.iteri
    (fun k s ->
      Buffer.add_string b (Printf.sprintf ";%d,%d" s st.orient_ix.(k)))
    st.slot;
  Digest.string (Buffer.contents b)

let evaluate st =
  try
    let res =
      H.hier ~domains:1
        ~cached:(Hashtbl.find_opt st.artifacts)
        st.rules (cell_of st)
    in
    List.iter
      (fun (h, pa, _) ->
        if not (Hashtbl.mem st.artifacts h) then Hashtbl.add st.artifacts h pa)
      res.H.hr_artifacts;
    res.H.hr_stats.H.hs_area_after
  with Rsg_compact.Bellman.Infeasible _ -> max_int

let moves st =
  let nb = Array.length st.blocks in
  let nslots = st.grid * st.grid in
  let taken = Array.make nslots false in
  Array.iter (fun s -> taken.(s) <- true) st.slot;
  let out = ref [] in
  for k = nb - 1 downto 0 do
    for o = 3 downto 0 do
      if o <> st.orient_ix.(k) then
        out := Rotate (k, st.orient_ix.(k), o) :: !out
    done
  done;
  for k1 = nb - 1 downto 0 do
    for k2 = nb - 1 downto k1 + 1 do
      out := Swap (k1, k2) :: !out
    done
  done;
  for k = nb - 1 downto 0 do
    for s = nslots - 1 downto 0 do
      if not taken.(s) then out := Shift (k, st.slot.(k), s) :: !out
    done
  done;
  !out

let apply st = function
  | Shift (k, _, s) -> st.slot.(k) <- s
  | Swap (k1, k2) ->
    let s = st.slot.(k1) in
    st.slot.(k1) <- st.slot.(k2);
    st.slot.(k2) <- s
  | Rotate (k, _, o) -> st.orient_ix.(k) <- o

let undo st = function
  | Shift (k, s, _) -> st.slot.(k) <- s
  | Swap (k1, k2) ->
    let s = st.slot.(k1) in
    st.slot.(k1) <- st.slot.(k2);
    st.slot.(k2) <- s
  | Rotate (k, o, _) -> st.orient_ix.(k) <- o

let copy st =
  {
    st with
    slot = Array.copy st.slot;
    orient_ix = Array.copy st.orient_ix;
    artifacts = Hashtbl.copy st.artifacts;
  }

let problem : (state, move) Anneal.problem =
  {
    copy;
    digest;
    evaluate;
    propose =
      (fun rng st ->
        match moves st with
        | [] -> None
        | ms -> Some (List.nth ms (Anneal.Rng.int rng (List.length ms))));
    apply;
    undo;
  }

let cell = cell_of

(* Seeded, deterministic simulated annealing over pluggable problems.
   Chains are independent given (seed, chain index), fan out across
   the lib/par pool, and merge best-of-N in chain order, so the result
   is bit-identical at any RSG_DOMAINS for a fixed seed. *)

module Rng = struct
  (* SplitMix64: tiny, splittable, identical on every platform.  The
     low 62 bits feed [int]; [float] uses the top 53. *)
  type t = { mutable s : int64 }

  let gamma = 0x9E3779B97F4A7C15L

  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make seed = { s = mix (Int64.of_int seed) }

  let next t =
    t.s <- Int64.add t.s gamma;
    mix t.s

  let split t = { s = next t }

  let int t n =
    if n <= 0 then invalid_arg "Rng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 2)
                    (Int64.of_int n))

  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53
end

type ('s, 'm) problem = {
  copy : 's -> 's;
      (* deep enough that two copies never share mutable internals *)
  digest : 's -> string;  (* canonical 16-byte state fingerprint *)
  evaluate : 's -> int;   (* cost; [max_int] marks infeasible *)
  propose : Rng.t -> 's -> 'm option;
  apply : 's -> 'm -> unit;
  undo : 's -> 'm -> unit;
}

type stats = {
  st_chains : int;
  st_iters : int;     (* proposals over all chains *)
  st_accepted : int;
  st_computed : int;  (* evaluate calls actually run *)
  st_cached : int;    (* served by [cached] (store warm path) *)
}

type 's result = {
  r_best : 's;
  r_cost : int;
  r_digest : string;
  r_initial_cost : int;
  r_evals : (string * int) list;
      (* freshly computed (digest, cost), deduped, chain order —
         hand these to the store for the warm path *)
  r_stats : stats;
}

type 's chain_out = {
  c_best : 's;
  c_cost : int;
  c_digest : string;
  c_evals : (string * int) list;
  c_accepted : int;
  c_computed : int;
  c_cached : int;
}

let run_chain problem ~cached ~iters ~t0 ~cooling ~seeded rng state =
  let memo : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let d_seed, c_seed = seeded in
  Hashtbl.replace memo d_seed c_seed;
  let computed = ref [] and n_computed = ref 0 and n_cached = ref 0 in
  let eval s =
    let d = problem.digest s in
    match Hashtbl.find_opt memo d with
    | Some c -> (d, c)
    | None ->
      let c =
        match cached d with
        | Some c ->
          incr n_cached;
          c
        | None ->
          let c = problem.evaluate s in
          incr n_computed;
          computed := (d, c) :: !computed;
          c
      in
      Hashtbl.replace memo d c;
      (d, c)
  in
  let d0, c0 = eval state in
  let best = ref (problem.copy state) in
  let best_cost = ref c0 and best_digest = ref d0 in
  let cur_cost = ref c0 in
  let temp = ref t0 in
  let n_accepted = ref 0 in
  for _k = 1 to iters do
    (match problem.propose rng state with
    | None -> ()
    | Some m ->
      problem.apply state m;
      let d, c = eval state in
      let accept =
        if c = max_int then false
        else if c <= !cur_cost then true
        else
          (* both finite: Metropolis on the area delta *)
          let delta = float_of_int (c - !cur_cost) in
          Rng.float rng < exp (-.delta /. !temp)
      in
      if accept then begin
        incr n_accepted;
        cur_cost := c;
        if c < !best_cost then begin
          best := problem.copy state;
          best_cost := c;
          best_digest := d
        end
      end
      else problem.undo state m);
    temp := !temp *. cooling
  done;
  {
    c_best = !best;
    c_cost = !best_cost;
    c_digest = !best_digest;
    c_evals = List.rev !computed;
    c_accepted = !n_accepted;
    c_computed = !n_computed;
    c_cached = !n_cached;
  }

let run ?domains ?(cached = fun _ -> None) ?(chains = 1) ?(iters = 64) ?t0
    ?cooling ~seed problem init =
  if chains < 1 then invalid_arg "Anneal.run: chains";
  if iters < 0 then invalid_arg "Anneal.run: iters";
  (* initial cost once on the caller; every chain's memo is seeded
     with it so N chains do not re-solve the same start state *)
  let d_init = problem.digest init in
  let init_cached, c_init =
    match cached d_init with
    | Some c -> (true, c)
    | None -> (false, problem.evaluate init)
  in
  let t0 =
    match t0 with
    | Some t -> t
    | None ->
      let base = if c_init = max_int then 1e6 else float_of_int c_init in
      Float.max 1.0 (0.05 *. base)
  in
  let cooling =
    match cooling with
    | Some c -> c
    | None -> if iters = 0 then 1.0 else Float.pow 1e-3 (1.0 /. float_of_int iters)
  in
  let master = Rng.make seed in
  let rngs = Array.init chains (fun _ -> Rng.split master) in
  let states = Array.init chains (fun _ -> problem.copy init) in
  let outs =
    Rsg_par.Par.map ?domains
      (fun c ->
        run_chain problem ~cached ~iters ~t0 ~cooling
          ~seeded:(d_init, c_init) rngs.(c) states.(c))
      (Array.init chains Fun.id)
  in
  (* best-of-N, strict improvement, chain order: ties resolve to the
     lowest chain index, independently of the domain count *)
  let win = ref 0 in
  Array.iteri (fun c o -> if o.c_cost < outs.(!win).c_cost then win := c) outs;
  let w = outs.(!win) in
  let seen = Hashtbl.create 256 in
  let evals =
    let base = if init_cached then [] else [ (d_init, c_init) ] in
    List.iter (fun (d, _) -> Hashtbl.replace seen d ()) base;
    base
    @ List.concat_map
        (fun o ->
          List.filter
            (fun (d, _) ->
              if Hashtbl.mem seen d then false
              else begin
                Hashtbl.replace seen d ();
                true
              end)
            o.c_evals)
        (Array.to_list outs)
  in
  let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outs in
  {
    r_best = w.c_best;
    r_cost = w.c_cost;
    r_digest = w.c_digest;
    r_initial_cost = c_init;
    r_evals = evals;
    r_stats =
      {
        st_chains = chains;
        st_iters = chains * iters;
        st_accepted = sum (fun o -> o.c_accepted);
        st_computed = sum (fun o -> o.c_computed);
        st_cached = (sum (fun o -> o.c_cached)) + (if init_cached then 1 else 0);
      };
  }

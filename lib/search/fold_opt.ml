(* PLA column folding as an annealing problem.  The state is an
   accepted pair list over Folding's precedence machinery; every move
   is pre-validated (disjoint rows, acyclic precedence) so accepted
   folds are realisable by construction.  Cost is the compacted area
   of the folded plane under Compact.hier. *)

open Rsg_pla
module Sample = Rsg_core.Sample
module H = Rsg_compact.Hcompact
module Rules = Rsg_compact.Rules

type state = {
  tt : Truth_table.t;
  tt_digest : string;
  rules : Rules.t;
  mutable pairs : (int * int) list;
  paired : bool array;
  sample : Sample.t;
      (* private scratch library: generate_fold registers every
         candidate cell in its db, so chains must not share one *)
  artifacts : (string, H.pabs) Hashtbl.t;
      (* per-prototype condensations accumulated across candidates —
         only prototypes a move actually changed get re-condensed *)
}

type move =
  | Accept of int * int
  | Reject of int * int
  | Swap of (int * int) * (int * int)

let canon pairs = List.sort compare pairs

let make ?(rules = Rules.default) tt =
  let n = tt.Truth_table.n_inputs in
  let greedy = (Folding.plan tt).Folding.pairs in
  let paired = Array.make n false in
  List.iter
    (fun (i, j) ->
      paired.(i) <- true;
      paired.(j) <- true)
    greedy;
  {
    tt;
    tt_digest =
      Digest.string
        (String.concat "\n"
           (List.map
              (fun (i, o) -> i ^ " " ^ o)
              (Truth_table.to_strings tt)));
    rules;
    pairs = greedy;
    paired;
    sample = fst (Pla_cells.build ());
    artifacts = Hashtbl.create 64;
  }

let pairs st = canon st.pairs

let fold_of st = Folding.fold_of_pairs st.tt (canon st.pairs)

(* all valid ordered pairs over currently unpaired columns (after
   [exempt] columns are treated as free), acyclic against [base] *)
let legal_pairs st ~exempt ~base =
  let n = st.tt.Truth_table.n_inputs in
  let free k = (not st.paired.(k)) || List.mem k exempt in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if
        i <> j && free i && free j
        && Folding.disjoint st.tt i j
        && Folding.acyclic st.tt ((i, j) :: base)
      then out := (i, j) :: !out
    done
  done;
  !out

let moves st =
  let accepts =
    List.map
      (fun p -> Accept (fst p, snd p))
      (legal_pairs st ~exempt:[] ~base:st.pairs)
  in
  let rejects = List.map (fun (i, j) -> Reject (i, j)) st.pairs in
  let swaps =
    List.concat_map
      (fun ((a, b) as old) ->
        let rest = List.filter (fun p -> p <> old) st.pairs in
        legal_pairs st ~exempt:[ a; b ] ~base:rest
        |> List.filter (fun p -> p <> old)
        |> List.map (fun p -> Swap (old, p)))
      st.pairs
  in
  accepts @ rejects @ swaps

let remove_pair st ((i, j) as p) =
  st.pairs <- List.filter (fun q -> q <> p) st.pairs;
  st.paired.(i) <- false;
  st.paired.(j) <- false

let add_pair st ((i, j) as p) =
  st.pairs <- p :: st.pairs;
  st.paired.(i) <- true;
  st.paired.(j) <- true

let apply st = function
  | Accept (i, j) -> add_pair st (i, j)
  | Reject (i, j) -> remove_pair st (i, j)
  | Swap (old, fresh) ->
    remove_pair st old;
    add_pair st fresh

let undo st = function
  | Accept (i, j) -> remove_pair st (i, j)
  | Reject (i, j) -> add_pair st (i, j)
  | Swap (old, fresh) ->
    remove_pair st fresh;
    add_pair st old

let digest st =
  Digest.string
    (st.tt_digest
    ^ String.concat ";"
        (List.map (fun (i, j) -> Printf.sprintf "%d,%d" i j) (canon st.pairs))
    )

let evaluate st =
  let t = Folding.generate_fold ~sample:st.sample st.tt (fold_of st) in
  try
    let res =
      H.hier ~domains:1
        ~cached:(Hashtbl.find_opt st.artifacts)
        st.rules t.Folding.cell
    in
    List.iter
      (fun (h, pa, _) ->
        if not (Hashtbl.mem st.artifacts h) then Hashtbl.add st.artifacts h pa)
      res.H.hr_artifacts;
    res.H.hr_stats.H.hs_area_after
  with Rsg_compact.Bellman.Infeasible _ -> max_int

let copy st =
  {
    st with
    pairs = st.pairs;
    paired = Array.copy st.paired;
    sample = fst (Pla_cells.build ());
    artifacts = Hashtbl.copy st.artifacts;
  }

let problem : (state, move) Anneal.problem =
  {
    copy;
    digest;
    evaluate;
    propose =
      (fun rng st ->
        match moves st with
        | [] -> None
        | ms -> Some (List.nth ms (Anneal.Rng.int rng (List.length ms))));
    apply;
    undo;
  }

(* realised with a fresh sample and the default name so the output
   depends only on the fold — byte-identical across domain counts and
   across cold/warm cache runs *)
let generate ?name st = Folding.generate_fold ?name st.tt (fold_of st)

(** PLA column folding as an {!Anneal} problem.

    The greedy heuristic ({!Rsg_pla.Folding.plan}) accepts the first
    acyclic pair per column; folding is NP-hard and the greedy order
    can lock out better pairings.  This problem anneals over the
    accepted pair list — moves accept a new pair, reject an existing
    one, or swap one pair for another, each pre-validated against
    {!Rsg_pla.Folding.disjoint} and {!Rsg_pla.Folding.acyclic} so
    every reachable state is a realisable fold.  Cost is the compacted
    area of the folded plane under
    {!Rsg_compact.Hcompact.hier}; per-prototype condensations are
    accumulated in the state so a candidate only re-condenses the
    prototypes its move changed. *)

type state

type move =
  | Accept of int * int
  | Reject of int * int
  | Swap of (int * int) * (int * int)

val make : ?rules:Rsg_compact.Rules.t -> Rsg_pla.Truth_table.t -> state
(** Start state: the greedy {!Rsg_pla.Folding.plan}, so a
    zero-iteration anneal {e is} the greedy baseline.  [rules]
    (default {!Rsg_compact.Rules.default}) prices the candidates. *)

val pairs : state -> (int * int) list
(** Accepted pairs, canonically sorted. *)

val problem : (state, move) Anneal.problem

val generate : ?name:string -> state -> Rsg_pla.Folding.t
(** Realise the state's fold with a fresh sample library: the layout
    depends only on the fold, byte-identical across domain counts and
    cache temperature. *)

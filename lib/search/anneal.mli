(** Seeded, deterministic simulated annealing over pluggable problems.

    The engine explores a mutable state via a problem's move kernels:
    [propose] draws a move from the chain's own PRNG, [apply]/[undo]
    perturb and restore the state in place, and [evaluate] scores a
    candidate (for layout problems, compacted area via
    {!Rsg_compact.Hcompact.hier}).  Acceptance is Metropolis on the
    cost delta under a geometric temperature schedule.

    Every evaluation is memoized per chain by the state's canonical
    [digest], and an optional [cached] lookup (backed by the store's
    [p_places] section) is consulted first, so revisited states and
    warm re-runs replay instead of re-solving.

    [chains] independent chains — each a pure function of the seed and
    its chain index — fan out across the {!Rsg_par.Par} pool and merge
    best-of-N with strict improvement in chain order, so for a fixed
    seed the result is bit-identical at any [RSG_DOMAINS].  Zero
    iterations returns the start state untouched: the greedy baseline.
*)

(** Splittable SplitMix64 PRNG: platform-independent, cheap, and
    [split] gives each chain an independent stream. *)
module Rng : sig
  type t

  val make : int -> t
  val split : t -> t

  val int : t -> int -> int
  (** Uniform in [0, n); raises [Invalid_argument] on [n <= 0]. *)

  val float : t -> float
  (** Uniform in [0, 1). *)
end

type ('s, 'm) problem = {
  copy : 's -> 's;
      (** deep enough that two copies never share mutable internals —
          chains run concurrently on pool domains *)
  digest : 's -> string;
      (** canonical 16-byte fingerprint; equal states must collide *)
  evaluate : 's -> int;  (** cost to minimise; [max_int] = infeasible *)
  propose : Rng.t -> 's -> 'm option;
      (** draw a candidate move, [None] when no move exists *)
  apply : 's -> 'm -> unit;
  undo : 's -> 'm -> unit;  (** exact inverse of [apply] *)
}

type stats = {
  st_chains : int;
  st_iters : int;     (** proposals over all chains *)
  st_accepted : int;
  st_computed : int;  (** [evaluate] calls actually run *)
  st_cached : int;    (** evaluations served by [cached] *)
}

type 's result = {
  r_best : 's;
  r_cost : int;
  r_digest : string;
  r_initial_cost : int;
  r_evals : (string * int) list;
      (** freshly computed (digest, cost) pairs, deduplicated, in
          chain order — persist these for the warm path *)
  r_stats : stats;
}

val run :
  ?domains:int ->
  ?cached:(string -> int option) ->
  ?chains:int ->
  ?iters:int ->
  ?t0:float ->
  ?cooling:float ->
  seed:int ->
  ('s, 'm) problem ->
  's ->
  's result
(** [run ~seed problem init] anneals from [init].  [chains] (default
    1) independent chains of [iters] (default 64) proposals each;
    [t0] defaults to 5% of the initial cost and [cooling] to the
    geometric factor reaching [t0/1000] at the last iteration.
    [domains] sizes the chain fan-out pool (default
    {!Rsg_par.Par.default_domains}); the result is independent of it.
    [cached] maps a candidate digest to a previously computed cost. *)

open Rsg_geom
open Rsg_layout
open Rsg_core

type comparison = {
  hpla_instances : int;
  hpla_declarations : int;
  hpla_duplicates : int;
  rsg_instances : int;
  rsg_declarations : int;
  rsg_duplicates : int;
}

let sq = Pla_cells.square

let assembled_sample () =
  (* fresh leaf cells via the minimal assemblies, but assembled here
     into a full 2-input / 2-output / 2-term PLA *)
  let tmp_sample, _ = Pla_cells.build () in
  let cell name = Db.find_exn tmp_sample.Sample.db name in
  let asq = cell Pla_cells.and_sq
  and osq = cell Pla_cells.or_sq
  and cao = cell Pla_cells.connect_ao
  and ib = cell Pla_cells.inbuf
  and ob = cell Pla_cells.outbuf
  and ac = cell Pla_cells.and_cross
  and oc = cell Pla_cells.or_cross in
  let pla = Cell.create "hpla-sample" in
  let at x y c = ignore (Cell.add_instance pla ~at:(Vec.make x y) c) in
  (* row-major placement: and plane (4 cols), connect column, or plane *)
  for r = 0 to 1 do
    for c = 0 to 3 do
      at (sq * c) (sq * r) asq
    done;
    at (sq * 4) (sq * r) cao;
    for k = 0 to 1 do
      at (sq * (5 + k)) (sq * r) osq
    done
  done;
  (* buffers *)
  at 0 (2 * sq) ib;
  at (2 * sq) (2 * sq) ib;
  at (5 * sq) (2 * sq) ob;
  at (6 * sq) (2 * sq) ob;
  (* a representative personality *)
  let off = Pla_cells.cross_offset in
  at off off ac;
  at ((3 * sq) + off) (sq + off) ac;
  at ((5 * sq) + off) off oc;
  at ((6 * sq) + off) (sq + off) oc;
  (* labels on EVERY adjacency, as HPLA's relocation scheme read them *)
  let label i x y = Cell.add_label pla (string_of_int i) (Vec.make x y) in
  for r = 0 to 1 do
    let ym = (sq * r) + (sq / 2) in
    for c = 1 to 3 do
      label 1 (sq * c) ym
    done;
    label 1 (4 * sq) ym;
    label 1 (5 * sq) ym;
    label 1 (6 * sq) ym
  done;
  for c = 0 to 3 do
    label 2 ((sq * c) + (sq / 2)) sq
  done;
  label 2 ((5 * sq) + (sq / 2)) sq;
  label 2 ((6 * sq) + (sq / 2)) sq;
  label 1 (sq / 2) (2 * sq);
  label 1 ((2 * sq) + (sq / 2)) (2 * sq);
  label 1 ((5 * sq) + (sq / 2)) (2 * sq);
  label 1 ((6 * sq) + (sq / 2)) (2 * sq);
  label 1 (off + 2) (off + 2);
  label 1 ((3 * sq) + off + 2) (sq + off + 2);
  label 1 ((5 * sq) + off + 2) (off + 2);
  label 1 ((6 * sq) + off + 2) (sq + off + 2);
  pla

let extract () = Sample.of_assemblies [ assembled_sample () ]

let compare_samples () =
  let hpla_sample = assembled_sample () in
  let _, hpla_decls = Sample.of_assemblies [ hpla_sample ] in
  let rsg_assemblies = Pla_cells.assemblies () in
  let _, rsg_decls = Sample.of_assemblies rsg_assemblies in
  let count_dup ds = List.length (List.filter (fun d -> d.Sample.d_duplicate) ds) in
  { hpla_instances = List.length (Cell.instances hpla_sample);
    hpla_declarations = List.length hpla_decls;
    hpla_duplicates = count_dup hpla_decls;
    rsg_instances =
      List.fold_left
        (fun acc c -> acc + List.length (Cell.instances c))
        0 rsg_assemblies;
    rsg_declarations = List.length rsg_decls;
    rsg_duplicates = count_dup rsg_decls }

let generates_same_pla tt =
  let from_hpla =
    let s, _ = extract () in
    Gen.generate ~sample:s tt
  in
  let from_minimal = Gen.generate tt in
  Cif.roundtrip_equal from_hpla.Gen.cell from_minimal.Gen.cell

type t = {
  pla : Gen.t;
  address_bits : int;
  word_bits : int;
  contents : int array;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let personality ~word_bits contents =
  let size = Array.length contents in
  if not (is_power_of_two size) then
    invalid_arg "Rom.generate: contents length must be a power of two";
  if size < 2 then invalid_arg "Rom.generate: need at least 2 words";
  if word_bits < 1 then invalid_arg "Rom.generate: word_bits";
  Array.iter
    (fun w ->
      if w < 0 || w >= 1 lsl word_bits then
        invalid_arg "Rom.generate: word out of range")
    contents;
  let n =
    let rec go k = if 1 lsl k = size then k else go (k + 1) in
    go 1
  in
  let terms =
    List.init size (fun v ->
        { Truth_table.lits =
            Array.init n (fun i ->
                if v land (1 lsl i) <> 0 then Truth_table.T else Truth_table.F);
          outs = Array.init word_bits (fun k -> contents.(v) land (1 lsl k) <> 0) })
  in
  (n, Truth_table.make ~n_inputs:n ~n_outputs:word_bits terms)

let generate ?sample ?(name = "rom") ~word_bits contents =
  let address_bits, tt = personality ~word_bits contents in
  let pla = Gen.generate ?sample ~name tt in
  { pla; address_bits; word_bits; contents }

let read_word t addr =
  if addr < 0 || addr >= Array.length t.contents then
    invalid_arg "Rom.read_word";
  Truth_table.eval_int t.pla.Gen.table addr

let dump t =
  let back = Gen.read_back t.pla in
  Array.init (Array.length t.contents) (fun addr ->
      Truth_table.eval_int back addr)

let verify t = Gen.verify t.pla && dump t = t.contents

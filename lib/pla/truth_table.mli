(** PLA personality: truth tables in the HPLA sense — a number of
    inputs, outputs and product terms, where each term selects
    true/complement/don't-care per input and drives a subset of the
    outputs. *)

type literal = T | F | X
(** input appears true, complemented, or not at all in a term *)

type term = { lits : literal array; outs : bool array }

type t = { n_inputs : int; n_outputs : int; terms : term list }

exception Malformed of string

val make : n_inputs:int -> n_outputs:int -> term list -> t
(** Validates dimensions; raises {!Malformed}. *)

val of_strings : (string * string) list -> t
(** Terms as [("10-", "01")] pairs: '1' true, '0' complement, '-'
    don't care; outputs '1'/'0'.  All rows must agree in width. *)

val to_strings : t -> (string * string) list

val eval : t -> bool array -> bool array
(** Evaluate the two-level AND/OR logic. *)

val eval_int : t -> int -> int
(** Inputs/outputs packed little-endian. *)

val n_crosspoints : t -> int * int
(** Programmed crosspoints in the (AND, OR) planes. *)

val equal : t -> t -> bool
(** Same dimensions and the same function on every input vector
    (decided by exhaustive evaluation — PLAs are small). *)

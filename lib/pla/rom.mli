(** ROM generation (the thesis's introduction lists ROMs among the
    regular structures the RSG targets).

    A ROM is the degenerate PLA whose AND plane decodes every address
    (minterm rows) and whose OR plane holds the stored words: bit k of
    word v programs crosspoint (k, row v).  Built entirely from the
    {!Pla_cells} sample. *)

open Rsg_core

type t = {
  pla : Gen.t;
  address_bits : int;
  word_bits : int;
  contents : int array;
}

val generate :
  ?sample:Sample.t -> ?name:string -> word_bits:int -> int array -> t
(** [generate ~word_bits contents]: [contents] length must be a power
    of two (the address space); each word must fit in [word_bits].
    Raises [Invalid_argument] otherwise. *)

val read_word : t -> int -> int
(** Functional read through the generated personality. *)

val dump : t -> int array
(** Every word, read back from the {e layout} (via crosspoint
    extraction), in address order. *)

val verify : t -> bool
(** [dump t = t.contents] and the underlying PLA extraction check. *)

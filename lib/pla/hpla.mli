(** The HPLA-style sample for experiment E5 (section 1.2.2).

    HPLA required its sample layout to be a fully assembled
    two-input, two-output, two-product-term PLA, so that every
    interface the generator might need appeared somewhere in it — at
    the price of a larger sample with redundant information (the
    thesis notes it held two identical copies of the
    and-sq/connect-ao interface).  This module builds that assembled
    sample, labels every adjacency the way HPLA's relocation scheme
    consumed them, and extracts it so the redundancy can be counted
    against the minimal RSG sample of {!Pla_cells}. *)

open Rsg_core

type comparison = {
  hpla_instances : int;       (** instances in the assembled sample *)
  hpla_declarations : int;    (** labelled interface examples *)
  hpla_duplicates : int;      (** declarations already in the table *)
  rsg_instances : int;        (** instances in the minimal sample *)
  rsg_declarations : int;
  rsg_duplicates : int;
}

val assembled_sample : unit -> Rsg_layout.Cell.t
(** The 2x2x2 PLA as one labelled assembly cell. *)

val extract : unit -> Sample.t * Sample.declaration list

val compare_samples : unit -> comparison

val generates_same_pla : Truth_table.t -> bool
(** The PLA generated from the assembled HPLA sample is geometrically
    identical to the one from the minimal sample — the architecture
    information in the assembled sample is superfluous. *)

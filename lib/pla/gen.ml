open Rsg_geom
open Rsg_layout
open Rsg_core
module Obs = Rsg_obs.Obs

type t = { cell : Cell.t; table : Truth_table.t; sample : Sample.t }

let cell_of sample name =
  match Db.find sample.Sample.db name with
  | Some c -> c
  | None -> failwith ("Pla.Gen: sample lacks cell " ^ name)

(* Shared plane builder: rows of [and-sq x 2n][connect-ao][or-sq x m]
   (m = 0 for decoders), buffers on top, crosspoints from the
   personality.  Returns the root node. *)
let build_structure sample (tt : Truth_table.t) ~with_or_plane =
  let asq = cell_of sample Pla_cells.and_sq in
  let osq = cell_of sample Pla_cells.or_sq in
  let cao = cell_of sample Pla_cells.connect_ao in
  let ib = cell_of sample Pla_cells.inbuf in
  let ob = cell_of sample Pla_cells.outbuf in
  let ac = cell_of sample Pla_cells.and_cross in
  let oc = cell_of sample Pla_cells.or_cross in
  let n = tt.Truth_table.n_inputs in
  let m = if with_or_plane then tt.Truth_table.n_outputs else 0 in
  let p = List.length tt.Truth_table.terms in
  if p = 0 then failwith "Pla.Gen: no product terms";
  let and_cols = 2 * n in
  let terms = Array.of_list tt.Truth_table.terms in
  (* grid rows: index r = 0 .. p-1 *)
  let and_grid = Array.make_matrix and_cols p None in
  let cao_col = Array.make p None in
  let or_grid = Array.make_matrix (max m 1) p None in
  for r = 0 to p - 1 do
    for c = 0 to and_cols - 1 do
      and_grid.(c).(r) <- Some (Graph.mk_instance asq)
    done;
    cao_col.(r) <- Some (Graph.mk_instance cao);
    for k = 0 to m - 1 do
      or_grid.(k).(r) <- Some (Graph.mk_instance osq)
    done
  done;
  let aget c r = Option.get and_grid.(c).(r) in
  let cget r = Option.get cao_col.(r) in
  let oget k r = Option.get or_grid.(k).(r) in
  (* horizontal chains along each row *)
  for r = 0 to p - 1 do
    for c = 1 to and_cols - 1 do
      Graph.connect (aget (c - 1) r) (aget c r) 1
    done;
    Graph.connect (aget (and_cols - 1) r) (cget r) 1;
    if m > 0 then begin
      Graph.connect (cget r) (oget 0 r) 1;
      for k = 1 to m - 1 do
        Graph.connect (oget (k - 1) r) (oget k r) 1
      done
    end
  done;
  (* vertical ties at the first column *)
  for r = 1 to p - 1 do
    Graph.connect (aget 0 (r - 1)) (aget 0 r) 2
  done;
  (* buffers above the top row *)
  for i = 0 to n - 1 do
    let b = Graph.mk_instance ib in
    Graph.connect (aget (2 * i) (p - 1)) b 1
  done;
  for k = 0 to m - 1 do
    let b = Graph.mk_instance ob in
    Graph.connect (oget k (p - 1)) b 1
  done;
  (* programming crosspoints *)
  for r = 0 to p - 1 do
    Array.iteri
      (fun i lit ->
        let put c =
          let x = Graph.mk_instance ac in
          Graph.connect (aget c r) x 1
        in
        match lit with
        | Truth_table.T -> put (2 * i)
        | Truth_table.F -> put ((2 * i) + 1)
        | Truth_table.X -> ())
      terms.(r).Truth_table.lits;
    if m > 0 then
      Array.iteri
        (fun k driven ->
          if driven then begin
            let x = Graph.mk_instance oc in
            Graph.connect (oget k r) x 1
          end)
        terms.(r).Truth_table.outs
  done;
  aget 0 0

let generate ?sample ?(name = "pla") tt =
  Obs.span "pla.generate" (fun () ->
      let sample =
        match sample with Some s -> s | None -> fst (Pla_cells.build ())
      in
      let root =
        Obs.span "pla.graph" (fun () ->
            build_structure sample tt ~with_or_plane:true)
      in
      let cell_name = Db.fresh_name sample.Sample.db name in
      let cell =
        Expand.mk_cell ~db:sample.Sample.db sample.Sample.table cell_name root
      in
      Obs.count "pla.generated";
      { cell; table = tt; sample })

let minterm_table n =
  if n < 1 || n > 16 then invalid_arg "Pla.Gen.generate_decoder";
  let p = 1 lsl n in
  let terms =
    List.init p (fun v ->
        { Truth_table.lits =
            Array.init n (fun i ->
                if v land (1 lsl i) <> 0 then Truth_table.T else Truth_table.F);
          outs = Array.init p (fun k -> k = v) })
  in
  Truth_table.make ~n_inputs:n ~n_outputs:p terms

let generate_decoder ?sample ?(name = "decoder") n =
  Obs.span "pla.generate_decoder" (fun () ->
      let sample =
        match sample with Some s -> s | None -> fst (Pla_cells.build ())
      in
      let tt = minterm_table n in
      let root =
        Obs.span "pla.graph" (fun () ->
            build_structure sample tt ~with_or_plane:false)
      in
      let cell_name = Db.fresh_name sample.Sample.db name in
      let cell =
        Expand.mk_cell ~db:sample.Sample.db sample.Sample.table cell_name root
      in
      Obs.count "pla.generated";
      { cell; table = tt; sample })

(* --- extraction-based verification --------------------------------- *)

let positions cell name =
  Flatten.instance_placements cell
  |> List.filter_map (fun (n, (t : Transform.t)) ->
         if String.equal n name then Some t.Transform.offset else None)

let read_back t =
  let tt = t.table in
  let n = tt.Truth_table.n_inputs in
  let p = List.length tt.Truth_table.terms in
  let sq = Pla_cells.square and off = Pla_cells.cross_offset in
  let grid_of (v : Vec.t) =
    let x = v.Vec.x - off and y = v.Vec.y - off in
    if x mod sq <> 0 || y mod sq <> 0 then
      failwith "read_back: crosspoint off grid";
    (x / sq, y / sq)
  in
  let lits = Array.make_matrix p n Truth_table.X in
  List.iter
    (fun v ->
      let c, r = grid_of v in
      if c < 0 || c >= 2 * n || r < 0 || r >= p then
        failwith "read_back: and crosspoint outside plane";
      let i = c / 2 in
      lits.(r).(i) <- (if c mod 2 = 0 then Truth_table.T else Truth_table.F))
    (positions t.cell Pla_cells.and_cross);
  let m = tt.Truth_table.n_outputs in
  let has_or = positions t.cell Pla_cells.or_sq <> [] in
  let outs = Array.make_matrix p (max m 1) false in
  if has_or then begin
    (* or plane starts after 2n and columns + the connect-ao column *)
    let or_x0 = ((2 * n) + 1) * sq in
    List.iter
      (fun (v : Vec.t) ->
        let c, r = grid_of (Vec.sub v (Vec.make or_x0 0)) in
        if c < 0 || c >= m || r < 0 || r >= p then
          failwith "read_back: or crosspoint outside plane";
        outs.(r).(c) <- true)
      (positions t.cell Pla_cells.or_cross)
  end
  else
    (* decoder: row r drives output r *)
    for r = 0 to p - 1 do
      outs.(r).(r) <- true
    done;
  Truth_table.make ~n_inputs:n ~n_outputs:m
    (List.init p (fun r -> { Truth_table.lits = lits.(r); outs = outs.(r) }))

let verify t =
  Obs.span "pla.verify" (fun () ->
      let back = read_back t in
      Truth_table.to_strings back = Truth_table.to_strings t.table
      && Truth_table.equal back t.table)

let stats t =
  (Flatten.stats t.cell).Flatten.by_cell

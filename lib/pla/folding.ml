open Rsg_geom
open Rsg_layout
open Rsg_core

type fold = {
  pairs : (int * int) list;
  singles : int list;
  row_order : int array;
  split : int array;
}

type t = {
  cell : Cell.t;
  table : Truth_table.t;
  fold : fold;
  sample : Sample.t;
}

(* rows.(i) lists the product-term rows where input column [i] carries
   a non-X literal.  Computed once per table — successors/acyclic/topo
   walk these lists on every edge, so recomputing them per call made
   planning quadratic in the accepted pairs. *)
let rows_table (tt : Truth_table.t) =
  let rows = Array.make tt.Truth_table.n_inputs [] in
  List.iteri
    (fun r term ->
      Array.iteri
        (fun i lit ->
          if lit <> Truth_table.X then rows.(i) <- r :: rows.(i))
        term.Truth_table.lits)
    tt.Truth_table.terms;
  Array.map List.rev rows

let rows_of (tt : Truth_table.t) i = (rows_table tt).(i)

let disjoint tt i j =
  let rows = rows_table tt in
  List.for_all (fun r -> not (List.mem r rows.(j))) rows.(i)

(* precedence: accepted pair (i, j) demands every row of i before
   every row of j.  Edges derived on demand from the accepted list. *)
let successors rows accepted r =
  List.concat_map
    (fun (i, j) -> if List.mem r rows.(i) then rows.(j) else [])
    accepted

let acyclic_rows rows accepted p =
  (* DFS cycle check over the derived precedence graph *)
  let color = Array.make p 0 in
  let rec visit r =
    if color.(r) = 1 then false
    else if color.(r) = 2 then true
    else begin
      color.(r) <- 1;
      let ok = List.for_all visit (successors rows accepted r) in
      color.(r) <- 2;
      ok
    end
  in
  let rec go r = r >= p || (visit r && go (r + 1)) in
  go 0

let acyclic (tt : Truth_table.t) accepted =
  acyclic_rows (rows_table tt) accepted (List.length tt.Truth_table.terms)

let topo_order rows accepted p =
  (* Kahn with smallest-index selection for a stable order *)
  let indeg = Array.make p 0 in
  let edges = Hashtbl.create 64 in
  for r = 0 to p - 1 do
    List.iter
      (fun r' ->
        if not (Hashtbl.mem edges (r, r')) then begin
          Hashtbl.add edges (r, r') ();
          indeg.(r') <- indeg.(r') + 1
        end)
      (successors rows accepted r)
  done;
  let out = Array.make p 0 in
  let placed = Array.make p false in
  for k = 0 to p - 1 do
    let next = ref (-1) in
    for r = p - 1 downto 0 do
      if (not placed.(r)) && indeg.(r) = 0 then next := r
    done;
    if !next < 0 then failwith "Folding.topo_order: cycle";
    placed.(!next) <- true;
    out.(k) <- !next;
    List.iter
      (fun r' ->
        if Hashtbl.mem edges (!next, r') then begin
          Hashtbl.remove edges (!next, r');
          indeg.(r') <- indeg.(r') - 1
        end)
      (successors rows accepted !next)
  done;
  out

(* Build the full fold record from an accepted pair list.  Shared by
   the greedy planner and the search optimizer: validates column
   bounds, pairwise disjointness and precedence acyclicity, then
   derives singles, the topological row order and the split points. *)
let fold_of_pairs (tt : Truth_table.t) pairs =
  let n = tt.Truth_table.n_inputs in
  let p = List.length tt.Truth_table.terms in
  let rows = rows_table tt in
  let paired = Array.make n false in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n || i = j then
        invalid_arg "Folding.fold_of_pairs: column out of range";
      if paired.(i) || paired.(j) then
        invalid_arg "Folding.fold_of_pairs: column folded twice";
      if not (List.for_all (fun r -> not (List.mem r rows.(j))) rows.(i))
      then invalid_arg "Folding.fold_of_pairs: columns share a row";
      paired.(i) <- true;
      paired.(j) <- true)
    pairs;
  if not (acyclic_rows rows pairs p) then
    invalid_arg "Folding.fold_of_pairs: precedence cycle";
  let singles = List.filter (fun i -> not paired.(i)) (List.init n Fun.id) in
  let row_order = topo_order rows pairs p in
  let pos = Array.make p 0 in
  Array.iteri (fun k r -> pos.(r) <- k) row_order;
  let split =
    Array.of_list
      (List.map
         (fun (_, j) ->
           match rows.(j) with
           | [] -> p
           | js -> List.fold_left (fun acc r -> min acc pos.(r)) p js)
         pairs
      @ List.map (fun _ -> p) singles)
  in
  { pairs; singles; row_order; split }

let plan (tt : Truth_table.t) =
  let n = tt.Truth_table.n_inputs in
  let p = List.length tt.Truth_table.terms in
  let rows = rows_table tt in
  let paired = Array.make n false in
  let accepted = ref [] in
  for i = 0 to n - 1 do
    if not paired.(i) then begin
      let ri = rows.(i) in
      let j = ref (i + 1) in
      let found = ref false in
      while (not !found) && !j < n do
        if not paired.(!j) then begin
          let rj = rows.(!j) in
          let disjoint = List.for_all (fun r -> not (List.mem r rj)) ri in
          if disjoint && acyclic_rows rows ((i, !j) :: !accepted) p then begin
            accepted := (i, !j) :: !accepted;
            paired.(i) <- true;
            paired.(!j) <- true;
            found := true
          end
        end;
        incr j
      done
    end
  done;
  fold_of_pairs tt (List.rev !accepted)

let n_slots f = List.length f.pairs + List.length f.singles

let columns_saved _tt f = 2 * List.length f.pairs

(* ------------------------------------------------------------------ *)

let cell_of sample name =
  match Db.find sample.Sample.db name with
  | Some c -> c
  | None -> failwith ("Folding: sample lacks cell " ^ name)

let generate_fold ?sample ?(name = "folded-pla") tt f =
  let sample =
    match sample with Some s -> s | None -> fst (Pla_cells.build ())
  in
  let asq = cell_of sample Pla_cells.and_sq in
  let osq = cell_of sample Pla_cells.or_sq in
  let cao = cell_of sample Pla_cells.connect_ao in
  let ib = cell_of sample Pla_cells.inbuf in
  let ob = cell_of sample Pla_cells.outbuf in
  let ac = cell_of sample Pla_cells.and_cross in
  let oc = cell_of sample Pla_cells.or_cross in
  let terms = Array.of_list tt.Truth_table.terms in
  let p = Array.length terms in
  let slots = Array.of_list (f.pairs @ List.map (fun i -> (i, -1)) f.singles) in
  let nslots = Array.length slots in
  let and_cols = 2 * nslots in
  let m = tt.Truth_table.n_outputs in
  (* placeholder node; every used entry is overwritten below *)
  let dummy = Graph.mk_instance asq in
  let grid = Array.make_matrix and_cols p dummy in
  let cao_col = Array.make p dummy in
  let or_grid = Array.make_matrix (max m 1) p dummy in
  for pr = 0 to p - 1 do
    for c = 0 to and_cols - 1 do
      grid.(c).(pr) <- Graph.mk_instance asq
    done;
    cao_col.(pr) <- Graph.mk_instance cao;
    for k = 0 to m - 1 do
      or_grid.(k).(pr) <- Graph.mk_instance osq
    done
  done;
  for pr = 0 to p - 1 do
    for c = 1 to and_cols - 1 do
      Graph.connect grid.(c - 1).(pr) grid.(c).(pr) 1
    done;
    Graph.connect grid.(and_cols - 1).(pr) cao_col.(pr) 1;
    Graph.connect cao_col.(pr) or_grid.(0).(pr) 1;
    for k = 1 to m - 1 do
      Graph.connect or_grid.(k - 1).(pr) or_grid.(k).(pr) 1
    done
  done;
  for pr = 1 to p - 1 do
    Graph.connect grid.(0).(pr - 1) grid.(0).(pr) 2
  done;
  (* buffers: top for the first input of every slot, bottom for the
     second input of folded slots *)
  Array.iteri
    (fun s (_, j) ->
      let top = Graph.mk_instance ib in
      Graph.connect grid.(2 * s).(p - 1) top 1;
      if j >= 0 then begin
        let bottom = Graph.mk_instance ib in
        Graph.connect grid.(2 * s).(0) bottom 2
      end)
    slots;
  for k = 0 to m - 1 do
    let b = Graph.mk_instance ob in
    Graph.connect or_grid.(k).(p - 1) b 1
  done;
  (* crosspoints through the fold *)
  for pr = 0 to p - 1 do
    let r = f.row_order.(pr) in
    Array.iteri
      (fun s (i, j) ->
        let lit_of input =
          if input < 0 then Truth_table.X else terms.(r).Truth_table.lits.(input)
        in
        let owner =
          if lit_of i <> Truth_table.X then i
          else if j >= 0 && lit_of j <> Truth_table.X then j
          else -1
        in
        if owner >= 0 then begin
          let col =
            match terms.(r).Truth_table.lits.(owner) with
            | Truth_table.T -> 2 * s
            | Truth_table.F -> (2 * s) + 1
            | Truth_table.X -> assert false
          in
          let x = Graph.mk_instance ac in
          Graph.connect grid.(col).(pr) x 1
        end)
      slots;
    Array.iteri
      (fun k driven ->
        if driven then begin
          let x = Graph.mk_instance oc in
          Graph.connect or_grid.(k).(pr) x 1
        end)
      terms.(r).Truth_table.outs
  done;
  let cell_name = Db.fresh_name sample.Sample.db name in
  let cell =
    Expand.mk_cell ~db:sample.Sample.db sample.Sample.table cell_name
      grid.(0).(0)
  in
  { cell; table = tt; fold = f; sample }

let generate ?sample ?name tt = generate_fold ?sample ?name tt (plan tt)

(* ------------------------------------------------------------------ *)

let positions cell name =
  Flatten.instance_placements cell
  |> List.filter_map (fun (n, (t : Transform.t)) ->
         if String.equal n name then Some t.Transform.offset else None)

let read_back t =
  let tt = t.table in
  let f = t.fold in
  let n = tt.Truth_table.n_inputs and m = tt.Truth_table.n_outputs in
  let p = List.length tt.Truth_table.terms in
  let slots = Array.of_list (f.pairs @ List.map (fun i -> (i, -1)) f.singles) in
  let nslots = Array.length slots in
  let sq = Pla_cells.square and off = Pla_cells.cross_offset in
  let grid_of (v : Vec.t) =
    let x = v.Vec.x - off and y = v.Vec.y - off in
    if x mod sq <> 0 || y mod sq <> 0 then failwith "read_back: off grid";
    (x / sq, y / sq)
  in
  let rows = rows_table tt in
  let lits = Array.make_matrix p n Truth_table.X in
  List.iter
    (fun v ->
      let col, pr = grid_of v in
      if col < 0 || col >= 2 * nslots || pr < 0 || pr >= p then
        failwith "read_back: and crosspoint outside folded plane";
      let s = col / 2 in
      let r = f.row_order.(pr) in
      let i, j = slots.(s) in
      (* undo the fold: the crosspoint belongs to whichever input of
         the slot participates in this term *)
      let owner =
        if List.mem r rows.(i) then i
        else if j >= 0 && List.mem r rows.(j) then j
        else failwith "read_back: crosspoint in a foreign row"
      in
      lits.(r).(owner) <-
        (if col mod 2 = 0 then Truth_table.T else Truth_table.F))
    (positions t.cell Pla_cells.and_cross);
  let or_x0 = ((2 * nslots) + 1) * sq in
  let outs = Array.make_matrix p (max m 1) false in
  List.iter
    (fun (v : Vec.t) ->
      let k, pr = grid_of (Vec.sub v (Vec.make or_x0 0)) in
      if k < 0 || k >= m || pr < 0 || pr >= p then
        failwith "read_back: or crosspoint outside plane";
      outs.(f.row_order.(pr)).(k) <- true)
    (positions t.cell Pla_cells.or_cross);
  Truth_table.make ~n_inputs:n ~n_outputs:m
    (List.init p (fun r -> { Truth_table.lits = lits.(r); outs = outs.(r) }))

let verify t =
  let back = read_back t in
  Truth_table.to_strings back = Truth_table.to_strings t.table
  && Truth_table.equal back t.table

(** The PLA sample layout (section 1.2.2).

    Leaf cells for an HPLA-style PLA — AND-plane and OR-plane squares,
    the connect-ao column between the planes, input and output
    buffers, and the two programming crosspoint masks — plus the
    {e minimal} set of by-example assemblies declaring each interface
    exactly once.  The thesis's point: unlike HPLA, the RSG does not
    need the sample to be a fully assembled PLA, which both shrinks
    the sample and frees the same cells for other architectures
    (decoders). *)

open Rsg_core

val and_sq : string

val or_sq : string

val connect_ao : string

val inbuf : string

val outbuf : string

val and_cross : string

val or_cross : string

val square : int
(** plane pitch (square cells are [square] x [square]) *)

val cross_offset : int
(** crosspoint masks sit at (cross_offset, cross_offset) inside their
    square *)

val assemblies : unit -> Rsg_layout.Cell.t list
(** Minimal sample: one assembly per interface. *)

val build : unit -> Sample.t * Sample.declaration list

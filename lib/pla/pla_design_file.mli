(** A PLA architecture written in the design-file language.

    Chapter 4 notes that "primitives for manipulating encoding tables
    (such as PLA truth tables) have also been added" and section 1.2.3
    that HPLA's phase split allowed "delayed binding of the specifics
    of the PLA encoding".  This module realises both: the PLA
    architecture is a design file; the encoding arrives as two-index
    arrays installed into the interpreter's global environment just
    before the run (the host-side half of the delayed binding); the
    sizes come from an ordinary parameter file.

    The generated layout must equal {!Gen.generate}'s output exactly
    — the same architecture expressed procedurally twice. *)

open Rsg_core

val text : string
(** The design-file source (macros [mrow], [mpla]). *)

val param_file : ninputs:int -> noutputs:int -> nterms:int -> name:string -> string
(** The parameter file personalising {!text} for the given sizes; the
    encoding tables ([lits] / [outs]) are host-installed globals, not
    parameters. *)

val generate :
  ?sample:Sample.t -> Truth_table.t -> Rsg_lang.Interp.state * Rsg_layout.Cell.t
(** Run the design file for a personality: parameters from the
    table's dimensions, encoding tables installed as globals. *)

val generate_decoder :
  ?sample:Sample.t -> int -> Rsg_lang.Interp.state * Rsg_layout.Cell.t
(** The same design file with [noutputs = 0] builds the minterm
    decoder (the OR plane and output buffers vanish), personalised
    with minterm literals. *)

(** PLA and decoder generation over the RSG core (section 1.2.2).

    The RSG "can generate any PLA that HPLA can" from a much smaller
    sample, because the architecture lives in the procedural side.
    [generate] tiles the AND plane (two columns per input), the
    connect-ao column, the OR plane and the buffer rows, and drops a
    programming crosspoint mask on every square the truth table
    selects.

    The same AND-plane cells also build decoders — the thesis's point
    that a sample layout does not imply one architecture.

    Verification is {e extraction-based}: {!read_back} recovers the
    personality from the flattened layout's crosspoint masks, and the
    result must equal the input table. *)

open Rsg_layout
open Rsg_core

type t = {
  cell : Cell.t;
  table : Truth_table.t;
  sample : Sample.t;
}

val generate : ?sample:Sample.t -> ?name:string -> Truth_table.t -> t
(** Raises [Failure] if the sample lacks a required cell or
    interface. *)

val read_back : t -> Truth_table.t
(** Reconstruct the personality from the generated layout. *)

val verify : t -> bool
(** [Truth_table.equal (read_back t) t.table] plus structural checks
    (every square on the grid). *)

val minterm_table : int -> Truth_table.t
(** The n-input decoder personality: 2^n minterm rows, row v driving
    output bit v.  Raises [Invalid_argument] outside 1..16. *)

val generate_decoder : ?sample:Sample.t -> ?name:string -> int -> t
(** [generate_decoder n]: an n-to-2^n minterm decoder built from the
    {e same} sample cells: AND plane of 2^n minterm rows feeding the
    connect-ao drivers — no OR plane.  The resulting truth table maps
    input v to output bit v. *)

val stats : t -> (string * int) list
(** Instance census of the generated layout, sorted by cell name. *)

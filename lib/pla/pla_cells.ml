open Rsg_geom
open Rsg_layout
open Rsg_core

let and_sq = "and-sq"

let or_sq = "or-sq"

let connect_ao = "connect-ao"

let inbuf = "inbuf"

let outbuf = "outbuf"

let and_cross = "and-cross"

let or_cross = "or-cross"

let square = 20

let cross_offset = 6

let box x y w h = Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h

let make_square name vert horiz =
  let c = Cell.create name in
  Cell.add_box c vert (box 8 0 4 square);
  Cell.add_box c horiz (box 0 8 square 4);
  c

let make_and_sq () = make_square and_sq Layer.Poly Layer.Metal

let make_or_sq () = make_square or_sq Layer.Metal Layer.Poly

let make_connect_ao () =
  let c = Cell.create connect_ao in
  Cell.add_box c Layer.Metal (box 0 8 square 4);
  Cell.add_box c Layer.Diffusion (box 6 4 8 12);
  Cell.add_box c Layer.Contact (box 8 8 4 4);
  c

let make_inbuf () =
  let c = Cell.create inbuf in
  (* drives the true and complement columns: twice the plane pitch *)
  Cell.add_box c Layer.Diffusion (box 2 4 ((2 * square) - 4) 12);
  Cell.add_box c Layer.Poly (box 8 0 4 20);
  Cell.add_box c Layer.Poly (box 28 0 4 20);
  Cell.add_box c Layer.Metal (box 0 16 (2 * square) 4);
  c

let make_outbuf () =
  let c = Cell.create outbuf in
  Cell.add_box c Layer.Diffusion (box 4 4 12 12);
  Cell.add_box c Layer.Metal (box 8 0 4 20);
  Cell.add_box c Layer.Metal (box 0 16 square 4);
  c

let make_cross name layer =
  let c = Cell.create name in
  Cell.add_box c layer (box 0 0 8 8);
  Cell.add_box c Layer.Contact_cut (box 2 2 4 4);
  c

let pair_assembly asm_name a ~at b ~label ~at_label =
  let asm = Cell.create asm_name in
  ignore (Cell.add_instance asm ~at:Vec.zero a);
  ignore (Cell.add_instance asm ~at b);
  Cell.add_label asm (string_of_int label) at_label;
  asm

let assemblies () =
  let asq = make_and_sq () in
  let osq = make_or_sq () in
  let cao = make_connect_ao () in
  let ib = make_inbuf () in
  let ob = make_outbuf () in
  let ac = make_cross and_cross Layer.Buried in
  let oc = make_cross or_cross Layer.Implant in
  [ pair_assembly "pla-and-h" asq asq ~at:(Vec.make square 0) ~label:1
      ~at_label:(Vec.make square 10);
    pair_assembly "pla-and-v" asq asq ~at:(Vec.make 0 square) ~label:2
      ~at_label:(Vec.make 10 square);
    pair_assembly "pla-or-h" osq osq ~at:(Vec.make square 0) ~label:1
      ~at_label:(Vec.make square 10);
    pair_assembly "pla-or-v" osq osq ~at:(Vec.make 0 square) ~label:2
      ~at_label:(Vec.make 10 square);
    pair_assembly "pla-and-cao" asq cao ~at:(Vec.make square 0) ~label:1
      ~at_label:(Vec.make square 10);
    pair_assembly "pla-cao-or" cao osq ~at:(Vec.make square 0) ~label:1
      ~at_label:(Vec.make square 10);
    pair_assembly "pla-and-inbuf" asq ib ~at:(Vec.make 0 square) ~label:1
      ~at_label:(Vec.make 10 square);
    (* bottom-entry buffer for folded columns: mirrored about x, hung
       below the square *)
    (let asm = Cell.create "pla-and-inbuf-bot" in
     ignore (Cell.add_instance asm ~at:Vec.zero asq);
     ignore (Cell.add_instance asm ~orient:Orient.mirror_x ~at:Vec.zero ib);
     Cell.add_label asm "2" (Vec.make 10 0);
     asm);
    pair_assembly "pla-or-outbuf" osq ob ~at:(Vec.make 0 square) ~label:1
      ~at_label:(Vec.make 10 square);
    pair_assembly "pla-and-cross" asq ac
      ~at:(Vec.make cross_offset cross_offset)
      ~label:1
      ~at_label:(Vec.make (cross_offset + 2) (cross_offset + 2));
    pair_assembly "pla-or-cross" osq oc
      ~at:(Vec.make cross_offset cross_offset)
      ~label:1
      ~at_label:(Vec.make (cross_offset + 2) (cross_offset + 2)) ]

let build () = Sample.of_assemblies (assemblies ())

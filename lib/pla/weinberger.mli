(** Weinberger arrays (section 1.2.1).

    The control-path structure Macpitts compiled into: a regular NOR
    array in which gates are columns, signals are rows, and a
    programming transistor at a crossing makes the signal an input of
    the gate.  Another of the "specific architectures" the thesis
    says first-generation module generators hard-coded — and that the
    RSG expresses as one more connectivity procedure over a small
    sample.

    A program is a list of NOR gates over signals; signal ids
    [0 .. n_primary-1] are the primary inputs and [n_primary + k] is
    the output of gate [k].  Gates may only read earlier signals
    (combinational, no feedback).

    Layout verification is extraction-based like the PLA's: crossing
    and output-tap masks are read back from the generated geometry
    and must reconstruct the program. *)

open Rsg_core

type program = {
  n_primary : int;
  gates : int list array;  (** gate k's input signal ids *)
}

exception Bad_program of string

val validate : program -> unit
(** Checks signal ranges and the forward-reference rule. *)

val n_signals : program -> int

val eval : program -> bool array -> bool array
(** NOR-evaluate; returns all signal values (primaries then gate
    outputs). *)

val inverter : program
(** The one-gate example: out = NOT in. *)

val of_truth_table : Truth_table.t -> program * int array
(** Compile two-level AND/OR logic to NOR gates (the double-rail
    trick: one inverter per input, one NOR per product term over the
    appropriately-polarised signals, and a NOR-NOR pair per output).
    Returns the program and the signal id of each output.  The
    compiled program NOR-evaluates to exactly the truth table —
    Macpitts's control path as the thesis describes it. *)

val eval_outputs : program -> int array -> bool array -> bool array
(** Evaluate and select the given output signals. *)

type t = {
  cell : Rsg_layout.Cell.t;
  prog : program;
  sample : Sample.t;
}

val build_sample : unit -> Sample.t * Sample.declaration list
(** The Weinberger leaf cells and their by-example interfaces. *)

val generate : ?sample:Sample.t -> ?name:string -> program -> t

val read_back : t -> program
(** Program reconstructed from the crossing/tap masks. *)

val verify : t -> bool
(** [read_back] reconstructs the program exactly, and the layout's
    row/column counts match. *)

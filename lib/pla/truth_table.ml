type literal = T | F | X

type term = { lits : literal array; outs : bool array }

type t = { n_inputs : int; n_outputs : int; terms : term list }

exception Malformed of string

let make ~n_inputs ~n_outputs terms =
  if n_inputs < 1 || n_outputs < 1 then
    raise (Malformed "need at least one input and one output");
  List.iteri
    (fun i t ->
      if Array.length t.lits <> n_inputs then
        raise (Malformed (Printf.sprintf "term %d: wrong input count" i));
      if Array.length t.outs <> n_outputs then
        raise (Malformed (Printf.sprintf "term %d: wrong output count" i)))
    terms;
  { n_inputs; n_outputs; terms }

let lit_of_char = function
  | '1' -> T
  | '0' -> F
  | '-' | 'x' | 'X' -> X
  | c -> raise (Malformed (Printf.sprintf "bad input character %c" c))

let out_of_char = function
  | '1' -> true
  | '0' -> false
  | c -> raise (Malformed (Printf.sprintf "bad output character %c" c))

let of_strings rows =
  match rows with
  | [] -> raise (Malformed "empty truth table")
  | (ins0, outs0) :: _ ->
    let n_inputs = String.length ins0 and n_outputs = String.length outs0 in
    let terms =
      List.map
        (fun (ins, outs) ->
          if String.length ins <> n_inputs || String.length outs <> n_outputs
          then raise (Malformed "ragged truth table");
          { lits = Array.init n_inputs (fun i -> lit_of_char ins.[i]);
            outs = Array.init n_outputs (fun i -> out_of_char outs.[i]) })
        rows
    in
    make ~n_inputs ~n_outputs terms

let to_strings t =
  List.map
    (fun term ->
      ( String.init t.n_inputs (fun i ->
            match term.lits.(i) with T -> '1' | F -> '0' | X -> '-'),
        String.init t.n_outputs (fun i -> if term.outs.(i) then '1' else '0') ))
    t.terms

let term_fires term inputs =
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      match lit with
      | T -> if not inputs.(i) then ok := false
      | F -> if inputs.(i) then ok := false
      | X -> ())
    term.lits;
  !ok

let eval t inputs =
  if Array.length inputs <> t.n_inputs then invalid_arg "Truth_table.eval";
  let out = Array.make t.n_outputs false in
  List.iter
    (fun term ->
      if term_fires term inputs then
        Array.iteri (fun k v -> if v then out.(k) <- true) term.outs)
    t.terms;
  out

let eval_int t v =
  let inputs = Array.init t.n_inputs (fun i -> v land (1 lsl i) <> 0) in
  let outs = eval t inputs in
  let r = ref 0 in
  Array.iteri (fun i b -> if b then r := !r lor (1 lsl i)) outs;
  !r

let n_crosspoints t =
  List.fold_left
    (fun (a, o) term ->
      let a' =
        Array.fold_left
          (fun acc lit -> if lit = X then acc else acc + 1)
          0 term.lits
      in
      let o' = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 term.outs in
      (a + a', o + o'))
    (0, 0) t.terms

let equal a b =
  a.n_inputs = b.n_inputs
  && a.n_outputs = b.n_outputs
  && (let all = 1 lsl a.n_inputs in
      let rec go v = v >= all || (eval_int a v = eval_int b v && go (v + 1)) in
      go 0)

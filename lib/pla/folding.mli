(** PLA column folding (section 1.2.3).

    The thesis claims the RSG "can also generate more complex PLAs
    such as PLAs with folded rows or columns" — architectures HPLA's
    fixed program could not produce.  This module implements input
    {e column} folding: two inputs whose product-term rows are
    disjoint can share one physical double-column of the AND plane,
    one driven from the top and one from the bottom, provided a row
    ordering exists that puts all of the first input's rows above all
    of the second's.

    Planning is the classical greedy heuristic: candidate pairs are
    accepted when their row-precedence constraints keep the precedence
    relation acyclic; the final row order is a topological sort.
    Optimal folding is NP-hard [Hachtel et al.]; greedy reproduces the
    architecture, which is what the claim is about.

    The folded layout is verified like the straight one: the
    personality is read back from the crosspoint masks (undoing the
    fold and the row permutation) and compared with the input. *)

open Rsg_core

type fold = {
  pairs : (int * int) list;  (** (top input, bottom input), 0-based *)
  singles : int list;        (** unfolded inputs, in slot order after pairs *)
  row_order : int array;     (** physical row -> original term index *)
  split : int array;
      (** per physical slot: first physical row belonging to the
          bottom input (irrelevant for singles) *)
}

val plan : Truth_table.t -> fold
(** Greedy folding plan.  [pairs] is maximal under the greedy order. *)

val rows_of : Truth_table.t -> int -> int list
(** Product-term rows where input column [i] carries a non-X literal,
    ascending. *)

val disjoint : Truth_table.t -> int -> int -> bool
(** Two input columns never participate in the same product term —
    the static precondition for folding them into one slot. *)

val acyclic : Truth_table.t -> (int * int) list -> bool
(** The row-precedence relation induced by an accepted pair list has a
    topological order, i.e. the fold is realisable. *)

val fold_of_pairs : Truth_table.t -> (int * int) list -> fold
(** Complete fold record for an explicit accepted pair list: derives
    singles, row order and split points.  Raises [Invalid_argument]
    if a column appears twice, two paired columns share a row, or the
    precedence relation is cyclic — i.e. iff the pair list would fail
    [disjoint]/[acyclic].  [fold_of_pairs tt (plan tt).pairs] equals
    [plan tt]. *)

val n_slots : fold -> int
(** Physical input slots = pairs + singles. *)

val columns_saved : Truth_table.t -> fold -> int
(** 2 physical columns per folded pair. *)

type t = {
  cell : Rsg_layout.Cell.t;
  table : Truth_table.t;
  fold : fold;
  sample : Sample.t;
}

val generate : ?sample:Sample.t -> ?name:string -> Truth_table.t -> t
(** The folded PLA layout under the greedy [plan]. *)

val generate_fold :
  ?sample:Sample.t -> ?name:string -> Truth_table.t -> fold -> t
(** The folded PLA layout under an explicit fold (see
    [fold_of_pairs]) — the evaluation kernel for search-based folding
    optimisation. *)

val read_back : t -> Truth_table.t
(** Personality recovered from the folded geometry, row order and
    fold undone. *)

val verify : t -> bool

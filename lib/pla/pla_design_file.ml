open Rsg_lang

let text =
  {|
;; PLA architecture as a design file.  Sizes come from the parameter
;; file; the encoding arrives as two global two-index arrays installed
;; by the host (delayed binding of the personality):
;;   lits.r.i  in {0 = complement, 1 = true, 2 = don't care}
;;   outs.r.k  boolean

(macro mrow (ninputs noutputs yloc)
  (locals a. o. caonode nxt foo)
  (mk_instance nxt andsq)
  (assign a.1 nxt)
  (do (c 2 (+ c 1) (> c (* 2 ninputs)))
    (mk_instance nxt andsq)
    (assign a.c nxt)
    (connect a.(- c 1) a.c andhnum))
  (mk_instance caonode caocell)
  (connect a.(* 2 ninputs) caonode andcaonum)
  (cond ((> noutputs 0)
         (prog
           (mk_instance nxt orsq)
           (assign o.1 nxt)
           (connect caonode o.1 caoornum)
           (do (k 2 (+ k 1) (> k noutputs))
             (mk_instance nxt orsq)
             (assign o.k nxt)
             (connect o.(- k 1) o.k orhnum)))))
  ;; programming crosspoints from the encoding tables
  (do (i 1 (+ i 1) (> i ninputs))
    (cond ((= lits.yloc.i 1)
           (connect a.(- (* 2 i) 1) (mk_instance foo andcross) acrossnum))
          ((= lits.yloc.i 0)
           (connect a.(* 2 i) (mk_instance foo andcross) acrossnum))))
  (do (k 1 (+ k 1) (> k noutputs))
    (cond (outs.yloc.k
           (connect o.k (mk_instance foo orcross) ocrossnum)))))

(macro mpla (ninputs noutputs nterms)
  (locals rows. foo)
  (assign rows.1 (mrow ninputs noutputs 1))
  (do (r 2 (+ r 1) (> r nterms))
    (assign rows.r (mrow ninputs noutputs r))
    (connect (subcell rows.(- r 1) a.1) (subcell rows.r a.1) andvnum))
  ;; buffers above the top row
  (do (i 1 (+ i 1) (> i ninputs))
    (connect (subcell rows.nterms a.(- (* 2 i) 1))
             (mk_instance foo inbufcell) inbufnum))
  (do (k 1 (+ k 1) (> k noutputs))
    (connect (subcell rows.nterms o.k) (mk_instance foo outbufcell) outbufnum))
  (mk_cell planame (subcell rows.1 a.1)))

(mpla ninputs noutputs nterms)
|}

let param_file ~ninputs ~noutputs ~nterms ~name =
  Printf.sprintf
    "ninputs=%d\nnoutputs=%d\nnterms=%d\nplaname=\"%s\"\n\
     andsq=%s\norsq=%s\ncaocell=%s\ninbufcell=%s\noutbufcell=%s\n\
     andcross=%s\norcross=%s\n\
     andhnum=1\nandvnum=2\norhnum=1\nandcaonum=1\ncaoornum=1\n\
     inbufnum=1\noutbufnum=1\nacrossnum=1\nocrossnum=1\n"
    ninputs noutputs nterms name Pla_cells.and_sq Pla_cells.or_sq
    Pla_cells.connect_ao Pla_cells.inbuf Pla_cells.outbuf Pla_cells.and_cross
    Pla_cells.or_cross

let install_tables st (tt : Truth_table.t) =
  let terms = Array.of_list tt.Truth_table.terms in
  let p = Array.length terms in
  let lits = Hashtbl.create (p * tt.Truth_table.n_inputs) in
  let outs = Hashtbl.create (max 1 (p * tt.Truth_table.n_outputs)) in
  Array.iteri
    (fun r term ->
      Array.iteri
        (fun i lit ->
          let v =
            match lit with
            | Truth_table.F -> 0
            | Truth_table.T -> 1
            | Truth_table.X -> 2
          in
          Hashtbl.replace lits (Value.Idx2 (r + 1, i + 1)) (Value.Vint v))
        term.Truth_table.lits;
      Array.iteri
        (fun k b ->
          Hashtbl.replace outs (Value.Idx2 (r + 1, k + 1)) (Value.Vbool b))
        term.Truth_table.outs)
    terms;
  Interp.define_global st "lits" (Value.Varray lits);
  Interp.define_global st "outs" (Value.Varray outs)

let run ?sample tt ~noutputs ~name =
  let sample =
    match sample with Some s -> s | None -> fst (Pla_cells.build ())
  in
  let st = Interp.of_sample sample in
  Interp.load_params st
    (Param.parse
       (param_file ~ninputs:tt.Truth_table.n_inputs ~noutputs
          ~nterms:(List.length tt.Truth_table.terms) ~name));
  install_tables st tt;
  ignore (Interp.run_string st text);
  match Interp.last_created st with
  | Some c -> (st, c)
  | None -> failwith "Pla_design_file: design file created no cell"

let generate ?sample tt =
  run ?sample tt ~noutputs:tt.Truth_table.n_outputs ~name:"pla"

let generate_decoder ?sample n =
  let tt = Gen.minterm_table n in
  run ?sample tt ~noutputs:0 ~name:"decoder"

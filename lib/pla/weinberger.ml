open Rsg_geom
open Rsg_layout
open Rsg_core

type program = { n_primary : int; gates : int list array }

exception Bad_program of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_program s)) fmt

let n_signals p = p.n_primary + Array.length p.gates

let validate p =
  if p.n_primary < 1 then fail "need at least one primary input";
  Array.iteri
    (fun k inputs ->
      if inputs = [] then fail "gate %d has no inputs" k;
      List.iter
        (fun s ->
          if s < 0 || s >= p.n_primary + k then
            fail "gate %d reads signal %d (must be an earlier signal)" k s)
        inputs)
    p.gates

let eval p primaries =
  validate p;
  if Array.length primaries <> p.n_primary then invalid_arg "Weinberger.eval";
  let values = Array.make (n_signals p) false in
  Array.blit primaries 0 values 0 p.n_primary;
  Array.iteri
    (fun k inputs ->
      values.(p.n_primary + k) <- not (List.exists (fun s -> values.(s)) inputs))
    p.gates;
  values

let inverter = { n_primary = 1; gates = [| [ 0 ] |] }

(* Compile a truth table to NOR-only logic:
   - inverters give the complemented rail of every input;
   - a product term is a NOR of the signals that must be LOW for it to
     fire (input i for an F literal would need... careful: term fires
     iff every T-literal input is 1 and every F-literal input is 0,
     i.e. iff NONE of {inv(i) | lit T} u {i | lit F} is high;
   - an output is OR of its terms = NOR(NOR(terms)). *)
let of_truth_table (tt : Truth_table.t) =
  let n = tt.Truth_table.n_inputs in
  let gates = ref [] in
  let count = ref 0 in
  let add inputs =
    gates := inputs :: !gates;
    let id = n + !count in
    incr count;
    id
  in
  let inv = Array.init n (fun i -> add [ i ]) in
  (* constants, created on demand *)
  let const_false = lazy (add [ 0; inv.(0) ]) in
  let terms =
    List.map
      (fun (term : Truth_table.term) ->
        let lows = ref [] in
        Array.iteri
          (fun i lit ->
            match lit with
            | Truth_table.T -> lows := inv.(i) :: !lows
            | Truth_table.F -> lows := i :: !lows
            | Truth_table.X -> ())
          term.Truth_table.lits;
        match !lows with
        | [] ->
          (* an all-don't-care term always fires: NOR(constant false) *)
          add [ Lazy.force const_false ]
        | lows -> add lows)
      tt.Truth_table.terms
  in
  let outputs =
    Array.init tt.Truth_table.n_outputs (fun k ->
        let driving =
          List.filteri
            (fun r _ ->
              (List.nth tt.Truth_table.terms r).Truth_table.outs.(k))
            terms
        in
        match driving with
        | [] ->
          (* never driven: constant false = NOR(NOR(constant false)) *)
          add [ add [ Lazy.force const_false ] ]
        | ds -> add [ add ds ])
  in
  let prog =
    { n_primary = n; gates = Array.of_list (List.rev !gates) }
  in
  validate prog;
  (prog, outputs)

let eval_outputs p output_ids primaries =
  let values = eval p primaries in
  Array.map (fun id -> values.(id)) output_ids

(* ------------------------------------------------------------------ *)
(* Cells and sample                                                    *)

let sq = 20

let col_cell = "wein-col"

let pullup_cell = "wein-pullup"

let cross_cell = "wein-cross"

let tap_cell = "wein-tap"

let input_cell = "wein-in"

let cross_at = Vec.make 6 6

let tap_at = Vec.make 10 2

let box x y w h = Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h

let make_col () =
  let c = Cell.create col_cell in
  (* gate column (diffusion pull-down chain) and signal row (poly) *)
  Cell.add_box c Layer.Diffusion (box 8 0 4 sq);
  Cell.add_box c Layer.Poly (box 0 8 sq 4);
  c

let make_pullup () =
  let c = Cell.create pullup_cell in
  Cell.add_box c Layer.Diffusion (box 8 0 4 12);
  Cell.add_box c Layer.Metal (box 0 12 sq 4);
  Cell.add_box c Layer.Contact (box 8 12 4 4);
  c

let make_cross () =
  let c = Cell.create cross_cell in
  Cell.add_box c Layer.Implant (box 0 0 8 8);
  c

let make_tap () =
  let c = Cell.create tap_cell in
  Cell.add_box c Layer.Buried (box 0 0 6 6);
  c

let make_input () =
  let c = Cell.create input_cell in
  Cell.add_box c Layer.Poly (box 4 8 20 4);
  Cell.add_box c Layer.Diffusion (box 2 2 12 14);
  Cell.add_box c Layer.Metal (box 0 0 4 sq);
  c

let pair name a ~at b ~label ~at_label =
  let asm = Cell.create name in
  ignore (Cell.add_instance asm ~at:Vec.zero a);
  ignore (Cell.add_instance asm ~at b);
  Cell.add_label asm (string_of_int label) at_label;
  asm

let build_sample () =
  let col = make_col () in
  let pu = make_pullup () in
  let cr = make_cross () in
  let tp = make_tap () in
  let inp = make_input () in
  Sample.of_assemblies
    [ pair "wein-h" col col ~at:(Vec.make sq 0) ~label:1
        ~at_label:(Vec.make sq 10);
      pair "wein-v" col col ~at:(Vec.make 0 sq) ~label:2
        ~at_label:(Vec.make 10 sq);
      pair "wein-pu" col pu ~at:(Vec.make 0 sq) ~label:1
        ~at_label:(Vec.make 10 sq);
      pair "wein-cr" col cr ~at:cross_at ~label:1
        ~at_label:(Vec.add cross_at (Vec.make 2 2));
      pair "wein-tp" col tp ~at:tap_at ~label:1
        ~at_label:(Vec.add tap_at (Vec.make 2 2));
      pair "wein-in" inp col ~at:(Vec.make 24 0) ~label:1
        ~at_label:(Vec.make 24 10) ]

(* ------------------------------------------------------------------ *)

type t = { cell : Cell.t; prog : program; sample : Sample.t }

let cell_of sample name =
  match Db.find sample.Sample.db name with
  | Some c -> c
  | None -> failwith ("Weinberger: sample lacks cell " ^ name)

let generate ?sample ?(name = "weinberger") prog =
  validate prog;
  let sample = match sample with Some s -> s | None -> fst (build_sample ()) in
  let db = sample.Sample.db and tbl = sample.Sample.table in
  let col = cell_of sample col_cell in
  let cols = Array.length prog.gates in
  let rows = n_signals prog in
  if cols < 1 then raise (Bad_program "no gates");
  let grid =
    Array.init cols (fun _ -> Array.init rows (fun _ -> Graph.mk_instance col))
  in
  for c = 0 to cols - 1 do
    for r = 1 to rows - 1 do
      Graph.connect grid.(c).(r - 1) grid.(c).(r) 2
    done
  done;
  for c = 1 to cols - 1 do
    Graph.connect grid.(c - 1).(0) grid.(c).(0) 1
  done;
  (* pull-up head on each gate column *)
  for c = 0 to cols - 1 do
    let pu = Graph.mk_instance (cell_of sample pullup_cell) in
    Graph.connect grid.(c).(rows - 1) pu 1
  done;
  (* input drivers on the primary rows, hung off column 0 *)
  for r = 0 to prog.n_primary - 1 do
    let inp = Graph.mk_instance (cell_of sample input_cell) in
    Graph.connect inp grid.(0).(r) 1
  done;
  (* programming masks *)
  Array.iteri
    (fun k inputs ->
      List.iter
        (fun s ->
          let x = Graph.mk_instance (cell_of sample cross_cell) in
          Graph.connect grid.(k).(s) x 1)
        inputs;
      let t = Graph.mk_instance (cell_of sample tap_cell) in
      Graph.connect grid.(k).(prog.n_primary + k) t 1)
    prog.gates;
  let cell_name = Db.fresh_name db name in
  let cell = Expand.mk_cell ~db tbl cell_name grid.(0).(0) in
  { cell; prog; sample }

let positions cell name =
  Flatten.instance_placements cell
  |> List.filter_map (fun (n, (t : Transform.t)) ->
         if String.equal n name then Some t.Transform.offset else None)

let read_back t =
  let prog = t.prog in
  let cols = Array.length prog.gates and rows = n_signals prog in
  let grid_of base (v : Vec.t) =
    let p = Vec.sub v base in
    if p.Vec.x mod sq <> 0 || p.Vec.y mod sq <> 0 then
      failwith "Weinberger.read_back: mask off grid";
    let c = p.Vec.x / sq and r = p.Vec.y / sq in
    if c < 0 || c >= cols || r < 0 || r >= rows then
      failwith "Weinberger.read_back: mask outside array";
    (c, r)
  in
  let inputs = Array.make cols [] in
  List.iter
    (fun v ->
      let c, r = grid_of cross_at v in
      inputs.(c) <- r :: inputs.(c))
    (positions t.cell cross_cell);
  let taps = Array.make cols (-1) in
  List.iter
    (fun v ->
      let c, r = grid_of tap_at v in
      if taps.(c) >= 0 then failwith "Weinberger.read_back: duplicate tap";
      taps.(c) <- r)
    (positions t.cell tap_cell);
  Array.iteri
    (fun k r ->
      if r <> prog.n_primary + k then
        failwith "Weinberger.read_back: tap on the wrong row")
    taps;
  { n_primary = prog.n_primary;
    gates = Array.map (List.sort_uniq Int.compare) inputs }

let verify t =
  let back = read_back t in
  let norm p = Array.map (List.sort_uniq Int.compare) p.gates in
  back.n_primary = t.prog.n_primary
  && norm back = norm t.prog
  &&
  let st = Flatten.stats t.cell in
  let get name = try List.assoc name st.Flatten.by_cell with Not_found -> 0 in
  get col_cell = Array.length t.prog.gates * n_signals t.prog
  && get pullup_cell = Array.length t.prog.gates
  && get input_cell = t.prog.n_primary

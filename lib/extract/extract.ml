open Rsg_geom
open Rsg_layout
module Scanline = Rsg_compact.Scanline
module Obs = Rsg_obs.Obs
module Par = Rsg_par.Par

exception Unknown_terminal of string

type device = {
  gate : Box.t;
  poly_item : int;
  diff_item : int;
  gate_net : int;
}

type netlist = {
  items : Scanline.item array;
  nets : int array;
  n_nets : int;
  devices : device list;
  terminals : (string * int) list;
}

let proper_overlap (a : Box.t) (b : Box.t) =
  a.Box.xmin < b.Box.xmax && b.Box.xmin < a.Box.xmax && a.Box.ymin < b.Box.ymax
  && b.Box.ymin < a.Box.ymax

let is_conductor = function
  | Layer.Metal | Layer.Poly | Layer.Diffusion | Layer.Contact
  | Layer.Contact_cut ->
    true
  | Layer.Implant | Layer.Buried | Layer.Overglass -> false

(* first index with keys.(i) >= x *)
let lower_bound keys x =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Raw gate regions — one per maximal poly-over-diffusion overlap —
   in deterministic per-poly order, plus the union-find classes that
   merge touching same-net regions into one transistor.  Diffusion is
   sorted by xmin once; each poly box then scans only the window of
   diffusion boxes whose x-span can reach it, instead of the full
   quadratic product.  The per-poly scans are independent, so they fan
   out across domains; results come back in poly order regardless of
   scheduling. *)
let gate_regions ~domains (items : Scanline.item array) nets =
  let n = Array.length items in
  let layer_indices l =
    let buf = ref [] in
    for i = n - 1 downto 0 do
      if items.(i).Scanline.layer = l then buf := i :: !buf
    done;
    Array.of_list !buf
  in
  let polys = layer_indices Layer.Poly in
  let diffs = layer_indices Layer.Diffusion in
  Array.sort
    (fun i j ->
      compare
        (items.(i).Scanline.box.Box.xmin, i)
        (items.(j).Scanline.box.Box.xmin, j))
    diffs;
  let diff_xmins =
    Array.map (fun j -> items.(j).Scanline.box.Box.xmin) diffs
  in
  let max_diff_width =
    Array.fold_left
      (fun acc j -> max acc (Box.width items.(j).Scanline.box))
      0 diffs
  in
  let gates_of_poly i =
    let pb = items.(i).Scanline.box in
    let out = ref [] in
    let k = ref (lower_bound diff_xmins (pb.Box.xmin - max_diff_width)) in
    while !k < Array.length diffs && diff_xmins.(!k) < pb.Box.xmax do
      let j = diffs.(!k) in
      let db = items.(j).Scanline.box in
      (if proper_overlap pb db then
         match Box.intersect pb db with
         | Some g ->
           out :=
             { gate = g; poly_item = i; diff_item = j; gate_net = nets.(i) }
             :: !out
         | None -> ());
      incr k
    done;
    List.rev !out
  in
  let per_poly = Par.chunked_map ~domains ~chunk:16 gates_of_poly polys in
  let gates = Array.of_list (List.concat (Array.to_list per_poly)) in
  (* merge touching gate regions of the same gate net, via the shared
     plane sweep instead of the old all-pairs loop *)
  let parent = Array.init (Array.length gates) Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  Scanline.sweep_pairs
    (Array.map (fun d -> d.gate) gates)
    (fun i j ->
      if
        gates.(i).gate_net = gates.(j).gate_net
        && Box.overlaps gates.(i).gate gates.(j).gate
      then begin
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      end);
  (gates, Array.init (Array.length gates) find)

let of_items ?(rules = Rsg_compact.Rules.default) ?domains items labels =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  let nets = Obs.span "extract.nets" @@ fun () -> Scanline.nets_of rules items in
  let n = Array.length items in
  (* count distinct nets over conductor items only *)
  let reps = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if is_conductor items.(i).Scanline.layer then
      Hashtbl.replace reps nets.(i) ()
  done;
  let devices =
    Obs.span "extract.devices" @@ fun () ->
    let gates, classes = gate_regions ~domains items nets in
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    Array.iteri
      (fun i d ->
        let r = classes.(i) in
        match Hashtbl.find_opt tbl r with
        | None ->
          Hashtbl.replace tbl r d;
          order := r :: !order
        | Some d0 ->
          Hashtbl.replace tbl r { d0 with gate = Box.union d0.gate d.gate })
      gates;
    List.rev_map (fun r -> Hashtbl.find tbl r) !order
  in
  let terminals =
    Obs.span "extract.terminals" @@ fun () ->
    let hunt (text, at) =
      let rec go i =
        if i >= n then None
        else if
          is_conductor items.(i).Scanline.layer
          && Box.contains items.(i).Scanline.box at
        then Some (text, nets.(i))
        else go (i + 1)
      in
      go 0
    in
    Array.to_list (Par.map ~domains hunt (Array.of_list labels))
    |> List.filter_map Fun.id
  in
  Obs.count ~n:(List.length devices) "extract.devices";
  { items; nets; n_nets = Hashtbl.length reps; devices; terminals }

let of_cell ?rules ?domains cell =
  let f = Flatten.flatten cell in
  of_items ?rules ?domains
    (Scanline.items_of_flat f)
    (Array.to_list f.Flatten.flat_labels)

let n_devices nl = List.length nl.devices

let net_of_terminal nl name = List.assoc_opt name nl.terminals

let connected nl a b =
  match net_of_terminal nl a with
  | None -> raise (Unknown_terminal a)
  | Some na -> (
    match net_of_terminal nl b with
    | None -> raise (Unknown_terminal b)
    | Some nb -> na = nb)

(* ------------------------------------------------------------------ *)
(* MOS netlists: diffusion split by the gate into source/drain nets   *)
(* ------------------------------------------------------------------ *)

type mos = {
  m_gate : Box.t;
  m_gate_net : int;
  m_source : int option;
  m_drain : int option;
}

type mos_netlist = {
  mn_items : Scanline.item array;
  mn_nets : int array;
  mn_n_nets : int;
  mn_mos : mos array;
  mn_terminals : (string * int) list;
  mn_unresolved : string list;
}

(* [f] is left of / right of / below / above rect [r] with a shared
   edge of positive length — corner-only touch is no connection. *)
let side_touch (f : Box.t) (r : Box.t) =
  let xov = min f.Box.xmax r.Box.xmax - max f.Box.xmin r.Box.xmin in
  let yov = min f.Box.ymax r.Box.ymax - max f.Box.ymin r.Box.ymin in
  if f.Box.xmax = r.Box.xmin && yov > 0 then Some `Left
  else if f.Box.xmin = r.Box.xmax && yov > 0 then Some `Right
  else if f.Box.ymax = r.Box.ymin && xov > 0 then Some `Below
  else if f.Box.ymin = r.Box.ymax && xov > 0 then Some `Above
  else None

let mos_of_items ?(rules = Rsg_compact.Rules.default) ?domains items labels =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  Obs.span "extract.mos" @@ fun () ->
  let nets0 = Scanline.nets_of rules items in
  let gates, classes = gate_regions ~domains items nets0 in
  let ng = Array.length gates in
  (* gate rects per diffusion item, in raw gate order *)
  let cuts_of_diff : (int, Box.t list) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt cuts_of_diff g.diff_item)
      in
      Hashtbl.replace cuts_of_diff g.diff_item (g.gate :: prev))
    gates;
  (* rebuild the item array with each diffusion box replaced by its
     gate-free fragments; non-diffusion items keep their layer and box
     and are remapped to their new index *)
  let n = Array.length items in
  let remap = Array.make n (-1) in
  let out = ref [] and count = ref 0 in
  let frags_of_diff : (int, (int * Box.t) list) Hashtbl.t = Hashtbl.create 16 in
  let push it =
    out := it :: !out;
    let idx = !count in
    incr count;
    idx
  in
  Array.iteri
    (fun j it ->
      if it.Scanline.layer = Layer.Diffusion then begin
        let cuts =
          List.rev
            (Option.value ~default:[] (Hashtbl.find_opt cuts_of_diff j))
        in
        let frags =
          List.fold_left
            (fun fs cut -> List.concat_map (fun f -> Box.subtract f cut) fs)
            [ it.Scanline.box ] cuts
        in
        List.iter
          (fun b ->
            let idx = push { Scanline.layer = Layer.Diffusion; box = b } in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt frags_of_diff j)
            in
            Hashtbl.replace frags_of_diff j ((idx, b) :: prev))
          frags
      end
      else remap.(j) <- push it)
    items;
  let mn_items = Array.of_list (List.rev !out) in
  let mn_nets = Scanline.nets_of rules mn_items in
  let reps = Hashtbl.create 16 in
  Array.iteri
    (fun i it ->
      if is_conductor it.Scanline.layer then Hashtbl.replace reps mn_nets.(i) ())
    mn_items;
  (* source/drain per merged transistor: the nets of the diffusion
     fragments sharing an edge with its gate rects.  Left/below
     fragments are the source side, right/above the drain side — a
     fixed geometric convention, so the triple is deterministic.  A
     side with no fragment (the gate runs to the diffusion edge) stays
     [None]: a dangling device for the ERC. *)
  let mos_tbl : (int, mos) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let pick old n =
    match old with Some m when m <= n -> old | _ -> Some n
  in
  for gi = 0 to ng - 1 do
    let g = gates.(gi) in
    let r = classes.(gi) in
    let cur =
      match Hashtbl.find_opt mos_tbl r with
      | Some m -> m
      | None ->
        order := r :: !order;
        { m_gate = g.gate;
          m_gate_net = mn_nets.(remap.(g.poly_item));
          m_source = None;
          m_drain = None }
    in
    let cur = ref { cur with m_gate = Box.union cur.m_gate g.gate } in
    List.iter
      (fun (idx, b) ->
        match side_touch b g.gate with
        | Some (`Left | `Below) ->
          cur := { !cur with m_source = pick !cur.m_source mn_nets.(idx) }
        | Some (`Right | `Above) ->
          cur := { !cur with m_drain = pick !cur.m_drain mn_nets.(idx) }
        | None -> ())
      (List.rev
         (Option.value ~default:[] (Hashtbl.find_opt frags_of_diff g.diff_item)));
    Hashtbl.replace mos_tbl r !cur
  done;
  let mn_mos =
    Array.of_list (List.rev_map (fun r -> Hashtbl.find mos_tbl r) !order)
  in
  (* terminals against the split geometry; labels over no conductor
     (e.g. over a gate channel) are reported, not dropped *)
  let mn = Array.length mn_items in
  let resolved =
    let hunt (text, at) =
      let rec go i =
        if i >= mn then (text, None)
        else if
          is_conductor mn_items.(i).Scanline.layer
          && Box.contains mn_items.(i).Scanline.box at
        then (text, Some mn_nets.(i))
        else go (i + 1)
      in
      go 0
    in
    Array.to_list (Par.map ~domains hunt (Array.of_list labels))
  in
  let mn_terminals =
    List.filter_map
      (fun (t, n) -> match n with Some n -> Some (t, n) | None -> None)
      resolved
  in
  let mn_unresolved =
    List.filter_map
      (fun (t, n) -> match n with None -> Some t | Some _ -> None)
      resolved
  in
  Obs.count ~n:(Array.length mn_mos) "extract.mos";
  { mn_items;
    mn_nets;
    mn_n_nets = Hashtbl.length reps;
    mn_mos;
    mn_terminals;
    mn_unresolved }

let mos_of_flat ?rules ?domains (f : Flatten.flat) =
  mos_of_items ?rules ?domains
    (Scanline.items_of_flat f)
    (Array.to_list f.Flatten.flat_labels)

let mos_of_cell ?rules ?domains cell =
  mos_of_flat ?rules ?domains (Flatten.flatten cell)

let n_mos mn = Array.length mn.mn_mos

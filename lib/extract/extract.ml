open Rsg_geom
open Rsg_layout
module Scanline = Rsg_compact.Scanline
module Obs = Rsg_obs.Obs
module Par = Rsg_par.Par

type device = {
  gate : Box.t;
  poly_item : int;
  diff_item : int;
  gate_net : int;
}

type netlist = {
  items : Scanline.item array;
  nets : int array;
  n_nets : int;
  devices : device list;
  terminals : (string * int) list;
}

let proper_overlap (a : Box.t) (b : Box.t) =
  a.Box.xmin < b.Box.xmax && b.Box.xmin < a.Box.xmax && a.Box.ymin < b.Box.ymax
  && b.Box.ymin < a.Box.ymax

let is_conductor = function
  | Layer.Metal | Layer.Poly | Layer.Diffusion | Layer.Contact
  | Layer.Contact_cut ->
    true
  | Layer.Implant | Layer.Buried | Layer.Overglass -> false

(* first index with keys.(i) >= x *)
let lower_bound keys x =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let of_items ?(rules = Rsg_compact.Rules.default) ?domains items labels =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  let nets = Obs.span "extract.nets" @@ fun () -> Scanline.nets_of rules items in
  let n = Array.length items in
  (* count distinct nets over conductor items only *)
  let reps = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if is_conductor items.(i).Scanline.layer then
      Hashtbl.replace reps nets.(i) ()
  done;
  (* devices: one per maximal poly-over-diffusion overlap region.
     Diffusion is sorted by xmin once; each poly box then scans only
     the window of diffusion boxes whose x-span can reach it, instead
     of the full quadratic product.  The per-poly scans are
     independent, so they fan out across domains; results come back in
     poly order regardless of scheduling. *)
  let devices =
    Obs.span "extract.devices" @@ fun () ->
    let layer_indices l =
      let buf = ref [] in
      for i = n - 1 downto 0 do
        if items.(i).Scanline.layer = l then buf := i :: !buf
      done;
      Array.of_list !buf
    in
    let polys = layer_indices Layer.Poly in
    let diffs = layer_indices Layer.Diffusion in
    Array.sort
      (fun i j ->
        compare
          (items.(i).Scanline.box.Box.xmin, i)
          (items.(j).Scanline.box.Box.xmin, j))
      diffs;
    let diff_xmins =
      Array.map (fun j -> items.(j).Scanline.box.Box.xmin) diffs
    in
    let max_diff_width =
      Array.fold_left
        (fun acc j -> max acc (Box.width items.(j).Scanline.box))
        0 diffs
    in
    let gates_of_poly i =
      let pb = items.(i).Scanline.box in
      let out = ref [] in
      let k = ref (lower_bound diff_xmins (pb.Box.xmin - max_diff_width)) in
      while
        !k < Array.length diffs && diff_xmins.(!k) < pb.Box.xmax
      do
        let j = diffs.(!k) in
        let db = items.(j).Scanline.box in
        (if proper_overlap pb db then
           match Box.intersect pb db with
           | Some g ->
             out :=
               { gate = g; poly_item = i; diff_item = j; gate_net = nets.(i) }
               :: !out
           | None -> ());
        incr k
      done;
      List.rev !out
    in
    let per_poly = Par.chunked_map ~domains ~chunk:16 gates_of_poly polys in
    let gates = Array.of_list (List.concat (Array.to_list per_poly)) in
    (* merge touching gate regions of the same gate net, via the shared
       plane sweep instead of the old all-pairs loop *)
    let parent = Array.init (Array.length gates) Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    Scanline.sweep_pairs
      (Array.map (fun d -> d.gate) gates)
      (fun i j ->
        if
          gates.(i).gate_net = gates.(j).gate_net
          && Box.overlaps gates.(i).gate gates.(j).gate
        then begin
          let ri = find i and rj = find j in
          if ri <> rj then parent.(ri) <- rj
        end);
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    Array.iteri
      (fun i d ->
        let r = find i in
        match Hashtbl.find_opt tbl r with
        | None ->
          Hashtbl.replace tbl r d;
          order := r :: !order
        | Some d0 ->
          Hashtbl.replace tbl r { d0 with gate = Box.union d0.gate d.gate })
      gates;
    List.rev_map (fun r -> Hashtbl.find tbl r) !order
  in
  let terminals =
    Obs.span "extract.terminals" @@ fun () ->
    let hunt (text, at) =
      let rec go i =
        if i >= n then None
        else if
          is_conductor items.(i).Scanline.layer
          && Box.contains items.(i).Scanline.box at
        then Some (text, nets.(i))
        else go (i + 1)
      in
      go 0
    in
    Array.to_list (Par.map ~domains hunt (Array.of_list labels))
    |> List.filter_map Fun.id
  in
  Obs.count ~n:(List.length devices) "extract.devices";
  { items; nets; n_nets = Hashtbl.length reps; devices; terminals }

let of_cell ?rules ?domains cell =
  let f = Flatten.flatten cell in
  of_items ?rules ?domains
    (Scanline.items_of_flat f)
    (Array.to_list f.Flatten.flat_labels)

let n_devices nl = List.length nl.devices

let net_of_terminal nl name = List.assoc_opt name nl.terminals

let connected nl a b =
  match (net_of_terminal nl a, net_of_terminal nl b) with
  | Some na, Some nb -> na = nb
  | _ -> raise Not_found

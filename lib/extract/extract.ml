open Rsg_geom
open Rsg_layout

type device = {
  gate : Box.t;
  poly_item : int;
  diff_item : int;
  gate_net : int;
}

type netlist = {
  items : Rsg_compact.Scanline.item array;
  nets : int array;
  n_nets : int;
  devices : device list;
  terminals : (string * int) list;
}

let proper_overlap (a : Box.t) (b : Box.t) =
  a.Box.xmin < b.Box.xmax && b.Box.xmin < a.Box.xmax && a.Box.ymin < b.Box.ymax
  && b.Box.ymin < a.Box.ymax

let is_conductor = function
  | Layer.Metal | Layer.Poly | Layer.Diffusion | Layer.Contact
  | Layer.Contact_cut ->
    true
  | Layer.Implant | Layer.Buried | Layer.Overglass -> false

let of_items ?(rules = Rsg_compact.Rules.default) items labels =
  let nets = Rsg_compact.Scanline.nets_of rules items in
  let n = Array.length items in
  (* count distinct nets over conductor items only *)
  let reps = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if is_conductor items.(i).Rsg_compact.Scanline.layer then
      Hashtbl.replace reps nets.(i) ()
  done;
  (* devices: one per maximal poly-over-diffusion overlap region.
     Overlapping gate rectangles from fragmented poly or diffusion are
     merged so a transistor drawn in pieces counts once. *)
  let raw_gates = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = items.(i) and b = items.(j) in
      if
        a.Rsg_compact.Scanline.layer = Layer.Poly
        && b.Rsg_compact.Scanline.layer = Layer.Diffusion
        && proper_overlap a.Rsg_compact.Scanline.box b.Rsg_compact.Scanline.box
      then
        match
          Box.intersect a.Rsg_compact.Scanline.box b.Rsg_compact.Scanline.box
        with
        | Some g ->
          raw_gates :=
            { gate = g; poly_item = i; diff_item = j; gate_net = nets.(i) }
            :: !raw_gates
        | None -> ()
    done
  done;
  (* merge touching gate regions of the same gate net *)
  let gates = Array.of_list !raw_gates in
  let parent = Array.init (Array.length gates) Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  for i = 0 to Array.length gates - 1 do
    for j = i + 1 to Array.length gates - 1 do
      if
        gates.(i).gate_net = gates.(j).gate_net
        && Box.overlaps gates.(i).gate gates.(j).gate
      then begin
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      end
    done
  done;
  let devices =
    Array.to_list
      (Array.of_seq
         (Hashtbl.to_seq_values
            (let tbl = Hashtbl.create 16 in
             Array.iteri
               (fun i d ->
                 let r = find i in
                 match Hashtbl.find_opt tbl r with
                 | None -> Hashtbl.replace tbl r d
                 | Some d0 ->
                   Hashtbl.replace tbl r { d0 with gate = Box.union d0.gate d.gate })
               gates;
             tbl)))
  in
  let terminals =
    List.filter_map
      (fun (text, at) ->
        let rec hunt i =
          if i >= n then None
          else if
            is_conductor items.(i).Rsg_compact.Scanline.layer
            && Box.contains items.(i).Rsg_compact.Scanline.box at
          then Some (text, nets.(i))
          else hunt (i + 1)
        in
        hunt 0)
      labels
  in
  { items; nets; n_nets = Hashtbl.length reps; devices; terminals }

let of_cell ?rules cell =
  let f = Flatten.flatten cell in
  let items =
    Array.of_list
      (List.map
         (fun (layer, box) -> { Rsg_compact.Scanline.layer; box })
         f.Flatten.flat_boxes)
  in
  of_items ?rules items f.Flatten.flat_labels

let n_devices nl = List.length nl.devices

let net_of_terminal nl name = List.assoc_opt name nl.terminals

let connected nl a b =
  match (net_of_terminal nl a, net_of_terminal nl b) with
  | Some na, Some nb -> na = nb
  | _ -> raise Not_found

(** Circuit extraction (the thesis's flow used EXCL [23] for this
    step: "using the RSG for layout generation, EXCL for circuit
    extraction, and SPICE for circuit simulation").

    A deliberately small extractor over flattened box geometry:

    - {e nets}: connected components of touching geometry on
      connecting layers (the same union-find the compactor uses);
    - {e devices}: MOS transistors, one per maximal poly-over-diffusion
      overlap region, with gate dimensions;
    - {e terminals}: labels resolved to the net under them.

    Enough to close the generation -> extraction loop in tests: the
    multiplier's transistor census must follow its personalisation
    rules, and every named terminal must land on a distinct net. *)

open Rsg_geom
open Rsg_layout

exception Unknown_terminal of string
(** A terminal name that resolves to no net — raised by {!connected}
    with the offending label, so callers can say which of the two
    names was missing. *)

type device = {
  gate : Box.t;        (** the poly-diffusion overlap region *)
  poly_item : int;
  diff_item : int;
  gate_net : int;      (** net of the poly gate *)
}

type netlist = {
  items : Rsg_compact.Scanline.item array;
  nets : int array;          (** per item, representative index *)
  n_nets : int;              (** distinct conductor nets *)
  devices : device list;
  terminals : (string * int) list;  (** label -> net (labels on conductors) *)
}

val of_items :
  ?rules:Rsg_compact.Rules.t ->
  ?domains:int ->
  Rsg_compact.Scanline.item array -> (string * Vec.t) list -> netlist
(** Extract from flat geometry plus labels.  Device detection scans a
    sorted diffusion window per poly box (no all-pairs loop) and fans
    the per-poly scans plus terminal resolution out across [domains]
    domains ({!Rsg_par.Par.default_domains} when omitted); results are
    identical for every pool size.  Instrumented with [Obs] spans
    ([extract.nets], [extract.devices], [extract.terminals]). *)

val of_cell : ?rules:Rsg_compact.Rules.t -> ?domains:int -> Cell.t -> netlist
(** Flatten and extract. *)

val n_devices : netlist -> int

val net_of_terminal : netlist -> string -> int option

val connected : netlist -> string -> string -> bool
(** Do two named terminals share a net?  Raises {!Unknown_terminal}
    naming the first label (left argument checked first) that resolves
    to no net. *)

(** {1 MOS netlists}

    The richer extraction the ERC runs on: each diffusion box is split
    into the fragments left over around its gate regions
    ({!Rsg_geom.Box.subtract}), nets are recomputed over the split
    geometry — so the channel no longer shorts source to drain — and
    every merged transistor becomes a (gate, source, drain) net
    triple. *)

type mos = {
  m_gate : Box.t;      (** union of the merged gate regions *)
  m_gate_net : int;    (** net of the poly gate, in [mn_nets] space *)
  m_source : int option;
      (** net of the diffusion fragments on the left/below side of the
          gate; [None] when the gate runs to the diffusion edge *)
  m_drain : int option;  (** right/above side, same convention *)
}

type mos_netlist = {
  mn_items : Rsg_compact.Scanline.item array;
      (** the input items with each diffusion box replaced by its
          gate-free fragments (deterministic order) *)
  mn_nets : int array;   (** per split item, representative index *)
  mn_n_nets : int;       (** distinct conductor nets after the split *)
  mn_mos : mos array;
  mn_terminals : (string * int) list;
  mn_unresolved : string list;
      (** labels over no conductor (e.g. over a gate channel), in
          input order — [of_items] silently drops these *)
}

val mos_of_items :
  ?rules:Rsg_compact.Rules.t ->
  ?domains:int ->
  Rsg_compact.Scanline.item array -> (string * Vec.t) list -> mos_netlist
(** Split-diffusion extraction.  Device census and merging agree with
    {!of_items} ([n_mos] equals [n_devices] on the same geometry);
    results are identical for every pool size.  Instrumented with the
    [extract.mos] Obs span and counter. *)

val mos_of_flat :
  ?rules:Rsg_compact.Rules.t -> ?domains:int -> Flatten.flat -> mos_netlist

val mos_of_cell :
  ?rules:Rsg_compact.Rules.t -> ?domains:int -> Cell.t -> mos_netlist

val n_mos : mos_netlist -> int

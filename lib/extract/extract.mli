(** Circuit extraction (the thesis's flow used EXCL [23] for this
    step: "using the RSG for layout generation, EXCL for circuit
    extraction, and SPICE for circuit simulation").

    A deliberately small extractor over flattened box geometry:

    - {e nets}: connected components of touching geometry on
      connecting layers (the same union-find the compactor uses);
    - {e devices}: MOS transistors, one per maximal poly-over-diffusion
      overlap region, with gate dimensions;
    - {e terminals}: labels resolved to the net under them.

    Enough to close the generation -> extraction loop in tests: the
    multiplier's transistor census must follow its personalisation
    rules, and every named terminal must land on a distinct net. *)

open Rsg_geom
open Rsg_layout

type device = {
  gate : Box.t;        (** the poly-diffusion overlap region *)
  poly_item : int;
  diff_item : int;
  gate_net : int;      (** net of the poly gate *)
}

type netlist = {
  items : Rsg_compact.Scanline.item array;
  nets : int array;          (** per item, representative index *)
  n_nets : int;              (** distinct conductor nets *)
  devices : device list;
  terminals : (string * int) list;  (** label -> net (labels on conductors) *)
}

val of_items :
  ?rules:Rsg_compact.Rules.t ->
  ?domains:int ->
  Rsg_compact.Scanline.item array -> (string * Vec.t) list -> netlist
(** Extract from flat geometry plus labels.  Device detection scans a
    sorted diffusion window per poly box (no all-pairs loop) and fans
    the per-poly scans plus terminal resolution out across [domains]
    domains ({!Rsg_par.Par.default_domains} when omitted); results are
    identical for every pool size.  Instrumented with [Obs] spans
    ([extract.nets], [extract.devices], [extract.terminals]). *)

val of_cell : ?rules:Rsg_compact.Rules.t -> ?domains:int -> Cell.t -> netlist
(** Flatten and extract. *)

val n_devices : netlist -> int

val net_of_terminal : netlist -> string -> int option

val connected : netlist -> string -> string -> bool
(** Do two named terminals share a net?  Raises [Not_found] if either
    label is missing. *)

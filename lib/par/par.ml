module Obs = Rsg_obs.Obs

let recommended () = Domain.recommended_domain_count ()

let default_domains () =
  match Sys.getenv_opt "RSG_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> recommended ())
  | None -> recommended ()

(* Run [body i] for every [i < n] on [d] domains (d - 1 spawned plus
   the caller), chunk self-scheduling off one atomic counter.  Every
   domain is joined before anything is raised; per-domain busy times
   are handed back for the caller to record. *)
let run_chunks ~domains:d ~chunk n body =
  let next = Atomic.make 0 in
  let worker () =
    let t0 = Unix.gettimeofday () in
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          body i
        done;
        loop ()
      end
    in
    loop ();
    Unix.gettimeofday () -. t0
  in
  let others = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
  let mine = try Ok (worker ()) with e -> Error e in
  let joined =
    Array.map (fun dom -> try Ok (Domain.join dom) with e -> Error e) others
  in
  let results = Array.append [| mine |] joined in
  if Obs.is_enabled () then
    Array.iteri
      (fun k r ->
        match r with
        | Ok seconds -> Obs.record (Printf.sprintf "par.domain%d" k) seconds
        | Error _ -> ())
      results;
  Array.iter (function Error e -> raise e | Ok _ -> ()) results

let map_in ~domains:d ~chunk span_name f xs =
  let n = Array.length xs in
  let d = max 1 (min d n) in
  if d = 1 then Array.map f xs
  else
    Obs.span span_name @@ fun () ->
    let out = Array.make n None in
    run_chunks ~domains:d ~chunk n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out

let map ?domains f xs =
  let d = match domains with Some d -> d | None -> default_domains () in
  (* contiguous chunks a few per domain: cheap scheduling for roughly
     uniform elements, still some balancing slack *)
  let chunk = max 1 (Array.length xs / (max 1 d * 4)) in
  map_in ~domains:d ~chunk "par.map" f xs

let chunked_map ?domains ?(chunk = 1) f xs =
  let d = match domains with Some d -> d | None -> default_domains () in
  map_in ~domains:d ~chunk:(max 1 chunk) "par.chunked_map" f xs

(* A resident pool: [map] spawns and joins domains per call, which is
   the right shape for a one-shot CLI but not for a daemon that fields
   thousands of small jobs — there the spawn/join cost and the domain
   churn dominate.  [Pool] keeps the workers alive and feeds them off
   one locked queue; the queue bound is the admission-control surface
   the serve layer builds on. *)
module Pool = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;  (* signalled on submit and on shutdown *)
    idle : Condition.t;      (* signalled when a worker finishes a task *)
    queue : (unit -> unit) Queue.t;
    max_pending : int;
    mutable running : int;   (* tasks currently executing *)
    mutable stopping : bool;
    workers : unit Domain.t array Lazy.t;
    mutable joined : bool;
  }

  let worker_loop t () =
    let rec next () =
      Mutex.lock t.mutex;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.nonempty t.mutex
      done;
      if Queue.is_empty t.queue then begin
        (* stopping and drained *)
        Mutex.unlock t.mutex;
        ()
      end
      else begin
        let task = Queue.pop t.queue in
        t.running <- t.running + 1;
        Mutex.unlock t.mutex;
        (* a raising task must not take the worker down with it: the
           submitter owns error reporting, the pool only owns threads *)
        (try task () with _ -> ());
        Mutex.lock t.mutex;
        t.running <- t.running - 1;
        Condition.broadcast t.idle;
        Mutex.unlock t.mutex;
        next ()
      end
    in
    next ()

  let create ?(max_pending = 0) ~domains () =
    let d = max 1 domains in
    let rec t =
      { mutex = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        queue = Queue.create ();
        max_pending;
        running = 0;
        stopping = false;
        workers = lazy (Array.init d (fun _ -> Domain.spawn (worker_loop t)));
        joined = false }
    in
    ignore (Lazy.force t.workers);
    t

  let size t = Array.length (Lazy.force t.workers)

  let try_submit t task =
    Mutex.lock t.mutex;
    let accepted =
      (not t.stopping)
      && (t.max_pending <= 0 || Queue.length t.queue < t.max_pending)
    in
    if accepted then begin
      Queue.push task t.queue;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mutex;
    accepted

  let pending t =
    Mutex.lock t.mutex;
    let n = Queue.length t.queue in
    Mutex.unlock t.mutex;
    n

  let wait_idle t =
    Mutex.lock t.mutex;
    while not (Queue.is_empty t.queue && t.running = 0) do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex

  let shutdown t =
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    if not t.joined then begin
      t.joined <- true;
      Array.iter Domain.join (Lazy.force t.workers)
    end
end

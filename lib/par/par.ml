module Obs = Rsg_obs.Obs

let recommended () = Domain.recommended_domain_count ()

let default_domains () =
  match Sys.getenv_opt "RSG_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> recommended ())
  | None -> recommended ()

(* Run [body i] for every [i < n] on [d] domains (d - 1 spawned plus
   the caller), chunk self-scheduling off one atomic counter.  Every
   domain is joined before anything is raised; per-domain busy times
   are handed back for the caller to record. *)
let run_chunks ~domains:d ~chunk n body =
  let next = Atomic.make 0 in
  let worker () =
    let t0 = Unix.gettimeofday () in
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          body i
        done;
        loop ()
      end
    in
    loop ();
    Unix.gettimeofday () -. t0
  in
  let others = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
  let mine = try Ok (worker ()) with e -> Error e in
  let joined =
    Array.map (fun dom -> try Ok (Domain.join dom) with e -> Error e) others
  in
  let results = Array.append [| mine |] joined in
  if Obs.is_enabled () then
    Array.iteri
      (fun k r ->
        match r with
        | Ok seconds -> Obs.record (Printf.sprintf "par.domain%d" k) seconds
        | Error _ -> ())
      results;
  Array.iter (function Error e -> raise e | Ok _ -> ()) results

let map_in ~domains:d ~chunk span_name f xs =
  let n = Array.length xs in
  let d = max 1 (min d n) in
  if d = 1 then Array.map f xs
  else
    Obs.span span_name @@ fun () ->
    let out = Array.make n None in
    run_chunks ~domains:d ~chunk n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out

let map ?domains f xs =
  let d = match domains with Some d -> d | None -> default_domains () in
  (* contiguous chunks a few per domain: cheap scheduling for roughly
     uniform elements, still some balancing slack *)
  let chunk = max 1 (Array.length xs / (max 1 d * 4)) in
  map_in ~domains:d ~chunk "par.map" f xs

let chunked_map ?domains ?(chunk = 1) f xs =
  let d = match domains with Some d -> d | None -> default_domains () in
  map_in ~domains:d ~chunk:(max 1 chunk) "par.chunked_map" f xs

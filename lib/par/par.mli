(** A small dependency-free domain pool over OCaml 5 [Domain].

    [map] and [chunked_map] fan an array of independent tasks out
    across [domains] domains ([d - 1] spawned workers plus the calling
    domain) with atomic self-scheduling: workers grab the next unclaimed
    chunk of indices until the array is exhausted, so uneven task costs
    balance automatically.  Results are written into their input slot,
    which makes the output — and anything derived from it in input
    order — independent of how the runtime schedules the domains.
    [~domains:1] is the escape hatch: it runs the plain sequential
    [Array.map] on the calling domain, no spawns, bit-identical by
    construction.

    Tasks must be independent: [f] must not touch shared mutable state,
    and in particular must not call {!Rsg_obs.Obs} (its span tree is
    process-global and single-domain).  The pool itself reports per-run
    and per-domain busy times to [Obs] from the calling domain
    ([par.map] / [par.chunked_map] spans with [par.domain<k>]
    children), so callers get domain-utilisation observability for
    free.

    If a task raises, every domain is still joined (no domain leaks)
    and then one of the raised exceptions is re-raised on the caller. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_domains : unit -> int
(** Pool size used when [?domains] is omitted: the [RSG_DOMAINS]
    environment variable when set to a positive integer, otherwise
    {!recommended}.  CI sets [RSG_DOMAINS] to run the whole test suite
    at fixed pool sizes. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] is [Array.map f xs] computed on [domains]
    domains.  Chunk size is picked for roughly uniform per-element
    cost.  [domains] defaults to {!default_domains}; it is clamped to
    [1 .. length xs]. *)

val chunked_map : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!map} with an explicit scheduling granularity.  [chunk]
    (default 1) is the number of consecutive elements claimed per
    atomic fetch — use 1 when per-element cost is large or very
    uneven (e.g. one DRC rule per element). *)

(** A resident worker pool for long-running processes.

    {!map} spawns and joins domains per call — right for a one-shot
    CLI, wrong for a daemon fielding thousands of small jobs.  A
    [Pool.t] keeps [domains] worker domains alive, feeding them tasks
    off one locked queue.  [max_pending] bounds the queue: a full
    queue makes {!Pool.try_submit} return [false] instead of letting
    latency grow without bound, which is exactly the admission-control
    surface a service needs for graceful saturation.

    Tasks are [unit -> unit] closures that must not raise for control
    flow (a raised exception is swallowed so it cannot take the worker
    down; report errors through the closure's own channel) and must
    not touch {!Rsg_obs.Obs} spans (counters are fine — they are
    domain-safe). *)
module Pool : sig
  type t

  val create : ?max_pending:int -> domains:int -> unit -> t
  (** Spawn [max 1 domains] resident workers.  [max_pending] [<= 0]
      (the default) leaves the queue unbounded. *)

  val size : t -> int
  (** Number of worker domains. *)

  val try_submit : t -> (unit -> unit) -> bool
  (** Enqueue a task; [false] when the queue is at [max_pending] or
      the pool is shutting down — the task was {e not} accepted. *)

  val pending : t -> int
  (** Tasks queued but not yet started. *)

  val wait_idle : t -> unit
  (** Block until the queue is empty and no task is executing. *)

  val shutdown : t -> unit
  (** Drain: workers finish every queued task, then exit and are
      joined.  Subsequent {!try_submit}s return [false].  Idempotent. *)
end

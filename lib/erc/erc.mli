(** Static electrical rule checking over extracted netlists.

    The thesis's verification flow ran EXCL extraction and SPICE
    simulation downstream of the generator; this module is the static
    half of that loop: structural electrical rules over the
    {!Rsg_extract.Extract.mos_netlist} (gate/source/drain net triples
    from split-diffusion extraction), reported through the
    {!Rsg_lint.Diag} core so lint, DRC and ERC findings render and
    serialize uniformly.

    {2 Rules}

    - [E300] {e supply-short} (error): one net carries both a
      power-rail and a ground-rail terminal name;
    - [E301] {e floating-gate}: a net drives MOS gates but nothing
      drives it — no source/drain, no terminal, no boundary port;
    - [E302] {e undriven-net}: a conductor net with neither drivers
      nor loads (isolated geometry);
    - [E303] {e dangling-device}: a gate runs to the diffusion edge,
      leaving the transistor without a source or drain;
    - [E304] {e fanout-limit}: a net drives more gates than the
      configured limit;
    - [E305] {e no-rail-path}: a net joins transistor channels but no
      source/drain path reaches a supply rail or port;
    - [E306] {e rails-absent} (info): rail names were configured but
      no terminal matched, so rail checks were skipped.

    E301-E305 are warnings by default and errors under
    [strict] — the sample library's personalisation style (masks
    overlaying cells) legitimately leaves e.g. unpersonalised gate
    stubs, and {!Rsg_lint.Diag.clean} already draws the line at
    errors.

    {2 Hierarchy and caching}

    {!check_protos} follows [Drc.check_protos]: one verdict per
    distinct celltype, content-addressed by subtree hash so the store
    can replay it, computed fresh only for dirty prototypes and fanned
    out over the {!Rsg_par.Par} pool.  Unlike the DRC — whose rules
    are local, so responsibility partitions by halo — electrical
    judgement is global: a leaf gate's driver routinely lives in a
    sibling personalisation mask placed deep inside the parent, so
    non-root verdicts carry only censuses (net/device/boundary/rail
    counts) and the root level, whose local flat is the whole design,
    carries the diagnostics.  Results are bit-identical for every
    domain count. *)

open Rsg_geom

type config = {
  vdd_names : string list;  (** terminal names treated as power rails *)
  gnd_names : string list;  (** terminal names treated as ground rails *)
  max_fanout : int;         (** E304 threshold *)
  ports_at_boundary : bool;
      (** treat nets reaching within [Rules.max_spacing] of the design
          bbox edge as externally driven ports *)
  strict : bool;  (** escalate E301-E305 to errors *)
}

val default_config : config
(** vdd/vcc/pwr and gnd/vss/ground (case-insensitive), fanout 16,
    boundary ports on, strict off. *)

val config_digest : config -> Rsg_compact.Rules.t -> string
(** Raw 16-byte MD5 over the full config and the rule deck's
    {!Rsg_compact.Rules.digest} — the deck half of the verdict cache
    key ([strict] is included because stored severities depend on
    it; the deck because connectivity and the boundary band do). *)

type cached_verdict = {
  cv_nets : int;      (** distinct conductor nets in the local flat *)
  cv_devices : int;   (** merged MOS transistors *)
  cv_open : int;      (** nets reaching the local boundary band *)
  cv_rails : int;     (** nets carrying a matched rail terminal *)
  cv_diags : Rsg_lint.Diag.t list;  (** empty on non-root levels *)
}
(** What the store keeps per (subtree hash, config digest): enough to
    replay a level without touching its geometry. *)

type level = {
  l_cell : string;
  l_hash : string;        (** subtree hex digest *)
  l_placements : int;     (** whole-design instance count *)
  l_verdict : cached_verdict;
  l_cached : bool;
}

type report = {
  r_digest : string;      (** hex {!config_digest} *)
  r_levels : level list;  (** postorder, root last *)
  r_cached : int;
  r_nets : int;           (** whole-design nets (root level) *)
  r_devices : int;
  r_rails : int;
}

val check_items :
  ?cfg:config ->
  ?rules:Rsg_compact.Rules.t ->
  ?domains:int ->
  Rsg_compact.Scanline.item array ->
  (string * Vec.t) list ->
  cached_verdict * Rsg_lint.Diag.report
(** Adjudicate one flat geometry (root semantics).  The per-net
    classification fans out over [domains]; results are identical for
    every pool size.  Instrumented with the [erc.flat] Obs span. *)

val check_protos :
  ?cfg:config ->
  ?rules:Rsg_compact.Rules.t ->
  ?domains:int ->
  ?cached:(string -> cached_verdict option) ->
  Rsg_layout.Flatten.protos ->
  report
(** Hierarchical check.  [cached] is consulted with each prototype's
    subtree hex digest (the caller pairs it with {!config_digest});
    a hit replays the stored verdict without building that level's
    flat.  Fresh non-root censuses fan out over the pool with Obs
    suspended; the root is adjudicated on the calling domain so its
    per-net fan can use the pool.  Instrumented with [erc.hier]. *)

val check_cell :
  ?cfg:config ->
  ?rules:Rsg_compact.Rules.t ->
  ?domains:int ->
  ?cached:(string -> cached_verdict option) ->
  Rsg_layout.Cell.t ->
  report
(** {!check_protos} over [Flatten.prototypes cell]. *)

val to_diags : ?source:string -> report -> Rsg_lint.Diag.report
(** All levels' diagnostics as one sorted report; [checked] is the
    whole-design net count.  [source] defaults to ["erc"]. *)

val clean : report -> bool
(** No error-severity diagnostics ({!Rsg_lint.Diag.clean}). *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
(** Deterministic JSON:
    [{"digest":...,"nets":n,"devices":n,"rails":n,"cached":n,
      "levels":[{"cell":...,"hash":...,"placements":n,"nets":n,
      "devices":n,"open":n,"cached":b},...],
      "diagnostics":<Diag.report_to_json>}]. *)

val self_check :
  ?cfg:config ->
  ?rules:Rsg_compact.Rules.t ->
  ?domains:int ->
  Rsg_compact.Scanline.item array ->
  (string * Vec.t) list ->
  (Box.t * Rsg_lint.Diag.t, string) result
(** Mutation self-check: inject a poly strip crossing a diffusion box
    (clear of all existing poly and contacts, so it forms exactly one
    new transistor with a floating gate) and verify the checker
    reports {e exactly} one new E301 and no other per-code count
    change.  Counts, not messages, are compared — net identifiers
    renumber globally when an item is added.  Returns the probe box
    and the new diagnostic, or an error if no admissible probe site
    exists or some site perturbs other codes. *)

val self_check_cell :
  ?cfg:config ->
  ?rules:Rsg_compact.Rules.t ->
  ?domains:int ->
  Rsg_layout.Cell.t ->
  (Box.t * Rsg_lint.Diag.t, string) result

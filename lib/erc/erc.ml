open Rsg_geom
open Rsg_layout
module Scanline = Rsg_compact.Scanline
module Rules = Rsg_compact.Rules
module Extract = Rsg_extract.Extract
module Diag = Rsg_lint.Diag
module Obs = Rsg_obs.Obs
module Par = Rsg_par.Par

type config = {
  vdd_names : string list;
  gnd_names : string list;
  max_fanout : int;
  ports_at_boundary : bool;
  strict : bool;
}

let default_config =
  { vdd_names = [ "vdd"; "vcc"; "vdd!"; "pwr" ];
    gnd_names = [ "gnd"; "vss"; "gnd!"; "ground" ];
    max_fanout = 16;
    ports_at_boundary = true;
    strict = false }

(* The cache key must cover everything that can change a stored
   verdict: the name lists and fanout limit obviously, [strict]
   because it is baked into the stored severities, and the rule deck
   because connectivity itself ([Rules.connects]) and the boundary
   band ([Rules.max_spacing]) depend on it. *)
let config_digest cfg rules =
  let canon l =
    String.concat "," (List.sort String.compare (List.map String.lowercase_ascii l))
  in
  Digest.string
    (Printf.sprintf "erc1|vdd=%s|gnd=%s|fanout=%d|ports=%b|strict=%b|%s"
       (canon cfg.vdd_names) (canon cfg.gnd_names) cfg.max_fanout
       cfg.ports_at_boundary cfg.strict (Rules.digest rules))

type cached_verdict = {
  cv_nets : int;
  cv_devices : int;
  cv_open : int;
  cv_rails : int;
  cv_diags : Diag.t list;
}

type level = {
  l_cell : string;
  l_hash : string;
  l_placements : int;
  l_verdict : cached_verdict;
  l_cached : bool;
}

type report = {
  r_digest : string;          (* hex of [config_digest] *)
  r_levels : level list;
  r_cached : int;
  r_nets : int;
  r_devices : int;
  r_rails : int;
}

(* ------------------------------------------------------------------ *)
(* One flat adjudication                                              *)
(* ------------------------------------------------------------------ *)

let is_conductor = function
  | Layer.Metal | Layer.Poly | Layer.Diffusion | Layer.Contact
  | Layer.Contact_cut ->
    true
  | Layer.Implant | Layer.Buried | Layer.Overglass -> false

let erode m (b : Box.t) =
  let b' =
    { Box.xmin = b.Box.xmin + m;
      ymin = b.Box.ymin + m;
      xmax = b.Box.xmax - m;
      ymax = b.Box.ymax - m }
  in
  if b'.Box.xmin >= b'.Box.xmax || b'.Box.ymin >= b'.Box.ymax then None
  else Some b'

let box_within (z : Box.t) (w : Box.t) =
  z.Box.xmin <= w.Box.xmin && w.Box.xmax <= z.Box.xmax && z.Box.ymin <= w.Box.ymin
  && w.Box.ymax <= z.Box.ymax

let bstr (b : Box.t) =
  Printf.sprintf "[%d,%d..%d,%d]" b.Box.xmin b.Box.ymin b.Box.xmax b.Box.ymax

(* Full adjudication of one flat geometry.  [adjudicate = false]
   computes only the censuses (net, device, boundary-net and rail-net
   counts) — what a non-root level stores; every judgement about
   drivers and loads needs the whole design's connectivity, because a
   leaf gate's driver routinely lives in a sibling personalisation
   mask deep inside the parent, so floating/undriven/short verdicts
   are only meaningful on the root's flat view. *)
let verdict ~cfg ~rules ~domains ~adjudicate items labels =
  let mn = Extract.mos_of_items ~rules ~domains items labels in
  let n_items = Array.length mn.Extract.mn_items in
  let margin = Rules.max_spacing rules in
  (* per-net attribute tables, keyed by representative item index;
     built sequentially, read-only during the classification fan *)
  let net_bbox : (int, Box.t) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n_items - 1 do
    let it = mn.Extract.mn_items.(i) in
    if is_conductor it.Scanline.layer then begin
      let r = mn.Extract.mn_nets.(i) in
      let b =
        match Hashtbl.find_opt net_bbox r with
        | Some b0 -> Box.union b0 it.Scanline.box
        | None -> it.Scanline.box
      in
      Hashtbl.replace net_bbox r b
    end
  done;
  let design_bbox =
    Hashtbl.fold
      (fun _ b acc ->
        match acc with None -> Some b | Some a -> Some (Box.union a b))
      net_bbox None
  in
  let reaches_boundary r =
    match design_bbox with
    | None -> false
    | Some db -> (
      match erode margin db with
      | None -> true
      | Some core -> not (box_within core (Hashtbl.find net_bbox r)))
  in
  let has_term : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let vdd_on : (int, string list) Hashtbl.t = Hashtbl.create 4 in
  let gnd_on : (int, string list) Hashtbl.t = Hashtbl.create 4 in
  let mem_name names n =
    List.mem (String.lowercase_ascii n) (List.map String.lowercase_ascii names)
  in
  List.iter
    (fun (name, net) ->
      Hashtbl.replace has_term net ();
      if mem_name cfg.vdd_names name then
        Hashtbl.replace vdd_on net
          (name :: Option.value ~default:[] (Hashtbl.find_opt vdd_on net));
      if mem_name cfg.gnd_names name then
        Hashtbl.replace gnd_on net
          (name :: Option.value ~default:[] (Hashtbl.find_opt gnd_on net)))
    mn.Extract.mn_terminals;
  let gates_on : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let has_sd : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (m : Extract.mos) ->
      Hashtbl.replace gates_on m.Extract.m_gate_net
        (1 + Option.value ~default:0 (Hashtbl.find_opt gates_on m.Extract.m_gate_net));
      Option.iter (fun s -> Hashtbl.replace has_sd s ()) m.Extract.m_source;
      Option.iter (fun d -> Hashtbl.replace has_sd d ()) m.Extract.m_drain)
    mn.Extract.mn_mos;
  let reps =
    let l = Hashtbl.fold (fun r _ acc -> r :: acc) net_bbox [] in
    let a = Array.of_list l in
    Array.sort Int.compare a;
    a
  in
  let is_rail r = Hashtbl.mem vdd_on r || Hashtbl.mem gnd_on r in
  let n_rails = Array.fold_left (fun a r -> if is_rail r then a + 1 else a) 0 reps in
  let n_open =
    Array.fold_left (fun a r -> if reaches_boundary r then a + 1 else a) 0 reps
  in
  let census =
    { cv_nets = mn.Extract.mn_n_nets;
      cv_devices = Extract.n_mos mn;
      cv_open = n_open;
      cv_rails = n_rails;
      cv_diags = [] }
  in
  if not adjudicate then census
  else begin
    let warn = if cfg.strict then Some Diag.Error else None in
    let diags = ref [] in
    let add d = diags := d :: !diags in
    (* E300: one net carrying both a power and a ground rail name —
       always an error, strict or not *)
    Array.iter
      (fun r ->
        match (Hashtbl.find_opt vdd_on r, Hashtbl.find_opt gnd_on r) with
        | Some vs, Some gs ->
          add
            (Diag.make "E300"
               "net %d %s shorts supply rails: carries %s and %s" r
               (bstr (Hashtbl.find net_bbox r))
               (String.concat "," (List.sort String.compare vs))
               (String.concat "," (List.sort String.compare gs)))
        | _ -> ())
      reps;
    (* E306: the deck asked for rail checks but no terminal matched *)
    if n_rails = 0 && (cfg.vdd_names <> [] || cfg.gnd_names <> []) then
      add
        (Diag.make "E306"
           "no terminal matches a supply rail name (vdd: %s; gnd: %s); \
            rail-reachability checks are skipped"
           (String.concat "," cfg.vdd_names)
           (String.concat "," cfg.gnd_names));
    (* E303: a gate running to the diffusion edge leaves the device
       with no source or drain fragment on that side *)
    Array.iteri
      (fun i (m : Extract.mos) ->
        let miss =
          match (m.Extract.m_source, m.Extract.m_drain) with
          | None, None -> Some "source or drain"
          | None, Some _ -> Some "source"
          | Some _, None -> Some "drain"
          | Some _, Some _ -> None
        in
        match miss with
        | Some side ->
          add
            (Diag.make ?severity:warn "E303"
               "transistor %d (gate %s) has no %s diffusion: the gate \
                runs to the diffusion edge"
               i (bstr m.Extract.m_gate) side)
        | None -> ())
      mn.Extract.mn_mos;
    (* rail reachability: breadth-first over the source<->drain channel
       graph, seeded at the rail nets (and, when ports count, at
       boundary nets — an off-chip supply enters through a port) *)
    let reached : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    if n_rails > 0 then begin
      let adj : (int, int list) Hashtbl.t = Hashtbl.create 64 in
      Array.iter
        (fun (m : Extract.mos) ->
          match (m.Extract.m_source, m.Extract.m_drain) with
          | Some s, Some d when s <> d ->
            Hashtbl.replace adj s (d :: Option.value ~default:[] (Hashtbl.find_opt adj s));
            Hashtbl.replace adj d (s :: Option.value ~default:[] (Hashtbl.find_opt adj d))
          | _ -> ())
        mn.Extract.mn_mos;
      let queue = Queue.create () in
      let seed r = if not (Hashtbl.mem reached r) then begin
        Hashtbl.replace reached r ();
        Queue.add r queue
      end in
      Array.iter
        (fun r ->
          if is_rail r || (cfg.ports_at_boundary && reaches_boundary r) then
            seed r)
        reps;
      while not (Queue.is_empty queue) do
        let r = Queue.pop queue in
        List.iter seed (Option.value ~default:[] (Hashtbl.find_opt adj r))
      done
    end;
    (* per-net classification: the tables above are frozen now, so the
       judgements are independent and fan out across the pool; slot
       order keeps the result deterministic for any pool size *)
    let classify r =
      let out = ref [] in
      let n_gates = Option.value ~default:0 (Hashtbl.find_opt gates_on r) in
      let driven =
        Hashtbl.mem has_sd r || Hashtbl.mem has_term r || is_rail r
        || (cfg.ports_at_boundary && reaches_boundary r)
      in
      if n_gates > 0 && not driven then
        out :=
          Diag.make ?severity:warn "E301"
            "gate net %d %s drives %d gate(s) but is driven by no \
             source/drain, terminal or boundary port"
            r (bstr (Hashtbl.find net_bbox r)) n_gates
          :: !out;
      if n_gates = 0 && not driven then
        out :=
          Diag.make ?severity:warn "E302"
            "net %d %s is undriven: no source/drain, terminal or \
             boundary port connects to it"
            r (bstr (Hashtbl.find net_bbox r))
          :: !out;
      if n_gates > cfg.max_fanout then
        out :=
          Diag.make ?severity:warn "E304" "net %d %s drives %d gates (limit %d)"
            r (bstr (Hashtbl.find net_bbox r)) n_gates cfg.max_fanout
          :: !out;
      if n_rails > 0 && Hashtbl.mem has_sd r && not (Hashtbl.mem reached r)
      then
        out :=
          Diag.make ?severity:warn "E305"
            "net %d %s joins transistor channels but no source/drain \
             path reaches a supply rail or port"
            r (bstr (Hashtbl.find net_bbox r))
          :: !out;
      List.rev !out
    in
    let per_net =
      if domains = 1 || Array.length reps <= 1 then Array.map classify reps
      else Par.chunked_map ~domains ~chunk:64 classify reps
    in
    Array.iter (fun ds -> List.iter add ds) per_net;
    { census with cv_diags = List.sort Diag.compare_diag (List.rev !diags) }
  end

(* ------------------------------------------------------------------ *)
(* Flat entry points                                                  *)
(* ------------------------------------------------------------------ *)

let check_items ?(cfg = default_config) ?(rules = Rules.default) ?domains items
    labels =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  Obs.span "erc.flat" @@ fun () ->
  let v = verdict ~cfg ~rules ~domains ~adjudicate:true items labels in
  Obs.count ~n:(List.length v.cv_diags) "erc.diags";
  (v, Diag.report ~source:"erc" ~checked:v.cv_nets v.cv_diags)

(* ------------------------------------------------------------------ *)
(* Hierarchical checking with per-prototype cached verdicts           *)
(* ------------------------------------------------------------------ *)

(* Mirrors [Drc.check_protos]: one verdict per distinct celltype,
   addressed by subtree hash so [cached] can replay it; placement
   counts from a downward sweep over the postorder; the fresh
   non-root computations fan out over the pool with Obs suspended.
   Non-root verdicts are censuses (their diag lists are empty by
   construction); the root — whose local flat is the whole design —
   is adjudicated on the calling domain so its per-net classification
   can itself fan out. *)
let check_protos ?(cfg = default_config) ?(rules = Rules.default) ?domains
    ?(cached = fun _ -> None) protos =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  Obs.span "erc.hier" @@ fun () ->
  let order = Array.of_list (Flatten.protos_order protos) in
  let n = Array.length order in
  let root_idx = n - 1 in
  let flats = Array.map (fun c -> lazy (Flatten.proto_flat protos c)) order in
  let hexes = Array.map (Flatten.subtree_hex protos) order in
  (* physical-identity index of each distinct cell *)
  let index : (string, (Cell.t * int) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (c : Cell.t) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt index c.Cell.cname) in
      Hashtbl.replace index c.Cell.cname ((c, i) :: l))
    order;
  let idx_of (c : Cell.t) = List.assq c (Hashtbl.find index c.Cell.cname) in
  let placements = Array.make n 0 in
  placements.(root_idx) <- 1;
  for i = n - 1 downto 0 do
    if placements.(i) > 0 then
      List.iter
        (fun (inst : Cell.instance) ->
          let j = idx_of inst.Cell.def in
          placements.(j) <- placements.(j) + placements.(i))
        (Cell.instances order.(i))
  done;
  let verdicts : (cached_verdict * bool) option array =
    Array.init n (fun i ->
        match cached hexes.(i) with
        | Some cv -> Some (cv, true)
        | None -> None)
  in
  let todo = List.filter (fun i -> verdicts.(i) = None) (List.init n Fun.id) in
  let todo_rest =
    Array.of_list (List.filter (fun i -> i <> root_idx) todo)
  in
  let todo_root = List.mem root_idx todo in
  (* force every flat a fresh level needs on this domain before the
     fan-out: Lazy.force is not domain-safe *)
  Array.iter (fun i -> ignore (Lazy.force flats.(i))) todo_rest;
  let compute ~domains ~adjudicate i =
    let f = Lazy.force flats.(i) in
    verdict ~cfg ~rules ~domains ~adjudicate
      (Scanline.items_of_flat f)
      (Array.to_list f.Flatten.flat_labels)
  in
  (* Obs is process-global: suspend recording across the fan-out *)
  let was_enabled = Obs.is_enabled () in
  if was_enabled then Obs.disable ();
  let computed =
    Fun.protect
      ~finally:(fun () -> if was_enabled then Obs.enable ())
      (fun () ->
        let f = compute ~domains:1 ~adjudicate:false in
        if domains = 1 || Array.length todo_rest <= 1 then
          Array.map f todo_rest
        else Par.chunked_map ~domains ~chunk:1 f todo_rest)
  in
  Array.iteri (fun k i -> verdicts.(i) <- Some (computed.(k), false)) todo_rest;
  if todo_root then
    verdicts.(root_idx) <-
      Some (compute ~domains ~adjudicate:true root_idx, false);
  let levels =
    List.init n (fun i ->
        match verdicts.(i) with
        | Some (cv, was_cached) ->
          { l_cell = order.(i).Cell.cname;
            l_hash = hexes.(i);
            l_placements = placements.(i);
            l_verdict = cv;
            l_cached = was_cached }
        | None -> assert false)
  in
  let n_cached =
    List.fold_left (fun a l -> a + if l.l_cached then 1 else 0) 0 levels
  in
  let root = List.nth levels root_idx in
  Obs.count ~n "erc.hier.levels";
  Obs.count ~n:n_cached "erc.hier.cached";
  Obs.count ~n:root.l_verdict.cv_nets "erc.hier.nets";
  Obs.count ~n:(List.length root.l_verdict.cv_diags) "erc.diags";
  { r_digest = Digest.to_hex (config_digest cfg rules);
    r_levels = levels;
    r_cached = n_cached;
    r_nets = root.l_verdict.cv_nets;
    r_devices = root.l_verdict.cv_devices;
    r_rails = root.l_verdict.cv_rails }

let check_cell ?cfg ?rules ?domains ?cached cell =
  check_protos ?cfg ?rules ?domains ?cached (Flatten.prototypes cell)

let to_diags ?(source = "erc") r =
  Diag.report ~source ~checked:r.r_nets
    (List.concat_map (fun l -> l.l_verdict.cv_diags) r.r_levels)

let clean r = Diag.clean (to_diags r)

let pp_report ppf r =
  let d = to_diags r in
  let count sev =
    List.length (List.filter (fun (x : Diag.t) -> x.Diag.severity = sev) d.Diag.r_diags)
  in
  Format.fprintf ppf
    "erc %s: %d net(s), %d device(s), %d rail net(s); %d level(s) (%d \
     cached); %d error(s), %d warning(s), %d note(s)"
    (String.sub r.r_digest 0 8) r.r_nets r.r_devices r.r_rails
    (List.length r.r_levels) r.r_cached (count Diag.Error)
    (count Diag.Warning) (count Diag.Info);
  List.iter
    (fun l ->
      Format.fprintf ppf "@\n  %s %s x%d: %d net(s), %d device(s), %d open%s"
        l.l_cell
        (String.sub l.l_hash 0 8)
        l.l_placements l.l_verdict.cv_nets l.l_verdict.cv_devices
        l.l_verdict.cv_open
        (if l.l_cached then " (cached)" else ""))
    r.r_levels;
  List.iter (fun x -> Format.fprintf ppf "@\n  %a" Diag.pp x) d.Diag.r_diags;
  Format.fprintf ppf "@."

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"digest\":\"%s\",\"nets\":%d,\"devices\":%d,\"rails\":%d,\"cached\":%d,\"levels\":["
       r.r_digest r.r_nets r.r_devices r.r_rails r.r_cached);
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"cell\":\"%s\",\"hash\":\"%s\",\"placements\":%d,\"nets\":%d,\"devices\":%d,\"open\":%d,\"cached\":%b}"
           l.l_cell l.l_hash l.l_placements l.l_verdict.cv_nets
           l.l_verdict.cv_devices l.l_verdict.cv_open l.l_cached))
    r.r_levels;
  Buffer.add_string buf "],\"diagnostics\":";
  Buffer.add_string buf (Diag.report_to_json (to_diags r));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Mutation self-check                                                *)
(* ------------------------------------------------------------------ *)

let count_codes diags =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Diag.t) ->
      Hashtbl.replace tbl d.Diag.code
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.Diag.code)))
    diags;
  tbl

(* Candidate probe: a 2-lambda poly strip crossing a diffusion box
   top to bottom (or left to right), clear of every existing poly,
   contact and other diffusion — so it forms exactly one new
   transistor whose gate hangs on an otherwise untouched net. *)
let probe_sites items =
  let n = Array.length items in
  let clear target (strip : Box.t) =
    let ok = ref true in
    for i = 0 to n - 1 do
      if i <> target then
        match items.(i).Scanline.layer with
        | Layer.Poly | Layer.Diffusion | Layer.Contact | Layer.Contact_cut ->
          if Box.overlaps strip items.(i).Scanline.box then ok := false
        | _ -> ()
    done;
    !ok
  in
  let sites = ref [] in
  for i = 0 to n - 1 do
    let it = items.(i) in
    if it.Scanline.layer = Layer.Diffusion then begin
      let b = it.Scanline.box in
      let w = Box.width b and h = Box.height b in
      if w >= 4 then
        List.iter
          (fun frac ->
            let x0 = b.Box.xmin + max 1 (min (w - 3) (w * frac / 4)) in
            let strip =
              { Box.xmin = x0;
                ymin = b.Box.ymin - 1;
                xmax = x0 + 2;
                ymax = b.Box.ymax + 1 }
            in
            if clear i strip then sites := strip :: !sites)
          [ 2; 1; 3 ];
      if h >= 4 then
        List.iter
          (fun frac ->
            let y0 = b.Box.ymin + max 1 (min (h - 3) (h * frac / 4)) in
            let strip =
              { Box.xmin = b.Box.xmin - 1;
                ymin = y0;
                xmax = b.Box.xmax + 1;
                ymax = y0 + 2 }
            in
            if clear i strip then sites := strip :: !sites)
          [ 2; 1; 3 ]
    end
  done;
  List.rev !sites

let self_check ?(cfg = default_config) ?(rules = Rules.default) ?domains items
    labels =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  Obs.span "erc.self_check" @@ fun () ->
  let base = verdict ~cfg ~rules ~domains ~adjudicate:true items labels in
  let base_counts = count_codes base.cv_diags in
  let try_site strip =
    let mutated =
      Array.append items [| { Scanline.layer = Layer.Poly; box = strip } |]
    in
    let v = verdict ~cfg ~rules ~domains ~adjudicate:true mutated labels in
    let counts = count_codes v.cv_diags in
    let codes =
      List.sort_uniq String.compare
        (Hashtbl.fold (fun c _ acc -> c :: acc) base_counts []
        @ Hashtbl.fold (fun c _ acc -> c :: acc) counts [])
    in
    let delta c =
      Option.value ~default:0 (Hashtbl.find_opt counts c)
      - Option.value ~default:0 (Hashtbl.find_opt base_counts c)
    in
    if List.for_all (fun c -> delta c = if c = "E301" then 1 else 0) codes
    then
      (* the probe gate's net is the strip alone, so the new E301
         cites the strip's own bbox — pick it out by that *)
      List.find_opt
        (fun (d : Diag.t) ->
          d.Diag.code = "E301"
          && (let sub = bstr strip in
              let len = String.length sub and mlen = String.length d.Diag.message in
              let rec at k =
                k + len <= mlen
                && (String.sub d.Diag.message k len = sub || at (k + 1))
              in
              at 0))
        v.cv_diags
      |> Option.map (fun d -> (strip, d))
    else None
  in
  let rec first = function
    | [] ->
      Error
        "self-check found no probe site: no diffusion box admits a \
         clear crossing poly strip that perturbs only E301"
    | s :: tl -> ( match try_site s with Some r -> Ok r | None -> first tl)
  in
  first (probe_sites items)

let self_check_cell ?cfg ?rules ?domains cell =
  let f = Flatten.flatten cell in
  self_check ?cfg ?rules ?domains
    (Scanline.items_of_flat f)
    (Array.to_list f.Flatten.flat_labels)

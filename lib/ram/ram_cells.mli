(** The RAM sample layout.

    Leaf cells for a static RAM — the six-transistor bit cell, the
    word-line driver, the bit-line precharge and the sense amplifier —
    plus the by-example assemblies for their interfaces, including the
    interface between the word-line driver and the {e decoder's}
    connect-ao driver cell ({!Rsg_pla.Pla_cells}), which is what lets
    a generated decoder macrocell dock onto the RAM array through
    interface inheritance. *)

open Rsg_core

val bitcell : string

val wldrv : string     (** word-line driver, left of each row *)

val precharge : string (** top of each column *)

val senseamp : string  (** bottom of each column *)

val bit_width : int    (** bit cell pitch, x *)

val bit_height : int   (** bit cell pitch, y *)

val wldrv_width : int

val assemblies : unit -> Rsg_layout.Cell.t list

val build : unit -> Sample.t * Sample.declaration list
(** RAM cells plus the PLA/decoder cells in one sample (the decoder
    interface needs both). *)

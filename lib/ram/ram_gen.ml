open Rsg_geom
open Rsg_layout
open Rsg_core

type t = {
  cell : Cell.t;
  array_cell : Cell.t;
  decoder_cell : Cell.t;
  words : int;
  bits : int;
  sample : Sample.t;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let cell_of sample name =
  match Db.find sample.Sample.db name with
  | Some c -> c
  | None -> failwith ("Ram_gen: sample lacks cell " ^ name)

let generate ?sample ~words ~bits () =
  if not (is_power_of_two words) || words < 2 then
    invalid_arg "Ram_gen.generate: words must be a power of two >= 2";
  if bits < 1 then invalid_arg "Ram_gen.generate: bits >= 1";
  let sample =
    match sample with Some s -> s | None -> fst (Ram_cells.build ())
  in
  let db = sample.Sample.db and tbl = sample.Sample.table in
  let bc = cell_of sample Ram_cells.bitcell in
  let wd = cell_of sample Ram_cells.wldrv in
  let pc = cell_of sample Ram_cells.precharge in
  let sa = cell_of sample Ram_cells.senseamp in
  (* --- the array ---------------------------------------------------- *)
  let drivers = Array.init words (fun _ -> Graph.mk_instance wd) in
  let grid = Array.init words (fun _ -> Array.init bits (fun _ -> Graph.mk_instance bc)) in
  for r = 1 to words - 1 do
    Graph.connect drivers.(r - 1) drivers.(r) 2
  done;
  for r = 0 to words - 1 do
    Graph.connect drivers.(r) grid.(r).(0) 1;
    for c = 1 to bits - 1 do
      Graph.connect grid.(r).(c - 1) grid.(r).(c) 1
    done
  done;
  for c = 0 to bits - 1 do
    let pre = Graph.mk_instance pc in
    Graph.connect grid.(words - 1).(c) pre 1;
    let sense = Graph.mk_instance sa in
    Graph.connect grid.(0).(c) sense 1
  done;
  let array_name = Db.fresh_name db "ramarray" in
  let array_cell = Expand.mk_cell ~db tbl array_name drivers.(0) in
  (* --- the decoder macrocell ---------------------------------------- *)
  let n = log2 words in
  let dec = Rsg_pla.Gen.generate_decoder ~sample ~name:"ramdecoder" n in
  let decoder_cell = dec.Rsg_pla.Gen.cell in
  (* --- dock them through an inherited interface (fig 2.4) ----------- *)
  (* inner: connect-ao drives a word-line driver placed one pitch to
     its right (from the sample). *)
  let inner =
    Interface_table.find_exn tbl ~from:Rsg_pla.Pla_cells.connect_ao
      ~into:Ram_cells.wldrv ~index:1
  in
  (* placement of the row-0 connect-ao inside the decoder: rightmost
     column of the AND plane, bottom row *)
  let cao_in_dec =
    Transform.make
      (Vec.make (2 * n * Rsg_pla.Pla_cells.square) 0)
  in
  (* the row-0 word-line driver is the array's root: the origin *)
  let wd_in_array = Transform.identity in
  let inherited =
    Interface.inherit_interface ~inner ~a_in_c:cao_in_dec ~b_in_d:wd_in_array
  in
  Interface_table.declare tbl ~from:decoder_cell.Cell.cname
    ~into:array_cell.Cell.cname ~index:1 inherited;
  let deci = Graph.mk_instance decoder_cell in
  let arri = Graph.mk_instance array_cell in
  Graph.connect deci arri 1;
  let ram_name = Db.fresh_name db "ram" in
  let cell = Expand.mk_cell ~db tbl ram_name deci in
  { cell; array_cell; decoder_cell; words; bits; sample }

(* -------------------------------------------------------------------- *)

module Model = struct
  type ram = t

  type m = { dec : Rsg_pla.Truth_table.t; store : int array; width : int }

  let create (ram : ram) =
    let dec =
      Rsg_pla.Gen.read_back
        { Rsg_pla.Gen.cell = ram.decoder_cell;
          table = Rsg_pla.Gen.minterm_table (log2 ram.words);
          sample = ram.sample }
    in
    (* the extracted decoder must decode one-hot *)
    for addr = 0 to ram.words - 1 do
      let out = Rsg_pla.Truth_table.eval_int dec addr in
      if out <> 1 lsl addr then
        failwith
          (Printf.sprintf "Ram model: address %d decodes to %d" addr out)
    done;
    { dec; store = Array.make ram.words 0; width = ram.bits }

  let row_of m addr =
    let out = Rsg_pla.Truth_table.eval_int m.dec addr in
    let rec log2 v = if v <= 1 then 0 else 1 + log2 (v / 2) in
    if out = 0 || out land (out - 1) <> 0 then
      failwith "Ram model: decode not one-hot";
    log2 out

  let write m ~addr v =
    if v < 0 || v >= 1 lsl m.width then invalid_arg "Ram.Model.write";
    m.store.(row_of m addr) <- v

  let read m ~addr = m.store.(row_of m addr)
end

let structure_counts t = (Flatten.stats t.cell).Flatten.by_cell

let docking_aligned t =
  let placements = Flatten.instance_placements t.cell in
  let of_name name =
    List.filter_map
      (fun (n, (tr : Transform.t)) ->
        if String.equal n name then Some tr.Transform.offset else None)
      placements
  in
  let caos = List.sort Vec.compare (of_name Rsg_pla.Pla_cells.connect_ao) in
  let drivers = List.sort Vec.compare (of_name Ram_cells.wldrv) in
  List.length caos = List.length drivers
  && List.for_all2
       (fun (c : Vec.t) (d : Vec.t) ->
         d.Vec.x = c.Vec.x + Rsg_pla.Pla_cells.square && d.Vec.y = c.Vec.y)
       caos drivers

(** Static RAM generation.

    The array: one word per row (word-line driver at the left, bit
    cells across), precharge row on top, sense amplifiers below; the
    address decoder is the {!Rsg_pla.Gen.generate_decoder} macrocell,
    docked to the array through an {e inherited} interface computed
    from the connect-ao/word-line-driver interface of the sample —
    the Figure 2.4 mechanism joining two independently generated
    macrocells with no new layout.

    Functional verification goes through the layout: the decoder
    personality is extracted from the generated geometry and every
    read/write decodes its address through it. *)

open Rsg_layout
open Rsg_core

type t = {
  cell : Cell.t;          (** the complete RAM (decoder + array) *)
  array_cell : Cell.t;
  decoder_cell : Cell.t;
  words : int;            (** rows; a power of two *)
  bits : int;             (** word width *)
  sample : Sample.t;
}

val generate : ?sample:Sample.t -> words:int -> bits:int -> unit -> t
(** Raises [Invalid_argument] unless [words] is a power of two >= 2
    and [bits >= 1]. *)

(** Behavioural model whose address decode runs through the layout. *)
module Model : sig
  type ram = t

  type m

  val create : ram -> m
  (** Extracts the decoder personality from the generated layout;
      raises [Failure] if the geometry does not decode one-hot. *)

  val write : m -> addr:int -> int -> unit

  val read : m -> addr:int -> int
  (** Uninitialised words read as 0. *)
end

val structure_counts : t -> (string * int) list
(** Instance census of the whole RAM. *)

val docking_aligned : t -> bool
(** Every decoder row's connect-ao sits exactly one plane pitch left
    of the corresponding word-line driver, on the same y — the
    geometric proof that the inherited interface did its job. *)

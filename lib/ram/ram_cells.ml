open Rsg_geom
open Rsg_layout
open Rsg_core

let bitcell = "bitcell"

let wldrv = "wldrv"

let precharge = "precharge"

let senseamp = "senseamp"

(* the bit pitch matches the PLA square pitch so decoder rows align
   with word lines *)
let bit_width = 20

let bit_height = Rsg_pla.Pla_cells.square

let wldrv_width = 24

let box x y w h = Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h

let make_bitcell () =
  let c = Cell.create bitcell in
  (* bit lines *)
  Cell.add_box c Layer.Metal (box 3 0 3 bit_height);
  Cell.add_box c Layer.Metal (box 14 0 3 bit_height);
  (* word line *)
  Cell.add_box c Layer.Poly (box 0 8 bit_width 3);
  (* cross-coupled pair *)
  Cell.add_box c Layer.Diffusion (box 6 3 8 5);
  Cell.add_box c Layer.Diffusion (box 6 12 8 5);
  Cell.add_box c Layer.Contact (box 8 4 3 3);
  c

let make_wldrv () =
  let c = Cell.create wldrv in
  Cell.add_box c Layer.Poly (box 4 8 (wldrv_width - 4) 3);
  Cell.add_box c Layer.Diffusion (box 4 2 10 14);
  Cell.add_box c Layer.Metal (box 0 0 3 bit_height);
  Cell.add_box c Layer.Contact (box 6 8 3 3);
  c

let make_precharge () =
  let c = Cell.create precharge in
  Cell.add_box c Layer.Metal (box 3 0 3 12);
  Cell.add_box c Layer.Metal (box 14 0 3 12);
  Cell.add_box c Layer.Diffusion (box 5 4 10 6);
  Cell.add_box c Layer.Poly (box 0 8 bit_width 2);
  c

let make_senseamp () =
  let c = Cell.create senseamp in
  Cell.add_box c Layer.Metal (box 3 0 3 16);
  Cell.add_box c Layer.Metal (box 14 0 3 16);
  Cell.add_box c Layer.Diffusion (box 4 4 12 8);
  Cell.add_box c Layer.Poly (box 2 6 16 2);
  Cell.add_box c Layer.Contact (box 8 5 3 3);
  c

let pair asm_name a ~at b ~label ~at_label =
  let asm = Cell.create asm_name in
  ignore (Cell.add_instance asm ~at:Vec.zero a);
  ignore (Cell.add_instance asm ~at b);
  Cell.add_label asm (string_of_int label) at_label;
  asm

let assemblies_with ~cao () =
  let bc = make_bitcell () in
  let wd = make_wldrv () in
  let pc = make_precharge () in
  let sa = make_senseamp () in
  [ pair "ram-bit-h" bc bc ~at:(Vec.make bit_width 0) ~label:1
      ~at_label:(Vec.make bit_width 10);
    pair "ram-bit-v" bc bc ~at:(Vec.make 0 bit_height) ~label:2
      ~at_label:(Vec.make 10 bit_height);
    pair "ram-wldrv-bit" wd bc ~at:(Vec.make wldrv_width 0) ~label:1
      ~at_label:(Vec.make wldrv_width 10);
    pair "ram-wldrv-v" wd wd ~at:(Vec.make 0 bit_height) ~label:2
      ~at_label:(Vec.make 12 bit_height);
    pair "ram-bit-pre" bc pc ~at:(Vec.make 0 bit_height) ~label:1
      ~at_label:(Vec.make 10 bit_height);
    pair "ram-bit-sense" bc sa ~at:(Vec.make 0 (-16)) ~label:1
      ~at_label:(Vec.make 10 0);
    pair "ram-cao-wldrv" cao wd ~at:(Vec.make Rsg_pla.Pla_cells.square 0)
      ~label:1
      ~at_label:(Vec.make Rsg_pla.Pla_cells.square 10) ]

let assemblies () =
  (* standalone inspection copy with its own connect-ao *)
  let pla_sample, _ = Rsg_pla.Pla_cells.build () in
  let cao = Db.find_exn pla_sample.Sample.db Rsg_pla.Pla_cells.connect_ao in
  assemblies_with ~cao ()

let build () =
  (* one sample holding both the RAM cells and the PLA/decoder cells;
     the docking assembly must reference the same connect-ao
     definition the PLA assemblies define *)
  let s, pla_decls =
    Sample.of_assemblies (Rsg_pla.Pla_cells.assemblies ())
  in
  let cao = Db.find_exn s.Sample.db Rsg_pla.Pla_cells.connect_ao in
  let ram_decls =
    List.concat_map (Sample.extract s) (assemblies_with ~cao ())
  in
  (s, pla_decls @ ram_decls)

open Rsg_layout
module Obs = Rsg_obs.Obs
module Par = Rsg_par.Par

type job = {
  j_name : string;
  j_kind : string;
  j_key : Store.key;
  j_label : string;
  j_gen : unit -> Cell.t;
}

type outcome =
  | Hit
  | Generated
  | Regenerated of Codec.error
  | Failed of string

type result = {
  r_job : job;
  r_outcome : outcome;
  r_seconds : float;
  r_cell : Cell.t option;
  r_flat : Flatten.flat option;
  r_boxes : int;
}

let generate store job =
  let cell = job.j_gen () in
  let flat = Flatten.protos_flat (Flatten.prototypes cell) in
  (match store with
  | Some st -> Store.save st job.j_key ~label:job.j_label ~flat cell
  | None -> ());
  (cell, flat)

let run_one store job =
  let t0 = Unix.gettimeofday () in
  let outcome, cell, flat =
    match
      match store with
      | None -> (Generated, generate None job)
      | Some st -> (
          match Store.find st job.j_key with
          | Store.Hit e ->
              let flat =
                match Lazy.force e.Codec.e_flat with
                | Some f -> f
                | None -> Flatten.protos_flat (Flatten.prototypes e.Codec.e_cell)
              in
              (Hit, (e.Codec.e_cell, flat))
          | Store.Miss -> (Generated, generate store job)
          | Store.Corrupt err -> (Regenerated err, generate store job))
    with
    | outcome, (cell, flat) -> (outcome, Some cell, Some flat)
    | exception exn -> (Failed (Printexc.to_string exn), None, None)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  {
    r_job = job;
    r_outcome = outcome;
    r_seconds = seconds;
    r_cell = cell;
    r_flat = flat;
    r_boxes =
      (match flat with Some f -> Array.length f.Flatten.flat_boxes | None -> 0);
  }

let run ?domains ?store jobs =
  let domains =
    match domains with Some d -> d | None -> Par.default_domains ()
  in
  let arr = Array.of_list jobs in
  (* Workers must not touch the process-global Obs state: suspend
     recording for the parallel section and replay per-job timings
     from this domain after the join. *)
  let was_enabled = Obs.is_enabled () in
  if was_enabled then Obs.disable ();
  let results =
    Fun.protect
      ~finally:(fun () -> if was_enabled then Obs.enable ())
      (fun () -> Par.chunked_map ~domains ~chunk:1 (run_one store) arr)
  in
  if was_enabled then
    Array.iter
      (fun r ->
        Obs.record ("batch." ^ r.r_job.j_name) r.r_seconds;
        match r.r_outcome with
        | Hit -> Obs.count "batch.hit"
        | Generated -> Obs.count "batch.miss"
        | Regenerated _ -> Obs.count "batch.corrupt"
        | Failed _ -> Obs.count "batch.failed")
      results;
  Array.to_list results

module Obs = Rsg_obs.Obs

type t = { sdir : string }

let schema_tag = "rsg-store-v1"
let suffix = ".rsgdb"

let mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then
      (try Unix.mkdir parent 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ dir =
  mkdir_p dir;
  { sdir = dir }

let dir t = t.sdir

type key = string

(* Components are length-prefixed before digesting so no two distinct
   component lists can concatenate to the same byte string (e.g.
   ["ab";"c"] vs ["a";"bc"]). *)
let key ?(deck = "") ?(scale = "1") ~design ~params () =
  let b = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s)
    [
      schema_tag;
      string_of_int Codec.format_version;
      design;
      params;
      deck;
      scale;
    ];
  Digest.to_hex (Digest.string (Buffer.contents b))

let key_hex k = k
let short k = if String.length k >= 8 then String.sub k 0 8 else k
let path_of t k = Filename.concat t.sdir (k ^ suffix)

type lookup = Hit of Codec.entry | Miss | Corrupt of Codec.error

let find t k =
  let path = path_of t k in
  if not (Sys.file_exists path) then begin
    Obs.count "store.miss";
    Miss
  end
  else
    match Codec.read_file path with
    | entry ->
        Obs.count "store.hit";
        Hit entry
    | exception Codec.Error e ->
        Obs.count "store.corrupt";
        (try Sys.remove path with Sys_error _ -> ());
        Corrupt e
    | exception Sys_error _ ->
        Obs.count "store.miss";
        Miss

let save t k ~label ?flat cell =
  let data = Codec.encode ?flat ~label cell in
  Codec.write_file (path_of t k) data;
  Obs.count "store.save"

type entry_stat = { es_key : string; es_label : string; es_bytes : int }

type stats = {
  st_entries : int;
  st_bytes : int;
  st_list : entry_stat list;
}

let entries t =
  let files = try Sys.readdir t.sdir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter_map (fun f ->
         if Filename.check_suffix f suffix then
           Some (Filename.chop_suffix f suffix)
         else None)
  |> List.sort String.compare

let stats t =
  let ks = entries t in
  let list =
    List.map
      (fun k ->
        let path = path_of t k in
        let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
        let label =
          match Codec.decode_label (In_channel.with_open_bin path In_channel.input_all) with
          | l -> l
          | exception _ -> "(corrupt)"
        in
        { es_key = k; es_label = label; es_bytes = bytes })
      ks
  in
  {
    st_entries = List.length list;
    st_bytes = List.fold_left (fun a e -> a + e.es_bytes) 0 list;
    st_list = list;
  }

let clear t =
  let ks = entries t in
  List.iter (fun k -> try Sys.remove (path_of t k) with Sys_error _ -> ()) ks;
  List.length ks

let gc ?max_age ?max_bytes t =
  let now = Unix.gettimeofday () in
  let stat k =
    let path = path_of t k in
    match Unix.stat path with
    | st -> Some (k, st.Unix.st_mtime, st.Unix.st_size)
    | exception Unix.Unix_error _ -> None
  in
  let all = List.filter_map stat (entries t) in
  let removed = ref 0 in
  let remove k =
    (try Sys.remove (path_of t k) with Sys_error _ -> ());
    incr removed
  in
  let survivors =
    match max_age with
    | None -> all
    | Some age ->
        List.filter
          (fun (k, mtime, _) ->
            if now -. mtime > age then (remove k; false) else true)
          all
  in
  (match max_bytes with
  | None -> ()
  | Some limit ->
      (* oldest first; keys tie-break for determinism *)
      let by_age =
        List.sort
          (fun (ka, ma, _) (kb, mb, _) ->
            match compare ma mb with 0 -> String.compare ka kb | c -> c)
          survivors
      in
      let total = List.fold_left (fun a (_, _, sz) -> a + sz) 0 by_age in
      let excess = ref (total - limit) in
      List.iter
        (fun (k, _, sz) ->
          if !excess > 0 then begin
            remove k;
            excess := !excess - sz
          end)
        by_age);
  !removed

module Obs = Rsg_obs.Obs

type t = { sdir : string }

let schema_tag = "rsg-store-v1"
let suffix = ".rsgdb"
let latest_suffix = ".latest"

(* A temp file this old belongs to a writer that crashed mid-save; a
   live writer renames (or unlinks) its temp within milliseconds. *)
let tmp_max_age = 900.

let mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then
      (try Unix.mkdir parent 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ dir =
  mkdir_p dir;
  { sdir = dir }

let dir t = t.sdir

type key = string

(* Components are length-prefixed before digesting so no two distinct
   component lists can concatenate to the same byte string (e.g.
   ["ab";"c"] vs ["a";"bc"]). *)
let key ?(deck = "") ?(scale = "1") ~design ~params () =
  let b = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s)
    [
      schema_tag;
      string_of_int Codec.format_version;
      design;
      params;
      deck;
      scale;
    ];
  Digest.to_hex (Digest.string (Buffer.contents b))

let key_hex k = k
let short k = if String.length k >= 8 then String.sub k 0 8 else k
let path_of t k = Filename.concat t.sdir (k ^ suffix)

(* ---- advisory store lock ------------------------------------------ *)
(*
   Mutators (save, clear, gc, sweep_tmp) and whole-directory readers
   (stats) take a best-effort fcntl lock on <dir>/.lock so maintenance
   walking the directory does not race a resident writer in another
   process: gc/stats see a consistent snapshot across cooperating rsg
   processes.  Everything stays correct without the lock — entries are
   installed by atomic rename and removal tolerates losing races — so
   any locking failure (exotic filesystem, permissions) just falls
   back to the unlocked behaviour.  Single-entry reads (find, harvest)
   stay unlocked: they touch one file, the rename makes that safe, and
   they are the latency-critical path.

   fcntl caveats, by design: locks are per-process (two domains of one
   daemon do not exclude each other — in-process callers synchronise
   at a higher level), and closing any fd on the lock file drops the
   process's locks, so nothing here may nest with_lock on one store
   (gc uses the unlocked sweep internally for exactly that reason).
*)

let lock_path t = Filename.concat t.sdir ".lock"

let with_lock ?(shared = false) t f =
  match Unix.openfile (lock_path t) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error _ -> f ()
  | fd ->
    (try Unix.lockf fd (if shared then Unix.F_RLOCK else Unix.F_LOCK) 0
     with Unix.Unix_error _ -> ());
    Fun.protect f ~finally:(fun () ->
        (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())

(* Removal that tolerates losing the race to a concurrent process:
   ENOENT means someone else already unlinked the file, which is the
   state we wanted.  Returns whether {e this} call did the removal, so
   clear/gc counts stay accurate under contention. *)
let unlink_existing path =
  match Unix.unlink path with
  | () -> true
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> false
  | exception Unix.Unix_error _ -> false

type lookup = Hit of Codec.entry | Miss | Corrupt of Codec.error

let find t k =
  let path = path_of t k in
  if not (Sys.file_exists path) then begin
    Obs.count "store.miss";
    Miss
  end
  else
    match Codec.read_file path with
    | entry ->
        Obs.count "store.hit";
        Hit entry
    | exception Codec.Error (Codec.Bad_version _) ->
        (* written by a different codec generation: not damage, just
           stale — remove it so the miss is clean and one-time *)
        Obs.count "store.stale";
        ignore (unlink_existing path);
        Miss
    | exception Codec.Error e ->
        (* count first, then delete: the bad file must cost exactly one
           corrupt report and one regeneration, never one per run *)
        Obs.count "store.corrupt";
        ignore (unlink_existing path);
        Corrupt e
    | exception Sys_error _ ->
        Obs.count "store.miss";
        Miss

(* ---- per-design latest pointer ----------------------------------- *)
(*
   Incremental regeneration needs the {e previous} entry for a design
   even though an edit changed its key (the key digests the design
   text).  The pointer file <digest(stem)>.latest holds the key hex of
   the last entry saved for the stem — a generator-family + design
   identity that deliberately excludes the content that edits change.
*)

let stem_path t stem =
  Filename.concat t.sdir (Digest.to_hex (Digest.string stem) ^ latest_suffix)

let is_hex32 s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let latest t ~stem =
  let path = stem_path t stem in
  match In_channel.with_open_bin path In_channel.input_all with
  | s ->
      let s = String.trim s in
      if is_hex32 s then Some s
      else begin
        (* truncated or garbled pointer — a writer from before pointers
           went through the atomic temp+rename path, or tampering.  A
           clean miss: remove it so it costs one report, not one per
           run, and the next save installs a fresh pointer. *)
        Obs.count "store.bad_pointer";
        ignore (unlink_existing path);
        None
      end
  | exception Sys_error _ -> None

let save t k ?stem ~label ?flat ?protos cell =
  let data = Codec.encode ?flat ?protos ~label cell in
  with_lock t (fun () ->
      Codec.write_file (path_of t k) data;
      (* the pointer goes through the same atomic temp+rename+fsync
         path as entries: a crash mid-save leaves either the previous
         pointer or the new one, never a truncated file *)
      match stem with
      | Some stem -> Codec.write_file (stem_path t stem) (key_hex k)
      | None -> ());
  Obs.count "store.save"

let harvest t ~stem =
  match latest t ~stem with
  | None -> None
  | Some k -> (
      let path = path_of t k in
      match In_channel.with_open_bin path In_channel.input_all with
      | data -> (
          match Codec.decode_protos data with
          | _label, protos ->
              Obs.count "store.harvest";
              Some (k, protos)
          | exception Codec.Error (Codec.Bad_version _) ->
              Obs.count "store.stale";
              ignore (unlink_existing path);
              None
          | exception Codec.Error _ ->
              Obs.count "store.corrupt";
              ignore (unlink_existing path);
              None)
      | exception Sys_error _ -> None)

(* ---- listing, stats, maintenance --------------------------------- *)

type entry_stat = {
  es_key : string;
  es_label : string;
  es_bytes : int;
  es_protos : int;
  es_reused : int;
}

type stats = {
  st_entries : int;
  st_bytes : int;
  st_list : entry_stat list;
  st_sections : Codec.section list;
}

let entries t =
  let files = try Sys.readdir t.sdir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter_map (fun f ->
         if Filename.check_suffix f suffix then
           Some (Filename.chop_suffix f suffix)
         else None)
  |> List.sort String.compare

let stats t =
  with_lock ~shared:true t @@ fun () ->
  let ks = entries t in
  (* aggregated per-section accounting, in payload order; corrupt
     entries contribute nothing *)
  let sec_order : string list ref = ref [] in
  let sec_tbl : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let add_sections data =
    match Codec.sections data with
    | secs ->
      List.iter
        (fun (s : Codec.section) ->
          (match Hashtbl.find_opt sec_tbl s.Codec.s_name with
          | None ->
            sec_order := s.Codec.s_name :: !sec_order;
            Hashtbl.add sec_tbl s.Codec.s_name
              (s.Codec.s_bytes, s.Codec.s_entries)
          | Some (b, e) ->
            Hashtbl.replace sec_tbl s.Codec.s_name
              (b + s.Codec.s_bytes, e + s.Codec.s_entries)))
        secs
    | exception _ -> ()
  in
  let list =
    List.map
      (fun k ->
        let path = path_of t k in
        let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
        let label, protos, reused =
          match In_channel.with_open_bin path In_channel.input_all with
          | data -> (
            add_sections data;
            match Codec.decode_protos data with
            | l, ps ->
                ( l,
                  Array.length ps,
                  Array.fold_left
                    (fun a (p : Codec.proto) -> if p.Codec.p_reused then a + 1 else a)
                    0 ps )
            | exception _ -> ("(corrupt)", 0, 0))
          | exception _ -> ("(corrupt)", 0, 0)
        in
        { es_key = k; es_label = label; es_bytes = bytes;
          es_protos = protos; es_reused = reused })
      ks
  in
  {
    st_entries = List.length list;
    st_bytes = List.fold_left (fun a e -> a + e.es_bytes) 0 list;
    st_list = list;
    st_sections =
      List.rev_map
        (fun name ->
          let b, e = Hashtbl.find sec_tbl name in
          { Codec.s_name = name; s_bytes = b; s_entries = e })
        !sec_order;
  }

(* write_file's temp names: ".rsgdb-" prefix, ".tmp" suffix *)
let is_tmp_file f =
  String.length f > 11
  && String.sub f 0 7 = ".rsgdb-"
  && Filename.check_suffix f ".tmp"

let is_pointer_file f = Filename.check_suffix f latest_suffix

let sweep_tmp_unlocked ?(max_age = tmp_max_age) t =
  let now = Unix.gettimeofday () in
  let files = try Sys.readdir t.sdir with Sys_error _ -> [||] in
  let swept = ref 0 in
  Array.iter
    (fun f ->
      if is_tmp_file f then begin
        let path = Filename.concat t.sdir f in
        match Unix.stat path with
        | st when now -. st.Unix.st_mtime >= max_age ->
            if unlink_existing path then begin
              Obs.count "store.tmp_swept";
              incr swept
            end
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      end)
    files;
  !swept

(* gc calls the unlocked body: re-entering with_lock on the same store
   would close a second fd on .lock and drop the outer lock (fcntl) *)
let sweep_tmp ?max_age t = with_lock t (fun () -> sweep_tmp_unlocked ?max_age t)

let clear t =
  with_lock t @@ fun () ->
  let files = try Sys.readdir t.sdir with Sys_error _ -> [||] in
  let removed = ref 0 in
  Array.iter
    (fun f ->
      let entry = Filename.check_suffix f suffix in
      if entry || is_pointer_file f || is_tmp_file f then begin
        let did = unlink_existing (Filename.concat t.sdir f) in
        if did && entry then incr removed
      end)
    files;
  !removed

let gc ?max_age ?max_bytes t =
  with_lock t @@ fun () ->
  let now = Unix.gettimeofday () in
  let stat k =
    let path = path_of t k in
    match Unix.stat path with
    | st -> Some (k, st.Unix.st_mtime, st.Unix.st_size)
    | exception Unix.Unix_error _ -> None
  in
  let all = List.filter_map stat (entries t) in
  let removed = ref 0 in
  let remove k = if unlink_existing (path_of t k) then incr removed in
  let survivors =
    match max_age with
    | None -> all
    | Some age ->
        List.filter
          (fun (k, mtime, _) ->
            if now -. mtime > age then (remove k; false) else true)
          all
  in
  (match max_bytes with
  | None -> ()
  | Some limit ->
      (* oldest first; keys tie-break for determinism *)
      let by_age =
        List.sort
          (fun (ka, ma, _) (kb, mb, _) ->
            match compare ma mb with 0 -> String.compare ka kb | c -> c)
          survivors
      in
      let total = List.fold_left (fun a (_, _, sz) -> a + sz) 0 by_age in
      let excess = ref (total - limit) in
      List.iter
        (fun (k, _, sz) ->
          if !excess > 0 then begin
            remove k;
            (* the file is gone either way, so the space is reclaimed
               even when a concurrent gc did the unlink *)
            excess := !excess - sz
          end)
        by_age);
  ignore (sweep_tmp_unlocked t);
  (* drop pointers whose entry no longer exists (gc'd above, cleared,
     or never completed); a truncated pointer file is dropped too *)
  let files = try Sys.readdir t.sdir with Sys_error _ -> [||] in
  Array.iter
    (fun f ->
      if is_pointer_file f then begin
        let path = Filename.concat t.sdir f in
        let target =
          match In_channel.with_open_bin path In_channel.input_all with
          | s ->
              let s = String.trim s in
              if is_hex32 s then Some s else None
          | exception Sys_error _ -> None
        in
        match target with
        | Some k when Sys.file_exists (path_of t k) -> ()
        | _ -> ignore (unlink_existing path)
      end)
    files;
  !removed

(** Versioned binary codec for layout databases.

    Serialises one cell hierarchy — every distinct cell reachable from
    a root, children before parents, with its boxes, labels and
    instance calls — plus (optionally) the root's flattened geometry,
    so a reader gets back both the hierarchical layout (for CIF/DEF
    writing, byte-identical to the original) and the prototype-built
    flat view (for DRC/extraction/stats) without re-expanding or
    re-flattening anything.

    The format is deliberately {e not} [Marshal]: OCaml's marshaller is
    not stable across compiler versions, silently accepts any value,
    and gives no integrity guarantee.  This codec instead writes an
    explicit container

    {v magic "RSGL" | u32 version | u32 payload length | u32 CRC-32 | payload v}

    (fixed-width fields little-endian; payload integers as LEB128
    varints, signed values zigzag-encoded; strings length-prefixed;
    the flattened-box section stores coordinate deltas against the
    previous box and is itself length-prefixed, so {!decode} can skip
    it and hand back a lazy view).
    Every decode verifies magic, version, length and checksum and
    raises the typed {!Error} on any mismatch, so a truncated or
    bit-flipped file is detected instead of producing garbage
    geometry.  {!write_file} writes to a temp file in the target
    directory and renames it into place, so readers never observe a
    partial entry. *)

open Rsg_layout

val format_version : int
(** Bumped on any incompatible change to the payload layout.  Part of
    the cache key in {!Store}, so stale-format entries are simply
    never looked up — and a direct {!decode} of one fails with
    [Bad_version] rather than misparsing. *)

type error =
  | Bad_magic
  | Bad_version of { found : int; expected : int }
  | Truncated of string           (** which field ran out of bytes *)
  | Checksum_mismatch of { stored : int32; computed : int32 }
  | Malformed of string           (** structurally invalid payload *)

exception Error of error

val pp_error : Format.formatter -> error -> unit

type entry = {
  e_label : string;  (** human description, e.g. ["multiplier 8x8"] *)
  e_cell : Cell.t;   (** the root of the decoded hierarchy *)
  e_flat : Flatten.flat option Lazy.t;
      (** the root's flattened geometry, when the writer stored it;
          identical to [Flatten.flatten e_cell] box for box.  Lazy:
          the section is length-prefixed and checksum-verified up
          front but only decoded on force, so loads that just rewrite
          the hierarchy (CIF output) skip the bulk of the entry *)
}

val encode : ?flat:Flatten.flat -> label:string -> Cell.t -> string
(** Serialise [cell] (and, when given, its flattened view) into a
    self-contained byte string. *)

val decode : string -> entry
(** Parse and verify a byte string produced by {!encode}.  Raises
    {!Error} on any corruption, version or framing problem. *)

val decode_label : string -> string
(** Cheap peek at the entry's label: verifies the container framing
    (magic, version, length, checksum) but decodes only the label —
    used by cache listings.  Raises {!Error} like {!decode}. *)

val write_file : string -> string -> unit
(** [write_file path data] writes atomically: a fresh temp file in
    [path]'s directory, then [rename] onto [path]. *)

val read_file : string -> entry
(** [decode] of the file's contents.  Raises {!Error} on corruption
    and [Sys_error] on I/O failure. *)

val crc32 : string -> int32
(** The CRC-32 (IEEE 802.3 polynomial) used for the payload checksum;
    exposed for tests. *)

(** Versioned binary codec for layout databases.

    Serialises one cell hierarchy — every distinct cell reachable from
    a root, children before parents, with its boxes, labels and
    instance calls — plus (optionally) the root's flattened geometry,
    so a reader gets back both the hierarchical layout (for CIF/DEF
    writing, byte-identical to the original) and the prototype-built
    flat view (for DRC/extraction/stats) without re-expanding or
    re-flattening anything.

    The format is deliberately {e not} [Marshal]: OCaml's marshaller is
    not stable across compiler versions, silently accepts any value,
    and gives no integrity guarantee.  This codec instead writes an
    explicit container

    {v magic "RSGL" | u32 version | u32 payload length | u32 CRC-32 | payload v}

    (fixed-width fields little-endian; payload integers as LEB128
    varints, signed values zigzag-encoded; strings length-prefixed;
    the flattened-box section stores coordinate deltas against the
    previous box and is itself length-prefixed, so {!decode} can skip
    it and hand back a lazy view).
    Every decode verifies magic, version, length and checksum and
    raises the typed {!Error} on any mismatch, so a truncated or
    bit-flipped file is detected instead of producing garbage
    geometry.  {!write_file} writes to a temp file in the target
    directory, fsyncs it, and renames it into place, so readers never
    observe a partial entry even across a crash.

    Version 2 adds the {e prototype table} between the label and the
    cell table: one record per distinct subtree digest
    ({!Rsg_layout.Flatten.subtree_digest}), children before parents.
    A record holds the prototype's own boxes and labels plus instance
    calls that reference the child's record {e by table index} — by
    subtree hash, never inlined geometry — together with a [reused]
    marker (did the run that wrote the entry recompute this prototype
    or adopt it from a previous entry?) and the hierarchical DRC
    levels computed for it, keyed by rule-deck digest.  The table is
    the content-addressed face of an entry: {!decode_protos} reads it
    without touching the cell table or the flat section, which is what
    makes incremental-regeneration harvesting and [cache stats]
    cheap.  Version-1 files fail decoding with [Bad_version] — the
    store treats them as stale misses, never mis-decodes them.

    Version 3 extends each prototype record with its {e condensed
    compaction artifacts} ({!Rsg_compact.Hcompact.pabs}): the internal
    x/y difference-constraint systems and solved pitch bounds, keyed
    by rule-deck digest ({!Rsg_compact.Rules.digest}).  A warm
    [rsg compact --hier --cache] run harvests them and skips
    constraint generation for every unchanged prototype.

    Version 4 extends each prototype record with its {e cached ERC
    verdicts} ({!Rsg_erc.Erc.cached_verdict}): per-level electrical
    censuses plus the root's diagnostic list, keyed by the ERC
    configuration digest ({!Rsg_erc.Erc.config_digest}).  A warm
    [rsg erc --cache] run replays every unchanged prototype's verdict
    without touching its geometry.  Version-3 files fail decoding
    with [Bad_version] and the store treats them as stale clean
    misses.

    Version 5 extends each prototype record with its {e cached
    placement-search evaluations}: compacted areas of annealing
    candidates, keyed by the raw 16-byte MD5 of (candidate digest ^
    rule-deck digest).  A warm [rsg place --cache] or
    [pla --fold-opt --cache] run replays every previously scored
    candidate instead of re-running the compactor.  Version-4 files
    fail decoding with [Bad_version] and the store treats them as
    stale clean misses. *)

open Rsg_layout

val format_version : int
(** Bumped on any incompatible change to the payload layout.  Part of
    the cache key in {!Store}, so stale-format entries are simply
    never looked up — and a direct {!decode} of one fails with
    [Bad_version] rather than misparsing. *)

type error =
  | Bad_magic
  | Bad_version of { found : int; expected : int }
  | Truncated of string           (** which field ran out of bytes *)
  | Checksum_mismatch of { stored : int32; computed : int32 }
  | Malformed of string           (** structurally invalid payload *)

exception Error of error

val pp_error : Format.formatter -> error -> unit

type proto = {
  p_hash : string;
      (** raw 16-byte subtree digest
          ({!Rsg_layout.Flatten.subtree_digest}) *)
  p_cell : Cell.t;
      (** the prototype's own objects; instance calls point at other
          protos' [p_cell]s (children precede parents in the table).
          Named by the hex digest — celltype names are not part of the
          content address *)
  p_reused : bool;
      (** the writing run adopted this prototype from a previous
          entry instead of recomputing it *)
  p_reports : (string * Rsg_drc.Drc.cached_level) list;
      (** hierarchical DRC results for this prototype, keyed by raw
          16-byte rule-deck digest ({!Rsg_drc.Deck.digest}) *)
  p_compacts : (string * Rsg_compact.Hcompact.pabs) list;
      (** condensed compaction artifacts — internal constraint graphs
          and pitch bounds — keyed by raw 16-byte compaction rule-deck
          digest ({!Rsg_compact.Rules.digest}) *)
  p_ercs : (string * Rsg_erc.Erc.cached_verdict) list;
      (** cached electrical verdicts, keyed by raw 16-byte ERC
          configuration digest ({!Rsg_erc.Erc.config_digest}) *)
  p_places : (string * int) list;
      (** cached placement-search evaluations: compacted area keyed by
          raw 16-byte MD5 of (candidate digest ^ rule-deck digest) —
          only the root prototype's record carries them *)
}

type entry = {
  e_label : string;  (** human description, e.g. ["multiplier 8x8"] *)
  e_cell : Cell.t;   (** the root of the decoded hierarchy *)
  e_flat : Flatten.flat option Lazy.t;
      (** the root's flattened geometry, when the writer stored it;
          identical to [Flatten.flatten e_cell] box for box.  Lazy:
          the section is length-prefixed and checksum-verified up
          front but only decoded on force, so loads that just rewrite
          the hierarchy (CIF output) skip the bulk of the entry *)
  e_protos : proto array;
      (** the prototype table, children before parents; empty when the
          writer supplied none *)
}

val proto_table :
  ?reused:(string -> bool) ->
  ?reports:(string -> (string * Rsg_drc.Drc.cached_level) list) ->
  ?compacts:(string -> (string * Rsg_compact.Hcompact.pabs) list) ->
  ?ercs:(string -> (string * Rsg_erc.Erc.cached_verdict) list) ->
  ?places:(string -> (string * int) list) ->
  Flatten.protos ->
  proto array
(** Build the prototype table of a flattening cache: one record per
    distinct subtree digest in postorder (congruent celltypes
    collapse into one record).  [reused], [reports], [compacts],
    [ercs] and [places] are consulted with each hex digest to fill
    the record's metadata; all default to nothing. *)

val encode : ?flat:Flatten.flat -> ?protos:proto array -> label:string -> Cell.t -> string
(** Serialise [cell] (and, when given, its flattened view and
    prototype table) into a self-contained byte string. *)

val decode : string -> entry
(** Parse and verify a byte string produced by {!encode}.  Raises
    {!Error} on any corruption, version or framing problem. *)

val decode_label : string -> string
(** Cheap peek at the entry's label: verifies the container framing
    (magic, version, length, checksum) but decodes only the label —
    used by cache listings.  Raises {!Error} like {!decode}. *)

val decode_protos : string -> string * proto array
(** The label and the prototype table, skipping the cell table and
    the flat section entirely — the harvesting path of incremental
    regeneration and the [cache stats] listing.  Raises {!Error} like
    {!decode}. *)

(** One payload section's byte/entry accounting, from {!sections}. *)
type section = { s_name : string; s_bytes : int; s_entries : int }

val sections : string -> section list
(** Per-section breakdown of an encoded entry — container framing,
    label, prototype geometry, cached DRC reports, cached constraint
    graphs, cached ERC verdicts, cached place evals, cell table, flat
    geometry — in payload order.  Entries are records / reports / graphs / verdicts
    / cells / flattened boxes as appropriate to the section.  Raises
    {!Error} like {!decode}. *)

val write_file : string -> string -> unit
(** [write_file path data] writes atomically and durably: a fresh
    temp file in [path]'s directory, [fsync], [rename] onto [path],
    then fsync of the directory — a reader (or a post-crash mount)
    sees either the old entry or the complete new one, never a
    prefix. *)

val read_file : string -> entry
(** [decode] of the file's contents.  Raises {!Error} on corruption
    and [Sys_error] on I/O failure. *)

val crc32 : string -> int32
(** The CRC-32 (IEEE 802.3 polynomial) used for the payload checksum;
    exposed for tests. *)

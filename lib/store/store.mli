(** Content-addressed on-disk cache of generated layouts.

    Every pipeline stage of the RSG is a pure function of its inputs:
    a connectivity graph plus a parameter set deterministically expands
    into a placed layout, so the generated database is fully determined
    by (design text, parameters, rule deck, scale, codec version).
    The store exploits that: entries are {!Codec}-encoded layout
    databases filed under a {!key} — a stable digest of exactly those
    inputs — so a warm run loads the finished (and already flattened)
    layout in O(file read) instead of re-parsing, re-expanding,
    re-flattening and re-checking.

    The v2 codec makes entries useful even after an edit misses the
    key: the prototype table inside each entry is content-addressed by
    subtree digest, so an incremental run {!harvest}s the {e previous}
    entry for the same design (found through a per-design [.latest]
    pointer, see {!save}'s [stem]) and reuses every prototype whose
    digest is unchanged — cached hierarchical-DRC levels replay, and
    only the dirty prototypes and their ancestors are recomputed.

    Corrupt or stale entries can never poison a run: {!find} verifies
    the codec checksum and version and reports damage as {!Corrupt}
    (counted under [store.corrupt] in {!Rsg_obs.Obs}); the damaged
    file is deleted after reporting, so a bad entry costs exactly one
    regeneration — the next run re-warms instead of tripping over it
    again.  Entries from an older codec generation are not damage:
    they fail with [Bad_version], count as [store.stale] and are
    removed as a clean {!Miss}.  Writes are atomic and durable (temp
    file + fsync + rename, see {!Codec.write_file}), so concurrent
    batch jobs may share one store directory freely; maintenance
    ({!clear}, {!gc}, {!sweep_tmp}) tolerates losing removal races to
    other processes and reports only what it actually deleted. *)

open Rsg_layout

type t
(** An opened store directory. *)

val open_ : string -> t
(** [open_ dir] uses [dir] as the store, creating it (and missing
    parents one level deep) if needed. *)

val dir : t -> string

val with_lock : ?shared:bool -> t -> (unit -> 'a) -> 'a
(** Run [f] under a best-effort advisory [fcntl] lock on
    [<dir>/.lock] — exclusive by default, [~shared:true] for a read
    lock.  Mutators ({!save}, {!clear}, {!gc}, {!sweep_tmp}) take the
    exclusive lock and the whole-directory reader ({!stats}) the
    shared one, so maintenance walking the store does not race a
    resident writer in {e another process}.  The guarantee is
    deliberately advisory and best-effort: correctness never depends
    on it (entries are installed by atomic rename; removals tolerate
    losing races), locking failures silently fall back to running
    unlocked, fcntl locks do not exclude callers within one process,
    and single-entry reads ({!find}, {!harvest}) stay unlocked on the
    latency-critical path.  Do not nest [with_lock] calls on one
    store: closing any descriptor of the lock file drops the
    process's locks. *)

type key = private string
(** 32-hex-digit content address. *)

val key :
  ?deck:string -> ?scale:string -> design:string -> params:string -> unit -> key
(** Digest of every generation input: the full design text (for
    design-file flows, concatenate the sample's text too — anything
    that shapes geometry belongs here), the canonical parameter
    listing, the rule deck the output was gated against ([""] when
    ungated), the output scale (default ["1"]), plus
    {!Codec.format_version} and a store schema tag.  Any input change
    yields a new key. *)

val key_hex : key -> string

val short : key -> string
(** First 8 hex digits, for human-facing messages. *)

type lookup =
  | Hit of Codec.entry
  | Miss
  | Corrupt of Codec.error
      (** entry existed but failed verification; it has been removed *)

val find : t -> key -> lookup
(** Look a key up, verifying the entry end to end.  Counts
    [store.hit] / [store.miss] / [store.corrupt] in Obs.  An entry in
    an older codec format is deleted and reported as a plain {!Miss}
    (counted [store.stale]) — it is never mis-decoded and never
    surfaces as {!Corrupt}. *)

val save :
  t ->
  key ->
  ?stem:string ->
  label:string ->
  ?flat:Flatten.flat ->
  ?protos:Codec.proto array ->
  Cell.t ->
  unit
(** Encode and atomically install an entry (last writer wins).
    [stem] names the design {e independently of its content} —
    generator family plus design identity, excluding parameters and
    text that edits change — and installs a per-stem [.latest]
    pointer to this key, which is what lets a later run of an edited
    design {!harvest} this entry. *)

val latest : t -> stem:string -> key option
(** The key most recently {!save}d under [stem], if its pointer file
    exists and is well-formed.  Pointers are installed by the same
    atomic temp+rename+fsync path as entries, so a crash mid-save
    never leaves a truncated pointer; if one is found anyway
    (pre-atomic writers, tampering) it is removed, counted as
    [store.bad_pointer], and reported as a clean [None] — never an
    error. *)

val harvest : t -> stem:string -> (key * Codec.proto array) option
(** The previous entry for [stem]: follows the [.latest] pointer and
    decodes only the prototype table (the cell table and flat section
    are never touched).  Returns [None] — removing the bad entry, as
    {!find} would — when the pointer dangles or the entry is stale or
    corrupt.  Counts [store.harvest] on success. *)

val path_of : t -> key -> string

type entry_stat = {
  es_key : string;
  es_label : string;
  es_bytes : int;
  es_protos : int;  (** prototype-table records in the entry *)
  es_reused : int;
      (** records whose prototype the writing run adopted from a
          previous entry instead of recomputing *)
}

type stats = {
  st_entries : int;
  st_bytes : int;
  st_list : entry_stat list;  (** sorted by key, deterministic *)
  st_sections : Codec.section list;
      (** per-section byte/entry totals aggregated over every readable
          entry ({!Codec.sections}), in payload order *)
}

val stats : t -> stats
(** Unreadable entries are listed with the label ["(corrupt)"]. *)

val clear : t -> int
(** Delete every entry, pointer file and leftover temp file; returns
    how many {e entries} this call removed (not counting files a
    concurrent process deleted first). *)

val sweep_tmp : ?max_age:float -> t -> int
(** Delete orphaned [.rsgdb-*.tmp] files — writers that crashed
    between temp creation and rename — older than [max_age] seconds
    (default 900).  Returns how many were removed (counted
    [store.tmp_swept]).  Run by {!gc}; callable directly for eager
    cleanup. *)

val gc : ?max_age:float -> ?max_bytes:int -> t -> int
(** Delete entries older than [max_age] seconds, then — oldest first —
    until at most [max_bytes] remain; afterwards sweep orphaned temp
    files and pointer files whose entry no longer exists.  Returns how
    many entries were removed. *)

(** Content-addressed on-disk cache of generated layouts.

    Every pipeline stage of the RSG is a pure function of its inputs:
    a connectivity graph plus a parameter set deterministically expands
    into a placed layout, so the generated database is fully determined
    by (design text, parameters, rule deck, scale, codec version).
    The store exploits that: entries are {!Codec}-encoded layout
    databases filed under a {!key} — a stable digest of exactly those
    inputs — so a warm run loads the finished (and already flattened)
    layout in O(file read) instead of re-parsing, re-expanding,
    re-flattening and re-checking.

    Corrupt or stale entries can never poison a run: {!find} verifies
    the codec checksum and version and reports damage as {!Corrupt}
    (counted under [store.corrupt] in {!Rsg_obs.Obs}), and callers fall
    back to regeneration, which overwrites the bad entry.  Writes are
    atomic (temp file + rename, see {!Codec.write_file}), so concurrent
    batch jobs may share one store directory freely. *)

open Rsg_layout

type t
(** An opened store directory. *)

val open_ : string -> t
(** [open_ dir] uses [dir] as the store, creating it (and missing
    parents one level deep) if needed. *)

val dir : t -> string

type key = private string
(** 32-hex-digit content address. *)

val key :
  ?deck:string -> ?scale:string -> design:string -> params:string -> unit -> key
(** Digest of every generation input: the full design text (for
    design-file flows, concatenate the sample's text too — anything
    that shapes geometry belongs here), the canonical parameter
    listing, the rule deck the output was gated against ([""] when
    ungated), the output scale (default ["1"]), plus
    {!Codec.format_version} and a store schema tag.  Any input change
    yields a new key. *)

val key_hex : key -> string

val short : key -> string
(** First 8 hex digits, for human-facing messages. *)

type lookup =
  | Hit of Codec.entry
  | Miss
  | Corrupt of Codec.error
      (** entry existed but failed verification; it has been removed *)

val find : t -> key -> lookup
(** Look a key up, verifying the entry end to end.  Counts
    [store.hit] / [store.miss] / [store.corrupt] in Obs. *)

val save : t -> key -> label:string -> ?flat:Flatten.flat -> Cell.t -> unit
(** Encode and atomically install an entry (last writer wins). *)

val path_of : t -> key -> string

type entry_stat = { es_key : string; es_label : string; es_bytes : int }

type stats = {
  st_entries : int;
  st_bytes : int;
  st_list : entry_stat list;  (** sorted by key, deterministic *)
}

val stats : t -> stats
(** Unreadable entries are listed with the label ["(corrupt)"]. *)

val clear : t -> int
(** Delete every entry; returns how many were removed. *)

val gc : ?max_age:float -> ?max_bytes:int -> t -> int
(** Delete entries older than [max_age] seconds, then — oldest first —
    until at most [max_bytes] remain.  Returns how many were
    removed. *)

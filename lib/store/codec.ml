open Rsg_geom
open Rsg_layout
module Drc = Rsg_drc.Drc
module Hcompact = Rsg_compact.Hcompact
module Cgraph = Rsg_compact.Cgraph
module Diag = Rsg_lint.Diag
module Erc = Rsg_erc.Erc

let format_version = 5

let magic = "RSGL"

type error =
  | Bad_magic
  | Bad_version of { found : int; expected : int }
  | Truncated of string
  | Checksum_mismatch of { stored : int32; computed : int32 }
  | Malformed of string

exception Error of error

let pp_error ppf = function
  | Bad_magic -> Format.fprintf ppf "not a layout database (bad magic)"
  | Bad_version { found; expected } ->
    Format.fprintf ppf "format version %d, this build reads %d" found expected
  | Truncated what -> Format.fprintf ppf "truncated while reading %s" what
  | Checksum_mismatch { stored; computed } ->
    Format.fprintf ppf "checksum mismatch (stored %08lx, computed %08lx)"
      stored computed
  | Malformed what -> Format.fprintf ppf "malformed payload: %s" what

type proto = {
  p_hash : string;
  p_cell : Cell.t;
  p_reused : bool;
  p_reports : (string * Drc.cached_level) list;
  p_compacts : (string * Hcompact.pabs) list;
  p_ercs : (string * Erc.cached_verdict) list;
  p_places : (string * int) list;
}

type entry = {
  e_label : string;
  e_cell : Cell.t;
  e_flat : Flatten.flat option Lazy.t;
  e_protos : proto array;
}

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected), table-driven                       *)
(* ------------------------------------------------------------------ *)

(* Computed over native ints — the running value never exceeds 32 bits,
   and unboxed arithmetic keeps the checksum out of the warm-load
   profile (boxed Int32 steps cost several allocations per byte).
   Slicing-by-4: four derived tables let the loop fold one 32-bit word
   per step instead of one byte. *)
let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c :=
               if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1)
               else !c lsr 1
           done;
           !c)
     in
     let next t n = t0.(t.(n) land 0xff) lxor (t.(n) lsr 8) in
     let t1 = Array.init 256 (next t0) in
     let t2 = Array.init 256 (next t1) in
     let t3 = Array.init 256 (next t2) in
     (t0, t1, t2, t3))

let crc32 s =
  let t0, t1, t2, t3 = Lazy.force crc_tables in
  let len = String.length s in
  let c = ref 0xffffffff in
  let i = ref 0 in
  while !i + 4 <= len do
    let b0 = Char.code (String.unsafe_get s !i)
    and b1 = Char.code (String.unsafe_get s (!i + 1))
    and b2 = Char.code (String.unsafe_get s (!i + 2))
    and b3 = Char.code (String.unsafe_get s (!i + 3)) in
    let x = !c lxor (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)) in
    c :=
      t3.(x land 0xff)
      lxor t2.((x lsr 8) land 0xff)
      lxor t1.((x lsr 16) land 0xff)
      lxor t0.(x lsr 24);
    i := !i + 4
  done;
  while !i < len do
    c :=
      t0.((!c lxor Char.code (String.unsafe_get s !i)) land 0xff)
      lxor (!c lsr 8);
    incr i
  done;
  Int32.of_int (!c lxor 0xffffffff)

(* ------------------------------------------------------------------ *)
(* Primitive writers                                                  *)
(* ------------------------------------------------------------------ *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.logand v 0xffl)));
  Buffer.add_char buf
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xffl)));
  Buffer.add_char buf
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xffl)));
  Buffer.add_char buf
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xffl)))

(* LEB128 on non-negative ints *)
let rec put_uint buf v =
  if v < 0 then invalid_arg "Codec.put_uint"
  else if v < 0x80 then Buffer.add_char buf (Char.chr v)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
    put_uint buf (v lsr 7)
  end

(* zigzag: small magnitudes of either sign stay short *)
let put_int buf v = put_uint buf ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

let put_str buf s =
  put_uint buf (String.length s);
  Buffer.add_string buf s

(* MD5 digests (subtree hashes, deck digests) are a fixed 16 bytes, so
   they are written raw, without a length prefix. *)
let put_raw16 buf s =
  if String.length s <> 16 then invalid_arg "Codec.put_raw16";
  Buffer.add_string buf s

let put_vec buf (v : Vec.t) =
  put_int buf v.Vec.x;
  put_int buf v.Vec.y

let put_box buf (b : Box.t) =
  put_int buf b.Box.xmin;
  put_int buf b.Box.ymin;
  put_int buf b.Box.xmax;
  put_int buf b.Box.ymax

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                  *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int }

let byte r what =
  if r.pos >= String.length r.src then raise (Error (Truncated what))
  else begin
    let c = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    c
  end

(* Hot in warm loads (five varints per flattened box), so the common
   single-byte case takes one bounds check and no calls. *)
let get_uint r what =
  let src = r.src in
  let len = String.length src in
  let pos = r.pos in
  if pos >= len then raise (Error (Truncated what));
  let b = Char.code (String.unsafe_get src pos) in
  if b < 0x80 then begin
    r.pos <- pos + 1;
    b
  end
  else begin
    let acc = ref (b land 0x7f) in
    let shift = ref 7 in
    let p = ref (pos + 1) in
    let more = ref true in
    while !more do
      if !shift > Sys.int_size - 8 then
        raise (Error (Malformed (what ^ ": varint too wide")));
      if !p >= len then raise (Error (Truncated what));
      let b = Char.code (String.unsafe_get src !p) in
      incr p;
      acc := !acc lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then more := false
    done;
    r.pos <- !p;
    !acc
  end

let get_int r what =
  let z = get_uint r what in
  (z lsr 1) lxor (-(z land 1))

let get_str r what =
  let n = get_uint r what in
  if r.pos + n > String.length r.src then raise (Error (Truncated what))
  else begin
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s
  end

let get_vec r what =
  let x = get_int r what in
  let y = get_int r what in
  Vec.make x y

let get_box r what =
  let xmin = get_int r what in
  let ymin = get_int r what in
  let xmax = get_int r what in
  let ymax = get_int r what in
  if xmin > xmax || ymin > ymax then raise (Error (Malformed (what ^ ": inverted box")))
  else Box.make ~xmin ~ymin ~xmax ~ymax

let get_layer r what =
  let i = get_uint r what in
  match Layer.of_index_exn i with
  | l -> l
  | exception Invalid_argument _ ->
    raise (Error (Malformed (Printf.sprintf "%s: layer index %d" what i)))

let get_orient r what =
  let i = get_uint r what in
  match Orient.of_index i with
  | o -> o
  | exception Invalid_argument _ ->
    raise (Error (Malformed (Printf.sprintf "%s: orientation index %d" what i)))

(* ------------------------------------------------------------------ *)
(* Payload                                                            *)
(* ------------------------------------------------------------------ *)

(* Distinct cells children-before-parents (physical identity, so two
   same-named cells are kept apart and instance sharing survives the
   round trip), mirroring the CIF writer's definition-before-use
   order. *)
let ordered_cells root =
  let seen : (Cell.t * int) list ref = ref [] in
  let order = ref [] and count = ref 0 in
  let rec visit c =
    if not (List.mem_assq c !seen) then begin
      (* reserve the slot only after the children, postorder *)
      List.iter (fun (i : Cell.instance) -> visit i.Cell.def) (Cell.instances c);
      seen := (c, !count) :: !seen;
      incr count;
      order := c :: !order
    end
  in
  visit root;
  (List.rev !order, fun c -> List.assq c !seen)

let tag_box = 0
and tag_label = 1
and tag_instance = 2

(* One cell's (or prototype's) object list; [index_of] resolves an
   instance's definition to its table index — the cell table and the
   prototype table share this shape. *)
let put_objs buf index_of objs =
  put_uint buf (List.length objs);
  List.iter
    (fun obj ->
      match obj with
      | Cell.Obj_box (layer, b) ->
        put_uint buf tag_box;
        put_uint buf (Layer.to_index layer);
        put_box buf b
      | Cell.Obj_label l ->
        put_uint buf tag_label;
        put_str buf l.Cell.text;
        put_vec buf l.Cell.at
      | Cell.Obj_instance i ->
        put_uint buf tag_instance;
        put_uint buf (index_of i.Cell.def);
        put_uint buf (Orient.to_index i.Cell.orientation);
        put_vec buf i.Cell.point_of_call)
    objs

let put_cell buf index_of (c : Cell.t) =
  put_str buf c.Cell.cname;
  put_objs buf index_of (Cell.objects c)

(* ---- the prototype table ----------------------------------------- *)
(*
   The content-addressed section of a v2 entry: one record per
   distinct subtree digest, children before parents.  Each record
   carries the prototype's own objects only — instance calls reference
   the child's record by table index (i.e. by subtree hash), never
   inlined geometry — so the table stays proportional to the design's
   celltype definitions while still letting a reader recompose any
   prototype's full flat via Flatten.prototypes.  Per-deck cached DRC
   levels ride on each record, keyed by the deck digest.
*)

let put_violation buf (v : Drc.violation) =
  put_str buf v.Drc.v_rule;
  put_uint buf (List.length v.Drc.v_layers);
  List.iter (fun l -> put_uint buf (Layer.to_index l)) v.Drc.v_layers;
  put_uint buf (List.length v.Drc.v_boxes);
  List.iter (put_box buf) v.Drc.v_boxes;
  put_int buf v.Drc.v_required;
  (* measured values use zigzag: -1 marks unmet enclosure *)
  put_int buf v.Drc.v_actual

let put_level buf (l : Drc.cached_level) =
  put_uint buf (List.length l.Drc.cl_violations);
  List.iter
    (fun (v, n) ->
      put_violation buf v;
      put_uint buf n)
    l.Drc.cl_violations;
  put_uint buf l.Drc.cl_contexts;
  put_uint buf l.Drc.cl_distinct;
  put_uint buf l.Drc.cl_boxes

(* ---- condensed compaction artifacts (version 3) ------------------ *)
(*
   A serialised difference-constraint system plus its solved pitch
   bounds, keyed by rule-deck digest: what Hcompact.hier needs to skip
   constraint generation on a warm run.  Variable 0 is the origin, so
   inits start at variable 1; constraint endpoints are plain variable
   indices, gaps are signed (rigid-width back edges).
*)

let put_cgraph buf (cg : Hcompact.cgraph) =
  put_uint buf cg.Hcompact.cg_nv;
  for v = 1 to cg.Hcompact.cg_nv - 1 do
    put_int buf cg.Hcompact.cg_inits.(v)
  done;
  put_uint buf (Array.length cg.Hcompact.cg_cons);
  Array.iter
    (fun (c : Cgraph.constr) ->
      put_uint buf c.Cgraph.c_from;
      put_uint buf c.Cgraph.c_to;
      put_int buf c.Cgraph.c_gap)
    cg.Hcompact.cg_cons

let put_pabs buf (p : Hcompact.pabs) =
  put_uint buf p.Hcompact.pa_wmin;
  put_uint buf p.Hcompact.pa_hmin;
  put_cgraph buf p.Hcompact.pa_cx;
  put_cgraph buf p.Hcompact.pa_cy

(* ---- cached ERC verdicts (version 4) ----------------------------- *)
(*
   Per-prototype electrical verdicts, keyed by the ERC config digest
   (name lists, fanout limit, strictness and rule deck): the censuses
   every level stores plus, for the root, the full diagnostic list.
   Severities are stored explicitly — [strict] bakes escalation into
   the record — while the thesis-section cross-reference is
   recomputed from the code table on read.
*)

let put_opt buf f = function
  | None -> put_uint buf 0
  | Some v ->
    put_uint buf 1;
    f v

let put_diag buf (d : Diag.t) =
  put_str buf d.Diag.code;
  put_uint buf
    (match d.Diag.severity with
    | Diag.Error -> 0
    | Diag.Warning -> 1
    | Diag.Info -> 2);
  put_opt buf (put_str buf) d.Diag.file;
  put_opt buf (put_int buf) d.Diag.line;
  put_opt buf
    (fun (s : Diag.span) ->
      put_int buf s.Diag.s_line;
      put_int buf s.Diag.s_col;
      put_int buf s.Diag.s_end_line;
      put_int buf s.Diag.s_end_col)
    d.Diag.span;
  put_str buf d.Diag.message

let put_verdict buf (v : Erc.cached_verdict) =
  put_uint buf v.Erc.cv_nets;
  put_uint buf v.Erc.cv_devices;
  put_uint buf v.Erc.cv_open;
  put_uint buf v.Erc.cv_rails;
  put_uint buf (List.length v.Erc.cv_diags);
  List.iter (put_diag buf) v.Erc.cv_diags

let put_proto buf index_of (p : proto) =
  put_raw16 buf p.p_hash;
  put_uint buf (if p.p_reused then 1 else 0);
  put_objs buf index_of (Cell.objects p.p_cell);
  put_uint buf (List.length p.p_reports);
  List.iter
    (fun (deck, lvl) ->
      put_raw16 buf deck;
      put_level buf lvl)
    p.p_reports;
  put_uint buf (List.length p.p_compacts);
  List.iter
    (fun (rules, pa) ->
      put_raw16 buf rules;
      put_pabs buf pa)
    p.p_compacts;
  put_uint buf (List.length p.p_ercs);
  List.iter
    (fun (cfg, v) ->
      put_raw16 buf cfg;
      put_verdict buf v)
    p.p_ercs;
  put_uint buf (List.length p.p_places);
  List.iter
    (fun (key, area) ->
      put_raw16 buf key;
      put_uint buf area)
    p.p_places

let put_protos buf protos =
  put_uint buf (Array.length protos);
  (* proto instances reference the rebuilt cells of earlier records;
     resolve them by physical identity, exactly like the cell table *)
  let index = ref [] in
  Array.iteri (fun i p -> index := (p.p_cell, i) :: !index) protos;
  let index_of c = List.assq c !index in
  Array.iter (put_proto buf index_of) protos

let proto_table ?(reused = fun _ -> false) ?(reports = fun _ -> [])
    ?(compacts = fun _ -> []) ?(ercs = fun _ -> []) ?(places = fun _ -> [])
    (protos : Flatten.protos) =
  let tbl : (string, Cell.t) Hashtbl.t = Hashtbl.create 32 in
  let out = ref [] in
  List.iter
    (fun c ->
      let h = Flatten.subtree_digest protos c in
      (* congruent celltypes share a digest and hence one record *)
      if not (Hashtbl.mem tbl h) then begin
        let hex = Digest.to_hex h in
        let copy = Cell.create hex in
        List.iter
          (fun obj ->
            match obj with
            | Cell.Obj_box (l, b) -> Cell.add_box copy l b
            | Cell.Obj_label l -> Cell.add_label copy l.Cell.text l.Cell.at
            | Cell.Obj_instance i ->
              let child =
                Hashtbl.find tbl (Flatten.subtree_digest protos i.Cell.def)
              in
              ignore
                (Cell.add_instance copy ~orient:i.Cell.orientation
                   ~at:i.Cell.point_of_call child))
          (Cell.objects c);
        Hashtbl.add tbl h copy;
        out :=
          { p_hash = h; p_cell = copy; p_reused = reused hex;
            p_reports = reports hex; p_compacts = compacts hex;
            p_ercs = ercs hex; p_places = places hex }
          :: !out
      end)
    (Flatten.protos_order protos);
  Array.of_list (List.rev !out)

(* Flattened boxes are written as coordinate deltas against the
   previous box (zigzag keeps either sign short): the flattener emits
   them with strong spatial locality, so most deltas fit one varint
   byte, roughly halving the section and keeping warm loads on the
   decoder's inline fast path. *)
let put_flat buf (f : Flatten.flat) =
  put_uint buf (Array.length f.Flatten.flat_boxes);
  let pxmin = ref 0 and pymin = ref 0 and pxmax = ref 0 and pymax = ref 0 in
  Array.iter
    (fun (layer, (b : Box.t)) ->
      put_uint buf (Layer.to_index layer);
      put_int buf (b.Box.xmin - !pxmin);
      put_int buf (b.Box.ymin - !pymin);
      put_int buf (b.Box.xmax - !pxmax);
      put_int buf (b.Box.ymax - !pymax);
      pxmin := b.Box.xmin;
      pymin := b.Box.ymin;
      pxmax := b.Box.xmax;
      pymax := b.Box.ymax)
    f.Flatten.flat_boxes;
  put_uint buf (Array.length f.Flatten.flat_labels);
  Array.iter
    (fun (text, at) ->
      put_str buf text;
      put_vec buf at)
    f.Flatten.flat_labels;
  match f.Flatten.flat_bbox with
  | None -> put_uint buf 0
  | Some b ->
    put_uint buf 1;
    put_box buf b

let encode ?flat ?(protos = [||]) ~label cell =
  let payload = Buffer.create 4096 in
  put_str payload label;
  (* the prototype table precedes the cell table so harvesting and
     cache statistics can stop after it, never touching the (large)
     remainder of the payload *)
  put_protos payload protos;
  let cells, index_of = ordered_cells cell in
  put_uint payload (List.length cells);
  List.iter (put_cell payload index_of) cells;
  (match flat with
  | None -> put_uint payload 0
  | Some f ->
    put_uint payload 1;
    (* length-prefixed so decode can skip the section and hand back a
       lazy view: runs that never touch the flat geometry (plain CIF
       writes) skip the bulk of the payload entirely *)
    let fbuf = Buffer.create 4096 in
    put_flat fbuf f;
    put_uint payload (Buffer.length fbuf);
    Buffer.add_buffer payload fbuf);
  let payload = Buffer.contents payload in
  let out = Buffer.create (String.length payload + 16) in
  Buffer.add_string out magic;
  put_u32 out (Int32.of_int format_version);
  put_u32 out (Int32.of_int (String.length payload));
  put_u32 out (crc32 payload);
  Buffer.add_string out payload;
  Buffer.contents out

(* Read one object list into [c]; instance definitions resolve to
   earlier entries of [cells] (children before parents, so a forward
   reference is malformed). *)
let get_objs r cells idx c =
  let n_objs = get_uint r "object count" in
  for _ = 1 to n_objs do
    match get_uint r "object tag" with
    | 0 ->
      let layer = get_layer r "box layer" in
      let b = get_box r "box" in
      Cell.add_box c layer b
    | 1 ->
      let text = get_str r "label text" in
      let at = get_vec r "label position" in
      Cell.add_label c text at
    | 2 ->
      let def_idx = get_uint r "instance def" in
      if def_idx >= idx then
        raise (Error (Malformed (Printf.sprintf "forward instance reference %d in cell %d" def_idx idx)));
      let orient = get_orient r "instance orientation" in
      let at = get_vec r "instance position" in
      ignore (Cell.add_instance c ~orient ~at cells.(def_idx))
    | t -> raise (Error (Malformed (Printf.sprintf "object tag %d" t)))
  done

let get_cell r cells idx =
  let name = get_str r "cell name" in
  let c = Cell.create name in
  get_objs r cells idx c;
  c

let get_raw16 r what =
  if r.pos + 16 > String.length r.src then raise (Error (Truncated what));
  let s = String.sub r.src r.pos 16 in
  r.pos <- r.pos + 16;
  s

(* [f] reads from the mutable reader, so elements must be produced
   strictly left to right — List.init's application order is not part
   of its contract. *)
let read_list n f =
  let rec go acc i = if i = n then List.rev acc else go (f () :: acc) (i + 1) in
  go [] 0

let get_bool r what =
  match get_uint r what with
  | 0 -> false
  | 1 -> true
  | f -> raise (Error (Malformed (Printf.sprintf "%s: flag %d" what f)))

let get_violation r =
  let v_rule = get_str r "violation rule" in
  let n_layers = get_uint r "violation layer count" in
  let v_layers = read_list n_layers (fun () -> get_layer r "violation layer") in
  let n_boxes = get_uint r "violation box count" in
  let v_boxes = read_list n_boxes (fun () -> get_box r "violation box") in
  let v_required = get_int r "violation required" in
  let v_actual = get_int r "violation actual" in
  { Drc.v_rule; v_layers; v_boxes; v_required; v_actual }

let get_level r =
  let n = get_uint r "level violation count" in
  let cl_violations =
    read_list n (fun () ->
        let v = get_violation r in
        let count = get_uint r "violation placement count" in
        (v, count))
  in
  let cl_contexts = get_uint r "level contexts" in
  let cl_distinct = get_uint r "level distinct" in
  let cl_boxes = get_uint r "level boxes" in
  { Drc.cl_violations; cl_contexts; cl_distinct; cl_boxes }

let get_cgraph r =
  let nv = get_uint r "cgraph variable count" in
  if nv < 1 then raise (Error (Malformed "cgraph without origin"));
  let inits = Array.make nv 0 in
  for v = 1 to nv - 1 do
    inits.(v) <- get_int r "cgraph init"
  done;
  let nc = get_uint r "cgraph constraint count" in
  let cons =
    Array.init nc (fun _ ->
        let c_from = get_uint r "constraint from" in
        let c_to = get_uint r "constraint to" in
        if c_from >= nv || c_to >= nv then
          raise (Error (Malformed "constraint variable out of range"));
        let c_gap = get_int r "constraint gap" in
        { Cgraph.c_from; c_to; c_gap })
  in
  { Hcompact.cg_nv = nv; cg_inits = inits; cg_cons = cons }

let get_pabs r =
  let pa_wmin = get_uint r "pabs wmin" in
  let pa_hmin = get_uint r "pabs hmin" in
  let pa_cx = get_cgraph r in
  let pa_cy = get_cgraph r in
  { Hcompact.pa_wmin; pa_hmin; pa_cx; pa_cy }

let get_opt r what f =
  match get_uint r what with
  | 0 -> None
  | 1 -> Some (f ())
  | v -> raise (Error (Malformed (Printf.sprintf "%s: option flag %d" what v)))

let get_diag r =
  let code = get_str r "diag code" in
  let severity =
    match get_uint r "diag severity" with
    | 0 -> Diag.Error
    | 1 -> Diag.Warning
    | 2 -> Diag.Info
    | s -> raise (Error (Malformed (Printf.sprintf "diag severity %d" s)))
  in
  let file = get_opt r "diag file" (fun () -> get_str r "diag file") in
  let line = get_opt r "diag line" (fun () -> get_int r "diag line") in
  let span =
    get_opt r "diag span" (fun () ->
        let s_line = get_int r "diag span" in
        let s_col = get_int r "diag span" in
        let s_end_line = get_int r "diag span" in
        let s_end_col = get_int r "diag span" in
        { Diag.s_line; s_col; s_end_line; s_end_col })
  in
  let message = get_str r "diag message" in
  { Diag.code; severity; file; line; span; message;
    section = Diag.section_of_code code }

let get_verdict r =
  let cv_nets = get_uint r "verdict nets" in
  let cv_devices = get_uint r "verdict devices" in
  let cv_open = get_uint r "verdict open" in
  let cv_rails = get_uint r "verdict rails" in
  let n = get_uint r "verdict diag count" in
  let cv_diags = read_list n (fun () -> get_diag r) in
  { Erc.cv_nets; cv_devices; cv_open; cv_rails; cv_diags }

(* [on_record] feeds the section accounting of {!sections}: byte spans
   of each record's geometry / DRC-report / constraint-graph parts,
   measured from the reader position. *)
let get_protos ?on_record r =
  let n = get_uint r "proto count" in
  let cells = Array.make (max n 1) (Cell.create "") in
  let out = Array.make n None in
  for i = 0 to n - 1 do
    let p0 = r.pos in
    let hash = get_raw16 r "proto hash" in
    let reused = get_bool r "proto reused" in
    let c = Cell.create (Digest.to_hex hash) in
    get_objs r cells i c;
    cells.(i) <- c;
    let p1 = r.pos in
    let n_reports = get_uint r "proto report count" in
    let reports =
      read_list n_reports (fun () ->
          let deck = get_raw16 r "report deck digest" in
          (deck, get_level r))
    in
    let p2 = r.pos in
    let n_compacts = get_uint r "proto compact count" in
    let compacts =
      read_list n_compacts (fun () ->
          let rules = get_raw16 r "compact rules digest" in
          (rules, get_pabs r))
    in
    let p3 = r.pos in
    let n_ercs = get_uint r "proto erc count" in
    let ercs =
      read_list n_ercs (fun () ->
          let cfg = get_raw16 r "erc config digest" in
          (cfg, get_verdict r))
    in
    let p4 = r.pos in
    let n_places = get_uint r "proto place count" in
    let places =
      read_list n_places (fun () ->
          let key = get_raw16 r "place eval key" in
          (key, get_uint r "place eval area"))
    in
    let p5 = r.pos in
    (match on_record with
    | Some f ->
      f ~geometry:(p1 - p0) ~reports:(p2 - p1, n_reports)
        ~compacts:(p3 - p2, n_compacts) ~ercs:(p4 - p3, n_ercs)
        ~places:(p5 - p4, n_places)
    | None -> ());
    out.(i) <-
      Some
        { p_hash = hash; p_cell = c; p_reused = reused; p_reports = reports;
          p_compacts = compacts; p_ercs = ercs; p_places = places }
  done;
  Array.map Option.get out

let layer_table = lazy (Array.of_list Layer.all)

(* The flattened box array is the bulk of an entry (five varints per
   box), so it gets a specialised loop: one- and two-byte varints —
   every coordinate a layout this size produces — decode inline with a
   single bounds check, and only wider values fall back to the general
   reader. *)
let get_flat r =
  let n_boxes = get_uint r "flat box count" in
  let layers = Lazy.force layer_table in
  let n_layers = Array.length layers in
  let src = r.src in
  let len = String.length src in
  let pos = ref r.pos in
  let uint () =
    let p = !pos in
    if p >= len then raise (Error (Truncated "flat box"));
    let b0 = Char.code (String.unsafe_get src p) in
    if b0 < 0x80 then begin
      pos := p + 1;
      b0
    end
    else begin
      if p + 1 >= len then raise (Error (Truncated "flat box"));
      let b1 = Char.code (String.unsafe_get src (p + 1)) in
      if b1 < 0x80 then begin
        pos := p + 2;
        b0 land 0x7f lor (b1 lsl 7)
      end
      else begin
        r.pos <- p;
        let v = get_uint r "flat box" in
        pos := r.pos;
        v
      end
    end
  in
  let int () =
    let z = uint () in
    (z lsr 1) lxor (-(z land 1))
  in
  let pxmin = ref 0 and pymin = ref 0 and pxmax = ref 0 and pymax = ref 0 in
  let boxes =
    Array.init n_boxes (fun _ ->
        let li = uint () in
        if li >= n_layers then
          raise
            (Error (Malformed (Printf.sprintf "flat box: layer index %d" li)));
        let layer = Array.unsafe_get layers li in
        let xmin = !pxmin + int () in
        let ymin = !pymin + int () in
        let xmax = !pxmax + int () in
        let ymax = !pymax + int () in
        if xmin > xmax || ymin > ymax then
          raise (Error (Malformed "flat box: inverted box"));
        pxmin := xmin;
        pymin := ymin;
        pxmax := xmax;
        pymax := ymax;
        (layer, { Box.xmin; ymin; xmax; ymax }))
  in
  r.pos <- !pos;
  let n_labels = get_uint r "flat label count" in
  let labels =
    Array.init n_labels (fun _ ->
        let text = get_str r "flat label text" in
        let at = get_vec r "flat label position" in
        (text, at))
  in
  let bbox =
    match get_uint r "flat bbox flag" with
    | 0 -> None
    | 1 -> Some (get_box r "flat bbox")
    | f -> raise (Error (Malformed (Printf.sprintf "flat bbox flag %d" f)))
  in
  { Flatten.flat_boxes = boxes; flat_labels = labels; flat_bbox = bbox }

let get_u32 r what =
  let b0 = byte r what in
  let b1 = byte r what in
  let b2 = byte r what in
  let b3 = byte r what in
  Int32.logor
    (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
    (Int32.shift_left (Int32.of_int b3) 24)

(* Verify the container and return a reader positioned on the payload. *)
let open_payload s =
  if String.length s < 4 then raise (Error (Truncated "magic"));
  if String.sub s 0 4 <> magic then raise (Error Bad_magic);
  let r = { src = s; pos = 4 } in
  let version = Int32.to_int (get_u32 r "version") in
  if version <> format_version then
    raise (Error (Bad_version { found = version; expected = format_version }));
  let len = Int32.to_int (get_u32 r "payload length") in
  let stored = get_u32 r "checksum" in
  if len < 0 || r.pos + len <> String.length s then
    raise (Error (Truncated "payload"));
  let payload = String.sub s r.pos len in
  let computed = crc32 payload in
  if stored <> computed then
    raise (Error (Checksum_mismatch { stored; computed }));
  { src = payload; pos = 0 }

let decode s =
  let r = open_payload s in
  let label = get_str r "label" in
  let protos = get_protos r in
  let n_cells = get_uint r "cell count" in
  if n_cells = 0 then raise (Error (Malformed "empty cell table"));
  let cells = Array.make n_cells (Cell.create "") in
  for i = 0 to n_cells - 1 do
    cells.(i) <- get_cell r cells i
  done;
  let flat =
    match get_uint r "flat flag" with
    | 0 ->
      if r.pos <> String.length r.src then
        raise (Error (Malformed "trailing bytes after payload"));
      Lazy.from_val None
    | 1 ->
      (* the whole payload is already checksum-verified, so deferring
         the (large) flat section costs no integrity; only the framing
         is checked eagerly *)
      let flat_len = get_uint r "flat section length" in
      let start = r.pos in
      if flat_len < 0 || start + flat_len <> String.length r.src then
        raise (Error (Malformed "flat section length"));
      let src = r.src in
      lazy
        (let fr = { src; pos = start } in
         let f = get_flat fr in
         if fr.pos <> start + flat_len then
           raise (Error (Malformed "flat section length"));
         Some f)
    | f -> raise (Error (Malformed (Printf.sprintf "flat flag %d" f)))
  in
  { e_label = label; e_cell = cells.(n_cells - 1); e_flat = flat;
    e_protos = protos }

let decode_label s =
  let r = open_payload s in
  get_str r "label"

let decode_protos s =
  let r = open_payload s in
  let label = get_str r "label" in
  (label, get_protos r)

type section = { s_name : string; s_bytes : int; s_entries : int }

(* Per-section byte/entry accounting of one encoded entry.  The proto
   table interleaves geometry, DRC reports and constraint graphs per
   record, so the split is measured from reader positions while
   decoding; the cell table has no length prefix and must be walked;
   the flat section is length-prefixed, so only its box count is
   peeked at. *)
let sections s =
  let r = open_payload s in
  let p0 = r.pos in
  ignore (get_str r "label");
  let label_bytes = r.pos - p0 in
  let geo = ref 0 and rep = ref 0 and comp = ref 0 and erc = ref 0 in
  let plc = ref 0 in
  let n_rep = ref 0 and n_comp = ref 0 and n_erc = ref 0 and n_plc = ref 0 in
  let p1 = r.pos in
  let protos =
    get_protos
      ~on_record:(fun ~geometry ~reports:(rb, rn) ~compacts:(cb, cn)
                      ~ercs:(eb, en) ~places:(pb, pn) ->
        geo := !geo + geometry;
        rep := !rep + rb;
        n_rep := !n_rep + rn;
        comp := !comp + cb;
        n_comp := !n_comp + cn;
        erc := !erc + eb;
        n_erc := !n_erc + en;
        plc := !plc + pb;
        n_plc := !n_plc + pn)
      r
  in
  (* the proto-count varint itself *)
  let table_overhead = r.pos - p1 - !geo - !rep - !comp - !erc - !plc in
  let p2 = r.pos in
  let n_cells = get_uint r "cell count" in
  let cells = Array.make (max n_cells 1) (Cell.create "") in
  for i = 0 to n_cells - 1 do
    cells.(i) <- get_cell r cells i
  done;
  let cell_bytes = r.pos - p2 in
  let p3 = r.pos in
  let flat_boxes =
    match get_uint r "flat flag" with
    | 0 -> 0
    | 1 ->
      let flat_len = get_uint r "flat section length" in
      let start = r.pos in
      if flat_len < 0 || start + flat_len <> String.length r.src then
        raise (Error (Malformed "flat section length"));
      let n = get_uint r "flat box count" in
      r.pos <- start + flat_len;
      n
    | f -> raise (Error (Malformed (Printf.sprintf "flat flag %d" f)))
  in
  let flat_bytes = r.pos - p3 in
  [ { s_name = "container"; s_bytes = 16; s_entries = 1 };
    { s_name = "label"; s_bytes = label_bytes; s_entries = 1 };
    { s_name = "proto geometry";
      s_bytes = !geo + table_overhead;
      s_entries = Array.length protos };
    { s_name = "drc reports"; s_bytes = !rep; s_entries = !n_rep };
    { s_name = "constraint graphs"; s_bytes = !comp; s_entries = !n_comp };
    { s_name = "erc verdicts"; s_bytes = !erc; s_entries = !n_erc };
    { s_name = "place evals"; s_bytes = !plc; s_entries = !n_plc };
    { s_name = "cell table"; s_bytes = cell_bytes; s_entries = n_cells };
    { s_name = "flat"; s_bytes = flat_bytes; s_entries = flat_boxes } ]

(* Some filesystems reject fsync on a directory fd; losing that sync
   only weakens crash durability, never atomicity, so it is advisory. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_file path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".rsgdb-" ".tmp" in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ok then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc data;
          (* flush + fsync before the rename: once the new name is
             visible it must refer to fully persisted bytes, or a crash
             between rename and writeback could leave a torn entry
             under the final name *)
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc));
      Sys.rename tmp path;
      ok := true);
  (* persist the directory entry itself so the rename survives a crash *)
  fsync_dir dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

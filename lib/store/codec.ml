open Rsg_geom
open Rsg_layout

let format_version = 1

let magic = "RSGL"

type error =
  | Bad_magic
  | Bad_version of { found : int; expected : int }
  | Truncated of string
  | Checksum_mismatch of { stored : int32; computed : int32 }
  | Malformed of string

exception Error of error

let pp_error ppf = function
  | Bad_magic -> Format.fprintf ppf "not a layout database (bad magic)"
  | Bad_version { found; expected } ->
    Format.fprintf ppf "format version %d, this build reads %d" found expected
  | Truncated what -> Format.fprintf ppf "truncated while reading %s" what
  | Checksum_mismatch { stored; computed } ->
    Format.fprintf ppf "checksum mismatch (stored %08lx, computed %08lx)"
      stored computed
  | Malformed what -> Format.fprintf ppf "malformed payload: %s" what

type entry = {
  e_label : string;
  e_cell : Cell.t;
  e_flat : Flatten.flat option Lazy.t;
}

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected), table-driven                       *)
(* ------------------------------------------------------------------ *)

(* Computed over native ints — the running value never exceeds 32 bits,
   and unboxed arithmetic keeps the checksum out of the warm-load
   profile (boxed Int32 steps cost several allocations per byte).
   Slicing-by-4: four derived tables let the loop fold one 32-bit word
   per step instead of one byte. *)
let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c :=
               if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1)
               else !c lsr 1
           done;
           !c)
     in
     let next t n = t0.(t.(n) land 0xff) lxor (t.(n) lsr 8) in
     let t1 = Array.init 256 (next t0) in
     let t2 = Array.init 256 (next t1) in
     let t3 = Array.init 256 (next t2) in
     (t0, t1, t2, t3))

let crc32 s =
  let t0, t1, t2, t3 = Lazy.force crc_tables in
  let len = String.length s in
  let c = ref 0xffffffff in
  let i = ref 0 in
  while !i + 4 <= len do
    let b0 = Char.code (String.unsafe_get s !i)
    and b1 = Char.code (String.unsafe_get s (!i + 1))
    and b2 = Char.code (String.unsafe_get s (!i + 2))
    and b3 = Char.code (String.unsafe_get s (!i + 3)) in
    let x = !c lxor (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)) in
    c :=
      t3.(x land 0xff)
      lxor t2.((x lsr 8) land 0xff)
      lxor t1.((x lsr 16) land 0xff)
      lxor t0.(x lsr 24);
    i := !i + 4
  done;
  while !i < len do
    c :=
      t0.((!c lxor Char.code (String.unsafe_get s !i)) land 0xff)
      lxor (!c lsr 8);
    incr i
  done;
  Int32.of_int (!c lxor 0xffffffff)

(* ------------------------------------------------------------------ *)
(* Primitive writers                                                  *)
(* ------------------------------------------------------------------ *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.logand v 0xffl)));
  Buffer.add_char buf
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xffl)));
  Buffer.add_char buf
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xffl)));
  Buffer.add_char buf
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xffl)))

(* LEB128 on non-negative ints *)
let rec put_uint buf v =
  if v < 0 then invalid_arg "Codec.put_uint"
  else if v < 0x80 then Buffer.add_char buf (Char.chr v)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
    put_uint buf (v lsr 7)
  end

(* zigzag: small magnitudes of either sign stay short *)
let put_int buf v = put_uint buf ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

let put_str buf s =
  put_uint buf (String.length s);
  Buffer.add_string buf s

let put_vec buf (v : Vec.t) =
  put_int buf v.Vec.x;
  put_int buf v.Vec.y

let put_box buf (b : Box.t) =
  put_int buf b.Box.xmin;
  put_int buf b.Box.ymin;
  put_int buf b.Box.xmax;
  put_int buf b.Box.ymax

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                  *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int }

let byte r what =
  if r.pos >= String.length r.src then raise (Error (Truncated what))
  else begin
    let c = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    c
  end

(* Hot in warm loads (five varints per flattened box), so the common
   single-byte case takes one bounds check and no calls. *)
let get_uint r what =
  let src = r.src in
  let len = String.length src in
  let pos = r.pos in
  if pos >= len then raise (Error (Truncated what));
  let b = Char.code (String.unsafe_get src pos) in
  if b < 0x80 then begin
    r.pos <- pos + 1;
    b
  end
  else begin
    let acc = ref (b land 0x7f) in
    let shift = ref 7 in
    let p = ref (pos + 1) in
    let more = ref true in
    while !more do
      if !shift > Sys.int_size - 8 then
        raise (Error (Malformed (what ^ ": varint too wide")));
      if !p >= len then raise (Error (Truncated what));
      let b = Char.code (String.unsafe_get src !p) in
      incr p;
      acc := !acc lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then more := false
    done;
    r.pos <- !p;
    !acc
  end

let get_int r what =
  let z = get_uint r what in
  (z lsr 1) lxor (-(z land 1))

let get_str r what =
  let n = get_uint r what in
  if r.pos + n > String.length r.src then raise (Error (Truncated what))
  else begin
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s
  end

let get_vec r what =
  let x = get_int r what in
  let y = get_int r what in
  Vec.make x y

let get_box r what =
  let xmin = get_int r what in
  let ymin = get_int r what in
  let xmax = get_int r what in
  let ymax = get_int r what in
  if xmin > xmax || ymin > ymax then raise (Error (Malformed (what ^ ": inverted box")))
  else Box.make ~xmin ~ymin ~xmax ~ymax

let get_layer r what =
  let i = get_uint r what in
  match Layer.of_index_exn i with
  | l -> l
  | exception Invalid_argument _ ->
    raise (Error (Malformed (Printf.sprintf "%s: layer index %d" what i)))

let get_orient r what =
  let i = get_uint r what in
  match Orient.of_index i with
  | o -> o
  | exception Invalid_argument _ ->
    raise (Error (Malformed (Printf.sprintf "%s: orientation index %d" what i)))

(* ------------------------------------------------------------------ *)
(* Payload                                                            *)
(* ------------------------------------------------------------------ *)

(* Distinct cells children-before-parents (physical identity, so two
   same-named cells are kept apart and instance sharing survives the
   round trip), mirroring the CIF writer's definition-before-use
   order. *)
let ordered_cells root =
  let seen : (Cell.t * int) list ref = ref [] in
  let order = ref [] and count = ref 0 in
  let rec visit c =
    if not (List.mem_assq c !seen) then begin
      (* reserve the slot only after the children, postorder *)
      List.iter (fun (i : Cell.instance) -> visit i.Cell.def) (Cell.instances c);
      seen := (c, !count) :: !seen;
      incr count;
      order := c :: !order
    end
  in
  visit root;
  (List.rev !order, fun c -> List.assq c !seen)

let tag_box = 0
and tag_label = 1
and tag_instance = 2

let put_cell buf index_of (c : Cell.t) =
  put_str buf c.Cell.cname;
  let objs = Cell.objects c in
  put_uint buf (List.length objs);
  List.iter
    (fun obj ->
      match obj with
      | Cell.Obj_box (layer, b) ->
        put_uint buf tag_box;
        put_uint buf (Layer.to_index layer);
        put_box buf b
      | Cell.Obj_label l ->
        put_uint buf tag_label;
        put_str buf l.Cell.text;
        put_vec buf l.Cell.at
      | Cell.Obj_instance i ->
        put_uint buf tag_instance;
        put_uint buf (index_of i.Cell.def);
        put_uint buf (Orient.to_index i.Cell.orientation);
        put_vec buf i.Cell.point_of_call)
    objs

(* Flattened boxes are written as coordinate deltas against the
   previous box (zigzag keeps either sign short): the flattener emits
   them with strong spatial locality, so most deltas fit one varint
   byte, roughly halving the section and keeping warm loads on the
   decoder's inline fast path. *)
let put_flat buf (f : Flatten.flat) =
  put_uint buf (Array.length f.Flatten.flat_boxes);
  let pxmin = ref 0 and pymin = ref 0 and pxmax = ref 0 and pymax = ref 0 in
  Array.iter
    (fun (layer, (b : Box.t)) ->
      put_uint buf (Layer.to_index layer);
      put_int buf (b.Box.xmin - !pxmin);
      put_int buf (b.Box.ymin - !pymin);
      put_int buf (b.Box.xmax - !pxmax);
      put_int buf (b.Box.ymax - !pymax);
      pxmin := b.Box.xmin;
      pymin := b.Box.ymin;
      pxmax := b.Box.xmax;
      pymax := b.Box.ymax)
    f.Flatten.flat_boxes;
  put_uint buf (Array.length f.Flatten.flat_labels);
  Array.iter
    (fun (text, at) ->
      put_str buf text;
      put_vec buf at)
    f.Flatten.flat_labels;
  match f.Flatten.flat_bbox with
  | None -> put_uint buf 0
  | Some b ->
    put_uint buf 1;
    put_box buf b

let encode ?flat ~label cell =
  let payload = Buffer.create 4096 in
  put_str payload label;
  let cells, index_of = ordered_cells cell in
  put_uint payload (List.length cells);
  List.iter (put_cell payload index_of) cells;
  (match flat with
  | None -> put_uint payload 0
  | Some f ->
    put_uint payload 1;
    (* length-prefixed so decode can skip the section and hand back a
       lazy view: runs that never touch the flat geometry (plain CIF
       writes) skip the bulk of the payload entirely *)
    let fbuf = Buffer.create 4096 in
    put_flat fbuf f;
    put_uint payload (Buffer.length fbuf);
    Buffer.add_buffer payload fbuf);
  let payload = Buffer.contents payload in
  let out = Buffer.create (String.length payload + 16) in
  Buffer.add_string out magic;
  put_u32 out (Int32.of_int format_version);
  put_u32 out (Int32.of_int (String.length payload));
  put_u32 out (crc32 payload);
  Buffer.add_string out payload;
  Buffer.contents out

let get_cell r cells idx =
  let name = get_str r "cell name" in
  let c = Cell.create name in
  let n_objs = get_uint r "object count" in
  for _ = 1 to n_objs do
    match get_uint r "object tag" with
    | 0 ->
      let layer = get_layer r "box layer" in
      let b = get_box r "box" in
      Cell.add_box c layer b
    | 1 ->
      let text = get_str r "label text" in
      let at = get_vec r "label position" in
      Cell.add_label c text at
    | 2 ->
      let def_idx = get_uint r "instance def" in
      if def_idx >= idx then
        raise (Error (Malformed (Printf.sprintf "forward instance reference %d in cell %d" def_idx idx)));
      let orient = get_orient r "instance orientation" in
      let at = get_vec r "instance position" in
      ignore (Cell.add_instance c ~orient ~at cells.(def_idx))
    | t -> raise (Error (Malformed (Printf.sprintf "object tag %d" t)))
  done;
  c

let layer_table = lazy (Array.of_list Layer.all)

(* The flattened box array is the bulk of an entry (five varints per
   box), so it gets a specialised loop: one- and two-byte varints —
   every coordinate a layout this size produces — decode inline with a
   single bounds check, and only wider values fall back to the general
   reader. *)
let get_flat r =
  let n_boxes = get_uint r "flat box count" in
  let layers = Lazy.force layer_table in
  let n_layers = Array.length layers in
  let src = r.src in
  let len = String.length src in
  let pos = ref r.pos in
  let uint () =
    let p = !pos in
    if p >= len then raise (Error (Truncated "flat box"));
    let b0 = Char.code (String.unsafe_get src p) in
    if b0 < 0x80 then begin
      pos := p + 1;
      b0
    end
    else begin
      if p + 1 >= len then raise (Error (Truncated "flat box"));
      let b1 = Char.code (String.unsafe_get src (p + 1)) in
      if b1 < 0x80 then begin
        pos := p + 2;
        b0 land 0x7f lor (b1 lsl 7)
      end
      else begin
        r.pos <- p;
        let v = get_uint r "flat box" in
        pos := r.pos;
        v
      end
    end
  in
  let int () =
    let z = uint () in
    (z lsr 1) lxor (-(z land 1))
  in
  let pxmin = ref 0 and pymin = ref 0 and pxmax = ref 0 and pymax = ref 0 in
  let boxes =
    Array.init n_boxes (fun _ ->
        let li = uint () in
        if li >= n_layers then
          raise
            (Error (Malformed (Printf.sprintf "flat box: layer index %d" li)));
        let layer = Array.unsafe_get layers li in
        let xmin = !pxmin + int () in
        let ymin = !pymin + int () in
        let xmax = !pxmax + int () in
        let ymax = !pymax + int () in
        if xmin > xmax || ymin > ymax then
          raise (Error (Malformed "flat box: inverted box"));
        pxmin := xmin;
        pymin := ymin;
        pxmax := xmax;
        pymax := ymax;
        (layer, { Box.xmin; ymin; xmax; ymax }))
  in
  r.pos <- !pos;
  let n_labels = get_uint r "flat label count" in
  let labels =
    Array.init n_labels (fun _ ->
        let text = get_str r "flat label text" in
        let at = get_vec r "flat label position" in
        (text, at))
  in
  let bbox =
    match get_uint r "flat bbox flag" with
    | 0 -> None
    | 1 -> Some (get_box r "flat bbox")
    | f -> raise (Error (Malformed (Printf.sprintf "flat bbox flag %d" f)))
  in
  { Flatten.flat_boxes = boxes; flat_labels = labels; flat_bbox = bbox }

let get_u32 r what =
  let b0 = byte r what in
  let b1 = byte r what in
  let b2 = byte r what in
  let b3 = byte r what in
  Int32.logor
    (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
    (Int32.shift_left (Int32.of_int b3) 24)

(* Verify the container and return a reader positioned on the payload. *)
let open_payload s =
  if String.length s < 4 then raise (Error (Truncated "magic"));
  if String.sub s 0 4 <> magic then raise (Error Bad_magic);
  let r = { src = s; pos = 4 } in
  let version = Int32.to_int (get_u32 r "version") in
  if version <> format_version then
    raise (Error (Bad_version { found = version; expected = format_version }));
  let len = Int32.to_int (get_u32 r "payload length") in
  let stored = get_u32 r "checksum" in
  if len < 0 || r.pos + len <> String.length s then
    raise (Error (Truncated "payload"));
  let payload = String.sub s r.pos len in
  let computed = crc32 payload in
  if stored <> computed then
    raise (Error (Checksum_mismatch { stored; computed }));
  { src = payload; pos = 0 }

let decode s =
  let r = open_payload s in
  let label = get_str r "label" in
  let n_cells = get_uint r "cell count" in
  if n_cells = 0 then raise (Error (Malformed "empty cell table"));
  let cells = Array.make n_cells (Cell.create "") in
  for i = 0 to n_cells - 1 do
    cells.(i) <- get_cell r cells i
  done;
  let flat =
    match get_uint r "flat flag" with
    | 0 ->
      if r.pos <> String.length r.src then
        raise (Error (Malformed "trailing bytes after payload"));
      Lazy.from_val None
    | 1 ->
      (* the whole payload is already checksum-verified, so deferring
         the (large) flat section costs no integrity; only the framing
         is checked eagerly *)
      let flat_len = get_uint r "flat section length" in
      let start = r.pos in
      if flat_len < 0 || start + flat_len <> String.length r.src then
        raise (Error (Malformed "flat section length"));
      let src = r.src in
      lazy
        (let fr = { src; pos = start } in
         let f = get_flat fr in
         if fr.pos <> start + flat_len then
           raise (Error (Malformed "flat section length"));
         Some f)
    | f -> raise (Error (Malformed (Printf.sprintf "flat flag %d" f)))
  in
  { e_label = label; e_cell = cells.(n_cells - 1); e_flat = flat }

let decode_label s =
  let r = open_payload s in
  get_str r "label"

let write_file path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".rsgdb-" ".tmp" in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ok then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc data);
      Sys.rename tmp path;
      ok := true)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

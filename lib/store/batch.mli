(** Parallel batch runner over a shared layout store.

    Takes a manifest of independent generation jobs — each a name, a
    cache key and a closure that produces the layout from scratch —
    and fans them across the {!Rsg_par.Par} domain pool.  Each job
    first consults the store: a verified hit loads the stored
    hierarchy and flattened geometry, a miss (or corrupt entry) runs
    the closure, flattens through the prototype cache and installs the
    result.  Results come back in manifest order regardless of
    scheduling, so summaries and outputs are bit-identical for any
    domain count.

    Observability: the {!Rsg_obs.Obs} span tree is process-global and
    single-domain, so recording is suspended while workers run; each
    worker times itself and [run] records a per-job span
    ([batch.<name>]) plus hit/miss counters after joining, from the
    calling domain. *)

open Rsg_layout

type job = {
  j_name : string;  (** unique within the manifest; orders output *)
  j_kind : string;  (** generator family, informational *)
  j_key : Store.key;
  j_label : string;  (** label stored in the cache entry *)
  j_gen : unit -> Cell.t;  (** cold path: generate from scratch *)
}

type outcome =
  | Hit  (** loaded from the store *)
  | Generated  (** cold-generated (and saved when a store is given) *)
  | Regenerated of Codec.error
      (** entry was corrupt; regenerated and re-saved *)
  | Failed of string  (** [j_gen] raised *)

type result = {
  r_job : job;
  r_outcome : outcome;
  r_seconds : float;  (** wall-clock for this job, timed in-worker *)
  r_cell : Cell.t option;  (** [None] iff [Failed] *)
  r_flat : Flatten.flat option;
  r_boxes : int;  (** flattened box count, 0 on failure *)
}

val run : ?domains:int -> ?store:Store.t -> job list -> result list
(** Execute the manifest.  [domains] defaults to
    [Par.default_domains ()]; without [store] every job runs cold and
    nothing is saved.  Results are in manifest order. *)

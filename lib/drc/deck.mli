(** Design-rule decks and their textual DSL.

    A deck is a named list of geometric rules over {!Layer.t} mask
    layers, in lambda units:

    - [Width (l, w)] — every maximal run of merged layer-[l] geometry
      must be at least [w] wide in both axes;
    - [Spacing (a, b, s)] — facing edges of distinct regions on layers
      [a]/[b] must be at least [s] apart (order-insensitive);
    - [Enclosure (inner, covers, m)] — every point within distance [m]
      of layer [inner] must lie on the union of the [covers] layers;
    - [Overlap (a, b, k)] — where layers [a] and [b] overlap at all,
      the shared region must be at least [k] wide in some axis.

    The textual form is one rule per line ([#] comments):

    {v
deck nmos-lambda
width metal 3
spacing metal metal 2
enclosure contact metal|poly|diffusion 0
overlap poly diffusion 2
    v} *)

open Rsg_geom

type rule =
  | Width of Layer.t * int
  | Spacing of Layer.t * Layer.t * int
  | Enclosure of Layer.t * Layer.t list * int
  | Overlap of Layer.t * Layer.t * int

type t

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val make : ?name:string -> rule list -> t

val name : t -> string

val rules : t -> rule list

val width : t -> Layer.t -> int option

val spacing : t -> Layer.t -> Layer.t -> int option
(** Symmetric in the two layers. *)

val widths : t -> (Layer.t * int) list

val spacings : t -> (Layer.t * Layer.t * int) list

val enclosures : t -> (Layer.t * Layer.t list * int) list

val overlaps : t -> (Layer.t * Layer.t * int) list

val default : t
(** The lambda deck of the NMOS layers the generators draw, calibrated
    to the sample library's own discipline: generated PLA, RAM and
    multiplier layouts — before and after compaction — check clean
    against it. *)

val of_compact_rules : ?name:string -> Rsg_compact.Rules.t -> t
(** Bridge from the compactor's pairwise rules (widths and spacings
    only).  Note the compactor's packing gaps can be deliberately
    looser or tighter than the drawn geometry's lambda rules. *)

val of_string : string -> t
(** Parse the DSL.  Raises {!Parse_error}. *)

val read_file : string -> t

val to_string : t -> string
(** Canonical DSL text; [of_string (to_string t)] is [t]. *)

val halo : t -> int
(** The interaction range of the deck: the largest distance any of its
    rules measures across (at least 1).  Geometry farther apart than
    the halo can never violate a rule together — the window margin of
    the hierarchical checker ({!Rsg_drc.Drc.check_protos}). *)

val digest : t -> string
(** Raw 16-byte MD5 of the canonical DSL text — the key under which
    per-prototype check results are cached, so results from a
    different deck are never reused. *)

val pp_rule : Format.formatter -> rule -> unit

val rule_id : rule -> string
(** Stable identifier, e.g. ["width.metal"], ["spacing.metal.metal"] —
    the key used in violation reports. *)

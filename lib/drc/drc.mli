(** Scanline design-rule checker.

    Takes flattened layout geometry (a {!Rsg_compact.Scanline.item}
    array or a {!Rsg_layout.Cell.t}) and a {!Deck.t} and returns
    structured violations.  All checks run on {e merged regions}: a
    plane sweep ({!Rsg_compact.Scanline.sweep_pairs}) plus union-find
    fuses same-layer boxes that touch or overlap, so abutting
    fragments of one wire are never reported against each other.

    - width: per y-slab, the maximal merged x-runs of a region are its
      exact horizontal extents; a run shorter than the rule (in either
      axis, via transposition) is a violation.  Only regions containing
      a box narrower than the rule are decomposed — a merged run is
      never shorter than the widest box it contains.
    - spacing: a sweep with the rule distance as halo finds candidate
      pairs; a pair violates when the boxes face each other (strict
      projection overlap in one axis) with a gap below the rule.
      Corner-only proximity is legal — it is what the thesis's
      one-dimensional compactor produces, since its constraints bind
      only facing edges.  One violation per region pair (worst gap).
    - enclosure: the inner box inflated by the margin must be covered
      by the {e union} of the cover layers' geometry (measured by slab
      decomposition of the clipped covers).
    - overlap: merged a∩b intersection regions must reach the rule
      length in some axis. *)

open Rsg_geom

type violation = {
  v_rule : string;  (** stable id, see {!Deck.rule_id} *)
  v_layers : Layer.t list;
  v_boxes : Box.t list;  (** offending geometry (1 or 2 boxes) *)
  v_required : int;
  v_actual : int;  (** measured value; [-1] for unmet enclosure *)
}

type report = {
  r_deck : string;
  r_violations : violation list;  (** sorted by rule id then position *)
  r_boxes : int;
  r_regions : int;
  r_rules : int;
}

val check :
  ?deck:Deck.t -> ?domains:int -> Rsg_compact.Scanline.item array -> report
(** Run every rule of the deck (default {!Deck.default}) over the
    items.  [domains] ({!Rsg_par.Par.default_domains} when omitted)
    fans per-layer region merging and the independent rule checks out
    across that many domains; the report is bit-identical for every
    pool size ([~domains:1] runs fully sequentially on the calling
    domain).  Instrumented with [Obs] spans ([drc.check],
    [drc.regions], then per-rule [drc.width]/[drc.spacing]/
    [drc.enclosure]/[drc.overlap] when sequential or a pooled
    [drc.rules] with per-domain children when parallel) and counters
    ([drc.checks], [drc.boxes], [drc.violations]). *)

val check_cell : ?deck:Deck.t -> ?domains:int -> Rsg_layout.Cell.t -> report
(** [check] of the flattened cell. *)

val check_flat :
  ?deck:Deck.t -> ?domains:int -> Rsg_layout.Flatten.flat -> report
(** [check] of already-flattened geometry — lets callers feed one
    {!Rsg_layout.Flatten.protos_flat} build to stats, DRC and the
    writers without re-flattening. *)

val clean : report -> bool

(** {1 Hierarchical per-prototype checking}

    A regular structure has thousands of instances of a handful of
    celltypes, and no design rule measures farther than the deck's
    {!Deck.halo} — so it has only a handful of {e distinct local
    situations} a rule can see.  {!check_protos} checks each distinct
    prototype once, in local coordinates, partitioning responsibility
    by depth from each bounding box:

    - witnesses at least one halo inside a prototype's bbox (child
      interiors excluded) belong to that prototype's {e level};
    - the ring within one halo of a child instance belongs to the
      parent's {e context window} for that instance — the child's
      boundary band plus neighbouring instances' and the parent's own
      geometry, clipped to the inflated bbox.  Congruent windows (same
      child subtree hash, orientation, neighbour pattern, nearby own
      geometry) are checked once and multiplied;
    - own geometry away from every child is checked directly.

    Work is O(distinct prototypes x distinct contexts), independent of
    the instance count, and level results are reusable across runs:
    a level keyed by (subtree hash, deck digest) is valid as long as
    neither changes — the [cached] hook is how {!Rsg_store.Store}
    entries short-circuit re-checks of clean subtrees.

    Soundness leans on the regular-structure discipline the
    generators obey (shallow abutment: geometry deep inside one
    subtree is not perturbed by a sibling); the hier-vs-flat
    agreement tests pin the equivalence empirically on every layout
    family. *)

type cached_level = {
  cl_violations : (violation * int) list;
  cl_contexts : int;
  cl_distinct : int;
  cl_boxes : int;
}
(** A previously computed level, as replayed from a cache. *)

type level = {
  l_cell : string;  (** prototype cell name *)
  l_hash : string;  (** hex subtree digest ({!Rsg_layout.Flatten.subtree_hex}) *)
  l_placements : int;  (** times this prototype occurs in the design *)
  l_violations : (violation * int) list;
      (** violations in the prototype's local coordinates, each with
          the number of congruent placements that exhibit it at this
          level *)
  l_contexts : int;  (** child instances at this level *)
  l_distinct : int;  (** distinct context windows actually checked *)
  l_boxes : int;  (** boxes fed to this level's window checks *)
  l_cached : bool;  (** replayed via [cached] instead of recomputed *)
}

type hier_report = {
  h_deck : string;
  h_halo : int;
  h_levels : level list;  (** children before parents, root last *)
  h_boxes : int;  (** boxes checked across non-cached levels *)
  h_cached : int;  (** levels replayed from the cache *)
}

val check_protos :
  ?deck:Deck.t ->
  ?domains:int ->
  ?cached:(string -> cached_level option) ->
  Rsg_layout.Flatten.protos ->
  hier_report
(** Check every distinct prototype of the hierarchy.  [cached] is
    consulted with each prototype's hex subtree digest; a [Some]
    replays that level verbatim (the caller warrants it was computed
    with the same deck — key cached levels by (subtree hash, deck
    digest)).  Dirty levels fan out across [domains] workers
    ({!Rsg_par.Par.default_domains} when omitted) with Obs recording
    suspended; results are merged in postorder, so the report is
    bit-identical for every domain count.  Counters:
    [drc.hier.levels], [drc.hier.cached], [drc.hier.boxes],
    [drc.hier.violations]. *)

val hier_clean : hier_report -> bool

val hier_violations : hier_report -> int
(** Total violation count weighted by prototype placements — an upper
    bound, since overlapping context windows within a level can each
    see a shared witness. *)

val pp_hier_report : Format.formatter -> hier_report -> unit

val hier_report_to_json : hier_report -> string

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
(** Machine-readable form:
    [{"deck":..,"boxes":..,"regions":..,"rules":..,"violations":
    [{"rule":..,"layers":[..],"required":..,"actual":..,
    "boxes":[[xmin,ymin,xmax,ymax],..]},..]}]. *)

(** {1 Mutation self-check}

    Confidence test for the checker itself: seed exactly one defect in
    a known-clean layout and assert the checker reports exactly that
    defect. *)

type self_check = {
  sc_layer : Layer.t;
  sc_original : Box.t;
  sc_mutated : Box.t;
      (** the original narrowed to one lambda below the width rule *)
  sc_violation : violation;  (** the single violation reported *)
}

val self_check :
  ?deck:Deck.t ->
  ?domains:int ->
  Rsg_compact.Scanline.item array ->
  (self_check, string) result
(** Verify the layout is clean, then narrow one box to one lambda
    below its layer's width rule (exactly a 1-lambda shrink when the
    box already sits at minimum width) and re-check, expecting exactly
    one violation: a width violation on that layer overlapping the
    mutated box.  Candidates whose shrink perturbs more than the
    width rule (splitting a region, uncovering a contact) are skipped.
    [Error] when the layout was dirty to begin with or no candidate
    yields a clean single-defect result. *)

val self_check_cell :
  ?deck:Deck.t -> ?domains:int -> Rsg_layout.Cell.t -> (self_check, string) result

val pp_self_check : Format.formatter -> self_check -> unit

(** Scanline design-rule checker.

    Takes flattened layout geometry (a {!Rsg_compact.Scanline.item}
    array or a {!Rsg_layout.Cell.t}) and a {!Deck.t} and returns
    structured violations.  All checks run on {e merged regions}: a
    plane sweep ({!Rsg_compact.Scanline.sweep_pairs}) plus union-find
    fuses same-layer boxes that touch or overlap, so abutting
    fragments of one wire are never reported against each other.

    - width: per y-slab, the maximal merged x-runs of a region are its
      exact horizontal extents; a run shorter than the rule (in either
      axis, via transposition) is a violation.  Only regions containing
      a box narrower than the rule are decomposed — a merged run is
      never shorter than the widest box it contains.
    - spacing: a sweep with the rule distance as halo finds candidate
      pairs; a pair violates when the boxes face each other (strict
      projection overlap in one axis) with a gap below the rule.
      Corner-only proximity is legal — it is what the thesis's
      one-dimensional compactor produces, since its constraints bind
      only facing edges.  One violation per region pair (worst gap).
    - enclosure: the inner box inflated by the margin must be covered
      by the {e union} of the cover layers' geometry (measured by slab
      decomposition of the clipped covers).
    - overlap: merged a∩b intersection regions must reach the rule
      length in some axis. *)

open Rsg_geom

type violation = {
  v_rule : string;  (** stable id, see {!Deck.rule_id} *)
  v_layers : Layer.t list;
  v_boxes : Box.t list;  (** offending geometry (1 or 2 boxes) *)
  v_required : int;
  v_actual : int;  (** measured value; [-1] for unmet enclosure *)
}

type report = {
  r_deck : string;
  r_violations : violation list;  (** sorted by rule id then position *)
  r_boxes : int;
  r_regions : int;
  r_rules : int;
}

val check :
  ?deck:Deck.t -> ?domains:int -> Rsg_compact.Scanline.item array -> report
(** Run every rule of the deck (default {!Deck.default}) over the
    items.  [domains] ({!Rsg_par.Par.default_domains} when omitted)
    fans per-layer region merging and the independent rule checks out
    across that many domains; the report is bit-identical for every
    pool size ([~domains:1] runs fully sequentially on the calling
    domain).  Instrumented with [Obs] spans ([drc.check],
    [drc.regions], then per-rule [drc.width]/[drc.spacing]/
    [drc.enclosure]/[drc.overlap] when sequential or a pooled
    [drc.rules] with per-domain children when parallel) and counters
    ([drc.checks], [drc.boxes], [drc.violations]). *)

val check_cell : ?deck:Deck.t -> ?domains:int -> Rsg_layout.Cell.t -> report
(** [check] of the flattened cell. *)

val check_flat :
  ?deck:Deck.t -> ?domains:int -> Rsg_layout.Flatten.flat -> report
(** [check] of already-flattened geometry — lets callers feed one
    {!Rsg_layout.Flatten.protos_flat} build to stats, DRC and the
    writers without re-flattening. *)

val clean : report -> bool

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
(** Machine-readable form:
    [{"deck":..,"boxes":..,"regions":..,"rules":..,"violations":
    [{"rule":..,"layers":[..],"required":..,"actual":..,
    "boxes":[[xmin,ymin,xmax,ymax],..]},..]}]. *)

(** {1 Mutation self-check}

    Confidence test for the checker itself: seed exactly one defect in
    a known-clean layout and assert the checker reports exactly that
    defect. *)

type self_check = {
  sc_layer : Layer.t;
  sc_original : Box.t;
  sc_mutated : Box.t;
      (** the original narrowed to one lambda below the width rule *)
  sc_violation : violation;  (** the single violation reported *)
}

val self_check :
  ?deck:Deck.t ->
  ?domains:int ->
  Rsg_compact.Scanline.item array ->
  (self_check, string) result
(** Verify the layout is clean, then narrow one box to one lambda
    below its layer's width rule (exactly a 1-lambda shrink when the
    box already sits at minimum width) and re-check, expecting exactly
    one violation: a width violation on that layer overlapping the
    mutated box.  Candidates whose shrink perturbs more than the
    width rule (splitting a region, uncovering a contact) are skipped.
    [Error] when the layout was dirty to begin with or no candidate
    yields a clean single-defect result. *)

val self_check_cell :
  ?deck:Deck.t -> ?domains:int -> Rsg_layout.Cell.t -> (self_check, string) result

val pp_self_check : Format.formatter -> self_check -> unit

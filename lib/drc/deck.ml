open Rsg_geom

type rule =
  | Width of Layer.t * int
  | Spacing of Layer.t * Layer.t * int
  | Enclosure of Layer.t * Layer.t list * int
  | Overlap of Layer.t * Layer.t * int

type t = { deck_name : string; rules : rule list }

exception Parse_error of int * string

let make ?(name = "deck") rules = { deck_name = name; rules }

let name t = t.deck_name

let rules t = t.rules

let norm_pair a b = if Layer.compare a b <= 0 then (a, b) else (b, a)

let width t layer =
  List.find_map
    (function Width (l, w) when Layer.equal l layer -> Some w | _ -> None)
    t.rules

let spacing t a b =
  let key = norm_pair a b in
  List.find_map
    (function
      | Spacing (x, y, s) when norm_pair x y = key -> Some s
      | _ -> None)
    t.rules

let widths t =
  List.filter_map (function Width (l, w) -> Some (l, w) | _ -> None) t.rules

let spacings t =
  List.filter_map
    (function Spacing (a, b, s) -> Some (a, b, s) | _ -> None)
    t.rules

let enclosures t =
  List.filter_map
    (function Enclosure (i, cs, m) -> Some (i, cs, m) | _ -> None)
    t.rules

let overlaps t =
  List.filter_map
    (function Overlap (a, b, k) -> Some (a, b, k) | _ -> None)
    t.rules

(* The default lambda deck for the NMOS layers the generators draw.
   Calibrated against the geometry the PLA/RAM/multiplier generators
   and the compactor actually emit (which is the point: the deck
   encodes the sample library's own discipline, and the checker then
   holds every generated and compacted layout to it):

   - metal pitch in the multiplier's drawn cells is 2 lambda of space
     for 3 of width, so metal-metal space is 2, not the conservative 3
     the x-compactor uses as its packing gap;
   - the RAM bit cell draws 3-lambda contacts, so the contact width
     rule is 3;
   - contacts here are the {e synthetic} contact layer of section 6.5
     (the full structure including its surround, split into cuts by
     [Expand_contact] later), so their enclosure margin inside the
     structures they dock to is 0: flush docking is legal, sticking
     out is not.  The cover union includes the personalisation mask
     layers (implant, buried, overglass) because the multiplier's
     sample library marks cell programming by a mask box with a
     contact inside it and no conductor underneath. *)
let default =
  make ~name:"nmos-lambda"
    [ Width (Layer.Metal, 3);
      Width (Layer.Poly, 2);
      Width (Layer.Diffusion, 2);
      Width (Layer.Contact, 3);
      Width (Layer.Contact_cut, 2);
      Width (Layer.Implant, 2);
      Width (Layer.Buried, 2);
      Spacing (Layer.Metal, Layer.Metal, 2);
      Spacing (Layer.Poly, Layer.Poly, 2);
      Spacing (Layer.Diffusion, Layer.Diffusion, 3);
      Spacing (Layer.Poly, Layer.Diffusion, 1);
      Spacing (Layer.Contact, Layer.Contact, 2);
      Spacing (Layer.Contact_cut, Layer.Contact_cut, 2);
      Spacing (Layer.Implant, Layer.Implant, 2);
      Spacing (Layer.Buried, Layer.Buried, 2);
      Enclosure
        ( Layer.Contact,
          [ Layer.Metal; Layer.Poly; Layer.Diffusion; Layer.Implant;
            Layer.Buried; Layer.Overglass ],
          0 );
      Enclosure
        (Layer.Contact_cut, [ Layer.Metal; Layer.Poly; Layer.Diffusion ], 0) ]

let of_compact_rules ?(name = "compactor-rules") (r : Rsg_compact.Rules.t) =
  let module R = Rsg_compact.Rules in
  let widths =
    List.filter_map
      (fun l ->
        let w = R.min_width r l in
        if w > 1 then Some (Width (l, w)) else None)
      Layer.all
  in
  let spacings =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if Layer.compare a b <= 0 then
              Option.map (fun s -> Spacing (a, b, s)) (R.spacing r a b)
            else None)
          Layer.all)
      Layer.all
  in
  make ~name (widths @ spacings)

(* ---- the rule DSL ------------------------------------------------- *)
(*
   One rule per line; '#' starts a comment.  Layer names as in
   {!Layer.name}; enclosure cover layers are '|'-separated.

     deck nmos-lambda
     width metal 3
     spacing metal metal 2
     enclosure contact metal|poly|diffusion 0
     overlap poly diffusion 2
*)

let layer_exn lno s =
  match Layer.of_name s with
  | Some l -> l
  | None -> raise (Parse_error (lno, "unknown layer " ^ s))

let int_exn lno s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> n
  | _ -> raise (Parse_error (lno, "expected a non-negative integer, got " ^ s))

let covers_exn lno s =
  match String.split_on_char '|' s with
  | [] -> raise (Parse_error (lno, "empty cover-layer list"))
  | parts -> List.map (layer_exn lno) parts

let of_string text =
  let name = ref "deck" and rules = ref [] in
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some k -> String.sub line 0 k
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | [ "deck"; n ] -> name := n
      | [ "width"; l; w ] -> rules := Width (layer_exn lno l, int_exn lno w) :: !rules
      | [ "spacing"; a; b; s ] ->
        rules := Spacing (layer_exn lno a, layer_exn lno b, int_exn lno s) :: !rules
      | [ "enclosure"; inner; covers; m ] ->
        rules :=
          Enclosure (layer_exn lno inner, covers_exn lno covers, int_exn lno m)
          :: !rules
      | [ "overlap"; a; b; k ] ->
        rules := Overlap (layer_exn lno a, layer_exn lno b, int_exn lno k) :: !rules
      | w :: _ -> raise (Parse_error (lno, "unknown rule " ^ w)))
    (String.split_on_char '\n' text);
  make ~name:!name (List.rev !rules)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let pp_rule ppf = function
  | Width (l, w) -> Format.fprintf ppf "width %s %d" (Layer.name l) w
  | Spacing (a, b, s) ->
    Format.fprintf ppf "spacing %s %s %d" (Layer.name a) (Layer.name b) s
  | Enclosure (i, cs, m) ->
    Format.fprintf ppf "enclosure %s %s %d" (Layer.name i)
      (String.concat "|" (List.map Layer.name cs))
      m
  | Overlap (a, b, k) ->
    Format.fprintf ppf "overlap %s %s %d" (Layer.name a) (Layer.name b) k

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("deck " ^ t.deck_name ^ "\n");
  List.iter
    (fun r -> Buffer.add_string buf (Format.asprintf "%a\n" pp_rule r))
    t.rules;
  Buffer.contents buf

(* The largest distance any rule of the deck can see across: geometry
   farther apart than this can never interact under the deck.  This is
   the halo of the hierarchical checker's context windows. *)
let halo t =
  List.fold_left
    (fun acc r ->
      max acc
        (match r with
        | Width (_, w) -> w
        | Spacing (_, _, s) -> s
        | Enclosure (_, _, m) -> m
        | Overlap (_, _, k) -> k))
    1 t.rules

let digest t = Digest.string (to_string t)

(* Stable rule identifier, the key of a violation report. *)
let rule_id = function
  | Width (l, _) -> "width." ^ Layer.name l
  | Spacing (a, b, _) ->
    let a, b = norm_pair a b in
    "spacing." ^ Layer.name a ^ "." ^ Layer.name b
  | Enclosure (i, _, _) -> "enclosure." ^ Layer.name i
  | Overlap (a, b, _) -> "overlap." ^ Layer.name a ^ "." ^ Layer.name b

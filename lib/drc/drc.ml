open Rsg_geom
module Obs = Rsg_obs.Obs
module Scanline = Rsg_compact.Scanline
module Par = Rsg_par.Par

type violation = {
  v_rule : string;
  v_layers : Layer.t list;
  v_boxes : Box.t list;
  v_required : int;
  v_actual : int;
}

type report = {
  r_deck : string;
  r_violations : violation list;
  r_boxes : int;
  r_regions : int;
  r_rules : int;
}

(* ---- geometry helpers ---------------------------------------------- *)

let union_find n =
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  (find, union)

(* Region ids (representative indices) of boxes merged by closed
   touch, via the shared plane sweep. *)
let regions_of boxes =
  let n = Array.length boxes in
  let find, union = union_find n in
  Scanline.sweep_pairs boxes union;
  Array.init n find

(* Facing-edge gap: the boxes overlap strictly in one axis's
   projection and are separated in the other.  [None] for touching,
   overlapping, or corner-only pairs.  This is the separation the
   thesis's one-dimensional compactor legislates (section 6.4.1
   generates spacing constraints only between edges that face across
   a strict orthogonal overlap), so it is what the checker measures;
   corner-to-corner proximity is legal by construction. *)
let facing_gap (a : Box.t) (b : Box.t) =
  let gx = max (b.Box.xmin - a.Box.xmax) (a.Box.xmin - b.Box.xmax) in
  let gy = max (b.Box.ymin - a.Box.ymax) (a.Box.ymin - b.Box.ymax) in
  if gx > 0 && gy < 0 then Some gx
  else if gy > 0 && gx < 0 then Some gy
  else None

(* Maximal merged x-intervals per y-slab of a box list: calls
   [f ~y0 ~y1 ~x0 ~x1] for every run.  Within one region this is the
   exact horizontal extent of the merged geometry at each height. *)
let slab_runs boxes f =
  let ys =
    List.sort_uniq Int.compare
      (List.concat_map (fun (b : Box.t) -> [ b.Box.ymin; b.Box.ymax ]) boxes)
  in
  let rec go = function
    | y0 :: (y1 :: _ as tl) ->
      let spans =
        List.filter_map
          (fun (b : Box.t) ->
            if b.Box.ymin <= y0 && b.Box.ymax >= y1 then
              Some (b.Box.xmin, b.Box.xmax)
            else None)
          boxes
        |> List.sort compare
      in
      let rec merge = function
        | (a0, a1) :: (b0, b1) :: tl when b0 <= a1 ->
          merge ((a0, max a1 b1) :: tl)
        | iv :: tl -> iv :: merge tl
        | [] -> []
      in
      List.iter (fun (x0, x1) -> f ~y0 ~y1 ~x0 ~x1) (merge spans);
      go (y1 :: List.tl tl)
    | _ -> ()
  in
  go ys

let transpose (b : Box.t) =
  Box.make ~xmin:b.Box.ymin ~ymin:b.Box.xmin ~xmax:b.Box.ymax ~ymax:b.Box.xmax

(* ---- width --------------------------------------------------------- *)

(* A merged run is never shorter than the widest box it contains, so a
   narrow run can only exist in a region that contains a box narrower
   than the rule — regions of all-wide boxes are skipped without
   decomposition. *)
let width_violations layer w boxes reg emit =
  let n = Array.length boxes in
  let narrow_regions = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    if Box.width boxes.(i) < w || Box.height boxes.(i) < w then
      Hashtbl.replace narrow_regions reg.(i) ()
  done;
  let members = Hashtbl.create 8 in
  if Hashtbl.length narrow_regions > 0 then
    for i = 0 to n - 1 do
      if Hashtbl.mem narrow_regions reg.(i) then
        Hashtbl.replace members reg.(i) (boxes.(i) :: (Option.value ~default:[] (Hashtbl.find_opt members reg.(i))))
    done;
  let check_direction boxes back =
    (* gather narrow runs, then coalesce vertically-adjacent runs with
       the same interval so one thin wire reports once *)
    let runs = ref [] in
    slab_runs boxes (fun ~y0 ~y1 ~x0 ~x1 ->
        if x1 - x0 < w then runs := (x0, x1, y0, y1) :: !runs);
    let runs = List.sort compare !runs in
    let rec coalesce = function
      | (x0, x1, y0, y1) :: (x0', x1', y0', y1') :: tl
        when x0 = x0' && x1 = x1' && y1 = y0' ->
        coalesce ((x0, x1, y0, y1') :: tl)
      | r :: tl -> r :: coalesce tl
      | [] -> []
    in
    List.iter
      (fun (x0, x1, y0, y1) ->
        let b = back (Box.make ~xmin:x0 ~ymin:y0 ~xmax:x1 ~ymax:y1) in
        emit
          { v_rule = "width." ^ Layer.name layer;
            v_layers = [ layer ];
            v_boxes = [ b ];
            v_required = w;
            v_actual = x1 - x0 })
      (coalesce runs)
  in
  Hashtbl.iter
    (fun _ bs ->
      check_direction bs Fun.id;
      check_direction (List.map transpose bs) transpose)
    members

(* ---- spacing ------------------------------------------------------- *)

let spacing_violations la lb s geom emit =
  match (List.assoc_opt la geom, List.assoc_opt lb geom) with
  | None, _ | _, None -> ()
  | Some (ba, ra), Some (bb, rb) ->
    (* per pair of distinct regions, keep the worst (smallest) gap *)
    let best : (int * int, int * Box.t * Box.t) Hashtbl.t = Hashtbl.create 16 in
    let record ka kb g bi bj =
      let key = if ka <= kb then (ka, kb) else (kb, ka) in
      match Hashtbl.find_opt best key with
      | Some (g', _, _) when g' <= g -> ()
      | _ -> Hashtbl.replace best key (g, bi, bj)
    in
    if Layer.equal la lb then
      Scanline.sweep_pairs ~halo:s ba (fun i j ->
          if ra.(i) <> ra.(j) then
            match facing_gap ba.(i) ba.(j) with
            | Some g when g < s -> record ra.(i) ra.(j) g ba.(i) ba.(j)
            | _ -> ())
    else begin
      let na = Array.length ba in
      let combined = Array.append ba bb in
      Scanline.sweep_pairs ~halo:s combined (fun i j ->
          let i, j = (min i j, max i j) in
          (* cross-layer pairs only; touching or overlapping geometry
             on distinct layers is a device or a contact, not a
             spacing problem *)
          if i < na && j >= na && Box.distance combined.(i) combined.(j) > 0
          then
            match facing_gap combined.(i) combined.(j) with
            | Some g when g < s ->
              record ra.(i) (na + rb.(j - na)) g combined.(i) combined.(j)
            | _ -> ())
    end;
    let la', lb' = if Layer.compare la lb <= 0 then (la, lb) else (lb, la) in
    Hashtbl.iter
      (fun _ (g, bi, bj) ->
        emit
          { v_rule = "spacing." ^ Layer.name la' ^ "." ^ Layer.name lb';
            v_layers = [ la; lb ];
            v_boxes = [ bi; bj ];
            v_required = s;
            v_actual = g })
      best

(* ---- enclosure ----------------------------------------------------- *)

(* area of [q] covered by the union of [covers] (each clipped to [q]) *)
let covered_area q covers =
  let clipped = List.filter_map (Box.intersect q) covers in
  let total = ref 0 in
  slab_runs clipped (fun ~y0 ~y1 ~x0 ~x1 -> total := !total + ((x1 - x0) * (y1 - y0)));
  !total

let enclosure_violations inner covers m geom emit =
  match List.assoc_opt inner geom with
  | None -> ()
  | Some (bi, _) ->
    let cover_boxes =
      List.concat_map
        (fun l ->
          match List.assoc_opt l geom with
          | Some (bs, _) -> Array.to_list bs
          | None -> [])
        covers
    in
    let ni = Array.length bi in
    let combined = Array.append bi (Array.of_list cover_boxes) in
    let candidates = Array.make ni [] in
    Scanline.sweep_pairs ~halo:m combined (fun i j ->
        let i, j = (min i j, max i j) in
        if i < ni && j >= ni then candidates.(i) <- combined.(j) :: candidates.(i));
    Array.iteri
      (fun i box ->
        let q = Box.inflate m box in
        if Box.area q > 0 && covered_area q candidates.(i) < Box.area q then begin
          (* measured margin: the largest m' <= m that would pass *)
          let rec probe m' =
            if m' < 0 then -1
            else
              let q' = Box.inflate m' box in
              if covered_area q' candidates.(i) = Box.area q' then m'
              else probe (m' - 1)
          in
          emit
            { v_rule = "enclosure." ^ Layer.name inner;
              v_layers = inner :: covers;
              v_boxes = [ box ];
              v_required = m;
              v_actual = probe (m - 1) }
        end)
      bi

(* ---- overlap ------------------------------------------------------- *)

let overlap_violations la lb k geom emit =
  match (List.assoc_opt la geom, List.assoc_opt lb geom) with
  | None, _ | _, None -> ()
  | Some (ba, _), Some (bb, _) ->
    let na = Array.length ba in
    let combined = Array.append ba bb in
    let rects = ref [] in
    Scanline.sweep_pairs combined (fun i j ->
        let i, j = (min i j, max i j) in
        if i < na && j >= na then
          match Box.intersect combined.(i) combined.(j) with
          | Some r when Box.area r > 0 -> rects := r :: !rects
          | _ -> ());
    let rects = Array.of_list !rects in
    if Array.length rects > 0 then begin
      let reg = regions_of rects in
      let groups = Hashtbl.create 8 in
      Array.iteri
        (fun i r ->
          Hashtbl.replace groups reg.(i)
            (match Hashtbl.find_opt groups reg.(i) with
            | Some acc -> Box.union acc r
            | None -> r))
        rects;
      Hashtbl.iter
        (fun _ bbox ->
          let extent = max (Box.width bbox) (Box.height bbox) in
          if extent < k then
            emit
              { v_rule = "overlap." ^ Layer.name la ^ "." ^ Layer.name lb;
                v_layers = [ la; lb ];
                v_boxes = [ bbox ];
                v_required = k;
                v_actual = extent })
        groups
    end

(* ---- the checker --------------------------------------------------- *)

let span_of_rule = function
  | Deck.Width _ -> "drc.width"
  | Deck.Spacing _ -> "drc.spacing"
  | Deck.Enclosure _ -> "drc.enclosure"
  | Deck.Overlap _ -> "drc.overlap"

(* One rule against the per-layer merged geometry, violations in a
   local accumulator — rules share nothing, so they can run on any
   domain.  Emission order within a rule is deterministic; the global
   report is sorted below, so rule scheduling never shows. *)
let run_rule geom rule =
  let out = ref [] in
  let emit v = out := v :: !out in
  (match rule with
  | Deck.Width (l, w) -> (
    match List.assoc_opt l geom with
    | Some (boxes, reg) -> width_violations l w boxes reg emit
    | None -> ())
  | Deck.Spacing (a, b, s) -> spacing_violations a b s geom emit
  | Deck.Enclosure (inner, covers, m) ->
    enclosure_violations inner covers m geom emit
  | Deck.Overlap (a, b, k) -> overlap_violations a b k geom emit);
  !out

let check ?(deck = Deck.default) ?domains (items : Scanline.item array) =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  Obs.span "drc.check" @@ fun () ->
  let geom =
    Obs.span "drc.regions" @@ fun () ->
    (* single-pass partition into per-layer buckets, then region
       merging per layer in parallel (each layer's sweep is
       independent) *)
    let buckets = Array.make (List.length Layer.all) [] in
    Array.iter
      (fun (it : Scanline.item) ->
        let k = Layer.to_index it.Scanline.layer in
        buckets.(k) <- it.Scanline.box :: buckets.(k))
      items;
    let present =
      Array.of_list
        (List.filter_map
           (fun layer ->
             match buckets.(Layer.to_index layer) with
             | [] -> None
             | bs -> Some (layer, Array.of_list (List.rev bs)))
           Layer.all)
    in
    Array.to_list
      (Par.map ~domains
         (fun (layer, boxes) -> (layer, (boxes, regions_of boxes)))
         present)
  in
  let rules = Array.of_list (Deck.rules deck) in
  let per_rule =
    if domains = 1 then
      Array.map
        (fun rule -> Obs.span (span_of_rule rule) (fun () -> run_rule geom rule))
        rules
    else
      Obs.span "drc.rules" @@ fun () ->
      Par.chunked_map ~domains ~chunk:1 (run_rule geom) rules
  in
  let out = ref (List.concat (Array.to_list per_rule)) in
  let n_rules = ref (Array.length rules) in
  let n_regions =
    List.fold_left
      (fun acc (_, (_, reg)) ->
        acc
        + (Array.to_list reg |> List.sort_uniq Int.compare |> List.length))
      0 geom
  in
  Obs.count "drc.checks";
  Obs.count ~n:(Array.length items) "drc.boxes";
  let violations =
    List.sort
      (fun a b ->
        let c = String.compare a.v_rule b.v_rule in
        if c <> 0 then c
        else
          compare
            (List.map (fun x -> (x.Box.xmin, x.Box.ymin, x.Box.xmax, x.Box.ymax)) a.v_boxes)
            (List.map (fun x -> (x.Box.xmin, x.Box.ymin, x.Box.xmax, x.Box.ymax)) b.v_boxes))
      !out
  in
  Obs.count ~n:(List.length violations) "drc.violations";
  { r_deck = Deck.name deck;
    r_violations = violations;
    r_boxes = Array.length items;
    r_regions = n_regions;
    r_rules = !n_rules }

let check_cell ?deck ?domains cell =
  check ?deck ?domains (Scanline.items_of_cell cell)

let check_flat ?deck ?domains flat =
  check ?deck ?domains (Scanline.items_of_flat flat)

let clean r = r.r_violations = []

(* ---- hierarchical per-prototype checking --------------------------- *)

module Cell = Rsg_layout.Cell
module Flatten = Rsg_layout.Flatten

type cached_level = {
  cl_violations : (violation * int) list;
  cl_contexts : int;
  cl_distinct : int;
  cl_boxes : int;
}

type level = {
  l_cell : string;
  l_hash : string;
  l_placements : int;
  l_violations : (violation * int) list;
  l_contexts : int;
  l_distinct : int;
  l_boxes : int;
  l_cached : bool;
}

type hier_report = {
  h_deck : string;
  h_halo : int;
  h_levels : level list;
  h_boxes : int;
  h_cached : int;
}

let box_within (outer : Box.t) (b : Box.t) =
  b.Box.xmin >= outer.Box.xmin
  && b.Box.ymin >= outer.Box.ymin
  && b.Box.xmax <= outer.Box.xmax
  && b.Box.ymax <= outer.Box.ymax

(* [None] when shrinking by [m] would invert the box. *)
let erode_opt m (b : Box.t) =
  let xmin = b.Box.xmin + m
  and ymin = b.Box.ymin + m
  and xmax = b.Box.xmax - m
  and ymax = b.Box.ymax - m in
  if xmin > xmax || ymin > ymax then None
  else Some { Box.xmin; ymin; xmax; ymax }

let witness_bbox v =
  match v.v_boxes with
  | [] -> None
  | b :: tl -> Some (List.fold_left Box.union b tl)

let compare_violation a b =
  let c = String.compare a.v_rule b.v_rule in
  if c <> 0 then c
  else
    compare
      ( List.map
          (fun (x : Box.t) -> (x.Box.xmin, x.Box.ymin, x.Box.xmax, x.Box.ymax))
          a.v_boxes,
        a.v_required,
        a.v_actual )
      ( List.map
          (fun (x : Box.t) -> (x.Box.xmin, x.Box.ymin, x.Box.xmax, x.Box.ymax))
          b.v_boxes,
        b.v_required,
        b.v_actual )

(* The hierarchical checker exploits the same regularity as the
   prototype flattener: a design with thousands of instances of a
   handful of celltypes has only a handful of {e distinct local
   situations} a design rule can see, because no rule of the deck
   measures farther than its halo.  Responsibility is partitioned by
   depth from each prototype's bounding box:

   - a prototype's own level answers for witnesses at least one halo
     {e inside} its bbox (the parent cannot perturb them), child
     interiors excluded;
   - the ring within one halo of a child instance's bbox belongs to
     the {e parent}'s context check of that instance: a window of the
     child's boundary band (depth two halos) plus every neighbouring
     instance's and the parent's own geometry clipped to the inflated
     bbox.  Congruent windows — same child subtree hash, orientation,
     neighbour pattern and nearby parent geometry — are checked once
     and multiplied, so a regular array costs O(distinct contexts),
     not O(instances);
   - parent geometry away from every child is checked directly.

   Witnesses are filtered to each check's zone, so no violation is
   reported at two levels; within a level, overlapping context
   windows can each see a shared witness, so totals are upper bounds.
   Soundness leans on the regular-structure discipline the generators
   obey — instances abut or overlap shallowly, and geometry deep
   inside one subtree is not perturbed by another (see DESIGN.md);
   the hier-vs-flat agreement tests pin this empirically. *)
let check_protos ?(deck = Deck.default) ?domains ?(cached = fun _ -> None)
    protos =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  Obs.span "drc.hier" @@ fun () ->
  let halo = Deck.halo deck in
  let margin = 2 * halo in
  let order = Array.of_list (Flatten.protos_order protos) in
  let n = Array.length order in
  let root_idx = n - 1 in
  (* per-prototype flats (and the bands below) are lazy: a level
     replayed from [cached] never touches its geometry, so a run where
     everything (or nearly everything) replays skips the O(design)
     materialisation entirely *)
  let flats = Array.map (fun c -> lazy (Flatten.proto_flat protos c)) order in
  let bboxes = Array.map (Flatten.cell_bbox protos) order in
  let hexes = Array.map (Flatten.subtree_hex protos) order in
  (* physical-identity index of each distinct cell *)
  let index : (string, (Cell.t * int) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (c : Cell.t) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt index c.Cell.cname) in
      Hashtbl.replace index c.Cell.cname ((c, i) :: l))
    order;
  let idx_of (c : Cell.t) = List.assq c (Hashtbl.find index c.Cell.cname) in
  (* whole-design placement count of each prototype; parents follow
     children in postorder, so a downward sweep sees every parent's
     final count before distributing it *)
  let placements = Array.make n 0 in
  placements.(root_idx) <- 1;
  for i = n - 1 downto 0 do
    if placements.(i) > 0 then
      List.iter
        (fun (inst : Cell.instance) ->
          let j = idx_of inst.Cell.def in
          placements.(j) <- placements.(j) + placements.(i))
        (Cell.instances order.(i))
  done;
  (* boundary bands: a prototype's boxes within [margin] of its bbox
     edge, local coordinates — the only part of a child a parent-level
     window ever needs *)
  let bands =
    Array.init n (fun i ->
        lazy
          (match bboxes.(i) with
          | None -> [||]
          | Some bb -> (
            let boxes = (Lazy.force flats.(i)).Flatten.flat_boxes in
            match erode_opt margin bb with
            | None -> boxes
            | Some core ->
              Array.of_list
                (Array.fold_right
                   (fun (l, b) acc ->
                     if box_within core b then acc else (l, b) :: acc)
                   boxes []))))
  in
  let place orient (off : Rsg_geom.Vec.t) b = Box.translate off (Box.transform orient b) in
  let compute i =
    let c = order.(i) in
    let own = Cell.boxes c in
    let insts =
      Array.of_list
        (List.filter_map
           (fun (inst : Cell.instance) ->
             let j = idx_of inst.Cell.def in
             match bboxes.(j) with
             | None -> None
             | Some bb ->
               let ti = Cell.transform_of_instance inst in
               let off = ti.Rsg_geom.Transform.offset in
               let orient = inst.Cell.orientation in
               Some (j, orient, off, place orient off bb))
           (Cell.instances c))
    in
    let violations = ref [] in
    let boxes_checked = ref 0 in
    let run items =
      boxes_checked := !boxes_checked + Array.length items;
      (check ~deck ~domains:1 items).r_violations
    in
    (* witnesses near this prototype's own boundary belong to whoever
       instantiates it; the root has no caller, so it keeps them *)
    let in_parent_zone =
      if i = root_idx then fun _ -> true
      else
        match bboxes.(i) with
        | None -> fun _ -> false
        | Some bb -> (
          match erode_opt halo bb with
          | None -> fun _ -> false
          | Some z -> fun w -> box_within z w)
    in
    let n_inst = Array.length insts in
    let distinct = ref 0 in
    if n_inst = 0 then begin
      let items =
        Array.map
          (fun (l, b) -> { Scanline.layer = l; box = b })
          (Lazy.force flats.(i)).Flatten.flat_boxes
      in
      List.iter
        (fun v ->
          match witness_bbox v with
          | Some w when in_parent_zone w -> violations := (v, 1) :: !violations
          | _ -> ())
        (run items)
    end
    else begin
      let nbrs = Array.make n_inst [] in
      Scanline.sweep_pairs ~halo:margin
        (Array.map (fun (_, _, _, bb) -> bb) insts)
        (fun a b ->
          nbrs.(a) <- b :: nbrs.(a);
          nbrs.(b) <- a :: nbrs.(b));
      (* group instances by congruent context: same child subtree,
         orientation, neighbour pattern and nearby own geometry, all
         relative to the point of call *)
      let classes : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
      let reps = ref [] in
      for k = 0 to n_inst - 1 do
        let j, orient, off, bb = insts.(k) in
        let w = Box.inflate margin bb in
        let buf = Buffer.create 256 in
        Buffer.add_string buf hexes.(j);
        Buffer.add_char buf '@';
        Buffer.add_string buf (string_of_int (Orient.to_index orient));
        List.iter
          (fun (dx, dy, hx, oi) ->
            Buffer.add_string buf (Printf.sprintf "|%d,%d,%s,%d" dx dy hx oi))
          (List.sort compare
             (List.map
                (fun k' ->
                  let j', o', off', _ = insts.(k') in
                  ( off'.Rsg_geom.Vec.x - off.Rsg_geom.Vec.x,
                    off'.Rsg_geom.Vec.y - off.Rsg_geom.Vec.y,
                    hexes.(j'),
                    Orient.to_index o' ))
                nbrs.(k)));
        List.iter
          (fun (l, (b : Box.t)) ->
            if Box.overlaps w b then
              Buffer.add_string buf
                (Printf.sprintf "|o%d:%d,%d,%d,%d" (Layer.to_index l)
                   (b.Box.xmin - off.Rsg_geom.Vec.x)
                   (b.Box.ymin - off.Rsg_geom.Vec.y)
                   (b.Box.xmax - off.Rsg_geom.Vec.x)
                   (b.Box.ymax - off.Rsg_geom.Vec.y)))
          own;
        let sg = Digest.string (Buffer.contents buf) in
        match Hashtbl.find_opt classes sg with
        | Some r -> incr r
        | None ->
          let r = ref 1 in
          Hashtbl.add classes sg r;
          reps := (sg, k) :: !reps
      done;
      List.iter
        (fun (sg, k) ->
          incr distinct;
          let count = !(Hashtbl.find classes sg) in
          let j, orient, off, bb = insts.(k) in
          let w = Box.inflate margin bb in
          let acc = ref [] in
          Array.iter
            (fun (l, b) ->
              acc := { Scanline.layer = l; box = place orient off b } :: !acc)
            (Lazy.force bands.(j));
          List.iter
            (fun k' ->
              let j', o', off', _ = insts.(k') in
              Array.iter
                (fun (l, b) ->
                  let b = place o' off' b in
                  if Box.overlaps w b then
                    acc := { Scanline.layer = l; box = b } :: !acc)
                (Lazy.force flats.(j')).Flatten.flat_boxes)
            nbrs.(k);
          List.iter
            (fun (l, b) ->
              if Box.overlaps w b then
                acc := { Scanline.layer = l; box = b } :: !acc)
            own;
          let items = Array.of_list (List.rev !acc) in
          let ring_outer = Box.inflate halo bb in
          let ring_inner = erode_opt halo bb in
          (* intersection, not containment: a witness can be far larger
             than the ring (a narrow bus run merged across many seams),
             and any part of it inside the ring makes it this window's
             finding.  Windows hold whole boxes, so a run that reaches
             the ring is never artificially short: extending geometry
             is only omitted beyond the window margin, and a run
             spanning ring to margin already measures at least one
             halo, which no rule exceeds. *)
          List.iter
            (fun v ->
              match witness_bbox v with
              | Some wb
                when Box.overlaps ring_outer wb
                     && not
                          (match ring_inner with
                          | Some z -> box_within z wb
                          | None -> false)
                     && in_parent_zone wb ->
                violations := (v, count) :: !violations
              | _ -> ())
            (run items))
        (List.rev !reps);
      (* own geometry away from every instance *)
      (match own with
      | [] -> ()
      | (_, b0) :: tl ->
        let support =
          List.fold_left (fun acc (_, b) -> Box.union acc b) b0 tl
        in
        let reach = Box.inflate margin support in
        let acc =
          ref
            (List.rev_map (fun (l, b) -> { Scanline.layer = l; box = b }) own)
        in
        Array.iter
          (fun (j, orient, off, bb) ->
            if Box.overlaps reach bb then
              Array.iter
                (fun (l, b) ->
                  acc := { Scanline.layer = l; box = place orient off b } :: !acc)
                (Lazy.force bands.(j)))
          insts;
        let items = Array.of_list (List.rev !acc) in
        List.iter
          (fun v ->
            match witness_bbox v with
            | Some wb
              when in_parent_zone wb
                   && not
                        (Array.exists
                           (fun (_, _, _, bb) ->
                             box_within (Box.inflate halo bb) wb)
                           insts) ->
              violations := (v, 1) :: !violations
            | _ -> ())
          (run items))
    end;
    let vs =
      List.sort
        (fun (a, ca) (b, cb) ->
          match compare_violation a b with 0 -> compare ca cb | c -> c)
        (List.rev !violations)
    in
    { l_cell = c.Cell.cname;
      l_hash = hexes.(i);
      l_placements = placements.(i);
      l_violations = vs;
      l_contexts = n_inst;
      l_distinct = !distinct;
      l_boxes = !boxes_checked;
      l_cached = false }
  in
  let cached_levels =
    Array.init n (fun i ->
        match cached hexes.(i) with
        | None -> None
        | Some cl ->
          Some
            { l_cell = order.(i).Cell.cname;
              l_hash = hexes.(i);
              l_placements = placements.(i);
              l_violations = cl.cl_violations;
              l_contexts = cl.cl_contexts;
              l_distinct = cl.cl_distinct;
              l_boxes = cl.cl_boxes;
              l_cached = true })
  in
  let todo =
    Array.of_list
      (List.filter
         (fun i -> cached_levels.(i) = None)
         (List.init n Fun.id))
  in
  (* force every flat and band a fresh level will touch on this
     domain, before the fan-out: Lazy.force is not domain-safe, and
     the computations are only independent once their inputs exist *)
  Array.iter
    (fun i ->
      match Cell.instances order.(i) with
      | [] -> ignore (Lazy.force flats.(i))
      | insts ->
        List.iter
          (fun (inst : Cell.instance) ->
            ignore (Lazy.force bands.(idx_of inst.Cell.def)))
          insts)
    todo;
  (* the per-prototype computations are independent once the local
     flats and bands exist (built above, on this domain); Obs is
     process-global, so recording is suspended across the fan-out and
     aggregates are counted after the join *)
  let was_enabled = Obs.is_enabled () in
  if was_enabled then Obs.disable ();
  let computed =
    Fun.protect
      ~finally:(fun () -> if was_enabled then Obs.enable ())
      (fun () ->
        if domains = 1 || Array.length todo <= 1 then Array.map compute todo
        else Par.chunked_map ~domains ~chunk:1 compute todo)
  in
  Array.iteri (fun k i -> cached_levels.(i) <- Some computed.(k)) todo;
  let levels =
    List.init n (fun i ->
        match cached_levels.(i) with Some l -> l | None -> assert false)
  in
  let boxes = List.fold_left (fun a l -> a + if l.l_cached then 0 else l.l_boxes) 0 levels in
  let n_cached = List.fold_left (fun a l -> a + if l.l_cached then 1 else 0) 0 levels in
  Obs.count ~n "drc.hier.levels";
  Obs.count ~n:n_cached "drc.hier.cached";
  Obs.count ~n:boxes "drc.hier.boxes";
  Obs.count
    ~n:
      (List.fold_left
         (fun a l -> a + List.length l.l_violations)
         0 levels)
    "drc.hier.violations";
  { h_deck = Deck.name deck;
    h_halo = halo;
    h_levels = levels;
    h_boxes = boxes;
    h_cached = n_cached }

let hier_clean r = List.for_all (fun l -> l.l_violations = []) r.h_levels

let hier_violations r =
  List.fold_left
    (fun a l ->
      a
      + l.l_placements
        * List.fold_left (fun a (_, c) -> a + c) 0 l.l_violations)
    0 r.h_levels

(* ---- rendering ----------------------------------------------------- *)

let pp_violation ppf v =
  Format.fprintf ppf "[%s] required %d, measured %d at %a" v.v_rule
    v.v_required v.v_actual
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " / ")
       Box.pp)
    v.v_boxes

let pp_report ppf r =
  Format.fprintf ppf "DRC (%s): %d violation%s in %d boxes, %d regions, %d rules@."
    r.r_deck
    (List.length r.r_violations)
    (if List.length r.r_violations = 1 then "" else "s")
    r.r_boxes r.r_regions r.r_rules;
  List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) r.r_violations

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"deck\":\"%s\",\"boxes\":%d,\"regions\":%d,\"rules\":%d,\"violations\":["
       (json_escape r.r_deck) r.r_boxes r.r_regions r.r_rules);
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"layers\":[%s],\"required\":%d,\"actual\":%d,\"boxes\":[%s]}"
           (json_escape v.v_rule)
           (String.concat ","
              (List.map (fun l -> "\"" ^ Layer.name l ^ "\"") v.v_layers))
           v.v_required v.v_actual
           (String.concat ","
              (List.map
                 (fun (b : Box.t) ->
                   Printf.sprintf "[%d,%d,%d,%d]" b.Box.xmin b.Box.ymin
                     b.Box.xmax b.Box.ymax)
                 v.v_boxes))))
    r.r_violations;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp_hier_report ppf r =
  let dirty = List.filter (fun l -> l.l_violations <> []) r.h_levels in
  Format.fprintf ppf
    "DRC (%s, hierarchical, halo %d): %d violation%s across %d prototype level%s (%d cached), %d boxes checked@."
    r.h_deck r.h_halo (hier_violations r)
    (if hier_violations r = 1 then "" else "s")
    (List.length r.h_levels)
    (if List.length r.h_levels = 1 then "" else "s")
    r.h_cached r.h_boxes;
  List.iter
    (fun l ->
      Format.fprintf ppf "  %s (%s, placed %d):@." l.l_cell
        (String.sub l.l_hash 0 8)
        l.l_placements;
      List.iter
        (fun (v, c) ->
          Format.fprintf ppf "    %a (x%d)@." pp_violation v c)
        l.l_violations)
    dirty

let hier_report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"deck\":\"%s\",\"halo\":%d,\"violations\":%d,\"boxes\":%d,\"cached\":%d,\"levels\":["
       (json_escape r.h_deck) r.h_halo (hier_violations r) r.h_boxes
       r.h_cached);
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"cell\":\"%s\",\"hash\":\"%s\",\"placements\":%d,\"contexts\":%d,\"distinct\":%d,\"boxes\":%d,\"cached\":%b,\"violations\":["
           (json_escape l.l_cell) l.l_hash l.l_placements l.l_contexts
           l.l_distinct l.l_boxes l.l_cached);
      List.iteri
        (fun k (v, c) ->
          if k > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "{\"rule\":\"%s\",\"required\":%d,\"actual\":%d,\"count\":%d,\"boxes\":[%s]}"
               (json_escape v.v_rule) v.v_required v.v_actual c
               (String.concat ","
                  (List.map
                     (fun (b : Box.t) ->
                       Printf.sprintf "[%d,%d,%d,%d]" b.Box.xmin b.Box.ymin
                         b.Box.xmax b.Box.ymax)
                     v.v_boxes))))
        l.l_violations;
      Buffer.add_string buf "]}")
    r.h_levels;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ---- mutation self-check ------------------------------------------- *)

type self_check = {
  sc_layer : Layer.t;
  sc_original : Box.t;
  sc_mutated : Box.t;
  sc_violation : violation;
}

let self_check ?(deck = Deck.default) ?domains (items : Scanline.item array) =
  Obs.span "drc.self_check" @@ fun () ->
  let base = check ~deck ?domains items in
  if not (clean base) then
    Error
      (Printf.sprintf "layout is not clean before mutation (%d violations)"
         (List.length base.r_violations))
  else begin
    let n = Array.length items in
    let attempt i (shrunk : Box.t) =
      let it = items.(i) in
      let mutated = Array.copy items in
      mutated.(i) <- { it with Scanline.box = shrunk };
      match (check ~deck ?domains mutated).r_violations with
      | [ v ]
        when v.v_rule = "width." ^ Layer.name it.Scanline.layer
             && List.exists (fun vb -> Box.overlaps vb shrunk) v.v_boxes ->
        Some
          { sc_layer = it.Scanline.layer;
            sc_original = it.Scanline.box;
            sc_mutated = shrunk;
            sc_violation = v }
      | _ -> None
    in
    let rec try_idx i =
      if i >= n then
        Error "no box admits a clean single-defect narrowing"
      else
        let it = items.(i) in
        match Deck.width deck it.Scanline.layer with
        | Some w ->
          let b = it.Scanline.box in
          (* narrow the box to one lambda below the rule — for a box
             already at minimum width this is exactly a 1-lambda
             shrink *)
          let in_x =
            if Box.width b >= w then
              attempt i
                (Box.make ~xmin:b.Box.xmin ~ymin:b.Box.ymin
                   ~xmax:(b.Box.xmin + w - 1) ~ymax:b.Box.ymax)
            else None
          in
          (match in_x with
          | Some sc -> Ok sc
          | None ->
            let in_y =
              if Box.height b >= w then
                attempt i
                  (Box.make ~xmin:b.Box.xmin ~ymin:b.Box.ymin ~xmax:b.Box.xmax
                     ~ymax:(b.Box.ymin + w - 1))
              else None
            in
            (match in_y with
            | Some sc -> Ok sc
            | None -> try_idx (i + 1)))
        | None -> try_idx (i + 1)
    in
    try_idx 0
  end

let self_check_cell ?deck ?domains cell =
  self_check ?deck ?domains (Scanline.items_of_cell cell)

let pp_self_check ppf sc =
  Format.fprintf ppf
    "seeded defect: %s box %a shrunk to %a@.caught as: %a" (Layer.name sc.sc_layer)
    Box.pp sc.sc_original Box.pp sc.sc_mutated pp_violation sc.sc_violation

open Rsg_geom
module Obs = Rsg_obs.Obs
module Scanline = Rsg_compact.Scanline
module Par = Rsg_par.Par

type violation = {
  v_rule : string;
  v_layers : Layer.t list;
  v_boxes : Box.t list;
  v_required : int;
  v_actual : int;
}

type report = {
  r_deck : string;
  r_violations : violation list;
  r_boxes : int;
  r_regions : int;
  r_rules : int;
}

(* ---- geometry helpers ---------------------------------------------- *)

let union_find n =
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  (find, union)

(* Region ids (representative indices) of boxes merged by closed
   touch, via the shared plane sweep. *)
let regions_of boxes =
  let n = Array.length boxes in
  let find, union = union_find n in
  Scanline.sweep_pairs boxes union;
  Array.init n find

(* Facing-edge gap: the boxes overlap strictly in one axis's
   projection and are separated in the other.  [None] for touching,
   overlapping, or corner-only pairs.  This is the separation the
   thesis's one-dimensional compactor legislates (section 6.4.1
   generates spacing constraints only between edges that face across
   a strict orthogonal overlap), so it is what the checker measures;
   corner-to-corner proximity is legal by construction. *)
let facing_gap (a : Box.t) (b : Box.t) =
  let gx = max (b.Box.xmin - a.Box.xmax) (a.Box.xmin - b.Box.xmax) in
  let gy = max (b.Box.ymin - a.Box.ymax) (a.Box.ymin - b.Box.ymax) in
  if gx > 0 && gy < 0 then Some gx
  else if gy > 0 && gx < 0 then Some gy
  else None

(* Maximal merged x-intervals per y-slab of a box list: calls
   [f ~y0 ~y1 ~x0 ~x1] for every run.  Within one region this is the
   exact horizontal extent of the merged geometry at each height. *)
let slab_runs boxes f =
  let ys =
    List.sort_uniq Int.compare
      (List.concat_map (fun (b : Box.t) -> [ b.Box.ymin; b.Box.ymax ]) boxes)
  in
  let rec go = function
    | y0 :: (y1 :: _ as tl) ->
      let spans =
        List.filter_map
          (fun (b : Box.t) ->
            if b.Box.ymin <= y0 && b.Box.ymax >= y1 then
              Some (b.Box.xmin, b.Box.xmax)
            else None)
          boxes
        |> List.sort compare
      in
      let rec merge = function
        | (a0, a1) :: (b0, b1) :: tl when b0 <= a1 ->
          merge ((a0, max a1 b1) :: tl)
        | iv :: tl -> iv :: merge tl
        | [] -> []
      in
      List.iter (fun (x0, x1) -> f ~y0 ~y1 ~x0 ~x1) (merge spans);
      go (y1 :: List.tl tl)
    | _ -> ()
  in
  go ys

let transpose (b : Box.t) =
  Box.make ~xmin:b.Box.ymin ~ymin:b.Box.xmin ~xmax:b.Box.ymax ~ymax:b.Box.xmax

(* ---- width --------------------------------------------------------- *)

(* A merged run is never shorter than the widest box it contains, so a
   narrow run can only exist in a region that contains a box narrower
   than the rule — regions of all-wide boxes are skipped without
   decomposition. *)
let width_violations layer w boxes reg emit =
  let n = Array.length boxes in
  let narrow_regions = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    if Box.width boxes.(i) < w || Box.height boxes.(i) < w then
      Hashtbl.replace narrow_regions reg.(i) ()
  done;
  let members = Hashtbl.create 8 in
  if Hashtbl.length narrow_regions > 0 then
    for i = 0 to n - 1 do
      if Hashtbl.mem narrow_regions reg.(i) then
        Hashtbl.replace members reg.(i) (boxes.(i) :: (Option.value ~default:[] (Hashtbl.find_opt members reg.(i))))
    done;
  let check_direction boxes back =
    (* gather narrow runs, then coalesce vertically-adjacent runs with
       the same interval so one thin wire reports once *)
    let runs = ref [] in
    slab_runs boxes (fun ~y0 ~y1 ~x0 ~x1 ->
        if x1 - x0 < w then runs := (x0, x1, y0, y1) :: !runs);
    let runs = List.sort compare !runs in
    let rec coalesce = function
      | (x0, x1, y0, y1) :: (x0', x1', y0', y1') :: tl
        when x0 = x0' && x1 = x1' && y1 = y0' ->
        coalesce ((x0, x1, y0, y1') :: tl)
      | r :: tl -> r :: coalesce tl
      | [] -> []
    in
    List.iter
      (fun (x0, x1, y0, y1) ->
        let b = back (Box.make ~xmin:x0 ~ymin:y0 ~xmax:x1 ~ymax:y1) in
        emit
          { v_rule = "width." ^ Layer.name layer;
            v_layers = [ layer ];
            v_boxes = [ b ];
            v_required = w;
            v_actual = x1 - x0 })
      (coalesce runs)
  in
  Hashtbl.iter
    (fun _ bs ->
      check_direction bs Fun.id;
      check_direction (List.map transpose bs) transpose)
    members

(* ---- spacing ------------------------------------------------------- *)

let spacing_violations la lb s geom emit =
  match (List.assoc_opt la geom, List.assoc_opt lb geom) with
  | None, _ | _, None -> ()
  | Some (ba, ra), Some (bb, rb) ->
    (* per pair of distinct regions, keep the worst (smallest) gap *)
    let best : (int * int, int * Box.t * Box.t) Hashtbl.t = Hashtbl.create 16 in
    let record ka kb g bi bj =
      let key = if ka <= kb then (ka, kb) else (kb, ka) in
      match Hashtbl.find_opt best key with
      | Some (g', _, _) when g' <= g -> ()
      | _ -> Hashtbl.replace best key (g, bi, bj)
    in
    if Layer.equal la lb then
      Scanline.sweep_pairs ~halo:s ba (fun i j ->
          if ra.(i) <> ra.(j) then
            match facing_gap ba.(i) ba.(j) with
            | Some g when g < s -> record ra.(i) ra.(j) g ba.(i) ba.(j)
            | _ -> ())
    else begin
      let na = Array.length ba in
      let combined = Array.append ba bb in
      Scanline.sweep_pairs ~halo:s combined (fun i j ->
          let i, j = (min i j, max i j) in
          (* cross-layer pairs only; touching or overlapping geometry
             on distinct layers is a device or a contact, not a
             spacing problem *)
          if i < na && j >= na && Box.distance combined.(i) combined.(j) > 0
          then
            match facing_gap combined.(i) combined.(j) with
            | Some g when g < s ->
              record ra.(i) (na + rb.(j - na)) g combined.(i) combined.(j)
            | _ -> ())
    end;
    let la', lb' = if Layer.compare la lb <= 0 then (la, lb) else (lb, la) in
    Hashtbl.iter
      (fun _ (g, bi, bj) ->
        emit
          { v_rule = "spacing." ^ Layer.name la' ^ "." ^ Layer.name lb';
            v_layers = [ la; lb ];
            v_boxes = [ bi; bj ];
            v_required = s;
            v_actual = g })
      best

(* ---- enclosure ----------------------------------------------------- *)

(* area of [q] covered by the union of [covers] (each clipped to [q]) *)
let covered_area q covers =
  let clipped = List.filter_map (Box.intersect q) covers in
  let total = ref 0 in
  slab_runs clipped (fun ~y0 ~y1 ~x0 ~x1 -> total := !total + ((x1 - x0) * (y1 - y0)));
  !total

let enclosure_violations inner covers m geom emit =
  match List.assoc_opt inner geom with
  | None -> ()
  | Some (bi, _) ->
    let cover_boxes =
      List.concat_map
        (fun l ->
          match List.assoc_opt l geom with
          | Some (bs, _) -> Array.to_list bs
          | None -> [])
        covers
    in
    let ni = Array.length bi in
    let combined = Array.append bi (Array.of_list cover_boxes) in
    let candidates = Array.make ni [] in
    Scanline.sweep_pairs ~halo:m combined (fun i j ->
        let i, j = (min i j, max i j) in
        if i < ni && j >= ni then candidates.(i) <- combined.(j) :: candidates.(i));
    Array.iteri
      (fun i box ->
        let q = Box.inflate m box in
        if Box.area q > 0 && covered_area q candidates.(i) < Box.area q then begin
          (* measured margin: the largest m' <= m that would pass *)
          let rec probe m' =
            if m' < 0 then -1
            else
              let q' = Box.inflate m' box in
              if covered_area q' candidates.(i) = Box.area q' then m'
              else probe (m' - 1)
          in
          emit
            { v_rule = "enclosure." ^ Layer.name inner;
              v_layers = inner :: covers;
              v_boxes = [ box ];
              v_required = m;
              v_actual = probe (m - 1) }
        end)
      bi

(* ---- overlap ------------------------------------------------------- *)

let overlap_violations la lb k geom emit =
  match (List.assoc_opt la geom, List.assoc_opt lb geom) with
  | None, _ | _, None -> ()
  | Some (ba, _), Some (bb, _) ->
    let na = Array.length ba in
    let combined = Array.append ba bb in
    let rects = ref [] in
    Scanline.sweep_pairs combined (fun i j ->
        let i, j = (min i j, max i j) in
        if i < na && j >= na then
          match Box.intersect combined.(i) combined.(j) with
          | Some r when Box.area r > 0 -> rects := r :: !rects
          | _ -> ());
    let rects = Array.of_list !rects in
    if Array.length rects > 0 then begin
      let reg = regions_of rects in
      let groups = Hashtbl.create 8 in
      Array.iteri
        (fun i r ->
          Hashtbl.replace groups reg.(i)
            (match Hashtbl.find_opt groups reg.(i) with
            | Some acc -> Box.union acc r
            | None -> r))
        rects;
      Hashtbl.iter
        (fun _ bbox ->
          let extent = max (Box.width bbox) (Box.height bbox) in
          if extent < k then
            emit
              { v_rule = "overlap." ^ Layer.name la ^ "." ^ Layer.name lb;
                v_layers = [ la; lb ];
                v_boxes = [ bbox ];
                v_required = k;
                v_actual = extent })
        groups
    end

(* ---- the checker --------------------------------------------------- *)

let span_of_rule = function
  | Deck.Width _ -> "drc.width"
  | Deck.Spacing _ -> "drc.spacing"
  | Deck.Enclosure _ -> "drc.enclosure"
  | Deck.Overlap _ -> "drc.overlap"

(* One rule against the per-layer merged geometry, violations in a
   local accumulator — rules share nothing, so they can run on any
   domain.  Emission order within a rule is deterministic; the global
   report is sorted below, so rule scheduling never shows. *)
let run_rule geom rule =
  let out = ref [] in
  let emit v = out := v :: !out in
  (match rule with
  | Deck.Width (l, w) -> (
    match List.assoc_opt l geom with
    | Some (boxes, reg) -> width_violations l w boxes reg emit
    | None -> ())
  | Deck.Spacing (a, b, s) -> spacing_violations a b s geom emit
  | Deck.Enclosure (inner, covers, m) ->
    enclosure_violations inner covers m geom emit
  | Deck.Overlap (a, b, k) -> overlap_violations a b k geom emit);
  !out

let check ?(deck = Deck.default) ?domains (items : Scanline.item array) =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  Obs.span "drc.check" @@ fun () ->
  let geom =
    Obs.span "drc.regions" @@ fun () ->
    (* single-pass partition into per-layer buckets, then region
       merging per layer in parallel (each layer's sweep is
       independent) *)
    let buckets = Array.make (List.length Layer.all) [] in
    Array.iter
      (fun (it : Scanline.item) ->
        let k = Layer.to_index it.Scanline.layer in
        buckets.(k) <- it.Scanline.box :: buckets.(k))
      items;
    let present =
      Array.of_list
        (List.filter_map
           (fun layer ->
             match buckets.(Layer.to_index layer) with
             | [] -> None
             | bs -> Some (layer, Array.of_list (List.rev bs)))
           Layer.all)
    in
    Array.to_list
      (Par.map ~domains
         (fun (layer, boxes) -> (layer, (boxes, regions_of boxes)))
         present)
  in
  let rules = Array.of_list (Deck.rules deck) in
  let per_rule =
    if domains = 1 then
      Array.map
        (fun rule -> Obs.span (span_of_rule rule) (fun () -> run_rule geom rule))
        rules
    else
      Obs.span "drc.rules" @@ fun () ->
      Par.chunked_map ~domains ~chunk:1 (run_rule geom) rules
  in
  let out = ref (List.concat (Array.to_list per_rule)) in
  let n_rules = ref (Array.length rules) in
  let n_regions =
    List.fold_left
      (fun acc (_, (_, reg)) ->
        acc
        + (Array.to_list reg |> List.sort_uniq Int.compare |> List.length))
      0 geom
  in
  Obs.count "drc.checks";
  Obs.count ~n:(Array.length items) "drc.boxes";
  let violations =
    List.sort
      (fun a b ->
        let c = String.compare a.v_rule b.v_rule in
        if c <> 0 then c
        else
          compare
            (List.map (fun x -> (x.Box.xmin, x.Box.ymin, x.Box.xmax, x.Box.ymax)) a.v_boxes)
            (List.map (fun x -> (x.Box.xmin, x.Box.ymin, x.Box.xmax, x.Box.ymax)) b.v_boxes))
      !out
  in
  Obs.count ~n:(List.length violations) "drc.violations";
  { r_deck = Deck.name deck;
    r_violations = violations;
    r_boxes = Array.length items;
    r_regions = n_regions;
    r_rules = !n_rules }

let check_cell ?deck ?domains cell =
  check ?deck ?domains (Scanline.items_of_cell cell)

let check_flat ?deck ?domains flat =
  check ?deck ?domains (Scanline.items_of_flat flat)

let clean r = r.r_violations = []

(* ---- rendering ----------------------------------------------------- *)

let pp_violation ppf v =
  Format.fprintf ppf "[%s] required %d, measured %d at %a" v.v_rule
    v.v_required v.v_actual
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " / ")
       Box.pp)
    v.v_boxes

let pp_report ppf r =
  Format.fprintf ppf "DRC (%s): %d violation%s in %d boxes, %d regions, %d rules@."
    r.r_deck
    (List.length r.r_violations)
    (if List.length r.r_violations = 1 then "" else "s")
    r.r_boxes r.r_regions r.r_rules;
  List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) r.r_violations

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"deck\":\"%s\",\"boxes\":%d,\"regions\":%d,\"rules\":%d,\"violations\":["
       (json_escape r.r_deck) r.r_boxes r.r_regions r.r_rules);
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"layers\":[%s],\"required\":%d,\"actual\":%d,\"boxes\":[%s]}"
           (json_escape v.v_rule)
           (String.concat ","
              (List.map (fun l -> "\"" ^ Layer.name l ^ "\"") v.v_layers))
           v.v_required v.v_actual
           (String.concat ","
              (List.map
                 (fun (b : Box.t) ->
                   Printf.sprintf "[%d,%d,%d,%d]" b.Box.xmin b.Box.ymin
                     b.Box.xmax b.Box.ymax)
                 v.v_boxes))))
    r.r_violations;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ---- mutation self-check ------------------------------------------- *)

type self_check = {
  sc_layer : Layer.t;
  sc_original : Box.t;
  sc_mutated : Box.t;
  sc_violation : violation;
}

let self_check ?(deck = Deck.default) ?domains (items : Scanline.item array) =
  Obs.span "drc.self_check" @@ fun () ->
  let base = check ~deck ?domains items in
  if not (clean base) then
    Error
      (Printf.sprintf "layout is not clean before mutation (%d violations)"
         (List.length base.r_violations))
  else begin
    let n = Array.length items in
    let attempt i (shrunk : Box.t) =
      let it = items.(i) in
      let mutated = Array.copy items in
      mutated.(i) <- { it with Scanline.box = shrunk };
      match (check ~deck ?domains mutated).r_violations with
      | [ v ]
        when v.v_rule = "width." ^ Layer.name it.Scanline.layer
             && List.exists (fun vb -> Box.overlaps vb shrunk) v.v_boxes ->
        Some
          { sc_layer = it.Scanline.layer;
            sc_original = it.Scanline.box;
            sc_mutated = shrunk;
            sc_violation = v }
      | _ -> None
    in
    let rec try_idx i =
      if i >= n then
        Error "no box admits a clean single-defect narrowing"
      else
        let it = items.(i) in
        match Deck.width deck it.Scanline.layer with
        | Some w ->
          let b = it.Scanline.box in
          (* narrow the box to one lambda below the rule — for a box
             already at minimum width this is exactly a 1-lambda
             shrink *)
          let in_x =
            if Box.width b >= w then
              attempt i
                (Box.make ~xmin:b.Box.xmin ~ymin:b.Box.ymin
                   ~xmax:(b.Box.xmin + w - 1) ~ymax:b.Box.ymax)
            else None
          in
          (match in_x with
          | Some sc -> Ok sc
          | None ->
            let in_y =
              if Box.height b >= w then
                attempt i
                  (Box.make ~xmin:b.Box.xmin ~ymin:b.Box.ymin ~xmax:b.Box.xmax
                     ~ymax:(b.Box.ymin + w - 1))
              else None
            in
            (match in_y with
            | Some sc -> Ok sc
            | None -> try_idx (i + 1)))
        | None -> try_idx (i + 1)
    in
    try_idx 0
  end

let self_check_cell ?deck ?domains cell =
  self_check ?deck ?domains (Scanline.items_of_cell cell)

let pp_self_check ppf sc =
  Format.fprintf ppf
    "seeded defect: %s box %a shrunk to %a@.caught as: %a" (Layer.name sc.sc_layer)
    Box.pp sc.sc_original Box.pp sc.sc_mutated pp_violation sc.sc_violation

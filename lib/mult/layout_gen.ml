open Rsg_geom
open Rsg_layout
open Rsg_core
module Obs = Rsg_obs.Obs

type t = { whole : Cell.t; array_cell : Cell.t; sample : Sample.t }

(* ------------------------------------------------------------------ *)
(* Personalisation rules, shared (by specification) with the design
   file of Design_file and checked against Multiplier.cell_type.      *)

let type_mask ~xsize ~ysize ~xloc ~yloc =
  if yloc = ysize + 1 then Sample_lib.type1 (* carry-propagate row *)
  else if (xloc = xsize) <> (yloc = ysize) then Sample_lib.type2
  else Sample_lib.type1

let clock_mask ~xloc =
  if xloc mod 2 = 0 then Sample_lib.clock1 else Sample_lib.clock2

let car_mask ~xsize ~ysize ~xloc ~yloc =
  if yloc = ysize then Sample_lib.car2
  else if yloc = ysize + 1 then
    if xloc = xsize then Sample_lib.car1 else Sample_lib.car2
  else Sample_lib.car1

(* The right register bank of Appendix B: ysize rows of length
   ceil((3*ysize+1)/2), each register masked as bidirectional, single,
   or double according to how many signals stream in vs out at that
   row. *)
let right_reg_geometry ~ysize =
  let regnum = (3 * ysize) + 1 in
  (* Appendix B uses ceil(regnum/2), which works only when regnum is
     odd (even ysize, as in the thesis's 16-bit example); one extra
     slot covers the ins = outs row that arises for even regnum. *)
  let length = (regnum / 2) + 1 in
  (regnum, length)

let right_reg_mask ~ysize ~row ~k =
  let regnum, _ = right_reg_geometry ~ysize in
  let ins = row * 2 in
  let outs = regnum - ins in
  let bi = min ins outs in
  if k <= bi then "goboth"
  else if k = bi + 1 then if ins > outs then "gosleft" else "gosright"
  else if ins > outs then "goleft"
  else "goright"

let expected_mask_counts ~xsize ~ysize =
  let counts = Hashtbl.create 16 in
  let bump name = Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name)) in
  for yloc = 1 to ysize + 1 do
    for xloc = 1 to xsize do
      bump Sample_lib.basic_cell;
      bump (type_mask ~xsize ~ysize ~xloc ~yloc);
      bump (clock_mask ~xloc);
      bump (car_mask ~xsize ~ysize ~xloc ~yloc)
    done
  done;
  for x = 1 to xsize do
    for _ = 1 to x do
      bump Sample_lib.topreg
    done;
    for _ = 1 to xsize + 1 - x do
      bump Sample_lib.bottomreg
    done
  done;
  let _, length = right_reg_geometry ~ysize in
  for row = 1 to ysize do
    for k = 1 to length do
      bump Sample_lib.rightreg;
      bump (right_reg_mask ~ysize ~row ~k)
    done
  done;
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let cell_of sample name =
  match Db.find sample.Sample.db name with
  | Some c -> c
  | None -> failwith ("Layout_gen: sample lacks cell " ^ name)

let generate ?sample ~xsize ~ysize () =
  if xsize < 2 || ysize < 2 then invalid_arg "Layout_gen.generate";
  Obs.span "mult.generate" @@ fun () ->
  let sample =
    match sample with
    | Some s -> s
    | None -> Obs.span "mult.sample" (fun () -> fst (Sample_lib.build ()))
  in
  let db = sample.Sample.db and tbl = sample.Sample.table in
  let cellc = cell_of sample Sample_lib.basic_cell in
  let trc = cell_of sample Sample_lib.topreg in
  let brc = cell_of sample Sample_lib.bottomreg in
  let rrc = cell_of sample Sample_lib.rightreg in
  let mask name node =
    let m = Graph.mk_instance (cell_of sample name) in
    Graph.connect node m 1
  in
  (* --- the personalised array, rows 1 .. ysize+1 --- *)
  let grid = Array.make_matrix (xsize + 1) (ysize + 2) None in
  Obs.span "mult.graph" (fun () ->
      for yloc = 1 to ysize + 1 do
        for xloc = 1 to xsize do
          let node = Graph.mk_instance cellc in
          grid.(xloc).(yloc) <- Some node;
          mask (type_mask ~xsize ~ysize ~xloc ~yloc) node;
          mask (clock_mask ~xloc) node;
          mask (car_mask ~xsize ~ysize ~xloc ~yloc) node
        done
      done);
  let at x y = Option.get grid.(x).(y) in
  Obs.span "mult.graph" (fun () ->
      for yloc = 2 to ysize + 1 do
        Graph.connect (at 1 (yloc - 1)) (at 1 yloc) Sample_lib.v_index
      done;
      for yloc = 1 to ysize + 1 do
        for xloc = 2 to xsize do
          Graph.connect (at (xloc - 1) yloc) (at xloc yloc) Sample_lib.h_index
        done
      done);
  let array_name = Db.fresh_name db "array" in
  let array_cell = Expand.mk_cell ~db tbl array_name (at 1 1) in
  (* --- register stacks --- *)
  let column cell height =
    let nodes = Array.init height (fun _ -> Graph.mk_instance cell) in
    for k = 1 to height - 1 do
      Graph.connect nodes.(k - 1) nodes.(k) 2
    done;
    nodes
  in
  let stack name cell heights =
    (* columns chained horizontally at their first element *)
    let cols = List.map (column cell) heights in
    let firsts = List.map (fun c -> c.(0)) cols in
    let rec link = function
      | a :: (b :: _ as rest) ->
        Graph.connect a b 1;
        link rest
      | [ _ ] | [] -> ()
    in
    link firsts;
    let ref_node = List.hd firsts in
    let cell_name = Db.fresh_name db name in
    let built = Expand.mk_cell ~db tbl cell_name ref_node in
    (built, ref_node)
  in
  let tregs, tref =
    stack "topregs" trc (List.init xsize (fun i -> i + 1))
  in
  let bregs, bref =
    stack "bottomregs" brc (List.init xsize (fun i -> xsize - i))
  in
  (* right register bank: ysize rows of masked registers *)
  let _, length = right_reg_geometry ~ysize in
  let right_rows =
    Array.init ysize (fun r ->
        let row = r + 1 in
        let nodes = Array.init length (fun _ -> Graph.mk_instance rrc) in
        Array.iteri
          (fun idx node ->
            let m =
              Graph.mk_instance
                (cell_of sample (right_reg_mask ~ysize ~row ~k:(idx + 1)))
            in
            Graph.connect m node 1)
          nodes;
        for k = 1 to length - 1 do
          Graph.connect nodes.(k - 1) nodes.(k) 1
        done;
        nodes)
  in
  for r = 1 to ysize - 1 do
    Graph.connect right_rows.(r - 1).(0) right_rows.(r).(0) 2
  done;
  let rref = right_rows.(0).(0) in
  let rregs_name = Db.fresh_name db "rightregs" in
  let rregs = Expand.mk_cell ~db tbl rregs_name rref in
  (* --- inherited interfaces (fig 2.4) --- *)
  let inherit_and_declare ~from_cell ~into_cell ~a_node ~b_node ~inner_from
      ~inner_into =
    let inner =
      Interface_table.find_exn tbl ~from:inner_from ~into:inner_into ~index:1
    in
    let placement (n : Graph.node) = Option.get n.Graph.placement in
    let iface =
      Interface.inherit_interface ~inner ~a_in_c:(placement a_node)
        ~b_in_d:(placement b_node)
    in
    Interface_table.declare tbl ~from:from_cell.Cell.cname
      ~into:into_cell.Cell.cname ~index:1 iface
  in
  (* topregs sits so its reference register is above the array's
     top-left cell *)
  inherit_and_declare ~from_cell:tregs ~into_cell:array_cell ~a_node:tref
    ~b_node:(at 1 (ysize + 1))
    ~inner_from:Sample_lib.topreg ~inner_into:Sample_lib.basic_cell;
  inherit_and_declare ~from_cell:array_cell ~into_cell:bregs
    ~a_node:(at 1 1) ~b_node:bref ~inner_from:Sample_lib.basic_cell
    ~inner_into:Sample_lib.bottomreg;
  inherit_and_declare ~from_cell:array_cell ~into_cell:rregs
    ~a_node:(at xsize 1) ~b_node:rref ~inner_from:Sample_lib.basic_cell
    ~inner_into:Sample_lib.rightreg;
  (* --- the whole multiplier --- *)
  let arrayi = Graph.mk_instance array_cell in
  let tri = Graph.mk_instance tregs in
  let bri = Graph.mk_instance bregs in
  let rri = Graph.mk_instance rregs in
  Graph.connect tri arrayi 1;
  Graph.connect bri arrayi 1;
  Graph.connect rri arrayi 1;
  let whole_name = Db.fresh_name db "thewholething" in
  let whole = Expand.mk_cell ~db tbl whole_name arrayi in
  Obs.count "mult.generated";
  { whole; array_cell; sample }

let mask_positions cell name =
  Flatten.instance_placements cell
  |> List.filter_map (fun (n, (t : Transform.t)) ->
         if String.equal n name then Some t.Transform.offset else None)
  |> List.sort Vec.compare

(** A ripple-carry vector adder from the {e multiplier's} sample.

    Section 1.2.2 argues that a sample layout does not constrain the
    architecture generated from it ("the cells in many PLA sample
    layouts can also be used to generate other layouts").  The same
    holds here: the multiplier's basic cell is an AND gate plus a full
    adder, so a row of them with the right personalisation masks is an
    n-bit carry-ripple adder — a different architecture from the same
    graphical information.

    The companion logic model (a {!Cellnet} chain of the same cells,
    a-inputs as one operand, partial-product path disabled) verifies
    the architecture's function, and supports the same [beta]
    pipelining as the multiplier. *)

open Rsg_layout
open Rsg_core

type t = {
  cell : Cell.t;      (** the adder row layout *)
  bits : int;
  sample : Sample.t;  (** the multiplier sample it was built from *)
}

val generate : ?sample:Sample.t -> bits:int -> unit -> t
(** A row of [bits] basic cells, personalised type I with alternating
    clocks and the carry-chain masks. *)

type model = { m_bits : int; net : Cellnet.t }

val build_model : ?beta:int -> bits:int -> unit -> model

val add : model -> int -> int -> int
(** [add m a b] for unsigned operands in [0, 2^bits): the full
    (bits+1)-wide sum including the carry out. *)

val latency : model -> int

(** The multiplier sample layout (Figure 5.5, Appendix C).

    Provides the leaf cells of the pipelined-multiplier family — the
    basic adder cell, its personalisation masks (cell type, clock
    phase, carry interface), the three register cells and the register
    direction masks — together with assembly cells that define every
    interface {e by example}: each assembly places two instances with
    the desired relative position and drops a numeric label in their
    overlap, exactly as a designer would in the graphical editor.

    Geometry is synthetic (the real NMOS masks of Appendix E are not
    reproducible) but structurally faithful: masks sit {e inside} the
    bounding box of the cell they encode, demonstrating the
    overlap-friendly placement that bounding-box abutment cannot
    express (section 2.3). *)

open Rsg_core

(** Cell names, as used by the parameter file of Appendix C. *)

val basic_cell : string   (** "cell" — AND gate + full adder + outputs *)

val type1 : string        (** type I personalisation mask *)

val type2 : string

val clock1 : string

val clock2 : string

val car1 : string         (** carry-interface masks (fig 5.3) *)

val car2 : string

val topreg : string       (** "tr" *)

val bottomreg : string    (** "br" *)

val rightreg : string     (** "rr" *)

val dir_masks : string list
(** goboth, goleft, goright, gosleft, gosright. *)

(** Interface index numbers (see the parameter file). *)

val h_index : int         (** cell-to-cell horizontal, pitch 48 *)

val v_index : int         (** cell-to-cell vertical, pitch 64 *)

val cell_width : int

val cell_height : int

val reg_height : int      (** register cell pitch in a stack *)

val assemblies : unit -> Rsg_layout.Cell.t list
(** Fresh assembly cells (new cell/instance structures each call). *)

val build : unit -> Sample.t * Sample.declaration list
(** Extract the sample: every leaf cell registered, every interface
    declared from its labelled example. *)

val param_file : xsize:int -> ysize:int -> string
(** The Appendix C parameter file personalising the Appendix B design
    file onto this sample, for an xsize-by-ysize multiplier. *)

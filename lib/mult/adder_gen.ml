open Rsg_layout
open Rsg_core

type t = { cell : Cell.t; bits : int; sample : Sample.t }

let cell_of sample name =
  match Db.find sample.Sample.db name with
  | Some c -> c
  | None -> failwith ("Adder_gen: sample lacks cell " ^ name)

let generate ?sample ~bits () =
  if bits < 2 then invalid_arg "Adder_gen.generate: bits >= 2";
  let sample =
    match sample with Some s -> s | None -> fst (Sample_lib.build ())
  in
  let db = sample.Sample.db and tbl = sample.Sample.table in
  let basic = cell_of sample Sample_lib.basic_cell in
  let mask node name =
    let m = Graph.mk_instance (cell_of sample name) in
    Graph.connect node m 1
  in
  let row = Array.init bits (fun _ -> Graph.mk_instance basic) in
  for i = 1 to bits - 1 do
    Graph.connect row.(i - 1) row.(i) Sample_lib.h_index
  done;
  Array.iteri
    (fun i node ->
      mask node Sample_lib.type1;
      mask node (if (i + 1) mod 2 = 0 then Sample_lib.clock1 else Sample_lib.clock2);
      mask node
        (if i = bits - 1 then Sample_lib.car2 else Sample_lib.car1))
    row;
  let name = Db.fresh_name db "adder" in
  let cell = Expand.mk_cell ~db tbl name row.(0) in
  { cell; bits; sample }

(* ------------------------------------------------------------------ *)

type model = { m_bits : int; net : Cellnet.t }

let build_model ?beta ~bits () =
  if bits < 1 then invalid_arg "Adder_gen.build_model";
  let net = Cellnet.create () in
  let zero = Cellnet.add_cell net (Cellnet.Const false) [] in
  let one = Cellnet.add_cell net (Cellnet.Const true) [] in
  let a_in =
    Array.init bits (fun bit ->
        Cellnet.add_cell net (Cellnet.Input { bus = "a"; bit }) [])
  in
  let b_in =
    Array.init bits (fun bit ->
        Cellnet.add_cell net (Cellnet.Input { bus = "b"; bit }) [])
  in
  (* the multiplier's cell with its AND gate neutralised: one operand
     enters through the partial-product port (a AND true = a) *)
  let carry = ref (Cellnet.signal zero "out") in
  for i = 0 to bits - 1 do
    let cell =
      Cellnet.add_cell net ~pos:(i, 0)
        (Cellnet.Adder { negate = false })
        [ ("a", Cellnet.signal a_in.(i) "out");
          ("b", Cellnet.signal one "out");
          ("s", Cellnet.signal b_in.(i) "out");
          ("c", !carry) ]
    in
    Cellnet.set_output net "s" i (Cellnet.signal cell "sum");
    carry := Cellnet.signal cell "carry"
  done;
  Cellnet.set_output net "s" bits !carry;
  (match beta with
  | None -> Cellnet.combinational net
  | Some b -> Cellnet.pipeline net ~beta:b);
  { m_bits = bits; net }

let add m a b =
  let limit = 1 lsl m.m_bits in
  if a < 0 || a >= limit || b < 0 || b >= limit then
    invalid_arg "Adder_gen.add";
  let stim ~bus ~bit ~cycle =
    if cycle < 0 then false
    else
      let v = if String.equal bus "a" then a else b in
      v land (1 lsl bit) <> 0
  in
  Cellnet.read_output m.net stim ~bus:"s" ~cycle:(Cellnet.latency m.net)

let latency m = Cellnet.latency m.net

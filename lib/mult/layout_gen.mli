(** Native multiplier layout generator (Chapter 5).

    Builds the complete pipelined-multiplier layout directly against
    the core API — the same structure the Appendix B design file
    describes: an (xsize)-by-(ysize+1) personalised array of basic
    cells (carry-save rows plus the carry-propagate row), skewing /
    deskewing register stacks on three sides, connected through
    inherited interfaces.  Used on its own and as the reference that
    the interpreted design file must reproduce exactly (experiment
    E17). *)

open Rsg_layout
open Rsg_core

type t = {
  whole : Cell.t;       (** the complete multiplier ("thewholething") *)
  array_cell : Cell.t;  (** the inner personalised array *)
  sample : Sample.t;    (** sample used (cells + interface table) *)
}

val generate : ?sample:Sample.t -> xsize:int -> ysize:int -> unit -> t
(** [xsize] = multiplier bits (columns), [ysize] = multiplicand bits
    (carry-save rows); both must be >= 2.  A fresh {!Sample_lib}
    sample is built unless one is supplied.  The generated cells are
    registered in the sample's cell table under fresh names. *)

val mask_positions : Cell.t -> string -> Rsg_geom.Vec.t list
(** Absolute positions (sorted) of every flattened instance of a named
    cell — used to check personalisation against
    {!Multiplier.cell_type}. *)

val expected_mask_counts : xsize:int -> ysize:int -> (string * int) list
(** How many instances of each mask/register cell the generator is
    specified to emit, derived from the personalisation rules —
    an independent accounting the tests check both generators
    against. *)

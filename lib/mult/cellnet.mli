(** Cell-level synchronous networks.

    Chapter 5 treats the full adder as "the largest indivisible cell":
    the degree of pipelining is measured in full-adder combinational
    delays between registers, and retiming moves whole-register
    boundaries between cells.  This module models circuits at exactly
    that granularity: nodes are multiplier cells (AND gate + full
    adder, with operand pass-through), carry-propagate adder cells,
    inverters, constants and external inputs; connections carry a
    register count.

    Pipelining to degree [beta] (at most [beta] full-adder delays
    between any two registers) is implemented by staging: each cell is
    assigned stage [(depth - 1) / beta] and every connection receives
    [stage(consumer) - stage(producer)] registers.  On an acyclic
    array this is equivalent to a legal retiming [Leiserson-Rose-Saxe]
    and reproduces the peripheral register stacks of Figure 5.2: a
    connection from an external input to a stage-s cell acquires the
    s-register skewing column. *)

type port = string
(** Output port names: adder cells expose ["sum"], ["carry"], ["a"]
    and ["b"] (operand pass-throughs); single-output cells expose
    ["out"]. *)

type kind =
  | Adder of { negate : bool }
      (** partial-product adder cell: inputs [a] [b] [s] [c]; output
          [sum] = (a&b ^ negate) + s + c low bit, [carry] the high
          bit; pass-throughs [a], [b].  [negate] selects the
          complemented (type II) product. *)
  | Cpa  (** plain full adder: inputs [s] [c] [k] (carry chain) *)
  | Notg  (** inverter: input [x] *)
  | Const of bool
  | Input of { bus : string; bit : int }

type signal = { src : int; port : port }

type t

val create : unit -> t

val add_cell :
  t -> ?pos:int * int -> kind -> (string * signal) list -> int
(** [add_cell net kind inputs] returns the new cell id.  Inputs are
    (input-name, signal) pairs; every connection starts with zero
    registers.  Raises [Failure] on a dangling signal or a missing /
    unknown input name for the kind. *)

val signal : int -> port -> signal

val set_output : t -> string -> int -> signal -> unit
(** Register [signal] as bit [i] of output bus [name]. *)

val outputs : t -> (string * int * signal) list

val cell_count : t -> int

val adder_count : t -> int
(** Cells that cost a full-adder delay (Adder and Cpa). *)

(* ---- pipelining ---- *)

val depth : t -> int -> int
(** Combinational full-adder depth of a cell (0 for inputs and
    constants). *)

val pipeline : t -> beta:int -> unit
(** Assign stages for at most [beta] adder delays between registers
    and set the register count of every connection (including output
    deskew).  [beta <= 0] raises [Invalid_argument].  Idempotent:
    recomputes from scratch. *)

val combinational : t -> unit
(** Clear all registers (degree-infinity pipelining). *)

val latency : t -> int
(** Cycles from input presentation to aligned outputs (0 when
    combinational). *)

val register_count : t -> int
(** Total registers over all connections and output deskew chains. *)

val input_skew_registers : t -> int
(** Registers on connections leaving [Input] cells — the peripheral
    input stacks of Figure 5.2. *)

val output_deskew_registers : t -> int

val max_comb_depth : t -> int
(** Longest register-free full-adder chain — the quantity [beta]
    bounds. *)

type register_entry = {
  re_from : int * port;
  re_to : [ `Cell of int * string | `Output of string * int ];
  re_count : int;
}

val register_table : t -> register_entry list
(** The register configuration table (section 5): every connection
    with a non-zero register count. *)

(* ---- simulation ---- *)

type stimulus = bus:string -> bit:int -> cycle:int -> bool
(** External input streams (total over all cycles, negative
    included). *)

val eval : t -> stimulus -> signal -> cycle:int -> bool
(** Cycle-accurate evaluation with memoisation; a connection with [r]
    registers reads its source [r] cycles earlier. *)

val read_output : t -> stimulus -> bus:string -> cycle:int -> int
(** Assemble an output bus (little-endian) at a cycle. *)

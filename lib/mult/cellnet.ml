type port = string

type kind =
  | Adder of { negate : bool }
  | Cpa
  | Notg
  | Const of bool
  | Input of { bus : string; bit : int }

type signal = { src : int; port : port }

type conn = { sig_in : signal; mutable regs : int }

type cell = {
  id : int;
  kind : kind;
  ins : (string * conn) list;
  pos : (int * int) option;
  mutable stage : int;
}

type out_bit = {
  ob_bus : string;
  ob_bit : int;
  ob_sig : signal;
  mutable ob_regs : int;
}

type t = {
  mutable cells : cell array;  (* index = id *)
  mutable n : int;
  mutable outs : out_bit list;
  mutable pipelined : bool;
}

let create () = { cells = [||]; n = 0; outs = []; pipelined = false }

let cell_count net = net.n

let get net id =
  if id < 0 || id >= net.n then failwith "Cellnet: dangling signal";
  net.cells.(id)

let input_names = function
  | Adder _ -> [ "a"; "b"; "s"; "c" ]
  | Cpa -> [ "s"; "c"; "k" ]
  | Notg -> [ "x" ]
  | Const _ | Input _ -> []

let output_ports = function
  | Adder _ -> [ "sum"; "carry"; "a"; "b" ]
  | Cpa -> [ "sum"; "carry" ]
  | Notg | Const _ | Input _ -> [ "out" ]

let signal src port = { src; port }

let add_cell net ?pos kind inputs =
  let expected = input_names kind in
  List.iter
    (fun name ->
      if not (List.mem_assoc name inputs) then
        failwith (Printf.sprintf "Cellnet.add_cell: missing input %s" name))
    expected;
  List.iter
    (fun (name, s) ->
      if not (List.mem name expected) then
        failwith (Printf.sprintf "Cellnet.add_cell: unknown input %s" name);
      let src = get net s.src in
      if not (List.mem s.port (output_ports src.kind)) then
        failwith
          (Printf.sprintf "Cellnet.add_cell: cell %d has no output %s" s.src
             s.port))
    inputs;
  let id = net.n in
  let cell =
    { id; kind;
      ins = List.map (fun (nm, s) -> (nm, { sig_in = s; regs = 0 })) inputs;
      pos; stage = 0 }
  in
  if net.n = Array.length net.cells then begin
    let bigger =
      Array.make (max 16 (2 * Array.length net.cells)) cell
    in
    Array.blit net.cells 0 bigger 0 net.n;
    net.cells <- bigger
  end;
  net.cells.(id) <- cell;
  net.n <- net.n + 1;
  id

let set_output net bus bit s =
  ignore (get net s.src);
  net.outs <- { ob_bus = bus; ob_bit = bit; ob_sig = s; ob_regs = 0 } :: net.outs

let outputs net =
  List.rev_map (fun ob -> (ob.ob_bus, ob.ob_bit, ob.ob_sig)) net.outs

let adder_count net =
  let k = ref 0 in
  for i = 0 to net.n - 1 do
    match net.cells.(i).kind with
    | Adder _ | Cpa -> incr k
    | Notg | Const _ | Input _ -> ()
  done;
  !k

(* ------------------------------------------------------------------ *)
(* Depth and staging                                                   *)

let costs_delay = function
  | Adder _ | Cpa -> true
  | Notg | Const _ | Input _ -> false

let depths net =
  (* Cells are created in topological order (inputs before consumers),
     so a single left-to-right pass suffices. *)
  let d = Array.make net.n 0 in
  for i = 0 to net.n - 1 do
    let cell = net.cells.(i) in
    let base =
      List.fold_left (fun acc (_, conn) -> max acc d.(conn.sig_in.src)) 0
        cell.ins
    in
    d.(i) <- (if costs_delay cell.kind then base + 1 else base)
  done;
  d

let depth net id = (depths net).(id)

let combinational net =
  net.pipelined <- false;
  for i = 0 to net.n - 1 do
    net.cells.(i).stage <- 0;
    List.iter (fun (_, conn) -> conn.regs <- 0) net.cells.(i).ins
  done;
  List.iter (fun ob -> ob.ob_regs <- 0) net.outs

let pipeline net ~beta =
  if beta <= 0 then invalid_arg "Cellnet.pipeline: beta must be positive";
  let d = depths net in
  for i = 0 to net.n - 1 do
    let cell = net.cells.(i) in
    cell.stage <- (if d.(i) = 0 then 0 else (d.(i) - 1) / beta);
    List.iter
      (fun (_, conn) ->
        conn.regs <- cell.stage - net.cells.(conn.sig_in.src).stage;
        assert (conn.regs >= 0))
      cell.ins
  done;
  let max_stage =
    List.fold_left
      (fun acc ob -> max acc net.cells.(ob.ob_sig.src).stage)
      0 net.outs
  in
  List.iter
    (fun ob -> ob.ob_regs <- max_stage - net.cells.(ob.ob_sig.src).stage)
    net.outs;
  net.pipelined <- true

let latency net =
  if not net.pipelined then 0
  else
    List.fold_left
      (fun acc ob -> max acc (net.cells.(ob.ob_sig.src).stage + ob.ob_regs))
      0 net.outs

let register_count net =
  let total = ref 0 in
  for i = 0 to net.n - 1 do
    List.iter (fun (_, conn) -> total := !total + conn.regs) net.cells.(i).ins
  done;
  List.iter (fun ob -> total := !total + ob.ob_regs) net.outs;
  !total

let input_skew_registers net =
  let total = ref 0 in
  for i = 0 to net.n - 1 do
    List.iter
      (fun (_, conn) ->
        match net.cells.(conn.sig_in.src).kind with
        | Input _ -> total := !total + conn.regs
        | _ -> ())
      net.cells.(i).ins
  done;
  !total

let output_deskew_registers net =
  List.fold_left (fun acc ob -> acc + ob.ob_regs) 0 net.outs

let max_comb_depth net =
  (* Longest register-free adder chain ending at each cell. *)
  let lam = Array.make (max net.n 1) 0 in
  let best = ref 0 in
  for i = 0 to net.n - 1 do
    let cell = net.cells.(i) in
    let base =
      List.fold_left
        (fun acc (_, conn) ->
          if conn.regs > 0 then acc else max acc lam.(conn.sig_in.src))
        0 cell.ins
    in
    lam.(i) <- (if costs_delay cell.kind then base + 1 else base);
    best := max !best lam.(i)
  done;
  !best

type register_entry = {
  re_from : int * port;
  re_to : [ `Cell of int * string | `Output of string * int ];
  re_count : int;
}

let register_table net =
  let entries = ref [] in
  for i = net.n - 1 downto 0 do
    List.iter
      (fun (name, conn) ->
        if conn.regs > 0 then
          entries :=
            { re_from = (conn.sig_in.src, conn.sig_in.port);
              re_to = `Cell (i, name);
              re_count = conn.regs }
            :: !entries)
      net.cells.(i).ins
  done;
  List.iter
    (fun ob ->
      if ob.ob_regs > 0 then
        entries :=
          { re_from = (ob.ob_sig.src, ob.ob_sig.port);
            re_to = `Output (ob.ob_bus, ob.ob_bit);
            re_count = ob.ob_regs }
          :: !entries)
    net.outs;
  !entries

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)

type stimulus = bus:string -> bit:int -> cycle:int -> bool

let eval net (stim : stimulus) s ~cycle =
  let memo : (int * port * int, bool) Hashtbl.t = Hashtbl.create 1024 in
  let rec value { src; port } cycle =
    match Hashtbl.find_opt memo (src, port, cycle) with
    | Some v -> v
    | None ->
      let cell = get net src in
      let input name =
        let conn = List.assoc name cell.ins in
        value conn.sig_in (cycle - conn.regs)
      in
      let v =
        match (cell.kind, port) with
        | Input { bus; bit }, "out" -> stim ~bus ~bit ~cycle
        | Const b, "out" -> b
        | Notg, "out" -> not (input "x")
        | Adder { negate }, _ -> (
          let pp =
            let p = input "a" && input "b" in
            if negate then not p else p
          in
          match port with
          | "a" -> input "a"
          | "b" -> input "b"
          | "sum" ->
            let s = input "s" and c = input "c" in
            (pp <> s) <> c
          | "carry" ->
            let s = input "s" and c = input "c" in
            (pp && s) || (pp && c) || (s && c)
          | p -> failwith ("Cellnet.eval: bad adder port " ^ p))
        | Cpa, _ -> (
          let s = input "s" and c = input "c" and k = input "k" in
          match port with
          | "sum" -> (s <> c) <> k
          | "carry" -> (s && c) || (s && k) || (c && k)
          | p -> failwith ("Cellnet.eval: bad cpa port " ^ p))
        | _, p -> failwith ("Cellnet.eval: bad port " ^ p)
      in
      Hashtbl.replace memo (src, port, cycle) v;
      v
  in
  value s cycle

let read_output net stim ~bus ~cycle =
  let bits =
    List.filter (fun ob -> String.equal ob.ob_bus bus) net.outs
  in
  if bits = [] then failwith ("Cellnet.read_output: no output bus " ^ bus);
  List.fold_left
    (fun acc ob ->
      let v = eval net stim ob.ob_sig ~cycle:(cycle - ob.ob_regs) in
      if v then acc lor (1 lsl ob.ob_bit) else acc)
    0 bits

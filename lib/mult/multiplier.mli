(** Baugh-Wooley array multipliers (Chapter 5).

    A purely combinational m-by-n two's complement multiplier built
    from two carry-save adder cell types plus a final carry-propagate
    row (Figure 5.1):

    - Type I adds the bit product [a_i * b_j] to its sum and carry
      inputs; type II adds the complemented product.
    - Type II cells sit where exactly one of the operand MSBs is
      involved — the left and bottom edges of the carry-save array
      except the corner (Chapter 5's personalization rule).
    - The Baugh-Wooley corrections [2^(m-1) + 2^(n-1) + 2^(m+n-1)] are
      injected as constant ones on otherwise-unused edge inputs (the
      "Ones and zeros ... assigned to the unused inputs along the top
      and left edges"), the last as an inversion of the final carry.

    The same cell-type rule drives the layout generator
    ({!Layout_gen}), so the logic model verifies exactly the structure
    the RSG personalises. *)

type cell_type = Type_I | Type_II

val cell_type : m:int -> n:int -> i:int -> j:int -> cell_type
(** Personality of carry-save cell (i, j): [Type_II] iff exactly one
    of [i = m-1], [j = n-1] holds. *)

val clock_phase : i:int -> [ `Phi1 | `Phi2 ]
(** Two-phase clock assignment by column parity, as in the Appendix B
    design file. *)

type t = {
  m : int;  (** multiplier width (bits of a) *)
  n : int;  (** multiplicand width (bits of b) *)
  net : Cellnet.t;
  beta : int option;  (** pipelining degree; [None] = combinational *)
}

val build : ?beta:int -> m:int -> n:int -> unit -> t
(** Construct the array.  [m, n >= 2]; [beta >= 1] pipelines to at
    most [beta] full-adder delays between registers (1 = bit-systolic,
    Figure 5.2a; 2 = Figure 5.2b). *)

val latency : t -> int

val multiply : t -> int -> int -> int
(** [multiply t a b] drives the array with two's complement operands
    ([a] in m bits, [b] in n bits; raises [Invalid_argument] when out
    of range) and returns the signed (m+n)-bit product.  For a
    pipelined array the operands are presented at cycle 0 and the
    product read at the latency. *)

val multiply_stream : t -> (int * int) list -> int list
(** Pipelined operation: present operand pair k at cycle k and collect
    the products at cycles [latency], [latency + 1], ... — one result
    per cycle, demonstrating full throughput. *)

type stats = {
  adder_cells : int;
  registers : int;
  input_skew : int;      (** peripheral input-stack registers *)
  output_deskew : int;
  internal : int;        (** registers between array cells *)
  latency_cycles : int;
  max_comb_depth : int;  (** adder delays between registers *)
}

val stats : t -> stats

val reference_product : m:int -> n:int -> int -> int -> int
(** Signed (m+n)-bit product computed arithmetically; the oracle for
    tests. *)

val in_range : width:int -> int -> bool
(** Two's complement range check. *)

type graph = {
  n : int;
  delay : int array;
  edges : (int * int * int) list;
}

exception Bad_graph of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_graph s)) fmt

let validate g =
  if g.n < 1 then fail "empty graph";
  if Array.length g.delay <> g.n then fail "delay array size";
  Array.iteri (fun v d -> if d < 0 then fail "negative delay at %d" v) g.delay;
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= g.n || v < 0 || v >= g.n then fail "edge out of range";
      if w < 0 then fail "negative register count on (%d,%d)" u v)
    g.edges;
  (* every cycle must carry a register: the 0-weight subgraph must be
     acyclic *)
  let adj = Array.make g.n [] in
  List.iter (fun (u, v, w) -> if w = 0 then adj.(u) <- v :: adj.(u)) g.edges;
  let color = Array.make g.n 0 in
  let rec visit v =
    if color.(v) = 1 then fail "register-free cycle through vertex %d" v;
    if color.(v) = 0 then begin
      color.(v) <- 1;
      List.iter visit adj.(v);
      color.(v) <- 2
    end
  in
  for v = 0 to g.n - 1 do
    visit v
  done

(* Longest register-free combinational path, by DP over the (acyclic)
   0-weight subgraph. *)
let clock_period g =
  validate g;
  let adj_in = Array.make g.n [] in
  List.iter (fun (u, v, w) -> if w = 0 then adj_in.(v) <- u :: adj_in.(v)) g.edges;
  let memo = Array.make g.n (-1) in
  let rec delta v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      let best = List.fold_left (fun acc u -> max acc (delta u)) 0 adj_in.(v) in
      memo.(v) <- best + g.delay.(v);
      memo.(v)
    end
  in
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (delta v)
  done;
  !best

(* W and D matrices by Floyd-Warshall over lexicographic weights
   (w(e), -d(u)): W(u,v) = min registers u~>v, D(u,v) = critical delay
   along such a minimum-register path. *)
let wd_matrices g =
  let inf = max_int / 4 in
  let w = Array.make_matrix g.n g.n inf in
  let nd = Array.make_matrix g.n g.n inf in
  (* nd = "negative delay" second component *)
  List.iter
    (fun (u, v, wt) ->
      if
        wt < w.(u).(v)
        || (wt = w.(u).(v) && -g.delay.(u) < nd.(u).(v))
      then begin
        w.(u).(v) <- wt;
        nd.(u).(v) <- -g.delay.(u)
      end)
    g.edges;
  for k = 0 to g.n - 1 do
    for i = 0 to g.n - 1 do
      for j = 0 to g.n - 1 do
        if w.(i).(k) < inf && w.(k).(j) < inf then begin
          let cand_w = w.(i).(k) + w.(k).(j) in
          let cand_d = nd.(i).(k) + nd.(k).(j) in
          if cand_w < w.(i).(j) || (cand_w = w.(i).(j) && cand_d < nd.(i).(j))
          then begin
            w.(i).(j) <- cand_w;
            nd.(i).(j) <- cand_d
          end
        end
      done
    done
  done;
  let d = Array.make_matrix g.n g.n min_int in
  for i = 0 to g.n - 1 do
    for j = 0 to g.n - 1 do
      if w.(i).(j) < inf then d.(i).(j) <- g.delay.(j) - nd.(i).(j)
    done
  done;
  (w, d)

(* Difference constraints r(a) - r(b) <= c solved by Bellman-Ford
   shortest paths; None on a negative cycle. *)
let solve_diff n cons =
  let r = Array.make n 0 in
  let changed = ref true in
  let passes = ref 0 in
  let ok = ref true in
  while !changed && !ok do
    changed := false;
    incr passes;
    if !passes > n + 1 then ok := false
    else
      List.iter
        (fun (a, b, c) ->
          if r.(a) > r.(b) + c then begin
            r.(a) <- r.(b) + c;
            changed := true
          end)
        cons
  done;
  if !ok then Some r else None

let retime_for g ~period =
  validate g;
  let w, d = wd_matrices g in
  let cons = ref [] in
  List.iter (fun (u, v, wt) -> cons := (u, v, wt) :: !cons) g.edges;
  for u = 0 to g.n - 1 do
    for v = 0 to g.n - 1 do
      if d.(u).(v) > min_int && d.(u).(v) > period then
        cons := (u, v, w.(u).(v) - 1) :: !cons
    done
  done;
  (* single-vertex demand: each vertex's own delay must fit *)
  let fits = Array.for_all (fun dv -> dv <= period) g.delay in
  if not fits then None else solve_diff g.n !cons

let apply g r =
  if Array.length r <> g.n then fail "retiming size";
  let edges =
    List.map
      (fun (u, v, w) ->
        let w' = w + r.(v) - r.(u) in
        if w' < 0 then fail "illegal retiming on edge (%d,%d)" u v;
        (u, v, w'))
      g.edges
  in
  { g with edges }

let min_period g =
  validate g;
  let _, d = wd_matrices g in
  let candidates = ref [] in
  Array.iter (fun row ->
      Array.iter (fun x -> if x > min_int then candidates := x :: !candidates) row)
    d;
  Array.iter (fun dv -> candidates := dv :: !candidates) g.delay;
  let sorted = List.sort_uniq Int.compare !candidates in
  let rec search = function
    | [] -> fail "min_period: no feasible period?!"
    | c :: rest -> (
      match retime_for g ~period:c with
      | Some r -> (c, r)
      | None -> search rest)
  in
  search sorted

let total_registers g = List.fold_left (fun acc (_, _, w) -> acc + w) 0 g.edges

open Rsg_geom
open Rsg_layout
open Rsg_core

let basic_cell = "cell"

let type1 = "t1"

let type2 = "t2"

let clock1 = "clk1"

let clock2 = "clk2"

let car1 = "car1"

let car2 = "car2"

let topreg = "tr"

let bottomreg = "br"

let rightreg = "rr"

let dir_masks = [ "goboth"; "goleft"; "goright"; "gosleft"; "gosright" ]

let h_index = 1

let v_index = 2

let cell_width = 48

let cell_height = 64

let reg_height = 20

let box x y w h = Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h

(* ------------------------------------------------------------------ *)
(* Leaf cell geometry.  Synthetic but non-trivial: the basic cell has
   power rails, an input inverter column, full-adder circuitry and an
   output register bank, echoing the description of Figure 5.3.       *)

let make_basic () =
  let c = Cell.create basic_cell in
  (* power rails *)
  Cell.add_box c Layer.Metal (box 0 0 cell_width 4);
  Cell.add_box c Layer.Metal (box 0 (cell_height - 4) cell_width 4);
  (* input inverters *)
  Cell.add_box c Layer.Diffusion (box 4 8 8 20);
  Cell.add_box c Layer.Poly (box 2 14 12 4);
  Cell.add_box c Layer.Contact (box 6 10 4 4);
  (* full adder core *)
  Cell.add_box c Layer.Diffusion (box 18 8 22 24);
  Cell.add_box c Layer.Poly (box 16 12 26 4);
  Cell.add_box c Layer.Poly (box 16 22 26 4);
  Cell.add_box c Layer.Contact (box 36 10 4 4);
  (* output registers *)
  Cell.add_box c Layer.Diffusion (box 6 38 36 14);
  Cell.add_box c Layer.Poly (box 4 42 40 4);
  Cell.add_box c Layer.Metal (box 4 54 40 4);
  (* routing *)
  Cell.add_box c Layer.Metal (box 22 4 4 50);
  c

let make_mask name layer =
  let c = Cell.create name in
  Cell.add_box c layer (box 0 0 10 10);
  Cell.add_box c Layer.Contact (box 3 3 4 4);
  c

let make_clock name =
  let c = Cell.create name in
  Cell.add_box c Layer.Metal (box 0 0 12 6);
  Cell.add_box c Layer.Poly (box 4 0 4 6);
  c

let make_reg name w h =
  let c = Cell.create name in
  Cell.add_box c Layer.Metal (box 0 0 w 3);
  Cell.add_box c Layer.Metal (box 0 (h - 3) w 3);
  Cell.add_box c Layer.Diffusion (box 4 5 (w - 8) (h - 10));
  Cell.add_box c Layer.Poly (box 2 (h / 2 - 2) (w - 4) 4);
  c

let make_dir name =
  let c = Cell.create name in
  Cell.add_box c Layer.Implant (box 0 0 6 6);
  c

(* ------------------------------------------------------------------ *)
(* Assemblies: each defines one interface by example.                  *)

let pair_assembly asm_name a ?(orient = Orient.north) ~at b ~label ~at_label =
  let asm = Cell.create asm_name in
  ignore (Cell.add_instance asm ~at:Vec.zero a);
  ignore (Cell.add_instance asm ~orient ~at b);
  Cell.add_label asm (string_of_int label) at_label;
  asm

let assemblies () =
  let cellc = make_basic () in
  let t1 = make_mask type1 Layer.Implant in
  let t2 = make_mask type2 Layer.Buried in
  let ck1 = make_clock clock1 in
  let ck2 = make_clock clock2 in
  let cr1 = make_mask car1 Layer.Poly in
  let cr2 = make_mask car2 Layer.Overglass in
  let tr = make_reg topreg cell_width reg_height in
  let br = make_reg bottomreg cell_width reg_height in
  let rr = make_reg rightreg reg_height cell_height in
  let dirs = List.map make_dir dir_masks in
  let mask_at name mask = pair_assembly name cellc mask in
  [ (* array tiling *)
    pair_assembly "asm-cell-h" cellc cellc ~at:(Vec.make cell_width 0)
      ~label:h_index ~at_label:(Vec.make cell_width 32);
    pair_assembly "asm-cell-v" cellc cellc ~at:(Vec.make 0 cell_height)
      ~label:v_index ~at_label:(Vec.make 24 cell_height);
    (* personalisation masks, placed well inside the basic cell *)
    mask_at "asm-t1" t1 ~at:(Vec.make 6 28) ~label:1
      ~at_label:(Vec.make 8 30);
    mask_at "asm-t2" t2 ~at:(Vec.make 6 28) ~label:1
      ~at_label:(Vec.make 8 30);
    mask_at "asm-clk1" ck1 ~at:(Vec.make 30 46) ~label:1
      ~at_label:(Vec.make 32 48);
    mask_at "asm-clk2" ck2 ~at:(Vec.make 30 46) ~label:1
      ~at_label:(Vec.make 32 48);
    mask_at "asm-car1" cr1 ~at:(Vec.make 32 8) ~label:1
      ~at_label:(Vec.make 34 10);
    mask_at "asm-car2" cr2 ~at:(Vec.make 32 8) ~label:1
      ~at_label:(Vec.make 34 10);
    (* register stacks: horizontal chains and vertical pitches *)
    pair_assembly "asm-tr-h" tr tr ~at:(Vec.make cell_width 0) ~label:1
      ~at_label:(Vec.make cell_width 10);
    pair_assembly "asm-tr-v" tr tr ~at:(Vec.make 0 reg_height) ~label:2
      ~at_label:(Vec.make 24 reg_height);
    pair_assembly "asm-br-h" br br ~at:(Vec.make cell_width 0) ~label:1
      ~at_label:(Vec.make cell_width 10);
    (* bottom registers stack downward *)
    pair_assembly "asm-br-v" br br ~at:(Vec.make 0 (-reg_height)) ~label:2
      ~at_label:(Vec.make 24 0);
    (* right registers stack rightward, tile vertically *)
    pair_assembly "asm-rr-h" rr rr ~at:(Vec.make reg_height 0) ~label:1
      ~at_label:(Vec.make reg_height 32);
    pair_assembly "asm-rr-v" rr rr ~at:(Vec.make 0 cell_height) ~label:2
      ~at_label:(Vec.make 10 cell_height);
    (* array cell to peripheral registers *)
    pair_assembly "asm-cell-tr" cellc tr ~at:(Vec.make 0 cell_height)
      ~label:1 ~at_label:(Vec.make 30 cell_height);
    pair_assembly "asm-cell-br" cellc br ~at:(Vec.make 0 (-reg_height))
      ~label:1 ~at_label:(Vec.make 30 0);
    pair_assembly "asm-cell-rr" cellc rr ~at:(Vec.make cell_width 0)
      ~label:1 ~at_label:(Vec.make cell_width 40) ]
  @ List.map
      (fun d ->
        pair_assembly ("asm-rr-" ^ d.Cell.cname) rr d ~at:(Vec.make 7 29)
          ~label:1 ~at_label:(Vec.make 8 30))
      dirs

let build () = Sample.of_assemblies (assemblies ())

let param_file ~xsize ~ysize =
  Printf.sprintf
    ";; parameter file after Appendix C\n\
     .output_file:mult.cif\n\
     xsize=%d\n\
     ysize=%d\n\
     corecell=%s\n\
     typecell1=%s\n\
     typecell2=%s\n\
     clockcell1=%s\n\
     clockcell2=%s\n\
     carcell1=%s\n\
     carcell2=%s\n\
     topregcell=%s\n\
     bottomregcell=%s\n\
     rightregcell=%s\n\
     bothdir=goboth\n\
     leftdir=goleft\n\
     rightdir=goright\n\
     sleftdir=gosleft\n\
     srightdir=gosright\n\
     hinum=%d\n\
     vinum=%d\n\
     t1inum=1\n\
     t2inum=1\n\
     clk1inum=1\n\
     clk2inum=1\n\
     car1inum=1\n\
     car2inum=1\n\
     topreghinum=1\n\
     topregvinum=2\n\
     bottomreghinum=1\n\
     bottomregvinum=2\n\
     rightreghinum=1\n\
     rightregvinum=2\n\
     rtoregsinum=1\n\
     celltotopreginum=1\n\
     celltobottomreginum=1\n\
     celltorightreginum=1\n\
     mularrayname=\"array\"\n\
     arrayname=array\n\
     topregisters=\"topregs\"\n\
     topregistername=topregs\n\
     bottomregisters=\"bottomregs\"\n\
     bottomregistername=bottomregs\n\
     rightregisters=\"rightregs\"\n\
     rightregistername=rightregs\n"
    xsize ysize basic_cell type1 type2 clock1 clock2 car1 car2 topreg
    bottomreg rightreg h_index v_index

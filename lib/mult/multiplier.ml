type cell_type = Type_I | Type_II

let cell_type ~m ~n ~i ~j =
  if (i = m - 1) <> (j = n - 1) then Type_II else Type_I

let clock_phase ~i = if i mod 2 = 0 then `Phi1 else `Phi2

type t = { m : int; n : int; net : Cellnet.t; beta : int option }

let in_range ~width v = v >= -(1 lsl (width - 1)) && v < 1 lsl (width - 1)

let to_signed ~width v =
  let v = v land ((1 lsl width) - 1) in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let reference_product ~m ~n a b =
  if not (in_range ~width:m a) then invalid_arg "reference_product: a";
  if not (in_range ~width:n b) then invalid_arg "reference_product: b";
  to_signed ~width:(m + n) (a * b)

(* Array construction.  Carry-save cell (i, j), 0 <= i < m, 0 <= j < n,
   accumulates partial product a_i b_j at weight 2^(i+j):

     s_in = sum of cell (i+1, j-1)      (same weight)
     c_in = carry of cell (i, j-1)      (same weight)

   Row 0 and the top edge (i = m-1, j >= 1) have free s/c inputs; the
   Baugh-Wooley corrections 2^(m-1) and 2^(n-1) ride in on them.
   Product bit j (j < n) is the sum output of cell (0, j).  The
   carry-propagate row then resolves bits n .. m+n-2, with the final
   bit m+n-1 = NOT(last cpa carry) absorbing the 2^(m+n-1)
   correction. *)
let build ?beta ~m ~n () =
  if m < 2 || n < 2 then invalid_arg "Multiplier.build: m, n >= 2 required";
  (match beta with
  | Some b when b < 1 -> invalid_arg "Multiplier.build: beta >= 1 required"
  | _ -> ());
  let net = Cellnet.create () in
  let zero = Cellnet.add_cell net (Cellnet.Const false) [] in
  let one = Cellnet.add_cell net (Cellnet.Const true) [] in
  let szero = Cellnet.signal zero "out" and sone = Cellnet.signal one "out" in
  let a_in =
    Array.init m (fun bit ->
        Cellnet.add_cell net (Cellnet.Input { bus = "a"; bit }) [])
  in
  let b_in =
    Array.init n (fun bit ->
        Cellnet.add_cell net (Cellnet.Input { bus = "b"; bit }) [])
  in
  (* cells.(j).(i) = id of carry-save cell (i, j) *)
  let cells = Array.make_matrix n m 0 in
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      let a_sig =
        if j = 0 then Cellnet.signal a_in.(i) "out"
        else Cellnet.signal cells.(j - 1).(i) "a"
      in
      let b_sig =
        if i = 0 then Cellnet.signal b_in.(j) "out"
        else Cellnet.signal cells.(j).(i - 1) "b"
      in
      let s_sig =
        if j = 0 then
          (* free input at weight i: the 2^(m-1) correction *)
          if i = m - 1 then sone else szero
        else if i = m - 1 then
          (* top edge at weight m-1+j: the 2^(n-1) correction when
             n > m (at j = n - m) *)
          if n > m && j = n - m then sone else szero
        else Cellnet.signal cells.(j - 1).(i + 1) "sum"
      in
      let c_sig =
        if j = 0 then
          (* free input at weight i: the 2^(n-1) correction when
             n <= m *)
          if n <= m && i = n - 1 then sone else szero
        else Cellnet.signal cells.(j - 1).(i) "carry"
      in
      let negate = cell_type ~m ~n ~i ~j = Type_II in
      cells.(j).(i) <-
        Cellnet.add_cell net ~pos:(i, j)
          (Cellnet.Adder { negate })
          [ ("a", a_sig); ("b", b_sig); ("s", s_sig); ("c", c_sig) ]
    done
  done;
  (* Product bits 0 .. n-1 come straight off column 0. *)
  for j = 0 to n - 1 do
    Cellnet.set_output net "p" j (Cellnet.signal cells.(j).(0) "sum")
  done;
  (* Carry-propagate row: bit n+k for k = 0 .. m-1. *)
  let cpa = Array.make m 0 in
  for k = 0 to m - 1 do
    let s_sig =
      if k = m - 1 then sone (* the 2^(m+n-1) correction *)
      else Cellnet.signal cells.(n - 1).(k + 1) "sum"
    in
    let c_sig = Cellnet.signal cells.(n - 1).(k) "carry" in
    let k_sig =
      if k = 0 then szero else Cellnet.signal cpa.(k - 1) "carry"
    in
    cpa.(k) <-
      Cellnet.add_cell net ~pos:(k, n) Cellnet.Cpa
        [ ("s", s_sig); ("c", c_sig); ("k", k_sig) ];
    if k < m - 1 then
      Cellnet.set_output net "p" (n + k) (Cellnet.signal cpa.(k) "sum")
  done;
  (* Bit m+n-1: the last cpa sum; the +2^(m+n-1) correction was
     injected as its free s input, and the carry out falls off the
     (m+n)-bit result. *)
  Cellnet.set_output net "p" (m + n - 1) (Cellnet.signal cpa.(m - 1) "sum");
  (match beta with
  | None -> Cellnet.combinational net
  | Some b -> Cellnet.pipeline net ~beta:b);
  { m; n; net; beta }

let latency t = Cellnet.latency t.net

let operand_stimulus t pairs : Cellnet.stimulus =
  let arr = Array.of_list pairs in
  fun ~bus ~bit ~cycle ->
    if cycle < 0 || Array.length arr = 0 then false
    else
      (* hold the last pair after the stream ends *)
      let a, b = arr.(min cycle (Array.length arr - 1)) in
      let v = if String.equal bus "a" then a else b in
      let width = if String.equal bus "a" then t.m else t.n in
      (v land ((1 lsl width) - 1)) land (1 lsl bit) <> 0

let multiply t a b =
  if not (in_range ~width:t.m a) then invalid_arg "Multiplier.multiply: a";
  if not (in_range ~width:t.n b) then invalid_arg "Multiplier.multiply: b";
  let stim = operand_stimulus t [ (a, b) ] in
  let raw = Cellnet.read_output t.net stim ~bus:"p" ~cycle:(latency t) in
  to_signed ~width:(t.m + t.n) raw

let multiply_stream t pairs =
  List.iter
    (fun (a, b) ->
      if not (in_range ~width:t.m a) then invalid_arg "multiply_stream: a";
      if not (in_range ~width:t.n b) then invalid_arg "multiply_stream: b")
    pairs;
  let stim = operand_stimulus t pairs in
  let lat = latency t in
  List.mapi
    (fun k _ ->
      to_signed ~width:(t.m + t.n)
        (Cellnet.read_output t.net stim ~bus:"p" ~cycle:(lat + k)))
    pairs

type stats = {
  adder_cells : int;
  registers : int;
  input_skew : int;
  output_deskew : int;
  internal : int;
  latency_cycles : int;
  max_comb_depth : int;
}

let stats t =
  let registers = Cellnet.register_count t.net in
  let input_skew = Cellnet.input_skew_registers t.net in
  let output_deskew = Cellnet.output_deskew_registers t.net in
  { adder_cells = Cellnet.adder_count t.net;
    registers;
    input_skew;
    output_deskew;
    internal = registers - input_skew - output_deskew;
    latency_cycles = latency t;
    max_comb_depth = Cellnet.max_comb_depth t.net }

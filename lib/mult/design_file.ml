open Rsg_layout
open Rsg_lang

let text =
  {|
;; Design file for a pipelined Baugh-Wooley array multiplier
;; (after Appendix B of the thesis).  All cell names and interface
;; numbers come from the parameter file; the array architecture below
;; is pure connectivity.

;; --- cell personalisation -------------------------------------------

(macro mcell (xsize ysize xloc yloc)
  (locals c foo)
  (mk_instance c corecell)
  (cond ((= yloc (+ ysize 1)) (connect c (mk_instance foo typecell1) t1inum))
        ((= xloc xsize)
         (cond ((= yloc ysize) (connect c (mk_instance foo typecell1) t1inum))
               (true (connect c (mk_instance foo typecell2) t2inum))))
        (true
         (cond ((= yloc ysize) (connect c (mk_instance foo typecell2) t2inum))
               (true (connect c (mk_instance foo typecell1) t1inum)))))
  (cond ((= (mod xloc 2) 0) (connect c (mk_instance foo clockcell1) clk1inum))
        (true (connect c (mk_instance foo clockcell2) clk2inum)))
  (cond ((= yloc ysize) (connect c (mk_instance foo carcell2) car2inum))
        ((= yloc (+ ysize 1))
         (cond ((= xloc xsize) (connect c (mk_instance foo carcell1) car1inum))
               (true (connect c (mk_instance foo carcell2) car2inum))))
        (true (connect c (mk_instance foo carcell1) car1inum))))

;; --- the array -------------------------------------------------------

(macro mrow (xsize ysize yloc)
  (locals r.)
  (assign r.1 (subcell (mcell xsize ysize 1 yloc) c))
  (do (i 2 (+ i 1) (> i xsize))
    (assign r.i (subcell (mcell xsize ysize i yloc) c))
    (connect r.(- i 1) r.i hinum)))

(macro marray (xsize ysize)
  (locals rows. bottomleft bottomright topleft)
  (assign rows.1 (mrow xsize ysize 1))
  (do (j 2 (+ j 1) (> j (+ ysize 1)))
    (assign rows.j (mrow xsize ysize j))
    (connect (subcell rows.(- j 1) r.1) (subcell rows.j r.1) vinum))
  (assign bottomleft (subcell rows.1 r.1))
  (assign bottomright (subcell rows.1 r.xsize))
  (assign topleft (subcell rows.(+ ysize 1) r.1)))

;; --- peripheral register stacks -------------------------------------

(macro mtopregs (xsize)
  (locals cols. ref)
  (assign cols.1 (array topregcell 1 topregvinum))
  (assign ref (subcell cols.1 c.1))
  (do (x 2 (+ x 1) (> x xsize))
    (assign cols.x (array topregcell x topregvinum))
    (connect (subcell cols.(- x 1) c.1) (subcell cols.x c.1) topreghinum))
  (mk_cell topregisters ref))

(macro mbottomregs (xsize)
  (locals cols. ref)
  (assign cols.1 (array bottomregcell xsize bottomregvinum))
  (assign ref (subcell cols.1 c.1))
  (do (x 2 (+ x 1) (> x xsize))
    (assign cols.x (array bottomregcell (- (+ xsize 1) x) bottomregvinum))
    (connect (subcell cols.(- x 1) c.1) (subcell cols.x c.1) bottomreghinum))
  (mk_cell bottomregisters ref))

(defun fmin (x y) (locals) (cond ((> x y) y) (true x)))

(defun assdirection (rarray row length regnum)
  (locals ins outs bi foo doublereg singlereg)
  (assign ins (* row 2))
  (assign outs (- regnum ins))
  (assign bi (fmin ins outs))
  (cond ((> ins outs)
         (prog (assign doublereg leftdir) (assign singlereg sleftdir)))
        (true
         (prog (assign doublereg rightdir) (assign singlereg srightdir))))
  (do (k 1 (+ k 1) (> k bi))
    (connect (mk_instance foo bothdir) (subcell rarray c.k) rtoregsinum))
  (connect (mk_instance foo singlereg) (subcell rarray c.(+ bi 1)) rtoregsinum)
  (do (k (+ bi 2) (+ k 1) (> k length))
    (connect (mk_instance foo doublereg) (subcell rarray c.k) rtoregsinum)))

(macro mrightregs (ysize)
  (locals rows. ref regnum length)
  (assign regnum (+ (* 3 ysize) 1))
  (assign length (+ (// regnum 2) 1))
  (assign rows.1 (array rightregcell length rightreghinum))
  (assdirection rows.1 1 length regnum)
  (assign ref (subcell rows.1 c.1))
  (do (r 2 (+ r 1) (> r ysize))
    (assign rows.r (array rightregcell length rightreghinum))
    (assdirection rows.r r length regnum)
    (connect (subcell rows.(- r 1) c.1) (subcell rows.r c.1) rightregvinum))
  (mk_cell rightregisters ref))

;; --- assembly through inherited interfaces --------------------------

(macro mall (xsize ysize)
  (locals arr tregs bregs rregs tri arrayi bri rri)
  (assign arr (marray xsize ysize))
  (mk_cell mularrayname (subcell arr bottomleft))
  (assign tregs (mtopregs xsize))
  (assign bregs (mbottomregs xsize))
  (assign rregs (mrightregs ysize))
  (declare_interface topregistername arrayname 1
    (subcell tregs ref) (subcell arr topleft) celltotopreginum)
  (declare_interface arrayname bottomregistername 1
    (subcell arr bottomleft) (subcell bregs ref) celltobottomreginum)
  (declare_interface arrayname rightregistername 1
    (subcell arr bottomright) (subcell rregs ref) celltorightreginum)
  (mk_instance arrayi arrayname)
  (connect (mk_instance tri topregistername) arrayi 1)
  (connect (mk_instance bri bottomregistername) arrayi 1)
  (connect (mk_instance rri rightregistername) arrayi 1)
  (mk_cell "thewholething" arrayi))

(mall xsize ysize)
|}

let generate ?sample ~xsize ~ysize () =
  let sample =
    match sample with Some s -> s | None -> fst (Sample_lib.build ())
  in
  let st = Interp.of_sample sample in
  Interp.load_params st (Param.parse (Sample_lib.param_file ~xsize ~ysize));
  ignore (Interp.run_string st text);
  (* mall is a macro, so the program's value is its environment; the
     generated layout is the last mk_cell result. *)
  match Interp.last_created st with
  | Some c -> (st, c)
  | None -> failwith "Design_file.generate: design file created no cell"

type phases = {
  t_read_sample : float;
  t_execute : float;
  t_write : float;
  cif_bytes : int;
}

let timed_generate ~xsize ~ysize =
  let t0 = Unix.gettimeofday () in
  let sample, _ = Sample_lib.build () in
  let t1 = Unix.gettimeofday () in
  let _, cell = generate ~sample ~xsize ~ysize () in
  let t2 = Unix.gettimeofday () in
  let cif = Cif.to_string cell in
  let t3 = Unix.gettimeofday () in
  ( { t_read_sample = t1 -. t0;
      t_execute = t2 -. t1;
      t_write = t3 -. t2;
      cif_bytes = String.length cif },
    cell )

(** Leiserson-Rose-Saxe retiming (the thesis's reference [18]).

    Chapter 5 pipelines the multiplier "using retiming
    transformations"; the staged pipelining in {!Cellnet} is the
    acyclic special case.  This module implements the general
    algorithm on synchronous circuit graphs, cycles included:

    - a {e retiming} is an integer lag [r v] per vertex; it moves
      registers so edge [e = (u, v)] ends up with
      [wr e = w e + r v - r u] registers, which must stay >= 0;
    - the circuit can be clocked at period [c] iff a retiming exists
      making every register-free path's total propagation delay at
      most [c];
    - feasibility for a given [c] reduces to difference constraints
      over the W and D matrices (all-pairs minimum register counts
      and the corresponding critical delays), solved here with the
      same Bellman-Ford relaxation style as the compactor;
    - the minimum period is found by searching the candidate values
      in the D matrix.

    The classic three-tap correlator from the original paper is used
    as a test vector. *)

type graph = {
  n : int;                          (** vertices 0 .. n-1 *)
  delay : int array;                (** propagation delay per vertex *)
  edges : (int * int * int) list;   (** (from, to, registers) *)
}

exception Bad_graph of string

val validate : graph -> unit
(** Checks dimensions, non-negative delays/weights, and that every
    cycle carries at least one register (otherwise the circuit has no
    legal clock).  Raises {!Bad_graph}. *)

val clock_period : graph -> int
(** Longest register-free combinational path (the period the circuit
    runs at {e without} retiming). *)

val retime_for : graph -> period:int -> int array option
(** A legal retiming achieving the period, or [None] if infeasible. *)

val apply : graph -> int array -> graph
(** The retimed graph ([wr e = w e + r v - r u]); raises {!Bad_graph}
    if the retiming is illegal. *)

val min_period : graph -> int * int array
(** The optimal period and a retiming achieving it. *)

val total_registers : graph -> int

(** The multiplier design file (Appendix B) and its execution.

    The design file is the procedural half of the multiplier: a set of
    macros that personalise the basic cell ([mcell]), tile it into the
    carry-save + carry-propagate array ([mrow], [marray]), build the
    three peripheral register stacks ([mtopregs], [mbottomregs],
    [mrightregs] with [assdirection]), and assemble everything through
    inherited interfaces ([mall]).  It is parameterised entirely by
    the parameter file ({!Sample_lib.param_file}), which also binds
    the design file's cell variables to the sample layout's cell names
    — running the identical design file against a different sample
    would retarget the multiplier to another implementation.

    Experiment E17 checks that interpreting this file reproduces the
    native generator's layout ({!Layout_gen.generate}) exactly. *)

open Rsg_layout
open Rsg_core

val text : string
(** The design file source. *)

val generate :
  ?sample:Sample.t -> xsize:int -> ysize:int -> unit ->
  Rsg_lang.Interp.state * Cell.t
(** Run {!text} with the Appendix C parameter file under a fresh
    interpreter; returns the interpreter state and the generated
    multiplier cell ("thewholething"). *)

type phases = {
  t_read_sample : float;   (** building + extracting the sample *)
  t_execute : float;       (** parsing + executing design and params *)
  t_write : float;         (** writing the CIF output *)
  cif_bytes : int;
}

val timed_generate : xsize:int -> ysize:int -> phases * Cell.t
(** The three-phase timing breakdown of section 4.5 ("roughly three
    equal parts: reading in the source ..., parsing and executing ...,
    and writing the output file"). *)

type t = Atom of string | Str of string | List of t list

type located = { sx : desc; line : int }
and desc = Latom of string | Lstr of string | Llist of located list

exception Parse_error of { line : int; message : string }

type token = Lparen | Rparen | Tatom of string | Tstr of string

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let i = ref 0 in
  let fail message = raise (Parse_error { line = !line; message }) in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then begin
      toks := (Lparen, !line) :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := (Rparen, !line) :: !toks;
      incr i
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let start_line = !line in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        let d = src.[!i] in
        if d = '"' then closed := true
        else begin
          if d = '\n' then incr line;
          Buffer.add_char buf d
        end;
        incr i
      done;
      if not !closed then fail "unterminated string literal";
      toks := (Tstr (Buffer.contents buf), start_line) :: !toks
    end
    else begin
      let start = !i in
      while
        !i < n
        && (match src.[!i] with
           | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
           | _ -> true)
      do
        incr i
      done;
      toks := (Tatom (String.sub src start (!i - start)), !line) :: !toks
    end
  done;
  List.rev !toks

let parse_string_located src =
  let toks = ref (tokenize src) in
  let fail line message = raise (Parse_error { line; message }) in
  let rec parse_one () =
    match !toks with
    | [] -> fail 0 "unexpected end of input"
    | (tok, line) :: rest -> (
      toks := rest;
      match tok with
      | Tatom a -> { sx = Latom a; line }
      | Tstr s -> { sx = Lstr s; line }
      | Lparen ->
        let items = ref [] in
        let rec loop () =
          match !toks with
          | [] -> fail line "unclosed parenthesis"
          | (Rparen, _) :: rest ->
            toks := rest
          | _ ->
            items := parse_one () :: !items;
            loop ()
        in
        loop ();
        { sx = Llist (List.rev !items); line }
      | Rparen -> fail line "unexpected )")
  in
  let forms = ref [] in
  while !toks <> [] do
    forms := parse_one () :: !forms
  done;
  List.rev !forms

let rec strip l =
  match l.sx with
  | Latom a -> Atom a
  | Lstr s -> Str s
  | Llist items -> List (List.map strip items)

let parse_string src = List.map strip (parse_string_located src)

let rec pp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | Str s -> Format.fprintf ppf "%S" s
  | List items ->
    Format.fprintf ppf "(@[<hov>%a@])"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      items

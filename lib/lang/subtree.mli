(** Transitive content digests of design-file procedures.

    The geometry side of incremental regeneration content-addresses
    each celltype's flattened subtree
    ({!Rsg_layout.Flatten.subtree_digest}); this is the source-side
    mirror: every procedure of a parsed program gets an MD5 digest of
    its own definition — formals, locals, macro-ness, body with
    source locations stripped — in which each call to another defined
    procedure embeds the {e callee's digest}.  Editing one procedure
    therefore changes exactly its own digest and those of its
    transitive callers, so {!dirty} names the procedures (and hence
    the celltypes they build) whose cached artifacts an edit
    invalidates, before anything is re-evaluated.

    Procedure names stay out of their own digests (a rename dirties
    nothing), with one exception: a call site inside a cycle embeds an
    opaque [rec:name] token, since the callee's digest is still being
    computed — renaming a recursive procedure does dirty it.  Calls to
    undefined names (interpreter builtins) hash by name. *)

type t

val of_program : Ast.toplevel list -> t
(** Digest every procedure of the program.  When a name is defined
    more than once the later definition wins, matching the
    interpreter's environment. *)

val digest : t -> string -> string option
(** Hex digest of the named procedure, if defined. *)

val digests : t -> (string * string) list
(** All (name, hex digest) pairs, sorted by name. *)

val dirty : before:t -> after:t -> string list
(** Procedures of [after] that are new or whose digest differs from
    [before] — the edit's invalidation set, sorted by name.
    Procedures deleted by the edit are not listed (they have no
    artifacts to recompute). *)

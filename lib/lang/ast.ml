type var = Simple of string | Indexed of string * expr list

and expr =
  | Int of int
  | Str of string
  | Bool of bool
  | Var of var
  | Call of string * expr list
  | Cond of (expr * expr list) list
  | Do of do_loop
  | Assign of var * expr
  | Prog of expr list
  | Print of expr
  | Read
  | Mk_instance of var * expr
  | Connect of expr * expr * expr
  | Subcell of expr * var
  | Mk_cell of expr * expr
  | Declare_interface of declare_interface
  | At of int * expr

and do_loop = {
  loop_var : string;
  init : expr;
  next : expr;
  until : expr;
  body : expr list;
}

and declare_interface = {
  di_cell1 : expr;
  di_cell2 : expr;
  di_new_index : expr;
  di_inst1 : expr;
  di_inst2 : expr;
  di_old_index : expr;
}

type local_decl = Scalar_local of string | Array_local of string

type proc = {
  proc_name : string;
  formals : string list;
  locals : local_decl list;
  body : expr list;
  is_macro : bool;
  proc_line : int;
}

type toplevel = Defproc of proc | Expr of expr

let var_name = function Simple n -> n | Indexed (n, _) -> n

let rec strip = function At (_, e) -> strip e | e -> e

let line_of = function At (line, _) -> Some line | _ -> None

let rec strip_deep e =
  match e with
  | At (_, inner) -> strip_deep inner
  | Int _ | Str _ | Bool _ | Read -> e
  | Var v -> Var (strip_var v)
  | Call (f, args) -> Call (f, List.map strip_deep args)
  | Cond clauses ->
    Cond
      (List.map
         (fun (t, body) -> (strip_deep t, List.map strip_deep body))
         clauses)
  | Do d ->
    Do
      { d with
        init = strip_deep d.init;
        next = strip_deep d.next;
        until = strip_deep d.until;
        body = List.map strip_deep d.body }
  | Assign (v, rhs) -> Assign (strip_var v, strip_deep rhs)
  | Prog body -> Prog (List.map strip_deep body)
  | Print e -> Print (strip_deep e)
  | Mk_instance (v, e) -> Mk_instance (strip_var v, strip_deep e)
  | Connect (a, b, i) -> Connect (strip_deep a, strip_deep b, strip_deep i)
  | Subcell (e, v) -> Subcell (strip_deep e, strip_var v)
  | Mk_cell (n, r) -> Mk_cell (strip_deep n, strip_deep r)
  | Declare_interface d ->
    Declare_interface
      { di_cell1 = strip_deep d.di_cell1;
        di_cell2 = strip_deep d.di_cell2;
        di_new_index = strip_deep d.di_new_index;
        di_inst1 = strip_deep d.di_inst1;
        di_inst2 = strip_deep d.di_inst2;
        di_old_index = strip_deep d.di_old_index }

and strip_var = function
  | Simple n -> Simple n
  | Indexed (n, idx) -> Indexed (n, List.map strip_deep idx)

let rec pp_var ppf = function
  | Simple n -> Format.pp_print_string ppf n
  | Indexed (n, idx) ->
    Format.pp_print_string ppf n;
    List.iter (fun e -> Format.fprintf ppf ".%a" pp_expr e) idx

and pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b
  | Var v -> pp_var ppf v
  | Call (f, args) ->
    Format.fprintf ppf "(@[<hov>%s%a@])" f
      (fun ppf -> List.iter (Format.fprintf ppf "@ %a" pp_expr))
      args
  | Cond clauses ->
    Format.fprintf ppf "(cond";
    List.iter
      (fun (test, body) ->
        Format.fprintf ppf "@ (%a" pp_expr test;
        List.iter (Format.fprintf ppf "@ %a" pp_expr) body;
        Format.fprintf ppf ")")
      clauses;
    Format.fprintf ppf ")"
  | Do d ->
    Format.fprintf ppf "(do (%s %a %a %a) ...)" d.loop_var pp_expr d.init
      pp_expr d.next pp_expr d.until
  | Assign (v, e) -> Format.fprintf ppf "(assign %a %a)" pp_var v pp_expr e
  | Prog body ->
    Format.fprintf ppf "(prog";
    List.iter (Format.fprintf ppf "@ %a" pp_expr) body;
    Format.fprintf ppf ")"
  | Print e -> Format.fprintf ppf "(print %a)" pp_expr e
  | Read -> Format.pp_print_string ppf "(read)"
  | Mk_instance (v, e) ->
    Format.fprintf ppf "(mk_instance %a %a)" pp_var v pp_expr e
  | Connect (a, b, i) ->
    Format.fprintf ppf "(connect %a %a %a)" pp_expr a pp_expr b pp_expr i
  | Subcell (e, v) -> Format.fprintf ppf "(subcell %a %a)" pp_expr e pp_var v
  | Mk_cell (n, r) -> Format.fprintf ppf "(mk_cell %a %a)" pp_expr n pp_expr r
  | Declare_interface d ->
    Format.fprintf ppf "(declare_interface %a %a %a %a %a %a)" pp_expr
      d.di_cell1 pp_expr d.di_cell2 pp_expr d.di_new_index pp_expr d.di_inst1
      pp_expr d.di_inst2 pp_expr d.di_old_index
  | At (_, e) -> pp_expr ppf e

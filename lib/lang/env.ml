let create_global () =
  Value.{ frame = Hashtbl.create 64; parent = None; env_name = "(global)" }

let create_frame ?(size = 8) ~name parent =
  Value.{ frame = Hashtbl.create (max 1 size); parent = Some parent; env_name = name }

let rec find (env : Value.env) name =
  match Hashtbl.find_opt env.Value.frame name with
  | Some v -> Some v
  | None -> (
    match env.Value.parent with None -> None | Some p -> find p name)

let find_here (env : Value.env) name = Hashtbl.find_opt env.Value.frame name

let define (env : Value.env) name v = Hashtbl.replace env.Value.frame name v

let rec set (env : Value.env) name v =
  if Hashtbl.mem env.Value.frame name then Hashtbl.replace env.Value.frame name v
  else
    match env.Value.parent with
    | Some p -> set p name v
    | None -> Hashtbl.replace env.Value.frame name v

let bindings (env : Value.env) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.Value.frame []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

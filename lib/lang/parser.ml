exception Syntax_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

let is_int s = match int_of_string_opt s with Some _ -> true | None -> false

(* An atom names an indexed variable when it contains a dot and is not
   an integer (integers never contain dots in this language, but keep
   the guard for safety). *)
let has_dot s = String.contains s '.'

(* Split "a.i.j" -> ("a", ["i"; "j"], trailing) where trailing is true
   for "a." / "a.i." forms that take further indices from the token
   stream. *)
let split_dotted s =
  match String.split_on_char '.' s with
  | [] | [ _ ] -> fail "split_dotted: no dot in %s" s
  | base :: rest ->
    if base = "" then fail "variable name missing before dot in %S" s;
    let trailing = List.exists (( = ) "") rest in
    if trailing && List.filter (( = ) "") rest <> [ "" ] then
      fail "malformed indexed variable %S" s;
    let segs = List.filter (( <> ) "") rest in
    (base, segs, trailing)

let seg_expr s =
  match int_of_string_opt s with
  | Some n -> Ast.Int n
  | None -> Ast.Var (Ast.Simple s)

(* ------------------------------------------------------------------ *)
(* Expression conversion with dotted-variable reassembly.              *)

let rec exprs_of_sexps sexps : Ast.expr list =
  match sexps with
  | [] -> []
  | Sexp.Atom a :: rest when has_dot a && not (is_int a) ->
    let base, segs, trailing = split_dotted a in
    let indices = List.map seg_expr segs in
    let indices, rest =
      if trailing then
        match rest with
        | idx :: rest' -> (indices @ [ expr_of_sexp idx ], rest')
        | [] -> fail "indexed variable %s. missing its index" base
      else (indices, rest)
    in
    (* a following atom that starts with '.' continues the index list:
       m.(i).(j) lexes as "m." (i) "." (j). *)
    let rec continue indices rest =
      match rest with
      | Sexp.Atom a' :: rest' when String.length a' > 0 && a'.[0] = '.' ->
        let segs' = List.filter (( <> ) "") (String.split_on_char '.' a') in
        let indices = indices @ List.map seg_expr segs' in
        if a'.[String.length a' - 1] = '.' then
          match rest' with
          | idx :: rest'' ->
            continue (indices @ [ expr_of_sexp idx ]) rest''
          | [] -> fail "indexed variable missing its index"
        else continue indices rest'
      | _ -> (indices, rest)
    in
    let indices, rest = continue indices rest in
    if List.length indices > 2 then fail "more than two indices on %s" base;
    Ast.Var (Ast.Indexed (base, indices)) :: exprs_of_sexps rest
  | s :: rest -> expr_of_sexp s :: exprs_of_sexps rest

and expr_of_sexp (s : Sexp.t) : Ast.expr =
  match s with
  | Sexp.Str str -> Ast.Str str
  | Sexp.Atom a -> (
    match int_of_string_opt a with
    | Some n -> Ast.Int n
    | None -> (
      match a with
      | "true" -> Ast.Bool true
      | "false" -> Ast.Bool false
      | _ ->
        if has_dot a then
          match exprs_of_sexps [ s ] with
          | [ e ] -> e
          | _ -> fail "bad dotted atom %S" a
        else Ast.Var (Ast.Simple a)))
  | Sexp.List [] -> fail "empty list is not an expression"
  | Sexp.List (Sexp.Atom head :: args) -> special_or_call head args
  | Sexp.List _ -> fail "expression list must start with an operator name"

and var_of_expr = function
  | Ast.Var v -> v
  | e -> fail "expected a variable, got %a" Ast.pp_expr e

and special_or_call head args =
  match head with
  | "cond" ->
    let clause = function
      | Sexp.List (test :: body) ->
        (expr_of_sexp test, exprs_of_sexps body)
      | _ -> fail "cond clause must be a (test body...) list"
    in
    Ast.Cond (List.map clause args)
  | "do" -> (
    match args with
    | Sexp.List header :: body -> (
      match exprs_of_sexps header with
      | [ Ast.Var (Ast.Simple loop_var); init; next; until ] ->
        Ast.Do { loop_var; init; next; until; body = exprs_of_sexps body }
      | _ -> fail "do header must be (var init next exit)")
    | _ -> fail "do requires a (var init next exit) header")
  | "assign" | "setq" -> (
    match exprs_of_sexps args with
    | [ target; value ] -> Ast.Assign (var_of_expr target, value)
    | _ -> fail "%s takes a variable and a value" head)
  | "prog" -> Ast.Prog (exprs_of_sexps args)
  | "print" -> (
    match exprs_of_sexps args with
    | [ e ] -> Ast.Print e
    | _ -> fail "print takes one argument")
  | "read" ->
    if args <> [] then fail "read takes no arguments";
    Ast.Read
  | "mk_instance" | "mkinstance" -> (
    match exprs_of_sexps args with
    | [ target; cell ] -> Ast.Mk_instance (var_of_expr target, cell)
    | _ -> fail "mk_instance takes a variable and a cell")
  | "connect" -> (
    match exprs_of_sexps args with
    | [ a; b; index ] -> Ast.Connect (a, b, index)
    | _ -> fail "connect takes two nodes and an interface number")
  | "subcell" -> (
    match exprs_of_sexps args with
    | [ env; binding ] -> Ast.Subcell (env, var_of_expr binding)
    | _ -> fail "subcell takes an environment and a variable")
  | "mk_cell" | "mkcell" -> (
    match exprs_of_sexps args with
    | [ name; root ] -> Ast.Mk_cell (name, root)
    | _ -> fail "mk_cell takes a name and a root node")
  | "declare_interface" | "declareinterface" -> (
    match exprs_of_sexps args with
    | [ c1; c2; newi; i1; i2; oldi ] ->
      Ast.Declare_interface
        { di_cell1 = c1; di_cell2 = c2; di_new_index = newi; di_inst1 = i1;
          di_inst2 = i2; di_old_index = oldi }
    | _ -> fail "declare_interface takes six arguments")
  | "defun" | "macro" -> fail "%s only allowed at top level" head
  | _ -> Ast.Call (head, exprs_of_sexps args)

(* ------------------------------------------------------------------ *)
(* Top-level forms                                                     *)

let locals_of_sexps sexps =
  List.map
    (function
      | Sexp.Atom a ->
        if String.length a > 1 && a.[String.length a - 1] = '.' then
          Ast.Array_local (String.sub a 0 (String.length a - 1))
        else Ast.Scalar_local a
      | s -> fail "bad local declaration %a" Sexp.pp s)
    sexps

let formals_of_sexp = function
  | Sexp.List items ->
    List.map
      (function
        | Sexp.Atom a -> a
        | s -> fail "bad formal parameter %a" Sexp.pp s)
      items
  | s -> fail "formals must be a list, got %a" Sexp.pp s

let proc_of_sexps ~is_macro = function
  | Sexp.Atom name :: formals :: rest ->
    if is_macro && not (String.length name > 0 && name.[0] = 'm') then
      fail "macro names must begin with 'm': %s" name;
    if (not is_macro) && String.length name > 0 && name.[0] = 'm' then
      fail "function names must not begin with 'm': %s" name;
    let formals = formals_of_sexp formals in
    let locals, body =
      match rest with
      | Sexp.List (Sexp.Atom ("locals" | "local") :: decls) :: body ->
        (locals_of_sexps decls, body)
      | body -> ([], body)
    in
    { Ast.proc_name = name; formals; locals;
      body = exprs_of_sexps body; is_macro }
  | _ -> fail "malformed procedure definition"

let toplevel_of_sexp = function
  | Sexp.List (Sexp.Atom "defun" :: rest) ->
    Ast.Defproc (proc_of_sexps ~is_macro:false rest)
  | Sexp.List (Sexp.Atom "macro" :: rest) ->
    Ast.Defproc (proc_of_sexps ~is_macro:true rest)
  | s -> Ast.Expr (expr_of_sexp s)

let program_of_sexps sexps = List.map toplevel_of_sexp sexps

let parse_program src = program_of_sexps (Sexp.parse_string src)

let parse_expr src =
  match Sexp.parse_string src with
  | [ s ] -> expr_of_sexp s
  | _ -> fail "expected exactly one expression"

exception Syntax_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

(* Prefix syntax errors with the source line when one is known (plain
   [Sexp.t] input arrives with line 0). *)
let failat line fmt =
  Format.kasprintf
    (fun s ->
      raise
        (Syntax_error (if line > 0 then Printf.sprintf "line %d: %s" line s else s)))
    fmt

let is_int s = match int_of_string_opt s with Some _ -> true | None -> false

(* An atom names an indexed variable when it contains a dot and is not
   an integer (integers never contain dots in this language, but keep
   the guard for safety). *)
let has_dot s = String.contains s '.'

(* Split "a.i.j" -> ("a", ["i"; "j"], trailing) where trailing is true
   for "a." / "a.i." forms that take further indices from the token
   stream. *)
let split_dotted line s =
  match String.split_on_char '.' s with
  | [] | [ _ ] -> failat line "split_dotted: no dot in %s" s
  | base :: rest ->
    if base = "" then failat line "variable name missing before dot in %S" s;
    let trailing = List.exists (( = ) "") rest in
    if trailing && List.filter (( = ) "") rest <> [ "" ] then
      failat line "malformed indexed variable %S" s;
    let segs = List.filter (( <> ) "") rest in
    (base, segs, trailing)

let seg_expr s =
  match int_of_string_opt s with
  | Some n -> Ast.Int n
  | None -> Ast.Var (Ast.Simple s)

(* List-form expressions carry their opening line as an [Ast.At]
   wrapper; atoms stay bare (their enclosing form locates them). *)
let at line e = if line > 0 then Ast.At (line, e) else e

(* ------------------------------------------------------------------ *)
(* Expression conversion with dotted-variable reassembly.              *)

let rec exprs_of_located (sexps : Sexp.located list) : Ast.expr list =
  match sexps with
  | { Sexp.sx = Sexp.Latom a; line } :: rest when has_dot a && not (is_int a)
    ->
    let base, segs, trailing = split_dotted line a in
    let indices = List.map seg_expr segs in
    let indices, rest =
      if trailing then
        match rest with
        | idx :: rest' -> (indices @ [ expr_of_located idx ], rest')
        | [] -> failat line "indexed variable %s. missing its index" base
      else (indices, rest)
    in
    (* a following atom that starts with '.' continues the index list:
       m.(i).(j) lexes as "m." (i) "." (j). *)
    let rec continue indices rest =
      match rest with
      | { Sexp.sx = Sexp.Latom a'; line = line' } :: rest'
        when String.length a' > 0 && a'.[0] = '.' ->
        let segs' = List.filter (( <> ) "") (String.split_on_char '.' a') in
        let indices = indices @ List.map seg_expr segs' in
        if a'.[String.length a' - 1] = '.' then
          match rest' with
          | idx :: rest'' ->
            continue (indices @ [ expr_of_located idx ]) rest''
          | [] -> failat line' "indexed variable missing its index"
        else continue indices rest'
      | _ -> (indices, rest)
    in
    let indices, rest = continue indices rest in
    if List.length indices > 2 then
      failat line "more than two indices on %s" base;
    Ast.Var (Ast.Indexed (base, indices)) :: exprs_of_located rest
  | s :: rest -> expr_of_located s :: exprs_of_located rest
  | [] -> []

and expr_of_located (s : Sexp.located) : Ast.expr =
  let line = s.Sexp.line in
  match s.Sexp.sx with
  | Sexp.Lstr str -> Ast.Str str
  | Sexp.Latom a -> (
    match int_of_string_opt a with
    | Some n -> Ast.Int n
    | None -> (
      match a with
      | "true" -> Ast.Bool true
      | "false" -> Ast.Bool false
      | _ ->
        if has_dot a then
          match exprs_of_located [ s ] with
          | [ e ] -> e
          | _ -> failat line "bad dotted atom %S" a
        else Ast.Var (Ast.Simple a)))
  | Sexp.Llist [] -> failat line "empty list is not an expression"
  | Sexp.Llist ({ Sexp.sx = Sexp.Latom head; _ } :: args) ->
    at line (special_or_call line head args)
  | Sexp.Llist _ ->
    failat line "expression list must start with an operator name"

and var_of_expr line = function
  | Ast.Var v -> v
  | e -> failat line "expected a variable, got %a" Ast.pp_expr e

and special_or_call line head args =
  match head with
  | "cond" ->
    let clause (c : Sexp.located) =
      match c.Sexp.sx with
      | Sexp.Llist (test :: body) ->
        (expr_of_located test, exprs_of_located body)
      | _ -> failat c.Sexp.line "cond clause must be a (test body...) list"
    in
    Ast.Cond (List.map clause args)
  | "do" -> (
    match args with
    | { Sexp.sx = Sexp.Llist header; _ } :: body -> (
      match exprs_of_located header with
      | [ Ast.Var (Ast.Simple loop_var); init; next; until ] ->
        Ast.Do { loop_var; init; next; until; body = exprs_of_located body }
      | _ -> failat line "do header must be (var init next exit)")
    | _ -> failat line "do requires a (var init next exit) header")
  | "assign" | "setq" -> (
    match exprs_of_located args with
    | [ target; value ] -> Ast.Assign (var_of_expr line target, value)
    | _ -> failat line "%s takes a variable and a value" head)
  | "prog" -> Ast.Prog (exprs_of_located args)
  | "print" -> (
    match exprs_of_located args with
    | [ e ] -> Ast.Print e
    | _ -> failat line "print takes one argument")
  | "read" ->
    if args <> [] then failat line "read takes no arguments";
    Ast.Read
  | "mk_instance" | "mkinstance" -> (
    match exprs_of_located args with
    | [ target; cell ] -> Ast.Mk_instance (var_of_expr line target, cell)
    | _ -> failat line "mk_instance takes a variable and a cell")
  | "connect" -> (
    match exprs_of_located args with
    | [ a; b; index ] -> Ast.Connect (a, b, index)
    | _ -> failat line "connect takes two nodes and an interface number")
  | "subcell" -> (
    match exprs_of_located args with
    | [ env; binding ] -> Ast.Subcell (env, var_of_expr line binding)
    | _ -> failat line "subcell takes an environment and a variable")
  | "mk_cell" | "mkcell" -> (
    match exprs_of_located args with
    | [ name; root ] -> Ast.Mk_cell (name, root)
    | _ -> failat line "mk_cell takes a name and a root node")
  | "declare_interface" | "declareinterface" -> (
    match exprs_of_located args with
    | [ c1; c2; newi; i1; i2; oldi ] ->
      Ast.Declare_interface
        { di_cell1 = c1; di_cell2 = c2; di_new_index = newi; di_inst1 = i1;
          di_inst2 = i2; di_old_index = oldi }
    | _ -> failat line "declare_interface takes six arguments")
  | "defun" | "macro" -> failat line "%s only allowed at top level" head
  | _ -> Ast.Call (head, exprs_of_located args)

(* ------------------------------------------------------------------ *)
(* Top-level forms                                                     *)

let locals_of_located sexps =
  List.map
    (fun (s : Sexp.located) ->
      match s.Sexp.sx with
      | Sexp.Latom a ->
        if String.length a > 1 && a.[String.length a - 1] = '.' then
          Ast.Array_local (String.sub a 0 (String.length a - 1))
        else Ast.Scalar_local a
      | _ -> failat s.Sexp.line "bad local declaration %a" Sexp.pp (Sexp.strip s))
    sexps

let formals_of_located (s : Sexp.located) =
  match s.Sexp.sx with
  | Sexp.Llist items ->
    List.map
      (fun (it : Sexp.located) ->
        match it.Sexp.sx with
        | Sexp.Latom a -> a
        | _ ->
          failat it.Sexp.line "bad formal parameter %a" Sexp.pp
            (Sexp.strip it))
      items
  | _ ->
    failat s.Sexp.line "formals must be a list, got %a" Sexp.pp (Sexp.strip s)

let proc_of_located ~is_macro ~line = function
  | { Sexp.sx = Sexp.Latom name; _ } :: formals :: rest ->
    if is_macro && not (String.length name > 0 && name.[0] = 'm') then
      failat line "macro names must begin with 'm': %s" name;
    if (not is_macro) && String.length name > 0 && name.[0] = 'm' then
      failat line "function names must not begin with 'm': %s" name;
    let formals = formals_of_located formals in
    let locals, body =
      match rest with
      | { Sexp.sx =
            Sexp.Llist ({ Sexp.sx = Sexp.Latom ("locals" | "local"); _ } :: decls);
          _ }
        :: body ->
        (locals_of_located decls, body)
      | body -> ([], body)
    in
    { Ast.proc_name = name; formals; locals;
      body = exprs_of_located body; is_macro; proc_line = line }
  | _ -> failat line "malformed procedure definition"

let toplevel_of_located (s : Sexp.located) =
  match s.Sexp.sx with
  | Sexp.Llist ({ Sexp.sx = Sexp.Latom "defun"; _ } :: rest) ->
    Ast.Defproc (proc_of_located ~is_macro:false ~line:s.Sexp.line rest)
  | Sexp.Llist ({ Sexp.sx = Sexp.Latom "macro"; _ } :: rest) ->
    Ast.Defproc (proc_of_located ~is_macro:true ~line:s.Sexp.line rest)
  | _ -> Ast.Expr (expr_of_located s)

let program_of_located sexps = List.map toplevel_of_located sexps

(* Compatibility entry point for plain (lineless) s-expressions. *)
let rec locate_plain (s : Sexp.t) : Sexp.located =
  match s with
  | Sexp.Atom a -> { Sexp.sx = Sexp.Latom a; line = 0 }
  | Sexp.Str str -> { Sexp.sx = Sexp.Lstr str; line = 0 }
  | Sexp.List items -> { Sexp.sx = Sexp.Llist (List.map locate_plain items); line = 0 }

let program_of_sexps sexps = program_of_located (List.map locate_plain sexps)

let parse_program src = program_of_located (Sexp.parse_string_located src)

let parse_expr src =
  match Sexp.parse_string_located src with
  | [ s ] -> expr_of_located s
  | _ -> fail "expected exactly one expression"

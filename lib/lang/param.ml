type t = {
  directives : (string * string) list;
  bindings : (string * Value.t) list;
}

exception Param_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Param_error { line; message })) fmt

let parse_value line raw =
  let raw = String.trim raw in
  if raw = "" then fail line "empty value"
  else if raw.[0] = '"' then
    if String.length raw >= 2 && raw.[String.length raw - 1] = '"' then
      Value.Vstr (String.sub raw 1 (String.length raw - 2))
    else fail line "unterminated string value"
  else
    match int_of_string_opt raw with
    | Some n -> Value.Vint n
    | None -> (
      match raw with
      | "true" -> Value.Vbool true
      | "false" -> Value.Vbool false
      | _ -> Value.Vsym raw)

let parse src =
  let directives = ref [] and bindings = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let s = String.trim raw in
      if s = "" || s.[0] = ';' || s.[0] = '#' then ()
      else if s.[0] = '.' then
        match String.index_opt s ':' with
        | Some i ->
          let key = String.sub s 1 (i - 1) in
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          directives := (String.trim key, String.trim v) :: !directives
        | None -> fail line "directive missing ':'"
      else
        match String.index_opt s '=' with
        | Some i ->
          let key = String.trim (String.sub s 0 i) in
          if key = "" then fail line "binding missing a name";
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          bindings := (key, parse_value line v) :: !bindings
        | None -> fail line "expected name=value or .directive:value")
    lines;
  { directives = List.rev !directives; bindings = List.rev !bindings }

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let directive t key = List.assoc_opt key t.directives

let binding t key = List.assoc_opt key t.bindings

(** Environment frames.

    Frames are hash tables, as in the thesis (section 4.5), and are
    sized to the procedure's formal + local count at call time.  The
    chain is lexical-but-flat: every procedure frame's parent is the
    global frame (section 4.1 — a lookup tries the executing
    procedure's environment, then the global environment; dynamic
    scoping was considered and rejected). *)

val create_global : unit -> Value.env

val create_frame : ?size:int -> name:string -> Value.env -> Value.env
(** [create_frame ~name parent]. *)

val find : Value.env -> string -> Value.t option
(** Walk the frame chain. *)

val find_here : Value.env -> string -> Value.t option
(** This frame only. *)

val define : Value.env -> string -> Value.t -> unit
(** Bind in this frame (shadowing outer bindings). *)

val set : Value.env -> string -> Value.t -> unit
(** Assign in the innermost frame that already binds the name, else
    define in this frame. *)

val bindings : Value.env -> (string * Value.t) list
(** This frame's bindings, sorted by name. *)

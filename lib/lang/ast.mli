(** Abstract syntax of the design-file language (Appendix A).

    Two procedure classes exist (section 4.2): {e functions} return the
    value of their last statement; {e macros} — whose names must begin
    with [m] so the parser can tell call sites apart — return their
    whole evaluation environment, from which callers select bindings
    with [subcell]. *)

type var =
  | Simple of string
  | Indexed of string * expr list
      (** one or two index expressions: [l.i], [arr.i.j],
          [l.(- i 1)] *)

and expr =
  | Int of int
  | Str of string
  | Bool of bool
  | Var of var
  | Call of string * expr list
      (** user function/macro call or builtin primitive *)
  | Cond of (expr * expr list) list
  | Do of do_loop
  | Assign of var * expr                     (** [assign] / [setq] *)
  | Prog of expr list
  | Print of expr
  | Read
  | Mk_instance of var * expr                (** binds the new node *)
  | Connect of expr * expr * expr            (** node, node, index *)
  | Subcell of expr * var                    (** environment, binding *)
  | Mk_cell of expr * expr                   (** name, root node *)
  | Declare_interface of declare_interface
  | At of int * expr
      (** source-location wrapper: the expression started on this
          1-based line.  The parser wraps every list-form expression;
          the evaluator and printers are transparent to it. *)

and do_loop = {
  loop_var : string;
  init : expr;
  next : expr;
  until : expr;  (** loop while this is false *)
  body : expr list;
}

and declare_interface = {
  di_cell1 : expr;      (** macrocell C *)
  di_cell2 : expr;      (** macrocell D *)
  di_new_index : expr;  (** index for the inherited interface Icd *)
  di_inst1 : expr;      (** instance of subcell A placed within C *)
  di_inst2 : expr;      (** instance of subcell B placed within D *)
  di_old_index : expr;  (** index of the existing interface Iab *)
}

type local_decl =
  | Scalar_local of string
  | Array_local of string   (** declared with a trailing dot: [l.] *)

type proc = {
  proc_name : string;
  formals : string list;
  locals : local_decl list;
  body : expr list;
  is_macro : bool;
  proc_line : int;  (** line of the [defun]/[macro] form (0 = unknown) *)
}

type toplevel =
  | Defproc of proc
  | Expr of expr

val var_name : var -> string

val strip : expr -> expr
(** Peel any top-level {!At} wrappers (shallow). *)

val strip_deep : expr -> expr
(** Remove every {!At} wrapper recursively — for structural matching
    in tests and analyses that don't care about locations. *)

val line_of : expr -> int option
(** Source line of an {!At}-wrapped expression, if known. *)

val pp_expr : Format.formatter -> expr -> unit

val pp_var : Format.formatter -> var -> unit

(** Parameter files (section 4.1, Appendix C).

    A parameter file provides the size and functional specification of
    a particular generation run.  It contains

    - directives of the form [.key:value] (e.g. [.example_file:...],
      [.output_file:...]), and
    - bindings of the form [name=value], where the value is an integer
      ([vinum=2]), a quoted string ([mularrayname="array"]), or a bare
      symbol ([corecell=cell]) that will be resolved through the
      scoping rules at each use — this is how design-file variable
      names are personalised to the cell names of a sample layout.

    Lines starting with [;] or [#] and blank lines are ignored. *)

type t = {
  directives : (string * string) list;  (** in file order *)
  bindings : (string * Value.t) list;   (** in file order *)
}

exception Param_error of { line : int; message : string }

val parse : string -> t

val parse_file : string -> t

val directive : t -> string -> string option

val binding : t -> string -> Value.t option

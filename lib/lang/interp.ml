open Rsg_layout
open Rsg_core

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type state = {
  global : Value.env;
  procs : (string, Ast.proc) Hashtbl.t;
  cells : Db.t;
  table : Interface_table.t;
  mutable created : Cell.t list;
  out : Format.formatter;
  read_fn : unit -> int;
  mutable depth : int;  (** current procedure call depth *)
  file : string option;
  mutable cur_line : int;
}

let max_call_depth = 10_000

let create ?cells ?table ?(out = Format.std_formatter)
    ?(read_fn = fun () -> error "read: no input source in batch mode") ?file
    () =
  { global = Env.create_global ();
    procs = Hashtbl.create 32;
    cells = (match cells with Some db -> db | None -> Db.create ());
    table = (match table with Some t -> t | None -> Interface_table.create ());
    created = [];
    out;
    read_fn;
    depth = 0;
    file;
    cur_line = 0 }

let of_sample ?out ?file (s : Sample.t) =
  create ~cells:s.Sample.db ~table:s.Sample.table ?out ?file ()

let load_params st (p : Param.t) =
  List.iter (fun (name, v) -> Env.define st.global name v) p.Param.bindings

let define_global st name v = Env.define st.global name v

let array2_of_matrix m =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun r rowv ->
      Array.iteri
        (fun c b ->
          Hashtbl.replace tbl
            (Value.Idx2 (r + 1, c + 1))
            (Value.Vbool b))
        rowv)
    m;
  Value.Varray tbl

(* ------------------------------------------------------------------ *)
(* Variable resolution (Table 4.1)                                    *)

(* Lookup [name] in the environment chain, then the cell table.
   A value that is itself a symbol re-enters the search (bounded, to
   catch parameter-file cycles like a=b, b=a). *)
let rec resolve_name st env name depth =
  if depth > 32 then error "symbol resolution too deep at %s" name;
  match Env.find env name with
  | Some (Value.Vsym s) -> resolve_name st env s (depth + 1)
  | Some v -> v
  | None -> (
    match Db.find st.cells name with
    | Some c -> Value.Vcell c
    | None -> error "unbound variable %s" name)

let resolve_value st env v =
  match v with Value.Vsym s -> resolve_name st env s 0 | _ -> v

let resolve_cell st env v =
  match resolve_value st env v with
  | Value.Vcell c -> c
  | other -> error "expected a cell, got %s" (Value.type_name other)

let expect_int what = function
  | Value.Vint n -> n
  | other -> error "%s: expected an integer, got %s" what (Value.type_name other)

let expect_node what = function
  | Value.Vnode n -> n
  | other -> error "%s: expected a node, got %s" what (Value.type_name other)

let expect_env what = function
  | Value.Venv e -> e
  | other ->
    error "%s: expected an environment, got %s" what (Value.type_name other)

let expect_bool what = function
  | Value.Vbool b -> b
  | Value.Vint n -> n <> 0
  | other -> error "%s: expected a boolean, got %s" what (Value.type_name other)

let expect_name what = function
  | Value.Vstr s | Value.Vsym s -> s
  | other -> error "%s: expected a name, got %s" what (Value.type_name other)

(* ------------------------------------------------------------------ *)
(* Builtin functions                                                  *)

let arith name f neutral args =
  match args with
  | [] -> error "%s needs arguments" name
  | [ x ] -> Value.Vint (f neutral (expect_int name x))
  | first :: rest ->
    Value.Vint
      (List.fold_left
         (fun acc v -> f acc (expect_int name v))
         (expect_int name first) rest)

let compare_builtin name op args =
  match args with
  | [ a; b ] -> Value.Vbool (op (expect_int name a) (expect_int name b))
  | _ -> error "%s takes two arguments" name

let builtin st name args =
  match name with
  | "+" -> Some (arith "+" ( + ) 0 args)
  | "-" -> (
    match args with
    | [ x ] -> Some (Value.Vint (-expect_int "-" x))
    | _ -> Some (arith "-" ( - ) 0 args))
  | "*" -> Some (arith "*" ( * ) 1 args)
  | "//" -> (
    match args with
    | [ a; b ] ->
      let d = expect_int "//" b in
      if d = 0 then error "division by zero";
      Some (Value.Vint (expect_int "//" a / d))
    | _ -> error "// takes two arguments")
  | "mod" -> (
    match args with
    | [ a; b ] ->
      let d = expect_int "mod" b in
      if d = 0 then error "mod by zero";
      Some (Value.Vint (expect_int "mod" a mod d))
    | _ -> error "mod takes two arguments")
  | ">" -> Some (compare_builtin ">" ( > ) args)
  | "<" -> Some (compare_builtin "<" ( < ) args)
  | ">=" -> Some (compare_builtin ">=" ( >= ) args)
  | "<=" -> Some (compare_builtin "<=" ( <= ) args)
  | "=" -> (
    match args with
    | [ a; b ] -> Some (Value.Vbool (Value.equal_value a b))
    | _ -> error "= takes two arguments")
  | "not" -> (
    match args with
    | [ a ] -> Some (Value.Vbool (not (expect_bool "not" a)))
    | _ -> error "not takes one argument")
  | "and" ->
    Some (Value.Vbool (List.for_all (expect_bool "and") args))
  | "or" ->
    Some (Value.Vbool (List.exists (expect_bool "or") args))
  | "min" -> Some (arith "min" min max_int args)
  | "max" -> Some (arith "max" max min_int args)
  | "abs" -> (
    match args with
    | [ a ] -> Some (Value.Vint (abs (expect_int "abs" a)))
    | _ -> error "abs takes one argument")
  | "read" -> Some (Value.Vint (st.read_fn ()))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The evaluator                                                      *)

let index_of_values what = function
  | [ Value.Vint i ] -> Value.Idx1 i
  | [ Value.Vint i; Value.Vint j ] -> Value.Idx2 (i, j)
  | vs ->
    error "%s: indices must be one or two integers (got %d)" what
      (List.length vs)

let rec eval st env (e : Ast.expr) : Value.t =
  match e with
  | Ast.At (line, inner) ->
    st.cur_line <- line;
    eval st env inner
  | Ast.Int n -> Value.Vint n
  | Ast.Str s -> Value.Vstr s
  | Ast.Bool b -> Value.Vbool b
  | Ast.Var v -> eval_var st env env v
  | Ast.Assign (v, rhs) ->
    let value = eval st env rhs in
    assign st env v value;
    value
  | Ast.Prog body -> eval_body st env body
  | Ast.Cond clauses -> eval_cond st env clauses
  | Ast.Do loop -> eval_do st env loop
  | Ast.Print e ->
    let v = eval st env e in
    Format.fprintf st.out "%a@." Value.pp v;
    v
  | Ast.Read -> Value.Vint (st.read_fn ())
  | Ast.Call (name, args) -> eval_call st env name args
  | Ast.Mk_instance (v, cell_expr) ->
    let cell = resolve_cell st env (eval st env cell_expr) in
    let node = Graph.mk_instance cell in
    assign st env v (Value.Vnode node);
    Value.Vnode node
  | Ast.Connect (a, b, idx) ->
    let na = expect_node "connect" (eval st env a) in
    let nb = expect_node "connect" (eval st env b) in
    let index = expect_int "connect" (eval st env idx) in
    Graph.connect na nb index;
    Value.Vnode na
  | Ast.Subcell (env_expr, v) ->
    let sub = expect_env "subcell" (eval st env env_expr) in
    (* indices evaluate in the caller's environment, the binding is
       looked up in the returned environment (section 4.2) *)
    eval_var st env sub v
  | Ast.Mk_cell (name_expr, root_expr) ->
    let name = expect_name "mk_cell" (eval st env name_expr) in
    let root = expect_node "mk_cell" (eval st env root_expr) in
    let cell =
      try Expand.mk_cell ~db:st.cells st.table name root with
      | Expand.Missing_interface _ | Expand.Inconsistent_cycle _ ->
        (* expansion is transactional, so the graph is untouched: a
           collect-mode re-run can enumerate every defect at once *)
        let r = Expand.run ~mode:`Collect st.table root in
        error "mk_cell %s: graph cannot expand@\n%a" name Expand.pp_report r
      | Expand.Already_placed c ->
        error "mk_cell %s: node of %s already expanded" name c
    in
    st.created <- cell :: st.created;
    Value.Vcell cell
  | Ast.Declare_interface d -> eval_declare st env d

and eval_var st env lookup_env (v : Ast.var) =
  match v with
  | Ast.Simple name -> resolve_name st lookup_env name 0
  | Ast.Indexed (name, idx_exprs) -> (
    let idx = index_of_values name (List.map (eval st env) idx_exprs) in
    match Env.find lookup_env name with
    | Some (Value.Varray a) -> (
      match Hashtbl.find_opt a idx with
      | Some v -> v
      | None -> error "array %s: unbound index" name)
    | Some other ->
      error "%s is %s, not an array" name (Value.type_name other)
    | None -> error "unbound array %s" name)

and assign st env (v : Ast.var) value =
  match v with
  | Ast.Simple name -> Env.set env name value
  | Ast.Indexed (name, idx_exprs) -> (
    let idx = index_of_values name (List.map (eval st env) idx_exprs) in
    match Env.find env name with
    | Some (Value.Varray a) -> Hashtbl.replace a idx value
    | Some other -> error "%s is %s, not an array" name (Value.type_name other)
    | None ->
      let a = Hashtbl.create 8 in
      Hashtbl.replace a idx value;
      Env.set env name (Value.Varray a))

and eval_body st env body =
  List.fold_left (fun _ e -> eval st env e) Value.Vunit body

and eval_cond st env clauses =
  match clauses with
  | [] -> Value.Vunit
  | (test, body) :: rest ->
    if expect_bool "cond" (eval st env test) then eval_body st env body
    else eval_cond st env rest

and eval_do st env loop =
  let i = ref (eval st env loop.Ast.init) in
  let result = ref Value.Vunit in
  let continue = ref true in
  while !continue do
    Env.define env loop.Ast.loop_var !i;
    if expect_bool "do exit" (eval st env loop.Ast.until) then
      continue := false
    else begin
      result := eval_body st env loop.Ast.body;
      i := eval st env loop.Ast.next
    end
  done;
  !result

and eval_call st env name args =
  match Hashtbl.find_opt st.procs name with
  | Some proc -> apply_proc st env proc args
  | None -> (
    let argv = List.map (eval st env) args in
    match builtin st name argv with
    | Some v -> v
    | None ->
      if name = "array" then eval_array st env argv
      else error "unknown function or macro %s" name)

and eval_array st _env argv =
  (* (array cell count inum): the builtin macro behind the register
     stacks of Appendix B — a chain of [count] instances of [cell]
     connected consecutively with interface [inum], returned as an
     environment binding c.1 .. c.count and n. *)
  match argv with
  | [ cell_v; count_v; inum_v ] ->
    let cell = resolve_cell st st.global cell_v in
    let count = expect_int "array" count_v in
    let inum = expect_int "array" inum_v in
    if count < 1 then error "array: count must be positive (got %d)" count;
    let frame = Env.create_frame ~size:2 ~name:"array" st.global in
    let entries = Hashtbl.create count in
    let nodes =
      Array.init count (fun i ->
          let n = Graph.mk_instance cell in
          Hashtbl.replace entries (Value.Idx1 (i + 1)) (Value.Vnode n);
          n)
    in
    for i = 0 to count - 2 do
      Graph.connect nodes.(i) nodes.(i + 1) inum
    done;
    Env.define frame "c" (Value.Varray entries);
    Env.define frame "n" (Value.Vint count);
    Value.Venv frame
  | _ -> error "array takes a cell, a count and an interface number"

and apply_proc st env (proc : Ast.proc) args =
  let n_formals = List.length proc.Ast.formals in
  if List.length args <> n_formals then
    error "%s expects %d arguments, got %d" proc.Ast.proc_name n_formals
      (List.length args);
  let argv = List.map (eval st env) args in
  if st.depth >= max_call_depth then
    error "call depth exceeded %d (runaway recursion in %s?)" max_call_depth
      proc.Ast.proc_name;
  st.depth <- st.depth + 1;
  Fun.protect
    ~finally:(fun () -> st.depth <- st.depth - 1)
    (fun () ->
      try apply_proc_inner st proc argv
      with
        Runtime_error msg
        when (not (has_context msg proc.Ast.proc_name))
             && String.length msg < 2000 ->
        (* grow a call trace as the error propagates (bounded, so a
           runaway mutual recursion cannot produce a mile-long one) *)
        error "%s\n  in %s" msg proc.Ast.proc_name)

and has_context msg name =
  (* avoid repeating a frame in direct recursion *)
  let suffix = "  in " ^ name in
  let ls = String.length suffix and lm = String.length msg in
  lm >= ls && String.sub msg (lm - ls) ls = suffix

and apply_proc_inner st (proc : Ast.proc) argv =
  (* Frame sized to formals + locals, as the thesis's interpreter does
     (section 4.5). *)
  let size = List.length proc.Ast.formals + List.length proc.Ast.locals in
  let frame = Env.create_frame ~size ~name:proc.Ast.proc_name st.global in
  List.iter2 (fun name v -> Env.define frame name v) proc.Ast.formals argv;
  List.iter
    (function
      | Ast.Scalar_local name -> Env.define frame name Value.Vunit
      | Ast.Array_local name ->
        Env.define frame name (Value.Varray (Hashtbl.create 8)))
    proc.Ast.locals;
  let result = eval_body st frame proc.Ast.body in
  if proc.Ast.is_macro then Value.Venv frame else result

and eval_declare st env (d : Ast.declare_interface) =
  let c = resolve_cell st env (eval st env d.Ast.di_cell1) in
  let dcell = resolve_cell st env (eval st env d.Ast.di_cell2) in
  let new_index = expect_int "declare_interface" (eval st env d.Ast.di_new_index) in
  let old_index = expect_int "declare_interface" (eval st env d.Ast.di_old_index) in
  let n1 = expect_node "declare_interface" (eval st env d.Ast.di_inst1) in
  let n2 = expect_node "declare_interface" (eval st env d.Ast.di_inst2) in
  let placement what (n : Graph.node) =
    match n.Graph.placement with
    | Some t -> t
    | None ->
      error "declare_interface: %s instance not yet placed (run mk_cell first)"
        what
  in
  let a_in_c = placement "first" n1 and b_in_d = placement "second" n2 in
  let from_a = n1.Graph.def.Cell.cname and to_b = n2.Graph.def.Cell.cname in
  let inner =
    match Interface_table.find st.table ~from:from_a ~into:to_b ~index:old_index with
    | Some i -> i
    | None ->
      error "declare_interface: no interface %d between %s and %s" old_index
        from_a to_b
  in
  let inherited = Interface.inherit_interface ~inner ~a_in_c ~b_in_d in
  Interface_table.declare st.table ~from:c.Cell.cname ~into:dcell.Cell.cname
    ~index:new_index inherited;
  Value.Vunit

(* ------------------------------------------------------------------ *)

let run_program st toplevels =
  List.fold_left
    (fun _ tl ->
      match tl with
      | Ast.Defproc proc ->
        Hashtbl.replace st.procs proc.Ast.proc_name proc;
        Value.Vunit
      | Ast.Expr e -> (
        match st.file with
        | None -> eval st st.global e
        | Some f -> (
          (* locate runtime failures: the innermost At node evaluated
             before the error is the closest enclosing source form *)
          try eval st st.global e
          with Runtime_error msg ->
            if st.cur_line > 0 then
              raise
                (Runtime_error (Printf.sprintf "%s:%d: %s" f st.cur_line msg))
            else raise (Runtime_error (Printf.sprintf "%s: %s" f msg)))))
    Value.Vunit toplevels

let run_string st src = run_program st (Parser.parse_program src)

let last_created st = match st.created with [] -> None | c :: _ -> Some c

(** The design-file interpreter (Chapter 4).

    Evaluates a design file against a global environment set up from a
    parameter file, a cell definition table initialised from a sample
    layout, and the interface table.  The variable scoping of Table 4.1
    applies: procedure environment, then global environment, then the
    cell table; values that resolve to symbols (from the parameter
    file) are re-resolved through the same chain, which is how
    [corecell = basiccell] in a parameter file retargets a design file
    onto a different sample layout. *)

open Rsg_layout
open Rsg_core

exception Runtime_error of string

type state = {
  global : Value.env;
  procs : (string, Ast.proc) Hashtbl.t;
  cells : Db.t;                     (** the cell definition table *)
  table : Interface_table.t;        (** the interface table *)
  mutable created : Cell.t list;    (** cells built by [mk_cell], newest first *)
  out : Format.formatter;           (** where [print] writes *)
  read_fn : unit -> int;            (** supplies values for [read] *)
  mutable depth : int;              (** procedure call depth (guarded) *)
  file : string option;             (** source name for error locations *)
  mutable cur_line : int;           (** line of the innermost {!Ast.At} seen *)
}

val create :
  ?cells:Db.t ->
  ?table:Interface_table.t ->
  ?out:Format.formatter ->
  ?read_fn:(unit -> int) ->
  ?file:string ->
  unit -> state
(** Fresh interpreter.  [cells]/[table] default to empty; pass a
    sample's [db]/[table] to generate against it.  [read_fn] defaults
    to a function that raises.  When [file] is given, top-level
    runtime errors are re-raised with a [file:line:] prefix taken from
    the innermost {!Ast.At} node evaluated before the failure. *)

val of_sample : ?out:Format.formatter -> ?file:string -> Sample.t -> state
(** Interpreter initialised from an extracted sample layout. *)

val load_params : state -> Param.t -> unit
(** Install parameter-file bindings in the global environment. *)

val define_global : state -> string -> Value.t -> unit
(** Bind one global directly — the host-side half of delayed binding:
    e.g. a PLA's encoding table is installed as a two-index array just
    before the design file runs (HPLA's "postponing its encoding",
    section 1.2.3). *)

val array2_of_matrix : bool array array -> Value.t
(** Pack a boolean matrix as a two-index array value,
    [a.row.col] 1-based, plus ["rows"]/["cols"] are NOT included —
    pass dimensions as separate parameters. *)

val eval : state -> Value.env -> Ast.expr -> Value.t

val run_program : state -> Ast.toplevel list -> Value.t
(** Register definitions and evaluate top-level expressions in order;
    returns the last expression's value ([Vunit] if none). *)

val run_string : state -> string -> Value.t

val resolve_cell : state -> Value.env -> Value.t -> Cell.t
(** Follow symbol indirections to a cell definition (Table 4.1). *)

val last_created : state -> Cell.t option
(** Most recent [mk_cell] result — the generated layout. *)

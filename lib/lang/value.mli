(** Runtime values of the design-file language.

    The language manipulates integers, booleans, strings, unresolved
    symbols (from parameter files — the delayed-binding hook of
    section 4.1), connectivity-graph nodes, cell definitions, arrays
    (the language replaces Lisp lists with arrays, section 4),
    and whole environments (macros return their evaluation
    environment, section 4.2). *)

type t =
  | Vunit
  | Vint of int
  | Vbool of bool
  | Vstr of string
  | Vsym of string
      (** a name from a parameter file, resolved through scoping rules
          at each use (Table 4.1) *)
  | Vnode of Rsg_core.Graph.node
  | Vcell of Rsg_layout.Cell.t
  | Venv of env
  | Varray of (index, t) Hashtbl.t

and index = Idx1 of int | Idx2 of int * int

and env = {
  frame : (string, t) Hashtbl.t;
  parent : env option;
  env_name : string;  (** procedure name, for error messages *)
}

val type_name : t -> string

val pp : Format.formatter -> t -> unit

val equal_value : t -> t -> bool
(** Structural equality for scalars ([=] in the language); nodes,
    cells and environments compare by identity; arrays are not
    comparable (returns false). *)

type t =
  | Vunit
  | Vint of int
  | Vbool of bool
  | Vstr of string
  | Vsym of string
  | Vnode of Rsg_core.Graph.node
  | Vcell of Rsg_layout.Cell.t
  | Venv of env
  | Varray of (index, t) Hashtbl.t

and index = Idx1 of int | Idx2 of int * int

and env = {
  frame : (string, t) Hashtbl.t;
  parent : env option;
  env_name : string;
}

let type_name = function
  | Vunit -> "unit"
  | Vint _ -> "integer"
  | Vbool _ -> "boolean"
  | Vstr _ -> "string"
  | Vsym _ -> "symbol"
  | Vnode _ -> "node"
  | Vcell _ -> "cell"
  | Venv _ -> "environment"
  | Varray _ -> "array"

let pp ppf = function
  | Vunit -> Format.pp_print_string ppf "()"
  | Vint n -> Format.pp_print_int ppf n
  | Vbool b -> Format.pp_print_bool ppf b
  | Vstr s -> Format.fprintf ppf "%S" s
  | Vsym s -> Format.pp_print_string ppf s
  | Vnode n ->
    Format.fprintf ppf "<node %d of %s>" n.Rsg_core.Graph.id
      n.Rsg_core.Graph.def.Rsg_layout.Cell.cname
  | Vcell c -> Format.fprintf ppf "<cell %s>" c.Rsg_layout.Cell.cname
  | Venv e -> Format.fprintf ppf "<environment of %s>" e.env_name
  | Varray a -> Format.fprintf ppf "<array of %d entries>" (Hashtbl.length a)

let equal_value a b =
  match (a, b) with
  | Vunit, Vunit -> true
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vstr x, Vstr y | Vsym x, Vsym y | Vstr x, Vsym y | Vsym x, Vstr y ->
    String.equal x y
  | Vnode x, Vnode y -> x == y
  | Vcell x, Vcell y -> x == y
  | Venv x, Venv y -> x == y
  | _ -> false

(** Second parsing stage: s-expressions to design-file AST.

    Implements the grammar of Appendix A, including the reassembly of
    indexed variables from dotted atoms ([c.i], [l.1], [arr.i.j]) and
    the split forms where a trailing-dot atom takes the following
    expression as its index ([l.(- i 1)], [l. (- i 1)]). *)

exception Syntax_error of string

val program_of_sexps : Sexp.t list -> Ast.toplevel list

val parse_program : string -> Ast.toplevel list
(** [parse_program source] = {!Sexp.parse_string} then
    {!program_of_sexps}. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests and the REPL-ish helpers). *)

(** Second parsing stage: s-expressions to design-file AST.

    Implements the grammar of Appendix A, including the reassembly of
    indexed variables from dotted atoms ([c.i], [l.1], [arr.i.j]) and
    the split forms where a trailing-dot atom takes the following
    expression as its index ([l.(- i 1)], [l. (- i 1)]).

    Every list-form expression is wrapped in {!Ast.At} carrying its
    1-based source line (when parsing from source; the plain
    [Sexp.t] entry points have no lines and produce bare nodes), and
    {!Syntax_error} messages are prefixed with ["line N: "] when the
    offending form's line is known. *)

exception Syntax_error of string

val program_of_sexps : Sexp.t list -> Ast.toplevel list
(** Lineless compatibility entry point: no {!Ast.At} wrappers. *)

val program_of_located : Sexp.located list -> Ast.toplevel list

val parse_program : string -> Ast.toplevel list
(** [parse_program source] = {!Sexp.parse_string_located} then
    {!program_of_located}; expressions carry {!Ast.At} locations. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests and the REPL-ish helpers). *)

type t = { digests : (string * string) list }

(* Canonical byte form of an expression.  Every constructor gets a
   distinct tag and every variable-length field a length or delimiter,
   so two different trees can never serialise to the same bytes.
   [resolve] turns a call-site name into the token that represents the
   callee — the callee's digest for a defined procedure, so the hash
   covers the transitive call graph. *)
let rec put_expr b resolve (e : Ast.expr) =
  match e with
  | Ast.At (_, inner) -> put_expr b resolve inner
  | Ast.Int n ->
    Buffer.add_char b 'i';
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ' '
  | Ast.Str s ->
    Buffer.add_char b 's';
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  | Ast.Bool v -> Buffer.add_string b (if v then "bt" else "bf")
  | Ast.Read -> Buffer.add_char b 'r'
  | Ast.Var v ->
    Buffer.add_char b 'v';
    put_var b resolve v
  | Ast.Call (f, args) ->
    Buffer.add_char b 'c';
    put_name b (resolve f);
    put_list b resolve args
  | Ast.Cond clauses ->
    Buffer.add_char b 'k';
    Buffer.add_string b (string_of_int (List.length clauses));
    List.iter
      (fun (test, body) ->
        Buffer.add_char b '(';
        put_expr b resolve test;
        put_list b resolve body)
      clauses
  | Ast.Do d ->
    Buffer.add_char b 'd';
    put_name b d.Ast.loop_var;
    put_expr b resolve d.Ast.init;
    put_expr b resolve d.Ast.next;
    put_expr b resolve d.Ast.until;
    put_list b resolve d.Ast.body
  | Ast.Assign (v, rhs) ->
    Buffer.add_char b 'a';
    put_var b resolve v;
    put_expr b resolve rhs
  | Ast.Prog body ->
    Buffer.add_char b 'p';
    put_list b resolve body
  | Ast.Print e ->
    Buffer.add_char b 'o';
    put_expr b resolve e
  | Ast.Mk_instance (v, e) ->
    Buffer.add_char b 'M';
    put_var b resolve v;
    put_expr b resolve e
  | Ast.Connect (x, y, i) ->
    Buffer.add_char b 'C';
    put_expr b resolve x;
    put_expr b resolve y;
    put_expr b resolve i
  | Ast.Subcell (e, v) ->
    Buffer.add_char b 'S';
    put_expr b resolve e;
    put_var b resolve v
  | Ast.Mk_cell (n, r) ->
    Buffer.add_char b 'K';
    put_expr b resolve n;
    put_expr b resolve r
  | Ast.Declare_interface d ->
    Buffer.add_char b 'I';
    List.iter (put_expr b resolve)
      [ d.Ast.di_cell1; d.Ast.di_cell2; d.Ast.di_new_index;
        d.Ast.di_inst1; d.Ast.di_inst2; d.Ast.di_old_index ]

and put_var b resolve = function
  | Ast.Simple n -> put_name b n
  | Ast.Indexed (n, idx) ->
    put_name b n;
    put_list b resolve idx

and put_list b resolve es =
  Buffer.add_char b '[';
  Buffer.add_string b (string_of_int (List.length es));
  List.iter (put_expr b resolve) es;
  Buffer.add_char b ']'

and put_name b n =
  Buffer.add_string b (string_of_int (String.length n));
  Buffer.add_char b '!';
  Buffer.add_string b n

type state = In_progress | Done of string

let of_program program =
  let procs =
    (* later definition of a name shadows an earlier one, matching the
       interpreter's environment *)
    List.fold_left
      (fun acc tl ->
        match tl with
        | Ast.Defproc p -> (p.Ast.proc_name, p) :: List.remove_assoc p.Ast.proc_name acc
        | Ast.Expr _ -> acc)
      [] program
  in
  let states : (string, state) Hashtbl.t = Hashtbl.create 16 in
  let rec digest_of name (p : Ast.proc) =
    match Hashtbl.find_opt states name with
    | Some (Done d) -> d
    | Some In_progress ->
      (* a cycle: the callee's digest is still being computed, so the
         call site embeds an opaque recursion token instead.  The name
         is part of the token — renaming a recursive procedure does
         dirty it, the one place names leak into the hash *)
      "rec:" ^ name
    | None ->
      Hashtbl.replace states name In_progress;
      let resolve f =
        match List.assoc_opt f procs with
        | Some callee -> digest_of f callee
        | None -> "prim:" ^ f
      in
      let b = Buffer.create 512 in
      Buffer.add_string b (if p.Ast.is_macro then "macro" else "defun");
      Buffer.add_string b (string_of_int (List.length p.Ast.formals));
      List.iter (put_name b) p.Ast.formals;
      Buffer.add_string b (string_of_int (List.length p.Ast.locals));
      List.iter
        (fun l ->
          match l with
          | Ast.Scalar_local n ->
            Buffer.add_char b 'l';
            put_name b n
          | Ast.Array_local n ->
            Buffer.add_char b 'L';
            put_name b n)
        p.Ast.locals;
      List.iter (fun e -> put_expr b resolve (Ast.strip_deep e)) p.Ast.body;
      let d = Digest.to_hex (Digest.string (Buffer.contents b)) in
      Hashtbl.replace states name (Done d);
      d
  in
  let digests =
    List.map (fun (name, p) -> (name, digest_of name p)) procs
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { digests }

let digest t name = List.assoc_opt name t.digests

let digests t = t.digests

let dirty ~before ~after =
  List.filter_map
    (fun (name, d) ->
      match digest before name with
      | Some d' when d' = d -> None
      | _ -> Some name)
    after.digests

(** Surface syntax of design files: s-expressions with dotted atoms.

    The design-file language is "a variant of Lisp" (Chapter 4), so the
    first parsing stage is a conventional s-expression reader.  The one
    wrinkle is indexed variables: [c.i], [l.1], [arr.i.j] and the
    split forms [l.(- i 1)] where the index is a parenthesised
    expression following an atom that ends in a dot.  The reader keeps
    atoms intact (dots included); {!Parser} reassembles indexed
    variables from adjacent atoms. *)

type t =
  | Atom of string      (** symbol, integer or dotted atom *)
  | Str of string       (** double-quoted string literal *)
  | List of t list

type located = { sx : desc; line : int }
(** An s-expression annotated with the 1-based source line where it
    starts.  Strings spanning several lines carry their opening line. *)

and desc = Latom of string | Lstr of string | Llist of located list

exception Parse_error of { line : int; message : string }

val parse_string : string -> t list
(** Parse a whole file's worth of top-level forms.  Comments run from
    [;] to end of line.  Raises {!Parse_error}. *)

val parse_string_located : string -> located list
(** Like {!parse_string} but keeping source lines, for located
    diagnostics ({!Parser} threads them into {!Ast.At} nodes). *)

val strip : located -> t
(** Drop location annotations. *)

val pp : Format.formatter -> t -> unit

(** Design rule tables (Chapter 6).

    Minimum widths and same/inter-layer spacings in lambda, plus the
    contact-expansion parameters of section 6.4.3.  The defaults are
    Mead-Conway NMOS-flavoured; alternative tables model a "new
    process technology with smaller geometries" for the
    technology-transport experiments. *)

open Rsg_geom

type t

val default : t
(** Mead-Conway-like: metal width 3 / spacing 3, poly 2/2, diffusion
    2/3, poly-diff spacing 1, cut 2x2 with spacing 2 and overlap 1. *)

val tight : t
(** A scaled-down target technology (smaller geometries) for leaf-cell
    technology transport. *)

val min_width : t -> Layer.t -> int

val spacing : t -> Layer.t -> Layer.t -> int option
(** [None] when the two layers do not interact (no spacing rule). *)

val max_spacing : t -> int
(** Largest spacing value in the deck — the interaction horizon: two
    boxes farther apart than this can never violate a spacing rule of
    this deck (the shell depth of {!Hcompact}'s interface
    abstractions). *)

val digest : t -> string
(** Raw 16-byte MD5 of the deck's full rule content, canonically
    ordered: equal digests mean identical constraint behaviour.  Keys
    the per-prototype constraint cache alongside the subtree hash. *)

val connects : t -> Layer.t -> Layer.t -> bool
(** True when overlapping geometry on the two layers is electrical
    connection rather than a violation (same layer, or contact over
    metal/poly/diffusion). *)

(** Contact-expansion parameters (fig 6.9). *)

val cut_size : t -> int

val cut_spacing : t -> int

val cut_overlap : t -> int
(** Metal/poly overlap required around the cut field. *)

val make :
  widths:(Layer.t * int) list ->
  spacings:((Layer.t * Layer.t) * int) list ->
  cut_size:int -> cut_spacing:int -> cut_overlap:int -> t
(** Spacings are symmetric; unlisted pairs do not interact.  Unlisted
    widths default to 1. *)

open Rsg_geom
module Obs = Rsg_obs.Obs

type result = {
  items : Scanline.item array;
  width_before : int;
  width_after : int;
  n_constraints : int;
  passes : int;
  relaxations : int;
}

(* Greatest solution with x <= width: substitute y = width - x, which
   reverses every constraint, solve leftmost for y, map back.  The
   original origin (x = 0) maps to an anchor pinned at y = width. *)
let rightmost g ~width =
  let rev = Cgraph.create () in
  let n = Cgraph.n_vars g in
  let map = Array.make n Cgraph.origin in
  map.(Cgraph.origin) <- Cgraph.fresh_var rev ~name:"anchor" ~init:width ();
  Cgraph.add_eq rev ~from:Cgraph.origin ~to_:map.(Cgraph.origin) ~gap:width;
  for v = 1 to n - 1 do
    map.(v) <- Cgraph.fresh_var rev ~init:(width - Cgraph.init_value g v) ()
  done;
  List.iter
    (fun (c : Cgraph.constr) ->
      (* x_to - x_from >= gap  =>  y_from - y_to >= gap *)
      Cgraph.add_ge rev ~from:map.(c.Cgraph.c_to) ~to_:map.(c.Cgraph.c_from)
        ~gap:c.Cgraph.c_gap)
    (Cgraph.constraints g);
  (* x <= width  =>  y >= 0 *)
  for v = 1 to n - 1 do
    Cgraph.add_ge rev ~from:Cgraph.origin ~to_:map.(v) ~gap:0
  done;
  let r = Bellman.solve rev in
  Array.init n (fun v ->
      if v = Cgraph.origin then 0 else width - r.Bellman.values.(map.(v)))

let compact ?(method_ = Scanline.Visibility) ?(distribute_slack = false)
    ?(order = Bellman.Sorted_by_abscissa) ?stretchable rules items =
  Obs.span "compact" (fun () ->
      let gen =
        Obs.span "compact.constraints" (fun () ->
            Scanline.generate ?stretchable rules method_ items)
      in
      let sol =
        Obs.span "compact.solve" (fun () ->
            Bellman.solve ~order gen.Scanline.graph)
      in
      let values = sol.Bellman.values in
      let values =
        if not distribute_slack then values
        else
          Obs.span "compact.slack" (fun () ->
              let w = Array.fold_left max 0 values in
              let hi = rightmost gen.Scanline.graph ~width:w in
              (* midpoint placement keeps every difference constraint: if
                 a - b >= g holds for both the least and greatest solutions it
                 holds for their average (rounded consistently). *)
              Array.init (Array.length values) (fun v ->
                  (values.(v) + hi.(v)) asr 1))
      in
      let out = Scanline.apply gen values in
      Obs.count "compact.runs";
      Obs.count ~n:(Array.length items) "compact.boxes";
      Obs.count ~n:(Cgraph.n_constraints gen.Scanline.graph)
        "compact.constraints";
      Obs.count ~n:sol.Bellman.relaxations "compact.relaxations";
      { items = out;
        width_before = Scanline.width items;
        width_after = Scanline.width out;
        n_constraints = Cgraph.n_constraints gen.Scanline.graph;
        passes = sol.Bellman.passes;
        relaxations = sol.Bellman.relaxations })

let compact_cell ?method_ ?distribute_slack rules cell =
  let items = Scanline.items_of_cell cell in
  let r = compact ?method_ ?distribute_slack rules items in
  let out = Rsg_layout.Cell.create (cell.Rsg_layout.Cell.cname ^ "-compacted") in
  Array.iter
    (fun (it : Scanline.item) ->
      Rsg_layout.Cell.add_box out it.Scanline.layer it.Scanline.box)
    r.items;
  (out, r)

type result2 = {
  items2 : Scanline.item array;
  area_before : int;
  area_after : int;
  xy_passes : int;
}

let bbox_area items = Scanline.width items * Scanline.height items

let compact_xy ?(max_rounds = 8) ?distribute_slack rules items =
  let area_before = bbox_area items in
  let current = ref items in
  let rounds = ref 0 in
  let improved = ref true in
  while !improved && !rounds < max_rounds do
    incr rounds;
    let before = bbox_area !current in
    let rx = compact ?distribute_slack rules !current in
    let ry =
      compact ?distribute_slack rules (Scanline.transpose rx.items)
    in
    current := Scanline.transpose ry.items;
    improved := bbox_area !current < before
  done;
  { items2 = !current;
    area_before;
    area_after = bbox_area !current;
    xy_passes = !rounds }

let jog_metric items =
  let n = Array.length items in
  let total = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let a = items.(i) and b = items.(j) in
        (* b sits directly on top of a, same layer: a vertical wire *)
        if
          Layer.equal a.Scanline.layer b.Scanline.layer
          && a.Scanline.box.Box.ymax = b.Scanline.box.Box.ymin
          && a.Scanline.box.Box.xmin < b.Scanline.box.Box.xmax
          && b.Scanline.box.Box.xmin < a.Scanline.box.Box.xmax
        then
          total := !total + abs (a.Scanline.box.Box.xmin - b.Scanline.box.Box.xmin)
      end
    done
  done;
  !total

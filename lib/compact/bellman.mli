(** Bellman-Ford longest-path solver for difference constraints
    (section 6.4.2).

    Computes the least solution of [x_to - x_from >= gap] with
    [x_origin = 0]: every variable is pushed as far left as the
    constraints allow ("all the objects pushed as much to the left as
    they can go").

    The thesis notes that traversing edges sorted by their initial
    abscissa makes the initial ordering a good estimate of the final
    one, often reducing the relaxation to a single pass (plus one to
    detect quiescence) instead of the worst-case [|V|]; the [order]
    parameter reproduces that experiment. *)

type order =
  | Insertion          (** as the generator emitted them *)
  | Sorted_by_abscissa (** by the source variable's initial position *)
  | Reverse_sorted     (** adversarial ordering *)

type result = {
  values : int array;
  passes : int;       (** sweeps over the edge list, incl. the final
                          no-change sweep *)
  relaxations : int;  (** total value updates *)
}

exception Infeasible
(** A positive cycle: the constraints admit no solution. *)

exception Unbounded of int
(** A variable with no lower bound (not reachable from the origin);
    carries the variable. *)

val solve : ?order:order -> Cgraph.t -> result

(** Bellman-Ford longest-path solver for difference constraints
    (section 6.4.2).

    Computes the least solution of [x_to - x_from >= gap] with
    [x_origin = 0]: every variable is pushed as far left as the
    constraints allow ("all the objects pushed as much to the left as
    they can go").

    The thesis notes that traversing edges sorted by their initial
    abscissa makes the initial ordering a good estimate of the final
    one, often reducing the relaxation to a single pass (plus one to
    detect quiescence) instead of the worst-case [|V|]; the [order]
    parameter reproduces that experiment.

    {!solve} is a worklist (SPFA-style) solver: each generation
    rescans only the out-edges of variables that moved in the
    previous one, in edge-array order, so on the compactor's
    constraint graphs far fewer edges are examined than the
    fixed-pass sweep ({!solve_fixed}, kept as the benchmarked
    reference) while producing the identical least solution. *)

type order =
  | Insertion          (** as the generator emitted them *)
  | Sorted_by_abscissa (** by the source variable's initial position *)
  | Reverse_sorted     (** adversarial ordering *)

type result = {
  values : int array;
  passes : int;       (** relaxation generations (fixed-pass: sweeps
                          over the edge list), incl. the final
                          no-change one *)
  relaxations : int;  (** total value updates *)
  scans : int;        (** edges examined across all passes — the
                          work metric the worklist solver shrinks *)
}

exception Infeasible
(** A positive cycle: the constraints admit no solution. *)

exception Unbounded of int
(** A variable with no lower bound (not reachable from the origin);
    carries the variable. *)

val solve : ?order:order -> Cgraph.t -> result
(** Worklist relaxation; the least solution. *)

val solve_fixed : ?order:order -> Cgraph.t -> result
(** The original fixed-pass sweep.  Same solution, same exceptions;
    examines every edge every pass. *)

(** Bellman-Ford longest-path solver for difference constraints
    (section 6.4.2).

    Computes the least solution of [x_to - x_from >= gap] with
    [x_origin = 0]: every variable is pushed as far left as the
    constraints allow ("all the objects pushed as much to the left as
    they can go").

    The thesis notes that traversing edges sorted by their initial
    abscissa makes the initial ordering a good estimate of the final
    one, often reducing the relaxation to a single pass (plus one to
    detect quiescence) instead of the worst-case [|V|]; the [order]
    parameter reproduces that experiment.

    {!solve} is a worklist (SPFA-style) solver: each generation
    rescans only the out-edges of variables that moved in the
    previous one, in edge-array order, so on the compactor's
    constraint graphs far fewer edges are examined than the
    fixed-pass sweep ({!solve_fixed}, kept as the benchmarked
    reference) while producing the identical least solution. *)

type order =
  | Insertion          (** as the generator emitted them *)
  | Sorted_by_abscissa (** by the source variable's initial position *)
  | Reverse_sorted     (** adversarial ordering *)

type result = {
  values : int array;
  passes : int;       (** relaxation generations (fixed-pass: sweeps
                          over the edge list), incl. the final
                          no-change one *)
  relaxations : int;  (** total value updates *)
  scans : int;        (** edges examined across all passes — the
                          work metric the worklist solver shrinks *)
}

(** One constraint of an infeasibility witness, with its endpoints
    already resolved to the graph's variable names ([b12.l],
    [ramcell#3], …) — captured at raise time so a catcher needs no
    access to the solver's graph. *)
type witness_edge = { w_from : string; w_to : string; w_gap : int }

exception Infeasible of witness_edge list
(** A positive cycle: the constraints admit no solution.  Carries a
    witness — the offending constraint chain, in traversal order, whose
    gaps sum to a positive gain (so no assignment can satisfy all of
    them).  The list is empty only when diagnostic extraction could not
    close a cycle (or the raiser detected infeasibility by other
    means, e.g. {!Leaf}'s interval contradiction). *)

exception Unbounded of int
(** A variable with no lower bound (not reachable from the origin);
    carries the variable. *)

val cycle_gain : witness_edge list -> int
(** Sum of the gaps around a witness cycle; positive for a genuine
    infeasibility witness. *)

val pp_witness : Format.formatter -> witness_edge list -> unit
(** Render an {!Infeasible} witness, one constraint per line. *)

val solve : ?order:order -> Cgraph.t -> result
(** Worklist relaxation; the least solution. *)

val solve_fixed : ?order:order -> Cgraph.t -> result
(** The original fixed-pass sweep.  Same solution, same exceptions;
    examines every edge every pass. *)

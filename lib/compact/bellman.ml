type order = Insertion | Sorted_by_abscissa | Reverse_sorted

type result = { values : int array; passes : int; relaxations : int }

exception Infeasible

exception Unbounded of int

let solve ?(order = Sorted_by_abscissa) g =
  let n = Cgraph.n_vars g in
  let edges = Array.of_list (Cgraph.constraints g) in
  (match order with
  | Insertion -> ()
  | Sorted_by_abscissa ->
    Array.sort
      (fun (a : Cgraph.constr) b ->
        Int.compare
          (Cgraph.init_value g a.Cgraph.c_from)
          (Cgraph.init_value g b.Cgraph.c_from))
      edges
  | Reverse_sorted ->
    Array.sort
      (fun (a : Cgraph.constr) b ->
        Int.compare
          (Cgraph.init_value g b.Cgraph.c_from)
          (Cgraph.init_value g a.Cgraph.c_from))
      edges);
  let x = Array.make n min_int in
  x.(Cgraph.origin) <- 0;
  let passes = ref 0 and relaxations = ref 0 in
  let changed = ref true in
  while !changed do
    if !passes > n + 1 then raise Infeasible;
    changed := false;
    incr passes;
    Array.iter
      (fun (c : Cgraph.constr) ->
        let xf = x.(c.Cgraph.c_from) in
        if xf > min_int then begin
          let bound = xf + c.Cgraph.c_gap in
          if bound > x.(c.Cgraph.c_to) then begin
            x.(c.Cgraph.c_to) <- bound;
            incr relaxations;
            changed := true
          end
        end)
      edges
  done;
  Array.iteri (fun v xv -> if xv = min_int then raise (Unbounded v)) x;
  { values = x; passes = !passes; relaxations = !relaxations }

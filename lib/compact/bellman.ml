type order = Insertion | Sorted_by_abscissa | Reverse_sorted

type result = {
  values : int array;
  passes : int;
  relaxations : int;
  scans : int;
}

type witness_edge = { w_from : string; w_to : string; w_gap : int }

exception Infeasible of witness_edge list

exception Unbounded of int

let sorted_edges order g =
  let edges = Array.of_list (Cgraph.constraints g) in
  (match order with
  | Insertion -> ()
  | Sorted_by_abscissa ->
    Array.sort
      (fun (a : Cgraph.constr) b ->
        Int.compare
          (Cgraph.init_value g a.Cgraph.c_from)
          (Cgraph.init_value g b.Cgraph.c_from))
      edges
  | Reverse_sorted ->
    Array.sort
      (fun (a : Cgraph.constr) b ->
        Int.compare
          (Cgraph.init_value g b.Cgraph.c_from)
          (Cgraph.init_value g a.Cgraph.c_from))
      edges);
  edges

(* ---- negative-cycle witness extraction ----------------------------- *)
(*
   [pred.(v)] is the index of the edge that last tightened [v].  When
   the pass bound trips, some recently-relaxed variable's predecessor
   chain is longer than the variable count, so by pigeonhole it
   revisits a variable; the edges between the two visits form a cycle,
   and any cycle that appears in a predecessor chain of a longest-path
   relaxation has positive total gap — exactly the contradiction that
   makes the system infeasible.  Walking is bounded and purely
   diagnostic: if no seed yields a cycle (a chain ends at the origin
   first), the exception carries an empty witness rather than looping.
*)
let extract_cycle (edges : Cgraph.constr array) pred n seeds =
  let find_from v =
    let seen = Array.make n (-1) in
    let rec walk u step =
      if u < 0 || u >= n || pred.(u) < 0 then None
      else if seen.(u) >= 0 then begin
        (* collect the cycle: edges from the first visit of [u] back
           to [u], in traversal order *)
        let cycle = ref [] in
        let rec collect w =
          let e = edges.(pred.(w)) in
          cycle := e :: !cycle;
          if e.Cgraph.c_from <> u then collect e.Cgraph.c_from
        in
        collect u;
        Some !cycle
      end
      else begin
        seen.(u) <- step;
        walk edges.(pred.(u)).Cgraph.c_from (step + 1)
      end
    in
    walk v 0
  in
  let rec try_seeds = function
    | [] -> []
    | v :: tl -> (match find_from v with Some c -> c | None -> try_seeds tl)
  in
  try_seeds seeds

(* The witness names its endpoints at raise time, while the graph is
   still in hand — catchers (the CLI, a server worker) need no access
   to the solver's graph to print it. *)
let name_cycle g cycle =
  List.map
    (fun (c : Cgraph.constr) ->
      { w_from = Cgraph.name g c.Cgraph.c_from;
        w_to = Cgraph.name g c.Cgraph.c_to;
        w_gap = c.Cgraph.c_gap })
    cycle

let cycle_gain cycle = List.fold_left (fun a w -> a + w.w_gap) 0 cycle

let pp_witness ppf cycle =
  match cycle with
  | [] -> Format.fprintf ppf "constraints are contradictory (no cycle witness)"
  | _ ->
    Format.fprintf ppf
      "positive constraint cycle (net gain %+d over %d constraints):"
      (cycle_gain cycle) (List.length cycle);
    List.iter
      (fun w ->
        Format.fprintf ppf "@\n  %s -> %s  (gap %+d)" w.w_from w.w_to w.w_gap)
      cycle

(* Worklist relaxation: only the out-edges of variables that moved in
   the previous generation are rescanned, instead of every edge every
   pass.  Candidate edges are visited in edge-array index order, so
   the [order] parameter keeps exactly its section 6.4.2 meaning (a
   well-ordered chain still cascades through a whole generation), and
   values are read live, so within-generation propagation is as fast
   as a full sweep.  A generation whose scan moves nothing is the
   quiescence check; [passes] counts it, matching the fixed-pass
   solver on its best case. *)
let solve ?(order = Sorted_by_abscissa) g =
  let n = Cgraph.n_vars g in
  let edges = sorted_edges order g in
  let m = Array.length edges in
  (* out.(v) lists v's out-edge indices in ascending (scan) order *)
  let out = Array.make n [] in
  for i = m - 1 downto 0 do
    let f = edges.(i).Cgraph.c_from in
    out.(f) <- i :: out.(f)
  done;
  let x = Array.make n min_int in
  x.(Cgraph.origin) <- 0;
  let pred = Array.make n (-1) in
  let passes = ref 0 and relaxations = ref 0 and scans = ref 0 in
  let in_next = Array.make n false in
  let frontier = ref [ Cgraph.origin ] in
  while !frontier <> [] do
    incr passes;
    if !passes > n + 1 then
      raise (Infeasible (name_cycle g (extract_cycle edges pred n !frontier)));
    let cand =
      List.sort_uniq Int.compare
        (List.concat_map (fun v -> out.(v)) !frontier)
    in
    let next = ref [] in
    List.iter
      (fun i ->
        incr scans;
        let c = edges.(i) in
        let xf = x.(c.Cgraph.c_from) in
        if xf > min_int then begin
          let bound = xf + c.Cgraph.c_gap in
          if bound > x.(c.Cgraph.c_to) then begin
            x.(c.Cgraph.c_to) <- bound;
            pred.(c.Cgraph.c_to) <- i;
            incr relaxations;
            if not in_next.(c.Cgraph.c_to) then begin
              in_next.(c.Cgraph.c_to) <- true;
              next := c.Cgraph.c_to :: !next
            end
          end
        end)
      cand;
    List.iter (fun v -> in_next.(v) <- false) !next;
    frontier := !next
  done;
  Array.iteri (fun v xv -> if xv = min_int then raise (Unbounded v)) x;
  { values = x; passes = !passes; relaxations = !relaxations; scans = !scans }

(* The original fixed-pass solver: every pass sweeps the whole edge
   array until a sweep changes nothing.  Kept as the reference the
   worklist solver is benchmarked against (E11) and property-tested
   for equality. *)
let solve_fixed ?(order = Sorted_by_abscissa) g =
  let n = Cgraph.n_vars g in
  let edges = sorted_edges order g in
  let x = Array.make n min_int in
  x.(Cgraph.origin) <- 0;
  let pred = Array.make n (-1) in
  let last_moved = ref Cgraph.origin in
  let passes = ref 0 and relaxations = ref 0 and scans = ref 0 in
  let changed = ref true in
  while !changed do
    if !passes > n + 1 then
      raise (Infeasible (name_cycle g (extract_cycle edges pred n [ !last_moved ])));
    changed := false;
    incr passes;
    Array.iteri
      (fun i (c : Cgraph.constr) ->
        incr scans;
        let xf = x.(c.Cgraph.c_from) in
        if xf > min_int then begin
          let bound = xf + c.Cgraph.c_gap in
          if bound > x.(c.Cgraph.c_to) then begin
            x.(c.Cgraph.c_to) <- bound;
            pred.(c.Cgraph.c_to) <- i;
            last_moved := c.Cgraph.c_to;
            incr relaxations;
            changed := true
          end
        end)
      edges
  done;
  Array.iteri (fun v xv -> if xv = min_int then raise (Unbounded v)) x;
  { values = x; passes = !passes; relaxations = !relaxations; scans = !scans }

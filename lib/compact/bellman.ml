type order = Insertion | Sorted_by_abscissa | Reverse_sorted

type result = {
  values : int array;
  passes : int;
  relaxations : int;
  scans : int;
}

exception Infeasible

exception Unbounded of int

let sorted_edges order g =
  let edges = Array.of_list (Cgraph.constraints g) in
  (match order with
  | Insertion -> ()
  | Sorted_by_abscissa ->
    Array.sort
      (fun (a : Cgraph.constr) b ->
        Int.compare
          (Cgraph.init_value g a.Cgraph.c_from)
          (Cgraph.init_value g b.Cgraph.c_from))
      edges
  | Reverse_sorted ->
    Array.sort
      (fun (a : Cgraph.constr) b ->
        Int.compare
          (Cgraph.init_value g b.Cgraph.c_from)
          (Cgraph.init_value g a.Cgraph.c_from))
      edges);
  edges

(* Worklist relaxation: only the out-edges of variables that moved in
   the previous generation are rescanned, instead of every edge every
   pass.  Candidate edges are visited in edge-array index order, so
   the [order] parameter keeps exactly its section 6.4.2 meaning (a
   well-ordered chain still cascades through a whole generation), and
   values are read live, so within-generation propagation is as fast
   as a full sweep.  A generation whose scan moves nothing is the
   quiescence check; [passes] counts it, matching the fixed-pass
   solver on its best case. *)
let solve ?(order = Sorted_by_abscissa) g =
  let n = Cgraph.n_vars g in
  let edges = sorted_edges order g in
  let m = Array.length edges in
  (* out.(v) lists v's out-edge indices in ascending (scan) order *)
  let out = Array.make n [] in
  for i = m - 1 downto 0 do
    let f = edges.(i).Cgraph.c_from in
    out.(f) <- i :: out.(f)
  done;
  let x = Array.make n min_int in
  x.(Cgraph.origin) <- 0;
  let passes = ref 0 and relaxations = ref 0 and scans = ref 0 in
  let in_next = Array.make n false in
  let frontier = ref [ Cgraph.origin ] in
  while !frontier <> [] do
    incr passes;
    if !passes > n + 1 then raise Infeasible;
    let cand =
      List.sort_uniq Int.compare
        (List.concat_map (fun v -> out.(v)) !frontier)
    in
    let next = ref [] in
    List.iter
      (fun i ->
        incr scans;
        let c = edges.(i) in
        let xf = x.(c.Cgraph.c_from) in
        if xf > min_int then begin
          let bound = xf + c.Cgraph.c_gap in
          if bound > x.(c.Cgraph.c_to) then begin
            x.(c.Cgraph.c_to) <- bound;
            incr relaxations;
            if not in_next.(c.Cgraph.c_to) then begin
              in_next.(c.Cgraph.c_to) <- true;
              next := c.Cgraph.c_to :: !next
            end
          end
        end)
      cand;
    List.iter (fun v -> in_next.(v) <- false) !next;
    frontier := !next
  done;
  Array.iteri (fun v xv -> if xv = min_int then raise (Unbounded v)) x;
  { values = x; passes = !passes; relaxations = !relaxations; scans = !scans }

(* The original fixed-pass solver: every pass sweeps the whole edge
   array until a sweep changes nothing.  Kept as the reference the
   worklist solver is benchmarked against (E11) and property-tested
   for equality. *)
let solve_fixed ?(order = Sorted_by_abscissa) g =
  let n = Cgraph.n_vars g in
  let edges = sorted_edges order g in
  let x = Array.make n min_int in
  x.(Cgraph.origin) <- 0;
  let passes = ref 0 and relaxations = ref 0 and scans = ref 0 in
  let changed = ref true in
  while !changed do
    if !passes > n + 1 then raise Infeasible;
    changed := false;
    incr passes;
    Array.iter
      (fun (c : Cgraph.constr) ->
        incr scans;
        let xf = x.(c.Cgraph.c_from) in
        if xf > min_int then begin
          let bound = xf + c.Cgraph.c_gap in
          if bound > x.(c.Cgraph.c_to) then begin
            x.(c.Cgraph.c_to) <- bound;
            incr relaxations;
            changed := true
          end
        end)
      edges
  done;
  Array.iteri (fun v xv -> if xv = min_int then raise (Unbounded v)) x;
  { values = x; passes = !passes; relaxations = !relaxations; scans = !scans }

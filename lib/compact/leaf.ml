open Rsg_geom
open Rsg_layout

type pitch_spec = { p_index : int; p_dx : int; p_dy : int; p_weight : int }

type result = {
  cell : Cell.t;
  pitches : (int * int) list;
  width_before : int;
  width_after : int;
  pitch_before : (int * int) list;
  iterations : int;
  n_constraints : int;
  lp_pitches : (int * float) list option;
}

exception No_fixpoint

(* x_u - x_v >= gap + coef * lambda_k,  coef in {-1, +1} *)
type lam_con = { u : int; v : int; gap : int; k : int; coef : int }

let shift_item dy dx (it : Scanline.item) =
  { it with Scanline.box = Box.translate (Vec.make dx dy) it.Scanline.box }

(* Inter-cell constraints between the cell and its own copy offset by
   (pitch_k, dy).  Emitted against the cell's own edge variables with
   the pitch folded into the weight (fig 6.3). *)
let inter_constraints rules (gen : Scanline.gen) ~k ~dx ~dy =
  let items = gen.Scanline.items in
  let n = Array.length items in
  let out = ref [] in
  let add u v gap coef = out := { u; v; gap; k; coef } :: !out in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = items.(i) in
      let b = shift_item dy dx items.(j) in
      (* b is box j of the neighbouring instance *)
      if
        a.Scanline.box.Box.ymin < b.Scanline.box.Box.ymax
        && b.Scanline.box.Box.ymin < a.Scanline.box.Box.ymax
      then begin
        let la = gen.Scanline.left.(i)
        and ra = gen.Scanline.right.(i)
        and lb = gen.Scanline.left.(j)
        and rb = gen.Scanline.right.(j) in
        let connects = Rules.connects rules a.Scanline.layer b.Scanline.layer in
        let spacing = Rules.spacing rules a.Scanline.layer b.Scanline.layer in
        let a_left = a.Scanline.box.Box.xmin <= b.Scanline.box.Box.xmin in
        let touch =
          a.Scanline.box.Box.xmax >= b.Scanline.box.Box.xmin
          && b.Scanline.box.Box.xmax >= a.Scanline.box.Box.xmin
        in
        let proper_overlap =
          a.Scanline.box.Box.xmax > b.Scanline.box.Box.xmin
          && b.Scanline.box.Box.xmax > a.Scanline.box.Box.xmin
        in
        if connects && touch then
          if a_left then
            (* overlap must survive: x_ra >= x_lb + lambda *)
            add ra lb 0 1
          else (* x_rb + lambda >= x_la *)
            add rb la 0 (-1)
        else if (not connects) && proper_overlap then begin
          (* device across the pitch boundary: freeze the offset
             relative to the pitch *)
          let d = b.Scanline.box.Box.xmin - a.Scanline.box.Box.xmin - dx in
          add lb la d (-1);
          add la lb (-d) 1
        end
        else
          match spacing with
          | None -> ()
          | Some s ->
            if a_left then (* x_lb + lambda - x_ra >= s *)
              add lb ra s (-1)
            else (* x_la - (x_rb + lambda) >= s *)
              add la rb s 1
      end
    done
  done;
  !out

let instantiate base_graph lam_cons lambdas =
  (* Rebuild a concrete constraint graph with the pitches fixed. *)
  let g = Cgraph.create () in
  let n = Cgraph.n_vars base_graph in
  for v = 1 to n - 1 do
    ignore
      (Cgraph.fresh_var g
         ~name:(Cgraph.name base_graph v)
         ~init:(Cgraph.init_value base_graph v)
         ())
  done;
  List.iter
    (fun (c : Cgraph.constr) ->
      Cgraph.add_ge g ~from:c.Cgraph.c_from ~to_:c.Cgraph.c_to ~gap:c.Cgraph.c_gap)
    (Cgraph.constraints base_graph);
  List.iter
    (fun lc ->
      Cgraph.add_ge g ~from:lc.v ~to_:lc.u ~gap:(lc.gap + (lc.coef * lambdas.(lc.k))))
    lam_cons;
  g

let min_lambdas lam_cons nk x =
  (* Given edge positions, the least pitches satisfying every lambda
     constraint (lower bounds from coef = -1 rows, checked against the
     upper bounds from coef = +1 rows). *)
  let lo = Array.make nk 0 and hi = Array.make nk max_int in
  List.iter
    (fun lc ->
      let d = x.(lc.u) - x.(lc.v) in
      (* d >= gap + coef*lambda *)
      if lc.coef = 1 then hi.(lc.k) <- min hi.(lc.k) (d - lc.gap)
      else lo.(lc.k) <- max lo.(lc.k) (lc.gap - d))
    lam_cons;
  Array.init nk (fun k ->
      if lo.(k) > hi.(k) then raise (Bellman.Infeasible []) else lo.(k))

let compact ?(use_simplex = true) ?(max_iterations = 50) rules cell ~pitches =
  let items = Scanline.items_of_cell cell in
  let gen = Scanline.generate rules Scanline.Visibility items in
  let nk = List.length pitches in
  let specs = Array.of_list pitches in
  let lam_cons =
    List.concat
      (List.mapi
         (fun k (p : pitch_spec) ->
           inter_constraints rules gen ~k ~dx:p.p_dx ~dy:p.p_dy)
         pitches)
  in
  let lambdas = Array.map (fun p -> p.p_dx) specs in
  let iterations = ref 0 in
  let x = ref [||] in
  let stable = ref false in
  while not !stable do
    incr iterations;
    if !iterations > max_iterations then raise No_fixpoint;
    let g = instantiate gen.Scanline.graph lam_cons lambdas in
    let sol = Bellman.solve g in
    x := sol.Bellman.values;
    let lam' = min_lambdas lam_cons nk !x in
    if lam' = lambdas && !iterations > 1 then stable := true
    else Array.blit lam' 0 lambdas 0 nk
  done;
  (* LP cross-check *)
  let lp_pitches =
    if not use_simplex then None
    else begin
      let nx = Cgraph.n_vars gen.Scanline.graph in
      let nvars = nx + nk in
      let row () = Array.make nvars 0.0 in
      let cons = ref [] in
      let add r b = cons := (r, b) :: !cons in
      (* pin the origin *)
      let r0 = row () in
      r0.(Cgraph.origin) <- 1.0;
      add r0 0.0;
      let r0' = row () in
      r0'.(Cgraph.origin) <- -1.0;
      add r0' 0.0;
      List.iter
        (fun (c : Cgraph.constr) ->
          let r = row () in
          r.(c.Cgraph.c_to) <- r.(c.Cgraph.c_to) +. 1.0;
          r.(c.Cgraph.c_from) <- r.(c.Cgraph.c_from) -. 1.0;
          add r (float_of_int c.Cgraph.c_gap))
        (Cgraph.constraints gen.Scanline.graph);
      List.iter
        (fun lc ->
          let r = row () in
          r.(lc.u) <- r.(lc.u) +. 1.0;
          r.(lc.v) <- r.(lc.v) -. 1.0;
          r.(nx + lc.k) <- float_of_int (-lc.coef);
          add r (float_of_int lc.gap))
        lam_cons;
      for k = 0 to nk - 1 do
        let r = row () in
        r.(nx + k) <- 1.0;
        add r 0.0
      done;
      let objective = Array.make nvars 0.0 in
      Array.iteri
        (fun k (p : pitch_spec) ->
          objective.(nx + k) <- float_of_int p.p_weight)
        specs;
      (* a unit pull on every edge position keeps the LP bounded and
         models the section 6.2 cost: cell extremities matter, but far
         less than pitches once replication weights are large *)
      for v = 1 to nx - 1 do
        objective.(v) <- 1.0
      done;
      match
        Simplex.solve
          { Simplex.n_vars = nvars; objective; constraints = List.rev !cons }
      with
      | Simplex.Optimal { z; _ } ->
        Some
          (Array.to_list
             (Array.mapi (fun k (p : pitch_spec) -> (p.p_index, z.(nx + k))) specs))
      | Simplex.Infeasible | Simplex.Unbounded -> None
    end
  in
  let out = Cell.create (cell.Cell.cname ^ "-leafcompacted") in
  let compacted = Scanline.apply gen !x in
  Array.iter
    (fun (it : Scanline.item) -> Cell.add_box out it.Scanline.layer it.Scanline.box)
    compacted;
  { cell = out;
    pitches =
      Array.to_list
        (Array.mapi (fun k (p : pitch_spec) -> (p.p_index, lambdas.(k))) specs);
    width_before = Scanline.width items;
    width_after = Scanline.width compacted;
    pitch_before = List.map (fun p -> (p.p_index, p.p_dx)) pitches;
    iterations = !iterations;
    n_constraints =
      Cgraph.n_constraints gen.Scanline.graph + List.length lam_cons;
    lp_pitches }

let verify rules r ~pitches =
  List.for_all
    (fun (p : pitch_spec) ->
      let pitch = List.assoc p.p_index r.pitches in
      let items = Scanline.items_of_cell r.cell in
      let strip =
        Array.concat
          [ items;
            Array.map (shift_item p.p_dy pitch) items;
            Array.map (shift_item (2 * p.p_dy) (2 * pitch)) items ]
      in
      Scanline.check rules strip = [])
    pitches

open Rsg_geom
module Cell = Rsg_layout.Cell
module Flatten = Rsg_layout.Flatten
module Transform = Rsg_geom.Transform
module Par = Rsg_par.Par
module Obs = Rsg_obs.Obs

(* ---- serialised constraint systems -------------------------------- *)

type cgraph = {
  cg_nv : int;
  cg_inits : int array;
  cg_cons : Cgraph.constr array;
}

let cgraph_of_graph g =
  { cg_nv = Cgraph.n_vars g;
    cg_inits = Array.init (Cgraph.n_vars g) (Cgraph.init_value g);
    cg_cons = Array.of_list (Cgraph.constraints g) }

let graph_of_cgraph cg =
  let g = Cgraph.create () in
  for v = 1 to cg.cg_nv - 1 do
    ignore (Cgraph.fresh_var g ~init:cg.cg_inits.(v) ())
  done;
  Array.iter
    (fun (c : Cgraph.constr) ->
      Cgraph.add_ge g ~from:c.Cgraph.c_from ~to_:c.Cgraph.c_to
        ~gap:c.Cgraph.c_gap)
    cg.cg_cons;
  g

type pabs = {
  pa_wmin : int;
  pa_hmin : int;
  pa_cx : cgraph;
  pa_cy : cgraph;
}

let pabs_constraints p =
  Array.length p.pa_cx.cg_cons + Array.length p.pa_cy.cg_cons

(* ---- phase 1: condense one prototype ------------------------------ *)

(* Leftmost packing pins the origin at 0 and every left edge at >= 0,
   so the packed extent is simply the largest solved abscissa. *)
let packed_extent values = Array.fold_left max 0 values

let condense rules (items : Scanline.item array) =
  let gx = Scanline.generate ~obs:false rules Scanline.Visibility items in
  let wmin = packed_extent (Bellman.solve gx.Scanline.graph).Bellman.values in
  let gy =
    Scanline.generate ~obs:false rules Scanline.Visibility
      (Scanline.transpose items)
  in
  let hmin = packed_extent (Bellman.solve gy.Scanline.graph).Bellman.values in
  { pa_wmin = wmin;
    pa_hmin = hmin;
    pa_cx = cgraph_of_graph gx.Scanline.graph;
    pa_cy = cgraph_of_graph gy.Scanline.graph }

(* ---- phase 2: the stitch level ------------------------------------ *)

(* The interface shell of a prototype: every box within [horizon] of
   its bounding-box edge, i.e. the left/right/top/bottom profile that
   can face another element within one spacing interaction.  A box
   deeper than the horizon on every side can never need a constraint
   against foreign geometry: the facing partner sits beyond the
   element's bounding box, so their separation is at least the box's
   edge depth, which already exceeds every spacing rule. *)
let shell_of horizon (f : Flatten.flat) =
  match f.Flatten.flat_bbox with
  | None -> [||]
  | Some bb ->
    let keep (b : Box.t) =
      b.Box.xmin - bb.Box.xmin <= horizon
      || bb.Box.xmax - b.Box.xmax <= horizon
      || b.Box.ymin - bb.Box.ymin <= horizon
      || bb.Box.ymax - b.Box.ymax <= horizon
    in
    Array.of_seq
      (Seq.filter_map
         (fun (layer, b) ->
           if keep b then Some { Scanline.layer; box = b } else None)
         (Array.to_seq f.Flatten.flat_boxes))

type element = {
  el_name : string;          (* constraint-variable name *)
  el_bbox : Box.t;           (* input coordinates *)
  el_shell : Scanline.item array;  (* input coordinates *)
  mutable el_dx : int;
  mutable el_dy : int;
}

let strict_overlap_x (a : Box.t) (b : Box.t) =
  a.Box.xmin < b.Box.xmax && b.Box.xmin < a.Box.xmax

let strict_overlap_y (a : Box.t) (b : Box.t) =
  a.Box.ymin < b.Box.ymax && b.Box.ymin < a.Box.ymax

let translate_box dx dy (b : Box.t) =
  Box.make ~xmin:(b.Box.xmin + dx) ~ymin:(b.Box.ymin + dy)
    ~xmax:(b.Box.xmax + dx) ~ymax:(b.Box.ymax + dy)

let transpose_box (b : Box.t) =
  Box.make ~xmin:b.Box.ymin ~ymin:b.Box.xmin ~xmax:b.Box.ymax ~ymax:b.Box.xmax

(* Rigid clusters over the current placement: two elements fuse when
   their bounding boxes properly overlap (interlocked or stacked
   geometry — e.g. a personality crosspoint dropped onto its grid
   square), or when any of their shell boxes touch on connecting
   layers (an abutted seam carrying connectivity) or properly overlap
   on non-connecting layers (a device straddling the seam).  Fused
   geometry keeps its exact relative placement in both axes; that is
   the invariant that preserves abutment without knowing interface
   intent. *)
let clusters_of rules (bb : Box.t array) (shells : Scanline.item array array) =
  let k = Array.length bb in
  let parent = Array.init k Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if strict_overlap_x bb.(i) bb.(j) && strict_overlap_y bb.(i) bb.(j) then
        union i j
    done
  done;
  (* shell touch: one sweep over all shell boxes, tagged by element *)
  let tags = Array.make (Array.fold_left (fun a s -> a + Array.length s) 0 shells) 0 in
  let boxes = Array.make (Array.length tags) (Box.make ~xmin:0 ~ymin:0 ~xmax:0 ~ymax:0) in
  let layers = Array.make (Array.length tags) Layer.Metal in
  let n = ref 0 in
  Array.iteri
    (fun e s ->
      Array.iter
        (fun (it : Scanline.item) ->
          tags.(!n) <- e;
          boxes.(!n) <- it.Scanline.box;
          layers.(!n) <- it.Scanline.layer;
          incr n)
        s)
    shells;
  Scanline.sweep_pairs boxes (fun i j ->
      if tags.(i) <> tags.(j) then begin
        let touch_connect = Rules.connects rules layers.(i) layers.(j) in
        let proper =
          strict_overlap_x boxes.(i) boxes.(j)
          && strict_overlap_y boxes.(i) boxes.(j)
        in
        if touch_connect || proper then union tags.(i) tags.(j)
      end);
  Array.init k find

(* Greatest solution of the stitch system with every element's right
   edge at most [width]; per-variable slack differs by element width,
   so this is a bespoke reversal rather than {!Compactor.rightmost}
   (substitute y_i = (width - w_i) - l_i, which flips every edge and
   shifts its gap by the width difference). *)
let stitch_rightmost g vars widths ~width =
  let rev = Cgraph.create () in
  let n = Cgraph.n_vars g in
  let map = Array.make n Cgraph.origin in
  let w_of = Array.make n 0 in
  Array.iteri (fun i v -> w_of.(v) <- widths.(i)) vars;
  map.(Cgraph.origin) <- Cgraph.fresh_var rev ~name:"anchor" ~init:width ();
  Cgraph.add_eq rev ~from:Cgraph.origin ~to_:map.(Cgraph.origin) ~gap:width;
  for v = 1 to n - 1 do
    map.(v) <-
      Cgraph.fresh_var rev
        ~init:(width - w_of.(v) - Cgraph.init_value g v)
        ()
  done;
  List.iter
    (fun (c : Cgraph.constr) ->
      (* l_to - l_from >= gap  =>  y_from - y_to >= gap + w_to - w_from *)
      Cgraph.add_ge rev ~from:map.(c.Cgraph.c_to) ~to_:map.(c.Cgraph.c_from)
        ~gap:(c.Cgraph.c_gap + w_of.(c.Cgraph.c_to) - w_of.(c.Cgraph.c_from)))
    (Cgraph.constraints g);
  for v = 1 to n - 1 do
    Cgraph.add_ge rev ~from:Cgraph.origin ~to_:map.(v) ~gap:0
  done;
  let r = Bellman.solve rev in
  Array.init n (fun v ->
      if v = Cgraph.origin then 0
      else width - w_of.(v) - r.Bellman.values.(map.(v)))

type axis_stats = { ax_constraints : int; ax_passes : int; ax_relaxations : int }

(* One 1-D stitch: variables are element left edges; rigid clusters
   are chained with equalities; cross-cluster pairs get an
   order-preserving floor (strict-overlap pairs in the other axis
   stay disjoint in this one) and, from the shells, spacing
   constraints between every facing cross-cluster box pair with a
   rule — emitted regardless of current distance, because the floor
   alone would let far elements collapse to touching. *)
let stitch_axis rules ~distribute_slack ~names ~cluster (bb : Box.t array)
    (shells : Scanline.item array array) =
  let k = Array.length bb in
  let g = Cgraph.create () in
  let vars =
    Array.init k (fun i ->
        Cgraph.fresh_var g ~name:names.(i) ~init:bb.(i).Box.xmin ())
  in
  for i = 0 to k - 1 do
    Cgraph.add_ge g ~from:Cgraph.origin ~to_:vars.(i) ~gap:0
  done;
  (* rigidity: chain each cluster's members in index order *)
  let last = Hashtbl.create 16 in
  for i = 0 to k - 1 do
    (match Hashtbl.find_opt last cluster.(i) with
    | Some p ->
      Cgraph.add_eq g ~from:vars.(p) ~to_:vars.(i)
        ~gap:(bb.(i).Box.xmin - bb.(p).Box.xmin)
    | None -> ());
    Hashtbl.replace last cluster.(i) i
  done;
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if cluster.(i) <> cluster.(j) && strict_overlap_y bb.(i) bb.(j) then begin
        (* cross-cluster bounding boxes never properly overlap in both
           axes (that fuses them), so with y-overlap one is left of or
           touching the other *)
        if bb.(i).Box.xmax <= bb.(j).Box.xmin then
          Cgraph.add_ge g ~from:vars.(i) ~to_:vars.(j)
            ~gap:(Box.width bb.(i))
        else if bb.(j).Box.xmax <= bb.(i).Box.xmin then
          Cgraph.add_ge g ~from:vars.(j) ~to_:vars.(i)
            ~gap:(Box.width bb.(j));
        (* shell spacing between the facing profiles *)
        Array.iter
          (fun (a : Scanline.item) ->
            Array.iter
              (fun (b : Scanline.item) ->
                if strict_overlap_y a.Scanline.box b.Scanline.box then
                  match
                    Rules.spacing rules a.Scanline.layer b.Scanline.layer
                  with
                  | None -> ()
                  | Some s ->
                    let ab = a.Scanline.box and bbx = b.Scanline.box in
                    if ab.Box.xmax <= bbx.Box.xmin then
                      Cgraph.add_ge g ~from:vars.(i) ~to_:vars.(j)
                        ~gap:
                          (s
                          + (ab.Box.xmax - bb.(i).Box.xmin)
                          - (bbx.Box.xmin - bb.(j).Box.xmin))
                    else if bbx.Box.xmax <= ab.Box.xmin then
                      Cgraph.add_ge g ~from:vars.(j) ~to_:vars.(i)
                        ~gap:
                          (s
                          + (bbx.Box.xmax - bb.(j).Box.xmin)
                          - (ab.Box.xmin - bb.(i).Box.xmin)))
              shells.(j))
          shells.(i)
      end
    done
  done;
  let sol = Bellman.solve ~order:Bellman.Sorted_by_abscissa g in
  let values = sol.Bellman.values in
  let values =
    if not distribute_slack then values
    else begin
      let widths = Array.map Box.width bb in
      let w =
        Array.fold_left max 0
          (Array.mapi (fun i v -> values.(v) + widths.(i)) vars)
      in
      let hi = stitch_rightmost g vars widths ~width:w in
      Array.init (Array.length values) (fun v -> (values.(v) + hi.(v)) asr 1)
    end
  in
  let deltas = Array.mapi (fun i v -> values.(v) - bb.(i).Box.xmin) vars in
  ( deltas,
    { ax_constraints = Cgraph.n_constraints g;
      ax_passes = sol.Bellman.passes;
      ax_relaxations = sol.Bellman.relaxations } )

(* ---- results ------------------------------------------------------- *)

type stats = {
  hs_protos : int;
  hs_reused : int;
  hs_internal_constraints : int;
  hs_stitch_constraints : int;
  hs_stitch_passes : int;
  hs_stitch_relaxations : int;
  hs_elements : int;
  hs_clusters : int;
  hs_rounds : int;
  hs_area_before : int;
  hs_area_after : int;
  hs_pitch : (string * int * int) list;
}

type result = {
  hr_cell : Cell.t;
  hr_stats : stats;
  hr_artifacts : (string * pabs * bool) list;
}

(* Wrapper cells (no own boxes, exactly one instance) contribute no
   stitchable geometry of their own; the level worth stitching is the
   first with siblings.  Labels may ride on a wrapper. *)
let rec stitch_level ?(fuel = 64) cell =
  if fuel = 0 then cell
  else
    match (Cell.boxes cell, Cell.instances cell) with
    | [], [ i ] -> stitch_level ~fuel:(fuel - 1) i.Cell.def
    | _ -> cell

let union_bbox (bb : Box.t array) =
  if Array.length bb = 0 then None
  else Some (Array.fold_left Box.union bb.(0) bb)

let area_of = function None -> 0 | Some b -> Box.area b

let hier ?domains ?(distribute_slack = false) ?(max_rounds = 8)
    ?(cached = fun _ -> None) rules root =
  Obs.span "hcompact" @@ fun () ->
  let protos = Flatten.prototypes root in
  let order = Flatten.protos_order protos in
  (* ---- phase 1: one condensation per distinct subtree digest ------ *)
  let seen = Hashtbl.create 32 in
  let distinct =
    List.filter
      (fun c ->
        let h = Flatten.subtree_hex protos c in
        if Hashtbl.mem seen h then false
        else begin
          Hashtbl.add seen h ();
          true
        end)
      order
  in
  let entries =
    (* (cell, hex, cache hit) — items for misses are materialised
       sequentially: the prototype arrays are built through a shared
       memo table that must not be raced by pool workers *)
    List.map
      (fun c ->
        let hex = Flatten.subtree_hex protos c in
        match cached hex with
        | Some p -> (c, hex, Some p)
        | None ->
          ignore (Flatten.proto_flat protos c);
          (c, hex, None))
      distinct
  in
  let miss_items =
    Array.of_list
      (List.filter_map
         (fun (c, _, hit) ->
           match hit with
           | Some _ -> None
           | None -> Some (Scanline.items_of_flat (Flatten.proto_flat protos c)))
         entries)
  in
  let condensed =
    Obs.span "hcompact.condense" (fun () ->
        Par.map ?domains (condense rules) miss_items)
  in
  Obs.count ~n:(Array.length miss_items) "hcompact.condensed";
  let next_miss = ref 0 in
  let artifacts =
    List.map
      (fun (c, hex, hit) ->
        match hit with
        | Some p ->
          Obs.count "hcompact.reused";
          (c, hex, p, true)
        | None ->
          let p = condensed.(!next_miss) in
          incr next_miss;
          (c, hex, p, false))
      entries
  in
  let pabs_of_hex =
    let tbl = Hashtbl.create 32 in
    List.iter (fun (_, hex, p, _) -> Hashtbl.replace tbl hex p) artifacts;
    Hashtbl.find tbl
  in
  (* ---- phase 2: stitch the effective root level ------------------- *)
  let horizon = Rules.max_spacing rules in
  let lvl = stitch_level root in
  let shell_cache = Hashtbl.create 32 in
  let shell_of_cell c =
    let hex = Flatten.subtree_hex protos c in
    match Hashtbl.find_opt shell_cache hex with
    | Some s -> s
    | None ->
      let s = shell_of horizon (Flatten.proto_flat protos c) in
      Hashtbl.replace shell_cache hex s;
      s
  in
  (* elements in object order; objects with no geometry get no element *)
  let elements = ref [] and n_el = ref 0 in
  let objs =
    List.map
      (fun obj ->
        let put el =
          elements := el :: !elements;
          incr n_el;
          (obj, Some (!n_el - 1))
        in
        match obj with
        | Cell.Obj_box (layer, b) ->
          put
            { el_name = Printf.sprintf "box%d.%s" !n_el (Layer.name layer);
              el_bbox = b;
              el_shell = [| { Scanline.layer; box = b } |];
              el_dx = 0;
              el_dy = 0 }
        | Cell.Obj_label _ -> (obj, None)
        | Cell.Obj_instance i -> (
          let tr = Cell.transform_of_instance i in
          match Flatten.cell_bbox protos i.Cell.def with
          | None -> (obj, None)
          | Some bb ->
            put
              { el_name =
                  Printf.sprintf "%s#%d" i.Cell.def.Cell.cname !n_el;
                el_bbox = Transform.apply_box tr bb;
                el_shell =
                  Array.map
                    (fun (it : Scanline.item) ->
                      { it with
                        Scanline.box = Transform.apply_box tr it.Scanline.box })
                    (shell_of_cell i.Cell.def);
                el_dx = 0;
                el_dy = 0 }))
      (Cell.objects lvl)
  in
  let els = Array.of_list (List.rev !elements) in
  let k = Array.length els in
  let names = Array.map (fun e -> e.el_name) els in
  let current_bb () =
    Array.map (fun e -> translate_box e.el_dx e.el_dy e.el_bbox) els
  in
  let current_shells () =
    Array.map
      (fun e ->
        Array.map
          (fun (it : Scanline.item) ->
            { it with Scanline.box = translate_box e.el_dx e.el_dy it.Scanline.box })
          e.el_shell)
      els
  in
  let area_before = area_of (union_bbox (current_bb ())) in
  let rounds = ref 0
  and passes = ref 0
  and relaxations = ref 0
  and last_constraints = ref 0
  and last_clusters = ref k in
  if k > 1 then begin
    (* Clusters are a property of the INPUT placement — the abutments
       and overlaps the designer built are rigid intent.  They are
       computed once and never re-derived from moved geometry: the
       alternation can transiently bring two clusters into contact
       (an x pass runs before y alignment exposes the pairs that will
       eventually face), and re-clustering would freeze that
       accidental seam instead of letting the next pass restore the
       spacing. *)
    let cluster =
      clusters_of rules
        (Array.map (fun e -> e.el_bbox) els)
        (Array.map (fun e -> e.el_shell) els)
    in
    let reps = Hashtbl.create 16 in
    Array.iter (fun c -> Hashtbl.replace reps c ()) cluster;
    last_clusters := Hashtbl.length reps;
    let improved = ref true in
    Obs.span "hcompact.stitch" (fun () ->
        while !improved && !rounds < max_rounds do
          incr rounds;
          let before = area_of (union_bbox (current_bb ())) in
          (* x pass *)
          let bb = current_bb () and shells = current_shells () in
          let dxs, sx =
            stitch_axis rules ~distribute_slack ~names ~cluster bb shells
          in
          Array.iteri (fun i d -> els.(i).el_dx <- els.(i).el_dx + d) dxs;
          (* y pass on the transposed placement *)
          let bb = Array.map transpose_box (current_bb ())
          and shells =
            Array.map
              (fun s ->
                Array.map
                  (fun (it : Scanline.item) ->
                    { it with Scanline.box = transpose_box it.Scanline.box })
                  s)
              (current_shells ())
          in
          let dys, sy =
            stitch_axis rules ~distribute_slack ~names ~cluster bb shells
          in
          Array.iteri (fun i d -> els.(i).el_dy <- els.(i).el_dy + d) dys;
          last_constraints := sx.ax_constraints + sy.ax_constraints;
          passes := !passes + sx.ax_passes + sy.ax_passes;
          relaxations := !relaxations + sx.ax_relaxations + sy.ax_relaxations;
          improved := area_of (union_bbox (current_bb ())) < before
        done)
  end;
  let area_after = area_of (union_bbox (current_bb ())) in
  (* ---- rebuild the root (wrapper chain preserved) ----------------- *)
  let rebuilt_level = Cell.create (lvl.Cell.cname ^ "-hcompacted") in
  List.iter
    (fun (obj, el) ->
      let off =
        match el with
        | Some e -> Vec.make els.(e).el_dx els.(e).el_dy
        | None -> Vec.zero
      in
      match obj with
      | Cell.Obj_box (layer, b) ->
        Cell.add_box rebuilt_level layer (Box.translate off b)
      | Cell.Obj_label l -> Cell.add_label rebuilt_level l.Cell.text l.Cell.at
      | Cell.Obj_instance i ->
        ignore
          (Cell.add_instance rebuilt_level ~orient:i.Cell.orientation
             ~at:(Vec.add i.Cell.point_of_call off)
             i.Cell.def))
    objs;
  let rec rebuild_chain c =
    if c == lvl then rebuilt_level
    else
      match (Cell.boxes c, Cell.instances c) with
      | [], [ i ] ->
        let inner = rebuild_chain i.Cell.def in
        let w = Cell.create (c.Cell.cname ^ "-hcompacted") in
        List.iter
          (fun obj ->
            match obj with
            | Cell.Obj_label l -> Cell.add_label w l.Cell.text l.Cell.at
            | Cell.Obj_instance _ ->
              ignore
                (Cell.add_instance w ~orient:i.Cell.orientation
                   ~at:i.Cell.point_of_call inner)
            | Cell.Obj_box _ -> assert false)
          (Cell.objects c);
        w
      | _ -> rebuilt_level
  in
  let out = rebuild_chain root in
  let pitch =
    List.map
      (fun (c, hex, _, _) ->
        let p = pabs_of_hex hex in
        (c.Cell.cname, p.pa_wmin, p.pa_hmin))
      artifacts
  in
  let reused =
    List.fold_left (fun a (_, _, _, r) -> if r then a + 1 else a) 0 artifacts
  in
  let internal =
    List.fold_left (fun a (_, _, p, _) -> a + pabs_constraints p) 0 artifacts
  in
  Obs.count ~n:internal "hcompact.internal_constraints";
  { hr_cell = out;
    hr_stats =
      { hs_protos = List.length artifacts;
        hs_reused = reused;
        hs_internal_constraints = internal;
        hs_stitch_constraints = !last_constraints;
        hs_stitch_passes = !passes;
        hs_stitch_relaxations = !relaxations;
        hs_elements = k;
        hs_clusters = !last_clusters;
        hs_rounds = !rounds;
        hs_area_before = area_before;
        hs_area_after = area_after;
        hs_pitch = pitch };
    hr_artifacts = List.map (fun (_, hex, p, r) -> (hex, p, r)) artifacts }

(** Constraint generation (section 6.4.1).

    Two generators over the same pair rules:

    - {!Naive}: every pair of y-overlapping boxes on interacting
      layers gets a constraint between their opposing edges,
      regardless of what lies between them — the scheme the thesis
      implemented first, whose indiscriminate edge pairs overconstrain
      fragmented geometry (Figures 6.4/6.5: an n-fragment bus is
      forced to n times the minimum width).

    - {!Visibility}: the corrected method in the spirit of Figure 6.7.
      The thesis's fix was a scan line recording which edges a viewer
      can see, making box merging implicit; pure edge visibility is
      unsound, however, once compaction reorders edges (a hidden box
      connected to its cover can slide out past it).  We therefore
      realise the same idea at the {e net} level: a union-find over
      touching connected-layer geometry merges boxes into electrical
      nets; no spacing constraint is ever generated {e within} a net
      (so the Figure 6.5 fragmented bus collapses freely), and
      spacing always applies {e across} nets, which is sound under
      any edge reordering.

    Pair rules: same-net touching boxes keep their overlap
    (connectivity constraints; contacts keep their enclosure margin);
    cross-net geometry on interacting layers keeps its spacing;
    properly-overlapping non-connecting layers (a device, e.g. poly
    crossing diffusion) are frozen rigid relative to each other. *)

open Rsg_geom

type item = { layer : Layer.t; box : Box.t }

type method_ = Naive | Visibility

type gen = {
  graph : Cgraph.t;
  left : int array;   (** constraint variable of item i's left edge *)
  right : int array;
  items : item array;
}

val sweep_pairs : ?halo:int -> Box.t array -> (int -> int -> unit) -> unit
(** Plane sweep reporting every pair of boxes within Chebyshev
    distance [halo] (default 0: overlapping or abutting closed boxes).
    The callback receives the two indices, each unordered pair exactly
    once.  O((n + k) log n) on bounded-overlap layout geometry — the
    shared pair-finding engine of net merging and the design-rule
    checker ({!Rsg_drc.Drc}). *)

val nets_of : Rules.t -> item array -> int array
(** Electrical net of each item: union-find over touching geometry on
    connecting layers (net ids are representative item indices). *)

val generate :
  ?obs:bool ->
  ?stretchable:(int -> bool) -> Rules.t -> method_ -> item array -> gen
(** Boxes for which [stretchable] is true (default: none) get a
    min-width inequality instead of a rigid width, enabling bus/device
    sizing.  Every left edge is bounded below by the origin.

    [obs] (default true) controls the {!Rsg_obs.Obs} spans around net
    merging and pair generation; the span tree is single-domain, so
    callers running [generate] on pool workers ({!Hcompact}) must pass
    [~obs:false] and time themselves (counters are domain-safe and stay
    on). *)

val items_of_cell : Rsg_layout.Cell.t -> item array
(** Flatten a cell to scanline items (labels dropped). *)

val items_of_flat : Rsg_layout.Flatten.flat -> item array
(** Already-flattened geometry to scanline items — lets callers feed
    one {!Rsg_layout.Flatten.protos_flat} build to several passes. *)

val apply : gen -> int array -> item array
(** Rebuild items from solved edge positions (y coordinates are
    untouched — this is 1-D x compaction). *)

val width : item array -> int
(** Bounding-box width of the items. *)

val height : item array -> int

val transpose : item array -> item array
(** Swap x and y of every box: y-dimension compaction is x-dimension
    compaction of the transposed layout (the thesis's compactor is
    strictly one-dimensional; two passes approximate 2-D, section
    6.1's remark on one-dimensional greediness notwithstanding). *)

type violation = {
  v_a : int;
  v_b : int;
  v_required : int;
  v_actual : int;
}

val check : Rules.t -> item array -> violation list
(** Independent post-hoc spacing check: interacting non-connecting
    pairs closer than their rule (but not overlapping devices), and
    connecting pairs separated by less than their spacing. *)

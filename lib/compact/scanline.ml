open Rsg_geom
module Obs = Rsg_obs.Obs

type item = { layer : Layer.t; box : Box.t }

type method_ = Naive | Visibility

type gen = {
  graph : Cgraph.t;
  left : int array;
  right : int array;
  items : item array;
}

let y_overlap a b = a.box.Box.ymin < b.box.Box.ymax && b.box.Box.ymin < a.box.Box.ymax

let interacting rules a b =
  Rules.connects rules a.layer b.layer
  || Option.is_some (Rules.spacing rules a.layer b.layer)

let is_contact = function
  | Layer.Contact | Layer.Contact_cut -> true
  | _ -> false

(* Electrical nets: union-find over touching geometry on connecting
   layers.  Two boxes join a net when their layers connect (same
   layer, or contact over a conductor) and their closed extents meet
   in both axes.  Nets are the sound realisation of the merging that
   section 6.4.1 wants but cannot perform on the boxes themselves
   (device and bus sizing need box identities): no spacing is ever
   required {e within} a net, and spacing is always required {e
   across} nets — independent of which edges happen to hide which,
   so the constraint set stays valid however compaction reorders
   edges. *)
let nets_of rules items =
  let n = Array.length items in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let meet a b =
    a.box.Box.xmax >= b.box.Box.xmin
    && b.box.Box.xmax >= a.box.Box.xmin
    && a.box.Box.ymax >= b.box.Box.ymin
    && b.box.Box.ymax >= a.box.Box.ymin
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rules.connects rules items.(i).layer items.(j).layer
         && meet items.(i) items.(j)
      then union i j
    done
  done;
  Array.init n find

(* Emit the constraints between box [a] (to the left) and box [b].
   When the boxes only share a y edge (no strict y overlap), the sole
   relevant relation is electrical connection between touching
   same-net boxes — a wire turning a corner — which must keep its
   x overlap; spacing and device rules need strict y overlap. *)
let pair_constraints rules g ~left ~right ~(items : item array) ~same_net ia ib
    =
  let a = items.(ia) and b = items.(ib) in
  let y_strict = y_overlap a b in
  let touch = a.box.Box.xmax >= b.box.Box.xmin in
  let connectivity () =
    (* electrically one piece here: the mutual overlap must survive
       (in both directions, or the wire could tear apart) *)
    let ov =
      min a.box.Box.xmax b.box.Box.xmax - max a.box.Box.xmin b.box.Box.xmin
    in
    if ov >= 0 then begin
      let req = min ov 1 in
      Cgraph.add_ge g ~from:left.(ib) ~to_:right.(ia) ~gap:req;
      Cgraph.add_ge g ~from:left.(ia) ~to_:right.(ib) ~gap:req
    end
  in
  if not y_strict then begin
    if same_net && Rules.connects rules a.layer b.layer && touch then
      connectivity ()
  end
  else
    let spacing () =
      match Rules.spacing rules a.layer b.layer with
      | Some s -> Cgraph.add_ge g ~from:right.(ia) ~to_:left.(ib) ~gap:s
      | None -> ()
    in
    if same_net then begin
      if Rules.connects rules a.layer b.layer && touch then
        if is_contact b.layer && not (is_contact a.layer)
           && a.box.Box.xmin <= b.box.Box.xmin
           && b.box.Box.xmax <= a.box.Box.xmax
        then begin
          (* keep the contact enclosed in its conductor *)
          let m = Rules.cut_overlap rules in
          Cgraph.add_ge g ~from:left.(ia) ~to_:left.(ib)
            ~gap:(min m (b.box.Box.xmin - a.box.Box.xmin));
          Cgraph.add_ge g ~from:right.(ib) ~to_:right.(ia)
            ~gap:(min m (a.box.Box.xmax - b.box.Box.xmax))
        end
        else connectivity ()
      else if (not (Rules.connects rules a.layer b.layer))
              && a.box.Box.xmax > b.box.Box.xmin
      then
        (* a device within the net's cell (e.g. a buried contact's
           layers): freeze the relative geometry *)
        Cgraph.add_eq g ~from:left.(ia) ~to_:left.(ib)
          ~gap:(b.box.Box.xmin - a.box.Box.xmin)
      (* same net, same axis, not touching: no constraint — a net may
         approach itself (the fig 6.5 fragmented bus) *)
    end
    else if a.box.Box.xmax > b.box.Box.xmin
            && not (Rules.connects rules a.layer b.layer)
    then
      (* proper overlap on non-connecting layers is a device (poly
         crossing diffusion): freeze the relative x geometry.  Mere
         edge contact is not a device and falls through to spacing. *)
      Cgraph.add_eq g ~from:left.(ia) ~to_:left.(ib)
        ~gap:(b.box.Box.xmin - a.box.Box.xmin)
    else spacing ()

(* The naive generator applies the spacing rule between every pair of
   opposing edges, hidden or not, connected or not (section 6.4.1's
   first attempt). *)
let naive_pair rules g ~left ~right ~(items : item array) ia ib =
  let a = items.(ia) and b = items.(ib) in
  let overlap = a.box.Box.xmax > b.box.Box.xmin in
  if (not (Rules.connects rules a.layer b.layer)) && overlap then
    Cgraph.add_eq g ~from:left.(ia) ~to_:left.(ib)
      ~gap:(b.box.Box.xmin - a.box.Box.xmin)
  else
    match Rules.spacing rules a.layer b.layer with
    | Some s -> Cgraph.add_ge g ~from:right.(ia) ~to_:left.(ib) ~gap:s
    | None -> ()

(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)

let items_of_cell cell =
  let f = Rsg_layout.Flatten.flatten cell in
  Array.of_list
    (List.map (fun (layer, box) -> { layer; box }) f.Rsg_layout.Flatten.flat_boxes)

let generate ?(stretchable = fun _ -> false) rules method_ items =
  let n = Array.length items in
  let g = Cgraph.create () in
  let left = Array.make n 0 and right = Array.make n 0 in
  Array.iteri
    (fun i it ->
      left.(i) <-
        Cgraph.fresh_var g ~name:(Printf.sprintf "b%d.l" i)
          ~init:it.box.Box.xmin ();
      right.(i) <-
        Cgraph.fresh_var g ~name:(Printf.sprintf "b%d.r" i)
          ~init:it.box.Box.xmax ();
      Cgraph.add_ge g ~from:Cgraph.origin ~to_:left.(i) ~gap:0;
      let w = Box.width it.box in
      if stretchable i then
        Cgraph.add_ge g ~from:left.(i) ~to_:right.(i)
          ~gap:(max (Rules.min_width rules it.layer) 1)
      else Cgraph.add_eq g ~from:left.(i) ~to_:right.(i) ~gap:w)
    items;
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let c = Int.compare items.(i).box.Box.xmin items.(j).box.Box.xmin in
      if c <> 0 then c else Int.compare i j)
    order;
  (match method_ with
  | Naive ->
    Obs.span "scanline.pairs" (fun () ->
        for oi = 0 to n - 1 do
          for oj = oi + 1 to n - 1 do
            let ia = order.(oi) and ib = order.(oj) in
            if y_overlap items.(ia) items.(ib)
               && interacting rules items.(ia) items.(ib)
            then naive_pair rules g ~left ~right ~items ia ib
          done
        done)
  | Visibility ->
    let nets = Obs.span "scanline.nets" (fun () -> nets_of rules items) in
    Obs.span "scanline.pairs" (fun () ->
        for oi = 0 to n - 1 do
          for oj = oi + 1 to n - 1 do
            let ia = order.(oi) and ib = order.(oj) in
            if interacting rules items.(ia) items.(ib) then
              pair_constraints rules g ~left ~right ~items
                ~same_net:(nets.(ia) = nets.(ib))
                ia ib
          done
        done));
  Obs.count "scanline.generations";
  Obs.count ~n:(n * (n - 1) / 2) "scanline.pairs";
  { graph = g; left; right; items }

let apply gen values =
  Array.mapi
    (fun i it ->
      { it with
        box =
          Box.make ~xmin:values.(gen.left.(i)) ~xmax:values.(gen.right.(i))
            ~ymin:it.box.Box.ymin ~ymax:it.box.Box.ymax })
    gen.items

let width items =
  if Array.length items = 0 then 0
  else
    let xmin = ref max_int and xmax = ref min_int in
    Array.iter
      (fun it ->
        xmin := min !xmin it.box.Box.xmin;
        xmax := max !xmax it.box.Box.xmax)
      items;
    !xmax - !xmin

let height items =
  if Array.length items = 0 then 0
  else
    let ymin = ref max_int and ymax = ref min_int in
    Array.iter
      (fun it ->
        ymin := min !ymin it.box.Box.ymin;
        ymax := max !ymax it.box.Box.ymax)
      items;
    !ymax - !ymin

let transpose items =
  Array.map
    (fun it ->
      { it with
        box =
          Box.make ~xmin:it.box.Box.ymin ~ymin:it.box.Box.xmin
            ~xmax:it.box.Box.ymax ~ymax:it.box.Box.xmax })
    items

type violation = { v_a : int; v_b : int; v_required : int; v_actual : int }

let check rules items =
  (* Spacing applies across nets; within a net, proximity is a
     quality concern, not legality (the thesis's compactor likewise
     admits "legal but electrically poor" output needing hand
     checks). *)
  let nets = nets_of rules items in
  let n = Array.length items in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = items.(i) and b = items.(j) in
      if y_overlap a b && nets.(i) <> nets.(j) then begin
        let gap =
          max (b.box.Box.xmin - a.box.Box.xmax) (a.box.Box.xmin - b.box.Box.xmax)
        in
        match Rules.spacing rules a.layer b.layer with
        | Some s when gap >= 0 && gap < s ->
          out := { v_a = i; v_b = j; v_required = s; v_actual = gap } :: !out
        | _ -> ()
      end
    done
  done;
  List.rev !out

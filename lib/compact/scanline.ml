open Rsg_geom
module Obs = Rsg_obs.Obs

type item = { layer : Layer.t; box : Box.t }

type method_ = Naive | Visibility

type gen = {
  graph : Cgraph.t;
  left : int array;
  right : int array;
  items : item array;
}

let y_overlap a b = a.box.Box.ymin < b.box.Box.ymax && b.box.Box.ymin < a.box.Box.ymax

let interacting rules a b =
  Rules.connects rules a.layer b.layer
  || Option.is_some (Rules.spacing rules a.layer b.layer)

let is_contact = function
  | Layer.Contact | Layer.Contact_cut -> true
  | _ -> false

(* Plane sweep over closed boxes: report every pair within Chebyshev
   distance [halo] of each other (touching counts; [halo = 0] reports
   exactly the overlapping-or-abutting pairs).  Boxes enter the active
   set in xmin order and retire once their right edge falls more than
   [halo] behind the sweep front; the active set is ordered by ymin so
   a query stops as soon as candidates start past the query's top
   edge.  On box-dominated layout geometry (bounded overlap depth)
   this is O((n + k) log n) for k reported pairs — the all-pairs loop
   this replaces was Theta(n^2) regardless of k. *)
let sweep_pairs ?(halo = 0) (boxes : Box.t array) f =
  let n = Array.length boxes in
  if n > 1 then begin
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let c = Int.compare boxes.(i).Box.xmin boxes.(j).Box.xmin in
        if c <> 0 then c else Int.compare i j)
      order;
    let module IS = Set.Make (struct
      type t = int * int

      let compare = compare
    end) in
    (* active: (ymin, idx); exits: (xmax + halo, idx) *)
    let active = ref IS.empty and exits = ref IS.empty in
    Array.iter
      (fun i ->
        let b = boxes.(i) in
        let rec purge () =
          match IS.min_elt_opt !exits with
          | Some ((x_exit, j) as e) when x_exit < b.Box.xmin ->
            exits := IS.remove e !exits;
            active := IS.remove (boxes.(j).Box.ymin, j) !active;
            purge ()
          | _ -> ()
        in
        purge ();
        (* an active box may start far below the query window yet reach
           into it, so the scan starts at the bottom of the active set;
           ymin ordering gives the early exit past the window's top *)
        let cutoff = b.Box.ymax + halo in
        let rec scan seq =
          match seq () with
          | Seq.Nil -> ()
          | Seq.Cons ((ymin, j), tl) ->
            if ymin <= cutoff then begin
              if boxes.(j).Box.ymax >= b.Box.ymin - halo then f j i;
              scan tl
            end
        in
        scan (IS.to_seq !active);
        active := IS.add (b.Box.ymin, i) !active;
        exits := IS.add (b.Box.xmax + halo, i) !exits)
      order
  end

(* Electrical nets: union-find over touching geometry on connecting
   layers.  Two boxes join a net when their layers connect (same
   layer, or contact over a conductor) and their closed extents meet
   in both axes.  Nets are the sound realisation of the merging that
   section 6.4.1 wants but cannot perform on the boxes themselves
   (device and bus sizing need box identities): no spacing is ever
   required {e within} a net, and spacing is always required {e
   across} nets — independent of which edges happen to hide which,
   so the constraint set stays valid however compaction reorders
   edges. *)
let nets_of rules items =
  let n = Array.length items in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  sweep_pairs
    (Array.map (fun it -> it.box) items)
    (fun i j ->
      if Rules.connects rules items.(i).layer items.(j).layer then union i j);
  Array.init n find

(* Emit the constraints between box [a] (to the left) and box [b].
   When the boxes only share a y edge (no strict y overlap), the sole
   relevant relation is electrical connection between touching
   same-net boxes — a wire turning a corner — which must keep its
   x overlap; spacing and device rules need strict y overlap. *)
let pair_constraints rules g ~left ~right ~(items : item array) ~same_net ia ib
    =
  let a = items.(ia) and b = items.(ib) in
  let y_strict = y_overlap a b in
  let touch = a.box.Box.xmax >= b.box.Box.xmin in
  let connectivity () =
    (* electrically one piece here: the mutual overlap must survive
       (in both directions, or the wire could tear apart) *)
    let ov =
      min a.box.Box.xmax b.box.Box.xmax - max a.box.Box.xmin b.box.Box.xmin
    in
    if ov >= 0 then begin
      let req = min ov 1 in
      Cgraph.add_ge g ~from:left.(ib) ~to_:right.(ia) ~gap:req;
      Cgraph.add_ge g ~from:left.(ia) ~to_:right.(ib) ~gap:req
    end
  in
  if not y_strict then begin
    if same_net && Rules.connects rules a.layer b.layer && touch then
      connectivity ()
  end
  else
    let spacing () =
      match Rules.spacing rules a.layer b.layer with
      | Some s -> Cgraph.add_ge g ~from:right.(ia) ~to_:left.(ib) ~gap:s
      | None -> ()
    in
    if same_net then begin
      if Rules.connects rules a.layer b.layer && touch then
        if is_contact b.layer && not (is_contact a.layer)
           && a.box.Box.xmin <= b.box.Box.xmin
           && b.box.Box.xmax <= a.box.Box.xmax
        then begin
          (* keep the contact enclosed in its conductor *)
          let m = Rules.cut_overlap rules in
          Cgraph.add_ge g ~from:left.(ia) ~to_:left.(ib)
            ~gap:(min m (b.box.Box.xmin - a.box.Box.xmin));
          Cgraph.add_ge g ~from:right.(ib) ~to_:right.(ia)
            ~gap:(min m (a.box.Box.xmax - b.box.Box.xmax))
        end
        else connectivity ()
      else if (not (Rules.connects rules a.layer b.layer))
              && a.box.Box.xmax > b.box.Box.xmin
      then
        (* a device within the net's cell (e.g. a buried contact's
           layers): freeze the relative geometry *)
        Cgraph.add_eq g ~from:left.(ia) ~to_:left.(ib)
          ~gap:(b.box.Box.xmin - a.box.Box.xmin)
      (* same net, same axis, not touching: no constraint — a net may
         approach itself (the fig 6.5 fragmented bus) *)
    end
    else if a.box.Box.xmax > b.box.Box.xmin
            && not (Rules.connects rules a.layer b.layer)
    then
      (* proper overlap on non-connecting layers is a device (poly
         crossing diffusion): freeze the relative x geometry.  Mere
         edge contact is not a device and falls through to spacing. *)
      Cgraph.add_eq g ~from:left.(ia) ~to_:left.(ib)
        ~gap:(b.box.Box.xmin - a.box.Box.xmin)
    else spacing ()

(* The naive generator applies the spacing rule between every pair of
   opposing edges, hidden or not, connected or not (section 6.4.1's
   first attempt). *)
let naive_pair rules g ~left ~right ~(items : item array) ia ib =
  let a = items.(ia) and b = items.(ib) in
  let overlap = a.box.Box.xmax > b.box.Box.xmin in
  if (not (Rules.connects rules a.layer b.layer)) && overlap then
    Cgraph.add_eq g ~from:left.(ia) ~to_:left.(ib)
      ~gap:(b.box.Box.xmin - a.box.Box.xmin)
  else
    match Rules.spacing rules a.layer b.layer with
    | Some s -> Cgraph.add_ge g ~from:right.(ia) ~to_:left.(ib) ~gap:s
    | None -> ()

(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)

let items_of_flat (f : Rsg_layout.Flatten.flat) =
  Array.map
    (fun (layer, box) -> { layer; box })
    f.Rsg_layout.Flatten.flat_boxes

let items_of_cell cell = items_of_flat (Rsg_layout.Flatten.flatten cell)

let generate ?(obs = true) ?(stretchable = fun _ -> false) rules method_ items =
  (* the span tree is single-domain; parallel callers (Hcompact's
     prototype pool) pass ~obs:false and time themselves.  Counters
     stay on — they are domain-safe. *)
  let span name f = if obs then Obs.span name f else f () in
  let n = Array.length items in
  let g = Cgraph.create () in
  let left = Array.make n 0 and right = Array.make n 0 in
  Array.iteri
    (fun i it ->
      left.(i) <-
        Cgraph.fresh_var g ~name:(Printf.sprintf "b%d.l" i)
          ~init:it.box.Box.xmin ();
      right.(i) <-
        Cgraph.fresh_var g ~name:(Printf.sprintf "b%d.r" i)
          ~init:it.box.Box.xmax ();
      Cgraph.add_ge g ~from:Cgraph.origin ~to_:left.(i) ~gap:0;
      let w = Box.width it.box in
      if stretchable i then
        Cgraph.add_ge g ~from:left.(i) ~to_:right.(i)
          ~gap:(max (Rules.min_width rules it.layer) 1)
      else Cgraph.add_eq g ~from:left.(i) ~to_:right.(i) ~gap:w)
    items;
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let c = Int.compare items.(i).box.Box.xmin items.(j).box.Box.xmin in
      if c <> 0 then c else Int.compare i j)
    order;
  (match method_ with
  | Naive ->
    span "scanline.pairs" (fun () ->
        for oi = 0 to n - 1 do
          for oj = oi + 1 to n - 1 do
            let ia = order.(oi) and ib = order.(oj) in
            if y_overlap items.(ia) items.(ib)
               && interacting rules items.(ia) items.(ib)
            then naive_pair rules g ~left ~right ~items ia ib
          done
        done)
  | Visibility ->
    let nets = span "scanline.nets" (fun () -> nets_of rules items) in
    span "scanline.pairs" (fun () ->
        for oi = 0 to n - 1 do
          for oj = oi + 1 to n - 1 do
            let ia = order.(oi) and ib = order.(oj) in
            if interacting rules items.(ia) items.(ib) then
              pair_constraints rules g ~left ~right ~items
                ~same_net:(nets.(ia) = nets.(ib))
                ia ib
          done
        done));
  Obs.count "scanline.generations";
  Obs.count ~n:(n * (n - 1) / 2) "scanline.pairs";
  { graph = g; left; right; items }

let apply gen values =
  Array.mapi
    (fun i it ->
      { it with
        box =
          Box.make ~xmin:values.(gen.left.(i)) ~xmax:values.(gen.right.(i))
            ~ymin:it.box.Box.ymin ~ymax:it.box.Box.ymax })
    gen.items

let width items =
  if Array.length items = 0 then 0
  else
    let xmin = ref max_int and xmax = ref min_int in
    Array.iter
      (fun it ->
        xmin := min !xmin it.box.Box.xmin;
        xmax := max !xmax it.box.Box.xmax)
      items;
    !xmax - !xmin

let height items =
  if Array.length items = 0 then 0
  else
    let ymin = ref max_int and ymax = ref min_int in
    Array.iter
      (fun it ->
        ymin := min !ymin it.box.Box.ymin;
        ymax := max !ymax it.box.Box.ymax)
      items;
    !ymax - !ymin

let transpose items =
  Array.map
    (fun it ->
      { it with
        box =
          Box.make ~xmin:it.box.Box.ymin ~ymin:it.box.Box.xmin
            ~xmax:it.box.Box.ymax ~ymax:it.box.Box.xmax })
    items

type violation = { v_a : int; v_b : int; v_required : int; v_actual : int }

let check rules items =
  (* Spacing applies across nets; within a net, proximity is a
     quality concern, not legality (the thesis's compactor likewise
     admits "legal but electrically poor" output needing hand
     checks). *)
  let nets = nets_of rules items in
  let n = Array.length items in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = items.(i) and b = items.(j) in
      if y_overlap a b && nets.(i) <> nets.(j) then begin
        let gap =
          max (b.box.Box.xmin - a.box.Box.xmax) (a.box.Box.xmin - b.box.Box.xmax)
        in
        match Rules.spacing rules a.layer b.layer with
        | Some s when gap >= 0 && gap < s ->
          out := { v_a = i; v_b = j; v_required = s; v_actual = gap } :: !out
        | _ -> ()
      end
    done
  done;
  List.rev !out

open Rsg_geom

type t = {
  widths : (Layer.t * int) list;
  spacings : ((Layer.t * Layer.t) * int) list;  (* keys normalised *)
  cut_size : int;
  cut_spacing : int;
  cut_overlap : int;
}

let norm_pair a b = if Layer.compare a b <= 0 then (a, b) else (b, a)

let make ~widths ~spacings ~cut_size ~cut_spacing ~cut_overlap =
  { widths;
    spacings = List.map (fun ((a, b), s) -> (norm_pair a b, s)) spacings;
    cut_size;
    cut_spacing;
    cut_overlap }

let default =
  make
    ~widths:
      [ (Layer.Metal, 3); (Layer.Poly, 2); (Layer.Diffusion, 2);
        (Layer.Contact_cut, 2); (Layer.Contact, 4); (Layer.Implant, 2);
        (Layer.Buried, 2) ]
    ~spacings:
      [ ((Layer.Metal, Layer.Metal), 3);
        ((Layer.Poly, Layer.Poly), 2);
        ((Layer.Diffusion, Layer.Diffusion), 3);
        ((Layer.Poly, Layer.Diffusion), 1);
        ((Layer.Contact_cut, Layer.Contact_cut), 2);
        ((Layer.Contact, Layer.Contact), 2);
        ((Layer.Buried, Layer.Buried), 2);
        ((Layer.Implant, Layer.Implant), 2) ]
    ~cut_size:2 ~cut_spacing:2 ~cut_overlap:1

let tight =
  make
    ~widths:
      [ (Layer.Metal, 2); (Layer.Poly, 1); (Layer.Diffusion, 1);
        (Layer.Contact_cut, 1); (Layer.Contact, 3); (Layer.Implant, 1);
        (Layer.Buried, 1) ]
    ~spacings:
      [ ((Layer.Metal, Layer.Metal), 2);
        ((Layer.Poly, Layer.Poly), 1);
        ((Layer.Diffusion, Layer.Diffusion), 2);
        ((Layer.Poly, Layer.Diffusion), 1);
        ((Layer.Contact_cut, Layer.Contact_cut), 1);
        ((Layer.Contact, Layer.Contact), 1);
        ((Layer.Buried, Layer.Buried), 1);
        ((Layer.Implant, Layer.Implant), 1) ]
    ~cut_size:1 ~cut_spacing:1 ~cut_overlap:1

let min_width t layer =
  match List.assoc_opt layer t.widths with Some w -> w | None -> 1

let max_spacing t =
  List.fold_left (fun a (_, s) -> max a s) 0 t.spacings

(* Canonical rendering of every field, so two decks digest equal iff
   they constrain identically; the layer pair keys are already
   normalised by [make].  This is the rule-deck half of the
   constraint-cache key (subtree hash + rule deck). *)
let digest t =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun (l, w) -> add "w:%s=%d;" (Layer.name l) w)
    (List.sort compare t.widths);
  List.iter
    (fun ((a, bl), s) -> add "s:%s,%s=%d;" (Layer.name a) (Layer.name bl) s)
    (List.sort compare t.spacings);
  add "cut:%d,%d,%d" t.cut_size t.cut_spacing t.cut_overlap;
  Digest.string (Buffer.contents b)

let spacing t a b = List.assoc_opt (norm_pair a b) t.spacings

let connects _ a b =
  Layer.equal a b
  || (match (a, b) with
     | Layer.Contact, (Layer.Metal | Layer.Poly | Layer.Diffusion)
     | (Layer.Metal | Layer.Poly | Layer.Diffusion), Layer.Contact
     | Layer.Contact_cut, (Layer.Metal | Layer.Poly | Layer.Diffusion)
     | (Layer.Metal | Layer.Poly | Layer.Diffusion), Layer.Contact_cut ->
       true
     | _ -> false)

let cut_size t = t.cut_size

let cut_spacing t = t.cut_spacing

let cut_overlap t = t.cut_overlap

(** A small dense-tableau simplex solver.

    Section 6.3 observes that leaf-cell constraint systems — where
    some edge weights contain unknown pitches — cannot be solved by
    shortest-path algorithms and suggests linear programming
    ("a linear programming algorithm like Simplex").  This is that
    solver: two-phase primal simplex with Bland's rule, over

    {v minimise c.z   subject to   A z >= b v}

    with free variables (each is split into a difference of two
    non-negative ones internally).  Sized for leaf-cell problems
    (tens of variables, hundreds of constraints). *)

type problem = {
  n_vars : int;
  objective : float array;              (** length n_vars *)
  constraints : (float array * float) list;  (** (row, bound): row.z >= bound *)
}

type outcome =
  | Optimal of { z : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : problem -> outcome

(** Graph-based difference-constraint systems (section 6.3).

    Vertices stand for the abscissas of vertical box edges; a directed
    edge [(i, j, w)] states the minimum-spacing constraint
    [x_j - x_i >= w].  Variable 0 is the fixed origin ([x_0 = 0]).
    Weights may be negative (rigid-width back edges), which is why the
    solver is Bellman-Ford rather than Dijkstra. *)

type t

type constr = { c_from : int; c_to : int; c_gap : int }

val create : unit -> t

val origin : int
(** Variable 0, pinned to coordinate 0. *)

val fresh_var : t -> ?name:string -> init:int -> unit -> int
(** [init] is the variable's abscissa in the initial layout — used
    both as the solver's warm start hint and by the sorted-edge
    optimisation of section 6.4.2. *)

val n_vars : t -> int

val init_value : t -> int -> int

val name : t -> int -> string

val add_ge : t -> from:int -> to_:int -> gap:int -> unit
(** [x_to - x_from >= gap]. *)

val add_eq : t -> from:int -> to_:int -> gap:int -> unit
(** [x_to - x_from = gap], as a pair of inequalities. *)

val constraints : t -> constr list
(** In insertion order. *)

val n_constraints : t -> int

val satisfied : t -> int array -> bool
(** Do the given values satisfy every constraint (with [x_0 = 0])? *)

type constr = { c_from : int; c_to : int; c_gap : int }

type t = {
  mutable inits : int array;
  mutable names : string array;
  mutable nv : int;
  mutable cs : constr list;  (* reverse order *)
  mutable nc : int;
}

let origin = 0

let create () =
  { inits = Array.make 16 0;
    names = Array.make 16 "origin";
    nv = 1;
    cs = [];
    nc = 0 }

let fresh_var t ?(name = "") ~init () =
  if t.nv = Array.length t.inits then begin
    let inits = Array.make (2 * t.nv) 0
    and names = Array.make (2 * t.nv) "" in
    Array.blit t.inits 0 inits 0 t.nv;
    Array.blit t.names 0 names 0 t.nv;
    t.inits <- inits;
    t.names <- names
  end;
  let v = t.nv in
  t.inits.(v) <- init;
  t.names.(v) <- (if name = "" then Printf.sprintf "v%d" v else name);
  t.nv <- t.nv + 1;
  v

let n_vars t = t.nv

let init_value t v = t.inits.(v)

let name t v = t.names.(v)

let check_var t v =
  if v < 0 || v >= t.nv then invalid_arg "Cgraph: unknown variable"

let add_ge t ~from ~to_ ~gap =
  check_var t from;
  check_var t to_;
  t.cs <- { c_from = from; c_to = to_; c_gap = gap } :: t.cs;
  t.nc <- t.nc + 1

let add_eq t ~from ~to_ ~gap =
  add_ge t ~from ~to_ ~gap;
  add_ge t ~from:to_ ~to_:from ~gap:(-gap)

let constraints t = List.rev t.cs

let n_constraints t = t.nc

let satisfied t values =
  Array.length values = t.nv
  && values.(origin) = 0
  && List.for_all
       (fun c -> values.(c.c_to) - values.(c.c_from) >= c.c_gap)
       t.cs

(** Whole-structure hierarchical compaction.

    The flat compactor ({!Compactor}) must re-derive every constraint
    from fully flattened geometry; on a regular structure that work is
    almost entirely redundant, because thousands of instances share a
    handful of celltypes.  [hier] exploits the prototype DAG instead:

    {ol
    {- {b Condense} — every {e distinct} prototype (one per subtree
       digest, congruent celltypes share) has its internal scanline
       constraint graphs generated exactly once, in x and in y, and
       solved leftmost for its internal pitch bounds [wmin]/[hmin]
       (the per-prototype lambda values).  The per-prototype tasks fan
       out across the {!Rsg_par.Par} domain pool; results merge in
       prototype order, so the outcome is bit-identical at any domain
       count.  Artifacts are returned to the caller for persisting in
       the store, keyed by subtree hash + rule deck
       ({!Rules.digest}), and previously cached artifacts are accepted
       back through [cached], which skips generation for warm
       prototypes entirely.}
    {- {b Stitch} — the effective root level (wrapper cells with a
       single instance are descended through) is abstracted to rigid
       elements: each child instance and each root-level box.  Elements
       whose geometry touches on connecting layers, or whose bounding
       boxes properly overlap, are fused into rigid clusters (an
       abutted or interlocked seam must keep its exact relative
       placement — that is what preserves connectivity and internal
       design-rule cleanliness without re-deriving interface intent).
       Between clusters, constraints are generated from each
       prototype's {e shell} — the boxes within one interaction
       horizon ({!Rules.max_spacing}) of its bounding-box edge, the
       left/right/top/bottom interface profile of the condensation —
       plus order-preserving floors, and the system is solved with the
       worklist Bellman-Ford, with optional slack distribution and x/y
       alternation reusing the 1-D machinery.}}

    Interior geometry is never rewritten, so a structure whose input
    passes DRC keeps every intra-prototype guarantee; the inter-element
    spacing is re-legislated by the solved system.  Compaction of a
    fully abutted structure (no slack at any seam) is the identity. *)

(** Serialised difference-constraint system: everything needed to
    re-solve without re-generating (variable 0 is the origin). *)
type cgraph = {
  cg_nv : int;
  cg_inits : int array;          (** initial abscissas, length [cg_nv] *)
  cg_cons : Cgraph.constr array; (** insertion order *)
}

val graph_of_cgraph : cgraph -> Cgraph.t
(** Rebuild a solvable {!Cgraph.t} (variable names are generic). *)

(** Condensed per-prototype artifact: the content persisted in the
    store under (subtree hash, rule-deck digest). *)
type pabs = {
  pa_wmin : int;     (** internal leftmost-packed width bound *)
  pa_hmin : int;     (** internal downmost-packed height bound *)
  pa_cx : cgraph;    (** internal x constraint graph *)
  pa_cy : cgraph;    (** internal y constraint graph *)
}

val pabs_constraints : pabs -> int
(** Internal constraint count, x + y. *)

val condense : Rules.t -> Scanline.item array -> pabs
(** Generate and solve one prototype's internal constraint systems.
    Safe to run on a pool worker (no {!Rsg_obs.Obs} spans). *)

type stats = {
  hs_protos : int;            (** distinct prototypes condensed *)
  hs_reused : int;            (** of which served from [cached] *)
  hs_internal_constraints : int;
  hs_stitch_constraints : int;   (** last round, x + y systems *)
  hs_stitch_passes : int;        (** Bellman generations, all rounds *)
  hs_stitch_relaxations : int;
  hs_elements : int;          (** rigid elements at the stitch level *)
  hs_clusters : int;          (** rigid clusters in the final round *)
  hs_rounds : int;            (** x/y alternation rounds run *)
  hs_area_before : int;       (** stitch-level bounding box, input *)
  hs_area_after : int;
  hs_pitch : (string * int * int) list;
      (** per distinct prototype: cell name, wmin, hmin — children
          before parents *)
}

type result = {
  hr_cell : Rsg_layout.Cell.t;
      (** new root; child cell definitions are shared, untouched *)
  hr_stats : stats;
  hr_artifacts : (string * pabs * bool) list;
      (** per distinct prototype: subtree hex, artifact, reused flag —
          hand these to the store for the warm path *)
}

val hier :
  ?domains:int ->
  ?distribute_slack:bool ->
  ?max_rounds:int ->
  ?cached:(string -> pabs option) ->
  Rules.t ->
  Rsg_layout.Cell.t ->
  result
(** Compact [cell].  [domains] sizes the condensation pool (default
    {!Rsg_par.Par.default_domains}); the result is independent of it.
    [cached] maps a subtree hex digest to a previously persisted
    artifact for this rule deck (default: none).  [max_rounds]
    (default 8) bounds the x/y alternation; [distribute_slack]
    (default false) centres non-critical elements in their slack.
    Raises {!Bellman.Infeasible} with a witness on contradictory
    systems. *)

(** One-dimensional flat-layout compaction (sections 6.4.2, Figure 6.8).

    Pipeline: generate constraints ({!Scanline}), solve the leftmost
    packing (Bellman-Ford longest path), and optionally redistribute
    slack.  The thesis observes that pure leftmost packing — "a large
    magnet on the left" — minimises the bounding box but worsens jogs
    (Figure 6.8); the slack-distribution pass re-solves for the
    rightmost packing within the achieved width and places every
    non-critical edge midway, the "rubber band" behaviour the thesis
    asks for. *)

type result = {
  items : Scanline.item array;   (** compacted geometry *)
  width_before : int;
  width_after : int;
  n_constraints : int;
  passes : int;                  (** Bellman-Ford sweeps *)
  relaxations : int;
}

val compact :
  ?method_:Scanline.method_ ->
  ?distribute_slack:bool ->
  ?order:Bellman.order ->
  ?stretchable:(int -> bool) ->
  Rules.t -> Scanline.item array -> result
(** Defaults: visibility constraints, no slack distribution, sorted
    edge order.  Raises {!Bellman.Infeasible} on contradictory
    constraints. *)

val compact_cell :
  ?method_:Scanline.method_ ->
  ?distribute_slack:bool ->
  Rules.t -> Rsg_layout.Cell.t -> Rsg_layout.Cell.t * result
(** Flatten, compact, and rebuild a (flat) cell of the same name with
    "-compacted" appended. *)

type result2 = {
  items2 : Scanline.item array;
  area_before : int;   (** bounding-box width x height *)
  area_after : int;
  xy_passes : int;     (** alternating x/y rounds actually run *)
}

val compact_xy :
  ?max_rounds:int ->
  ?distribute_slack:bool ->
  Rules.t -> Scanline.item array -> result2
(** Alternate x and y compaction (each a 1-D pass on the transposed
    layout) until a round stops shrinking the bounding box.  The
    thesis notes 1-D-at-a-time is greedy and can miss 2-D optima
    (section 6.1); this is that greedy scheme, honestly. *)

val jog_metric : Scanline.item array -> int
(** Sum over same-layer, vertically-adjacent touching box pairs of the
    lateral misalignment of their left edges — the jog measure of
    Figure 6.8 (0 = perfectly aligned wires). *)

val rightmost :
  Cgraph.t -> width:int -> int array
(** The greatest solution with every variable at most [width]; used by
    slack distribution and exposed for tests. *)

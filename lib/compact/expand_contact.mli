(** Synthetic-layer expansion (section 6.4.3, Figure 6.9).

    Design rules arising from layer interaction (contacts, gates)
    cannot be expressed as pairwise minimum spacings, so editors like
    Magic introduce synthetic layers: a [Contact] box stands for
    metal + poly + one or more contact cuts, and is translated into
    real mask layers at mask-creation time, with the number and
    placement of cuts looked up from the contact's size. *)

open Rsg_geom

val cuts_for : Rules.t -> Box.t -> Box.t list
(** The contact-cut field for a contact box: as many cuts of
    [cut_size], spaced [cut_spacing], as fit inside the box minus
    [cut_overlap] on each side, centred; at least one (a contact
    smaller than cut + 2*overlap raises [Invalid_argument]). *)

val expand_box : Rules.t -> Box.t -> (Layer.t * Box.t) list
(** Full expansion of one contact: the metal and poly plates (the
    contact's own extent) plus the cut field. *)

val expand_items : Rules.t -> Scanline.item array -> Scanline.item array
(** Replace every [Contact] box by its expansion; other layers pass
    through. *)

val expand_cell : Rules.t -> Rsg_layout.Cell.t -> Rsg_layout.Cell.t
(** Expansion over a flattened cell, for mask output. *)

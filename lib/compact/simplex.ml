type problem = {
  n_vars : int;
  objective : float array;
  constraints : (float array * float) list;
}

type outcome =
  | Optimal of { z : float array; objective : float }
  | Infeasible
  | Unbounded

let eps = 1e-7

(* Standard-form tableau.  Columns: for each free variable z_i, two
   non-negative columns (z_i = p_i - q_i); one surplus column per
   constraint; one artificial column per constraint; then the right
   hand side.  Rows: one per constraint, plus the objective row.
   Two phases: minimise the artificial sum, then the real
   objective. *)
let solve (p : problem) =
  let cons = Array.of_list p.constraints in
  let m = Array.length cons in
  let nv = 2 * p.n_vars in
  let ns = m in
  let na = m in
  let cols = nv + ns + na in
  let t = Array.make_matrix (m + 1) (cols + 1) 0.0 in
  (* fill constraint rows, normalising to rhs >= 0 *)
  for r = 0 to m - 1 do
    let row, b = cons.(r) in
    if Array.length row <> p.n_vars then invalid_arg "Simplex.solve: row size";
    let flip = b < 0.0 in
    let s = if flip then -1.0 else 1.0 in
    for i = 0 to p.n_vars - 1 do
      t.(r).(2 * i) <- s *. row.(i);
      t.(r).((2 * i) + 1) <- -.s *. row.(i)
    done;
    (* surplus: row.z - s_r = b  (>= becomes equality) *)
    t.(r).(nv + r) <- -.s;
    t.(r).(nv + ns + r) <- 1.0;
    t.(r).(cols) <- s *. b
  done;
  let basis = Array.init m (fun r -> nv + ns + r) in
  let pivot ~row ~col =
    let piv = t.(row).(col) in
    for c = 0 to cols do
      t.(row).(c) <- t.(row).(c) /. piv
    done;
    for r = 0 to m do
      if r <> row && abs_float t.(r).(col) > 0.0 then begin
        let f = t.(r).(col) in
        for c = 0 to cols do
          t.(r).(c) <- t.(r).(c) -. (f *. t.(row).(c))
        done
      end
    done;
    if row < m then basis.(row) <- col
  in
  (* run simplex on the current objective row t.(m); allowed columns
     limited by [max_col].  Bland's rule prevents cycling. *)
  let rec iterate max_col budget =
    if budget = 0 then `Stalled
    else begin
      (* entering: smallest-index column with negative reduced cost *)
      let enter = ref (-1) in
      (try
         for c = 0 to max_col - 1 do
           if t.(m).(c) < -.eps then begin
             enter := c;
             raise Exit
           end
         done
       with Exit -> ());
      if !enter < 0 then `Optimal
      else begin
        let col = !enter in
        (* leaving: min ratio, ties by smallest basis index *)
        let best = ref (-1) in
        let best_ratio = ref infinity in
        for r = 0 to m - 1 do
          if t.(r).(col) > eps then begin
            let ratio = t.(r).(cols) /. t.(r).(col) in
            if
              ratio < !best_ratio -. eps
              || (abs_float (ratio -. !best_ratio) <= eps
                 && (!best < 0 || basis.(r) < basis.(!best)))
            then begin
              best := r;
              best_ratio := ratio
            end
          end
        done;
        if !best < 0 then `Unbounded
        else begin
          pivot ~row:!best ~col;
          iterate max_col (budget - 1)
        end
      end
    end
  in
  let budget = 50_000 in
  (* phase 1: minimise the sum of artificials *)
  for c = 0 to cols do
    t.(m).(c) <- 0.0
  done;
  for a = 0 to na - 1 do
    t.(m).(nv + ns + a) <- 1.0
  done;
  (* price out the artificial basis *)
  for r = 0 to m - 1 do
    for c = 0 to cols do
      t.(m).(c) <- t.(m).(c) -. t.(r).(c)
    done
  done;
  match iterate cols budget with
  | `Unbounded | `Stalled -> Infeasible
  | `Optimal ->
    (* feasible iff every artificial still in the basis is ~zero *)
    let art_sum = ref 0.0 in
    for r = 0 to m - 1 do
      if basis.(r) >= nv + ns then art_sum := !art_sum +. abs_float t.(r).(cols)
    done;
    if !art_sum > 1e-5 then Infeasible
    else begin
      (* drive remaining artificials out of the basis when possible *)
      for r = 0 to m - 1 do
        if basis.(r) >= nv + ns then begin
          let c = ref 0 in
          let found = ref false in
          while (not !found) && !c < nv + ns do
            if abs_float t.(r).(!c) > eps then found := true else incr c
          done;
          if !found then pivot ~row:r ~col:!c
        end
      done;
      (* phase 2 objective *)
      for c = 0 to cols do
        t.(m).(c) <- 0.0
      done;
      for i = 0 to p.n_vars - 1 do
        t.(m).(2 * i) <- p.objective.(i);
        t.(m).((2 * i) + 1) <- -.p.objective.(i)
      done;
      (* forbid artificials re-entering by pricing over nv+ns only *)
      for r = 0 to m - 1 do
        if basis.(r) < nv + ns then begin
          let f = t.(m).(basis.(r)) in
          if abs_float f > 0.0 then
            for c = 0 to cols do
              t.(m).(c) <- t.(m).(c) -. (f *. t.(r).(c))
            done
        end
      done;
      match iterate (nv + ns) budget with
      | `Unbounded -> Unbounded
      | `Stalled -> Infeasible
      | `Optimal ->
        let z = Array.make p.n_vars 0.0 in
        for r = 0 to m - 1 do
          let b = basis.(r) in
          if b < nv then begin
            let i = b / 2 in
            let v = t.(r).(cols) in
            if b land 1 = 0 then z.(i) <- z.(i) +. v else z.(i) <- z.(i) -. v
          end
        done;
        let objective =
          Array.to_list (Array.mapi (fun i c -> c *. z.(i)) p.objective)
          |> List.fold_left ( +. ) 0.0
        in
        Optimal { z; objective }
    end

(** Leaf-cell compaction (sections 6.1-6.3).

    Compacts a library cell {e in context}: the unknowns are the
    abscissas of the cell's own box edges {e and} the x pitches of its
    self-interfaces, so that every instance of the cell in any
    assembled structure keeps identical geometry (Figure 6.3).  An
    inter-cell constraint between box p of one instance and box q of
    the neighbouring instance at pitch lambda folds back onto the
    cell's own variables with a lambda term in the weight:

    {v x_q - x_p >= gap - lambda v}

    Such systems cannot be solved by Bellman-Ford alone; the thesis
    proposes linear programming.  Two solvers are provided:

    - an iterative pitch-descent (fix lambda, Bellman-Ford the edges,
      re-minimise lambda, repeat to a fixpoint), and
    - the {!Simplex} LP with cost [sum w_k lambda_k], the
      replication-weighted cost function of section 6.2 (pitches
      dominate cell extremities when replication factors are large).

    The cost weights expose the Figure 6.1/6.2 tradeoff: different
    (n, m) replication estimates produce different pitch mixes. *)

open Rsg_layout

type pitch_spec = {
  p_index : int;   (** self-interface index *)
  p_dx : int;      (** sample pitch (initial value) *)
  p_dy : int;      (** fixed y offset of the interface *)
  p_weight : int;  (** replication weight in the cost function *)
}

type result = {
  cell : Cell.t;                (** compacted cell (flat boxes) *)
  pitches : (int * int) list;   (** interface index -> compacted x pitch *)
  width_before : int;
  width_after : int;
  pitch_before : (int * int) list;
  iterations : int;
  n_constraints : int;          (** intra + inter *)
  lp_pitches : (int * float) list option;
      (** simplex solution when requested *)
}

exception No_fixpoint

val compact :
  ?use_simplex:bool ->
  ?max_iterations:int ->
  Rules.t -> Cell.t -> pitches:pitch_spec list -> result
(** Raises {!No_fixpoint} if pitch-descent fails to stabilise, and
    {!Bellman.Infeasible} if the constraints are contradictory.
    [use_simplex] (default true) additionally solves the LP and
    records its pitches for cross-checking. *)

val verify : Rules.t -> result -> pitches:pitch_spec list -> bool
(** Re-tile the compacted cell at the compacted pitches and run the
    independent spacing check over a 3-instance strip for every
    pitch. *)

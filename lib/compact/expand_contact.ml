open Rsg_geom

let cuts_along rules lo hi =
  (* positions of cut intervals within [lo + overlap, hi - overlap] *)
  let size = Rules.cut_size rules
  and gap = Rules.cut_spacing rules
  and margin = Rules.cut_overlap rules in
  let lo = lo + margin and hi = hi - margin in
  let avail = hi - lo in
  if avail < size then invalid_arg "Expand_contact: contact too small";
  let n = 1 + ((avail - size) / (size + gap)) in
  let used = (n * size) + ((n - 1) * gap) in
  let start = lo + ((avail - used) / 2) in
  List.init n (fun i ->
      let a = start + (i * (size + gap)) in
      (a, a + size))

let cuts_for rules (b : Box.t) =
  let xs = cuts_along rules b.Box.xmin b.Box.xmax in
  let ys = cuts_along rules b.Box.ymin b.Box.ymax in
  List.concat_map
    (fun (x0, x1) ->
      List.map
        (fun (y0, y1) -> Box.make ~xmin:x0 ~ymin:y0 ~xmax:x1 ~ymax:y1)
        ys)
    xs

let expand_box rules b =
  (Layer.Metal, b) :: (Layer.Poly, b)
  :: List.map (fun cut -> (Layer.Contact_cut, cut)) (cuts_for rules b)

let expand_items rules items =
  Array.of_list
    (List.concat_map
       (fun (it : Scanline.item) ->
         match it.Scanline.layer with
         | Layer.Contact ->
           List.map
             (fun (layer, box) -> { Scanline.layer; box })
             (expand_box rules it.Scanline.box)
         | _ -> [ it ])
       (Array.to_list items))

let expand_cell rules cell =
  let f = Rsg_layout.Flatten.flatten cell in
  let out = Rsg_layout.Cell.create (cell.Rsg_layout.Cell.cname ^ "-masks") in
  Array.iter
    (fun (layer, box) ->
      match layer with
      | Layer.Contact ->
        List.iter
          (fun (l, b) -> Rsg_layout.Cell.add_box out l b)
          (expand_box rules box)
      | _ -> Rsg_layout.Cell.add_box out layer box)
    f.Rsg_layout.Flatten.flat_boxes;
  out

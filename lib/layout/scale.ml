open Rsg_geom

exception Inexact of { value : int; num : int; den : int }

let coord ~num ~den v =
  let scaled = v * num in
  if scaled mod den <> 0 then raise (Inexact { value = v; num; den })
  else scaled / den

let vec ~num ~den (v : Vec.t) =
  Vec.make (coord ~num ~den v.Vec.x) (coord ~num ~den v.Vec.y)

let box ~num ~den (b : Box.t) =
  Box.make
    ~xmin:(coord ~num ~den b.Box.xmin)
    ~ymin:(coord ~num ~den b.Box.ymin)
    ~xmax:(coord ~num ~den b.Box.xmax)
    ~ymax:(coord ~num ~den b.Box.ymax)

let cell ?suffix ~num ?(den = 1) root =
  if num <= 0 || den <= 0 then invalid_arg "Scale.cell";
  let suffix =
    match suffix with
    | Some s -> s
    | None ->
      if den = 1 then Printf.sprintf "-s%d" num
      else Printf.sprintf "-s%dd%d" num den
  in
  let seen : (string, Cell.t) Hashtbl.t = Hashtbl.create 16 in
  let rec go (c : Cell.t) =
    match Hashtbl.find_opt seen c.Cell.cname with
    | Some c' -> c'
    | None ->
      let c' = Cell.create (c.Cell.cname ^ suffix) in
      Hashtbl.add seen c.Cell.cname c';
      List.iter
        (fun obj ->
          match obj with
          | Cell.Obj_box (layer, b) -> Cell.add_box c' layer (box ~num ~den b)
          | Cell.Obj_label l ->
            Cell.add_label c' l.Cell.text (vec ~num ~den l.Cell.at)
          | Cell.Obj_instance i ->
            ignore
              (Cell.add_instance c' ~orient:i.Cell.orientation
                 ~at:(vec ~num ~den i.Cell.point_of_call)
                 (go i.Cell.def)))
        (Cell.objects c);
      c'
  in
  go root

(** Hierarchical flattening and layout statistics.

    Expands a cell's instance hierarchy into absolute-coordinate
    geometry.  Used by the CIF/DEF writers, by layout verification in
    the tests, and by the flat-compaction baseline of experiment E10.

    Two paths produce identical results:

    - {!flatten} walks the whole instance tree once (iteratively, so
      depth is bounded only by [max_depth]);
    - {!prototypes} flattens each {e distinct} celltype once into
      local coordinates and materialises instances by composing the
      cached array with each instance transform, memoizing the eight
      D4 orientation variants — O(distinct cells + instances + output
      boxes) instead of re-walking every subtree, and {!protos_stats}
      needs no geometry materialisation at all.  On the regular
      structures this generator emits (thousands of instances of a
      handful of celltypes) the cached path is the fast one; a shared
      {!protos} value serves stats, DRC input and extraction in one
      build. *)

open Rsg_geom

exception Depth_exceeded of { cell : string; max_depth : int }
(** Raised when expansion descends more than [max_depth] levels —
    in practice an accidental instance cycle.  [cell] is the cell
    being entered when the limit was hit. *)

type flat = {
  flat_boxes : (Layer.t * Box.t) array;  (** absolute coordinates *)
  flat_labels : (string * Vec.t) array;
  flat_bbox : Box.t option;  (** bounding box of [flat_boxes] *)
}

val flatten : ?max_depth:int -> Cell.t -> flat
(** Fully expand [cell], accumulating boxes, labels and the bounding
    box in one pass.  [max_depth] (default 64) bounds descent so
    accidental instance cycles fail fast with {!Depth_exceeded}. *)

val flat_bbox : flat -> Box.t option

type stats = {
  n_boxes : int;            (** boxes after flattening *)
  n_instances : int;        (** instances expanded (all levels) *)
  n_leaf_instances : int;   (** instances of cells containing no instances *)
  by_cell : (string * int) list;  (** flattened instance count per cell name, sorted *)
  box_area : int;           (** total flattened box area (overlaps counted twice) *)
  bbox : Box.t option;
}

val stats : ?max_depth:int -> Cell.t -> stats
(** Computed through the prototype cache: O(distinct cells +
    instances), no geometry is materialised. *)

(** {1 The prototype cache} *)

type protos
(** Flattening cache for one root cell: every distinct celltype
    reachable from the root (identified physically, so renamed or
    same-named cells never alias), its lightweight summary, and —
    built on first demand — its fully flattened local-coordinate
    geometry plus memoized D4 orientation variants. *)

val prototypes : ?max_depth:int -> Cell.t -> protos
(** Analyse the hierarchy under [cell]: distinct celltypes in
    children-before-parents order and per-cell summaries.  Flat
    geometry is not built until {!protos_flat} asks for it.  Raises
    {!Depth_exceeded} like {!flatten}. *)

val protos_flat : protos -> flat
(** The root's flattened geometry, identical to [flatten root]
    (same boxes, same order).  Memoized: repeated calls return the
    same arrays, which callers must treat as read-only. *)

val protos_stats : protos -> stats
(** Same result as {!stats} on the root; free once the [protos] value
    exists. *)

val distinct_cells : protos -> int
(** Number of distinct celltypes in the hierarchy (root included). *)

val instance_placements :
  ?max_depth:int -> Cell.t -> (string * Transform.t) list
(** Absolute placement of every instance at every level, as
    (cell name, transform) pairs in traversal order. *)

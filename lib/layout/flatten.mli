(** Hierarchical flattening and layout statistics.

    Expands a cell's instance hierarchy into absolute-coordinate
    geometry.  Used by the CIF/DEF writers, by layout verification in
    the tests, and by the flat-compaction baseline of experiment E10. *)

open Rsg_geom

type flat = {
  flat_boxes : (Layer.t * Box.t) list;       (** absolute coordinates *)
  flat_labels : (string * Vec.t) list;
}

val flatten : ?max_depth:int -> Cell.t -> flat
(** Fully expand [cell].  [max_depth] (default 64) bounds recursion so
    accidental instance cycles fail fast with [Failure]. *)

val flat_bbox : flat -> Box.t option

type stats = {
  n_boxes : int;            (** boxes after flattening *)
  n_instances : int;        (** instances expanded (all levels) *)
  n_leaf_instances : int;   (** instances of cells containing no instances *)
  by_cell : (string * int) list;  (** flattened instance count per cell name, sorted *)
  box_area : int;           (** total flattened box area (overlaps counted twice) *)
  bbox : Box.t option;
}

val stats : ?max_depth:int -> Cell.t -> stats

val instance_placements :
  ?max_depth:int -> Cell.t -> (string * Transform.t) list
(** Absolute placement of every instance at every level, as
    (cell name, transform) pairs in traversal order. *)

(** Hierarchical flattening and layout statistics.

    Expands a cell's instance hierarchy into absolute-coordinate
    geometry.  Used by the CIF/DEF writers, by layout verification in
    the tests, and by the flat-compaction baseline of experiment E10.

    Two paths produce identical results:

    - {!flatten} walks the whole instance tree once (iteratively, so
      depth is bounded only by [max_depth]);
    - {!prototypes} flattens each {e distinct} celltype once into
      local coordinates and materialises instances by composing the
      cached array with each instance transform, memoizing the eight
      D4 orientation variants — O(distinct cells + instances + output
      boxes) instead of re-walking every subtree, and {!protos_stats}
      needs no geometry materialisation at all.  On the regular
      structures this generator emits (thousands of instances of a
      handful of celltypes) the cached path is the fast one; a shared
      {!protos} value serves stats, DRC input and extraction in one
      build. *)

open Rsg_geom

exception Depth_exceeded of { cell : string; max_depth : int }
(** Raised when expansion descends more than [max_depth] levels —
    in practice an accidental instance cycle.  [cell] is the cell
    being entered when the limit was hit. *)

type flat = {
  flat_boxes : (Layer.t * Box.t) array;  (** absolute coordinates *)
  flat_labels : (string * Vec.t) array;
  flat_bbox : Box.t option;  (** bounding box of [flat_boxes] *)
}

val flatten : ?max_depth:int -> Cell.t -> flat
(** Fully expand [cell], accumulating boxes, labels and the bounding
    box in one pass.  [max_depth] (default 64) bounds descent so
    accidental instance cycles fail fast with {!Depth_exceeded}. *)

val flat_bbox : flat -> Box.t option

type stats = {
  n_boxes : int;            (** boxes after flattening *)
  n_instances : int;        (** instances expanded (all levels) *)
  n_leaf_instances : int;   (** instances of cells containing no instances *)
  by_cell : (string * int) list;  (** flattened instance count per cell name, sorted *)
  box_area : int;           (** total flattened box area (overlaps counted twice) *)
  bbox : Box.t option;
}

val stats : ?max_depth:int -> Cell.t -> stats
(** Computed through the prototype cache: O(distinct cells +
    instances), no geometry is materialised. *)

(** {1 The prototype cache} *)

type protos
(** Flattening cache for one root cell: every distinct celltype
    reachable from the root (identified physically, so renamed or
    same-named cells never alias), its lightweight summary, and —
    built on first demand — its fully flattened local-coordinate
    geometry plus memoized D4 orientation variants. *)

val prototypes : ?max_depth:int -> Cell.t -> protos
(** Analyse the hierarchy under [cell]: distinct celltypes in
    children-before-parents order and per-cell summaries.  Flat
    geometry is not built until {!protos_flat} asks for it.  Raises
    {!Depth_exceeded} like {!flatten}. *)

val protos_flat : protos -> flat
(** The root's flattened geometry, identical to [flatten root]
    (same boxes, same order).  Memoized: repeated calls return the
    same arrays, which callers must treat as read-only. *)

val protos_stats : protos -> stats
(** Same result as {!stats} on the root; free once the [protos] value
    exists. *)

val distinct_cells : protos -> int
(** Number of distinct celltypes in the hierarchy (root included). *)

val protos_order : protos -> Cell.t list
(** The distinct celltypes, children before parents (the root last).
    This is the postorder every per-prototype artifact — flat arrays,
    subtree digests, hierarchical DRC levels, the codec's prototype
    table — is keyed to. *)

val protos_root : protos -> Cell.t

val proto_flat : protos -> Cell.t -> flat
(** The fully flattened {e local-coordinate} geometry of one distinct
    celltype (any cell of {!protos_order}); the root's equals
    {!protos_flat}.  Builds the prototype arrays on first demand;
    returned arrays are shared and must be treated as read-only.
    Raises [Not_found] for a cell outside the hierarchy. *)

val cell_bbox : protos -> Cell.t -> Box.t option
(** Local-coordinate bounding box of a distinct celltype's flattened
    geometry, from the summaries — no geometry is materialised. *)

(** {1 Subtree content hashing}

    Every distinct celltype gets a digest of its full geometric
    content: its own boxes and labels in object order, plus, for each
    instance call, the {e child's digest} with the call's orientation
    and position — a chained postorder hash, so a digest covers the
    transitive subtree and editing one celltype changes exactly its
    own digest and its ancestors'.  Cell names are excluded: renames
    keep caches warm, and congruent celltypes share artifacts.  This
    is the content address of the {!Rsg_store.Store} prototype
    cache. *)

val subtree_digest : protos -> Cell.t -> string
(** Raw 16-byte MD5 digest of the cell's subtree content.  Computed
    for the whole hierarchy on first call, then O(1). *)

val subtree_hex : protos -> Cell.t -> string
(** {!subtree_digest} in hexadecimal (32 characters). *)

val subtree_hashes : protos -> (Cell.t * string) list
(** All distinct celltypes with their hex digests, in
    {!protos_order}. *)

val seed_proto :
  protos ->
  hash:string ->
  boxes:(Layer.t * Box.t) array ->
  labels:(string * Vec.t) array ->
  unit
(** Pre-load the flattened local arrays of every celltype whose raw
    {!subtree_digest} equals [hash] — the incremental-regeneration
    hook: seeded subtrees are adopted as-is during the prototype
    build, so only dirty celltypes (and their ancestors, whose
    composition consumes the seeded arrays) are recomposed.  The
    caller warrants the arrays are exactly what flattening the
    matching subtree would produce (content-addressing makes this
    safe when the arrays come from a verified cache entry).  Must be
    called before any geometry-building accessor; raises
    [Invalid_argument] once arrays were built. *)

val instance_placements :
  ?max_depth:int -> Cell.t -> (string * Transform.t) list
(** Absolute placement of every instance at every level, as
    (cell name, transform) pairs in traversal order. *)

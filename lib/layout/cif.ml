open Rsg_geom

type read_result = { db : Db.t; top : Cell.t option }

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

(* Children-first ordering so every symbol is defined before use. *)
let ordered_cells root =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit (c : Cell.t) =
    if not (Hashtbl.mem seen c.Cell.cname) then begin
      Hashtbl.add seen c.Cell.cname ();
      List.iter (fun (i : Cell.instance) -> visit i.Cell.def) (Cell.instances c);
      order := c :: !order
    end
  in
  visit root;
  List.rev !order

let rot_direction rot =
  (* Image of (1, 0) under R^rot with East = (x,y) -> (y,-x). *)
  match rot land 3 with
  | 0 -> (1, 0)
  | 1 -> (0, -1)
  | 2 -> (-1, 0)
  | _ -> (0, 1)

(* One shared Buffer, no [Printf.sprintf] round trips: every command
   is appended as literals + decimal ints directly, so writing is one
   allocation-free pass per cell (modulo the buffer growing). *)
let add_int buf n = Buffer.add_string buf (string_of_int n)

let emit_cell buf ids (c : Cell.t) =
  let id = Hashtbl.find ids c.Cell.cname in
  Buffer.add_string buf "DS ";
  add_int buf id;
  Buffer.add_string buf " 1 1;\n9 ";
  Buffer.add_string buf c.Cell.cname;
  Buffer.add_string buf ";\n";
  let current_layer = ref None in
  List.iter
    (fun obj ->
      match obj with
      | Cell.Obj_box (layer, b) ->
        if !current_layer <> Some layer then begin
          current_layer := Some layer;
          Buffer.add_string buf "L ";
          Buffer.add_string buf (Layer.cif_name layer);
          Buffer.add_string buf ";\n"
        end;
        let c2 = Box.center2 b in
        Buffer.add_string buf "B ";
        add_int buf (2 * Box.width b);
        Buffer.add_char buf ' ';
        add_int buf (2 * Box.height b);
        Buffer.add_char buf ' ';
        add_int buf c2.Vec.x;
        Buffer.add_char buf ' ';
        add_int buf c2.Vec.y;
        Buffer.add_string buf ";\n"
      | Cell.Obj_label l ->
        Buffer.add_string buf "94 ";
        Buffer.add_string buf l.Cell.text;
        Buffer.add_char buf ' ';
        add_int buf (2 * l.Cell.at.Vec.x);
        Buffer.add_char buf ' ';
        add_int buf (2 * l.Cell.at.Vec.y);
        Buffer.add_string buf ";\n"
      | Cell.Obj_instance i ->
        Buffer.add_string buf "C ";
        add_int buf (Hashtbl.find ids i.Cell.def.Cell.cname);
        if Orient.is_reflection i.Cell.orientation then
          Buffer.add_string buf " MX";
        let dx, dy = rot_direction i.Cell.orientation.Orient.rot in
        if (dx, dy) <> (1, 0) then begin
          Buffer.add_string buf " R ";
          add_int buf dx;
          Buffer.add_char buf ' ';
          add_int buf dy
        end;
        let p = i.Cell.point_of_call in
        if not (Vec.equal p Vec.zero) then begin
          Buffer.add_string buf " T ";
          add_int buf (2 * p.Vec.x);
          Buffer.add_char buf ' ';
          add_int buf (2 * p.Vec.y)
        end;
        Buffer.add_string buf ";\n")
    (Cell.objects c);
  Buffer.add_string buf "DF;\n"

let to_string root =
  let cells = ordered_cells root in
  let ids = Hashtbl.create 16 in
  List.iteri (fun i (c : Cell.t) -> Hashtbl.add ids c.Cell.cname (i + 1)) cells;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "(CIF written by rsg; 1 lambda = 2 units);\n";
  List.iter (emit_cell buf ids) cells;
  Buffer.add_string buf "C ";
  add_int buf (Hashtbl.find ids root.Cell.cname);
  Buffer.add_string buf ";\nE\n";
  Buffer.contents buf

let write_file path cell =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string cell))

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

type token = Tint of int | Tword of string | Tsemi

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ';' then begin
      toks := Tsemi :: !toks;
      incr i
    end
    else if c = '(' then begin
      (* comment: skip to matching close paren *)
      let depth = ref 0 in
      let continue = ref true in
      while !continue && !i < n do
        (match s.[!i] with
        | '(' -> incr depth
        | ')' -> decr depth; if !depth = 0 then continue := false
        | _ -> ());
        incr i
      done
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      let start = !i in
      while
        !i < n
        && (match s.[!i] with
           | ';' | ' ' | '\t' | '\n' | '\r' | '(' -> false
           | _ -> true)
      do
        incr i
      done;
      let w = String.sub s start (!i - start) in
      match int_of_string_opt w with
      | Some v -> toks := Tint v :: !toks
      | None -> toks := Tword w :: !toks
    end
  done;
  List.rev !toks

let halve what v =
  if v land 1 <> 0 then failwith ("Cif: odd coordinate in " ^ what) else v asr 1

(* Convert a CIF transformation list (applied in order) back to an
   instance (orientation, point of call).  We only accept sequences
   whose combined linear part is one of the eight orientations, which
   is everything the writer emits and everything rectilinear CIF
   uses. *)
let transform_of_ops ops =
  List.fold_left
    (fun t op ->
      let t' =
        match op with
        | `T v -> Transform.make v
        | `MX -> Transform.of_orient Orient.mirror_y
        | `MY -> Transform.of_orient Orient.mirror_x
        | `R (dx, dy) ->
          let rot =
            match (compare dx 0, compare dy 0) with
            | 1, 0 -> 0
            | 0, -1 -> 1
            | -1, 0 -> 2
            | 0, 1 -> 3
            | _ -> failwith "Cif: non-rectilinear rotation"
          in
          Transform.of_orient (Orient.make ~rot ~refl:false)
      in
      Transform.compose t' t)
    Transform.identity ops

let of_string s =
  let db = Db.create () in
  let by_id : (int, Cell.t) Hashtbl.t = Hashtbl.create 16 in
  let top = Cell.create "(top)" in
  let top_used = ref false in
  let toks = ref (tokenize s) in
  let fail msg = failwith ("Cif parse error: " ^ msg) in
  let next () =
    match !toks with
    | [] -> fail "unexpected end of input"
    | t :: rest ->
      toks := rest;
      t
  in
  let expect_int what =
    match next () with Tint v -> v | _ -> fail ("expected integer for " ^ what)
  in
  let expect_semi () = match next () with Tsemi -> () | _ -> fail "expected ;" in
  let skip_to_semi () =
    let rec go () = match next () with Tsemi -> () | _ -> go () in
    go ()
  in
  let parse_call () =
    let id = expect_int "call id" in
    let ops = ref [] in
    let rec loop () =
      match next () with
      | Tsemi -> ()
      | Tword "T" ->
        let x = expect_int "T x" and y = expect_int "T y" in
        ops := `T (Vec.make (halve "T" x) (halve "T" y)) :: !ops;
        loop ()
      | Tword "MX" -> ops := `MX :: !ops; loop ()
      | Tword "MY" -> ops := `MY :: !ops; loop ()
      | Tword "R" ->
        let dx = expect_int "R dx" and dy = expect_int "R dy" in
        ops := `R (dx, dy) :: !ops;
        loop ()
      | _ -> fail "bad call transformation"
    in
    loop ();
    let def =
      match Hashtbl.find_opt by_id id with
      | Some c -> c
      | None -> fail (Printf.sprintf "call of undefined symbol %d" id)
    in
    let t = transform_of_ops (List.rev !ops) in
    Cell.instance ~orient:t.Transform.orient ~at:t.Transform.offset def
  in
  let current : Cell.t option ref = ref None in
  let current_id = ref 0 in
  let layer = ref Layer.Metal in
  let finished = ref false in
  while not !finished do
    match !toks with
    | [] -> finished := true
    | _ -> (
      match next () with
      | Tword "E" -> finished := true
      | Tword "DS" ->
        let id = expect_int "DS id" in
        let _a = expect_int "DS a" and _b = expect_int "DS b" in
        expect_semi ();
        if !current <> None then fail "nested DS";
        current := Some (Cell.create (Printf.sprintf "symbol-%d" id));
        current_id := id
      | Tword "DF" ->
        expect_semi ();
        (match !current with
        | None -> fail "DF without DS"
        | Some c ->
          Hashtbl.replace by_id !current_id c;
          Db.add db c;
          current := None)
      | Tint 9 -> (
        match next () with
        | Tword name ->
          expect_semi ();
          (match !current with
          | None -> fail "9 outside DS"
          | Some c ->
            let renamed = Cell.create name in
            renamed.Cell.objects <- c.Cell.objects;
            current := Some renamed)
        | _ -> fail "bad symbol name")
      | Tword "L" -> (
        match next () with
        | Tword lname ->
          expect_semi ();
          (match Layer.of_cif_name lname with
          | Some l -> layer := l
          | None -> fail ("unknown layer " ^ lname))
        | _ -> fail "bad layer name")
      | Tword "B" ->
        let w = expect_int "B w" and h = expect_int "B h" in
        let cx = expect_int "B cx" and cy = expect_int "B cy" in
        expect_semi ();
        (* In writer units: w = 2*width, cx = xmin + xmax (in lambda),
           so 2*xmin = cx - w/2 * ... ; concretely lambda xmin =
           (cx - width) / 2 with width = w/2. *)
        let w = halve "B" w and h = halve "B" h in
        if (cx - w) mod 2 <> 0 || (cy - h) mod 2 <> 0 then
          fail "B center off grid";
        let xmin = (cx - w) / 2 and ymin = (cy - h) / 2 in
        let b = Box.of_size ~origin:(Vec.make xmin ymin) ~width:w ~height:h in
        (match !current with
        | None -> fail "B outside DS"
        | Some c -> Cell.add_box c !layer b)
      | Tint 94 ->
        let text =
          match next () with
          | Tword text -> text
          | Tint n -> string_of_int n
          | Tsemi -> fail "bad label"
        in
        let x = expect_int "94 x" and y = expect_int "94 y" in
        expect_semi ();
        let at = Vec.make (halve "94" x) (halve "94" y) in
        (match !current with
        | None -> fail "94 outside DS"
        | Some c -> Cell.add_label c text at)
      | Tword "C" ->
        let inst = parse_call () in
        (match !current with
        | Some c -> Cell.add_instance_obj c inst
        | None ->
          top_used := true;
          Cell.add_instance_obj top inst)
      | Tint _ ->
        (* unknown numeric extension command: skip *)
        skip_to_semi ()
      | Tsemi -> ()
      | Tword w -> fail ("unknown command " ^ w))
  done;
  { db; top = (if !top_used then Some top else None) }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let roundtrip_equal a b =
  let fa = Flatten.flatten a and fb = Flatten.flatten b in
  let norm f =
    let keyed =
      Array.map
        (fun ((l : Layer.t), (b : Box.t)) -> (Layer.to_index l, b))
        f.Flatten.flat_boxes
    in
    Array.sort compare keyed;
    keyed
  in
  let labels f =
    let ls = Array.copy f.Flatten.flat_labels in
    Array.sort compare ls;
    ls
  in
  norm fa = norm fb && labels fa = labels fb

(** Human-readable layout reports.

    Summaries a designer working with the RSG would want after a
    generation run: the hierarchy tree with call counts, per-layer
    box counts and areas, and the headline totals.  Drives the CLI's
    [stats] subcommand and the examples. *)

open Rsg_geom

type layer_usage = {
  lu_layer : Layer.t;
  lu_boxes : int;        (** flattened box count *)
  lu_area : int;         (** summed box area (overlaps double-count) *)
}

type t = {
  r_cell : string;
  r_bbox : Box.t option;
  r_instances : int;
  r_leaf_instances : int;
  r_boxes : int;
  r_layers : layer_usage list;   (** only layers actually used, by index *)
  r_hierarchy : tree;
}

and tree = {
  t_name : string;
  t_count : int;           (** how many times called at this position *)
  t_children : tree list;  (** distinct subcells, by name *)
}

val of_cell : Cell.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line report: totals, layer table, hierarchy tree. *)

val pp_tree : Format.formatter -> tree -> unit

(** The cell definition table.

    Maps cell names to definitions.  The thesis implements this (like
    the interface table and environment frames) with hash tables for
    fast lookup during design-file execution, where variables routinely
    resolve to cell names (section 4.5, Table 4.1). *)

type t

exception Duplicate_cell of string
(** A different cell with this name is already registered. *)

val create : ?size:int -> unit -> t

val add : t -> Cell.t -> unit
(** Register a cell.  Raises {!Duplicate_cell} if a different cell
    with the same name is already present (re-adding the same cell is
    a no-op). *)

val find : t -> string -> Cell.t option

val find_exn : t -> string -> Cell.t
(** Raises [Not_found]. *)

val mem : t -> string -> bool

val names : t -> string list
(** Sorted cell names. *)

val cells : t -> Cell.t list
(** Cells sorted by name. *)

val length : t -> int

val fresh_name : t -> string -> string
(** [fresh_name db base] returns [base] if unused, otherwise
    [base-2], [base-3], ... *)

type t = (string, Cell.t) Hashtbl.t

exception Duplicate_cell of string

let create ?(size = 64) () = Hashtbl.create size

let add db (c : Cell.t) =
  match Hashtbl.find_opt db c.cname with
  | Some existing when existing == c -> ()
  | Some _ -> raise (Duplicate_cell c.cname)
  | None -> Hashtbl.add db c.cname c

let find db name = Hashtbl.find_opt db name

let find_exn db name = Hashtbl.find db name

let mem db name = Hashtbl.mem db name

let names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db []
  |> List.sort String.compare

let cells db = List.map (Hashtbl.find db) (names db)

let length db = Hashtbl.length db

let fresh_name db base =
  if not (mem db base) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s-%d" base i in
      if mem db candidate then go (i + 1) else candidate
    in
    go 2

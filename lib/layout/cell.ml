open Rsg_geom

type t = { cname : string; mutable objects : obj list }

and obj =
  | Obj_box of Layer.t * Box.t
  | Obj_label of label
  | Obj_instance of instance

and label = { text : string; at : Vec.t }

and instance = {
  point_of_call : Vec.t;
  orientation : Orient.t;
  def : t;
}

let create cname = { cname; objects = [] }

let add_box c layer box = c.objects <- Obj_box (layer, box) :: c.objects

let add_label c text at = c.objects <- Obj_label { text; at } :: c.objects

let instance ?(orient = Orient.north) ~at def =
  { point_of_call = at; orientation = orient; def }

let add_instance_obj c inst = c.objects <- Obj_instance inst :: c.objects

let add_instance c ?orient ~at def =
  let inst = instance ?orient ~at def in
  add_instance_obj c inst;
  inst

let transform_of_instance i =
  Transform.{ orient = i.orientation; offset = i.point_of_call }

let objects c = List.rev c.objects

let instances c =
  List.filter_map
    (function Obj_instance i -> Some i | Obj_box _ | Obj_label _ -> None)
    (objects c)

let boxes c =
  List.filter_map
    (function Obj_box (l, b) -> Some (l, b) | Obj_instance _ | Obj_label _ -> None)
    (objects c)

let labels c =
  List.filter_map
    (function Obj_label l -> Some l | Obj_box _ | Obj_instance _ -> None)
    (objects c)

let union_opt acc b =
  match acc with None -> Some b | Some a -> Some (Box.union a b)

let local_bbox c =
  List.fold_left
    (fun acc obj ->
      match obj with
      | Obj_box (_, b) -> union_opt acc b
      | Obj_label l -> union_opt acc (Box.of_corners l.at l.at)
      | Obj_instance _ -> acc)
    None c.objects

(* Recursive bounding box.  The [visiting] list detects instance cycles
   (which would make the layout infinite). *)
exception Instance_cycle of string

let rec bbox_rec visiting c =
  if List.memq c visiting then raise (Instance_cycle c.cname);
  List.fold_left
    (fun acc obj ->
      match obj with
      | Obj_box (_, b) -> union_opt acc b
      | Obj_label l -> union_opt acc (Box.of_corners l.at l.at)
      | Obj_instance i -> (
        match bbox_rec (c :: visiting) i.def with
        | None -> acc
        | Some b ->
          union_opt acc (Transform.apply_box (transform_of_instance i) b)))
    None c.objects

let bbox c = bbox_rec [] c

let instance_bbox i =
  match bbox i.def with
  | None -> None
  | Some b -> Some (Transform.apply_box (transform_of_instance i) b)

let equal_name a b = String.equal a.cname b.cname

let pp ppf c =
  let nb = List.length (boxes c)
  and ni = List.length (instances c)
  and nl = List.length (labels c) in
  Format.fprintf ppf "<cell %s: %d boxes, %d instances, %d labels>" c.cname nb
    ni nl

(** Re-expressing a whole hierarchy under a global orientation.

    [cell o c] returns a cell whose flattened geometry is exactly
    [o] applied to [c]'s: boxes are transformed, instance placements
    are conjugated ([T' = o o T o o^-1]) and definitions are rewritten
    recursively (shared subcells rewritten once).

    Uses include y-direction compaction (compact the transposed cell:
    the transposition [(x, y) -> (y, x)] is the D4 element
    [east o mirror-y]) and building mirrored cell libraries. *)

open Rsg_geom

val transpose : Orient.t
(** The reflection about the 45-degree line: (x, y) -> (y, x). *)

val cell : ?suffix:string -> Orient.t -> Cell.t -> Cell.t
(** [suffix] defaults to ["-" ^ Orient.name o]. *)

(** Cell definitions and instances (section 2.1).

    A cell is a named collection of objects: boxes on mask layers,
    labelled points, and instances of other cells.  An instance is the
    triplet (point of call, orientation, cell definition): the effect
    of an instance of B in A is to orient B about its own origin, place
    B's origin at the point of call in A's coordinate system, and add
    B's objects to A.

    Cells are deliberately mutable bags of objects — the RSG's
    [mk_cell] operator pushes completed instances onto the object list
    of the cell being built (section 4.4.3). *)

open Rsg_geom

type t = {
  cname : string;
  mutable objects : obj list;  (** in reverse insertion order *)
}

and obj =
  | Obj_box of Layer.t * Box.t
  | Obj_label of label
  | Obj_instance of instance

and label = {
  text : string;  (** interface index digits, or a point name *)
  at : Vec.t;
}

and instance = {
  point_of_call : Vec.t;    (** L' in the thesis *)
  orientation : Orient.t;   (** O' in the thesis *)
  def : t;                  (** pointer to the cell definition *)
}

val create : string -> t
(** Fresh empty cell. *)

val add_box : t -> Layer.t -> Box.t -> unit

val add_label : t -> string -> Vec.t -> unit

val add_instance : t -> ?orient:Orient.t -> at:Vec.t -> t -> instance
(** Adds an instance of the second cell into the first and returns it.
    [orient] defaults to north. *)

val add_instance_obj : t -> instance -> unit
(** Push an already-built instance record. *)

val instance : ?orient:Orient.t -> at:Vec.t -> t -> instance
(** Build an instance record without adding it to any cell. *)

val transform_of_instance : instance -> Transform.t
(** The isometry the instance applies to its definition's objects. *)

val objects : t -> obj list
(** Objects in insertion order. *)

val instances : t -> instance list
(** Just the instances, in insertion order. *)

val boxes : t -> (Layer.t * Box.t) list
(** Just the directly-contained boxes, in insertion order. *)

val labels : t -> label list

val local_bbox : t -> Box.t option
(** Bounding box of the cell's own boxes and labels only (no
    instances); [None] for an empty cell. *)

exception Instance_cycle of string
(** An instance chain revisits this cell, making the layout infinite. *)

val bbox : t -> Box.t option
(** Full recursive bounding box including instances.  Cycle-safe:
    recursion through an instance chain that revisits a cell raises
    {!Instance_cycle}. *)

val instance_bbox : instance -> Box.t option
(** Bounding box of an instance in the calling coordinate system. *)

val equal_name : t -> t -> bool
(** Cells compare by name (the cell table enforces unique names). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: name and object counts. *)

open Rsg_geom

(* (x,y) -> (y,x): reflect about y (x -> -x) then one clockwise
   quarter turn ((x,y) -> (y,-x)). *)
let transpose = Orient.make ~rot:1 ~refl:true

let cell ?suffix o root =
  let suffix =
    match suffix with Some s -> s | None -> "-" ^ Orient.name o
  in
  let oi = Orient.invert o in
  let seen : (string, Cell.t) Hashtbl.t = Hashtbl.create 16 in
  let rec go (c : Cell.t) =
    match Hashtbl.find_opt seen c.Cell.cname with
    | Some c' -> c'
    | None ->
      let c' = Cell.create (c.Cell.cname ^ suffix) in
      Hashtbl.add seen c.Cell.cname c';
      List.iter
        (fun obj ->
          match obj with
          | Cell.Obj_box (layer, b) -> Cell.add_box c' layer (Box.transform o b)
          | Cell.Obj_label l ->
            Cell.add_label c' l.Cell.text (Orient.apply o l.Cell.at)
          | Cell.Obj_instance i ->
            (* conjugate the placement so contents land at o(original) *)
            ignore
              (Cell.add_instance c'
                 ~orient:(Orient.compose (Orient.compose o i.Cell.orientation) oi)
                 ~at:(Orient.apply o i.Cell.point_of_call)
                 (go i.Cell.def)))
        (Cell.objects c);
      c'
  in
  go root

(** Lambda scaling.

    Chapter 6 motivates the leaf-cell compactor with technology
    transport: "a library of cells ... designed in an older technology
    can quickly become obsolete as new process technologies with
    smaller geometries become available."  Uniform lambda scaling is
    the trivial half of transport (Mead-Conway's premise); the
    compactor handles the non-uniform rest.  This module provides the
    trivial half exactly: every coordinate in a hierarchy multiplied
    by num/den, shared subcells scaled once. *)

open Rsg_geom

exception Inexact of { value : int; num : int; den : int }
(** A coordinate that [num/den] does not scale to an integer. *)

val vec : num:int -> den:int -> Vec.t -> Vec.t

val box : num:int -> den:int -> Box.t -> Box.t

val cell : ?suffix:string -> num:int -> ?den:int -> Cell.t -> Cell.t
(** Deep-scale a cell and everything it instantiates (each definition
    scaled once; sharing preserved).  Cell names get [suffix] (default
    ["-s<num>[d<den>]"]).  [den] defaults to 1.  Raises {!Inexact} for
    non-integral results and [Invalid_argument] for non-positive
    factors. *)

(** The native line-oriented layout format.

    Section 4.5: "Two layout file formats (CIF and DEF) are
    supported."  CIF is implemented faithfully in {!Cif}; DEF was an
    MIT-internal format whose specification is lost, so this is a
    plausible reconstruction: a simple hierarchical text format, one
    object per line, human-diffable, loss-free for everything the
    cell model holds.

    {v
    ; comment
    cell <name>
    b <layer> <xmin> <ymin> <xmax> <ymax>
    l <text> <x> <y>
    c <cellname> <x> <y> <orientation>
    end
    top <name>
    v} *)

type read_result = { db : Db.t; top : Cell.t option }

val to_string : Cell.t -> string
(** Children-first; a [top] line names the root. *)

val write_file : string -> Cell.t -> unit

val of_string : string -> read_result
(** Raises [Failure] with a line number on malformed input.  Cells
    must be defined before they are called. *)

val read_file : string -> read_result

open Rsg_geom

type layer_usage = { lu_layer : Layer.t; lu_boxes : int; lu_area : int }

type t = {
  r_cell : string;
  r_bbox : Box.t option;
  r_instances : int;
  r_leaf_instances : int;
  r_boxes : int;
  r_layers : layer_usage list;
  r_hierarchy : tree;
}

and tree = { t_name : string; t_count : int; t_children : tree list }

let rec tree_of ?(count = 1) (cell : Cell.t) =
  let groups : (string, int * Cell.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (i : Cell.instance) ->
      let name = i.Cell.def.Cell.cname in
      match Hashtbl.find_opt groups name with
      | Some (n, def) -> Hashtbl.replace groups name (n + 1, def)
      | None -> Hashtbl.replace groups name (1, i.Cell.def))
    (Cell.instances cell);
  let children =
    Hashtbl.fold (fun _ (n, def) acc -> tree_of ~count:n def :: acc) groups []
    |> List.sort (fun a b -> String.compare a.t_name b.t_name)
  in
  { t_name = cell.Cell.cname; t_count = count; t_children = children }

let of_cell cell =
  let protos = Flatten.prototypes cell in
  let flat = Flatten.protos_flat protos in
  let stats = Flatten.protos_stats protos in
  let usage : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (layer, box) ->
      let k = Layer.to_index layer in
      let boxes, area =
        Option.value ~default:(0, 0) (Hashtbl.find_opt usage k)
      in
      Hashtbl.replace usage k (boxes + 1, area + Box.area box))
    flat.Flatten.flat_boxes;
  let layers =
    Hashtbl.fold
      (fun k (boxes, area) acc ->
        { lu_layer = Layer.of_index_exn k; lu_boxes = boxes; lu_area = area }
        :: acc)
      usage []
    |> List.sort (fun a b -> Layer.compare a.lu_layer b.lu_layer)
  in
  { r_cell = cell.Cell.cname;
    r_bbox = stats.Flatten.bbox;
    r_instances = stats.Flatten.n_instances;
    r_leaf_instances = stats.Flatten.n_leaf_instances;
    r_boxes = stats.Flatten.n_boxes;
    r_layers = layers;
    r_hierarchy = tree_of cell }

(* one shared pad buffer, extended two spaces per level on the way
   down and truncated on the way up: deep hierarchies cost one buffer,
   not a fresh ever-longer indent string per level *)
let pp_tree_indent ppf base tree =
  let pad = Buffer.create 32 in
  Buffer.add_string pad base;
  let rec walk tree =
    Format.fprintf ppf "%s%s" (Buffer.contents pad) tree.t_name;
    if tree.t_count > 1 then Format.fprintf ppf " x%d" tree.t_count;
    Format.pp_print_newline ppf ();
    let depth = Buffer.length pad in
    Buffer.add_string pad "  ";
    List.iter walk tree.t_children;
    Buffer.truncate pad depth
  in
  walk tree

let pp_tree ppf tree = pp_tree_indent ppf "" tree

let pp ppf r =
  Format.fprintf ppf "cell %s@." r.r_cell;
  (match r.r_bbox with
  | Some b ->
    Format.fprintf ppf "  bbox       %a (%d x %d, area %d)@." Box.pp b
      (Box.width b) (Box.height b) (Box.area b)
  | None -> Format.fprintf ppf "  bbox       (empty)@.");
  Format.fprintf ppf "  instances  %d (%d leaf)@." r.r_instances
    r.r_leaf_instances;
  Format.fprintf ppf "  boxes      %d@." r.r_boxes;
  if r.r_layers <> [] then begin
    Format.fprintf ppf "  %-12s %8s %10s %9s@." "layer" "boxes" "area"
      "of bbox";
    let denom =
      match r.r_bbox with
      | Some b when Box.area b > 0 -> float_of_int (Box.area b)
      | _ -> nan
    in
    List.iter
      (fun u ->
        Format.fprintf ppf "  %-12s %8d %10d %8.1f%%@." (Layer.name u.lu_layer)
          u.lu_boxes u.lu_area
          (100.0 *. float_of_int u.lu_area /. denom))
      r.r_layers
  end;
  Format.fprintf ppf "  hierarchy:@.";
  pp_tree_indent ppf "    " r.r_hierarchy

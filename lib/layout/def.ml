open Rsg_geom

type read_result = { db : Db.t; top : Cell.t option }

let ordered_cells root =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit (c : Cell.t) =
    if not (Hashtbl.mem seen c.Cell.cname) then begin
      Hashtbl.add seen c.Cell.cname ();
      List.iter (fun (i : Cell.instance) -> visit i.Cell.def) (Cell.instances c);
      order := c :: !order
    end
  in
  visit root;
  List.rev !order

let check_name what name =
  if name = "" || String.exists (fun c -> c = ' ' || c = '\n' || c = '\t') name
  then failwith (Printf.sprintf "Def: %s name %S not writable" what name)

let to_string root =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "; rsg def 1\n";
  List.iter
    (fun (c : Cell.t) ->
      check_name "cell" c.Cell.cname;
      Buffer.add_string buf (Printf.sprintf "cell %s\n" c.Cell.cname);
      List.iter
        (fun obj ->
          match obj with
          | Cell.Obj_box (layer, b) ->
            Buffer.add_string buf
              (Printf.sprintf "b %s %d %d %d %d\n" (Layer.name layer)
                 b.Box.xmin b.Box.ymin b.Box.xmax b.Box.ymax)
          | Cell.Obj_label l ->
            check_name "label" l.Cell.text;
            Buffer.add_string buf
              (Printf.sprintf "l %s %d %d\n" l.Cell.text l.Cell.at.Vec.x
                 l.Cell.at.Vec.y)
          | Cell.Obj_instance i ->
            Buffer.add_string buf
              (Printf.sprintf "c %s %d %d %s\n" i.Cell.def.Cell.cname
                 i.Cell.point_of_call.Vec.x i.Cell.point_of_call.Vec.y
                 (Orient.name i.Cell.orientation)))
        (Cell.objects c);
      Buffer.add_string buf "end\n")
    (ordered_cells root);
  Buffer.add_string buf (Printf.sprintf "top %s\n" root.Cell.cname);
  Buffer.contents buf

let write_file path cell =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string cell))

let of_string src =
  let db = Db.create () in
  let top = ref None in
  let current : Cell.t option ref = ref None in
  let fail line fmt =
    Format.kasprintf (fun s -> failwith (Printf.sprintf "Def line %d: %s" line s)) fmt
  in
  let int_of line what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail line "bad integer for %s: %S" what s
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let s = String.trim raw in
      if s = "" || s.[0] = ';' then ()
      else
        match String.split_on_char ' ' s |> List.filter (( <> ) "") with
        | [ "cell"; name ] ->
          if !current <> None then fail line "nested cell";
          current := Some (Cell.create name)
        | [ "end" ] -> (
          match !current with
          | Some c ->
            Db.add db c;
            current := None
          | None -> fail line "end without cell")
        | [ "b"; layer; x0; y0; x1; y1 ] -> (
          match (!current, Layer.of_name layer) with
          | Some c, Some l ->
            Cell.add_box c l
              (Box.make ~xmin:(int_of line "xmin" x0)
                 ~ymin:(int_of line "ymin" y0) ~xmax:(int_of line "xmax" x1)
                 ~ymax:(int_of line "ymax" y1))
          | None, _ -> fail line "box outside cell"
          | _, None -> fail line "unknown layer %s" layer)
        | [ "l"; text; x; y ] -> (
          match !current with
          | Some c ->
            Cell.add_label c text
              (Vec.make (int_of line "x" x) (int_of line "y" y))
          | None -> fail line "label outside cell")
        | [ "c"; name; x; y; orient ] -> (
          match !current with
          | None -> fail line "call outside cell"
          | Some c -> (
            match (Db.find db name, Orient.of_name orient) with
            | Some def, Some o ->
              ignore
                (Cell.add_instance c ~orient:o
                   ~at:(Vec.make (int_of line "x" x) (int_of line "y" y))
                   def)
            | None, _ -> fail line "call of undefined cell %s" name
            | _, None -> fail line "bad orientation %s" orient))
        | [ "top"; name ] -> (
          match Db.find db name with
          | Some c -> top := Some c
          | None -> fail line "top names undefined cell %s" name)
        | _ -> fail line "unrecognised line %S" s)
    (String.split_on_char '\n' src);
  if !current <> None then failwith "Def: unterminated cell";
  { db; top = !top }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

open Rsg_geom

type flat = {
  flat_boxes : (Layer.t * Box.t) list;
  flat_labels : (string * Vec.t) list;
}

let rec fold_objects ~max_depth ~depth t (cell : Cell.t) ~box ~label ~inst acc
    =
  if depth > max_depth then
    failwith ("Flatten: max depth exceeded in cell " ^ cell.Cell.cname);
  List.fold_left
    (fun acc obj ->
      match obj with
      | Cell.Obj_box (l, b) -> box acc l (Transform.apply_box t b)
      | Cell.Obj_label l -> label acc l.Cell.text (Transform.apply t l.Cell.at)
      | Cell.Obj_instance i ->
        let t' = Transform.compose t (Cell.transform_of_instance i) in
        let acc = inst acc i.Cell.def t' in
        fold_objects ~max_depth ~depth:(depth + 1) t' i.Cell.def ~box ~label
          ~inst acc)
    acc (Cell.objects cell)

let flatten ?(max_depth = 64) cell =
  let boxes, labels =
    fold_objects ~max_depth ~depth:0 Transform.identity cell
      ~box:(fun (bs, ls) l b -> ((l, b) :: bs, ls))
      ~label:(fun (bs, ls) text at -> (bs, (text, at) :: ls))
      ~inst:(fun acc _ _ -> acc)
      ([], [])
  in
  { flat_boxes = List.rev boxes; flat_labels = List.rev labels }

let flat_bbox f =
  List.fold_left
    (fun acc (_, b) ->
      match acc with None -> Some b | Some a -> Some (Box.union a b))
    None f.flat_boxes

type stats = {
  n_boxes : int;
  n_instances : int;
  n_leaf_instances : int;
  by_cell : (string * int) list;
  box_area : int;
  bbox : Box.t option;
}

let is_leaf (c : Cell.t) = Cell.instances c = []

let stats ?(max_depth = 64) cell =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bump name =
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  let n_boxes = ref 0
  and n_instances = ref 0
  and n_leaf = ref 0
  and area = ref 0
  and bb = ref None in
  let () =
    fold_objects ~max_depth ~depth:0 Transform.identity cell
      ~box:(fun () _ b ->
        incr n_boxes;
        area := !area + Box.area b;
        bb := (match !bb with None -> Some b | Some a -> Some (Box.union a b)))
      ~label:(fun () _ _ -> ())
      ~inst:(fun () def _ ->
        incr n_instances;
        if is_leaf def then incr n_leaf;
        bump def.Cell.cname)
      ()
  in
  let by_cell =
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { n_boxes = !n_boxes;
    n_instances = !n_instances;
    n_leaf_instances = !n_leaf;
    by_cell;
    box_area = !area;
    bbox = !bb }

let instance_placements ?(max_depth = 64) cell =
  let acc =
    fold_objects ~max_depth ~depth:0 Transform.identity cell
      ~box:(fun acc _ _ -> acc)
      ~label:(fun acc _ _ -> acc)
      ~inst:(fun acc def t -> (def.Cell.cname, t) :: acc)
      []
  in
  List.rev acc

open Rsg_geom

exception Depth_exceeded of { cell : string; max_depth : int }

type flat = {
  flat_boxes : (Layer.t * Box.t) array;
  flat_labels : (string * Vec.t) array;
  flat_bbox : Box.t option;
}

let flat_bbox f = f.flat_bbox

(* Growable array; the first pushed element doubles as the fill value,
   so no dummy is ever observable. *)
module Gbuf = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push b x =
    let cap = Array.length b.data in
    if b.len = cap then begin
      let data = Array.make (max 16 (2 * cap)) x in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let contents b = Array.sub b.data 0 b.len
end

let union_opt acc b =
  match acc with None -> Some b | Some a -> Some (Box.union a b)

(* Map keyed by physical cell identity with O(1) average lookup: a
   hashtable on the cell name holding the (rare) physically distinct
   cells that share it.  Plain [Hashtbl] on [Cell.t] would hash and
   compare whole object graphs; assoc lists would be quadratic on deep
   hierarchies. *)
module Idmap = struct
  type 'a t = (string, (Cell.t * 'a) list) Hashtbl.t

  let create () : 'a t = Hashtbl.create 64

  let find_opt (m : 'a t) (c : Cell.t) =
    match Hashtbl.find_opt m c.Cell.cname with
    | None -> None
    | Some l -> List.assq_opt c l

  let find m c =
    match find_opt m c with Some v -> v | None -> raise Not_found

  let mem m c = find_opt m c <> None

  let add (m : 'a t) (c : Cell.t) v =
    let l = Option.value ~default:[] (Hashtbl.find_opt m c.Cell.cname) in
    Hashtbl.replace m c.Cell.cname ((c, v) :: l)
end

(* Pre-order traversal with an explicit work stack, so hierarchy depth
   is bounded only by [max_depth], never by the OCaml call stack. *)
let fold_objects ~max_depth t0 (cell : Cell.t) ~box ~label ~inst acc =
  let rec go acc = function
    | [] -> acc
    | (_, _, []) :: stack -> go acc stack
    | (t, depth, obj :: rest) :: stack -> (
      let stack = (t, depth, rest) :: stack in
      match obj with
      | Cell.Obj_box (l, b) -> go (box acc l (Transform.apply_box t b)) stack
      | Cell.Obj_label l ->
        go (label acc l.Cell.text (Transform.apply t l.Cell.at)) stack
      | Cell.Obj_instance i ->
        if depth + 1 > max_depth then
          raise (Depth_exceeded { cell = i.Cell.def.Cell.cname; max_depth });
        let t' = Transform.compose t (Cell.transform_of_instance i) in
        let acc = inst acc i.Cell.def t' in
        go acc ((t', depth + 1, Cell.objects i.Cell.def) :: stack))
  in
  go acc [ (t0, 0, Cell.objects cell) ]

let flatten ?(max_depth = 64) cell =
  let boxes = Gbuf.create () and labels = Gbuf.create () in
  let bb = ref None in
  fold_objects ~max_depth Transform.identity cell
    ~box:(fun () l b ->
      Gbuf.push boxes (l, b);
      bb := union_opt !bb b)
    ~label:(fun () text at -> Gbuf.push labels (text, at))
    ~inst:(fun () _ _ -> ())
    ();
  { flat_boxes = Gbuf.contents boxes;
    flat_labels = Gbuf.contents labels;
    flat_bbox = !bb }

type stats = {
  n_boxes : int;
  n_instances : int;
  n_leaf_instances : int;
  by_cell : (string * int) list;
  box_area : int;
  bbox : Box.t option;
}

let is_leaf (c : Cell.t) = Cell.instances c = []

(* ------------------------------------------------------------------ *)
(* Prototype cache                                                    *)
(* ------------------------------------------------------------------ *)

(* The generator's outputs are massively regular: thousands of
   instances of a handful of distinct celltypes.  [prototypes] exploits
   that by flattening every distinct cell exactly once into local
   coordinates (children before parents, so a parent materialises by
   composing its children's already-flat arrays with each instance
   transform), memoizing the 8 D4 variants of each array on first use.
   Cells are identified physically ([==]): two different cells that
   happen to share a name never alias. *)

type summary = {
  s_boxes : int;
  s_area : int;
  s_instances : int;
  s_leaf_instances : int;
  s_bbox : Box.t option;
  s_by_cell : (string * int) list; (* sorted by name *)
}

type proto = {
  pid : int; (* postorder index, key for the variant cache *)
  p_boxes : (Layer.t * Box.t) array; (* full flat subtree, local coords *)
  p_labels : (string * Vec.t) array;
}

type protos = {
  pt_root : Cell.t;
  pt_order : Cell.t list; (* distinct cells, children before parents *)
  pt_summaries : summary Idmap.t;
  pt_variants : (int * Orient.t, (Layer.t * Box.t) array) Hashtbl.t;
  mutable pt_protos : proto Idmap.t option; (* memoized, filled on demand *)
  mutable pt_pids : int Idmap.t option; (* cell -> postorder index *)
  mutable pt_flat : flat option;
  mutable pt_hashes : string Idmap.t option; (* raw subtree digests *)
  pt_seeds :
    (string, (Layer.t * Box.t) array * (string * Vec.t) array) Hashtbl.t;
      (* subtree digest -> pre-flattened local arrays, consulted by
         [proto_of] so clean subtrees skip recomposition *)
}

(* Distinct cells reachable from [root], children before parents.
   Iterative: the work stack holds (cell, depth, unvisited child defs).
   Depth along first-discovery paths is checked against [max_depth], so
   instance cycles fail fast just like the naive traversal. *)
let postorder ~max_depth root =
  let child_defs c =
    List.map (fun (i : Cell.instance) -> i.Cell.def) (Cell.instances c)
  in
  let done_ : unit Idmap.t = Idmap.create () in
  let order = ref [] in
  let rec go = function
    | [] -> ()
    | (c, _, []) :: stack ->
      if not (Idmap.mem done_ c) then begin
        Idmap.add done_ c ();
        order := c :: !order
      end;
      go stack
    | (c, depth, d :: rest) :: stack ->
      let stack = (c, depth, rest) :: stack in
      if Idmap.mem done_ d then go stack
      else begin
        if depth + 1 > max_depth then
          raise (Depth_exceeded { cell = d.Cell.cname; max_depth });
        go ((d, depth + 1, child_defs d) :: stack)
      end
  in
  go [ (root, 0, child_defs root) ];
  List.rev !order

(* Per-cell totals without materialising any geometry: a parent's
   summary is its own objects plus its children's summaries, one
   instance at a time — O(distinct cells + instances), independent of
   the flattened box count. *)
let summarize order =
  let summaries : summary Idmap.t = Idmap.create () in
  List.iter
    (fun (c : Cell.t) ->
      let boxes = ref 0 and area = ref 0 and bb = ref None in
      let instances = ref 0 and leaves = ref 0 in
      let census : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let bump name n =
        Hashtbl.replace census name
          (n + Option.value ~default:0 (Hashtbl.find_opt census name))
      in
      List.iter
        (fun obj ->
          match obj with
          | Cell.Obj_box (_, b) ->
            incr boxes;
            area := !area + Box.area b;
            bb := union_opt !bb b
          | Cell.Obj_label _ -> ()
          | Cell.Obj_instance i ->
            let s = Idmap.find summaries i.Cell.def in
            boxes := !boxes + s.s_boxes;
            area := !area + s.s_area;
            instances := !instances + 1 + s.s_instances;
            leaves :=
              !leaves
              + (if is_leaf i.Cell.def then 1 else 0)
              + s.s_leaf_instances;
            bump i.Cell.def.Cell.cname 1;
            List.iter (fun (n, k) -> bump n k) s.s_by_cell;
            (match s.s_bbox with
            | None -> ()
            | Some b ->
              bb :=
                union_opt !bb
                  (Transform.apply_box (Cell.transform_of_instance i) b)))
        (Cell.objects c);
      let by_cell =
        Hashtbl.fold (fun name n acc -> (name, n) :: acc) census []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Idmap.add summaries c
        { s_boxes = !boxes;
          s_area = !area;
          s_instances = !instances;
          s_leaf_instances = !leaves;
          s_bbox = !bb;
          s_by_cell = by_cell })
    order;
  summaries

let prototypes ?(max_depth = 64) cell =
  let order = postorder ~max_depth cell in
  { pt_root = cell;
    pt_order = order;
    pt_summaries = summarize order;
    pt_variants = Hashtbl.create 16;
    pt_protos = None;
    pt_pids = None;
    pt_flat = None;
    pt_hashes = None;
    pt_seeds = Hashtbl.create 16 }

let distinct_cells p = List.length p.pt_order

let protos_order p = p.pt_order

let protos_root p = p.pt_root

(* ------------------------------------------------------------------ *)
(* Subtree content hashing                                            *)
(* ------------------------------------------------------------------ *)

(* Digest of a celltype's full geometric content: its own objects in
   object order, with every instance contributing its child's digest
   (chained postorder, so the hash covers the transitive subtree).
   The cell {e name} is deliberately excluded — renaming a cell, or
   two differently-named cells with identical content, hash alike, so
   cached per-prototype artifacts survive renames and are shared
   across congruent celltypes.  Coordinates are written in decimal
   with separators; tags keep object kinds from colliding. *)
let compute_hashes order =
  let hashes : string Idmap.t = Idmap.create () in
  List.iter
    (fun (c : Cell.t) ->
      let buf = Buffer.create 512 in
      let int v =
        Buffer.add_string buf (string_of_int v);
        Buffer.add_char buf ' '
      in
      List.iter
        (fun obj ->
          match obj with
          | Cell.Obj_box (l, b) ->
            Buffer.add_char buf 'B';
            int (Layer.to_index l);
            int b.Box.xmin;
            int b.Box.ymin;
            int b.Box.xmax;
            int b.Box.ymax
          | Cell.Obj_label l ->
            Buffer.add_char buf 'L';
            int (String.length l.Cell.text);
            Buffer.add_string buf l.Cell.text;
            int l.Cell.at.Vec.x;
            int l.Cell.at.Vec.y
          | Cell.Obj_instance i ->
            Buffer.add_char buf 'I';
            Buffer.add_string buf (Idmap.find hashes i.Cell.def);
            int (Orient.to_index i.Cell.orientation);
            int i.Cell.point_of_call.Vec.x;
            int i.Cell.point_of_call.Vec.y)
        (Cell.objects c);
      Idmap.add hashes c (Digest.string (Buffer.contents buf)))
    order;
  hashes

let hashes_of p =
  match p.pt_hashes with
  | Some h -> h
  | None ->
    let h = compute_hashes p.pt_order in
    p.pt_hashes <- Some h;
    h

let subtree_digest p c = Idmap.find (hashes_of p) c

let subtree_hex p c = Digest.to_hex (subtree_digest p c)

let subtree_hashes p =
  let h = hashes_of p in
  List.map (fun c -> (c, Digest.to_hex (Idmap.find h c))) p.pt_order

let seed_proto p ~hash ~boxes ~labels =
  if p.pt_protos <> None then
    invalid_arg "Flatten.seed_proto: prototype arrays already built";
  Hashtbl.replace p.pt_seeds hash (boxes, labels)

let variant p (child : proto) orient =
  if Orient.equal orient Orient.north then child.p_boxes
  else
    let key = (child.pid, orient) in
    match Hashtbl.find_opt p.pt_variants key with
    | Some a -> a
    | None ->
      let a =
        Array.map (fun (l, b) -> (l, Box.transform orient b)) child.p_boxes
      in
      Hashtbl.add p.pt_variants key a;
      a

let pids_of p =
  match p.pt_pids with
  | Some m -> m
  | None ->
    let m : int Idmap.t = Idmap.create () in
    List.iteri (fun idx c -> Idmap.add m c idx) p.pt_order;
    p.pt_pids <- Some m;
    m

(* Compose one celltype's prototype arrays, memoized.  Children
   compose first (recursively — depth is bounded by [max_depth]); a
   cell whose subtree digest was seeded adopts the seeded arrays
   without visiting its children at all.  Demand-driven on purpose:
   after an incremental edit the DRC only asks for the dirty spine
   plus its immediate children, and composing everything else —
   including the root's O(design) flat — would dominate the run. *)
let rec proto_of p (c : Cell.t) =
  let flats =
    match p.pt_protos with
    | Some m -> m
    | None ->
      let m : proto Idmap.t = Idmap.create () in
      p.pt_protos <- Some m;
      m
  in
  match Idmap.find_opt flats c with
  | Some pr -> pr
  | None ->
    let pid = Idmap.find (pids_of p) c in
    let seeded =
      if Hashtbl.length p.pt_seeds = 0 then None
      else Hashtbl.find_opt p.pt_seeds (Idmap.find (hashes_of p) c)
    in
    let pr =
      match seeded with
      | Some (boxes, labels) -> { pid; p_boxes = boxes; p_labels = labels }
      | None ->
        let boxes = Gbuf.create () and labels = Gbuf.create () in
        List.iter
          (fun obj ->
            match obj with
            | Cell.Obj_box (l, b) -> Gbuf.push boxes (l, b)
            | Cell.Obj_label l -> Gbuf.push labels (l.Cell.text, l.Cell.at)
            | Cell.Obj_instance i ->
              let child = proto_of p i.Cell.def in
              let ti = Cell.transform_of_instance i in
              let off = ti.Transform.offset in
              Array.iter
                (fun (l, b) -> Gbuf.push boxes (l, Box.translate off b))
                (variant p child i.Cell.orientation);
              Array.iter
                (fun (text, at) ->
                  Gbuf.push labels (text, Transform.apply ti at))
                child.p_labels)
          (Cell.objects c);
        { pid; p_boxes = Gbuf.contents boxes; p_labels = Gbuf.contents labels }
    in
    Idmap.add flats c pr;
    pr

let protos_flat p =
  match p.pt_flat with
  | Some f -> f
  | None ->
    let pr = proto_of p p.pt_root in
    let s = Idmap.find p.pt_summaries p.pt_root in
    let f =
      { flat_boxes = pr.p_boxes;
        flat_labels = pr.p_labels;
        flat_bbox = s.s_bbox }
    in
    p.pt_flat <- Some f;
    f

let proto_flat p c =
  let pr = proto_of p c in
  let s = Idmap.find p.pt_summaries c in
  { flat_boxes = pr.p_boxes;
    flat_labels = pr.p_labels;
    flat_bbox = s.s_bbox }

let cell_bbox p c = (Idmap.find p.pt_summaries c).s_bbox

let protos_stats p =
  let s = Idmap.find p.pt_summaries p.pt_root in
  { n_boxes = s.s_boxes;
    n_instances = s.s_instances;
    n_leaf_instances = s.s_leaf_instances;
    by_cell = s.s_by_cell;
    box_area = s.s_area;
    bbox = s.s_bbox }

let stats ?max_depth cell = protos_stats (prototypes ?max_depth cell)

let instance_placements ?(max_depth = 64) cell =
  let acc =
    fold_objects ~max_depth Transform.identity cell
      ~box:(fun acc _ _ -> acc)
      ~label:(fun acc _ _ -> acc)
      ~inst:(fun acc def t -> (def.Cell.cname, t) :: acc)
      []
  in
  List.rev acc

open Rsg_geom

exception Depth_exceeded of { cell : string; max_depth : int }

type flat = {
  flat_boxes : (Layer.t * Box.t) array;
  flat_labels : (string * Vec.t) array;
  flat_bbox : Box.t option;
}

let flat_bbox f = f.flat_bbox

(* Growable array; the first pushed element doubles as the fill value,
   so no dummy is ever observable. *)
module Gbuf = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push b x =
    let cap = Array.length b.data in
    if b.len = cap then begin
      let data = Array.make (max 16 (2 * cap)) x in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let contents b = Array.sub b.data 0 b.len
end

let union_opt acc b =
  match acc with None -> Some b | Some a -> Some (Box.union a b)

(* Map keyed by physical cell identity with O(1) average lookup: a
   hashtable on the cell name holding the (rare) physically distinct
   cells that share it.  Plain [Hashtbl] on [Cell.t] would hash and
   compare whole object graphs; assoc lists would be quadratic on deep
   hierarchies. *)
module Idmap = struct
  type 'a t = (string, (Cell.t * 'a) list) Hashtbl.t

  let create () : 'a t = Hashtbl.create 64

  let find_opt (m : 'a t) (c : Cell.t) =
    match Hashtbl.find_opt m c.Cell.cname with
    | None -> None
    | Some l -> List.assq_opt c l

  let find m c =
    match find_opt m c with Some v -> v | None -> raise Not_found

  let mem m c = find_opt m c <> None

  let add (m : 'a t) (c : Cell.t) v =
    let l = Option.value ~default:[] (Hashtbl.find_opt m c.Cell.cname) in
    Hashtbl.replace m c.Cell.cname ((c, v) :: l)
end

(* Pre-order traversal with an explicit work stack, so hierarchy depth
   is bounded only by [max_depth], never by the OCaml call stack. *)
let fold_objects ~max_depth t0 (cell : Cell.t) ~box ~label ~inst acc =
  let rec go acc = function
    | [] -> acc
    | (_, _, []) :: stack -> go acc stack
    | (t, depth, obj :: rest) :: stack -> (
      let stack = (t, depth, rest) :: stack in
      match obj with
      | Cell.Obj_box (l, b) -> go (box acc l (Transform.apply_box t b)) stack
      | Cell.Obj_label l ->
        go (label acc l.Cell.text (Transform.apply t l.Cell.at)) stack
      | Cell.Obj_instance i ->
        if depth + 1 > max_depth then
          raise (Depth_exceeded { cell = i.Cell.def.Cell.cname; max_depth });
        let t' = Transform.compose t (Cell.transform_of_instance i) in
        let acc = inst acc i.Cell.def t' in
        go acc ((t', depth + 1, Cell.objects i.Cell.def) :: stack))
  in
  go acc [ (t0, 0, Cell.objects cell) ]

let flatten ?(max_depth = 64) cell =
  let boxes = Gbuf.create () and labels = Gbuf.create () in
  let bb = ref None in
  fold_objects ~max_depth Transform.identity cell
    ~box:(fun () l b ->
      Gbuf.push boxes (l, b);
      bb := union_opt !bb b)
    ~label:(fun () text at -> Gbuf.push labels (text, at))
    ~inst:(fun () _ _ -> ())
    ();
  { flat_boxes = Gbuf.contents boxes;
    flat_labels = Gbuf.contents labels;
    flat_bbox = !bb }

type stats = {
  n_boxes : int;
  n_instances : int;
  n_leaf_instances : int;
  by_cell : (string * int) list;
  box_area : int;
  bbox : Box.t option;
}

let is_leaf (c : Cell.t) = Cell.instances c = []

(* ------------------------------------------------------------------ *)
(* Prototype cache                                                    *)
(* ------------------------------------------------------------------ *)

(* The generator's outputs are massively regular: thousands of
   instances of a handful of distinct celltypes.  [prototypes] exploits
   that by flattening every distinct cell exactly once into local
   coordinates (children before parents, so a parent materialises by
   composing its children's already-flat arrays with each instance
   transform), memoizing the 8 D4 variants of each array on first use.
   Cells are identified physically ([==]): two different cells that
   happen to share a name never alias. *)

type summary = {
  s_boxes : int;
  s_area : int;
  s_instances : int;
  s_leaf_instances : int;
  s_bbox : Box.t option;
  s_by_cell : (string * int) list; (* sorted by name *)
}

type proto = {
  pid : int; (* postorder index, key for the variant cache *)
  p_boxes : (Layer.t * Box.t) array; (* full flat subtree, local coords *)
  p_labels : (string * Vec.t) array;
}

type protos = {
  pt_root : Cell.t;
  pt_order : Cell.t list; (* distinct cells, children before parents *)
  pt_summaries : summary Idmap.t;
  pt_variants : (int * Orient.t, (Layer.t * Box.t) array) Hashtbl.t;
  mutable pt_protos : proto Idmap.t option; (* built on demand *)
  mutable pt_flat : flat option;
}

(* Distinct cells reachable from [root], children before parents.
   Iterative: the work stack holds (cell, depth, unvisited child defs).
   Depth along first-discovery paths is checked against [max_depth], so
   instance cycles fail fast just like the naive traversal. *)
let postorder ~max_depth root =
  let child_defs c =
    List.map (fun (i : Cell.instance) -> i.Cell.def) (Cell.instances c)
  in
  let done_ : unit Idmap.t = Idmap.create () in
  let order = ref [] in
  let rec go = function
    | [] -> ()
    | (c, _, []) :: stack ->
      if not (Idmap.mem done_ c) then begin
        Idmap.add done_ c ();
        order := c :: !order
      end;
      go stack
    | (c, depth, d :: rest) :: stack ->
      let stack = (c, depth, rest) :: stack in
      if Idmap.mem done_ d then go stack
      else begin
        if depth + 1 > max_depth then
          raise (Depth_exceeded { cell = d.Cell.cname; max_depth });
        go ((d, depth + 1, child_defs d) :: stack)
      end
  in
  go [ (root, 0, child_defs root) ];
  List.rev !order

(* Per-cell totals without materialising any geometry: a parent's
   summary is its own objects plus its children's summaries, one
   instance at a time — O(distinct cells + instances), independent of
   the flattened box count. *)
let summarize order =
  let summaries : summary Idmap.t = Idmap.create () in
  List.iter
    (fun (c : Cell.t) ->
      let boxes = ref 0 and area = ref 0 and bb = ref None in
      let instances = ref 0 and leaves = ref 0 in
      let census : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let bump name n =
        Hashtbl.replace census name
          (n + Option.value ~default:0 (Hashtbl.find_opt census name))
      in
      List.iter
        (fun obj ->
          match obj with
          | Cell.Obj_box (_, b) ->
            incr boxes;
            area := !area + Box.area b;
            bb := union_opt !bb b
          | Cell.Obj_label _ -> ()
          | Cell.Obj_instance i ->
            let s = Idmap.find summaries i.Cell.def in
            boxes := !boxes + s.s_boxes;
            area := !area + s.s_area;
            instances := !instances + 1 + s.s_instances;
            leaves :=
              !leaves
              + (if is_leaf i.Cell.def then 1 else 0)
              + s.s_leaf_instances;
            bump i.Cell.def.Cell.cname 1;
            List.iter (fun (n, k) -> bump n k) s.s_by_cell;
            (match s.s_bbox with
            | None -> ()
            | Some b ->
              bb :=
                union_opt !bb
                  (Transform.apply_box (Cell.transform_of_instance i) b)))
        (Cell.objects c);
      let by_cell =
        Hashtbl.fold (fun name n acc -> (name, n) :: acc) census []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Idmap.add summaries c
        { s_boxes = !boxes;
          s_area = !area;
          s_instances = !instances;
          s_leaf_instances = !leaves;
          s_bbox = !bb;
          s_by_cell = by_cell })
    order;
  summaries

let prototypes ?(max_depth = 64) cell =
  let order = postorder ~max_depth cell in
  { pt_root = cell;
    pt_order = order;
    pt_summaries = summarize order;
    pt_variants = Hashtbl.create 16;
    pt_protos = None;
    pt_flat = None }

let distinct_cells p = List.length p.pt_order

let variant p (child : proto) orient =
  if Orient.equal orient Orient.north then child.p_boxes
  else
    let key = (child.pid, orient) in
    match Hashtbl.find_opt p.pt_variants key with
    | Some a -> a
    | None ->
      let a =
        Array.map (fun (l, b) -> (l, Box.transform orient b)) child.p_boxes
      in
      Hashtbl.add p.pt_variants key a;
      a

let build_protos p =
  match p.pt_protos with
  | Some flats -> flats
  | None ->
    let flats : proto Idmap.t = Idmap.create () in
    List.iteri
      (fun idx (c : Cell.t) ->
        let boxes = Gbuf.create () and labels = Gbuf.create () in
        List.iter
          (fun obj ->
            match obj with
            | Cell.Obj_box (l, b) -> Gbuf.push boxes (l, b)
            | Cell.Obj_label l -> Gbuf.push labels (l.Cell.text, l.Cell.at)
            | Cell.Obj_instance i ->
              let child = Idmap.find flats i.Cell.def in
              let ti = Cell.transform_of_instance i in
              let off = ti.Transform.offset in
              Array.iter
                (fun (l, b) -> Gbuf.push boxes (l, Box.translate off b))
                (variant p child i.Cell.orientation);
              Array.iter
                (fun (text, at) ->
                  Gbuf.push labels (text, Transform.apply ti at))
                child.p_labels)
          (Cell.objects c);
        Idmap.add flats c
          { pid = idx;
            p_boxes = Gbuf.contents boxes;
            p_labels = Gbuf.contents labels })
      p.pt_order;
    p.pt_protos <- Some flats;
    flats

let protos_flat p =
  match p.pt_flat with
  | Some f -> f
  | None ->
    let pr = Idmap.find (build_protos p) p.pt_root in
    let s = Idmap.find p.pt_summaries p.pt_root in
    let f =
      { flat_boxes = pr.p_boxes;
        flat_labels = pr.p_labels;
        flat_bbox = s.s_bbox }
    in
    p.pt_flat <- Some f;
    f

let protos_stats p =
  let s = Idmap.find p.pt_summaries p.pt_root in
  { n_boxes = s.s_boxes;
    n_instances = s.s_instances;
    n_leaf_instances = s.s_leaf_instances;
    by_cell = s.s_by_cell;
    box_area = s.s_area;
    bbox = s.s_bbox }

let stats ?max_depth cell = protos_stats (prototypes ?max_depth cell)

let instance_placements ?(max_depth = 64) cell =
  let acc =
    fold_objects ~max_depth Transform.identity cell
      ~box:(fun acc _ _ -> acc)
      ~label:(fun acc _ _ -> acc)
      ~inst:(fun acc def t -> (def.Cell.cname, t) :: acc)
      []
  in
  List.rev acc

(** CIF 2.0 subset writer and reader.

    CIF was one of the two layout file formats the RSG supported
    (section 4.5).  We emit hierarchical symbol definitions ([DS]/[DF])
    with the common [9 name;] and [94 label x y;] extensions, boxes,
    layer selections and calls with [MX], [R] and [T] transformations.

    Coordinates are written doubled (one lambda = two CIF units) so
    that box centers — which CIF requires — stay exact integers.  The
    reader reverses the doubling and accepts only geometry on that
    grid. *)

type read_result = {
  db : Db.t;               (** every symbol read, by name *)
  top : Cell.t option;     (** synthetic "(top)" cell holding top-level calls *)
}

val to_string : Cell.t -> string
(** Serialise [cell] and every cell it references (children first),
    ending with a top-level call of [cell]. *)

val write_file : string -> Cell.t -> unit

val of_string : string -> read_result
(** Parse a CIF stream produced by {!to_string} (or a compatible
    subset).  Raises [Failure] with a line-ish context message on
    malformed input. *)

val read_file : string -> read_result

val roundtrip_equal : Cell.t -> Cell.t -> bool
(** Structural equality on the flattened geometry of two cells — the
    property the writer/reader pair preserves. *)

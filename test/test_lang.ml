(* Tests for the design-file language: parsing (Appendix A grammar),
   evaluation, scoping (Table 4.1), macros returning environments,
   the RSG primitives and parameter files. *)

open Rsg_geom
open Rsg_layout
open Rsg_core
open Rsg_lang

let value =
  Alcotest.testable Value.pp (fun a b -> Value.equal_value a b)

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)

let test_sexp_reader () =
  match Sexp.parse_string "(a (b 1) \"s\") ; comment\n(c)" with
  | [ Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "1" ]; Sexp.Str "s" ];
      Sexp.List [ Sexp.Atom "c" ] ] ->
    ()
  | _ -> Alcotest.fail "unexpected sexp structure"

let test_sexp_errors () =
  let raises s =
    try
      ignore (Sexp.parse_string s);
      false
    with Sexp.Parse_error _ -> true
  in
  Alcotest.(check bool) "unclosed paren" true (raises "(a (b)");
  Alcotest.(check bool) "stray rparen" true (raises ")");
  Alcotest.(check bool) "unterminated string" true (raises "\"abc")

let parse_one s =
  match Parser.parse_program s with
  | [ Ast.Expr e ] -> Ast.strip_deep e
  | _ -> Alcotest.fail "expected a single expression"

let test_indexed_variables () =
  (match parse_one "(assign l.1 5)" with
  | Ast.Assign (Ast.Indexed ("l", [ Ast.Int 1 ]), Ast.Int 5) -> ()
  | e -> Alcotest.failf "l.1: got %a" Ast.pp_expr e);
  (match parse_one "(assign c.i 5)" with
  | Ast.Assign (Ast.Indexed ("c", [ Ast.Var (Ast.Simple "i") ]), _) -> ()
  | e -> Alcotest.failf "c.i: got %a" Ast.pp_expr e);
  (match parse_one "(assign l.(- i 1) 5)" with
  | Ast.Assign (Ast.Indexed ("l", [ Ast.Call ("-", _) ]), _) -> ()
  | e -> Alcotest.failf "l.(- i 1): got %a" Ast.pp_expr e);
  (match parse_one "(assign m.i.j 5)" with
  | Ast.Assign
      (Ast.Indexed ("m", [ Ast.Var (Ast.Simple "i"); Ast.Var (Ast.Simple "j") ]), _) ->
    ()
  | e -> Alcotest.failf "m.i.j: got %a" Ast.pp_expr e);
  (* Appendix B style: subcell with a computed index. *)
  match parse_one "(connect (subcell l.(- i 1) c.1) (subcell l.i c.1) h)" with
  | Ast.Connect (Ast.Subcell (_, Ast.Indexed ("c", [ Ast.Int 1 ])), _, _) -> ()
  | e -> Alcotest.failf "appendix connect: got %a" Ast.pp_expr e

let test_proc_parsing () =
  let prog =
    Parser.parse_program
      "(defun f (x y) (locals a b.) (assign a (+ x y)) a)\n\
       (macro mg (n) (locals c) (assign c n))"
  in
  match prog with
  | [ Ast.Defproc f; Ast.Defproc g ] ->
    Alcotest.(check string) "f name" "f" f.Ast.proc_name;
    Alcotest.(check bool) "f is function" false f.Ast.is_macro;
    Alcotest.(check int) "f formals" 2 (List.length f.Ast.formals);
    (match f.Ast.locals with
    | [ Ast.Scalar_local "a"; Ast.Array_local "b" ] -> ()
    | _ -> Alcotest.fail "f locals");
    Alcotest.(check bool) "mg is macro" true g.Ast.is_macro
  | _ -> Alcotest.fail "expected two definitions"

let test_macro_name_convention () =
  let raises s =
    try
      ignore (Parser.parse_program s);
      false
    with Parser.Syntax_error _ -> true
  in
  Alcotest.(check bool) "macro must start with m" true
    (raises "(macro foo (x) x)");
  Alcotest.(check bool) "function must not start with m" true
    (raises "(defun mfoo (x) x)")

(* ------------------------------------------------------------------ *)
(* Evaluation basics                                                  *)

let run ?cells ?table src =
  let st = Interp.create ?cells ?table () in
  (st, Interp.run_string st src)

let test_arith () =
  let check src expected =
    let _, v = run src in
    Alcotest.(check value) src expected v
  in
  check "(+ 1 2 3)" (Value.Vint 6);
  check "(- 10 3 2)" (Value.Vint 5);
  check "(- 4)" (Value.Vint (-4));
  check "(* 2 3 4)" (Value.Vint 24);
  check "(// 7 2)" (Value.Vint 3);
  check "(mod 7 2)" (Value.Vint 1);
  check "(= 3 3)" (Value.Vbool true);
  check "(> 4 2)" (Value.Vbool true);
  check "(<= 4 2)" (Value.Vbool false);
  check "(min 4 2 9)" (Value.Vint 2);
  check "(max 4 2 9)" (Value.Vint 9);
  check "(abs (- 5))" (Value.Vint 5);
  check "(not (= 1 2))" (Value.Vbool true)

let test_cond_and_do () =
  let _, v = run "(cond ((= 1 2) 10) ((= 1 1) 20) (true 30))" in
  Alcotest.(check value) "cond picks second" (Value.Vint 20) v;
  let _, v = run "(cond ((= 1 2) 10))" in
  Alcotest.(check value) "cond no match" Value.Vunit v;
  let _, v =
    run
      "(assign total 0)\n\
       (do (i 1 (+ i 1) (> i 5)) (assign total (+ total i)))\n\
       total"
  in
  Alcotest.(check value) "do sums 1..5" (Value.Vint 15) v;
  let _, v = run "(assign x 9) (do (i 1 (+ i 1) (> i 0)) (assign x 7)) x" in
  Alcotest.(check value) "do with immediate exit" (Value.Vint 9) v

let test_functions_and_recursion () =
  let _, v =
    run
      "(defun fact (n) (locals) (cond ((= n 0) 1) (true (* n (fact (- n 1))))))\n\
       (fact 6)"
  in
  Alcotest.(check value) "recursion" (Value.Vint 720) v;
  (* fmin from Appendix B verbatim. *)
  let _, v =
    run "(defun fmin (x y) (locals) (cond ((> x y) y) (true x))) (fmin 7 3)"
  in
  Alcotest.(check value) "appendix fmin" (Value.Vint 3) v

let test_macro_returns_environment () =
  let _, v =
    run
      "(macro mpoint (x y) (locals sum) (assign sum (+ x y)))\n\
       (assign p (mpoint 3 4))\n\
       (+ (subcell p x) (subcell p sum))"
  in
  Alcotest.(check value) "subcell reads returned env" (Value.Vint 10) v

let test_scoping_locals_shadow () =
  let _, v =
    run
      "(assign g 100)\n\
       (defun f () (locals g) (assign g 1) g)\n\
       (+ (f) g)"
  in
  Alcotest.(check value) "locals shadow globals" (Value.Vint 101) v

let test_scoping_lexical_not_dynamic () =
  (* h's local x must not be visible inside f (dynamic scoping was
     rejected, section 4.1). *)
  let _, v =
    run
      "(assign x 5)\n\
       (defun f () (locals) x)\n\
       (defun h () (locals x) (assign x 99) (f))\n\
       (h)"
  in
  Alcotest.(check value) "lexical scoping" (Value.Vint 5) v

let test_arrays () =
  let _, v =
    run
      "(defun f () (locals a.) \n\
       (do (i 1 (+ i 1) (> i 4)) (assign a.i (* i i)))\n\
       (+ a.1 a.2 a.3 a.4))\n\
       (f)"
  in
  Alcotest.(check value) "array locals" (Value.Vint 30) v;
  let _, v = run "(assign m.2.3 7) (assign m.3.2 1) (+ m.2.3 m.3.2)" in
  Alcotest.(check value) "two-dimensional" (Value.Vint 8) v

let test_unbound_errors () =
  let raises src =
    try
      ignore (run src);
      false
    with Interp.Runtime_error _ -> true
  in
  Alcotest.(check bool) "unbound variable" true (raises "nosuch");
  Alcotest.(check bool) "unbound array index" true
    (raises "(assign a.1 5) a.2");
  Alcotest.(check bool) "unknown function" true (raises "(nosuchfn 1)");
  Alcotest.(check bool) "arity mismatch" true
    (raises "(defun f (x) (locals) x) (f 1 2)");
  Alcotest.(check bool) "division by zero" true (raises "(// 1 0)")

(* ------------------------------------------------------------------ *)
(* Parameter files                                                    *)

let test_param_parsing () =
  let p =
    Param.parse
      ".example_file:/u/bamji/demo/mult.def\n\
       ; a comment\n\
       vinum=2\n\
       corecell=cell\n\
       mularrayname=\"array\"\n\
       flag=true\n"
  in
  Alcotest.(check (option string)) "directive" (Some "/u/bamji/demo/mult.def")
    (Param.directive p "example_file");
  Alcotest.(check (option value)) "int" (Some (Value.Vint 2))
    (Param.binding p "vinum");
  Alcotest.(check (option value)) "symbol" (Some (Value.Vsym "cell"))
    (Param.binding p "corecell");
  Alcotest.(check (option value)) "string" (Some (Value.Vstr "array"))
    (Param.binding p "mularrayname");
  Alcotest.(check (option value)) "bool" (Some (Value.Vbool true))
    (Param.binding p "flag")

let test_param_errors () =
  let raises s =
    try
      ignore (Param.parse s);
      false
    with Param.Param_error _ -> true
  in
  Alcotest.(check bool) "no equals" true (raises "junk line\n");
  Alcotest.(check bool) "empty value" true (raises "a=\n");
  Alcotest.(check bool) "bad directive" true (raises ".nocolon\n")

(* ------------------------------------------------------------------ *)
(* Table 4.1: environment -> global -> cell table, with symbol
   indirection from the parameter file.                               *)

let simple_sample () =
  (* One 8x8 cell "basiccell" with a horizontal self-interface 1 at
     pitch 10 and a vertical one (2) at pitch 12. *)
  let c = Cell.create "basiccell" in
  Cell.add_box c Layer.Metal (Box.of_size ~origin:Vec.zero ~width:8 ~height:8);
  let s = Sample.create () in
  Sample.load_cell s c;
  Interface_table.declare s.Sample.table ~from:"basiccell" ~into:"basiccell"
    ~index:1
    (Interface.make (Vec.make 10 0) Orient.north);
  Interface_table.declare s.Sample.table ~from:"basiccell" ~into:"basiccell"
    ~index:2
    (Interface.make (Vec.make 0 12) Orient.north);
  s

let test_lookup_chain () =
  let s = simple_sample () in
  let st = Interp.of_sample s in
  Interp.load_params st (Param.parse "corecell=basiccell\n");
  (* corecell -> Vsym basiccell -> cell table -> the cell. *)
  match Interp.run_string st "corecell" with
  | Value.Vcell c -> Alcotest.(check string) "resolved" "basiccell" c.Cell.cname
  | v -> Alcotest.failf "expected cell, got %a" Value.pp v

let test_symbol_cycle_detected () =
  let st = Interp.create () in
  Interp.load_params st (Param.parse "a=b\nb=a\n");
  Alcotest.(check bool) "cycle detected" true
    (try
       ignore (Interp.run_string st "a");
       false
     with Interp.Runtime_error _ -> true)

(* ------------------------------------------------------------------ *)
(* RSG primitives through the language                                *)

let test_mk_instance_connect_mk_cell () =
  let s = simple_sample () in
  let st = Interp.of_sample s in
  let v =
    Interp.run_string st
      "(mk_instance a basiccell)\n\
       (mk_instance b basiccell)\n\
       (mk_instance c basiccell)\n\
       (connect a b 1)\n\
       (connect b c 2)\n\
       (mk_cell \"trio\" a)"
  in
  (match v with
  | Value.Vcell cell ->
    Alcotest.(check string) "cell name" "trio" cell.Cell.cname;
    let placements =
      List.map
        (fun (i : Cell.instance) -> i.Cell.point_of_call)
        (Cell.instances cell)
    in
    Alcotest.(check bool) "a at origin" true
      (List.exists (Vec.equal Vec.zero) placements);
    Alcotest.(check bool) "b at (10,0)" true
      (List.exists (Vec.equal (Vec.make 10 0)) placements);
    Alcotest.(check bool) "c at (10,12)" true
      (List.exists (Vec.equal (Vec.make 10 12)) placements)
  | _ -> Alcotest.fail "expected a cell");
  (* The created cell registers in the cell table for later use. *)
  Alcotest.(check bool) "trio in cell table" true (Db.mem st.Interp.cells "trio")

let test_array_builtin () =
  let s = simple_sample () in
  let st = Interp.of_sample s in
  let v =
    Interp.run_string st
      "(assign col (array basiccell 4 2))\n\
       (mk_cell \"column\" (subcell col c.1))"
  in
  match v with
  | Value.Vcell cell ->
    let ys =
      List.map
        (fun (i : Cell.instance) -> i.Cell.point_of_call.Vec.y)
        (Cell.instances cell)
      |> List.sort Int.compare
    in
    Alcotest.(check (list int)) "vertical chain" [ 0; 12; 24; 36 ] ys
  | _ -> Alcotest.fail "expected a cell"

let test_macro_subgraph_composition () =
  (* A macro builds a row subgraph; the caller fetches its end nodes
     via subcell and stitches rows into a 3x3 array — macro
     abstraction with delayed binding (section 3.2). *)
  let s = simple_sample () in
  let st = Interp.of_sample s in
  let v =
    Interp.run_string st
      "(macro mrow (size)\n\
      \  (locals r. first last)\n\
      \  (mk_instance first basiccell)\n\
      \  (assign r.1 first)\n\
      \  (do (i 2 (+ i 1) (> i size))\n\
      \    (mk_instance nxt basiccell)\n\
      \    (assign r.i nxt)\n\
      \    (connect r.(- i 1) r.i 1))\n\
      \  (assign last r.size))\n\
       (assign row1 (mrow 3))\n\
       (assign row2 (mrow 3))\n\
       (assign row3 (mrow 3))\n\
       (connect (subcell row1 first) (subcell row2 first) 2)\n\
       (connect (subcell row2 first) (subcell row3 first) 2)\n\
       (mk_cell \"grid\" (subcell row1 first))"
  in
  match v with
  | Value.Vcell cell ->
    let placements =
      List.map
        (fun (i : Cell.instance) -> i.Cell.point_of_call)
        (Cell.instances cell)
      |> List.sort Vec.compare
    in
    let expected =
      List.concat_map
        (fun x -> List.map (fun y -> Vec.make (10 * x) (12 * y)) [ 0; 1; 2 ])
        [ 0; 1; 2 ]
      |> List.sort Vec.compare
    in
    Alcotest.(check bool) "3x3 grid placements" true (placements = expected)
  | _ -> Alcotest.fail "expected a cell"

let test_declare_interface_inheritance () =
  (* Build two single-instance macrocells and inherit their interface
     from the primitive one; then use it to place them (fig 2.4). *)
  let s = simple_sample () in
  let st = Interp.of_sample s in
  let v =
    Interp.run_string st
      "(mk_instance a basiccell)\n\
       (mk_cell \"left\" a)\n\
       (mk_instance b basiccell)\n\
       (mk_cell \"right\" b)\n\
       (declare_interface left right 1 a b 1)\n\
       (mk_instance lft left)\n\
       (mk_instance rgt right)\n\
       (connect lft rgt 1)\n\
       (mk_cell \"pair\" lft)"
  in
  match v with
  | Value.Vcell cell -> (
    match Cell.instances cell with
    | [ i1; i2 ] ->
      Alcotest.(check bool) "left at origin" true
        (Vec.equal i1.Cell.point_of_call Vec.zero);
      Alcotest.(check bool) "right at pitch" true
        (Vec.equal i2.Cell.point_of_call (Vec.make 10 0))
    | _ -> Alcotest.fail "expected two instances")
  | _ -> Alcotest.fail "expected a cell"

let test_print_capture () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  let st = Interp.create ~out:ppf () in
  ignore (Interp.run_string st "(print (+ 40 2)) (print \"done\")");
  Format.pp_print_flush ppf ();
  Alcotest.(check string) "printed" "42\n\"done\"\n" (Buffer.contents buf)

let test_read_fn () =
  let st = Interp.create ~read_fn:(fun () -> 17) () in
  Alcotest.(check value) "read" (Value.Vint 17) (Interp.run_string st "(read)")

let test_error_call_trace () =
  let st = Interp.create () in
  match
    Interp.run_string st
      "(defun f (x) (locals) (+ x nosuch))\n\
       (defun g (y) (locals) (f y))\n\
       (g 1)"
  with
  | exception Interp.Runtime_error msg ->
    Alcotest.(check string) "call trace"
      "unbound variable nosuch\n  in f\n  in g" msg
  | _ -> Alcotest.fail "expected a runtime error"

let test_error_located_file_line () =
  let st = Interp.create ~file:"grid.def" () in
  match
    Interp.run_string st "(assign a 1)\n(print a)\n(print (+ a nosuch))"
  with
  | exception Interp.Runtime_error msg ->
    Alcotest.(check string) "file:line prefix"
      "grid.def:3: unbound variable nosuch" msg
  | _ -> Alcotest.fail "expected a runtime error"

let test_runaway_recursion_guard () =
  let st = Interp.create () in
  match Interp.run_string st "(defun f (x) (locals) (f (+ x 1))) (f 0)" with
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "depth guard fires" true
      (String.length msg > 0
      && String.sub msg 0 17 = "call depth exceed")
  | _ -> Alcotest.fail "expected depth error"

(* Parametric codegen equivalence: a design-file grid macro must place
   exactly the same grid the API does, for random sizes. *)
let prop_design_file_grid_matches_api =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"random grids: design file == API"
       (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_range 1 5))
       (fun (cols, rows) ->
         let src =
           Printf.sprintf
             "(macro mrow (size)\n\
             \  (locals r. nxt)\n\
             \  (mk_instance nxt basiccell)\n\
             \  (assign r.1 nxt)\n\
             \  (do (i 2 (+ i 1) (> i size))\n\
             \    (mk_instance nxt basiccell)\n\
             \    (assign r.i nxt)\n\
             \    (connect r.(- i 1) r.i 1)))\n\
              (assign g.1 (mrow %d))\n\
              (do (j 2 (+ j 1) (> j %d))\n\
             \  (assign g.j (mrow %d))\n\
             \  (connect (subcell g.(- j 1) r.1) (subcell g.j r.1) 2))\n\
              (mk_cell \"grid\" (subcell g.1 r.1))"
             cols rows cols
         in
         let s = simple_sample () in
         let st = Interp.of_sample s in
         ignore (Interp.run_string st src);
         let cell = Option.get (Interp.last_created st) in
         let got =
           List.map
             (fun (i : Cell.instance) -> i.Cell.point_of_call)
             (Cell.instances cell)
           |> List.sort Vec.compare
         in
         let expected =
           List.concat_map
             (fun c ->
               List.map (fun r -> Vec.make (10 * c) (12 * r))
                 (List.init rows Fun.id))
             (List.init cols Fun.id)
           |> List.sort Vec.compare
         in
         got = expected))

let test_define_global_table () =
  (* host installs an encoding table; the design file reads it through
     two-index variables — delayed binding of a personality *)
  let st = Interp.create () in
  Interp.define_global st "enc"
    (Interp.array2_of_matrix [| [| true; false |]; [| false; true |] |]);
  let v =
    Interp.run_string st
      "(assign hits 0)\n\
       (do (r 1 (+ r 1) (> r 2))\n\
         (do (c 1 (+ c 1) (> c 2))\n\
           (cond (enc.r.c (assign hits (+ hits 1))))))\n\
       hits"
  in
  Alcotest.(check value) "diagonal hits" (Value.Vint 2) v

(* ---- procedure content digests (incremental dirtiness) -------------- *)

let subtree_of text = Subtree.of_program (Parser.parse_program text)

let chain_prog leaf_body =
  Printf.sprintf
    "(macro mleaf (n) (locals c) %s)\n\
     (macro mmid (n) (locals x) (assign x (mleaf n)))\n\
     (macro mtop (n) (locals y) (assign y (mmid n)))\n\
     (macro msolo (n) (locals z) (assign z (+ n 1)))"
    leaf_body

let test_subtree_edit_dirties_chain () =
  let before = subtree_of (chain_prog "(mk_instance c basiccell)") in
  let after = subtree_of (chain_prog "(mk_instance c othercell)") in
  Alcotest.(check (list string))
    "edited leaf dirties itself and its transitive callers only"
    [ "mleaf"; "mmid"; "mtop" ]
    (Subtree.dirty ~before ~after);
  Alcotest.(check bool)
    "unrelated procedure keeps its digest" true
    (Subtree.digest before "msolo" = Subtree.digest after "msolo");
  Alcotest.(check (list string))
    "identical program dirties nothing" []
    (Subtree.dirty ~before ~after:before)

let test_subtree_source_noise_is_clean () =
  let a = subtree_of (chain_prog "(mk_instance c basiccell)") in
  (* whitespace and comments do not change any digest *)
  let b =
    subtree_of
      ("  ;; a comment\n" ^ chain_prog "(mk_instance   c   basiccell)")
  in
  Alcotest.(check (list string)) "formatting is clean" [] (Subtree.dirty ~before:a ~after:b);
  (* renaming a (non-recursive) procedure leaves its digest intact: the
     new name appears, callers that mention it change, the body hash
     itself is name-independent *)
  let renamed =
    subtree_of
      "(macro mleaf2 (n) (locals c) (mk_instance c basiccell))\n\
       (macro mmid (n) (locals x) (assign x (mleaf2 n)))"
  in
  Alcotest.(check bool)
    "rename preserves the body digest" true
    (Subtree.digest a "mleaf" = Subtree.digest renamed "mleaf2")

let test_subtree_recursion () =
  let p name =
    Printf.sprintf
      "(defun %s (n) (cond ((> n 0) (%s (- n 1))) (true 0)))" name name
  in
  let a = subtree_of (p "fcount") in
  let b = subtree_of (p "fcount") in
  Alcotest.(check bool)
    "recursive digest is stable" true
    (Subtree.digest a "fcount" = Subtree.digest b "fcount");
  (* renaming a recursive procedure is the one name leak: the rec token
     embeds the name, so the digest moves *)
  let c = subtree_of (p "fcount2") in
  Alcotest.(check bool)
    "renaming a recursive procedure dirties it" false
    (Subtree.digest a "fcount" = Subtree.digest c "fcount2")

let () =
  Alcotest.run "rsg_lang"
    [ ("parse",
       [ Alcotest.test_case "sexp reader" `Quick test_sexp_reader;
         Alcotest.test_case "sexp errors" `Quick test_sexp_errors;
         Alcotest.test_case "indexed variables" `Quick test_indexed_variables;
         Alcotest.test_case "procedures" `Quick test_proc_parsing;
         Alcotest.test_case "macro naming" `Quick test_macro_name_convention ]);
      ("eval",
       [ Alcotest.test_case "arithmetic" `Quick test_arith;
         Alcotest.test_case "cond/do" `Quick test_cond_and_do;
         Alcotest.test_case "functions + recursion" `Quick
           test_functions_and_recursion;
         Alcotest.test_case "macros return environments" `Quick
           test_macro_returns_environment;
         Alcotest.test_case "locals shadow" `Quick test_scoping_locals_shadow;
         Alcotest.test_case "lexical not dynamic" `Quick
           test_scoping_lexical_not_dynamic;
         Alcotest.test_case "arrays" `Quick test_arrays;
         Alcotest.test_case "errors" `Quick test_unbound_errors;
         Alcotest.test_case "print" `Quick test_print_capture;
         Alcotest.test_case "read" `Quick test_read_fn;
         Alcotest.test_case "define_global table" `Quick
           test_define_global_table;
         Alcotest.test_case "error call trace" `Quick test_error_call_trace;
         Alcotest.test_case "located errors" `Quick
           test_error_located_file_line;
         Alcotest.test_case "runaway recursion guard" `Quick
           test_runaway_recursion_guard ]);
      ("codegen", [ prop_design_file_grid_matches_api ]);
      ("params",
       [ Alcotest.test_case "parsing" `Quick test_param_parsing;
         Alcotest.test_case "errors" `Quick test_param_errors;
         Alcotest.test_case "lookup chain (table 4.1)" `Quick test_lookup_chain;
         Alcotest.test_case "symbol cycles" `Quick test_symbol_cycle_detected ]);
      ("subtree",
       [ Alcotest.test_case "edit dirties the call chain" `Quick
           test_subtree_edit_dirties_chain;
         Alcotest.test_case "formatting and renames are clean" `Quick
           test_subtree_source_noise_is_clean;
         Alcotest.test_case "recursion" `Quick test_subtree_recursion ]);
      ("rsg-primitives",
       [ Alcotest.test_case "mk_instance/connect/mk_cell" `Quick
           test_mk_instance_connect_mk_cell;
         Alcotest.test_case "array builtin" `Quick test_array_builtin;
         Alcotest.test_case "macro subgraph composition" `Quick
           test_macro_subgraph_composition;
         Alcotest.test_case "interface inheritance" `Quick
           test_declare_interface_inheritance ]) ]
